// Command epabench runs the reproduction experiments (T1/T2/F1/F2 exhibits
// and validation experiments E1–E22 from DESIGN.md) and prints each
// result table.
//
// Usage:
//
//	epabench [-seed N] [-only E4,E7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"epajsrm/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	type maker struct {
		id string
		fn func() experiments.Result
	}
	makers := []maker{
		{"T1", func() experiments.Result { return experiments.T1TableI() }},
		{"T2", func() experiments.Result { return experiments.T2TableII() }},
		{"F1", func() experiments.Result { return experiments.F1ComponentDiagram() }},
		{"F2", func() experiments.Result { return experiments.F2WorldMap() }},
		{"E1", func() experiments.Result { return experiments.E1StaticCap(*seed) }},
		{"E2", func() experiments.Result { return experiments.E2IdleShutdown(*seed) }},
		{"E3", func() experiments.Result { return experiments.E3DVFS() }},
		{"E4", func() experiments.Result { return experiments.E4PowerSharing(*seed) }},
		{"E5", func() experiments.Result { return experiments.E5Overprovision(*seed) }},
		{"E6", func() experiments.Result { return experiments.E6Emergency(*seed) }},
		{"E7", func() experiments.Result { return experiments.E7EnergyTag(*seed) }},
		{"E8", func() experiments.Result { return experiments.E8Prediction(*seed) }},
		{"E9", func() experiments.Result { return experiments.E9InterSystem(*seed) }},
		{"E10", func() experiments.Result { return experiments.E10Layout(*seed) }},
		{"E11", func() experiments.Result { return experiments.E11MS3(*seed) }},
		{"E12", func() experiments.Result { return experiments.E12Backfill(*seed) }},
		{"E13", func() experiments.Result { return experiments.E13GridAware(*seed) }},
		{"E14", func() experiments.Result { return experiments.E14RuntimeBalance(*seed) }},
		{"E15", func() experiments.Result { return experiments.E15Topology(*seed) }},
		{"E16", func() experiments.Result { return experiments.E16CapabilityWindow(*seed) }},
		{"E17", func() experiments.Result { return experiments.E17RampLimit(*seed) }},
		{"E18", func() experiments.Result { return experiments.E18CoolingAware(*seed) }},
		{"E19", func() experiments.Result { return experiments.E19Monitoring(*seed) }},
		{"E20", func() experiments.Result { return experiments.E20FairShare(*seed) }},
		{"E21", func() experiments.Result { return experiments.E21Resilience(*seed) }},
		{"E22", func() experiments.Result { return experiments.E22CheckpointSweep(*seed) }},
	}
	ran := 0
	for _, mk := range makers {
		if len(want) > 0 && !want[mk.id] {
			continue
		}
		fmt.Println(mk.fn().Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(2)
	}
}
