// Command epabench runs the reproduction experiments (T1/T2/F1/F2 exhibits
// and validation experiments E1–E22 and E24 from DESIGN.md) and prints each
// result table. Independent experiments execute across a worker pool; the
// report stream on stdout is byte-identical at any parallelism, and a
// per-experiment wall-time table goes to stderr so slow exhibits are
// visible at a glance without perturbing the deterministic output.
//
// Usage:
//
//	epabench [-seed N] [-only E4,E7] [-run 'E2[0-2]'] [-procs 4]
//	epabench -only E21 -trace e21.json   # Perfetto-loadable control-loop trace
//
// Observability: -trace writes the control-loop events of every selected
// experiment into one Chrome trace_event file (procs is forced to 1 so
// the stream is deterministic). -http serves the live ops plane while the
// suite runs — /metrics carries experiment progress and trace-event
// counters, /healthz reports progress in its detail field, /events
// streams the shared tracer — and likewise forces -procs 1. -cpuprofile,
// -memprofile and -pproftrace capture stdlib runtime profiles of the
// whole run.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"sync/atomic"
	"time"

	"epajsrm/internal/experiments"
	"epajsrm/internal/metrics"
	"epajsrm/internal/ops"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 1, "experiment seed")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	runPat := flag.String("run", "", "regexp filter on experiment IDs (combines with -only)")
	procs := flag.Int("procs", 0, "max concurrent experiments (0 = GOMAXPROCS)")
	traceOut := flag.String("trace", "", "write the selected experiments' control-loop trace (Chrome trace_event) to this file; forces -procs 1")
	httpAddr := flag.String("http", "", "serve live ops endpoints (/metrics, /healthz, /events) on this address during the run; forces -procs 1")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	pprofTrace := flag.String("pproftrace", "", "write a Go runtime execution trace to this file (go tool trace)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *pprofTrace != "" {
		f, err := os.Create(*pprofTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			rtrace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}()
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	var pat *regexp.Regexp
	if *runPat != "" {
		var err error
		if pat, err = regexp.Compile("(?i)" + *runPat); err != nil {
			fmt.Fprintf(os.Stderr, "bad -run pattern: %v\n", err)
			os.Exit(2)
		}
	}

	type maker struct {
		id string
		fn func(seed uint64) experiments.Result
	}
	makers := []maker{
		{"T1", func(uint64) experiments.Result { return experiments.T1TableI() }},
		{"T2", func(uint64) experiments.Result { return experiments.T2TableII() }},
		{"F1", func(uint64) experiments.Result { return experiments.F1ComponentDiagram() }},
		{"F2", func(uint64) experiments.Result { return experiments.F2WorldMap() }},
		{"E1", experiments.E1StaticCap},
		{"E2", experiments.E2IdleShutdown},
		{"E3", func(uint64) experiments.Result { return experiments.E3DVFS() }},
		{"E4", experiments.E4PowerSharing},
		{"E5", experiments.E5Overprovision},
		{"E6", experiments.E6Emergency},
		{"E7", experiments.E7EnergyTag},
		{"E8", experiments.E8Prediction},
		{"E9", experiments.E9InterSystem},
		{"E10", experiments.E10Layout},
		{"E11", experiments.E11MS3},
		{"E12", experiments.E12Backfill},
		{"E13", experiments.E13GridAware},
		{"E14", experiments.E14RuntimeBalance},
		{"E15", experiments.E15Topology},
		{"E16", experiments.E16CapabilityWindow},
		{"E17", experiments.E17RampLimit},
		{"E18", experiments.E18CoolingAware},
		{"E19", experiments.E19Monitoring},
		{"E20", experiments.E20FairShare},
		{"E21", experiments.E21Resilience},
		{"E22", experiments.E22CheckpointSweep},
		{"E24", experiments.E24SLOWatchdog},
	}
	var chosen []maker
	for _, mk := range makers {
		if len(want) > 0 && !want[mk.id] {
			continue
		}
		if pat != nil && !pat.MatchString(mk.id) {
			continue
		}
		chosen = append(chosen, mk)
	}
	if len(chosen) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -only=%q -run=%q\n", *only, *runPat)
		os.Exit(2)
	}

	var tr *trace.Tracer
	if *traceOut != "" || *httpAddr != "" {
		if *procs != 1 {
			fmt.Fprintln(os.Stderr, "-trace/-http force -procs 1 for a deterministic event stream")
		}
		*procs = 1
		tr = trace.New()
		experiments.SetTracer(tr)
	}

	// The suite has no single manager, so -http serves a process-level
	// registry: experiment progress and the shared tracer's event count as
	// derived gauges, progress again in the health detail. The experiments
	// themselves never synchronize with the server — the gauges read one
	// atomic and the tracer's own mutex-guarded length.
	var done atomic.Int64
	if *httpAddr != "" {
		reg := metrics.New()
		total := len(chosen)
		reg.GaugeFunc("ops.experiments_done", func() float64 { return float64(done.Load()) })
		reg.GaugeFunc("ops.trace_events", func() float64 { return float64(tr.Len()) })
		srv := ops.NewServer(ops.Source{
			Registry: reg,
			Tracer:   tr,
			Health: func() ops.Health {
				return ops.Health{
					Status: "ok",
					Detail: fmt.Sprintf("%d/%d experiments done", done.Load(), total),
				}
			},
		})
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops: serving /metrics /healthz /events on http://%s\n", addr)
	}

	runner.SetProcs(*procs)
	type outcome struct {
		text string
		wall time.Duration
	}
	outs := runner.Map(len(chosen), func(i int) outcome {
		start := time.Now()
		r := chosen[i].fn(*seed)
		done.Add(1)
		return outcome{r.Render(), time.Since(start)}
	})
	for _, o := range outs {
		fmt.Println(o.text)
	}

	if tr != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WriteChrome(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", tr.Len(), *traceOut)
	}

	timing := report.Table{
		Title:  fmt.Sprintf("wall time per experiment (procs=%d)", runner.Procs()),
		Header: []string{"experiment", "wall time"},
	}
	for i, o := range outs {
		timing.Rows = append(timing.Rows, []string{chosen[i].id, o.wall.Round(time.Millisecond).String()})
	}
	fmt.Fprintln(os.Stderr, timing.Render())
}
