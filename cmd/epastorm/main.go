// Command epastorm drives a synthetic stampede against an epaserved
// instance: many concurrent clients submit runs, poll them to completion,
// and scrape the per-run observability endpoints, while honoring the
// server's load-shedding protocol — a 429/503 response's Retry-After is
// the floor for a jittered exponential backoff, never a hot retry loop.
//
// Usage:
//
//	epastorm -addr http://localhost:8080 -clients 200 -tenants 16 \
//	         -site cineca -jobs 20 -days 1 -per-client 3
//
// The exit code is the verdict: 0 when every accepted run reached a
// terminal state (zero accepted-then-lost work) and every shed response
// carried Retry-After; 1 otherwise. The summary table reports submission
// outcomes, shed counts, and submit-to-complete latency quantiles.
//
// -seed makes a storm reproducible: it drives both the backoff jitter
// RNGs and the per-run simulation seeds, with no wall-clock input.
//
// Crash checking, against an epaserved running with -journal: a storm
// run with -ledger <file> appends every accepted run (its ID and exact
// spec) to a client-side ledger as it is acknowledged. After the server
// is killed — SIGKILL included — and restarted, `epastorm -crash-check
// -ledger <file>` replays the ledger instead of storming: every
// previously accepted run must still exist and reach a terminal state,
// and every completed run's report must be fetchable. A 404, a run stuck
// non-terminal, a crash-induced failure, or a missing report is an
// accepted-then-lost verdict (exit 1) — the journal's zero-loss contract,
// checked from the client's side of the wire.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"epajsrm/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type verdict struct {
	mu            sync.Mutex
	submitted     int
	accepted      int
	shed429       int
	shed503       int
	shedNoRetry   int // shed responses missing Retry-After: protocol bug
	rejected      int // 4xx spec errors
	completed     int
	failed        int
	cancelled     int
	lost          int // accepted but never reached a terminal state
	netErrs       int
	latencies     []time.Duration
	scrapeErrs    int
	reportMissing int

	// reqLat is the client-observed wire latency of every HTTP request,
	// keyed by kind (submit/poll/scrape/report/query) — the server's own
	// histograms seen from the other end of the connection.
	reqLat map[string][]time.Duration

	// energy aggregates each completed run's final power.total_energy_j
	// sample — read off the run's /query metric history — under its
	// tenant, so the storm ends with a per-tenant energy bill.
	energy map[string]*tenantEnergy
}

type tenantEnergy struct {
	runs   int
	joules float64
}

// addEnergy books one completed run's total energy under its tenant.
func (v *verdict) addEnergy(tenant string, joules float64) {
	v.mu.Lock()
	if v.energy == nil {
		v.energy = make(map[string]*tenantEnergy)
	}
	te := v.energy[tenant]
	if te == nil {
		te = &tenantEnergy{}
		v.energy[tenant] = te
	}
	te.runs++
	te.joules += joules
	v.mu.Unlock()
}

// observe records one request's wire latency under its kind.
func (v *verdict) observe(kind string, d time.Duration) {
	v.mu.Lock()
	if v.reqLat == nil {
		v.reqLat = make(map[string][]time.Duration)
	}
	v.reqLat[kind] = append(v.reqLat[kind], d)
	v.mu.Unlock()
}

// quantile reads the p-th quantile from a sorted latency slice.
func quantile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("epastorm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8080", "epaserved base URL")
	clients := fs.Int("clients", 100, "concurrent clients")
	tenants := fs.Int("tenants", 16, "distinct tenants the clients spread across")
	perClient := fs.Int("per-client", 1, "runs each client submits to completion")
	siteName := fs.String("site", "cineca", "site profile each run requests")
	jobsN := fs.Int("jobs", 20, "jobs per run")
	days := fs.Int("days", 1, "simulated days per run")
	attempts := fs.Int("attempts", 8, "max submit attempts per run before giving up")
	backoff := fs.Duration("backoff", 200*time.Millisecond, "base backoff; doubles per retry with ±50% jitter, floored at the server's Retry-After")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-run completion deadline")
	seed := fs.Int64("seed", 1, "reproducibility seed: drives backoff jitter and the per-run simulation seeds (time-free)")
	ledgerPath := fs.String("ledger", "", "client ledger file: every accepted run's ID+spec is appended as JSONL")
	crashCheck := fs.Bool("crash-check", false, "verify the -ledger against the server instead of storming: every previously accepted run must reach a terminal state with a fetchable report")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	client := &http.Client{Timeout: 30 * time.Second}
	if *crashCheck {
		if *ledgerPath == "" {
			fmt.Fprintln(stderr, "epastorm: -crash-check requires -ledger")
			return 2
		}
		return runCrashCheck(client, *addr, *ledgerPath, *timeout, stdout, stderr)
	}

	var led *ledger
	if *ledgerPath != "" {
		var err error
		led, err = openLedger(*ledgerPath)
		if err != nil {
			fmt.Fprintf(stderr, "epastorm: %v\n", err)
			return 2
		}
		defer led.close()
	}

	v := &verdict{}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			tenant := fmt.Sprintf("tenant-%02d", c%*tenants)
			for n := 0; n < *perClient; n++ {
				storm(client, v, led, rng, *addr, tenant, *siteName,
					uint64(*seed)+uint64(c**perClient+n), *jobsN, *days, *attempts, *backoff, *timeout)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	v.mu.Lock()
	defer v.mu.Unlock()
	tbl := report.Table{
		Title:  fmt.Sprintf("stampede: %d clients × %d runs vs %s (%.1fs)", *clients, *perClient, *addr, wall.Seconds()),
		Header: []string{"outcome", "count"},
		Rows: [][]string{
			{"submit attempts", fmt.Sprint(v.submitted)},
			{"accepted", fmt.Sprint(v.accepted)},
			{"shed 429 (load)", fmt.Sprint(v.shed429)},
			{"shed 503 (draining)", fmt.Sprint(v.shed503)},
			{"shed without Retry-After (BUG)", fmt.Sprint(v.shedNoRetry)},
			{"rejected 4xx", fmt.Sprint(v.rejected)},
			{"completed", fmt.Sprint(v.completed)},
			{"failed", fmt.Sprint(v.failed)},
			{"cancelled", fmt.Sprint(v.cancelled)},
			{"accepted-then-lost (BUG)", fmt.Sprint(v.lost)},
			{"network errors", fmt.Sprint(v.netErrs)},
			{"scrape errors", fmt.Sprint(v.scrapeErrs)},
			{"reports missing (BUG)", fmt.Sprint(v.reportMissing)},
		},
	}
	if len(v.latencies) > 0 {
		sort.Slice(v.latencies, func(i, j int) bool { return v.latencies[i] < v.latencies[j] })
		q := func(p float64) time.Duration {
			return v.latencies[int(p*float64(len(v.latencies)-1))]
		}
		tbl.Rows = append(tbl.Rows,
			[]string{"submit→complete p50", q(0.50).Round(time.Millisecond).String()},
			[]string{"submit→complete p95", q(0.95).Round(time.Millisecond).String()},
			[]string{"submit→complete p99", q(0.99).Round(time.Millisecond).String()},
		)
	}
	fmt.Fprintln(stdout, tbl.Render())

	// The wire view: per-request latency quantiles by request kind, and
	// the shed rate — the client-side mirror of the server's
	// http.latency_ms histograms and shed counters.
	shedRate := 0.0
	if v.submitted > 0 {
		shedRate = float64(v.shed429+v.shed503) / float64(v.submitted)
	}
	lat := report.Table{
		Title:  fmt.Sprintf("request latency (client-observed; shed rate %.1f%% of %d submits)", 100*shedRate, v.submitted),
		Header: []string{"request", "count", "p50", "p95", "p99"},
	}
	type latRow struct {
		kind    string
		samples []time.Duration
	}
	var rows []latRow
	for _, kind := range []string{"submit", "poll", "scrape", "report", "query"} {
		if samples := v.reqLat[kind]; len(samples) > 0 {
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			rows = append(rows, latRow{kind, samples})
		}
	}
	summary := map[string]any{"summary": "request-latency", "shed_rate": shedRate, "submits": v.submitted}
	for _, row := range rows {
		lat.Rows = append(lat.Rows, []string{
			row.kind, fmt.Sprint(len(row.samples)),
			quantile(row.samples, 0.50).Round(time.Millisecond).String(),
			quantile(row.samples, 0.95).Round(time.Millisecond).String(),
			quantile(row.samples, 0.99).Round(time.Millisecond).String(),
		})
		summary[row.kind] = map[string]any{
			"count":  len(row.samples),
			"p50_ms": quantile(row.samples, 0.50).Milliseconds(),
			"p95_ms": quantile(row.samples, 0.95).Milliseconds(),
			"p99_ms": quantile(row.samples, 0.99).Milliseconds(),
		}
	}
	if len(rows) > 0 {
		fmt.Fprintln(stdout, lat.Render())
	}

	// The energy bill: each tenant's completed runs and their summed site
	// energy, read off the per-run /query metric histories.
	if len(v.energy) > 0 {
		var names []string
		for tenant := range v.energy {
			names = append(names, tenant)
		}
		sort.Strings(names)
		etbl := report.Table{
			Title:  "per-tenant energy (final power.total_energy_j via /query)",
			Header: []string{"tenant", "runs", "energy MJ", "energy kWh"},
		}
		var totRuns int
		var totJ float64
		for _, tenant := range names {
			te := v.energy[tenant]
			totRuns += te.runs
			totJ += te.joules
			etbl.Rows = append(etbl.Rows, []string{
				tenant, fmt.Sprint(te.runs),
				fmt.Sprintf("%.1f", te.joules/1e6),
				fmt.Sprintf("%.1f", te.joules/3.6e6),
			})
		}
		etbl.Rows = append(etbl.Rows, []string{
			"TOTAL", fmt.Sprint(totRuns),
			fmt.Sprintf("%.1f", totJ/1e6),
			fmt.Sprintf("%.1f", totJ/3.6e6),
		})
		fmt.Fprintln(stdout, etbl.Render())
	}
	// The summary also lands in the ledger as one JSON line; it carries
	// no "id" field, so readLedger (and -crash-check) skips it.
	if led != nil {
		if b, err := json.Marshal(summary); err == nil {
			led.mu.Lock()
			led.f.Write(append(b, '\n')) //nolint:errcheck // best-effort telemetry line
			led.mu.Unlock()
		}
	}

	if v.lost > 0 || v.shedNoRetry > 0 || v.reportMissing > 0 {
		fmt.Fprintln(stderr, "epastorm: FAILED — accepted work was lost or the shed protocol was violated")
		return 1
	}
	return 0
}

// storm submits one run with shed-aware retries, polls it to a terminal
// state, and scrapes its ops endpoints once along the way. Accepted runs
// are appended to the ledger (when one is open) the moment the 202
// lands, so a later -crash-check knows exactly what the server owes us.
func storm(client *http.Client, v *verdict, led *ledger, rng *rand.Rand, addr, tenant, siteName string,
	seed uint64, jobsN, days, attempts int, base, timeout time.Duration) {
	spec := map[string]any{"tenant": tenant, "site": siteName, "seed": seed, "jobs": jobsN, "days": days}
	body, _ := json.Marshal(spec)

	var id string
	submitted := time.Now()
	for try := 0; try < attempts; try++ {
		v.mu.Lock()
		v.submitted++
		v.mu.Unlock()
		t0 := time.Now()
		resp, err := client.Post(addr+"/runs", "application/json", bytes.NewReader(body))
		v.observe("submit", time.Since(t0))
		if err != nil {
			v.count(func(v *verdict) { v.netErrs++ })
			time.Sleep(jitter(rng, base, try, 0))
			continue
		}
		code := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		var acc struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&acc)
		resp.Body.Close()
		switch {
		case code == http.StatusAccepted && err == nil && acc.ID != "":
			id = acc.ID
		case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
			v.count(func(v *verdict) {
				if code == http.StatusTooManyRequests {
					v.shed429++
				} else {
					v.shed503++
				}
				if retryAfter == "" {
					v.shedNoRetry++
				}
			})
			var ra time.Duration
			fmt.Sscanf(retryAfter, "%d", &ra) //nolint:errcheck // 0 floor on parse failure
			time.Sleep(jitter(rng, base, try, ra*time.Second))
			continue
		default:
			v.count(func(v *verdict) { v.rejected++ })
			return
		}
		break
	}
	if id == "" {
		return // every attempt shed; that is the protocol working
	}
	v.count(func(v *verdict) { v.accepted++ })
	if led != nil {
		if err := led.record(entry{ID: id, Tenant: tenant, Site: siteName, Seed: seed, Jobs: jobsN, Days: days}); err != nil {
			v.count(func(v *verdict) { v.netErrs++ })
		}
	}

	// Scrape the run's ops surface once — stampedes hammer the read path
	// as hard as the write path.
	t0 := time.Now()
	if resp, err := client.Get(addr + "/runs/" + id + "/state"); err == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		v.observe("scrape", time.Since(t0))
	} else {
		v.count(func(v *verdict) { v.scrapeErrs++ })
	}

	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		t0 := time.Now()
		resp, err := client.Get(addr + "/runs/" + id)
		if err != nil {
			v.count(func(v *verdict) { v.netErrs++ })
			time.Sleep(base)
			continue
		}
		v.observe("poll", time.Since(t0))
		var info struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusNotFound {
			// Accepted then vanished before we saw a terminal state: the
			// exact bug class the stampede exists to catch (reaping only
			// removes idle *terminal* runs, and we are actively polling).
			v.count(func(v *verdict) { v.lost++ })
			return
		}
		if err == nil {
			switch info.State {
			case "complete":
				lat := time.Since(submitted)
				v.count(func(v *verdict) { v.completed++; v.latencies = append(v.latencies, lat) })
				t0 := time.Now()
				if resp, err := client.Get(addr + "/runs/" + id + "/report"); err == nil {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					v.observe("report", time.Since(t0))
					if resp.StatusCode != http.StatusOK || len(b) == 0 {
						v.count(func(v *verdict) { v.reportMissing++ })
					}
				} else {
					v.count(func(v *verdict) { v.reportMissing++ })
				}
				queryEnergy(client, v, addr, id, tenant)
				return
			case "failed":
				v.count(func(v *verdict) { v.failed++ })
				return
			case "cancelled":
				v.count(func(v *verdict) { v.cancelled++ })
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	v.count(func(v *verdict) { v.lost++ }) // never reached terminal inside the deadline
}

// queryEnergy reads the completed run's energy series off the per-run
// metric history (/runs/{id}/query) and books its final sample — the
// cumulative site energy in joules — under the run's tenant.
func queryEnergy(client *http.Client, v *verdict, addr, id, tenant string) {
	t0 := time.Now()
	resp, err := client.Get(addr + "/runs/" + id + "/query?metric=power.total_energy_j")
	if err != nil {
		v.count(func(v *verdict) { v.scrapeErrs++ })
		return
	}
	var qr struct {
		Samples []struct {
			T int64   `json:"t"`
			V float64 `json:"v"`
		} `json:"samples"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&qr)
	code := resp.StatusCode
	resp.Body.Close()
	v.observe("query", time.Since(t0))
	if code != http.StatusOK || decErr != nil || len(qr.Samples) == 0 {
		v.count(func(v *verdict) { v.scrapeErrs++ })
		return
	}
	v.addEnergy(tenant, qr.Samples[len(qr.Samples)-1].V)
}

func (v *verdict) count(fn func(*verdict)) {
	v.mu.Lock()
	fn(v)
	v.mu.Unlock()
}

// jitter computes the next backoff: base·2^try with ±50% jitter, floored
// at the server's Retry-After hint — the server names the earliest moment
// it wants to hear from us again, and the jitter spreads the herd out
// after that moment.
func jitter(rng *rand.Rand, base time.Duration, try int, retryAfter time.Duration) time.Duration {
	d := base << uint(try)
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	d = time.Duration(float64(d) * (0.5 + rng.Float64()))
	if d < retryAfter {
		d = retryAfter + time.Duration(rng.Int63n(int64(base)+1))
	}
	return d
}

// entry is one accepted run in the client ledger: the server's run ID
// and the exact spec the acceptance covered.
type entry struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Site   string `json:"site"`
	Seed   uint64 `json:"seed"`
	Jobs   int    `json:"jobs"`
	Days   int    `json:"days"`
}

// ledger is the client-side durable record of what the server
// acknowledged: one JSON line per accepted run, appended (and synced)
// the moment the 202 lands. It is the other half of the server's
// write-ahead journal — crash-check diffs the two.
type ledger struct {
	mu sync.Mutex
	f  *os.File
}

func openLedger(path string) (*ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	return &ledger{f: f}, nil
}

func (l *ledger) record(e entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *ledger) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.f.Close() //nolint:errcheck // append-and-synced per record
}

// readLedger loads the ledger, tolerating a torn final line (the storm
// itself may have been killed mid-append) and deduplicating IDs.
func readLedger(path string) ([]entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	seen := map[string]bool{}
	var es []entry
	for _, line := range bytes.Split(b, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e entry
		if json.Unmarshal(line, &e) != nil || e.ID == "" || seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		es = append(es, e)
	}
	return es, nil
}

// runCrashCheck replays the client ledger against a (restarted) server:
// every run the server ever acknowledged must still be there and reach a
// terminal state, and every completed run's report must be fetchable.
// Exit 0 only with zero lost runs, zero crash-induced failures, and zero
// missing reports — cancelled runs are reported but tolerated (a client
// may legitimately have cancelled them before the crash).
func runCrashCheck(client *http.Client, addr, path string, timeout time.Duration, stdout, stderr io.Writer) int {
	entries, err := readLedger(path)
	if err != nil {
		fmt.Fprintf(stderr, "epastorm: %v\n", err)
		return 2
	}
	if len(entries) == 0 {
		fmt.Fprintln(stderr, "epastorm: ledger is empty; nothing to check")
		return 2
	}

	var complete, failed, cancelled, recovered, lost, reportMissing int
	start := time.Now()
	for _, e := range entries {
		st, wasRecovered := pollTerminal(client, addr, e.ID, timeout)
		if wasRecovered {
			recovered++
		}
		switch st {
		case "complete":
			complete++
			resp, err := client.Get(addr + "/runs/" + e.ID + "/report")
			if err != nil {
				reportMissing++
				continue
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || len(b) == 0 {
				reportMissing++
			}
		case "failed":
			failed++
		case "cancelled":
			cancelled++
		default: // 404, network-dead server, or stuck non-terminal
			lost++
		}
	}

	tbl := report.Table{
		Title:  fmt.Sprintf("crash-check: %d ledgered runs vs %s (%.1fs)", len(entries), addr, time.Since(start).Seconds()),
		Header: []string{"outcome", "count"},
		Rows: [][]string{
			{"ledgered (accepted pre-crash)", fmt.Sprint(len(entries))},
			{"complete with report", fmt.Sprint(complete - reportMissing)},
			{"recovered (re-executed after crash)", fmt.Sprint(recovered)},
			{"cancelled (tolerated)", fmt.Sprint(cancelled)},
			{"failed (BUG)", fmt.Sprint(failed)},
			{"report missing (BUG)", fmt.Sprint(reportMissing)},
			{"accepted-then-lost (BUG)", fmt.Sprint(lost)},
		},
	}
	fmt.Fprintln(stdout, tbl.Render())
	if lost > 0 || failed > 0 || reportMissing > 0 {
		fmt.Fprintln(stderr, "epastorm: CRASH-CHECK FAILED — the server lost or broke acknowledged work")
		return 1
	}
	return 0
}

// pollTerminal polls one run to a terminal state, riding out transient
// network errors (the server may still be coming back up).
func pollTerminal(client *http.Client, addr, id string, timeout time.Duration) (state string, recovered bool) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(addr + "/runs/" + id)
		if err != nil {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		var info struct {
			State     string `json:"state"`
			Recovered bool   `json:"recovered"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&info)
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusNotFound {
			return "", recovered
		}
		if decErr == nil {
			recovered = recovered || info.Recovered
			switch info.State {
			case "complete", "failed", "cancelled":
				return info.State, recovered
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return "", recovered
}
