// Command epastorm drives a synthetic stampede against an epaserved
// instance: many concurrent clients submit runs, poll them to completion,
// and scrape the per-run observability endpoints, while honoring the
// server's load-shedding protocol — a 429/503 response's Retry-After is
// the floor for a jittered exponential backoff, never a hot retry loop.
//
// Usage:
//
//	epastorm -addr http://localhost:8080 -clients 200 -tenants 16 \
//	         -site cineca -jobs 20 -days 1 -per-client 3
//
// The exit code is the verdict: 0 when every accepted run reached a
// terminal state (zero accepted-then-lost work) and every shed response
// carried Retry-After; 1 otherwise. The summary table reports submission
// outcomes, shed counts, and submit-to-complete latency quantiles.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"epajsrm/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type verdict struct {
	mu            sync.Mutex
	submitted     int
	accepted      int
	shed429       int
	shed503       int
	shedNoRetry   int // shed responses missing Retry-After: protocol bug
	rejected      int // 4xx spec errors
	completed     int
	failed        int
	cancelled     int
	lost          int // accepted but never reached a terminal state
	netErrs       int
	latencies     []time.Duration
	scrapeErrs    int
	reportMissing int
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("epastorm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8080", "epaserved base URL")
	clients := fs.Int("clients", 100, "concurrent clients")
	tenants := fs.Int("tenants", 16, "distinct tenants the clients spread across")
	perClient := fs.Int("per-client", 1, "runs each client submits to completion")
	siteName := fs.String("site", "cineca", "site profile each run requests")
	jobsN := fs.Int("jobs", 20, "jobs per run")
	days := fs.Int("days", 1, "simulated days per run")
	attempts := fs.Int("attempts", 8, "max submit attempts per run before giving up")
	backoff := fs.Duration("backoff", 200*time.Millisecond, "base backoff; doubles per retry with ±50% jitter, floored at the server's Retry-After")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-run completion deadline")
	seed := fs.Int64("rngseed", 1, "client-side jitter seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	client := &http.Client{Timeout: 30 * time.Second}
	v := &verdict{}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			tenant := fmt.Sprintf("tenant-%02d", c%*tenants)
			for n := 0; n < *perClient; n++ {
				storm(client, v, rng, *addr, tenant, *siteName,
					uint64(c**perClient+n), *jobsN, *days, *attempts, *backoff, *timeout)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	v.mu.Lock()
	defer v.mu.Unlock()
	tbl := report.Table{
		Title:  fmt.Sprintf("stampede: %d clients × %d runs vs %s (%.1fs)", *clients, *perClient, *addr, wall.Seconds()),
		Header: []string{"outcome", "count"},
		Rows: [][]string{
			{"submit attempts", fmt.Sprint(v.submitted)},
			{"accepted", fmt.Sprint(v.accepted)},
			{"shed 429 (load)", fmt.Sprint(v.shed429)},
			{"shed 503 (draining)", fmt.Sprint(v.shed503)},
			{"shed without Retry-After (BUG)", fmt.Sprint(v.shedNoRetry)},
			{"rejected 4xx", fmt.Sprint(v.rejected)},
			{"completed", fmt.Sprint(v.completed)},
			{"failed", fmt.Sprint(v.failed)},
			{"cancelled", fmt.Sprint(v.cancelled)},
			{"accepted-then-lost (BUG)", fmt.Sprint(v.lost)},
			{"network errors", fmt.Sprint(v.netErrs)},
			{"scrape errors", fmt.Sprint(v.scrapeErrs)},
			{"reports missing (BUG)", fmt.Sprint(v.reportMissing)},
		},
	}
	if len(v.latencies) > 0 {
		sort.Slice(v.latencies, func(i, j int) bool { return v.latencies[i] < v.latencies[j] })
		q := func(p float64) time.Duration {
			return v.latencies[int(p*float64(len(v.latencies)-1))]
		}
		tbl.Rows = append(tbl.Rows,
			[]string{"submit→complete p50", q(0.50).Round(time.Millisecond).String()},
			[]string{"submit→complete p95", q(0.95).Round(time.Millisecond).String()},
			[]string{"submit→complete p99", q(0.99).Round(time.Millisecond).String()},
		)
	}
	fmt.Fprintln(stdout, tbl.Render())
	if v.lost > 0 || v.shedNoRetry > 0 || v.reportMissing > 0 {
		fmt.Fprintln(stderr, "epastorm: FAILED — accepted work was lost or the shed protocol was violated")
		return 1
	}
	return 0
}

// storm submits one run with shed-aware retries, polls it to a terminal
// state, and scrapes its ops endpoints once along the way.
func storm(client *http.Client, v *verdict, rng *rand.Rand, addr, tenant, siteName string,
	seed uint64, jobsN, days, attempts int, base, timeout time.Duration) {
	spec := map[string]any{"tenant": tenant, "site": siteName, "seed": seed, "jobs": jobsN, "days": days}
	body, _ := json.Marshal(spec)

	var id string
	submitted := time.Now()
	for try := 0; try < attempts; try++ {
		v.mu.Lock()
		v.submitted++
		v.mu.Unlock()
		resp, err := client.Post(addr+"/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			v.count(func(v *verdict) { v.netErrs++ })
			time.Sleep(jitter(rng, base, try, 0))
			continue
		}
		code := resp.StatusCode
		retryAfter := resp.Header.Get("Retry-After")
		var acc struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&acc)
		resp.Body.Close()
		switch {
		case code == http.StatusAccepted && err == nil && acc.ID != "":
			id = acc.ID
		case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
			v.count(func(v *verdict) {
				if code == http.StatusTooManyRequests {
					v.shed429++
				} else {
					v.shed503++
				}
				if retryAfter == "" {
					v.shedNoRetry++
				}
			})
			var ra time.Duration
			fmt.Sscanf(retryAfter, "%d", &ra) //nolint:errcheck // 0 floor on parse failure
			time.Sleep(jitter(rng, base, try, ra*time.Second))
			continue
		default:
			v.count(func(v *verdict) { v.rejected++ })
			return
		}
		break
	}
	if id == "" {
		return // every attempt shed; that is the protocol working
	}
	v.count(func(v *verdict) { v.accepted++ })

	// Scrape the run's ops surface once — stampedes hammer the read path
	// as hard as the write path.
	if resp, err := client.Get(addr + "/runs/" + id + "/state"); err == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	} else {
		v.count(func(v *verdict) { v.scrapeErrs++ })
	}

	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(addr + "/runs/" + id)
		if err != nil {
			v.count(func(v *verdict) { v.netErrs++ })
			time.Sleep(base)
			continue
		}
		var info struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&info)
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusNotFound {
			// Accepted then vanished before we saw a terminal state: the
			// exact bug class the stampede exists to catch (reaping only
			// removes idle *terminal* runs, and we are actively polling).
			v.count(func(v *verdict) { v.lost++ })
			return
		}
		if err == nil {
			switch info.State {
			case "complete":
				lat := time.Since(submitted)
				v.count(func(v *verdict) { v.completed++; v.latencies = append(v.latencies, lat) })
				if resp, err := client.Get(addr + "/runs/" + id + "/report"); err == nil {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || len(b) == 0 {
						v.count(func(v *verdict) { v.reportMissing++ })
					}
				} else {
					v.count(func(v *verdict) { v.reportMissing++ })
				}
				return
			case "failed":
				v.count(func(v *verdict) { v.failed++ })
				return
			case "cancelled":
				v.count(func(v *verdict) { v.cancelled++ })
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	v.count(func(v *verdict) { v.lost++ }) // never reached terminal inside the deadline
}

func (v *verdict) count(fn func(*verdict)) {
	v.mu.Lock()
	fn(v)
	v.mu.Unlock()
}

// jitter computes the next backoff: base·2^try with ±50% jitter, floored
// at the server's Retry-After hint — the server names the earliest moment
// it wants to hear from us again, and the jitter spreads the herd out
// after that moment.
func jitter(rng *rand.Rand, base time.Duration, try int, retryAfter time.Duration) time.Duration {
	d := base << uint(try)
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	d = time.Duration(float64(d) * (0.5 + rng.Float64()))
	if d < retryAfter {
		d = retryAfter + time.Duration(rng.Int63n(int64(base)+1))
	}
	return d
}
