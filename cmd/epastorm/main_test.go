package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"epajsrm/internal/service"
)

// TestStormPrintsPerTenantEnergy drives a small storm against a real
// in-process epaserved service and holds the satellite contract: every
// completed run's energy series is read off /runs/{id}/query and the
// storm ends with a per-tenant energy table.
func TestStormPrintsPerTenantEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a live service")
	}
	svc, err := service.New(service.Default())
	if err != nil {
		t.Fatal(err)
	}
	bound, closeHTTP, err := svc.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx) //nolint:errcheck
		closeHTTP(ctx)    //nolint:errcheck
	}()

	var out, errb bytes.Buffer
	code := run([]string{
		"-addr", "http://" + bound,
		"-clients", "4", "-tenants", "2", "-per-client", "1",
		"-site", "cineca", "-jobs", "10", "-days", "1", "-seed", "7",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("storm exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "per-tenant energy") {
		t.Fatalf("per-tenant energy table missing from storm output:\n%s", got)
	}
	for _, tenant := range []string{"tenant-00", "tenant-01", "TOTAL"} {
		if !strings.Contains(got, tenant) {
			t.Fatalf("energy table missing row %q:\n%s", tenant, got)
		}
	}
	// Four completed runs of the same spec: the TOTAL row must book them
	// all, and the table must carry a non-zero energy figure.
	if strings.Contains(got, "TOTAL") && strings.Contains(got, "| 0.0") {
		lines := strings.Split(got, "\n")
		for _, ln := range lines {
			if strings.Contains(ln, "TOTAL") && strings.Contains(ln, " 0.0 ") {
				t.Fatalf("TOTAL energy row is zero:\n%s", got)
			}
		}
	}
}
