// Command benchjson reads `go test -bench` output on stdin, echoes it
// unchanged to stdout, and writes a structured JSON record of the run to
// -out. The record keeps the raw text verbatim (the "raw" field), so the
// benchstat-compatible form is always recoverable:
//
//	jq -r .raw BENCH_2026-01-01.json | benchstat /dev/stdin
//
// The parsed form exposes per-benchmark metrics (ns/op, B/op, allocs/op,
// and any custom units) for trend tooling that prefers JSON.
//
// Usage:
//
//	go test -bench=. -benchmem -count=1 -run '^$' . | benchjson -out BENCH_<date>.json
//
// With -diff, benchjson instead compares two records it previously wrote
// and reports per-benchmark deltas on ns/op, B/op and allocs/op. A
// regression beyond -threshold percent on any compared metric makes the
// exit status non-zero, which is how CI gates hot-path benchmarks against
// the last committed baseline:
//
//	benchjson -diff -threshold 10 -bench BenchmarkEngineEventThroughput,BenchmarkSchedulerPickEASY old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Record is the file schema.
type Record struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Raw        string      `json:"raw"`
}

func main() {
	out := flag.String("out", "", "path to write the JSON record (required unless -diff)")
	diff := flag.Bool("diff", false, "compare two JSON records: benchjson -diff [flags] old.json new.json")
	threshold := flag.Float64("threshold", 10, "with -diff: fail on regressions beyond this percent")
	benchFilter := flag.String("bench", "", "with -diff: comma-separated benchmark names to compare (default: all common)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two record files (old.json new.json)")
			os.Exit(2)
		}
		oldRec, err := loadRecord(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newRec, err := loadRecord(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		report, breaches := diffRecords(oldRec, newRec, *threshold, splitFilter(*benchFilter))
		fmt.Print(report)
		if breaches > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.1f%%\n", breaches, *threshold)
			os.Exit(1)
		}
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	var rec Record
	var raw strings.Builder
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		raw.WriteString(line)
		raw.WriteByte('\n')

		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rec.Raw = raw.String()

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

// loadRecord reads a JSON record written by a previous benchjson run.
func loadRecord(path string) (Record, error) {
	var rec Record
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// normalizeName strips the trailing "-<GOMAXPROCS>" suffix go test appends
// when it runs with more than one CPU, so records taken on different
// machines (or with different -cpu settings) still line up by name.
func normalizeName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func splitFilter(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// diffMetrics are the units compared, in report order; for all of them
// larger is worse, so a regression is new > old * (1 + threshold/100).
var diffMetrics = []string{"ns/op", "B/op", "allocs/op"}

// diffRecords compares the benchmarks common to both records (or the ones
// named in filter) and returns a human-readable report plus the number of
// metrics that regressed beyond threshold percent. Benchmarks named in the
// filter but missing from either record count as breaches — a CI gate must
// not pass because the benchmark it guards silently disappeared.
func diffRecords(oldRec, newRec Record, threshold float64, filter []string) (string, int) {
	oldBy := map[string]Benchmark{}
	for _, b := range oldRec.Benchmarks {
		oldBy[normalizeName(b.Name)] = b
	}
	newBy := map[string]Benchmark{}
	var order []string
	for _, b := range newRec.Benchmarks {
		n := normalizeName(b.Name)
		if _, dup := newBy[n]; !dup {
			order = append(order, n)
		}
		newBy[n] = b
	}

	var sb strings.Builder
	breaches := 0
	names := order
	if len(filter) > 0 {
		names = filter
	}
	fmt.Fprintf(&sb, "%-50s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, name := range names {
		nb, okNew := newBy[name]
		ob, okOld := oldBy[name]
		if !okNew || !okOld {
			if len(filter) > 0 {
				fmt.Fprintf(&sb, "%-50s %-10s missing from %s record: BREACH\n",
					name, "-", missingSide(okOld, okNew))
				breaches++
			}
			continue
		}
		for _, metric := range diffMetrics {
			ov, okO := ob.Metrics[metric]
			nv, okN := nb.Metrics[metric]
			if !okO || !okN {
				continue
			}
			deltaPct := 0.0
			if ov != 0 {
				deltaPct = 100 * (nv - ov) / ov
			} else if nv != 0 {
				deltaPct = 100
			}
			mark := ""
			if deltaPct > threshold {
				mark = "  REGRESSION"
				breaches++
			}
			fmt.Fprintf(&sb, "%-50s %-10s %14.2f %14.2f %+8.1f%%%s\n", name, metric, ov, nv, deltaPct, mark)
		}
	}
	return sb.String(), breaches
}

func missingSide(okOld, okNew bool) string {
	switch {
	case !okOld && !okNew:
		return "both"
	case !okOld:
		return "old"
	default:
		return "new"
	}
}

// parseLine parses "BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op".
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[f[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
