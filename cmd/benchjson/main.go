// Command benchjson reads `go test -bench` output on stdin, echoes it
// unchanged to stdout, and writes a structured JSON record of the run to
// -out. The record keeps the raw text verbatim (the "raw" field), so the
// benchstat-compatible form is always recoverable:
//
//	jq -r .raw BENCH_2026-01-01.json | benchstat /dev/stdin
//
// The parsed form exposes per-benchmark metrics (ns/op, B/op, allocs/op,
// and any custom units) for trend tooling that prefers JSON.
//
// Usage:
//
//	go test -bench=. -benchmem -count=1 -run '^$' . | benchjson -out BENCH_<date>.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Record is the file schema.
type Record struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Raw        string      `json:"raw"`
}

func main() {
	out := flag.String("out", "", "path to write the JSON record (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	var rec Record
	var raw strings.Builder
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		raw.WriteString(line)
		raw.WriteByte('\n')

		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rec.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rec.Raw = raw.String()

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rec.Benchmarks), *out)
}

// parseLine parses "BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op".
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[f[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
