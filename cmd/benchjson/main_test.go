package main

import (
	"strings"
	"testing"
)

func rec(benches ...Benchmark) Record { return Record{Benchmarks: benches} }

func bm(name string, ns, b, allocs float64) Benchmark {
	return Benchmark{Name: name, Runs: 100, Metrics: map[string]float64{
		"ns/op": ns, "B/op": b, "allocs/op": allocs,
	}}
}

func TestDiffNoRegression(t *testing.T) {
	old := rec(bm("BenchmarkA", 100, 64, 2))
	neu := rec(bm("BenchmarkA", 105, 64, 2)) // +5% under a 10% gate
	report, breaches := diffRecords(old, neu, 10, nil)
	if breaches != 0 {
		t.Fatalf("breaches = %d, want 0\n%s", breaches, report)
	}
	if !strings.Contains(report, "BenchmarkA") || !strings.Contains(report, "+5.0%") {
		t.Errorf("report missing expected delta:\n%s", report)
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	old := rec(bm("BenchmarkA", 100, 64, 2), bm("BenchmarkB", 50, 0, 0))
	neu := rec(bm("BenchmarkA", 125, 64, 2), bm("BenchmarkB", 50, 0, 0))
	report, breaches := diffRecords(old, neu, 10, nil)
	if breaches != 1 {
		t.Fatalf("breaches = %d, want 1\n%s", breaches, report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Errorf("report lacks REGRESSION mark:\n%s", report)
	}
}

func TestDiffNormalizesProcsSuffix(t *testing.T) {
	// Same benchmark recorded with and without the -GOMAXPROCS suffix.
	old := rec(bm("BenchmarkA", 100, 64, 2))
	neu := rec(bm("BenchmarkA-8", 101, 64, 2))
	_, breaches := diffRecords(old, neu, 10, []string{"BenchmarkA"})
	if breaches != 0 {
		t.Fatalf("suffix normalization failed: breaches = %d", breaches)
	}
	if normalizeName("BenchmarkSuite/procs=4") != "BenchmarkSuite/procs=4" {
		t.Error("subtest names without a procs suffix must pass through unchanged")
	}
}

func TestDiffFilteredMissingIsBreach(t *testing.T) {
	old := rec(bm("BenchmarkA", 100, 64, 2))
	neu := rec() // guarded benchmark vanished from the new record
	report, breaches := diffRecords(old, neu, 10, []string{"BenchmarkA"})
	if breaches != 1 {
		t.Fatalf("breaches = %d, want 1 for a missing guarded benchmark\n%s", breaches, report)
	}
	// Unfiltered diffs only compare the intersection — no breach.
	if _, b := diffRecords(old, neu, 10, nil); b != 0 {
		t.Fatalf("unfiltered diff breached on a disjoint record: %d", b)
	}
}

func TestDiffMetricsOrderAndBudget(t *testing.T) {
	old := rec(bm("BenchmarkA", 100, 100, 10))
	neu := rec(bm("BenchmarkA", 90, 150, 12)) // B/op +50%, allocs +20%
	report, breaches := diffRecords(old, neu, 15, nil)
	if breaches != 2 {
		t.Fatalf("breaches = %d, want 2 (B/op and allocs/op)\n%s", breaches, report)
	}
}
