package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"epajsrm/internal/alert"
	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
	"epajsrm/internal/tsdb"
)

// simTrace runs a small deterministic simulation at the given seed and
// writes its control-loop trace in both forms, returning the two paths.
func simTrace(t *testing.T, seed uint64) (chrome, jsonl string) {
	t.Helper()
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      seed,
	})
	tr := trace.New()
	m.AttachTracer(tr)
	for i := 0; i < 16; i++ {
		j := &jobs.Job{
			ID:            int64(i + 1),
			User:          "ta",
			Tag:           "app",
			Nodes:         8 + i%9,
			Walltime:      3 * simulator.Hour,
			TrueRuntime:   simulator.Time(30+3*i+int(seed%7)) * simulator.Minute,
			PowerPerNodeW: 280,
			MemFrac:       0.25,
		}
		if err := m.Submit(j, simulator.Time(i)*11*simulator.Minute); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(-1)

	dir := t.TempDir()
	chrome = filepath.Join(dir, "run.json")
	jsonl = filepath.Join(dir, "run.jsonl")
	for path, write := range map[string]func(*os.File) error{
		chrome: func(f *os.File) error { return tr.WriteChrome(f) },
		jsonl:  func(f *os.File) error { return tr.WriteJSONL(f) },
	} {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return chrome, jsonl
}

// analyze drives the CLI in-process.
func analyze(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestAnalyzeDeterministic pins byte determinism and form equivalence: the
// same trace analyzed twice gives identical bytes, and the Chrome and
// JSONL forms of one run analyze to the same report (past the header line
// naming the input file).
func TestAnalyzeDeterministic(t *testing.T) {
	chrome, jsonl := simTrace(t, 7)
	code, out1, errb := analyze(t, chrome)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	_, out2, _ := analyze(t, chrome)
	if out1 != out2 {
		t.Fatal("analysis not byte-deterministic across runs")
	}
	_, outJSONL, _ := analyze(t, jsonl)
	body := func(s string) string {
		_, rest, _ := strings.Cut(s, "\n")
		return rest
	}
	if body(out1) != body(outJSONL) {
		t.Fatal("chrome and jsonl forms analyze differently")
	}

	for _, want := range []string{
		"Events per track", "Job spans per system", "Scheduler decisions",
		"Power plane", "queue-wait", "telemetry samples",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestJobCriticalPath checks the -job timeline: the job's lifecycle events
// appear in order with a makespan decomposition.
func TestJobCriticalPath(t *testing.T) {
	chrome, _ := simTrace(t, 7)
	code, out, errb := analyze(t, "-job", "3", chrome)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{"Critical path: job 3", "submit", "dispatch", "run", "makespan", "= queued", "+ computing"} {
		if !strings.Contains(out, want) {
			t.Errorf("critical path missing %q", want)
		}
	}
	if idx := strings.Index(out, "submit"); idx < 0 || idx > strings.Index(out, "makespan") {
		t.Error("submit does not precede makespan summary")
	}

	code, out, _ = analyze(t, "-job", "9999", chrome)
	if code != 0 || !strings.Contains(out, "job 9999: no events") {
		t.Fatalf("missing-job case: exit %d, out %q", code, out)
	}
}

// TestDiffSameSeed is the acceptance contract: two same-seed runs have
// identical event profiles and -diff says so with exit 0.
func TestDiffSameSeed(t *testing.T) {
	a, _ := simTrace(t, 11)
	b, _ := simTrace(t, 11)
	code, out, errb := analyze(t, "-diff", a, b)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "zero differences") {
		t.Fatalf("same-seed diff output: %q", out)
	}
}

// TestDiffDifferentSeeds: different seeds diverge, and the tool reports
// which event classes moved with exit 1.
func TestDiffDifferentSeeds(t *testing.T) {
	a, _ := simTrace(t, 11)
	b, _ := simTrace(t, 12)
	code, out, _ := analyze(t, "-diff", a, b)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "event classes differ") || !strings.Contains(out, "Event profile differences") {
		t.Fatalf("diff output: %q", out)
	}
}

// TestUsageErrors: bad invocations exit 2 without touching files.
func TestUsageErrors(t *testing.T) {
	if code, _, _ := analyze(t); code != 2 {
		t.Error("no args should exit 2")
	}
	if code, _, _ := analyze(t, "-diff", "only-one"); code != 2 {
		t.Error("-diff with one file should exit 2")
	}
	if code, _, errb := analyze(t, "/nonexistent/trace.json"); code != 1 || errb == "" {
		t.Error("missing file should exit 1 with an error")
	}
}

// alertTrace runs a watchdog-armed simulation whose rule must fire and
// writes its trace, returning the Chrome-form path.
func alertTrace(t *testing.T) string {
	t.Helper()
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      3,
	})
	tr := trace.New()
	m.AttachTracer(tr)
	m.AttachHistory(tsdb.New(m.Reg, tsdb.Config{}))
	w, err := alert.New(m.Hist, m.Reg, alert.Rules{Rules: []alert.Rule{{
		Name: "power-above-zero", Kind: "threshold", Metric: "power.total_w",
		Severity: "page", Agg: "last", Op: ">", Value: 0, ForS: 600,
	}}}, simulator.Day)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWatchdog(w)
	for i := 0; i < 8; i++ {
		j := &jobs.Job{
			ID: int64(i + 1), User: "ta", Tag: "app", Nodes: 8,
			Walltime: 2 * simulator.Hour, TrueRuntime: simulator.Hour,
			PowerPerNodeW: 280, MemFrac: 0.25,
		}
		if err := m.Submit(j, simulator.Time(i)*10*simulator.Minute); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(simulator.Day)

	path := filepath.Join(t.TempDir(), "alerts.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAlertsView checks -alerts: the timeline names the firing rule, the
// episode table carries power context, and the view is deterministic.
func TestAlertsView(t *testing.T) {
	path := alertTrace(t)
	code, out, errb := analyze(t, "-alerts", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	for _, want := range []string{
		"Alert timeline", "alert_firing", "power-above-zero",
		"Alert episodes vs power plane", "page",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("alerts view missing %q:\n%s", want, out)
		}
	}
	// The alerts track also shows up in the per-track tally.
	if !strings.Contains(out, "alerts") {
		t.Errorf("track counts missing the alerts track:\n%s", out)
	}
	_, out2, _ := analyze(t, "-alerts", path)
	if out != out2 {
		t.Fatal("alerts view not byte-deterministic")
	}
}

// TestAlertsViewWithoutAlertTrack degrades gracefully on a watchdog-less
// trace.
func TestAlertsViewWithoutAlertTrack(t *testing.T) {
	chrome, _ := simTrace(t, 7)
	code, out, errb := analyze(t, "-alerts", chrome)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errb)
	}
	if !strings.Contains(out, "no alert events in trace") {
		t.Fatalf("missing graceful no-alerts note:\n%s", out)
	}
}
