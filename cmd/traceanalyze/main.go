// Command traceanalyze answers questions offline about a control-loop
// trace that epasim or epabench wrote (-trace / -trace-jsonl): queue-wait
// and run-span percentiles per system, power-cap violation and
// staleness-degrade spans, scheduler decision tallies, per-track event
// counts, and the critical path of a single job. It reads both supported
// forms (Chrome trace_event JSON and JSONL), auto-detected.
//
// Usage:
//
//	traceanalyze run.json              # full report
//	traceanalyze -job 17 run.json      # plus job 17's critical path
//	traceanalyze -alerts run.json      # plus the SLO alert timeline
//	traceanalyze -diff a.json b.json   # compare two runs' event profiles
//
// Output is byte-deterministic for a given input: two runs of the tool on
// the same trace produce identical bytes, and -diff on traces from two
// same-seed runs reports zero differences.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"epajsrm/internal/report"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive the
// CLI in-process and assert output bytes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobID := fs.Int("job", 0, "also print the critical path of this job id")
	alerts := fs.Bool("alerts", false, "also print the SLO alert timeline with power-plane context")
	diff := fs.Bool("diff", false, "compare two traces' event profiles (takes two files)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diff {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "usage: traceanalyze -diff a.json b.json")
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), stdout, stderr)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: traceanalyze [-job N] trace-file")
		return 2
	}
	evs, meta, err := readFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "trace %s: %d events\n\n", fs.Arg(0), len(evs))
	writeTrackCounts(stdout, evs)
	writeSpanPercentiles(stdout, evs)
	writeSchedTally(stdout, evs)
	writePowerReport(stdout, evs)
	if *alerts {
		writeAlertReport(stdout, evs)
	}
	if *jobID != 0 {
		writeJobPath(stdout, evs, meta, *jobID)
	}
	return 0
}

func readFile(path string) ([]trace.Event, *trace.Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

func trackName(pid int) string {
	switch pid {
	case trace.PidJobs:
		return "jobs"
	case trace.PidSched:
		return "scheduler"
	case trace.PidPower:
		return "power"
	case trace.PidFault:
		return "faults"
	case trace.PidAlerts:
		return "alerts"
	}
	return fmt.Sprintf("pid%d", pid)
}

// writeTrackCounts tallies events per (track, name, phase).
func writeTrackCounts(w io.Writer, evs []trace.Event) {
	type key struct {
		pid  int
		name string
		ph   string
	}
	counts := map[key]int{}
	for i := range evs {
		counts[key{evs[i].Pid, evs[i].Name, evs[i].Ph}]++
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].name < keys[j].name
	})
	tbl := report.Table{
		Title:  "Events per track",
		Header: []string{"track", "event", "phase", "count"},
	}
	for _, k := range keys {
		tbl.Rows = append(tbl.Rows, []string{
			trackName(k.pid), k.name, k.ph, fmt.Sprint(counts[k]),
		})
	}
	fmt.Fprintln(w, tbl.Render())
}

// pct returns the q-quantile of sorted (ascending) durations.
func pct(sorted []simulator.Time, q float64) simulator.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// writeSpanPercentiles reports queue-wait and run span percentiles grouped
// by the spans' system arg (empty when the trace predates the system tag).
func writeSpanPercentiles(w io.Writer, evs []trace.Event) {
	durs := map[[2]string][]simulator.Time{}
	for i := range evs {
		e := &evs[i]
		if e.Pid != trace.PidJobs || e.Ph != "X" {
			continue
		}
		if e.Name != "queue-wait" && e.Name != "run" {
			continue
		}
		sys, _ := e.ArgString("system")
		k := [2]string{sys, e.Name}
		durs[k] = append(durs[k], e.Dur)
	}
	keys := make([][2]string, 0, len(durs))
	for k := range durs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	tbl := report.Table{
		Title:  "Job spans per system",
		Header: []string{"system", "span", "n", "p50", "p90", "p99", "max"},
	}
	for _, k := range keys {
		ds := durs[k]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		sys := k[0]
		if sys == "" {
			sys = "(untagged)"
		}
		tbl.Rows = append(tbl.Rows, []string{
			sys, k[1], fmt.Sprint(len(ds)),
			pct(ds, 0.50).String(), pct(ds, 0.90).String(),
			pct(ds, 0.99).String(), ds[len(ds)-1].String(),
		})
	}
	if len(tbl.Rows) == 0 {
		fmt.Fprintln(w, "no queue-wait/run spans in trace")
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintln(w, tbl.Render())
}

// writeSchedTally reports scheduler decision instants: how often each
// reason fired and how often it came with picked=true.
func writeSchedTally(w io.Writer, evs []trace.Event) {
	type tally struct{ picked, skipped, other int }
	tallies := map[string]*tally{}
	for i := range evs {
		e := &evs[i]
		if e.Pid != trace.PidSched || e.Ph != "i" {
			continue
		}
		t := tallies[e.Name]
		if t == nil {
			t = &tally{}
			tallies[e.Name] = t
		}
		switch picked, ok := pickedArg(e); {
		case ok && picked:
			t.picked++
		case ok:
			t.skipped++
		default:
			t.other++
		}
	}
	if len(tallies) == 0 {
		fmt.Fprintln(w, "no scheduler decisions in trace")
		fmt.Fprintln(w)
		return
	}
	names := make([]string, 0, len(tallies))
	for n := range tallies {
		names = append(names, n)
	}
	sort.Strings(names)
	tbl := report.Table{
		Title:  "Scheduler decisions",
		Header: []string{"reason", "picked", "skipped", "untagged"},
	}
	for _, n := range names {
		t := tallies[n]
		tbl.Rows = append(tbl.Rows, []string{
			n, fmt.Sprint(t.picked), fmt.Sprint(t.skipped), fmt.Sprint(t.other),
		})
	}
	fmt.Fprintln(w, tbl.Render())
}

func pickedArg(e *trace.Event) (picked, ok bool) {
	for _, a := range e.Args {
		if a.Key == "picked" {
			b, isB := a.Val.(bool)
			return b, isB
		}
	}
	return false, false
}

// writePowerReport derives power-plane findings: cap actuations, samples
// above the administrative system cap (grouped into consecutive violation
// spans), and telemetry staleness degrade windows.
func writePowerReport(w io.Writer, evs []trace.Event) {
	var power []*trace.Event
	for i := range evs {
		if evs[i].Pid == trace.PidPower {
			power = append(power, &evs[i])
		}
	}
	sort.SliceStable(power, func(i, j int) bool { return power[i].Ts < power[j].Ts })

	var (
		sysCapW      float64
		capSets      int
		violSamples  int
		violSpans    int
		violDur      simulator.Time
		maxOverW     float64
		inViol       bool
		violStart    simulator.Time
		violLast     simulator.Time
		degradeOpen  = simulator.Time(-1)
		degradeSpans int
		degradeDur   simulator.Time
		samples      int
	)
	endViol := func() {
		if inViol {
			violSpans++
			violDur += violLast - violStart
			inViol = false
		}
	}
	for _, e := range power {
		switch {
		case e.Name == "capmc.set_system_cap":
			capSets++
			if v, ok := e.ArgFloat("value"); ok {
				sysCapW = v
			}
		case e.Name == "it_power_w":
			samples++
			v, ok := e.ArgFloat("value")
			if !ok {
				continue
			}
			if sysCapW > 0 && v > sysCapW {
				violSamples++
				if over := v - sysCapW; over > maxOverW {
					maxOverW = over
				}
				if !inViol {
					inViol = true
					violStart = e.Ts
				}
				violLast = e.Ts
			} else {
				endViol()
			}
		case e.Name == "staleness-guard-degrade":
			if degradeOpen < 0 {
				degradeOpen = e.Ts
			}
		case e.Name == "staleness-guard-restore":
			if degradeOpen >= 0 {
				degradeSpans++
				degradeDur += e.Ts - degradeOpen
				degradeOpen = -1
			}
		}
	}
	endViol()

	tbl := report.Table{
		Title:  "Power plane",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"telemetry samples", fmt.Sprint(samples)},
			{"system cap sets", fmt.Sprint(capSets)},
		},
	}
	if sysCapW > 0 {
		tbl.Rows = append(tbl.Rows,
			[]string{"final system cap", fmt.Sprintf("%.0f W", sysCapW)},
			[]string{"samples above cap", fmt.Sprint(violSamples)},
			[]string{"violation spans", fmt.Sprintf("%d spanning %s", violSpans, violDur)},
		)
		if violSamples > 0 {
			tbl.Rows = append(tbl.Rows,
				[]string{"worst overage", fmt.Sprintf("%.0f W", maxOverW)})
		}
	}
	row := fmt.Sprintf("%d spanning %s", degradeSpans, degradeDur)
	if degradeOpen >= 0 {
		row += fmt.Sprintf(" (one open at %s)", degradeOpen)
	}
	tbl.Rows = append(tbl.Rows, []string{"staleness degrades", row})
	fmt.Fprintln(w, tbl.Render())
}

// writeAlertReport prints the SLO watchdog's view of the run: the
// firing/resolution timeline off the alerts track, and each alert episode
// annotated with power-plane context — how many telemetry samples sat
// above the administrative cap and the peak draw while the alert was
// firing — so an episode can be read against what the power books said.
func writeAlertReport(w io.Writer, evs []trace.Event) {
	var instants, spans []*trace.Event
	var power []*trace.Event
	for i := range evs {
		e := &evs[i]
		switch {
		case e.Pid == trace.PidAlerts && e.Ph == "i":
			instants = append(instants, e)
		case e.Pid == trace.PidAlerts && e.Ph == "X":
			spans = append(spans, e)
		case e.Pid == trace.PidPower:
			power = append(power, e)
		}
	}
	if len(instants) == 0 && len(spans) == 0 {
		fmt.Fprintln(w, "no alert events in trace (run with epasim -slo)")
		fmt.Fprintln(w)
		return
	}
	sort.SliceStable(instants, func(i, j int) bool { return instants[i].Ts < instants[j].Ts })
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Ts < spans[j].Ts })
	sort.SliceStable(power, func(i, j int) bool { return power[i].Ts < power[j].Ts })

	tl := report.Table{
		Title:  "Alert timeline",
		Header: []string{"t", "event", "detail"},
	}
	for _, e := range instants {
		tl.Rows = append(tl.Rows, []string{e.Ts.String(), e.Name, argString(e)})
	}
	fmt.Fprintln(w, tl.Render())

	// The administrative cap moves over the run; replay the power track
	// once per episode to count in-window samples above the then-current
	// cap and the peak draw.
	ep := report.Table{
		Title:  "Alert episodes vs power plane",
		Header: []string{"rule", "severity", "start", "duration", "samples>cap", "peak W", "note"},
	}
	for _, s := range spans {
		rule := strings.TrimPrefix(s.Name, "alert:")
		sev, _ := s.ArgString("severity")
		var capW, peakW float64
		var above int
		for _, p := range power {
			switch p.Name {
			case "capmc.set_system_cap":
				if v, ok := p.ArgFloat("value"); ok {
					capW = v
				}
			case "it_power_w":
				if p.Ts < s.Ts || p.Ts > s.Ts+s.Dur {
					continue
				}
				if v, ok := p.ArgFloat("value"); ok {
					if v > peakW {
						peakW = v
					}
					if capW > 0 && v > capW {
						above++
					}
				}
			}
		}
		note := ""
		if open, ok := s.ArgBool("open_at_end"); ok && open {
			note = "open at end"
		}
		ep.Rows = append(ep.Rows, []string{
			rule, sev, s.Ts.String(), s.Dur.String(),
			fmt.Sprint(above), fmt.Sprintf("%.0f", peakW), note,
		})
	}
	if len(ep.Rows) > 0 {
		fmt.Fprintln(w, ep.Render())
	}
}

// writeJobPath prints job id's event timeline and a critical-path summary:
// where its makespan went (queued, computing, checkpoint I/O).
func writeJobPath(w io.Writer, evs []trace.Event, meta *trace.Meta, id int) {
	var mine []*trace.Event
	for i := range evs {
		if evs[i].Pid == trace.PidJobs && evs[i].Tid == id {
			mine = append(mine, &evs[i])
		}
	}
	if len(mine) == 0 {
		fmt.Fprintf(w, "job %d: no events in trace\n", id)
		return
	}
	sort.SliceStable(mine, func(i, j int) bool { return mine[i].Ts < mine[j].Ts })
	label := fmt.Sprintf("job %d", id)
	if meta != nil && meta.ThreadNames[id] != "" {
		label = meta.ThreadNames[id]
	}
	tbl := report.Table{
		Title:  "Critical path: " + label,
		Header: []string{"t", "event", "duration", "detail"},
	}
	var queued, running, ckpt simulator.Time
	first, last := mine[0].Ts, simulator.Time(0)
	for _, e := range mine {
		if end := e.Ts + e.Dur; end > last {
			last = end
		}
		switch e.Name {
		case "queue-wait":
			queued += e.Dur
		case "run":
			running += e.Dur
		case "ckpt-write", "ckpt-drain", "ckpt-restore":
			ckpt += e.Dur
		}
		dur := "-"
		if e.Ph == "X" {
			dur = e.Dur.String()
		}
		tbl.Rows = append(tbl.Rows, []string{e.Ts.String(), e.Name, dur, argString(e)})
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"", "makespan", (last - first).String(), ""},
		[]string{"", "= queued", queued.String(), ""},
		[]string{"", "+ computing", running.String(), ""},
		[]string{"", "+ checkpoint I/O", ckpt.String(), ""},
	)
	fmt.Fprintln(w, tbl.Render())
}

// argString renders an event's args compactly in their recorded order.
func argString(e *trace.Event) string {
	parts := make([]string, 0, len(e.Args))
	for _, a := range e.Args {
		switch v := a.Val.(type) {
		case float64:
			parts = append(parts, fmt.Sprintf("%s=%g", a.Key, v))
		default:
			parts = append(parts, fmt.Sprintf("%s=%v", a.Key, v))
		}
	}
	return strings.Join(parts, " ")
}

// profileKey aggregates one event class for -diff.
type profileKey struct {
	pid  int
	ph   string
	name string
}

type profileVal struct {
	count int
	dur   simulator.Time
}

func profile(evs []trace.Event) map[profileKey]profileVal {
	out := map[profileKey]profileVal{}
	for i := range evs {
		e := &evs[i]
		v := out[profileKey{e.Pid, e.Ph, e.Name}]
		v.count++
		v.dur += e.Dur
		out[profileKey{e.Pid, e.Ph, e.Name}] = v
	}
	return out
}

// runDiff compares two traces' event profiles — per-class counts and total
// span durations. Two same-seed runs of the same binary produce identical
// profiles, so any row here is a real divergence.
func runDiff(pathA, pathB string, stdout, stderr io.Writer) int {
	evsA, _, err := readFile(pathA)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	evsB, _, err := readFile(pathB)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	pa, pb := profile(evsA), profile(evsB)
	keys := map[profileKey]bool{}
	for k := range pa {
		keys[k] = true
	}
	for k := range pb {
		keys[k] = true
	}
	sorted := make([]profileKey, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].pid != sorted[j].pid {
			return sorted[i].pid < sorted[j].pid
		}
		return sorted[i].name < sorted[j].name
	})
	tbl := report.Table{
		Title:  "Event profile differences",
		Header: []string{"track", "event", "count a", "count b", "total dur a", "total dur b"},
	}
	for _, k := range sorted {
		a, b := pa[k], pb[k]
		if a == b {
			continue
		}
		tbl.Rows = append(tbl.Rows, []string{
			trackName(k.pid), k.name,
			fmt.Sprint(a.count), fmt.Sprint(b.count),
			a.dur.String(), b.dur.String(),
		})
	}
	if len(tbl.Rows) == 0 {
		fmt.Fprintf(stdout, "traces match: %d event classes, %d vs %d events, zero differences\n",
			len(sorted), len(evsA), len(evsB))
		return 0
	}
	fmt.Fprintf(stdout, "%d of %d event classes differ (%d vs %d events)\n\n",
		len(tbl.Rows), len(sorted), len(evsA), len(evsB))
	fmt.Fprintln(stdout, tbl.Render())
	return 1
}
