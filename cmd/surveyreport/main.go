// Command surveyreport regenerates the paper's exhibits: Table I, Table
// II, Figure 1 (component diagram), Figure 2 (world map), the Q1–Q8
// questionnaire, and the initial capability analysis.
//
// Usage:
//
//	surveyreport [-csv] [-exhibit T1|T2|F1|F2|Q|A]
//	surveyreport -exhibit E -site kaust [-jobs 120] [-days 7] [-seed 42]
//
// With no flags, everything is printed in paper order. Exhibit E is the
// per-job energy account (the survey's Q5 user-report capability): it runs
// the named site profile and prints each finished job's metered energy,
// mean and peak power, and lost work under whole-node attribution.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"epajsrm/internal/experiments"
	"epajsrm/internal/jobs"
	"epajsrm/internal/report"
	"epajsrm/internal/simulator"
	"epajsrm/internal/site"
	"epajsrm/internal/survey"
)

func main() {
	csv := flag.Bool("csv", false, "emit tables as CSV instead of text")
	exhibit := flag.String("exhibit", "", "print a single exhibit: T1, T2, F1, F2, Q (questionnaire), A (analysis), E (per-job energy)")
	siteName := flag.String("site", "kaust", "site profile for exhibit E (see epasim -list)")
	nJobs := flag.Int("jobs", 120, "jobs to generate for exhibit E")
	days := flag.Int("days", 7, "simulated days for exhibit E")
	seed := flag.Uint64("seed", 42, "seed for exhibit E")
	flag.Parse()

	show := func(id string) bool {
		return *exhibit == "" || strings.EqualFold(*exhibit, id)
	}

	if show("T1") {
		t := survey.ActivityTable(1)
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	if show("T2") {
		t := survey.ActivityTable(2)
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	if show("F1") {
		fmt.Println(experiments.F1ComponentDiagram().Table.Title)
	}
	if show("F2") {
		fmt.Println(experiments.F2WorldMap().Table.Title)
	}
	if show("Q") {
		fmt.Println("Survey questionnaire (paper §IV):")
		for _, q := range survey.Questionnaire() {
			fmt.Printf("\n%s: %s\n", q.ID, q.Text)
			for i, s := range q.Subparts {
				fmt.Printf("   (%c) %s\n", 'a'+i, s)
			}
			fmt.Printf("   rationale: %s\n", q.Rationale)
		}
		fmt.Println()
	}
	if show("A") {
		t := survey.AnalysisTable()
		if *csv {
			fmt.Print(t.CSV())
			fmt.Print(survey.RegionTable().CSV())
		} else {
			fmt.Println(t.Render())
			fmt.Println(survey.RegionTable().Render())
		}
		fmt.Println("Common themes (capabilities at >= 5 of 9 sites):")
		for _, c := range survey.CommonThemes(5) {
			fmt.Printf("  - %s\n", c)
		}
		fmt.Println()
		fmt.Println(survey.Narrative())
	}
	if show("W") && *exhibit != "" {
		// Whitepaper mode: the whole generated "initial analysis" document
		// in paper order — what the EE HPC WG's follow-up document would
		// contain, synthesized from the data model.
		fmt.Println("ENERGY AND POWER AWARE JOB SCHEDULING AND RESOURCE MANAGEMENT")
		fmt.Println("Global Survey — Initial Analysis (generated reproduction)")
		fmt.Println()
		fmt.Println(survey.Narrative())
		fmt.Println(survey.ActivityTable(1).Render())
		fmt.Println(survey.ActivityTable(2).Render())
		fmt.Println(experiments.F1ComponentDiagram().Table.Title)
		fmt.Println(experiments.F2WorldMap().Table.Title)
		fmt.Println(survey.AnalysisTable().Render())
		fmt.Println(survey.RegionTable().Render())
	}
	if show("E") && *exhibit != "" {
		if err := energyExhibit(*siteName, *seed, *nJobs, *days, *csv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *exhibit != "" && !strings.ContainsAny(strings.ToUpper(*exhibit), "TFQAWE") {
		fmt.Fprintf(os.Stderr, "unknown exhibit %q\n", *exhibit)
		os.Exit(2)
	}
}

// energyExhibit runs one site profile and prints the per-job energy
// account — the post-job user report several surveyed sites ship (LRZ,
// Tokyo Tech, JCAHPC "energy consumed by each job"). Energy uses
// whole-node attribution: a job is charged the full draw of every node it
// occupies, so the per-job figures sum to the attributed system energy.
func energyExhibit(siteName string, seed uint64, nJobs, days int, csv bool) error {
	p, ok := site.ByName(siteName)
	if !ok {
		return fmt.Errorf("unknown site %q; see epasim -list", siteName)
	}
	m, js, err := p.Build(seed, nJobs)
	if err != nil {
		return err
	}
	m.Run(simulator.Time(days) * simulator.Day)

	sorted := append([]*jobs.Job(nil), js...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	tbl := report.Table{
		Title: fmt.Sprintf("Per-job energy account — site %s, %d jobs, %d days, seed %d",
			p.Name, nJobs, days, seed),
		Header: []string{"job", "user", "state", "nodes", "run (h)", "energy (kWh)", "avg (W)", "peak (W)", "lost work (node-h)"},
	}
	var sumJ float64
	finished := 0
	for _, j := range sorted {
		if j.State != jobs.StateCompleted && j.State != jobs.StateKilled {
			continue
		}
		finished++
		sumJ += j.EnergyJ
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(j.ID), j.User, j.State.String(), fmt.Sprint(j.Nodes),
			fmt.Sprintf("%.2f", j.RunSeconds/3600),
			fmt.Sprintf("%.2f", j.EnergyJ/3.6e6),
			fmt.Sprintf("%.0f", j.AvgPowerW),
			fmt.Sprintf("%.0f", j.PeakPowerW),
			fmt.Sprintf("%.2f", j.LostWorkSeconds/3600),
		})
	}
	if csv {
		fmt.Print(tbl.CSV())
	} else {
		fmt.Println(tbl.Render())
	}
	fmt.Printf("%d finished jobs, %.1f kWh attributed of %.1f kWh total IT energy (%.1f%% unattributed idle/boot)\n",
		finished, sumJ/3.6e6, m.Pw.TotalEnergy()/3.6e6,
		100*(m.Pw.TotalEnergy()-sumJ)/m.Pw.TotalEnergy())
	return nil
}
