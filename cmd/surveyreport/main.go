// Command surveyreport regenerates the paper's exhibits: Table I, Table
// II, Figure 1 (component diagram), Figure 2 (world map), the Q1–Q8
// questionnaire, and the initial capability analysis.
//
// Usage:
//
//	surveyreport [-csv] [-exhibit T1|T2|F1|F2|Q|A]
//
// With no flags, everything is printed in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"epajsrm/internal/experiments"
	"epajsrm/internal/survey"
)

func main() {
	csv := flag.Bool("csv", false, "emit tables as CSV instead of text")
	exhibit := flag.String("exhibit", "", "print a single exhibit: T1, T2, F1, F2, Q (questionnaire), A (analysis)")
	flag.Parse()

	show := func(id string) bool {
		return *exhibit == "" || strings.EqualFold(*exhibit, id)
	}

	if show("T1") {
		t := survey.ActivityTable(1)
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	if show("T2") {
		t := survey.ActivityTable(2)
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.Render())
		}
	}
	if show("F1") {
		fmt.Println(experiments.F1ComponentDiagram().Table.Title)
	}
	if show("F2") {
		fmt.Println(experiments.F2WorldMap().Table.Title)
	}
	if show("Q") {
		fmt.Println("Survey questionnaire (paper §IV):")
		for _, q := range survey.Questionnaire() {
			fmt.Printf("\n%s: %s\n", q.ID, q.Text)
			for i, s := range q.Subparts {
				fmt.Printf("   (%c) %s\n", 'a'+i, s)
			}
			fmt.Printf("   rationale: %s\n", q.Rationale)
		}
		fmt.Println()
	}
	if show("A") {
		t := survey.AnalysisTable()
		if *csv {
			fmt.Print(t.CSV())
			fmt.Print(survey.RegionTable().CSV())
		} else {
			fmt.Println(t.Render())
			fmt.Println(survey.RegionTable().Render())
		}
		fmt.Println("Common themes (capabilities at >= 5 of 9 sites):")
		for _, c := range survey.CommonThemes(5) {
			fmt.Printf("  - %s\n", c)
		}
		fmt.Println()
		fmt.Println(survey.Narrative())
	}
	if show("W") && *exhibit != "" {
		// Whitepaper mode: the whole generated "initial analysis" document
		// in paper order — what the EE HPC WG's follow-up document would
		// contain, synthesized from the data model.
		fmt.Println("ENERGY AND POWER AWARE JOB SCHEDULING AND RESOURCE MANAGEMENT")
		fmt.Println("Global Survey — Initial Analysis (generated reproduction)")
		fmt.Println()
		fmt.Println(survey.Narrative())
		fmt.Println(survey.ActivityTable(1).Render())
		fmt.Println(survey.ActivityTable(2).Render())
		fmt.Println(experiments.F1ComponentDiagram().Table.Title)
		fmt.Println(experiments.F2WorldMap().Table.Title)
		fmt.Println(survey.AnalysisTable().Render())
		fmt.Println(survey.RegionTable().Render())
	}
	if *exhibit != "" && !strings.ContainsAny(strings.ToUpper(*exhibit), "TFQAW") {
		fmt.Fprintf(os.Stderr, "unknown exhibit %q\n", *exhibit)
		os.Exit(2)
	}
}
