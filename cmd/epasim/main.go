// Command epasim runs one surveyed site's simulation profile and prints a
// run report: workload statistics in the survey's Q3 terms, power and
// energy figures, policy counters, and (optionally) a trace of the
// generated workload.
//
// Usage:
//
//	epasim -site kaust [-jobs 200] [-days 7] [-seed 42] [-writetrace file]
//	epasim -site kaust -mtbf 4 -actfail 0.1   # with fault injection
//	epasim -site kaust -mtbf 2 -ckpt-interval 20   # ... and checkpoint/restart
//	epasim -site kaust -reps 8 -procs 4   # seed-replication sweep
//	epasim -site kaust -trace run.json    # Chrome trace_event output (Perfetto)
//	epasim -site kaust -metrics m.json    # metrics-registry snapshot
//	epasim -list
//
// Observability flags: -trace writes the control-loop event trace in
// Chrome trace_event format (load in Perfetto / chrome://tracing; 1
// virtual second = 1 trace µs), -trace-jsonl writes the same events one
// JSON object per line, -metrics snapshots the manager's metric registry
// as JSON, and -state snapshots the final queue/node/power state as JSON
// (the same renderer the /state endpoint uses). All write to files only —
// the stdout report stays byte-identical with and without them.
//
// -http serves the live operations plane while the run executes: /metrics
// (Prometheus), /metrics.json, /healthz, /state, /events (SSE trace
// stream), and /query (range queries over the sampled metric history).
// The simulation advances in time slices under the server's state lock,
// so scrapes see consistent between-event snapshots and the report stays
// byte-identical to a run without -http. The listen address goes to
// stderr. Profiling flags -cpuprofile, -memprofile and -pproftrace
// capture stdlib runtime profiles of the simulation itself.
//
// -slo <rules.json> arms the SLO watchdog: every registry metric is
// sampled into a virtual-time history and the rules (threshold,
// for-duration, multi-window burn-rate, budget — see internal/alert) are
// evaluated each virtual minute. Firings land on the trace's alerts
// track, as alert.firing.* gauges on /metrics, and in the alert log
// (-slo-log file, '-' = stderr; byte-identical across same-seed runs).
// -slo-report appends the SLO summary table to the report; without it
// stdout stays byte-identical with and without -slo.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"time"

	"epajsrm/internal/alert"
	"epajsrm/internal/checkpoint"
	"epajsrm/internal/core"
	"epajsrm/internal/fault"
	"epajsrm/internal/ops"
	ctlprof "epajsrm/internal/prof"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/runreport"
	"epajsrm/internal/simulator"
	"epajsrm/internal/site"
	"epajsrm/internal/stats"
	"epajsrm/internal/trace"
	"epajsrm/internal/tsdb"
	"epajsrm/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so tests can drive the
// CLI in-process and assert the stdout stream byte-for-byte. It returns
// the process exit code; deferred profile/trace finishers run before it
// returns (os.Exit in main would skip them if they were deferred there).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("epasim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("site", "", "site profile to run (see -list)")
	list := fs.Bool("list", false, "list available site profiles")
	jobs := fs.Int("jobs", 200, "number of jobs to generate")
	days := fs.Int("days", 7, "simulated days")
	seed := fs.Uint64("seed", 42, "deterministic seed")
	traceOut := fs.String("writetrace", "", "write the generated workload as a trace file")
	traceIn := fs.String("readtrace", "", "replay a trace file instead of generating a workload")
	mtbfDays := fs.Float64("mtbf", 0, "per-node mean time between crashes, days (0 = no node faults)")
	mttrMin := fs.Float64("mttr", 30, "mean node repair time, minutes")
	sensorMTBFHours := fs.Float64("sensormtbf", 0, "mean time between telemetry outages, hours (0 = none)")
	sensorMTTRMin := fs.Float64("sensormttr", 10, "mean telemetry outage duration, minutes")
	stuckProb := fs.Float64("stuckprob", 0.5, "probability a telemetry outage is a stuck sensor")
	actFail := fs.Float64("actfail", 0, "injected cap-actuation failure probability")
	ckptIntervalMin := fs.Float64("ckpt-interval", 0, "periodic checkpoint interval, minutes (0 = checkpoint/restart disabled)")
	ckptBW := fs.Float64("ckpt-bw", 10, "aggregate burst-buffer bandwidth for checkpoint I/O, GB/s")
	ckptStateFrac := fs.Float64("ckpt-statefrac", 0.3, "fraction of node memory captured per checkpoint image")
	ckptIOPowerW := fs.Float64("ckpt-iopower", 30, "extra per-node draw while checkpoint I/O is in flight, W")
	reps := fs.Int("reps", 1, "seed replications: run seeds seed..seed+reps-1 and report per-seed + mean metrics")
	procs := fs.Int("procs", 0, "max concurrent replications (0 = GOMAXPROCS)")
	chromeOut := fs.String("trace", "", "write the run's control-loop trace in Chrome trace_event format to this file")
	jsonlOut := fs.String("trace-jsonl", "", "write the run's control-loop trace as JSONL to this file")
	metricsOut := fs.String("metrics", "", "write the run's metric-registry snapshot as JSON to this file")
	phasesOut := fs.String("phases", "", "write the control-loop phase profile as JSON to this file ('-' = stderr)")
	stateOut := fs.String("state", "", "write the final queue/node/power state snapshot as JSON to this file")
	sysCapW := fs.Float64("syscap", 0, "administrative system-wide power cap in watts, applied at start through the out-of-band controller (0: site default)")
	sloRules := fs.String("slo", "", "evaluate SLO watchdog rules from this JSON file during the run (see internal/alert)")
	sloLog := fs.String("slo-log", "", "write the deterministic alert event log to this file ('-' = stderr; requires -slo)")
	sloReport := fs.Bool("slo-report", false, "append the SLO watchdog summary to the report (requires -slo)")
	httpAddr := fs.String("http", "", "serve live ops endpoints (/metrics, /healthz, /state, /events, /query) on this address during the run (e.g. :8080)")
	httpLinger := fs.Duration("http-linger", 0, "keep serving the ops endpoints this long after the run completes (requires -http)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	pprofTrace := fs.String("pproftrace", "", "write a Go runtime execution trace to this file (go tool trace)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sloRules == "" && (*sloLog != "" || *sloReport) {
		fmt.Fprintln(stderr, "-slo-log/-slo-report require -slo (no rules, no watchdog)")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *pprofTrace != "" {
		f, err := os.Create(*pprofTrace)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := rtrace.Start(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			rtrace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, p := range site.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", p.Name, p.Desc)
		}
		return 0
	}
	p, ok := site.ByName(*name)
	if !ok {
		fmt.Fprintf(stderr, "unknown site %q; use -list\n", *name)
		return 2
	}
	if *ckptIntervalMin > 0 {
		p.Checkpoint = checkpoint.Config{
			Interval:  simulator.Time(*ckptIntervalMin * float64(simulator.Minute)),
			BWGBps:    *ckptBW,
			StateFrac: *ckptStateFrac,
			IOPowerW:  *ckptIOPowerW,
		}
	}

	prof := fault.Profile{
		NodeMTBF:          simulator.Time(*mtbfDays * float64(simulator.Day)),
		NodeMTTR:          simulator.Time(*mttrMin * float64(simulator.Minute)),
		SensorMTBF:        simulator.Time(*sensorMTBFHours * float64(simulator.Hour)),
		SensorMTTR:        simulator.Time(*sensorMTTRMin * float64(simulator.Minute)),
		SensorStuckProb:   *stuckProb,
		ActuationFailProb: *actFail,
	}
	horizon := simulator.Time(*days) * simulator.Day

	if *reps > 1 {
		if *traceIn != "" || *traceOut != "" {
			fmt.Fprintln(stderr, "-reps cannot be combined with -readtrace/-writetrace")
			return 2
		}
		if *chromeOut != "" || *jsonlOut != "" || *metricsOut != "" || *phasesOut != "" {
			fmt.Fprintln(stderr, "-reps cannot be combined with -trace/-trace-jsonl/-metrics/-phases (one trace per run)")
			return 2
		}
		if *httpAddr != "" || *stateOut != "" {
			fmt.Fprintln(stderr, "-reps cannot be combined with -http/-state (one manager per ops plane)")
			return 2
		}
		if *sloRules != "" {
			fmt.Fprintln(stderr, "-reps cannot be combined with -slo (one watchdog per run)")
			return 2
		}
		runner.SetProcs(*procs)
		replicate(stdout, stderr, p, prof, *seed, *reps, *jobs, horizon)
		return 0
	}

	nGen := *jobs
	if *traceIn != "" {
		nGen = 0 // the trace supplies the workload
	}
	m, js, err := p.Build(*seed, nGen)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	var tr *trace.Tracer
	if *chromeOut != "" || *jsonlOut != "" || *httpAddr != "" {
		// -http implies a tracer so /events has a stream to serve.
		tr = trace.New()
		m.AttachTracer(tr)
	}
	if *sysCapW > 0 {
		// After the tracer attach, so the actuation's capmc audit events
		// land in the trace (traceanalyze -alerts correlates against them).
		if err := m.Ctrl.SetSystemCap(*sysCapW); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *phasesOut != "" || *httpAddr != "" {
		// -http implies a profiler so /metrics carries the prof.* gauges.
		m.AttachProfiler(ctlprof.New())
	}
	if *sloRules != "" || *httpAddr != "" {
		// -http implies a metric history so /query has series to serve;
		// -slo needs one for the watchdog to evaluate over.
		m.AttachHistory(tsdb.New(m.Reg, tsdb.Config{}))
	}
	var watch *alert.Watchdog
	if *sloRules != "" {
		rules, err := alert.LoadRules(*sloRules)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		watch, err = alert.New(m.Hist, m.Reg, rules, horizon)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		m.AttachWatchdog(watch)
	}
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		js, err = workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		for _, j := range js {
			if err := m.Submit(j, j.Submit); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		fmt.Fprintf(stdout, "replaying %d jobs from %s\n", len(js), *traceIn)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := workload.WriteTrace(f, js); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d jobs to %s\n", len(js), *traceOut)
	}

	var inj *fault.Injector
	if !prof.Zero() {
		inj = fault.New(m, prof, *seed^0xfa)
		inj.Start()
	}

	var srv *ops.Server
	if *httpAddr != "" {
		srv = ops.NewServer(ops.ManagerSource(m))
		addr, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer srv.Close()
		// The listen line goes to stderr: stdout stays the byte-identical
		// report stream.
		fmt.Fprintf(stderr, "ops: serving /metrics /healthz /state /events on http://%s\n", addr)
	}

	var end simulator.Time
	if srv != nil {
		end = runServed(m, srv, horizon)
	} else {
		end = m.Run(horizon)
	}

	// The report renderer is shared with the simulation service, which is
	// what keeps a service-hosted run's report byte-identical to this CLI.
	runreport.Write(stdout, p, m, js, end, runreport.Extras{
		Inj:           inj,
		Checkpointing: *ckptIntervalMin > 0,
	})
	if *sloReport {
		// The summary is an explicit opt-in appendix: without -slo-report
		// the report bytes are identical with and without the watchdog.
		fmt.Fprintln(stdout, watch.Summary().Render())
	}

	// Observability artifacts go to their own files, never to the report
	// stream: stdout is byte-identical with and without them.
	if *chromeOut != "" {
		if err := writeFile(*chromeOut, tr.WriteChrome); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *jsonlOut != "" {
		if err := writeFile(*jsonlOut, tr.WriteJSONL); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, m.Reg.WriteJSON); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *phasesOut != "" {
		// '-' lands on stderr, never stdout: the report stream stays
		// byte-identical with profiling on.
		if *phasesOut == "-" {
			if err := m.Prof.WriteJSON(stderr); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		} else if err := writeFile(*phasesOut, m.Prof.WriteJSON); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *sloLog != "" {
		// '-' lands on stderr, never stdout, like -phases.
		if *sloLog == "-" {
			if err := watch.WriteLog(stderr); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		} else if err := writeFile(*sloLog, watch.WriteLog); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *stateOut != "" {
		// Same renderer as the /state endpoint, so file and endpoint agree.
		if err := writeFile(*stateOut, func(w io.Writer) error {
			return ops.WriteState(w, ops.ManagerState(m))
		}); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if srv != nil && *httpLinger > 0 {
		// Short runs finish before a scraper gets a look in; -http-linger
		// holds the final state on the wire for dashboards and smoke tests.
		fmt.Fprintf(stderr, "ops: run complete; serving for another %s\n", *httpLinger)
		time.Sleep(*httpLinger)
		// End the linger with a graceful drain: in-flight scrapes finish
		// and /events streams are released, instead of the deferred Close
		// cutting them mid-write.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, err)
		}
	}
	return 0
}

// runServed advances the simulation to horizon in one-minute slices, each
// inside the ops server's state lock, then finishes the run under the
// same lock. The engine fires events in (time, seq) order, so slicing
// RunUntil changes nothing about the simulation — the report is
// byte-identical to m.Run(horizon) — while scrapes between slices observe
// a quiescent manager.
func runServed(m *core.Manager, srv *ops.Server, horizon simulator.Time) simulator.Time {
	var end simulator.Time
	if horizon < 0 {
		// Unbounded runs cannot slice on time; advance in one locked call.
		srv.Locked(func() { end = m.Eng.RunUntil(horizon) })
	} else {
		for now := simulator.Minute; ; now += simulator.Minute {
			if now > horizon {
				now = horizon
			}
			step := now
			srv.Locked(func() { end = m.Eng.RunUntil(step) })
			if now >= horizon {
				break
			}
		}
	}
	srv.Locked(func() { m.FinishRun(end) })
	return end
}

// writeFile creates path and streams write into it, returning the first
// error from create, write, or close.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replicate runs the profile at reps consecutive seeds across the worker
// pool and prints per-seed metrics plus the mean row. Every replica owns
// its manager, RNG, and engine, so the rows are independent draws of the
// same configuration — the cheap coverage sweep the parallel runner exists
// for.
func replicate(stdout, stderr io.Writer, p site.Profile, prof fault.Profile, seed uint64, reps, jobs int, horizon simulator.Time) {
	type rep struct {
		seed              uint64
		completed, killed int
		util              float64
		medWait           simulator.Time
		energyMWh         float64
		peakKW            float64
		err               error
	}
	outs := runner.Map(reps, func(i int) rep {
		s := seed + uint64(i)
		m, _, err := p.Build(s, jobs)
		if err != nil {
			return rep{seed: s, err: err}
		}
		if !prof.Zero() {
			fault.New(m, prof, s^0xfa).Start()
		}
		m.Run(horizon)
		peak, _ := m.Pw.PeakPower()
		return rep{
			seed:      s,
			completed: m.Metrics.Completed,
			killed:    m.Metrics.Killed,
			util:      m.Metrics.Utilization(m.Cl.Size()),
			medWait:   simulator.Time(m.Metrics.Waits.Median()),
			energyMWh: m.Pw.TotalEnergy() / 3.6e9,
			peakKW:    peak / 1000,
		}
	})

	tbl := report.Table{
		Title:  fmt.Sprintf("site %s — %d seed replications (procs=%d)", p.Name, reps, runner.Procs()),
		Header: []string{"seed", "completed", "killed", "utilization", "median wait", "IT energy (MWh)", "peak (kW)"},
	}
	var util, energy, peak, done stats.Sample
	for _, r := range outs {
		if r.err != nil {
			fmt.Fprintln(stderr, r.err)
			os.Exit(1)
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(r.seed), fmt.Sprint(r.completed), fmt.Sprint(r.killed),
			fmt.Sprintf("%.1f%%", 100*r.util), r.medWait.String(),
			fmt.Sprintf("%.2f", r.energyMWh), fmt.Sprintf("%.1f", r.peakKW),
		})
		util.Add(r.util)
		energy.Add(r.energyMWh)
		peak.Add(r.peakKW)
		done.Add(float64(r.completed))
	}
	tbl.Rows = append(tbl.Rows, []string{
		"mean", fmt.Sprintf("%.1f", done.Mean()), "-",
		fmt.Sprintf("%.1f%%", 100*util.Mean()), "-",
		fmt.Sprintf("%.2f", energy.Mean()), fmt.Sprintf("%.1f", peak.Mean()),
	})
	fmt.Fprintln(stdout, tbl.Render())
}
