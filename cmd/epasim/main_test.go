package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"epajsrm/internal/service"
)

// runCLI drives the epasim entry point in-process and returns its streams.
func runCLI(t *testing.T, args ...string) (stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("epasim %v exited %d\nstderr: %s", args, code, errb.String())
	}
	return out.String(), errb.String()
}

// TestObservabilityFlagsDoNotTouchStdout is the non-interleave contract:
// the run report on stdout must be byte-identical whether or not the
// trace, JSONL, and metrics outputs are requested — observability rides in
// side files, never in the deterministic report stream.
func TestObservabilityFlagsDoNotTouchStdout(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "t.json")
	jsonl := filepath.Join(dir, "t.jsonl")
	metrics := filepath.Join(dir, "m.json")
	base := []string{"-site", "cineca", "-jobs", "50", "-days", "2", "-seed", "9"}

	plain, _ := runCLI(t, base...)
	traced, _ := runCLI(t, append(base,
		"-trace", chrome, "-trace-jsonl", jsonl, "-metrics", metrics)...)
	if plain != traced {
		t.Fatal("stdout differs when observability flags are set")
	}
	if len(plain) == 0 {
		t.Fatal("empty run report")
	}

	// The Chrome file must be valid trace_event JSON with events in it.
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Chrome trace holds no events")
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"run", "queue-wait", "it_power_w"} {
		if !names[want] {
			t.Fatalf("Chrome trace missing %q events", want)
		}
	}

	// Every JSONL line parses on its own.
	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("JSONL line %d invalid: %v", lines, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("JSONL trace is empty")
	}

	// The metrics snapshot parses and carries the core job counters.
	mraw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]map[string]any
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics snapshot invalid JSON: %v", err)
	}
	if _, ok := snap["jobs.completed"]; !ok {
		t.Fatalf("metrics snapshot missing jobs.completed: %v", snap)
	}
}

// TestTraceFilesAreByteDeterministic: two same-seed runs must produce
// byte-identical trace artifacts.
func TestTraceFilesAreByteDeterministic(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	args := []string{"-site", "cineca", "-jobs", "50", "-days", "2", "-seed", "4"}
	runCLI(t, append(args, "-trace", a)...)
	runCLI(t, append(args, "-trace", b)...)
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("same-seed trace files differ byte-for-byte")
	}
}

// TestRepsRejectsTraceFlags pins the CLI contract that per-run artifacts
// cannot be combined with a replication sweep.
func TestRepsRejectsTraceFlags(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-site", "cineca", "-reps", "2", "-trace", "x.json"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr %q", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	code = run([]string{"-site", "cineca", "-reps", "2", "-http", ":0"}, &out, &errb)
	if code != 2 {
		t.Fatalf("-reps -http exit = %d, want 2; stderr %q", code, errb.String())
	}
}

// TestHTTPDoesNotPerturbReport is the ops determinism contract: serving
// the live endpoints (which slices the simulation under the server's
// lock and attaches a tracer) must leave the stdout report byte-identical
// to a plain run.
func TestHTTPDoesNotPerturbReport(t *testing.T) {
	base := []string{"-site", "cineca", "-jobs", "50", "-days", "2", "-seed", "9"}
	plain, _ := runCLI(t, base...)
	served, errb := runCLI(t, append(base, "-http", "127.0.0.1:0")...)
	if plain != served {
		t.Fatal("stdout differs when -http is set")
	}
	if !strings.Contains(errb, "ops: serving") {
		t.Fatalf("listen line missing from stderr: %q", errb)
	}
}

// TestStateSnapshotFile: -state writes the /state renderer's snapshot —
// valid JSON with the expected shape, byte-deterministic across same-seed
// runs.
func TestStateSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	args := []string{"-site", "cineca", "-jobs", "50", "-days", "2", "-seed", "4"}
	runCLI(t, append(args, "-state", a)...)
	runCLI(t, append(args, "-state", b)...)
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("same-seed -state files differ byte-for-byte")
	}
	var st struct {
		System string           `json:"system"`
		SimNow int64            `json:"sim_now_s"`
		Nodes  []map[string]any `json:"nodes"`
		Queue  []map[string]any `json:"queue"`
	}
	if err := json.Unmarshal(ab, &st); err != nil {
		t.Fatalf("-state file invalid JSON: %v", err)
	}
	if st.System == "" || st.SimNow <= 0 || len(st.Nodes) == 0 {
		t.Fatalf("-state snapshot incomplete: system=%q now=%d nodes=%d",
			st.System, st.SimNow, len(st.Nodes))
	}
}

// TestServiceReportByteIdentical is the golden contract of the simulation
// service: a run hosted by internal/service — sliced advancement under a
// per-run lock, tracer attached, ops plane multiplexed — must produce a
// report byte-identical to the same seed/profile run under this CLI.
func TestServiceReportByteIdentical(t *testing.T) {
	plain, _ := runCLI(t, "-site", "cineca", "-jobs", "50", "-days", "2", "-seed", "9")

	cfg := service.Default()
	s, err := service.New(cfg)
	if err != nil {
		t.Fatalf("service.New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("service shutdown: %v", err)
		}
	}()
	h := s.Handler()

	body := `{"tenant":"golden","site":"cineca","seed":9,"jobs":50,"days":2}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/runs", strings.NewReader(body)))
	if rec.Code != 202 {
		t.Fatalf("submit = %d %s", rec.Code, rec.Body.String())
	}
	var info struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for info.State != "complete" {
		if info.State == "failed" || info.State == "cancelled" || time.Now().After(deadline) {
			t.Fatalf("hosted run ended in %q", info.State)
		}
		time.Sleep(5 * time.Millisecond)
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/"+info.ID, nil))
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/"+info.ID+"/report", nil))
	if rec.Code != 200 {
		t.Fatalf("report = %d", rec.Code)
	}
	if rec.Body.String() != plain {
		t.Fatalf("service-hosted report differs from standalone epasim:\n--- service ---\n%s\n--- epasim ---\n%s",
			rec.Body.String(), plain)
	}
}

// writeSLORules drops a small watchdog rules file into dir: a threshold
// rule that must fire on any live run (total power above zero) and a
// burn-rate rule over cumulative energy consumption.
func writeSLORules(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "slo.json")
	rules := `{
  "rules": [
    {"name": "power-above-zero", "kind": "threshold", "metric": "power.total_w",
     "severity": "page", "agg": "last", "op": ">", "value": 0, "for_s": 600},
    {"name": "energy-burn", "kind": "burn_rate", "metric": "power.total_w",
     "severity": "warn", "consume": "integral_min", "budget": 1e12,
     "fast_window_s": 300, "slow_window_s": 1800, "burn": 6}
  ]
}
`
	if err := os.WriteFile(path, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSLOFlagsDoNotTouchStdout is the watchdog's observes-never-steers
// contract: arming -slo (with the alert log routed to a side file) must
// leave the stdout report byte-identical to a plain run, while the log
// itself carries parseable FIRING lines.
func TestSLOFlagsDoNotTouchStdout(t *testing.T) {
	dir := t.TempDir()
	rules := writeSLORules(t, dir)
	log := filepath.Join(dir, "alerts.log")
	base := []string{"-site", "cineca", "-jobs", "50", "-days", "2", "-seed", "9"}

	plain, _ := runCLI(t, base...)
	guarded, _ := runCLI(t, append(base, "-slo", rules, "-slo-log", log)...)
	if plain != guarded {
		t.Fatal("stdout differs when -slo is armed")
	}

	raw, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "t=") {
			t.Fatalf("alert log line does not parse: %q", line)
		}
		if strings.Contains(line, "FIRING rule=power-above-zero") {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("power-above-zero never fired; log:\n%s", raw)
	}
}

// TestSLOLogByteDeterministic: two same-seed runs must emit byte-identical
// alert logs — the watchdog evaluates in virtual time only.
func TestSLOLogByteDeterministic(t *testing.T) {
	dir := t.TempDir()
	rules := writeSLORules(t, dir)
	a := filepath.Join(dir, "a.log")
	b := filepath.Join(dir, "b.log")
	args := []string{"-site", "cineca", "-jobs", "50", "-days", "2", "-seed", "4", "-slo", rules}
	runCLI(t, append(args, "-slo-log", a)...)
	runCLI(t, append(args, "-slo-log", b)...)
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab) == 0 {
		t.Fatal("empty alert log")
	}
	if !bytes.Equal(ab, bb) {
		t.Fatal("same-seed alert logs differ byte-for-byte")
	}
}

// TestSLOReportAppendsSummary: -slo-report appends the watchdog summary
// after the unchanged base report.
func TestSLOReportAppendsSummary(t *testing.T) {
	dir := t.TempDir()
	rules := writeSLORules(t, dir)
	base := []string{"-site", "cineca", "-jobs", "50", "-days", "2", "-seed", "9"}
	plain, _ := runCLI(t, base...)
	withSum, _ := runCLI(t, append(base, "-slo", rules, "-slo-report")...)
	if !strings.HasPrefix(withSum, plain) {
		t.Fatal("-slo-report does not leave the base report as an unchanged prefix")
	}
	tail := withSum[len(plain):]
	if !strings.Contains(tail, "SLO watchdog") || !strings.Contains(tail, "power-above-zero") {
		t.Fatalf("summary section missing from appendix:\n%s", tail)
	}
}

// TestSLOFlagValidation pins the CLI contract: -slo-report/-slo-log need
// -slo, and -reps excludes -slo.
func TestSLOFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-site", "cineca", "-slo-report"},
		{"-site", "cineca", "-slo-log", "x.log"},
		{"-site", "cineca", "-reps", "2", "-slo", "rules.json"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Fatalf("epasim %v exit = %d, want 2; stderr %q", args, code, errb.String())
		}
	}
}
