// Command epascale runs the hollow-site scale harness (internal/scale):
// hollow clusters at 1k-100k nodes pushing a week of mixed workload through
// the full control loop — EASY scheduling, a system power cap, node
// crash/repair faults, periodic checkpoints and sampled telemetry — and
// reports a nodes x jobs vs wall-time/RSS curve.
//
//	epascale -nodes 1000,10000,100000 -jobs-per-node 10 -days 7
//
// With -max-rss-mb the process asserts its peak resident set stayed under
// the bound and exits non-zero otherwise, which is how CI smoke-tests the
// scale path without a human watching the numbers:
//
//	epascale -nodes 10000 -max-rss-mb 1024
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"epajsrm/internal/scale"
	"epajsrm/internal/simulator"
)

func main() {
	nodesFlag := flag.String("nodes", "1000,10000,100000", "comma-separated hollow node counts")
	jobsPerNode := flag.Int("jobs-per-node", 10, "jobs submitted per node over the arrival window")
	days := flag.Int("days", 7, "arrival window in simulated days (the run drains past it)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	util := flag.Float64("util", 0.85, "target offered load the workload is shaped to")
	schedDefer := flag.Int("sched-defer", 60, "scheduling-pass grid in seconds (0 = harness default)")
	telemetry := flag.Int("telemetry", 600, "telemetry sampling period in seconds (0 = harness default)")
	eager := flag.Bool("eager-power", false, "disable lazy energy integration (A/B timing)")
	noFaults := flag.Bool("no-faults", false, "disable node crash/repair injection")
	noCkpt := flag.Bool("no-ckpt", false, "disable periodic checkpoints")
	maxRSS := flag.Float64("max-rss-mb", 0, "fail if peak RSS exceeds this many MB (0 = no bound)")
	jsonOut := flag.String("json", "", "write the curve as JSON to this file ('-' = stdout)")
	phases := flag.Bool("phases", true, "print the per-phase wall-time breakdown after each point")
	minCov := flag.Float64("min-phase-cov", 0, "fail if phase coverage falls below this percent of wall clock (0 = no bound)")
	flag.Parse()

	var points []int
	for _, f := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "epascale: bad node count %q\n", f)
			os.Exit(2)
		}
		points = append(points, n)
	}

	var curve []scale.Result
	for _, nodes := range points {
		c := scale.Config{
			Nodes:         nodes,
			Jobs:          *jobsPerNode * nodes,
			Horizon:       simulator.Time(*days) * simulator.Day,
			Seed:          *seed,
			TargetUtil:    *util,
			SchedDefer:    simulator.Time(*schedDefer) * simulator.Second,
			Telemetry:     simulator.Time(*telemetry) * simulator.Second,
			EagerPower:    *eager,
			NoFaults:      *noFaults,
			NoCheckpoints: *noCkpt,
		}
		res, err := scale.Run(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "epascale: nodes=%d: %v\n", nodes, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		if *phases {
			fmt.Printf("phase coverage %.1f%% of wall:\n", res.PhaseCovPct)
			for _, ph := range res.Phases {
				if ph.Calls == 0 && ph.Seconds == 0 {
					continue
				}
				fmt.Printf("  %-18s %9.3fs  %5.1f%%  %d calls\n", ph.Name, ph.Seconds, 100*ph.Share, ph.Calls)
			}
		}
		if *minCov > 0 && res.PhaseCovPct < *minCov {
			fmt.Fprintf(os.Stderr, "epascale: phase coverage %.1f%% below bound %.1f%%\n", res.PhaseCovPct, *minCov)
			os.Exit(1)
		}
		curve = append(curve, res)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(curve, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "epascale:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "epascale:", err)
			os.Exit(1)
		}
	}

	if *maxRSS > 0 {
		if rss := scale.PeakRSSMB(); rss > *maxRSS {
			fmt.Fprintf(os.Stderr, "epascale: peak RSS %.0f MB exceeds bound %.0f MB\n", rss, *maxRSS)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "epascale: peak RSS %.0f MB within bound %.0f MB\n", rss, *maxRSS)
		}
	}
}
