// Command epaserved hosts the multi-tenant simulation service: a REST/JSON
// control plane that launches, runs, and tears down many concurrent site
// simulations per process. Each hosted run owns its engine, registry, and
// tracer, so its report is byte-identical to the same seed/profile run
// under standalone epasim.
//
// Usage:
//
//	epaserved -addr :8080
//	curl -s -X POST localhost:8080/runs \
//	     -d '{"tenant":"acme","site":"cineca","seed":9,"jobs":50,"days":2}'
//	curl -s localhost:8080/runs/r1
//	curl -s localhost:8080/runs/r1/report
//
// Robustness knobs: -max-runs bounds the run table, -max-active the
// concurrent execution slots, -tenant-active each tenant's live runs
// (excess requests shed with 429 + Retry-After), -idle-ttl reaps
// untouched terminal runs, -req-timeout and -stream-timeout deadline
// every request, and -drain bounds the graceful shutdown on
// SIGINT/SIGTERM (in-flight runs finish inside the window; past it they
// are hard-stopped at their next slice).
//
// Durability: -journal <dir> writes every run-table transition to a
// write-ahead log (accepted specs fsynced before the client's 202,
// terminal states with their reports before the table moves on) and
// replays it at startup. After a crash — SIGKILL included — terminal
// runs reload as metadata with fetchable reports, interrupted runs
// re-execute deterministically from their journaled specs (same seed,
// byte-identical report), and queued runs re-enter fair-share
// arbitration: zero accepted-then-lost. -wal-max bounds the journal
// size via compacting snapshot rotation.
//
// Observability: -access-log <file> ('-' for stderr) writes one
// structured JSONL line per request — request ID, verb, endpoint,
// status, latency, and whatever the handler learned (run, tenant,
// shed reason, control-loop phase). -blackbox <file> arms an
// in-memory flight recorder (-flight-cap bounds its ring) that dumps
// recent service events plus in-flight request IDs to the file on
// SIGQUIT, a run panic, or the journal failing closed; SIGQUIT is a
// dump trigger only — the server keeps serving. Per-endpoint latency
// histograms, in-flight gauges, and journal fsync timings ride the
// existing /metrics exposition.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"epajsrm/internal/flight"
	"epajsrm/internal/service"
	"epajsrm/internal/simulator"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is main with its environment explicit; ready (when non-nil)
// receives the bound address once the listener is up, which lets tests
// drive a real server in-process.
func run(args []string, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("epaserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := service.Default()
	addr := fs.String("addr", ":8080", "listen address")
	maxRuns := fs.Int("max-runs", def.MaxRuns, "run-table bound (queued+running+unreaped); beyond it requests shed with 429")
	maxActive := fs.Int("max-active", def.MaxActive, "concurrent execution slots")
	tenantActive := fs.Int("tenant-active", def.TenantActive, "per-tenant live-run quota")
	idleTTL := fs.Duration("idle-ttl", def.IdleTTL, "reap terminal runs untouched for this long")
	reqTimeout := fs.Duration("req-timeout", def.RequestTimeout, "per-request deadline on unary endpoints")
	streamTimeout := fs.Duration("stream-timeout", def.StreamTimeout, "deadline on /events SSE streams")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown drain window on SIGINT/SIGTERM")
	halfLife := fs.Duration("halflife", def.HalfLife, "fair-share ledger decay half-life")
	journalDir := fs.String("journal", "", "write-ahead journal directory; empty disables durability")
	walMax := fs.Int64("wal-max", 0, "journal segment bytes before a compacting rotation (0: journal default)")
	slice := fs.Duration("slice", time.Duration(def.Slice)*time.Second, "virtual-time quantum a run advances per lock acquisition")
	accessLog := fs.String("access-log", "", "structured JSONL access log file ('-' = stderr); empty disables")
	blackBox := fs.String("blackbox", "", "flight-recorder dump file, written on SIGQUIT, run panic, or journal fail-closed; empty disables the recorder")
	flightCap := fs.Int("flight-cap", 0, "flight-recorder ring capacity (0: default)")
	historyStep := fs.Duration("history-step", 0, "metric-history sampling cadence in virtual time for /runs/{id}/query (0: 1 virtual minute)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := def
	cfg.MaxRuns = *maxRuns
	cfg.MaxActive = *maxActive
	cfg.TenantActive = *tenantActive
	cfg.IdleTTL = *idleTTL
	cfg.RequestTimeout = *reqTimeout
	cfg.StreamTimeout = *streamTimeout
	cfg.HalfLife = *halfLife
	cfg.JournalDir = *journalDir
	cfg.JournalMaxBytes = *walMax
	if *slice > 0 {
		cfg.Slice = simulator.Time(*slice / time.Second)
	}
	if *historyStep > 0 {
		cfg.HistoryStep = simulator.Time(*historyStep / time.Second)
	}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "epaserved: %v\n", err)
			return 1
		}
		defer f.Close()
		cfg.AccessLog = f
	}
	var rec *flight.Recorder
	if *blackBox != "" {
		rec = flight.New(*flightCap)
		cfg.Flight = rec
		cfg.BlackBox = *blackBox
	}
	svc, err := service.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "epaserved: %v\n", err)
		return 1
	}
	if *journalDir != "" {
		rec := svc.Recovery()
		fmt.Fprintf(stderr, "epaserved: journal %s — replayed %d records: %d terminal reloaded, %d interrupted re-admitted, %d queued re-entered",
			*journalDir, rec.Replayed, rec.Terminal, rec.Interrupted, rec.Requeued)
		if rec.TornTail {
			fmt.Fprint(stderr, " (torn tail truncated)")
		}
		fmt.Fprintln(stderr)
	}

	bound, closeHTTP, err := svc.Serve(*addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stderr, "epaserved: serving on http://%s (max-runs %d, max-active %d, tenant quota %d)\n",
		bound, cfg.MaxRuns, cfg.MaxActive, cfg.TenantActive)
	if ready != nil {
		ready <- bound
	}

	// SIGQUIT is the black-box trigger, not a shutdown: dump the flight
	// recorder and keep serving, so an operator can snapshot a live
	// incident without taking the service down.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	var got os.Signal
	for got = range sig {
		if got != syscall.SIGQUIT {
			break
		}
		if rec == nil {
			fmt.Fprintln(stderr, "epaserved: SIGQUIT ignored (no -blackbox)")
			continue
		}
		if err := rec.Dump(*blackBox, "SIGQUIT"); err != nil {
			fmt.Fprintf(stderr, "epaserved: black box: %v\n", err)
		} else {
			fmt.Fprintf(stderr, "epaserved: SIGQUIT — black box dumped to %s\n", *blackBox)
		}
	}
	fmt.Fprintf(stderr, "epaserved: %s — draining (window %s)\n", got, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the service first: admission flips to 503 + Retry-After, SSE
	// streams are released, queued runs cancel, in-flight runs finish
	// inside the window. Only then drain the listener — its remaining
	// requests are all fast once no stream can hold a connection open.
	svcErr := svc.Shutdown(ctx)
	if err := closeHTTP(ctx); err != nil {
		fmt.Fprintf(stderr, "epaserved: http drain: %v\n", err)
	}
	if svcErr != nil {
		fmt.Fprintf(stderr, "epaserved: drain incomplete: %v\n", svcErr)
		return 1
	}
	fmt.Fprintln(stderr, "epaserved: drained cleanly")
	return 0
}
