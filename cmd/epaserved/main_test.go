package main

// Kill-restart harness: the test re-execs its own binary as a real
// epaserved process (EPASERVED_CHILD guards the entry point), storms it
// with submissions over real HTTP, SIGKILLs it mid-stampede, restarts it
// on the same journal directory, and then holds the durability contract
// to account: every accepted run must still exist (zero
// accepted-then-lost), every one must finish, and a run that was
// interrupted mid-execution must re-execute to a report byte-identical
// to a fresh run of the same spec.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"epajsrm/internal/service"
)

func TestMain(m *testing.M) {
	if os.Getenv("EPASERVED_CHILD") == "1" {
		ready := make(chan string, 1)
		go func() { fmt.Printf("ADDR %s\n", <-ready) }()
		os.Exit(run(os.Args[1:], os.Stderr, ready))
	}
	os.Exit(m.Run())
}

// syncBuffer guards the child's stderr: exec's pipe copier writes it
// concurrently with the test's reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// server is a child epaserved process under test control.
type server struct {
	cmd    *exec.Cmd
	addr   string
	stderr *syncBuffer
}

// startServer re-execs the test binary as epaserved and waits for the
// bound address on its stdout.
func startServer(t *testing.T, journalDir string, extra ...string) *server {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-journal", journalDir}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EPASERVED_CHILD=1")
	stderr := &syncBuffer{}
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck // already-dead child is fine
		cmd.Wait()         //nolint:errcheck // exit state is the cleanup's problem
	})

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addrCh <- a
				return
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &server{cmd: cmd, addr: addr, stderr: stderr}
	case <-time.After(15 * time.Second):
		t.Fatalf("child never reported its address; stderr:\n%s", stderr.String())
		return nil
	}
}

// accepted is one acknowledged submission: the 202 is the durability
// promise the harness later enforces.
type accepted struct {
	id   string
	spec service.Spec
}

func submit(client *http.Client, addr string, sp service.Spec) (string, int, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return "", 0, err
	}
	resp, err := client.Post("http://"+addr+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", resp.StatusCode, nil
	}
	var info service.RunInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return "", resp.StatusCode, fmt.Errorf("bad 202 body %q: %w", b, err)
	}
	return info.ID, resp.StatusCode, nil
}

func getRun(client *http.Client, addr, id string) (service.RunInfo, int, error) {
	resp, err := client.Get("http://" + addr + "/runs/" + id)
	if err != nil {
		return service.RunInfo{}, 0, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return service.RunInfo{}, resp.StatusCode, nil
	}
	var info service.RunInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return service.RunInfo{}, resp.StatusCode, err
	}
	return info, resp.StatusCode, nil
}

func getReport(t *testing.T, client *http.Client, addr, id string) []byte {
	t.Helper()
	resp, err := client.Get("http://" + addr + "/runs/" + id + "/report")
	if err != nil {
		t.Fatalf("report %s: %v", id, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(b) == 0 {
		t.Fatalf("report %s: status %d, %d bytes — a complete run must serve its report", id, resp.StatusCode, len(b))
	}
	return b
}

func TestKillRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-restart harness")
	}
	dir := t.TempDir()
	client := &http.Client{Timeout: 10 * time.Second}
	srv1 := startServer(t, dir)

	// Stampede: four tenants submit as fast as the server accepts, each
	// recording its acknowledged runs. Heavy-ish specs (2 virtual days)
	// guarantee the kill below lands while runs are still executing.
	var (
		mu   sync.Mutex
		acks []accepted
		stop = make(chan struct{})
		wg   sync.WaitGroup
	)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := service.Spec{
					Tenant: fmt.Sprintf("t%d", c), Site: "cineca",
					Seed: uint64(100*c + n), Jobs: 30, Days: 2,
				}
				id, code, err := submit(client, srv1.addr, sp)
				if err != nil {
					return // connection died: the kill landed
				}
				switch {
				case id != "":
					mu.Lock()
					acks = append(acks, accepted{id: id, spec: sp})
					mu.Unlock()
				case code == 429 || code == 503:
					time.Sleep(20 * time.Millisecond)
				}
			}
		}(c)
	}

	// SIGKILL as soon as a real backlog exists — no drain, no fsync
	// beyond what the journal already promised at each 202.
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		n := len(acks)
		mu.Unlock()
		if n >= 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d accepted runs before deadline", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv1.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	srv1.cmd.Wait() //nolint:errcheck // killed: exit state is expected noise
	close(stop)
	wg.Wait()
	mu.Lock()
	final := append([]accepted(nil), acks...)
	mu.Unlock()
	t.Logf("killed mid-stampede with %d accepted runs", len(final))

	// Restart on the same journal. The recovery line must land.
	srv2 := startServer(t, dir)
	if !strings.Contains(srv2.stderr.String(), "replayed") {
		t.Fatalf("restarted server logged no recovery line:\n%s", srv2.stderr.String())
	}

	// Zero accepted-then-lost: every acknowledged run must exist, reach a
	// terminal state, and — since nobody cancelled anything — complete.
	recovered := 0
	verifyDeadline := time.Now().Add(3 * time.Minute)
	for _, a := range final {
		for {
			info, code, err := getRun(client, srv2.addr, a.id)
			if err != nil {
				t.Fatalf("poll %s: %v", a.id, err)
			}
			if code == 404 {
				t.Fatalf("run %s was accepted (202) and then lost across the crash", a.id)
			}
			if code != 200 {
				t.Fatalf("poll %s: status %d", a.id, code)
			}
			if info.State == "complete" {
				if info.Recovered {
					recovered++
				}
				break
			}
			if info.State == "failed" || info.State == "cancelled" {
				t.Fatalf("run %s ended %s (%s) after recovery, want complete", a.id, info.State, info.Reason)
			}
			if time.Now().After(verifyDeadline) {
				t.Fatalf("run %s still %s at deadline", a.id, info.State)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	if recovered == 0 {
		t.Fatal("no run carried the recovered flag — the kill did not interrupt anything, harness is vacuous")
	}
	t.Logf("all %d accepted runs complete after restart (%d via recovery)", len(final), recovered)

	// Determinism: a recovered run's re-executed report must be
	// byte-identical to a fresh run of the same spec on the same server.
	probe := final[0]
	recoveredReport := getReport(t, client, srv2.addr, probe.id)
	freshID := ""
	for freshID == "" {
		id, code, err := submit(client, srv2.addr, probe.spec)
		if err != nil {
			t.Fatalf("golden submit: %v", err)
		}
		if id == "" {
			if code != 429 && code != 503 {
				t.Fatalf("golden submit: status %d", code)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		freshID = id
	}
	for {
		info, code, err := getRun(client, srv2.addr, freshID)
		if err != nil || code != 200 {
			t.Fatalf("poll golden %s: %d %v", freshID, code, err)
		}
		if info.State == "complete" {
			break
		}
		if info.State == "failed" || info.State == "cancelled" {
			t.Fatalf("golden run ended %s (%s)", info.State, info.Reason)
		}
		if time.Now().After(verifyDeadline) {
			t.Fatal("golden run never completed")
		}
		time.Sleep(50 * time.Millisecond)
	}
	freshReport := getReport(t, client, srv2.addr, freshID)
	if !bytes.Equal(recoveredReport, freshReport) {
		t.Fatalf("recovered report for %s differs from a fresh run of the same spec (%d vs %d bytes)",
			probe.id, len(recoveredReport), len(freshReport))
	}

	// And the restarted server still dies politely.
	if err := srv2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv2.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v\nstderr:\n%s", err, srv2.stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatal("restarted server did not drain on SIGTERM")
	}
}
