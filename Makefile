# Tier-1 gate: everything a change must pass before it lands.
# `make check` is the canonical entry point (vet + build + race-enabled
# tests); CI and reviewers run exactly this.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
