# Tier-1 gate: everything a change must pass before it lands.
# `make check` is the canonical entry point (vet + build + race-enabled
# tests); CI and reviewers run exactly this. The race gate doubles as the
# determinism gate for the parallel experiment runner.

GO ?= go
BENCH_DATE := $(shell date +%Y-%m-%d)

.PHONY: check vet staticcheck build test race bench

check: vet staticcheck build race

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs it; local dev
# may not have it, and the gate must not demand network access to pass).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench tracks the perf trajectory per PR: full benchmark run, results
# archived as BENCH_<date>.json (raw benchstat-compatible text kept in the
# record's "raw" field — `jq -r .raw BENCH_<date>.json | benchstat /dev/stdin`).
bench:
	$(GO) test -bench=. -benchmem -count=1 -run '^$$' . | $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_DATE).json
