package epajsrm_test

// The benchmark harness: one testing.B target per paper exhibit (Tables
// I/II, Figures 1/2), one per validation experiment (E1–E22 in DESIGN.md's
// experiment index), and one per ablation DESIGN.md calls out. Each bench
// reports its experiment's key shape numbers through b.ReportMetric so
// `go test -bench=. -benchmem` regenerates the full results table of
// EXPERIMENTS.md.

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/experiments"
	"epajsrm/internal/jobs"
	"epajsrm/internal/policy"
	"epajsrm/internal/power"
	"epajsrm/internal/predict"
	"epajsrm/internal/prof"
	"epajsrm/internal/runner"
	"epajsrm/internal/scale"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/stats"
	"epajsrm/internal/workload"
)

// profIfEnv attaches a live phase profiler to the hot-path benchmarks
// when EPA_PROF=1, so CI gates the profiler's *enabled* overhead
// against the same baselines it gates the nil fast path with. The
// default (nil) measures the phases-off cost every instrumented call
// site pays: one pointer nil-check.
func profIfEnv() *prof.Profiler {
	if os.Getenv("EPA_PROF") == "1" {
		return prof.New()
	}
	return nil
}

// -- Full suite through the parallel runner -----------------------------------

// BenchmarkSuite runs every exhibit and experiment through runner.Map at
// procs=1 and procs=GOMAXPROCS. The two sub-benchmarks measure the same
// deterministic work, so their ratio is the harness's parallel speedup on
// the current machine (identical on a single-core box).
func BenchmarkSuite(b *testing.B) {
	for _, procs := range []int{1, runtime.GOMAXPROCS(0)} {
		name := "procs=1"
		if procs != 1 {
			name = "procs=max"
		}
		b.Run(name, func(b *testing.B) {
			prev := runner.Procs()
			runner.SetProcs(procs)
			defer runner.SetProcs(prev)
			for i := 0; i < b.N; i++ {
				rs := experiments.All(uint64(i + 1))
				if i == 0 {
					b.ReportMetric(float64(len(rs)), "experiments")
				}
			}
		})
		if procs == 1 && runtime.GOMAXPROCS(0) == 1 {
			break // both sub-benchmarks would be identical
		}
	}
}

// -- Paper exhibits ---------------------------------------------------------

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.T1TableI()
		if i == 0 {
			b.ReportMetric(r.Values["rows"], "rows")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.T2TableII()
		if i == 0 {
			b.ReportMetric(r.Values["rows"], "rows")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.F1ComponentDiagram()
		if i == 0 {
			b.ReportMetric(r.Values["policies"], "policies")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.F2WorldMap()
		if i == 0 {
			b.ReportMetric(r.Values["sites"], "sites")
		}
	}
}

// -- Validation experiments E1–E22 -------------------------------------------

func BenchmarkE1StaticCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E1StaticCap(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["base_peak_w"]/1000, "base-peak-kW")
			b.ReportMetric(r.Values["cap_peak_w"]/1000, "capped-peak-kW")
			b.ReportMetric(100*(1-r.Values["cap_thr"]/r.Values["base_thr"]), "thr-loss-%")
		}
	}
}

func BenchmarkE2IdleShutdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E2IdleShutdown(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*r.Values["saved_400"], "saved-busy-%")
			b.ReportMetric(100*r.Values["saved_3600"], "saved-sparse-%")
		}
	}
}

func BenchmarkE3DVFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E3DVFS()
		if i == 0 {
			b.ReportMetric(r.Values["beststar_mem0"], "fstar-cpu-bound")
			b.ReportMetric(r.Values["beststar_mem80"], "fstar-mem-bound")
		}
	}
}

func BenchmarkE4PowerSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E4PowerSharing(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*r.Values["gain_9600"], "gain-tight-%")
			b.ReportMetric(100*r.Values["gain_17920"], "gain-loose-%")
		}
	}
}

func BenchmarkE5Overprovision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E5Overprovision(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*(r.Values["over_thr"]/r.Values["small_thr"]-1), "gain-%")
		}
	}
}

func BenchmarkE6Emergency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E6Emergency(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["kills_nogate"], "kills-nogate")
			b.ReportMetric(r.Values["kills_gate"], "kills-gated")
		}
	}
}

func BenchmarkE7EnergyTag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E7EnergyTag(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*(1-r.Values["energy_job_kwh"]/r.Values["perf_job_kwh"]), "energy-saved-%")
			b.ReportMetric(100*(r.Values["energy_rt"]/r.Values["perf_rt"]-1), "rt-stretch-%")
		}
	}
}

func BenchmarkE8Prediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E8Prediction(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*r.Values["mape_naive-mean"], "naive-MAPE-%")
			b.ReportMetric(100*r.Values["mape_tag-history"], "tag-MAPE-%")
			b.ReportMetric(100*r.Values["mape_regression"], "reg-MAPE-%")
		}
	}
}

func BenchmarkE9InterSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E9InterSystem(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["share1_day0"]/1000, "loaded-share-kW")
			b.ReportMetric(r.Values["share1_day1"]/1000, "drained-share-kW")
			b.ReportMetric(r.Values["combined_peak"]/r.Values["budget"], "peak/budget")
		}
	}
}

func BenchmarkE10Layout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E10Layout(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["violations"], "pdu-violations")
			b.ReportMetric(r.Values["avoided"], "nodes-avoided")
		}
	}
}

func BenchmarkE11MS3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E11MS3(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["summer_busy"], "summer-busy-max")
			b.ReportMetric(r.Values["winter_busy"], "winter-busy-max")
		}
	}
}

func BenchmarkE12Backfill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E12Backfill(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*r.Values["util_fcfs"], "fcfs-util-%")
			b.ReportMetric(100*r.Values["util_easy"], "easy-util-%")
		}
	}
}

func BenchmarkE13GridAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E13GridAware(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["cost_base"]/r.Values["done_base"], "cost/job-base")
			b.ReportMetric(r.Values["cost_shift"]/r.Values["done_shift"], "cost/job-shifted")
		}
	}
}

func BenchmarkE14RuntimeBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E14RuntimeBalance(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*r.Values["speedup_2"], "speedup-2%var-%")
			b.ReportMetric(100*r.Values["speedup_10"], "speedup-10%var-%")
		}
	}
}

func BenchmarkE15Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E15Topology(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*(1-r.Values["rt_compact"]/r.Values["rt_oblivious"]), "rt-saved-%")
			b.ReportMetric(100*(1-r.Values["pdu_scatter"]/r.Values["pdu_compact"]), "pdu-saved-%")
		}
	}
}

func BenchmarkE16CapabilityWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E16CapabilityWindow(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*r.Values["wide_in_window_frac"], "wide-in-window-%")
		}
	}
}

func BenchmarkE17RampLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E17RampLimit(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["ramp_base"]/1000, "ramp-base-kW")
			b.ReportMetric(r.Values["ramp_limit"]/1000, "ramp-limited-kW")
		}
	}
}

func BenchmarkE18CoolingAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E18CoolingAware(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(100*(1-r.Values["site_cool"]/r.Values["site_base"]), "site-saved-%")
		}
	}
}

func BenchmarkE19Monitoring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E19Monitoring(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["samples"], "samples")
		}
	}
}

func BenchmarkE20FairShare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E20FairShare(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["light_slow_base"], "light-slowdown-fifo")
			b.ReportMetric(r.Values["light_slow_fs"], "light-slowdown-fairshare")
		}
	}
}

func BenchmarkE21Resilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E21Resilience(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["crashes_high"], "crashes-high")
			b.ReportMetric(r.Values["requeues_high"], "requeues-high")
			b.ReportMetric(r.Values["goodput_high"]/r.Values["goodput_base"], "goodput-ratio-high")
		}
	}
}

func BenchmarkE22Checkpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E22CheckpointSweep(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["goodput_yd_high"]/r.Values["goodput_off_high"], "goodput-gain-yd")
			b.ReportMetric(r.Values["lostwork_off_high"]/3600, "lost-off-node-h")
			b.ReportMetric(r.Values["lostwork_yd_high"]/3600, "lost-yd-node-h")
			b.ReportMetric(r.Values["yd_interval_s"], "yd-interval-s")
		}
	}
}

func BenchmarkE24SLOWatchdog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E24SLOWatchdog(uint64(i + 1))
		if i == 0 {
			b.ReportMetric(r.Values["first_fire_burn_s"]/3600, "burn-first-fire-h")
			b.ReportMetric(r.Values["first_fire_threshold_s"]/3600, "threshold-first-fire-h")
			b.ReportMetric(r.Values["lead_s"]/3600, "burn-lead-h")
		}
	}
}

// -- Ablations (DESIGN.md "design choices called out for ablation") ----------

// BenchmarkAblationWindow sweeps the boot-window enforcement length around
// Tokyo Tech's ~30 minutes: shorter windows actuate more (tighter control,
// more churn), longer windows tolerate excursions.
func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, window := range []simulator.Time{10 * simulator.Minute, 30 * simulator.Minute, 60 * simulator.Minute} {
			p := &policy.BootWindowCap{CapW: 64 * 220, Window: window}
			m := core.NewManager(core.Options{
				Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: uint64(i + 1),
			})
			m.Use(p)
			spec := workload.DefaultSpec()
			spec.ArrivalMeanSec = 200
			for _, j := range workload.NewGenerator(spec, 5).Generate(250) {
				if err := m.Submit(j, j.Submit); err != nil {
					b.Fatal(err)
				}
			}
			m.Run(2 * simulator.Day)
			if i == 0 {
				mins := float64(window / simulator.Minute)
				b.ReportMetric(float64(p.Shutdowns+p.Boots), fmtMetric("actuations-", mins, "min"))
				b.ReportMetric(float64(p.Violations), fmtMetric("violations-", mins, "min"))
			}
		}
	}
}

// BenchmarkAblationUncappedFraction sweeps KAUST's 30 % uncapped pool.
func BenchmarkAblationUncappedFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0, 0.30, 0.60} {
			m := core.NewManager(core.Options{
				Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: uint64(i + 1), VarSigma: 0.05,
			})
			m.Use(&policy.StaticCap{CapW: 270, UncappedFrac: frac, RouteHungry: frac > 0})
			spec := workload.DefaultSpec()
			spec.ArrivalMeanSec = 150
			for _, j := range workload.NewGenerator(spec, 7).Generate(400) {
				if err := m.Submit(j, j.Submit); err != nil {
					b.Fatal(err)
				}
			}
			peak := 0.0
			m.Eng.Every(30*simulator.Second, "probe", func(simulator.Time) {
				if p := m.Pw.TotalPower(); p > peak {
					peak = p
				}
			})
			m.Run(3 * simulator.Day)
			if i == 0 {
				b.ReportMetric(peak/1000, fmtMetric("peak-kW-", frac*100, "%unc"))
				b.ReportMetric(m.Metrics.ThroughputNodeHoursPerDay(), fmtMetric("thr-", frac*100, "%unc"))
			}
		}
	}
}

// BenchmarkAblationPowerExponent compares dynamic-power exponents 2 and 3:
// the cap-to-frequency inversion softens as alpha rises.
func BenchmarkAblationPowerExponent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alpha := range []float64{2, 3} {
			model := power.DefaultNodeModel()
			model.Alpha = alpha
			frac, ok := model.FreqForCap(250, 360, 1)
			if !ok {
				b.Fatal("cap should be feasible")
			}
			e := model.EnergyToSolution(360, 0.7, 0.5)
			if i == 0 {
				b.ReportMetric(frac, fmtMetric("frac@250W-a", alpha, ""))
				b.ReportMetric(e, fmtMetric("energy@0.7f-a", alpha, ""))
			}
		}
	}
}

// BenchmarkAblationTopoPenalty sweeps the per-hop communication penalty:
// the topology effect on a span-3 placement at each setting (E15's
// fragmented-machine scenario is penalty-sensitive by design).
func BenchmarkAblationTopoPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, pen := range []float64{0.02, 0.05, 0.15} {
			m := core.NewManager(core.Options{
				Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: uint64(i + 1),
			})
			m.TopoPenaltyPerHop = pen
			// Force the widest placement (scatter across PDUs) so the
			// span-dependent stretch isolates the penalty parameter.
			m.OnPlacement(func(m *core.Manager, j *jobs.Job) (cluster.Strategy, bool) {
				return cluster.PlaceScatter, true
			})
			j := &jobs.Job{ID: 1, User: "u", Nodes: 16, Walltime: 6 * simulator.Hour,
				TrueRuntime: simulator.Hour, PowerPerNodeW: 300, MemFrac: 0.2, CommFrac: 0.6}
			if err := m.Submit(j, 1); err != nil {
				b.Fatal(err)
			}
			m.Run(12 * simulator.Hour)
			if i == 0 {
				stretch := float64(j.End-j.Start)/float64(simulator.Hour) - 1
				b.ReportMetric(100*stretch, fmtMetric("stretch%-p", pen*100, ""))
			}
		}
	}
}

// BenchmarkAblationHistoryDepth sweeps the tag-history predictor's window.
func BenchmarkAblationHistoryDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		js := workload.NewGenerator(workload.DefaultSpec(), uint64(i+1)).Generate(1500)
		for _, depth := range []int{1, 8, 64} {
			p := predict.NewTagHistory(250, depth)
			var pe, ae []float64
			for _, j := range js {
				pe = append(pe, p.Predict(j))
				ae = append(ae, j.PowerPerNodeW)
				p.Observe(j, j.PowerPerNodeW)
			}
			h := len(pe) / 2
			if i == 0 {
				b.ReportMetric(100*stats.MAPE(pe[h:], ae[h:]), fmtMetric("MAPE%-d", float64(depth), ""))
			}
		}
	}
}

// -- hollow-site scale curve --------------------------------------------------

// BenchmarkScale runs the internal/scale harness at 1k/10k/100k hollow
// nodes (10 jobs per node over a simulated week, full control loop:
// scheduling, power caps, faults, checkpoints) and reports the nodes x jobs
// vs wall-time/RSS curve. In -short mode the 100k point is skipped; the
// full curve lands in BENCH_<date>.json via `make bench`.
func BenchmarkScale(b *testing.B) {
	for _, nodes := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			if testing.Short() && nodes > 10000 {
				b.Skip("100k point skipped in -short mode")
			}
			for i := 0; i < b.N; i++ {
				res, err := scale.Run(scale.DefaultConfig(nodes, uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				if done := res.Completed + res.Killed; done != res.Jobs {
					b.Fatalf("run did not drain: %d of %d jobs terminal", done, res.Jobs)
				}
				if i == 0 {
					b.ReportMetric(res.WallSec, "wall-s")
					b.ReportMetric(res.PeakRSSMB, "rss-MB")
					b.ReportMetric(float64(res.Events), "events")
					b.ReportMetric(float64(res.Jobs), "jobs")
					b.ReportMetric(res.UtilPct, "util-%")
				}
			}
		})
	}
}

// -- micro-benchmarks on the hot paths ---------------------------------------

func BenchmarkEngineEventThroughput(b *testing.B) {
	eng := simulator.NewEngine()
	eng.Prof = profIfEnv()
	n := 0
	var fn func(now simulator.Time)
	fn = func(now simulator.Time) {
		n++
		if n < b.N {
			eng.After(1, "tick", fn)
		}
	}
	b.ResetTimer()
	eng.After(1, "tick", fn)
	eng.Run()
}

// BenchmarkEngineDeepQueue measures event push/pop with a million-entry
// backlog resident in the queue — the regime the calendar queue exists
// for. A deep daemon backlog parks far in the future while a
// fire-one-schedule-one tick stream runs through the near term, so every
// measured operation pays the at-depth insert and extract cost.
func BenchmarkEngineDeepQueue(b *testing.B) {
	eng := simulator.NewEngine()
	const depth = 1 << 20
	for i := 0; i < depth; i++ {
		eng.AtDaemon(simulator.Time(1<<30+i), "backlog", func(simulator.Time) {})
	}
	n := 0
	var fn func(now simulator.Time)
	fn = func(now simulator.Time) {
		n++
		if n < b.N {
			eng.After(1, "tick", fn)
		}
	}
	b.ResetTimer()
	eng.After(1, "tick", fn)
	eng.Run()
}

func BenchmarkSchedulerPickEASY(b *testing.B) {
	var queue []*jobs.Job
	for i := 0; i < 100; i++ {
		queue = append(queue, &jobs.Job{
			ID: int64(i + 1), Nodes: (i % 16) + 1,
			Walltime: simulator.Time(1000 + i*100), TrueRuntime: 1000, PowerPerNodeW: 300,
		})
	}
	var running []sched.RunningJob
	for i := 0; i < 20; i++ {
		running = append(running, sched.RunningJob{
			Job:         &jobs.Job{ID: int64(1000 + i), Nodes: 2},
			Nodes:       2,
			ExpectedEnd: simulator.Time(500 + i*200),
		})
	}
	v := sched.View{Now: 0, Free: 24, TotalNodes: 64, Queue: queue, Running: running, Prof: profIfEnv()}
	s := sched.EASY{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Pick(v)
	}
}

func BenchmarkPowerSystemRefresh(b *testing.B) {
	cl := cluster.New(cluster.DefaultConfig())
	sys := power.NewSystem(cl, power.DefaultNodeModel(), power.DefaultPStates(), 0.05, simulator.NewRNG(1))
	cl.Allocate(1, 32, 0, nil)
	sys.Prof = profIfEnv()
	sys.StartJob(0, 1, cl.JobNodes(1), 300, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.RefreshAll(simulator.Time(i + 1))
	}
}

func BenchmarkFullSiteWeek(b *testing.B) {
	// End-to-end cost of one simulated week of the KAUST profile.
	for i := 0; i < b.N; i++ {
		m := core.NewManager(core.Options{
			Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: uint64(i + 1), VarSigma: 0.05,
		})
		m.Use(&policy.StaticCap{CapW: 270, UncappedFrac: 0.3, RouteHungry: true})
		m.Use(&policy.EnergyReport{})
		for _, j := range workload.NewGenerator(workload.DefaultSpec(), uint64(i+3)).Generate(500) {
			if err := m.Submit(j, j.Submit); err != nil {
				b.Fatal(err)
			}
		}
		m.Run(7 * simulator.Day)
	}
}

// fmtMetric builds a parameterized metric label like "peak-kW-30%unc".
func fmtMetric(prefix string, v float64, suffix string) string {
	if v == float64(int64(v)) {
		return prefix + itoa(int64(v)) + suffix
	}
	return prefix + itoa(int64(v*10)) + "e-1" + suffix
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
