// Package epajsrm reproduces "Energy and Power Aware Job Scheduling and
// Resource Management: Global Survey — Initial Analysis" (Maiterth et al.,
// IPDPSW 2018) as an executable system: a discrete-event HPC cluster and
// power simulator, an EPA JSRM manager in the shape of the paper's
// Figure 1, one policy module per surveyed capability, the nine surveyed
// centers as runnable profiles, and a survey data model that regenerates
// the paper's tables and figures.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmark harness in bench_test.go regenerates every exhibit
// (Tables I/II, Figures 1/2) and validation experiment (E1–E20).
package epajsrm
