// Quickstart: build a small cluster, attach one EPA policy, submit a
// synthetic workload, and read the results — the minimal end-to-end tour
// of the library's public surface.
package main

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/policy"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

func main() {
	// 1. Assemble a system: 64 nodes, EASY backfilling, default power model.
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      1,
	})

	// 2. Attach an energy/power-aware policy — here, post-job energy
	// reports with efficiency marks (Tokyo Tech / JCAHPC style).
	reports := &policy.EnergyReport{}
	m.Use(reports)

	// 3. Generate and submit a workload.
	gen := workload.NewGenerator(workload.DefaultSpec(), 7)
	for _, j := range gen.Generate(100) {
		if err := m.Submit(j, j.Submit); err != nil {
			panic(err)
		}
	}

	// 4. Run to completion and inspect.
	end := m.Run(-1)
	fmt.Printf("simulated %s: %s\n", end, m.Metrics.Summary(m.Cl.Size()))
	fmt.Printf("total IT energy: %.2f MWh, peak power: %.1f kW\n",
		m.Pw.TotalEnergy()/3.6e9, func() float64 { p, _ := m.Pw.PeakPower(); return p }()/1000)

	fmt.Println("\nfirst five post-job energy reports:")
	for _, r := range reports.Reports[:5] {
		fmt.Println("  ", r)
	}
	top := reports.UserSummary()
	fmt.Printf("\nbiggest consumer: %s with %.2f kWh\n", top[0].User, top[0].KWh)
	_ = simulator.Time(0)
}
