// Gridops: an electricity-service-provider integration day (the Bates et
// al. scenario behind the survey's motivation, and RIKEN's grid research
// row). The site runs a peak/off-peak tariff, receives a demand-response
// request for the afternoon, limits its power ramp rate, and sources
// peak-hour load from a gas turbine when that is cheaper. The example
// prints the day's power profile with the DR window visible, plus the
// energy bill split by source.
package main

import (
	"fmt"

	"epajsrm/internal/checkpoint"
	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/esp"
	"epajsrm/internal/policy"
	"epajsrm/internal/report"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

func main() {
	prov := &esp.Provider{
		Tariff: esp.PeakTariff(0.09, 0.28),
		Events: []esp.DemandResponse{
			// The ESP asks the site to stay under 10 kW from 13:00 to 17:00.
			{From: 13 * simulator.Hour, Until: 17 * simulator.Hour, LimitW: 10e3},
		},
		TurbineCapW:       4e3,
		TurbineCostPerKWh: 0.16,
	}

	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      13,
		// DR preemptions drain through a costed checkpoint write instead of
		// discarding the victims' progress.
		Checkpoint: checkpoint.Config{BWGBps: 10, StateFrac: 0.3, IOPowerW: 30},
	})
	grid := &policy.GridAware{Provider: prov, PeakMaxNodes: 16, DRPreempt: true}
	ramp := &policy.RampLimit{MaxRampW: 3000, Window: 5 * simulator.Minute}
	m.Use(grid).Use(ramp)

	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 200
	spec.DiurnalAmp = 0.8 // submissions peak mid-afternoon, like real users
	for _, j := range workload.NewGenerator(spec, 29).Generate(400) {
		if err := m.Submit(j, j.Submit); err != nil {
			panic(err)
		}
	}
	end := m.Run(2 * simulator.Day)
	grid.Meter.Observe(end, 0)

	// Chart the first day's power profile.
	var xs, ys []float64
	for _, r := range m.Tel.Series {
		if r.At > simulator.Day {
			break
		}
		xs = append(xs, float64(r.At)/float64(simulator.Hour))
		ys = append(ys, r.ITW/1000)
	}
	fmt.Println(report.LineChart{
		Title:  "Day 1 site power (DR window 13:00-17:00 capped at 10 kW)",
		YLabel: "kW (x in hours)",
		Xs:     xs, Ys: ys,
	}.Render())

	fmt.Printf("demand response: %d checkpoint preemptions at the event, %d kills; %d peak-tariff gate denials\n",
		grid.DRPreempts, grid.DRKills, grid.HeldAtPeak)
	fmt.Printf("checkpointing: %d images written, %d restores, %.1f node-h of work lost\n",
		m.Metrics.CheckpointsWritten, m.Metrics.CheckpointRestores, m.Metrics.LostWorkSeconds/3600)
	fmt.Printf("ramp limiter: %d starts deferred to stay under %.1f kW per %s\n",
		ramp.Held, ramp.MaxRampW/1000, ramp.Window)
	fmt.Printf("energy bill: %.2f total — %.0f kWh grid + %.0f kWh turbine\n",
		grid.Meter.Cost, grid.Meter.GridKWh, grid.Meter.TurbKWh)
	fmt.Printf("work: %d completed, %d killed, utilization %.0f%%\n",
		m.Metrics.Completed, m.Metrics.Killed, 100*m.Metrics.Utilization(m.Cl.Size()))

	// Verify DR compliance from the telemetry archive.
	worstDR := 0.0
	for _, r := range m.Tel.Series {
		if r.At >= 13*simulator.Hour && r.At < 17*simulator.Hour && r.ITW > worstDR {
			worstDR = r.ITW
		}
	}
	fmt.Printf("worst draw inside the DR window: %.1f kW (limit 10.0)\n", worstDR/1000)
}
