// Powercap: a KAUST-style scenario. The same workload runs three ways —
// uncapped, with static CAPMC-style node caps (70 % of nodes at 270 W),
// and with SDPM-style dynamic power sharing at the same total budget —
// and the example prints the peak-power/throughput trade each makes.
package main

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/policy"
	"epajsrm/internal/report"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

func run(name string, attach func(m *core.Manager)) []string {
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      3,
		VarSigma:  0.05,
	})
	if attach != nil {
		attach(m)
	}
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 120 // saturating pressure so the budget binds
	for _, j := range workload.NewGenerator(spec, 11).Generate(800) {
		if err := m.Submit(j, j.Submit); err != nil {
			panic(err)
		}
	}
	peak := 0.0
	m.Eng.Every(30*simulator.Second, "probe", func(simulator.Time) {
		if p := m.Pw.TotalPower(); p > peak {
			peak = p
		}
	})
	m.Run(3 * simulator.Day)
	return []string{
		name,
		fmt.Sprintf("%.1f", peak/1000),
		fmt.Sprintf("%.0f", m.Metrics.ThroughputNodeHoursPerDay()),
		fmt.Sprintf("%d", m.Metrics.Completed),
		simulator.Time(m.Metrics.Waits.Median()).String(),
	}
}

func main() {
	budget := 64 * 215.0 // what the static config's envelope works out to

	tbl := report.Table{
		Title:  "KAUST-style power capping, one workload, three control styles",
		Header: []string{"configuration", "peak (kW)", "node-h/day", "completed", "median wait"},
	}
	tbl.Rows = append(tbl.Rows, run("uncapped", nil))
	tbl.Rows = append(tbl.Rows, run("static 270 W caps on 70 %", func(m *core.Manager) {
		m.Use(&policy.StaticCap{CapW: 270, UncappedFrac: 0.30, RouteHungry: true})
	}))
	tbl.Rows = append(tbl.Rows, run(fmt.Sprintf("dynamic sharing @ %.1f kW", budget/1000), func(m *core.Manager) {
		m.Use(&policy.DynamicPowerSharing{BudgetW: budget})
	}))
	fmt.Println(tbl.Render())
	fmt.Println("shape to expect: capping trims the peak; dynamic sharing holds a hard")
	fmt.Println("budget while losing less throughput than a uniform static split would.")
}
