// Greendc: a Tokyo-Tech-style green datacenter. The resource manager
// boots and shuts down nodes to hold a summer power cap over a 30-minute
// enforcement window — without ever killing a job — and powers off
// long-idle nodes. Users get post-job energy reports with efficiency
// marks.
package main

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/policy"
	"epajsrm/internal/power"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

func main() {
	fac := power.DefaultFacility()
	fac.Climate = power.Climate{MeanC: 17, SeasonAmpC: 11, DailyAmpC: 4}

	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      5,
		Facility:  fac,
	})
	capPol := &policy.BootWindowCap{
		CapW:       64 * 220,
		Window:     30 * simulator.Minute,
		SummerOnly: true,
	}
	idlePol := &policy.IdleShutdown{IdleAfter: 20 * simulator.Minute, MinSpare: 2}
	reports := &policy.EnergyReport{}
	m.Use(capPol).Use(idlePol).Use(reports)

	// Day/night workload across four summer days (simulation starts in
	// spring; the summer peak is around day 91).
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 300
	start := 90 * simulator.Day
	for _, j := range workload.NewGenerator(spec, 17).Generate(600) {
		if err := m.Submit(j, start+j.Submit); err != nil {
			panic(err)
		}
	}
	m.Run(start + 4*simulator.Day)

	fmt.Println("Tokyo-Tech-style boot-window capping — four summer days")
	fmt.Printf("  cap: %.1f kW averaged over %s (summer only)\n", capPol.CapW/1000, capPol.Window)
	fmt.Printf("  window-average now: %.1f kW, violations: %d\n", capPol.WindowAverage()/1000, capPol.Violations)
	fmt.Printf("  node power-offs: %d (cap) + %d (idle), boots: %d (cap) + %d (demand)\n",
		capPol.Shutdowns, idlePol.Shutdowns, capPol.Boots, idlePol.Boots)
	fmt.Printf("  jobs killed: %d   <- the capability's contract: zero\n", m.Metrics.Killed)
	fmt.Printf("  completed: %d, utilization %.1f%%, median wait %s\n",
		m.Metrics.Completed, 100*m.Metrics.Utilization(m.Cl.Size()),
		simulator.Time(m.Metrics.Waits.Median()))
	fmt.Printf("  IT energy: %.2f MWh\n", m.Pw.TotalEnergy()/3.6e9)

	marks := map[byte]int{}
	for _, r := range reports.Reports {
		marks[r.Mark]++
	}
	fmt.Printf("  user efficiency marks: A=%d B=%d C=%d D=%d E=%d\n",
		marks['A'], marks['B'], marks['C'], marks['D'], marks['E'])
}
