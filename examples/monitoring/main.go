// Monitoring: an STFC/CINECA-style observability tour. A collector
// samples the power hierarchy (node → rack → PDU → system) while a
// workload runs; the example then queries the multi-resolution archive,
// lists the most power-hungry nodes (KAUST's "detecting most power hungry
// applications"), and shows threshold alerts firing on a PDU.
package main

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/monitor"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

func main() {
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      9,
		VarSigma:  0.06,
	})
	col := monitor.NewCollector(m.Cl, m.Pw, monitor.Options{
		Period:       30 * simulator.Second,
		RawKeep:      512,
		CoarsePeriod: 5 * simulator.Minute,
		LongPeriod:   simulator.Hour,
	}).Start(m.Eng)

	alerts := 0
	var firstAlert monitor.Alert
	col.Subscribe(monitor.LevelPDU, -1, 9000, func(a monitor.Alert) {
		if alerts == 0 {
			firstAlert = a
		}
		alerts++
	})

	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 180
	for _, j := range workload.NewGenerator(spec, 21).Generate(400) {
		if err := m.Submit(j, j.Submit); err != nil {
			panic(err)
		}
	}
	end := m.Run(2 * simulator.Day)

	sys := col.Channel(monitor.LevelSystem, 0)
	fmt.Printf("monitored %s: %d system samples, mean %.1f kW, max %.1f kW\n",
		end, sys.Stats.N(), sys.Stats.Mean()/1000, sys.Stats.Max()/1000)

	// Recent high-resolution window vs a day-old coarse window.
	recent := sys.Range(end-10*simulator.Minute, end)
	old := sys.Range(simulator.Hour, 3*simulator.Hour)
	fmt.Printf("archive: last 10 min -> %d raw samples; hours 1-3 -> %d coarse samples\n",
		len(recent), len(old))

	fmt.Println("\nper-PDU mean draw:")
	for i := 0; i < m.Cl.PDUs; i++ {
		ch := col.Channel(monitor.LevelPDU, i)
		fmt.Printf("  pdu%02d  %.1f kW mean, %.1f kW max\n", i, ch.Stats.Mean()/1000, ch.Stats.Max()/1000)
	}

	fmt.Println("\nfive most power-hungry nodes (mean draw):")
	for _, id := range col.HottestNodes(5) {
		ch := col.Channel(monitor.LevelNode, id)
		fmt.Printf("  %s  %.0f W mean (variability factor %.3f)\n",
			m.Cl.Nodes[id].Name, ch.Stats.Mean(), m.Pw.VarFactor(id))
	}

	fmt.Printf("\nPDU >9 kW alerts: %d", alerts)
	if alerts > 0 {
		fmt.Printf(" (first: pdu%d at %s drawing %.1f kW)", firstAlert.Index, firstAlert.At, firstAlert.W/1000)
	}
	fmt.Println()
}
