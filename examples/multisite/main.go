// Multisite: run all nine surveyed centers' profiles on the same seed and
// print a comparative summary — the executable counterpart of the paper's
// Tables I/II.
package main

import (
	"fmt"

	"epajsrm/internal/report"
	"epajsrm/internal/simulator"
	"epajsrm/internal/site"
)

func main() {
	tbl := report.Table{
		Title: "Nine surveyed centers, one week of simulated operation (seed 42)",
		Header: []string{
			"site", "nodes", "policies", "completed", "killed",
			"util", "peak kW", "energy MWh",
		},
	}
	for _, p := range site.All() {
		m, _, err := p.Build(42, 250)
		if err != nil {
			panic(err)
		}
		m.Run(7 * simulator.Day)
		peak, _ := m.Pw.PeakPower()
		pols := ""
		for i, name := range m.PolicyNames() {
			if i > 0 {
				pols += "\n"
			}
			pols += name
		}
		tbl.Rows = append(tbl.Rows, []string{
			p.Name,
			fmt.Sprint(m.Cl.Size()),
			pols,
			fmt.Sprint(m.Metrics.Completed),
			fmt.Sprint(m.Metrics.Killed),
			fmt.Sprintf("%.0f%%", 100*m.Metrics.Utilization(m.Cl.Size())),
			fmt.Sprintf("%.1f", peak/1000),
			fmt.Sprintf("%.2f", m.Pw.TotalEnergy()/3.6e9),
		})
	}
	fmt.Println(tbl.Render())
	fmt.Println("Each row exercises the production capabilities the paper's Tables I/II")
	fmt.Println("record for that center; see internal/site for the per-center wiring.")
}
