module epajsrm

go 1.22
