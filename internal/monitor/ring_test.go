package monitor

// Boundary tests for the multi-resolution archive: ring wrap order, coarse
// bucket rollover timing, and Range queries at the exact archive edges.

import (
	"testing"

	"epajsrm/internal/simulator"
)

func TestRingWrapAcrossManyRollovers(t *testing.T) {
	r := newRing(4)
	if got := r.all(); len(got) != 0 {
		t.Fatalf("empty ring returned %v", got)
	}
	// Fill exactly to capacity: nothing dropped yet.
	for i := 1; i <= 4; i++ {
		r.push(Sample{At: simulator.Time(i), W: float64(i)})
	}
	if got := r.all(); len(got) != 4 || got[0].At != 1 || got[3].At != 4 {
		t.Fatalf("full ring = %v", got)
	}
	// Push three full capacities more: the ring must always hold the last
	// four samples in chronological order, whatever the wrap offset.
	for i := 5; i <= 16; i++ {
		r.push(Sample{At: simulator.Time(i), W: float64(i)})
		all := r.all()
		if len(all) != 4 {
			t.Fatalf("after push %d: len=%d", i, len(all))
		}
		for k, s := range all {
			if want := simulator.Time(i - 3 + k); s.At != want {
				t.Fatalf("after push %d: slot %d = t%d, want t%d", i, k, s.At, want)
			}
		}
	}
}

// TestCoarseBucketRollover pins the exact rollover semantics of the coarse
// tier: the sample whose age crosses the bucket period is included in the
// bucket it closes, the emitted sample is stamped at the bucket start, and
// its value is the mean of everything the bucket absorbed.
func TestCoarseBucketRollover(t *testing.T) {
	ch := newChannel(LevelSystem, 0, 64, 60*simulator.Second, simulator.Hour)
	// Samples every 10 s with value = seconds: t=0..50 accumulate, t=60
	// crosses the 60 s period and closes the bucket including itself.
	for s := 0; s <= 50; s += 10 {
		ch.record(Sample{At: simulator.Time(s), W: float64(s)})
		if got := ch.coarse.all(); len(got) != 0 {
			t.Fatalf("bucket emitted early at t=%d: %v", s, got)
		}
	}
	ch.record(Sample{At: 60, W: 60})
	got := ch.coarse.all()
	if len(got) != 1 {
		t.Fatalf("coarse after rollover = %v", got)
	}
	if got[0].At != 0 {
		t.Fatalf("bucket stamped at t=%d, want bucket start t=0", got[0].At)
	}
	// Mean of 0,10,...,60 (seven samples) = 30.
	if got[0].W != 30 {
		t.Fatalf("bucket mean = %g, want 30", got[0].W)
	}
	// The next bucket restarts from the first sample after the rollover,
	// not from the closing sample: t=70..130 closes at t=130.
	for s := 70; s <= 120; s += 10 {
		ch.record(Sample{At: simulator.Time(s), W: 100})
	}
	if got := ch.coarse.all(); len(got) != 1 {
		t.Fatalf("second bucket emitted early: %v", got)
	}
	ch.record(Sample{At: 130, W: 100})
	got = ch.coarse.all()
	if len(got) != 2 || got[1].At != 70 || got[1].W != 100 {
		t.Fatalf("second bucket = %v, want {At:70 W:100}", got)
	}
}

// TestRangeEdgeSemantics checks [from, to) at the exact sample stamps.
func TestRangeEdgeSemantics(t *testing.T) {
	ch := newChannel(LevelNode, 0, 8, simulator.Minute, simulator.Hour)
	for s := 10; s <= 80; s += 10 {
		ch.record(Sample{At: simulator.Time(s), W: float64(s)})
	}
	// from is inclusive, to exclusive.
	got := ch.Range(10, 30)
	if len(got) != 2 || got[0].At != 10 || got[1].At != 20 {
		t.Fatalf("Range(10,30) = %v", got)
	}
	// to beyond the newest sample returns the full tail.
	if got = ch.Range(60, 1000); len(got) != 3 {
		t.Fatalf("Range(60,1000) = %v", got)
	}
	// An empty window inside the archive returns nothing.
	if got = ch.Range(25, 30); len(got) != 0 {
		t.Fatalf("Range(25,30) = %v", got)
	}
	// A window entirely after the archive returns nothing.
	if got = ch.Range(500, 600); len(got) != 0 {
		t.Fatalf("Range(500,600) = %v", got)
	}
}

// TestRangeTierFallbackAtWrapBoundary drives the raw ring past its
// capacity and checks tier selection on both sides of the oldest surviving
// raw sample: a query starting exactly at it stays raw; one second earlier
// must fall back to the coarse tier rather than silently truncate.
func TestRangeTierFallbackAtWrapBoundary(t *testing.T) {
	// rawKeep 4 at 10 s sampling; coarse buckets every 60 s.
	ch := newChannel(LevelSystem, 0, 4, 60*simulator.Second, simulator.Hour)
	for s := 0; s <= 200; s += 10 {
		ch.record(Sample{At: simulator.Time(s), W: float64(s)})
	}
	raw := ch.raw.all()
	if len(raw) != 4 || raw[0].At != 170 {
		t.Fatalf("raw ring after wrap = %v", raw)
	}
	// Query starting exactly at the oldest raw sample: raw tier, 10 s steps.
	got := ch.Range(170, 210)
	if len(got) != 4 || got[1].At-got[0].At != 10 {
		t.Fatalf("Range(170,210) = %v, want 4 raw samples", got)
	}
	// Ten seconds earlier the raw ring no longer covers `from`, so the
	// query must be served from the coarse tier. The coarse buckets here
	// are stamped 0, 70, 140 (each bucket closes on the sample that makes
	// it 60 s old and the next one restarts on the following sample), so a
	// window reaching back to t=100 yields exactly the t=140 bucket — and
	// must not contain the 10 s-spaced raw stamps 170..200.
	got = ch.Range(100, 210)
	if len(got) != 1 || got[0].At != 140 {
		t.Fatalf("Range(100,210) = %v, want the single coarse bucket at t=140", got)
	}
	// A query over the whole run sees every coarse bucket in order.
	got = ch.Range(0, 210)
	if len(got) != 3 || got[0].At != 0 || got[1].At != 70 || got[2].At != 140 {
		t.Fatalf("Range(0,210) = %v, want coarse buckets 0,70,140", got)
	}
	// Stamp-based [from,to): a narrow window that falls strictly between
	// two coarse stamps (here 141..169, inside the 140 bucket's span) is
	// empty by contract — the archive indexes bucket starts, not spans.
	if got = ch.Range(141, 169); len(got) != 0 {
		t.Fatalf("Range(141,169) = %v, want empty between coarse stamps", got)
	}
}
