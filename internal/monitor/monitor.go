// Package monitor implements the scalable, hierarchical power monitoring
// the survey records in production and research: STFC "continuously
// collecting power and energy system monitoring info, data center,
// machine, and job levels", CINECA's "scalable power monitoring" (the
// Examon lineage, with the University of Bologna), and Tokyo Tech's
// "analyze collected power and energy info archived long term". Samples
// flow from per-node readings up an aggregation tree (node → rack → PDU →
// system) and are archived in multi-resolution rings so a year of virtual
// time stays queryable at bounded memory.
package monitor

import (
	"fmt"
	"sort"

	"epajsrm/internal/cluster"
	"epajsrm/internal/metrics"
	"epajsrm/internal/power"
	"epajsrm/internal/simulator"
	"epajsrm/internal/stats"
)

// Level is one tier of the aggregation hierarchy.
type Level int

const (
	// LevelNode is a single compute node.
	LevelNode Level = iota
	// LevelRack aggregates the nodes of one rack.
	LevelRack
	// LevelPDU aggregates the racks of one PDU.
	LevelPDU
	// LevelSystem is the whole machine.
	LevelSystem
)

var levelNames = [...]string{"node", "rack", "pdu", "system"}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Sample is one timestamped power reading in watts.
type Sample struct {
	At simulator.Time
	W  float64
}

// ring is a fixed-capacity sample buffer that drops the oldest entries.
type ring struct {
	buf   []Sample
	start int
	n     int
}

func newRing(capacity int) *ring { return &ring{buf: make([]Sample, capacity)} }

func (r *ring) push(s Sample) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = s
		r.n++
		return
	}
	r.buf[r.start] = s
	r.start = (r.start + 1) % len(r.buf)
}

func (r *ring) all() []Sample {
	out := make([]Sample, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// Channel archives one metric stream at three resolutions: raw samples,
// coarse means, and long-term means. Each tier covers a progressively
// longer horizon at lower resolution — the standard telemetry-archive
// shape.
type Channel struct {
	Level Level
	Index int

	Stats stats.Online

	raw    *ring
	coarse *ring
	long   *ring

	coarsePeriod simulator.Time
	longPeriod   simulator.Time
	accC, accL   accum
}

type accum struct {
	since simulator.Time
	sum   float64
	n     int
}

func (a *accum) add(w float64) { a.sum += w; a.n++ }
func (a *accum) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}
func (a *accum) reset(at simulator.Time) { a.since = at; a.sum = 0; a.n = 0 }

func newChannel(level Level, index int, rawKeep int, coarsePeriod, longPeriod simulator.Time) *Channel {
	return &Channel{
		Level: level, Index: index,
		raw:          newRing(rawKeep),
		coarse:       newRing(rawKeep),
		long:         newRing(rawKeep),
		coarsePeriod: coarsePeriod,
		longPeriod:   longPeriod,
	}
}

func (c *Channel) record(s Sample) {
	c.Stats.Add(s.W)
	c.raw.push(s)
	if c.accC.n == 0 {
		c.accC.since = s.At
	}
	if c.accL.n == 0 {
		c.accL.since = s.At
	}
	c.accC.add(s.W)
	c.accL.add(s.W)
	if s.At-c.accC.since >= c.coarsePeriod {
		c.coarse.push(Sample{At: c.accC.since, W: c.accC.mean()})
		c.accC.reset(s.At)
	}
	if s.At-c.accL.since >= c.longPeriod {
		c.long.push(Sample{At: c.accL.since, W: c.accL.mean()})
		c.accL.reset(s.At)
	}
}

// Range returns the archived samples covering [from, to), choosing the
// finest tier that still covers `from`. Long-term analysis over months
// transparently gets the hourly means; recent queries get raw samples.
func (c *Channel) Range(from, to simulator.Time) []Sample {
	pick := func(r *ring) ([]Sample, bool) {
		all := r.all()
		if len(all) == 0 || all[0].At > from {
			return nil, false
		}
		return all, true
	}
	source, ok := pick(c.raw)
	if !ok {
		if source, ok = pick(c.coarse); !ok {
			source = c.long.all()
		}
	}
	lo := sort.Search(len(source), func(i int) bool { return source[i].At >= from })
	hi := sort.Search(len(source), func(i int) bool { return source[i].At >= to })
	out := make([]Sample, hi-lo)
	copy(out, source[lo:hi])
	return out
}

// Alert is a threshold subscription outcome delivered to a callback.
type Alert struct {
	At    simulator.Time
	Level Level
	Index int
	W     float64
	Limit float64
}

// Collector samples the power substrate and maintains the channel tree.
type Collector struct {
	Cl  *cluster.Cluster
	Sys *power.System

	// Thermal, when set, is advanced on every sample so node temperatures
	// stay current with the power draw the collector observes (CINECA's
	// "node power and temperature evolution" monitoring).
	Thermal *power.Thermal

	// Period is the sampling interval.
	Period simulator.Time

	nodes  []*Channel
	racks  []*Channel
	pdus   []*Channel
	system *Channel

	// Dropped counts sampling instants lost to an outage window.
	Dropped *metrics.Counter

	// Per-sample aggregation scratch, reused so the periodic sampler does
	// not allocate two slices every period.
	rackW []float64
	pduW  []float64

	outage   bool
	lastGood simulator.Time
	haveGood bool

	subs []subscription
	stop func()
}

type subscription struct {
	level Level
	index int // -1 = all indices at the level
	limit float64
	fn    func(Alert)
}

// Options tunes archive sizing.
type Options struct {
	Period       simulator.Time // sampling period (default 30 s)
	RawKeep      int            // raw samples kept per channel (default 2048)
	CoarsePeriod simulator.Time // coarse tier bucket (default 5 min)
	LongPeriod   simulator.Time // long-term tier bucket (default 1 h)
}

// NewCollector builds the channel tree over cl/sys.
func NewCollector(cl *cluster.Cluster, sys *power.System, opt Options) *Collector {
	if opt.Period <= 0 {
		opt.Period = 30 * simulator.Second
	}
	if opt.RawKeep <= 0 {
		opt.RawKeep = 2048
	}
	if opt.CoarsePeriod <= 0 {
		opt.CoarsePeriod = 5 * simulator.Minute
	}
	if opt.LongPeriod <= 0 {
		opt.LongPeriod = simulator.Hour
	}
	c := &Collector{
		Cl: cl, Sys: sys, Period: opt.Period,
		Dropped: metrics.NewCounter(),
		rackW:   make([]float64, cl.Racks),
		pduW:    make([]float64, cl.PDUs),
	}
	mk := func(l Level, i int) *Channel {
		return newChannel(l, i, opt.RawKeep, opt.CoarsePeriod, opt.LongPeriod)
	}
	for i := 0; i < cl.Size(); i++ {
		c.nodes = append(c.nodes, mk(LevelNode, i))
	}
	for i := 0; i < cl.Racks; i++ {
		c.racks = append(c.racks, mk(LevelRack, i))
	}
	for i := 0; i < cl.PDUs; i++ {
		c.pdus = append(c.pdus, mk(LevelPDU, i))
	}
	c.system = mk(LevelSystem, 0)
	return c
}

// Start begins periodic sampling on eng.
func (c *Collector) Start(eng *simulator.Engine) *Collector {
	c.stop = eng.Every(c.Period, "monitor", c.SampleNow)
	return c
}

// Stop halts sampling. It is idempotent and safe to call before Start.
func (c *Collector) Stop() {
	if c.stop != nil {
		c.stop()
		c.stop = nil
	}
}

// SetOutage begins or ends a collector outage window (the whole telemetry
// path down, e.g. a management-network partition). During an outage the
// physics still advances but nothing is archived and no alert subscription
// fires, so consumers must use Stale to notice the silence.
func (c *Collector) SetOutage(on bool) { c.outage = on }

// OutageActive reports whether an outage window is in effect.
func (c *Collector) OutageActive() bool { return c.outage }

// Stale reports whether the collector's last archived hierarchy sample is
// older than threshold at time now; threshold <= 0 means three sampling
// periods.
func (c *Collector) Stale(now, threshold simulator.Time) bool {
	if threshold <= 0 {
		threshold = 3 * c.Period
	}
	if !c.haveGood {
		return now > threshold
	}
	return now-c.lastGood > threshold
}

// SampleNow takes one full hierarchy sample immediately.
func (c *Collector) SampleNow(now simulator.Time) {
	c.Sys.Advance(now)
	if c.Thermal != nil {
		c.Thermal.Advance(now)
	}
	if c.outage {
		c.Dropped.Inc()
		return
	}
	c.lastGood = now
	c.haveGood = true
	rackW := c.rackW
	pduW := c.pduW
	for i := range rackW {
		rackW[i] = 0
	}
	for i := range pduW {
		pduW[i] = 0
	}
	total := 0.0
	for _, n := range c.Cl.Nodes {
		w := c.Sys.NodePower(n.ID)
		c.nodes[n.ID].record(Sample{At: now, W: w})
		rackW[n.Rack] += w
		pduW[n.PDU] += w
		total += w
	}
	for i, w := range rackW {
		c.racks[i].record(Sample{At: now, W: w})
	}
	for i, w := range pduW {
		c.pdus[i].record(Sample{At: now, W: w})
	}
	c.system.record(Sample{At: now, W: total})
	c.checkSubs(now, rackW, pduW, total)
}

func (c *Collector) checkSubs(now simulator.Time, rackW, pduW []float64, total float64) {
	for _, s := range c.subs {
		fire := func(index int, w float64) {
			if w > s.limit {
				s.fn(Alert{At: now, Level: s.level, Index: index, W: w, Limit: s.limit})
			}
		}
		switch s.level {
		case LevelNode:
			if s.index >= 0 {
				fire(s.index, c.Sys.NodePower(s.index))
			} else {
				for i := range c.nodes {
					fire(i, c.Sys.NodePower(i))
				}
			}
		case LevelRack:
			for i, w := range rackW {
				if s.index < 0 || s.index == i {
					fire(i, w)
				}
			}
		case LevelPDU:
			for i, w := range pduW {
				if s.index < 0 || s.index == i {
					fire(i, w)
				}
			}
		case LevelSystem:
			fire(0, total)
		}
	}
}

// Subscribe registers a threshold alert: fn fires on every sample where
// the channel exceeds limitW. index -1 subscribes to every channel at the
// level.
func (c *Collector) Subscribe(level Level, index int, limitW float64, fn func(Alert)) {
	c.subs = append(c.subs, subscription{level: level, index: index, limit: limitW, fn: fn})
}

// Channel returns the archive channel at (level, index), or nil.
func (c *Collector) Channel(level Level, index int) *Channel {
	switch level {
	case LevelNode:
		if index >= 0 && index < len(c.nodes) {
			return c.nodes[index]
		}
	case LevelRack:
		if index >= 0 && index < len(c.racks) {
			return c.racks[index]
		}
	case LevelPDU:
		if index >= 0 && index < len(c.pdus) {
			return c.pdus[index]
		}
	case LevelSystem:
		if index == 0 {
			return c.system
		}
	}
	return nil
}

// HottestNodes returns the n node indices with the highest mean draw so
// far — KAUST's "analyzing and detecting most power hungry applications"
// needs exactly this view.
func (c *Collector) HottestNodes(n int) []int {
	idx := make([]int, len(c.nodes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return c.nodes[idx[a]].Stats.Mean() > c.nodes[idx[b]].Stats.Mean()
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}
