package monitor

import (
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/power"
	"epajsrm/internal/simulator"
)

func newCollector(t *testing.T, opt Options) (*Collector, *simulator.Engine, *cluster.Cluster, *power.System) {
	t.Helper()
	eng := simulator.NewEngine()
	cl := cluster.New(cluster.DefaultConfig())
	sys := power.NewSystem(cl, power.DefaultNodeModel(), power.DefaultPStates(), 0, nil)
	return NewCollector(cl, sys, opt), eng, cl, sys
}

func TestHierarchySumsAreConsistent(t *testing.T) {
	c, eng, cl, _ := newCollector(t, Options{Period: 10 * simulator.Second})
	c.Start(eng)
	eng.RunUntil(100)
	// node sums == rack sums == pdu sums == system, per sample.
	sys := c.Channel(LevelSystem, 0).raw.all()
	if len(sys) != 10 {
		t.Fatalf("system samples = %d", len(sys))
	}
	for k, s := range sys {
		nodeSum := 0.0
		for i := 0; i < cl.Size(); i++ {
			nodeSum += c.Channel(LevelNode, i).raw.all()[k].W
		}
		rackSum := 0.0
		for i := 0; i < cl.Racks; i++ {
			rackSum += c.Channel(LevelRack, i).raw.all()[k].W
		}
		pduSum := 0.0
		for i := 0; i < cl.PDUs; i++ {
			pduSum += c.Channel(LevelPDU, i).raw.all()[k].W
		}
		for _, v := range []float64{nodeSum, rackSum, pduSum} {
			if v < s.W-1e-6 || v > s.W+1e-6 {
				t.Fatalf("sample %d: hierarchy sums diverge: %f vs system %f", k, v, s.W)
			}
		}
	}
}

func TestRingDropsOldest(t *testing.T) {
	r := newRing(3)
	for i := 1; i <= 5; i++ {
		r.push(Sample{At: simulator.Time(i), W: float64(i)})
	}
	all := r.all()
	if len(all) != 3 || all[0].At != 3 || all[2].At != 5 {
		t.Fatalf("ring contents = %v", all)
	}
}

func TestMultiResolutionArchive(t *testing.T) {
	c, eng, _, _ := newCollector(t, Options{
		Period:       30 * simulator.Second,
		RawKeep:      8, // tiny: raw covers only 4 minutes
		CoarsePeriod: 5 * simulator.Minute,
		LongPeriod:   simulator.Hour,
	})
	c.Start(eng)
	eng.RunUntil(6 * simulator.Hour)
	ch := c.Channel(LevelSystem, 0)

	// A recent query is served from raw samples (30 s apart).
	now := 6 * simulator.Hour
	recent := ch.Range(now-2*simulator.Minute, now)
	if len(recent) < 3 {
		t.Fatalf("recent raw samples = %d", len(recent))
	}
	// A query reaching hours back cannot come from the 8-deep raw ring;
	// it must fall back to a coarser tier and still return data.
	old := ch.Range(simulator.Hour, 2*simulator.Hour)
	if len(old) == 0 {
		t.Fatal("hour-old query returned nothing — archive tiers broken")
	}
	// Coarse samples are 5 minutes apart: at most ~13 in an hour.
	if len(old) > 14 {
		t.Fatalf("old query returned %d samples, expected coarse tier", len(old))
	}
}

func TestChannelStatsTrackMean(t *testing.T) {
	c, eng, cl, sys := newCollector(t, Options{Period: 10 * simulator.Second})
	c.Start(eng)
	eng.RunUntil(100)
	want := float64(cl.Size()) * sys.Model.IdleW
	if got := c.Channel(LevelSystem, 0).Stats.Mean(); got != want {
		t.Fatalf("system mean = %f, want %f", got, want)
	}
}

func TestSubscriptionAlerts(t *testing.T) {
	c, eng, cl, sys := newCollector(t, Options{Period: 10 * simulator.Second})
	var alerts []Alert
	idleSystem := float64(cl.Size()) * sys.Model.IdleW
	c.Subscribe(LevelSystem, 0, idleSystem+100, func(a Alert) { alerts = append(alerts, a) })
	c.Start(eng)
	// Put load on at t=50 to cross the threshold.
	eng.After(50, "load", func(now simulator.Time) {
		nodes := cl.Allocate(1, 4, now, nil)
		sys.StartJob(now, 1, nodes, 300, 0, 1)
	})
	eng.RunUntil(100)
	if len(alerts) == 0 {
		t.Fatal("no alerts fired")
	}
	if alerts[0].At < 50 {
		t.Fatalf("alert before load at %d", alerts[0].At)
	}
	if alerts[0].Level != LevelSystem || alerts[0].W <= alerts[0].Limit {
		t.Fatalf("bad alert %+v", alerts[0])
	}
}

func TestSubscriptionPerNodeWildcard(t *testing.T) {
	c, eng, cl, sys := newCollector(t, Options{Period: 10 * simulator.Second})
	fired := map[int]bool{}
	c.Subscribe(LevelNode, -1, 200, func(a Alert) { fired[a.Index] = true })
	c.Start(eng)
	eng.After(5, "load", func(now simulator.Time) {
		nodes := cl.Allocate(1, 3, now, nil)
		sys.StartJob(now, 1, nodes, 300, 0, 1)
	})
	eng.RunUntil(60)
	if len(fired) != 3 {
		t.Fatalf("alerted nodes = %d, want the 3 busy ones", len(fired))
	}
}

func TestHottestNodes(t *testing.T) {
	c, eng, cl, sys := newCollector(t, Options{Period: 10 * simulator.Second})
	c.Start(eng)
	eng.After(0, "load", func(now simulator.Time) {
		nodes := cl.Allocate(1, 2, now, nil)
		sys.StartJob(now, 1, nodes, 350, 0, 1)
	})
	eng.RunUntil(200)
	hot := c.HottestNodes(2)
	if len(hot) != 2 {
		t.Fatalf("hottest = %v", hot)
	}
	busy := map[int]bool{}
	for _, n := range cl.JobNodes(1) {
		busy[n.ID] = true
	}
	for _, id := range hot {
		if !busy[id] {
			t.Fatalf("node %d reported hottest but is idle", id)
		}
	}
}

func TestChannelLookupBounds(t *testing.T) {
	c, _, _, _ := newCollector(t, Options{})
	if c.Channel(LevelNode, -1) != nil || c.Channel(LevelNode, 10000) != nil {
		t.Fatal("out-of-range node channel")
	}
	if c.Channel(LevelSystem, 1) != nil {
		t.Fatal("system channel index must be 0")
	}
	if c.Channel(LevelRack, 0) == nil || c.Channel(LevelPDU, 0) == nil {
		t.Fatal("rack/pdu channels missing")
	}
}

func TestCollectorStop(t *testing.T) {
	c, eng, _, _ := newCollector(t, Options{Period: 10 * simulator.Second})
	c.Start(eng)
	eng.RunUntil(50)
	n := c.Channel(LevelSystem, 0).Stats.N()
	c.Stop()
	eng.RunUntil(100)
	if c.Channel(LevelSystem, 0).Stats.N() != n {
		t.Fatal("collector kept sampling after Stop")
	}
}

func TestCollectorAdvancesThermal(t *testing.T) {
	eng := simulator.NewEngine()
	cl := cluster.New(cluster.DefaultConfig())
	sys := power.NewSystem(cl, power.DefaultNodeModel(), power.DefaultPStates(), 0, nil)
	th := power.NewThermal(sys, power.DefaultThermalModel())
	c := NewCollector(cl, sys, Options{Period: 10 * simulator.Second})
	c.Thermal = th
	c.Start(eng)
	eng.After(5, "load", func(now simulator.Time) {
		nodes := cl.Allocate(1, 2, now, nil)
		sys.StartJob(now, 1, nodes, 360, 0, 1)
	})
	eng.RunUntil(simulator.Hour)
	id, temp := th.HottestNode()
	if cl.Nodes[id].JobID != 1 {
		t.Fatalf("hottest node %d not running the job", id)
	}
	idle := 22 + th.Model.RthCPerW*sys.Model.IdleW
	if temp <= idle+10 {
		t.Fatalf("busy node temp %f barely above idle %f after an hour", temp, idle)
	}
}

func TestCollectorStopIdempotentAndBeforeStart(t *testing.T) {
	c, eng, _, _ := newCollector(t, Options{Period: 10 * simulator.Second})
	c.Stop() // never started: must not panic
	c.Stop()
	c.Start(eng)
	eng.RunUntil(50)
	got := len(c.Channel(LevelSystem, 0).raw.all())
	c.Stop()
	c.Stop()
	eng.RunUntil(200)
	if n := len(c.Channel(LevelSystem, 0).raw.all()); n != got {
		t.Fatalf("samples after Stop: %d -> %d", got, n)
	}
}

func TestCollectorOutageAndStaleness(t *testing.T) {
	c, eng, _, _ := newCollector(t, Options{Period: 10 * simulator.Second})
	c.Start(eng)
	eng.RunUntil(30)
	if c.Stale(eng.Now(), 0) {
		t.Fatal("fresh collector reported stale")
	}
	before := len(c.Channel(LevelSystem, 0).raw.all())
	c.SetOutage(true)
	eng.RunUntil(70)
	if n := len(c.Channel(LevelSystem, 0).raw.all()); n != before {
		t.Fatalf("outage archived samples: %d -> %d", before, n)
	}
	if c.Dropped.Value() != 4 {
		t.Fatalf("Dropped = %d, want 4", c.Dropped.Value())
	}
	// Last archived sample at t=30; default threshold 3*10s.
	if !c.Stale(eng.Now(), 0) {
		t.Fatal("collector should be stale during a long outage")
	}
	c.SetOutage(false)
	eng.RunUntil(80)
	if c.Stale(eng.Now(), 0) {
		t.Fatal("collector still stale after recovery")
	}
	if n := len(c.Channel(LevelSystem, 0).raw.all()); n != before+1 {
		t.Fatalf("recovery sample missing: %d", n)
	}
}

func TestCollectorOutageSuppressesAlerts(t *testing.T) {
	c, eng, _, _ := newCollector(t, Options{Period: 10 * simulator.Second})
	fired := 0
	c.Subscribe(LevelSystem, 0, 1, func(Alert) { fired++ }) // 1 W: always over
	c.SetOutage(true)
	c.Start(eng)
	eng.RunUntil(100)
	if fired != 0 {
		t.Fatalf("alerts fired %d times during outage", fired)
	}
	c.SetOutage(false)
	eng.RunUntil(120)
	if fired == 0 {
		t.Fatal("alerts did not resume after outage")
	}
}
