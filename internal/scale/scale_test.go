package scale

import (
	"testing"

	"epajsrm/internal/simulator"
)

// TestHollowPointSmall runs a miniature curve point end to end: the pump
// must deliver exactly Jobs jobs, the run must drain, and the shaped load
// must land near the target.
func TestHollowPointSmall(t *testing.T) {
	c := Config{
		Nodes:      256,
		Jobs:       2000,
		Horizon:    2 * simulator.Day,
		Seed:       7,
		TargetUtil: 0.85,
	}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != c.Jobs {
		t.Fatalf("pump submitted %d of %d jobs", res.Submitted, c.Jobs)
	}
	if done := res.Completed + res.Killed; done != c.Jobs {
		t.Fatalf("run did not drain: completed+killed=%d of %d", done, c.Jobs)
	}
	if res.UtilPct < 40 || res.UtilPct > 100 {
		t.Errorf("utilization %.1f%% wildly off the 85%% target", res.UtilPct)
	}
	if res.SimDays < 2 {
		t.Errorf("sim span %.2f days, want >= arrival window of 2", res.SimDays)
	}
	if res.Events <= int64(c.Jobs) {
		t.Errorf("only %d events fired for %d jobs", res.Events, c.Jobs)
	}
	if res.Ckpts == 0 {
		t.Error("no checkpoints written; checkpoint substrate not exercised")
	}
	if res.Requeues == 0 {
		t.Log("note: no fault requeues at this size (acceptable at small N)")
	}
}

// TestSpecForLoadShaping pins the load solver: bigger machines with the
// same jobs-per-node density keep the same target by raising the
// capability fraction, and the arrival mean spreads jobs over the horizon.
func TestSpecForLoadShaping(t *testing.T) {
	c := DefaultConfig(10000, 1)
	s := SpecFor(c)
	wantArrival := float64(c.Horizon) / float64(c.Jobs)
	if s.ArrivalMeanSec != wantArrival {
		t.Errorf("arrival mean %.3f, want %.3f", s.ArrivalMeanSec, wantArrival)
	}
	if s.MaxNodes != 256 {
		t.Errorf("MaxNodes = %d, want 256 cap", s.MaxNodes)
	}
	if s.CapabilityFrac <= 0 || s.CapabilityFrac > 0.5 {
		t.Errorf("capability frac %.3f out of the solver's range", s.CapabilityFrac)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
