// Package scale is the hollow-site harness: it builds a system at node
// counts far beyond the nine surveyed profiles (1k/10k/100k "hollow" nodes
// — real control loop, synthetic workload, no per-node detail beyond what
// the manager already models) and pushes a week of mixed load through the
// full stack: EASY scheduling, a system power cap, node crash/repair
// faults, periodic checkpoints, and sampled telemetry. cmd/epascale and
// BenchmarkScale both drive this package, so the CLI curve and the
// benchmark numbers come from the same code path.
//
// Scale mode trades two exactness properties for throughput, both opt-in
// knobs that default runs never touch: lazy power-energy integration
// (power.System.EnableLazyEnergy — float sums reorder, equal to eager
// within 1e-6 relative) and grid-coalesced scheduling passes
// (core.Manager.SchedDefer — starts shift up to one grid step later).
package scale

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"epajsrm/internal/checkpoint"
	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/fault"
	"epajsrm/internal/jobs"
	"epajsrm/internal/power"
	"epajsrm/internal/prof"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// Config describes one hollow-site run.
type Config struct {
	Nodes   int            // cluster size
	Jobs    int            // total jobs pumped through the run
	Horizon simulator.Time // arrival window; the run drains past it
	Seed    uint64

	// TargetUtil is the offered load the workload is shaped to (fraction of
	// node-seconds); the capability-job mix is solved to hit it. Keeping it
	// under 1 keeps the queue bounded, which keeps scheduling passes cheap.
	TargetUtil float64

	// SchedDefer is the scheduling-pass grid (core.Manager.SchedDefer);
	// Telemetry the sampling period. Zero values take scale defaults
	// (60 s grid, 10 min sampling), not the manager's event-exact defaults
	// — this harness exists to run big, not byte-exact.
	SchedDefer simulator.Time
	Telemetry  simulator.Time

	// EagerPower disables lazy energy integration (for A/B timing).
	EagerPower bool
	// NoFaults / NoCheckpoints switch those subsystems off.
	NoFaults      bool
	NoCheckpoints bool
}

// DefaultConfig returns the standard curve point for a node count: jobs
// scale 10 per node over one simulated week at 85 % offered load.
func DefaultConfig(nodes int, seed uint64) Config {
	return Config{
		Nodes:      nodes,
		Jobs:       10 * nodes,
		Horizon:    7 * simulator.Day,
		Seed:       seed,
		TargetUtil: 0.85,
	}
}

// Result is one curve point, JSON-ready for BENCH files and CI smoke logs.
type Result struct {
	Nodes     int     `json:"nodes"`
	Jobs      int     `json:"jobs"`
	Submitted int     `json:"submitted"`
	Completed int     `json:"completed"`
	Killed    int     `json:"killed"`
	Requeues  int     `json:"requeues"`
	Ckpts     int     `json:"checkpoints_written"`
	UtilPct   float64 `json:"utilization_pct"`
	SimDays   float64 `json:"sim_days"`
	Events    int64   `json:"events_fired"`
	WallSec   float64 `json:"wall_sec"`
	HeapMB    float64 `json:"heap_mb"`     // live heap after the run
	PeakRSSMB float64 `json:"peak_rss_mb"` // VmHWM; 0 where /proc is absent

	// Phase profile: where the run's wall clock went (prof taxonomy,
	// exclusive attribution) and the fraction of WallSec the phases
	// account for. Coverage can exceed 100% by a hair — the pump's
	// first batch runs before the wall timer starts.
	Phases      []prof.PhaseStat `json:"phases"`
	PhaseCovPct float64          `json:"phase_coverage_pct"`
}

func (r Result) String() string {
	return fmt.Sprintf("nodes=%d jobs=%d completed=%d util=%.1f%% sim=%.1fd events=%d wall=%.2fs heap=%.0fMB rss=%.0fMB",
		r.Nodes, r.Jobs, r.Completed, r.UtilPct, r.SimDays, r.Events, r.WallSec, r.HeapMB, r.PeakRSSMB)
}

// SpecFor shapes the workload for a curve point: the arrival mean spreads
// c.Jobs over c.Horizon, and the capability fraction is solved so mean
// width x mean runtime x arrival rate hits TargetUtil of the machine.
func SpecFor(c Config) workload.Spec {
	arrival := float64(c.Horizon) / float64(c.Jobs)
	maxN := c.Nodes / 4
	if maxN > 256 {
		maxN = 256
	}
	if maxN < 2 {
		maxN = 2
	}
	const (
		runtimeMedian = 3600.0
		runtimeSigma  = 1.0
	)
	// Power-of-two widths 1..maxN, matching the generator's size list.
	var sizes []int
	for n := 1; n <= maxN; n *= 2 {
		sizes = append(sizes, n)
	}
	if sizes[len(sizes)-1] != maxN {
		sizes = append(sizes, maxN)
	}
	// Capacity jobs draw widths with inverse-width weights; capability jobs
	// uniformly from the top quarter of the list.
	var invSum float64
	for _, n := range sizes {
		invSum += 1 / float64(n)
	}
	avgCapacity := float64(len(sizes)) / invSum
	lo := len(sizes) * 3 / 4
	if lo >= len(sizes) {
		lo = len(sizes) - 1
	}
	var capSum float64
	for _, n := range sizes[lo:] {
		capSum += float64(n)
	}
	avgCapability := capSum / float64(len(sizes)-lo)

	meanRuntime := runtimeMedian * math.Exp(runtimeSigma*runtimeSigma/2)
	needWidth := c.TargetUtil * float64(c.Nodes) * arrival / meanRuntime
	frac := 0.0
	if avgCapability > avgCapacity {
		frac = (needWidth - avgCapacity) / (avgCapability - avgCapacity)
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 0.5 {
		frac = 0.5
	}
	return workload.Spec{
		ArrivalMeanSec:    arrival,
		MinNodes:          1,
		MaxNodes:          maxN,
		CapabilityFrac:    frac,
		RuntimeMedianSec:  runtimeMedian,
		RuntimeSigma:      runtimeSigma,
		WalltimeFactorMax: 2,
		Users:             200,
	}
}

// Build assembles the hollow-site manager: flat 32-node racks, a system
// power cap at ~85 % of the fleet's max draw, crash/repair faults at a
// one-year per-node MTBF, hourly checkpoints, and the scale-mode knobs.
func Build(c Config) (*core.Manager, error) {
	if c.TargetUtil <= 0 {
		c.TargetUtil = 0.85
	}
	if c.SchedDefer == 0 {
		c.SchedDefer = 60 * simulator.Second
	}
	if c.Telemetry == 0 {
		c.Telemetry = 10 * simulator.Minute
	}
	ckpt := checkpoint.Config{}
	if !c.NoCheckpoints {
		ckpt = checkpoint.Config{
			Interval:  simulator.Hour,
			BWGBps:    20 * float64(c.Nodes) / 1000, // burst buffer scales with the machine
			StateFrac: 0.05,
			IOPowerW:  30,
		}
	}
	m := core.NewManager(core.Options{
		Cluster: cluster.Config{
			Name: "hollow", Nodes: c.Nodes, NodesPerRack: 32, RacksPerPDU: 4, PDUsPerChiller: 4,
			Sockets: 2, CoresPerSocket: 16, MemGB: 96, Arch: "hollow",
			BootDelay: 3 * simulator.Minute, ShutdownDelay: 1 * simulator.Minute,
		},
		NodeModel:  power.NodeModel{OffW: 15, BootW: 120, IdleW: 100, MaxW: 350, Alpha: 3, MinFrac: 0.5},
		PStates:    power.DefaultPStates(),
		VarSigma:   0.05,
		Seed:       c.Seed,
		Scheduler:  sched.EASY{},
		Telemetry:  c.Telemetry,
		Checkpoint: ckpt,
	})
	if !c.EagerPower {
		m.Pw.EnableLazyEnergy()
	}
	m.SchedDefer = c.SchedDefer
	// First-fit placement: with no eligibility filter the allocator takes
	// the first set bits of the availability bitset without materializing
	// the free list — the compact strategy's per-start topology pass is the
	// dominant cost at 100k nodes.
	m.OnPlacement(func(*core.Manager, *jobs.Job) (cluster.Strategy, bool) {
		return cluster.PlaceFirstFit, true
	})
	// System cap below the fleet's max draw so the capping path stays hot.
	if err := m.Ctrl.SetSystemCap(0.85 * 350 * float64(c.Nodes)); err != nil {
		return nil, err
	}
	if !c.NoFaults {
		fault.New(m, fault.Profile{
			NodeMTBF: 365 * simulator.Day,
			NodeMTTR: 2 * simulator.Hour,
		}, c.Seed^0xfa17).Start()
	}
	return m, nil
}

// pumpBatch bounds how many arrival events are in flight: the pump submits
// a batch, then reschedules itself at the last batch arrival, so memory
// holds ~one batch of pending arrivals instead of a million.
const pumpBatch = 1024

// Pump streams c.Jobs arena-backed jobs into m in arrival order. It must
// be called before the run starts.
func Pump(m *core.Manager, c Config) *jobs.Arena {
	gen := workload.NewGenerator(SpecFor(c), c.Seed^0x5eed)
	arena := jobs.NewArena(jobs.DefaultArenaChunk)
	gen.UseArena(arena)
	count := 0
	var feed func(now simulator.Time)
	feed = func(simulator.Time) {
		if m.Prof != nil {
			m.Prof.Enter(prof.Pump)
			defer m.Prof.Exit()
		}
		var last simulator.Time
		for b := 0; b < pumpBatch && count < c.Jobs; b++ {
			j := gen.Next()
			if err := m.Submit(j, j.Submit); err != nil {
				panic(fmt.Sprintf("scale: pump submit: %v", err))
			}
			last = j.Submit
			count++
		}
		if count < c.Jobs {
			// Same-timestamp ordering: this pump event was scheduled after
			// the batch's last arrival, so it fires after that arrival and
			// the next batch's submits never go into the past.
			if _, err := m.Eng.At(last, "job-pump", feed); err != nil {
				panic(fmt.Sprintf("scale: pump reschedule: %v", err))
			}
		}
	}
	feed(0)
	return arena
}

// Run executes one curve point end to end and measures it.
func Run(c Config) (Result, error) {
	if c.TargetUtil <= 0 {
		c.TargetUtil = 0.85
	}
	m, err := Build(c)
	if err != nil {
		return Result{}, err
	}
	// Every curve point carries its phase profile: the breakdown is the
	// harness's whole point ("profile first"), and the enabled cost is a
	// clock read per phase transition — noise against a 62 s run.
	m.AttachProfiler(prof.New())
	arena := Pump(m, c)
	start := time.Now()
	end := m.Run(-1)
	wall := time.Since(start).Seconds()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	res := Result{
		Nodes:     c.Nodes,
		Jobs:      arena.Len(),
		Submitted: m.Metrics.Submitted,
		Completed: m.Metrics.Completed,
		Killed:    m.Metrics.Killed,
		Requeues:  m.Metrics.Requeues,
		Ckpts:     m.Metrics.CheckpointsWritten,
		UtilPct:   100 * m.Metrics.Utilization(m.Cl.Size()),
		SimDays:   float64(end) / float64(simulator.Day),
		Events:    m.Eng.Fired(),
		WallSec:   wall,
		HeapMB:    float64(ms.HeapAlloc) / (1 << 20),
		PeakRSSMB: PeakRSSMB(),
		Phases:    m.Prof.Snapshot(),
	}
	if wall > 0 {
		res.PhaseCovPct = 100 * m.Prof.TotalSeconds() / wall
	}
	return res, nil
}

// PeakRSSMB reads the process's high-water resident set from
// /proc/self/status (VmHWM). Returns 0 on platforms without procfs.
func PeakRSSMB() float64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) >= 2 {
			kb, err := strconv.ParseFloat(f[1], 64)
			if err == nil {
				return kb / 1024
			}
		}
	}
	return 0
}
