package report

import (
	"fmt"
	"strings"
)

// LineChart renders a single series as an ASCII chart with a labelled Y
// axis — enough to eyeball a power profile in a terminal, which is how the
// examples and epasim show what a policy did to the site's draw.
type LineChart struct {
	Title  string
	YLabel string
	// Xs and Ys are the series; Xs must be non-decreasing.
	Xs []float64
	Ys []float64
	// Width/Height of the plot area in characters (defaults 72x14).
	Width, Height int
	// YMin/YMax fix the Y range; both zero = auto-scale with padding.
	YMin, YMax float64
}

// Render draws the chart.
func (c LineChart) Render() string {
	w, h := c.Width, c.Height
	if w <= 10 {
		w = 72
	}
	if h <= 3 {
		h = 14
	}
	if len(c.Xs) != len(c.Ys) {
		return "chart: X/Y length mismatch\n"
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	if len(c.Xs) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	yMin, yMax := c.YMin, c.YMax
	if yMin == 0 && yMax == 0 {
		yMin, yMax = c.Ys[0], c.Ys[0]
		for _, y := range c.Ys {
			if y < yMin {
				yMin = y
			}
			if y > yMax {
				yMax = y
			}
		}
		pad := (yMax - yMin) * 0.05
		if pad == 0 {
			pad = 1
		}
		yMin -= pad
		yMax += pad
	}
	if yMax <= yMin {
		yMax = yMin + 1
	}
	xMin, xMax := c.Xs[0], c.Xs[len(c.Xs)-1]
	if xMax <= xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	// Bucket samples by column; draw the column mean, connecting with '*'.
	colSum := make([]float64, w)
	colN := make([]int, w)
	for i := range c.Xs {
		col := int((c.Xs[i] - xMin) / (xMax - xMin) * float64(w-1))
		if col < 0 {
			col = 0
		}
		if col >= w {
			col = w - 1
		}
		colSum[col] += c.Ys[i]
		colN[col]++
	}
	for col := 0; col < w; col++ {
		if colN[col] == 0 {
			continue
		}
		y := colSum[col] / float64(colN[col])
		row := int((yMax - y) / (yMax - yMin) * float64(h-1))
		if row < 0 {
			row = 0
		}
		if row >= h {
			row = h - 1
		}
		grid[row][col] = '*'
	}

	axisW := 10
	for r := 0; r < h; r++ {
		yVal := yMax - (yMax-yMin)*float64(r)/float64(h-1)
		label := ""
		if r == 0 || r == h-1 || r == h/2 {
			label = fmt.Sprintf("%9.1f", yVal)
		}
		fmt.Fprintf(&b, "%*s |%s\n", axisW-1, label, string(grid[r]))
	}
	b.WriteString(strings.Repeat(" ", axisW))
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", w))
	b.WriteByte('\n')
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%*s   (y: %s; x: %.0f .. %.0f)\n", axisW, "", c.YLabel, xMin, xMax)
	}
	return b.String()
}
