package report

import (
	"fmt"
	"sort"
	"strings"
)

// MapPoint is one site on the world map.
type MapPoint struct {
	Label string
	Lat   float64 // degrees, +north
	Lon   float64 // degrees, +east
}

// coarse coastline hints: a handful of (lat, lon) cells marked '.' to give
// the schematic map continental context without embedding real geo data.
// One entry per ~15-degree cell that is mostly land.
var landCells = [][2]float64{
	// North America
	{60, -150}, {60, -120}, {60, -100}, {60, -80}, {45, -120}, {45, -100},
	{45, -80}, {30, -110}, {30, -95}, {30, -85}, {15, -90},
	// South America
	{0, -70}, {0, -55}, {-15, -70}, {-15, -55}, {-30, -65}, {-45, -70},
	// Europe
	{60, 10}, {60, 30}, {45, 0}, {45, 15}, {45, 30}, {38, -5}, {38, 15}, {38, 25},
	// Africa
	{30, 0}, {30, 20}, {15, 0}, {15, 20}, {15, 35}, {0, 15}, {0, 30},
	{-15, 15}, {-15, 30}, {-30, 20},
	// Asia
	{60, 60}, {60, 90}, {60, 120}, {60, 150}, {45, 45}, {45, 60}, {45, 90},
	{45, 120}, {30, 45}, {30, 60}, {30, 80}, {30, 100}, {30, 115}, {22, 78},
	{15, 100}, {35, 135},
	// Australia
	{-25, 125}, {-25, 140}, {-35, 145},
}

// WorldMap renders a schematic equirectangular world map (Figure 2 of the
// paper) with the given points plotted as 1-9/a-z markers and a legend.
func WorldMap(points []MapPoint, width, height int) string {
	if width < 40 {
		width = 76
	}
	if height < 12 {
		height = 22
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	proj := func(lat, lon float64) (x, y int) {
		x = int((lon + 180) / 360 * float64(width-1))
		y = int((90 - lat) / 180 * float64(height-1))
		if x < 0 {
			x = 0
		}
		if x >= width {
			x = width - 1
		}
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		return
	}
	// Land hints.
	for _, c := range landCells {
		x, y := proj(c[0], c[1])
		grid[y][x] = '.'
	}
	// Equator and meridian.
	_, eqY := proj(0, 0)
	for x := 0; x < width; x++ {
		if grid[eqY][x] == ' ' {
			grid[eqY][x] = '-'
		}
	}
	merX, _ := proj(0, 0)
	for y := 0; y < height; y++ {
		if grid[y][merX] == ' ' {
			grid[y][merX] = '|'
		}
	}

	sorted := append([]MapPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
	marker := func(i int) byte {
		if i < 9 {
			return byte('1' + i)
		}
		return byte('a' + i - 9)
	}
	var legend strings.Builder
	for i, p := range sorted {
		x, y := proj(p.Lat, p.Lon)
		// Nudge markers off occupied cells so close sites stay distinct.
		for grid[y][x] >= '1' && grid[y][x] <= '9' && x+1 < width {
			x++
		}
		grid[y][x] = marker(i)
		fmt.Fprintf(&legend, "  %c  %s (%.0f,%.0f)\n", marker(i), p.Label, p.Lat, p.Lon)
	}

	var b strings.Builder
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	b.WriteString(legend.String())
	return b.String()
}
