package report

import (
	"fmt"
	"strings"
)

// Components describes a constructed EPA JSRM stack for the Figure-1
// diagram: which scheduler is loaded, which policies are attached, and
// which planes exist.
type Components struct {
	SystemName  string
	Scheduler   string
	Policies    []string
	Nodes       int
	HasFacility bool
	HasESP      bool
	Telemetry   string // e.g. "30s sampling"
}

// ComponentDiagram renders the interactions among the components of an EPA
// JSRM solution — the paper's Figure 1 — from a live configuration rather
// than as fixed art, so the diagram always reflects what is actually
// wired together.
func ComponentDiagram(c Components) string {
	var b strings.Builder
	line := func(s string, args ...any) { fmt.Fprintf(&b, s+"\n", args...) }

	title := fmt.Sprintf("EPA JSRM component interactions — %s", c.SystemName)
	line("%s", title)
	line("%s", strings.Repeat("=", len(title)))
	line("")
	line("  users/batch jobs")
	line("        |  submit")
	line("        v")
	line("  +-----------------+   candidates    +------------------+")
	line("  | JOB SCHEDULER   |<--------------->| RESOURCE MANAGER |")
	line("  |  algo: %-9s|   placements    |  %5d nodes      |", c.Scheduler, c.Nodes)
	line("  +-----------------+                 +------------------+")
	line("        ^                                    |      ^")
	line("        | admission/gates/shapes             |      | node state,")
	line("        | frequency selection                v      | boot/shutdown")
	line("  +------------------------------------------------------+")
	line("  | EPA POLICIES (energy/power monitoring + control)     |")
	for _, p := range c.Policies {
		line("  |   * %-49s|", p)
	}
	if len(c.Policies) == 0 {
		line("  |   (none attached — power-oblivious baseline)         |")
	}
	line("  +------------------------------------------------------+")
	line("        |  caps, DVFS, on/off            ^  telemetry (%s)", c.Telemetry)
	line("        v                                |")
	line("  +-----------------+                +------------------+")
	line("  | CONTROL PLANE   |                | MONITORING       |")
	line("  | (CAPMC/RAPL/    |--------------->| power, energy,   |")
	line("  |  P-states)      |  enforced on   | per-job meters   |")
	line("  +-----------------+  compute nodes +------------------+")
	if c.HasFacility {
		line("        |")
		line("        v")
		line("  +-----------------+")
		line("  | FACILITY        |  site budget, cooling capacity, PUE(T)")
		line("  +-----------------+")
	}
	if c.HasESP {
		line("        |")
		line("        v")
		line("  +-----------------+")
		line("  | ELECTRICITY     |  tariffs, demand response, on-site")
		line("  | SERVICE PROVIDER|  generation")
		line("  +-----------------+")
	}
	return b.String()
}
