// Package report renders the paper's exhibits as text: aligned,
// cell-wrapped tables (Tables I and II), an ASCII world map (Figure 2), a
// component diagram (Figure 1), and CSV export for downstream plotting.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple text table with word-wrapped cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// MaxWidth bounds each column's width in runes (0 = 36).
	MaxWidth int
}

// wrap splits s into lines at word boundaries with the given width,
// breaking over-long words hard.
func wrap(s string, width int) []string {
	if width <= 0 {
		width = 36
	}
	var lines []string
	for _, para := range strings.Split(s, "\n") {
		words := strings.Fields(para)
		if len(words) == 0 {
			lines = append(lines, "")
			continue
		}
		cur := ""
		for _, w := range words {
			for len([]rune(w)) > width {
				r := []rune(w)
				if cur != "" {
					lines = append(lines, cur)
					cur = ""
				}
				lines = append(lines, string(r[:width]))
				w = string(r[width:])
			}
			switch {
			case cur == "":
				cur = w
			case len([]rune(cur))+1+len([]rune(w)) <= width:
				cur += " " + w
			default:
				lines = append(lines, cur)
				cur = w
			}
		}
		if cur != "" {
			lines = append(lines, cur)
		}
	}
	return lines
}

// Render returns the table as a string.
func (t Table) Render() string {
	maxW := t.MaxWidth
	if maxW <= 0 {
		maxW = 36
	}
	nCols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > nCols {
			nCols = len(r)
		}
	}
	if nCols == 0 {
		return t.Title + "\n"
	}

	// Column width: longest wrapped line, capped.
	widths := make([]int, nCols)
	measure := func(row []string) {
		for c := 0; c < nCols; c++ {
			cell := ""
			if c < len(row) {
				cell = row[c]
			}
			for _, ln := range wrap(cell, maxW) {
				if n := len([]rune(ln)); n > widths[c] {
					widths[c] = n
				}
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	sep := func() {
		b.WriteByte('+')
		for _, w := range widths {
			b.WriteString(strings.Repeat("-", w+2))
			b.WriteByte('+')
		}
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		cells := make([][]string, nCols)
		height := 1
		for c := 0; c < nCols; c++ {
			cell := ""
			if c < len(row) {
				cell = row[c]
			}
			cells[c] = wrap(cell, maxW)
			if len(cells[c]) > height {
				height = len(cells[c])
			}
		}
		for ln := 0; ln < height; ln++ {
			b.WriteByte('|')
			for c := 0; c < nCols; c++ {
				txt := ""
				if ln < len(cells[c]) {
					txt = cells[c][ln]
				}
				fmt.Fprintf(&b, " %-*s |", widths[c], txt)
			}
			b.WriteByte('\n')
		}
	}
	sep()
	writeRow(t.Header)
	sep()
	for _, r := range t.Rows {
		writeRow(r)
		sep()
	}
	return b.String()
}

// CSV returns the table in RFC-4180-ish CSV (quotes around cells containing
// commas, quotes or newlines).
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
