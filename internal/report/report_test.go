package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRenderBasics(t *testing.T) {
	tb := Table{
		Title:  "T",
		Header: []string{"A", "B"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	out := tb.Render()
	if !strings.HasPrefix(out, "T\n") {
		t.Fatal("title missing")
	}
	for _, want := range []string{"| A", "| B", "| 1", "| 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Every line must be equally wide (aligned grid).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	w := len(lines[1])
	for _, ln := range lines[1:] {
		if len(ln) != w {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestTableWrapsLongCells(t *testing.T) {
	long := strings.Repeat("word ", 30)
	tb := Table{Header: []string{"H"}, Rows: [][]string{{long}}, MaxWidth: 20}
	out := tb.Render()
	for _, ln := range strings.Split(out, "\n") {
		if len(ln) > 26 { // 20 + borders/padding
			t.Fatalf("line too wide (%d): %q", len(ln), ln)
		}
	}
	// All words survive wrapping.
	if strings.Count(out, "word") != 30 {
		t.Fatalf("lost words: %d", strings.Count(out, "word"))
	}
}

func TestTableBreaksOverlongWords(t *testing.T) {
	tb := Table{Header: []string{"H"}, Rows: [][]string{{strings.Repeat("x", 100)}}, MaxWidth: 10}
	out := tb.Render()
	if !strings.Contains(out, strings.Repeat("x", 10)) {
		t.Fatal("hard break missing")
	}
	for _, ln := range strings.Split(out, "\n") {
		if len(ln) > 16 {
			t.Fatalf("line too wide: %q", ln)
		}
	}
}

func TestTableHandlesRaggedRows(t *testing.T) {
	tb := Table{Header: []string{"A"}, Rows: [][]string{{"1", "extra"}, {}}}
	out := tb.Render()
	if !strings.Contains(out, "extra") {
		t.Fatal("extra column dropped")
	}
}

func TestTableRenderNeverPanics(t *testing.T) {
	f := func(header []string, cells []string, width uint8) bool {
		rows := [][]string{cells}
		tb := Table{Header: header, Rows: rows, MaxWidth: int(width % 50)}
		_ = tb.Render()
		_ = tb.CSV()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := Table{
		Header: []string{"a,b", `say "hi"`},
		Rows:   [][]string{{"line\nbreak", "plain"}},
	}
	out := tb.CSV()
	if !strings.Contains(out, `"a,b"`) {
		t.Fatal("comma cell not quoted")
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatal("quote cell not escaped")
	}
	if !strings.Contains(out, "\"line\nbreak\"") {
		t.Fatal("newline cell not quoted")
	}
	if !strings.Contains(out, "plain") {
		t.Fatal("plain cell mangled")
	}
}

func TestWorldMapPlotsAllPoints(t *testing.T) {
	pts := []MapPoint{
		{Label: "Alpha", Lat: 48, Lon: 11},
		{Label: "Beta", Lat: -34, Lon: 151},
		{Label: "Gamma", Lat: 35, Lon: -106},
	}
	out := WorldMap(pts, 76, 22)
	for _, want := range []string{"1", "2", "3", "Alpha", "Beta", "Gamma"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// Marker 1 (Alpha, Europe) must be right of marker 3 (Gamma, US) on
	// some row ordering — check columns via projection: lon 11 > lon -106.
	lines := strings.Split(out, "\n")
	col := func(marker string) int {
		for _, ln := range lines {
			if i := strings.Index(ln, marker); i >= 0 {
				return i
			}
		}
		return -1
	}
	if col("1") <= col("3") {
		t.Fatalf("Europe (1) should plot east of the US (3): cols %d vs %d", col("1"), col("3"))
	}
}

func TestWorldMapClampsOutOfRange(t *testing.T) {
	out := WorldMap([]MapPoint{{Label: "X", Lat: 999, Lon: -999}}, 60, 15)
	if !strings.Contains(out, "X") {
		t.Fatal("out-of-range point lost")
	}
}

func TestWorldMapManyPointsDistinctMarkers(t *testing.T) {
	var pts []MapPoint
	for i := 0; i < 12; i++ {
		pts = append(pts, MapPoint{Label: string(rune('A' + i)), Lat: float64(i * 5), Lon: float64(i * 10)})
	}
	out := WorldMap(pts, 76, 22)
	// Markers 1-9 then a, b, c.
	for _, m := range []string{"1", "9", "a", "c"} {
		if !strings.Contains(out, m+"  ") && !strings.Contains(out, "  "+m) && !strings.Contains(out, m) {
			t.Fatalf("marker %q missing", m)
		}
	}
}

func TestComponentDiagram(t *testing.T) {
	d := ComponentDiagram(Components{
		SystemName:  "testsys",
		Scheduler:   "easy",
		Policies:    []string{"static-cap(270W,30%uncapped)", "energy-report"},
		Nodes:       64,
		HasFacility: true,
		HasESP:      true,
		Telemetry:   "30s",
	})
	for _, want := range []string{
		"JOB SCHEDULER", "RESOURCE MANAGER", "EPA POLICIES",
		"static-cap(270W,30%uncapped)", "energy-report",
		"CONTROL PLANE", "MONITORING", "FACILITY", "ELECTRICITY",
		"easy", "64",
	} {
		if !strings.Contains(d, want) {
			t.Fatalf("diagram missing %q:\n%s", want, d)
		}
	}
}

func TestComponentDiagramNoPolicies(t *testing.T) {
	d := ComponentDiagram(Components{SystemName: "bare", Scheduler: "fcfs", Nodes: 8})
	if !strings.Contains(d, "power-oblivious baseline") {
		t.Fatal("empty-policy note missing")
	}
	if strings.Contains(d, "FACILITY") {
		t.Fatal("facility box should be absent")
	}
}

func TestLineChartRendersSeries(t *testing.T) {
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i % 20)
	}
	out := LineChart{Title: "T", YLabel: "units", Xs: xs, Ys: ys}.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "*") {
		t.Fatalf("chart malformed:\n%s", out)
	}
	if !strings.Contains(out, "units") {
		t.Fatal("y label missing")
	}
	// Y-axis labels bound the data range (0..19 with 5% padding).
	if !strings.Contains(out, "19.9") && !strings.Contains(out, "20.0") {
		t.Fatalf("max label missing:\n%s", out)
	}
}

func TestLineChartEmptyAndMismatch(t *testing.T) {
	if out := (LineChart{}).Render(); !strings.Contains(out, "no data") {
		t.Fatal("empty chart should say so")
	}
	if out := (LineChart{Xs: []float64{1}, Ys: nil}).Render(); !strings.Contains(out, "mismatch") {
		t.Fatal("mismatch not reported")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	out := LineChart{Xs: []float64{0, 1, 2}, Ys: []float64{5, 5, 5}}.Render()
	if !strings.Contains(out, "*") {
		t.Fatal("constant series lost")
	}
}
