// Package journal is an append-only, crash-safe write-ahead log of run
// lifecycle records for the simulation service. It exists so that a
// process that accepted work can be SIGKILLed at any instant and the
// work is still there after restart: a record acknowledged to a client
// is on disk before the acknowledgement leaves the process.
//
// Durability model, in one paragraph: the journal is a single active
// segment file of CRC-framed JSON records. Appends whose type is a
// *commit point* (an accepted spec, a terminal state) are fsynced
// before Append returns; intermediate records (started, watermark,
// deleted) may ride on the next commit's fsync — losing one re-does
// work on recovery but never loses acknowledged state. A crash can
// therefore leave at most a torn tail: a partially written final
// record. Recovery reads the segment up to the first frame whose
// length, checksum, or JSON fails, truncates the file there, and
// resumes appending — the torn tail is tolerated, never fatal.
//
// Size is bounded by rotation-as-compaction: when the active segment
// outgrows MaxBytes the owner hands Rotate a snapshot of its live
// state, re-encoded as ordinary records. The snapshot is written to
// wal-<gen+1>.log.tmp, fsynced, renamed into place (the rename is the
// commit point; the directory is fsynced after it), and only then are
// older segments deleted. Recovery always loads the newest complete
// segment, so a crash anywhere inside rotation leaves either the old
// generation or the new one, both valid.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Type names a lifecycle record. Accepted and Terminal are commit
// points (fsynced); the rest are allowed to be lost to a crash, which
// at worst repeats work on recovery.
type Type string

const (
	TypeAccepted  Type = "accepted"  // a run's spec was admitted; durable before the client's 202
	TypeStarted   Type = "started"   // the run won an execution slot
	TypeWatermark Type = "watermark" // virtual-time progress marker (informational)
	TypeTerminal  Type = "terminal"  // complete/failed/cancelled, with the report for complete
	TypeDeleted   Type = "deleted"   // the run left the table (reap or client DELETE)
)

// commit reports whether an append of this type must be fsynced before
// it is acknowledged.
func (t Type) commit() bool { return t == TypeAccepted || t == TypeTerminal }

// Record is one framed journal entry. The journal does not interpret
// Spec — it is the owner's serialized admission request, replayed
// verbatim on recovery so an interrupted run re-executes from exactly
// the bytes the client was acknowledged for.
type Record struct {
	Type   Type            `json:"t"`
	ID     string          `json:"id"`
	Seq    int64           `json:"seq,omitempty"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	VT     int64           `json:"vt,omitempty"` // virtual-time seconds (watermark / sim end)
	State  string          `json:"state,omitempty"`
	Reason string          `json:"reason,omitempty"`
	Report []byte          `json:"report,omitempty"` // base64 under encoding/json
	UnixMS int64           `json:"unix_ms,omitempty"`
	// Req is the edge request ID that caused this transition (the
	// submit behind an accepted record, the DELETE behind a deleted
	// one). Purely diagnostic — recovery folds state without it — but
	// it ties a journal line back to the access log and black box.
	Req string `json:"req,omitempty"`
}

// Framing: 4-byte little-endian payload length, 4-byte CRC-32C of the
// payload, payload bytes. maxFrame guards the reader against a torn
// length field decoding as garbage gigabytes.
const (
	frameHeader = 8
	maxFrame    = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tune a journal. The zero value is usable.
type Options struct {
	// MaxBytes is the rotation threshold for the active segment;
	// <= 0 means 4 MiB. Rotation itself is the owner's call (it owns
	// the snapshot); NeedsRotate reports when it is due.
	MaxBytes int64
	// NoSync skips every fsync. Test-only: it trades the durability
	// guarantee for speed.
	NoSync bool
	// OnFsync, when non-nil, observes the wall duration of every
	// fsync the journal issues on its commit path (Append commits,
	// Rotate, Sync, Close) — the service feeds a latency histogram
	// with it. Called with the journal's lock held: the observer must
	// be fast and must never call back into the journal.
	OnFsync func(d time.Duration)
}

// Stats is a point-in-time census of journal activity.
type Stats struct {
	Appends   int64
	Syncs     int64
	Rotations int64
	Gen       uint64
	Size      int64
	Replayed  int  // records recovered by Open
	TornTail  bool // Open truncated a partially written final record
}

// Journal is a single-writer write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu    sync.Mutex
	f     *os.File
	gen   uint64
	size  int64
	stats Stats
}

// Open creates dir if needed, recovers the newest complete segment
// (tolerating a torn tail, which is truncated in place), deletes stale
// older segments and leftover rotation temporaries, and returns the
// journal positioned for appending plus the recovered records in
// append order.
func Open(dir string, opts Options) (*Journal, []Record, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	gens, tmps, err := scan(dir)
	if err != nil {
		return nil, nil, err
	}
	// Leftover .tmp files are aborted rotations: the rename never
	// happened, so they were never the truth.
	for _, tmp := range tmps {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
	}
	j := &Journal{dir: dir, opts: opts, gen: 1}
	var recs []Record
	if len(gens) > 0 {
		j.gen = gens[len(gens)-1]
		var torn bool
		var valid int64
		recs, valid, torn, err = readSegment(j.path(j.gen))
		if err != nil {
			return nil, nil, err
		}
		j.stats.TornTail = torn
		j.stats.Replayed = len(recs)
		if torn {
			if err := os.Truncate(j.path(j.gen), valid); err != nil {
				return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
			}
		}
		// Older generations are superseded by the newest complete one.
		for _, g := range gens[:len(gens)-1] {
			os.Remove(j.path(g)) //nolint:errcheck // best-effort cleanup
		}
	}
	f, err := os.OpenFile(j.path(j.gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f, j.size = f, st.Size()
	j.stats.Gen, j.stats.Size = j.gen, j.size
	return j, recs, nil
}

// ReadDir recovers the records of the newest complete segment without
// opening the journal for writing (and without truncating a torn
// tail). It is the offline inspection path: tests and tools use it to
// audit a journal another process owns or owned.
func ReadDir(dir string) ([]Record, bool, error) {
	gens, _, err := scan(dir)
	if err != nil {
		return nil, false, err
	}
	if len(gens) == 0 {
		return nil, false, nil
	}
	recs, _, torn, err := readSegment(filepath.Join(dir, segName(gens[len(gens)-1])))
	return recs, torn, err
}

func (j *Journal) path(gen uint64) string { return filepath.Join(j.dir, segName(gen)) }

func segName(gen uint64) string { return fmt.Sprintf("wal-%06d.log", gen) }

// scan lists segment generations (ascending) and leftover .tmp paths.
func scan(dir string) (gens []uint64, tmps []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			tmps = append(tmps, filepath.Join(dir, name))
			continue
		}
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, k int) bool { return gens[i] < gens[k] })
	return gens, tmps, nil
}

// readSegment decodes records until EOF or the first bad frame. A bad
// frame — short header, absurd length, short payload, CRC mismatch, or
// JSON that does not parse — marks the torn tail: everything before it
// is returned, valid is the offset it starts at, and torn is true.
func readSegment(path string) (recs []Record, valid int64, torn bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("journal: %w", err)
	}
	off := int64(0)
	for int64(len(b))-off >= frameHeader {
		n := int64(binary.LittleEndian.Uint32(b[off:]))
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if n == 0 || n > maxFrame || off+frameHeader+n > int64(len(b)) {
			return recs, off, true, nil
		}
		payload := b[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, off, true, nil
		}
		var rec Record
		if json.Unmarshal(payload, &rec) != nil {
			return recs, off, true, nil
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
	return recs, off, off != int64(len(b)), nil
}

// frame encodes one record as length+CRC+payload.
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal: %w", err)
	}
	if len(payload) > maxFrame {
		return nil, fmt.Errorf("journal: record %s/%s exceeds %d bytes", rec.Type, rec.ID, maxFrame)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeader:], payload)
	return buf, nil
}

// Append frames and writes one record. Commit-point records (accepted,
// terminal) are fsynced before Append returns; the rest are durable no
// later than the next commit's fsync.
func (j *Journal) Append(rec Record) error {
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(buf))
	j.stats.Appends++
	if rec.Type.commit() && !j.opts.NoSync {
		if err := j.fsyncTimed(j.f); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.stats.Syncs++
	}
	return nil
}

// fsyncTimed syncs f, timing the call for the OnFsync observer. The
// journal's lock is held at every call site, which is what serializes
// observer invocations.
func (j *Journal) fsyncTimed(f *os.File) error {
	if j.opts.OnFsync == nil {
		return f.Sync()
	}
	t0 := time.Now()
	err := f.Sync()
	j.opts.OnFsync(time.Since(t0))
	return err
}

// NeedsRotate reports whether the active segment has outgrown MaxBytes
// and the owner should call Rotate with a snapshot of its live state.
func (j *Journal) NeedsRotate() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size >= j.opts.MaxBytes
}

// Rotate compacts the journal: the snapshot — the owner's live state
// re-encoded as ordinary records — becomes the sole content of a new
// segment, and older segments are deleted once it is durably in place.
// On any error the old segment remains the active truth.
func (j *Journal) Rotate(snapshot []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	gen := j.gen + 1
	tmp := j.path(gen) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	var size int64
	for _, rec := range snapshot {
		buf, err := frame(rec)
		if err == nil {
			_, err = f.Write(buf)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp) //nolint:errcheck // best-effort cleanup
			return err
		}
		size += int64(len(buf))
	}
	if !j.opts.NoSync {
		if err := j.fsyncTimed(f); err != nil {
			f.Close()
			os.Remove(tmp) //nolint:errcheck // best-effort cleanup
			return fmt.Errorf("journal: rotate fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("journal: rotate close: %w", err)
	}
	// The rename is the commit point of the rotation.
	if err := os.Rename(tmp, j.path(gen)); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("journal: rotate rename: %w", err)
	}
	if !j.opts.NoSync {
		syncDir(j.dir)
	}
	old, oldGen := j.f, j.gen
	nf, err := os.OpenFile(j.path(gen), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The new segment is already the durable truth; losing the
		// append handle is unrecoverable for this process.
		return fmt.Errorf("journal: rotate reopen: %w", err)
	}
	j.f, j.gen, j.size = nf, gen, size
	j.stats.Rotations++
	j.stats.Gen = gen
	old.Close()               //nolint:errcheck // superseded segment
	os.Remove(j.path(oldGen)) //nolint:errcheck // best-effort; stale segments are also reaped at next Open
	return nil
}

func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // directory fsync is advisory on some filesystems
	d.Close()
}

// Stats returns the journal census (size, generation, append/sync/
// rotation counters, recovery flags).
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.Size = j.size
	return st
}

// Sync forces an fsync of the active segment.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil || j.opts.NoSync {
		return nil
	}
	if err := j.fsyncTimed(j.f); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.stats.Syncs++
	return nil
}

// Close fsyncs and closes the active segment. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	var err error
	if !j.opts.NoSync {
		err = j.fsyncTimed(j.f)
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
