package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func rec(t Type, id string, seq int64) Record {
	return Record{Type: t, ID: id, Seq: seq, Spec: json.RawMessage(`{"site":"cineca"}`)}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j, recs
}

// TestAppendReplayRoundTrip: every field of every record survives a
// close/reopen cycle in append order.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Type: TypeAccepted, ID: "r1", Seq: 1, Spec: json.RawMessage(`{"tenant":"a","jobs":5}`), UnixMS: 1234},
		{Type: TypeStarted, ID: "r1", UnixMS: 1240},
		{Type: TypeWatermark, ID: "r1", VT: 3600},
		{Type: TypeTerminal, ID: "r1", State: "complete", VT: 86400, Report: []byte("the report\nbytes\n")},
		{Type: TypeDeleted, ID: "r1"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append(%s): %v", r.Type, err)
		}
	}
	st := j.Stats()
	if st.Appends != int64(len(want)) || st.Syncs < 2 {
		t.Fatalf("stats after appends = %+v, want %d appends and >= 2 commit syncs", st, len(want))
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Type != w.Type || g.ID != w.ID || g.Seq != w.Seq || g.VT != w.VT ||
			g.State != w.State || g.UnixMS != w.UnixMS ||
			!bytes.Equal(g.Report, w.Report) || string(g.Spec) != string(w.Spec) {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
	}
	if st := j2.Stats(); st.TornTail || st.Replayed != len(want) {
		t.Fatalf("clean reopen stats = %+v", st)
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial frame; the
// next Open returns the valid prefix, truncates the tail, and appends
// land after the last good record.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 5, 9} { // inside header, inside header+, inside payload
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			j, _ := mustOpen(t, dir, Options{})
			if err := j.Append(rec(TypeAccepted, "r1", 1)); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(rec(TypeAccepted, "r2", 2)); err != nil {
				t.Fatal(err)
			}
			j.Close()

			path := filepath.Join(dir, "wal-000001.log")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			full, err := frame(rec(TypeStarted, "r2", 0))
			if err != nil {
				t.Fatal(err)
			}
			// Simulate the crash: only the first `cut` bytes of the third
			// record reached disk.
			if err := os.WriteFile(path, append(b, full[:cut]...), 0o644); err != nil {
				t.Fatal(err)
			}

			j2, recs := mustOpen(t, dir, Options{})
			if len(recs) != 2 || recs[1].ID != "r2" {
				t.Fatalf("torn-tail replay = %d records %+v, want the 2 complete ones", len(recs), recs)
			}
			if st := j2.Stats(); !st.TornTail {
				t.Fatalf("stats = %+v, want TornTail", st)
			}
			if err := j2.Append(rec(TypeTerminal, "r2", 0)); err != nil {
				t.Fatal(err)
			}
			j2.Close()

			j3, recs := mustOpen(t, dir, Options{})
			defer j3.Close()
			if len(recs) != 3 || recs[2].Type != TypeTerminal {
				t.Fatalf("post-truncate replay = %+v, want 3 records ending in terminal", recs)
			}
			if st := j3.Stats(); st.TornTail {
				t.Fatal("second recovery still sees a torn tail — truncate did not persist")
			}
		})
	}
}

// TestCorruptFrameStopsReplay: a CRC mismatch (bit rot, not just a torn
// tail) ends the replay at the last good record rather than decoding
// garbage.
func TestCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		if err := j.Append(rec(TypeAccepted, fmt.Sprintf("r%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, "wal-000001.log")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record.
	n1 := int64(binary.LittleEndian.Uint32(b))
	second := frameHeader + n1 + frameHeader
	b[second] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "r1" || !torn {
		t.Fatalf("corrupt replay = %d records torn=%v, want 1 record with torn tail", len(recs), torn)
	}
}

// TestAbsurdLengthGuard: a frame whose length field decodes huge is
// treated as a torn tail, not a giant allocation.
func TestAbsurdLengthGuard(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	if err := j.Append(rec(TypeAccepted, "r1", 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, "wal-000001.log")
	bad := make([]byte, frameHeader)
	binary.LittleEndian.PutUint32(bad, uint32(maxFrame+1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(bad) //nolint:errcheck
	f.Close()

	j2, recs := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(recs) != 1 || !j2.Stats().TornTail {
		t.Fatalf("absurd-length replay = %d records, stats %+v", len(recs), j2.Stats())
	}
}

// TestRotationCompacts: Rotate writes the snapshot as the new
// generation, deletes the old, and recovery reads only the snapshot.
func TestRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{MaxBytes: 1})
	for i := 1; i <= 10; i++ {
		if err := j.Append(rec(TypeAccepted, fmt.Sprintf("r%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if !j.NeedsRotate() {
		t.Fatal("NeedsRotate = false past MaxBytes")
	}
	snap := []Record{rec(TypeAccepted, "r9", 9), rec(TypeAccepted, "r10", 10)}
	if err := j.Rotate(snap); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := j.Append(rec(TypeStarted, "r10", 0)); err != nil {
		t.Fatalf("append after rotate: %v", err)
	}
	if st := j.Stats(); st.Rotations != 1 || st.Gen != 2 {
		t.Fatalf("post-rotate stats = %+v", st)
	}
	j.Close()

	if _, err := os.Stat(filepath.Join(dir, "wal-000001.log")); !os.IsNotExist(err) {
		t.Fatalf("old segment survived rotation: %v", err)
	}
	j2, recs := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(recs) != 3 || recs[0].ID != "r9" || recs[2].Type != TypeStarted {
		t.Fatalf("rotated replay = %+v, want snapshot + post-rotate append", recs)
	}
	if j2.Stats().Gen != 2 {
		t.Fatalf("recovered generation = %d, want 2", j2.Stats().Gen)
	}
}

// TestRotationCrashWindows: a crash before the rename leaves the old
// generation authoritative (tmp ignored and cleaned); a crash after the
// rename but before the old segment is deleted leaves the new one
// authoritative.
func TestRotationCrashWindows(t *testing.T) {
	// Before the rename: wal-2.log.tmp exists, wal-1.log is the truth.
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	if err := j.Append(rec(TypeAccepted, "old", 1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	tmp := filepath.Join(dir, "wal-000002.log.tmp")
	buf, _ := frame(rec(TypeAccepted, "half-rotated", 2))
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := mustOpen(t, dir, Options{})
	if len(recs) != 1 || recs[0].ID != "old" {
		t.Fatalf("pre-rename crash replay = %+v, want the old generation", recs)
	}
	j2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("aborted rotation tmp survived Open")
	}

	// After the rename: both generations exist, the newest wins and the
	// stale one is reaped.
	dir2 := t.TempDir()
	w1, _ := frame(rec(TypeAccepted, "stale", 1))
	w2, _ := frame(rec(TypeAccepted, "fresh", 2))
	if err := os.WriteFile(filepath.Join(dir2, "wal-000001.log"), w1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, "wal-000002.log"), w2, 0o644); err != nil {
		t.Fatal(err)
	}
	j3, recs := mustOpen(t, dir2, Options{})
	defer j3.Close()
	if len(recs) != 1 || recs[0].ID != "fresh" {
		t.Fatalf("post-rename crash replay = %+v, want the new generation", recs)
	}
	if _, err := os.Stat(filepath.Join(dir2, "wal-000001.log")); !os.IsNotExist(err) {
		t.Fatal("stale generation survived Open")
	}
}

// TestAppendAfterClose fails loudly instead of writing nowhere.
func TestAppendAfterClose(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir(), Options{})
	j.Close()
	if err := j.Append(rec(TypeAccepted, "r1", 1)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// TestReadDirEmpty: an empty or absent directory is zero records, not
// an error.
func TestReadDirEmpty(t *testing.T) {
	recs, torn, err := ReadDir(filepath.Join(t.TempDir(), "nope"))
	if err != nil || torn || len(recs) != 0 {
		t.Fatalf("ReadDir(absent) = %v %v %v", recs, torn, err)
	}
}
