// Package jobs defines the batch-job model the scheduler and the EPA
// policies operate on: rigid and moldable jobs, power characteristics,
// lifecycle states, and queues. It follows the survey's vocabulary —
// users submit jobs into queues (Q3), jobs carry walltime estimates, and
// power-aware solutions attach per-application knowledge (tags,
// characterization data, historical power) to jobs.
package jobs

import (
	"fmt"

	"epajsrm/internal/simulator"
)

// State is the lifecycle state of a job.
type State int

const (
	// StateQueued means the job waits in a batch queue.
	StateQueued State = iota
	// StateRunning means the job holds nodes and is executing.
	StateRunning
	// StateCompleted means the job finished normally.
	StateCompleted
	// StateKilled means the job was terminated by the system (e.g. RIKEN's
	// automated emergency kill when the site power limit is exceeded, or a
	// walltime overrun).
	StateKilled
	// StateCancelled means the job was rejected or withdrawn before start.
	StateCancelled
)

var stateNames = [...]string{"queued", "running", "completed", "killed", "cancelled"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// MoldConfig is one admissible shape of a moldable job: run on Nodes nodes
// for about Runtime. The power-capping literature the survey cites (Sarood,
// Patki, Bailey) exploits these alternatives to fit jobs under a budget.
type MoldConfig struct {
	Nodes   int
	Runtime simulator.Time
}

// Job is one batch job.
type Job struct {
	ID      int64
	User    string
	Project string
	// Tag identifies the application for characterization and history-based
	// power prediction (LRZ characterizes each new app on first run; Auweter
	// et al. and Borghesi et al. key on exactly such tags).
	Tag string

	// Request.
	Nodes    int            // requested node count (rigid shape)
	Walltime simulator.Time // user's runtime estimate (upper bound)
	Queue    string
	Priority int // larger = more important

	// Ground truth, hidden from the scheduler until events reveal it.
	TrueRuntime   simulator.Time // runtime at nominal frequency
	PowerPerNodeW float64        // node draw at nominal frequency while running
	MemFrac       float64        // fraction of time not scaled by frequency
	// CommFrac is how communication-sensitive the job is: the fraction of
	// runtime spent in inter-node communication, which stretches when the
	// placement spans more of the topology (survey Q6's topology-aware
	// task allocation exists to shrink exactly this).
	CommFrac float64

	// Moldable alternatives; empty for rigid jobs. Each config's runtime is
	// the job's true runtime at that width.
	Mold []MoldConfig

	// Lifecycle bookkeeping, written by the manager.
	State    State
	Submit   simulator.Time
	Start    simulator.Time
	End      simulator.Time
	FreqFrac float64 // frequency assigned at start (1 = nominal)
	EnergyJ  float64 // metered energy, filled at end (post-job reports)
	// AvgPowerW and PeakPowerW are the job-level power account filled at
	// end alongside EnergyJ: mean aggregate draw over the job's RunSeconds
	// and the highest instantaneous aggregate draw across its nodes —
	// whole-node attribution, accumulated over every run stint, the figures
	// a job-level power archive (Tokyo Tech, STFC, CINECA) records per job.
	AvgPowerW  float64
	PeakPowerW float64
	// RunSeconds totals wallclock time this job held nodes across all run
	// stints (a requeued job's earlier stints count; queue time does not).
	RunSeconds float64
	// LostWorkSeconds is this job's share of discarded progress in
	// node-seconds — crashes, rollbacks, and uncheckpointed preemptions —
	// mirroring the system-wide Metrics.LostWorkSeconds attribution.
	LostWorkSeconds float64
	KillReason      string
	// Requeues counts how many times the job was returned to the queue
	// after losing a node to a failure; core.Manager.MaxRequeues bounds it.
	Requeues int

	// WorkDone tracks progress in nominal-frequency seconds, so that
	// mid-flight frequency changes (dynamic caps, power sharing) re-time the
	// job correctly.
	WorkDone float64
	// LastProgress is when WorkDone was last brought up to date.
	LastProgress simulator.Time

	// CheckpointWork is the WorkDone captured by the last durable (fully
	// written) checkpoint image; a crash rolls WorkDone back to this value
	// instead of zero when the checkpoint substrate is enabled. A
	// half-written image never updates it.
	CheckpointWork float64
	// Checkpoints counts durable checkpoint images this job completed.
	Checkpoints int
}

// Validate checks the request for internal consistency.
func (j *Job) Validate() error {
	if j.Nodes <= 0 {
		return fmt.Errorf("job %d: non-positive node count %d", j.ID, j.Nodes)
	}
	if j.Walltime <= 0 {
		return fmt.Errorf("job %d: non-positive walltime", j.ID)
	}
	if j.TrueRuntime <= 0 {
		return fmt.Errorf("job %d: non-positive true runtime", j.ID)
	}
	if j.PowerPerNodeW < 0 {
		return fmt.Errorf("job %d: negative power", j.ID)
	}
	if j.MemFrac < 0 || j.MemFrac > 1 {
		return fmt.Errorf("job %d: MemFrac %.2f out of [0,1]", j.ID, j.MemFrac)
	}
	if j.CommFrac < 0 || j.CommFrac > 1 {
		return fmt.Errorf("job %d: CommFrac %.2f out of [0,1]", j.ID, j.CommFrac)
	}
	for i, m := range j.Mold {
		if m.Nodes <= 0 || m.Runtime <= 0 {
			return fmt.Errorf("job %d: invalid mold config %d", j.ID, i)
		}
	}
	return nil
}

// WaitTime returns how long the job waited in the queue (0 if never
// started).
func (j *Job) WaitTime() simulator.Time {
	if j.State == StateQueued || j.State == StateCancelled {
		return 0
	}
	return j.Start - j.Submit
}

// BoundedSlowdown returns the standard scheduling metric
// max(1, (wait + run) / max(run, bound)) with a 10-minute bound.
func (j *Job) BoundedSlowdown() float64 {
	if j.State != StateCompleted && j.State != StateKilled {
		return 1
	}
	run := j.End - j.Start
	bound := 10 * simulator.Minute
	denom := run
	if denom < bound {
		denom = bound
	}
	s := float64(j.WaitTime()+run) / float64(denom)
	if s < 1 {
		return 1
	}
	return s
}

// NodeSeconds returns requested nodes times true runtime — the job's
// nominal resource footprint.
func (j *Job) NodeSeconds() float64 {
	return float64(j.Nodes) * float64(j.TrueRuntime)
}

// BestMoldUnder returns the widest mold configuration whose node count is
// at most maxNodes, or (zero, false) when none fits. Rigid jobs expose
// their single shape.
func (j *Job) BestMoldUnder(maxNodes int) (MoldConfig, bool) {
	best := MoldConfig{}
	found := false
	consider := j.Mold
	if len(consider) == 0 {
		consider = []MoldConfig{{Nodes: j.Nodes, Runtime: j.TrueRuntime}}
	}
	for _, m := range consider {
		if m.Nodes > maxNodes {
			continue
		}
		if !found || m.Nodes > best.Nodes {
			best = m
			found = true
		}
	}
	return best, found
}
