package jobs

import (
	"reflect"
	"testing"
)

func TestArenaAllocatesStableZeroedSlots(t *testing.T) {
	a := NewArena(4)
	var ptrs []*Job
	for i := 0; i < 11; i++ {
		j := a.New()
		if !reflect.DeepEqual(*j, Job{}) {
			t.Fatalf("slot %d not zeroed: %+v", i, *j)
		}
		j.ID = int64(i + 1)
		ptrs = append(ptrs, j)
	}
	if a.Len() != 11 {
		t.Fatalf("Len=%d, want 11", a.Len())
	}
	// Later allocations must not move earlier jobs.
	for i, j := range ptrs {
		if j.ID != int64(i+1) {
			t.Fatalf("job %d clobbered: ID=%d", i, j.ID)
		}
	}
	// Distinct slots.
	seen := map[*Job]bool{}
	for _, j := range ptrs {
		if seen[j] {
			t.Fatal("arena handed out the same slot twice")
		}
		seen[j] = true
	}
}

func TestArenaDefaultChunk(t *testing.T) {
	a := NewArena(0)
	a.New()
	if a.size != DefaultArenaChunk {
		t.Fatalf("size=%d, want %d", a.size, DefaultArenaChunk)
	}
}
