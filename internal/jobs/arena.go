package jobs

// Arena is a chunked slab allocator for Job records. A million-job run
// allocates a million ~250-byte structs; boxed individually they are a
// million GC-tracked objects the collector re-walks every cycle for the
// whole simulated week (retired jobs stay reachable for end-of-run
// metrics). Slab chunks turn that into a few thousand large, pointer-dense
// blocks: allocation is a bump pointer, locality follows submission order,
// and the GC scans block headers instead of chasing a heap's worth of
// individual jobs.
//
// Jobs allocated from an arena live as long as the arena; there is no
// per-job free. That matches the simulator's lifecycle exactly — jobs are
// never discarded mid-run — and is why this is an arena and not a pool.
type Arena struct {
	chunks [][]Job
	used   int // entries used in the last chunk
	size   int // entries per chunk
}

// DefaultArenaChunk is the default chunk size. 4096 jobs × ~250 B ≈ 1 MiB
// per chunk — large enough to amortize, small enough not to strand memory
// on small runs.
const DefaultArenaChunk = 4096

// NewArena returns an arena with the given chunk size (entries per chunk);
// chunk <= 0 selects DefaultArenaChunk.
func NewArena(chunk int) *Arena {
	if chunk <= 0 {
		chunk = DefaultArenaChunk
	}
	return &Arena{size: chunk}
}

// New returns a pointer to a zeroed Job slot. The pointer is stable for the
// arena's lifetime.
func (a *Arena) New() *Job {
	if len(a.chunks) == 0 || a.used == a.size {
		a.chunks = append(a.chunks, make([]Job, a.size))
		a.used = 0
	}
	j := &a.chunks[len(a.chunks)-1][a.used]
	a.used++
	return j
}

// Len reports how many jobs have been allocated.
func (a *Arena) Len() int {
	if len(a.chunks) == 0 {
		return 0
	}
	return (len(a.chunks)-1)*a.size + a.used
}
