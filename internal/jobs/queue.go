package jobs

import "sort"

// Queue is an ordered collection of waiting jobs. Ordering is
// priority-then-FIFO, matching how production batch queues break ties
// (survey §II-A: queues "may be designated as having higher or lower
// priorities").
type Queue struct {
	Name string
	jobs []*Job
}

// NewQueue returns an empty queue.
func NewQueue(name string) *Queue { return &Queue{Name: name} }

// Len returns the number of waiting jobs.
func (q *Queue) Len() int { return len(q.jobs) }

// Push appends a job and restores priority-FIFO order.
func (q *Queue) Push(j *Job) {
	q.jobs = append(q.jobs, j)
	// Stable sort by priority descending; submission order (and hence FIFO
	// within a priority level) is preserved by stability.
	sort.SliceStable(q.jobs, func(a, b int) bool {
		return q.jobs[a].Priority > q.jobs[b].Priority
	})
}

// Peek returns the head job without removing it, or nil when empty.
func (q *Queue) Peek() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// Remove deletes the job with the given ID, returning whether it was found.
func (q *Queue) Remove(id int64) bool {
	for i, j := range q.jobs {
		if j.ID == id {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return true
		}
	}
	return false
}

// Jobs returns the waiting jobs in order. The slice is a copy; the jobs are
// shared.
func (q *Queue) Jobs() []*Job {
	out := make([]*Job, len(q.jobs))
	copy(out, q.jobs)
	return out
}

// TotalNodeDemand sums the node requests of all waiting jobs.
func (q *Queue) TotalNodeDemand() int {
	t := 0
	for _, j := range q.jobs {
		t += j.Nodes
	}
	return t
}
