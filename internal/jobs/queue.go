package jobs

import "sort"

// Queue is an ordered collection of waiting jobs. Ordering is
// priority-then-FIFO, matching how production batch queues break ties
// (survey §II-A: queues "may be designated as having higher or lower
// priorities").
type Queue struct {
	Name string
	jobs []*Job
}

// NewQueue returns an empty queue.
func NewQueue(name string) *Queue { return &Queue{Name: name} }

// Len returns the number of waiting jobs.
func (q *Queue) Len() int { return len(q.jobs) }

// Push inserts a job at the end of its priority class, preserving
// priority-descending order with FIFO ties — the position a stable sort of
// the appended slice would produce, without re-sorting the whole queue.
func (q *Queue) Push(j *Job) {
	i := sort.Search(len(q.jobs), func(k int) bool { return q.jobs[k].Priority < j.Priority })
	q.jobs = append(q.jobs, nil)
	copy(q.jobs[i+1:], q.jobs[i:])
	q.jobs[i] = j
}

// Peek returns the head job without removing it, or nil when empty.
func (q *Queue) Peek() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// Remove deletes the job with the given ID, returning whether it was found.
func (q *Queue) Remove(id int64) bool {
	for i, j := range q.jobs {
		if j.ID == id {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return true
		}
	}
	return false
}

// Jobs returns the waiting jobs in order. The slice is a copy; the jobs are
// shared.
func (q *Queue) Jobs() []*Job {
	out := make([]*Job, len(q.jobs))
	copy(out, q.jobs)
	return out
}

// All returns the live internal slice, in order, for read-only scans on hot
// paths. Callers must not mutate it and must not hold it across Push/Remove.
func (q *Queue) All() []*Job { return q.jobs }

// TotalNodeDemand sums the node requests of all waiting jobs.
func (q *Queue) TotalNodeDemand() int {
	t := 0
	for _, j := range q.jobs {
		t += j.Nodes
	}
	return t
}
