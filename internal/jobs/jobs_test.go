package jobs

import (
	"testing"
	"testing/quick"

	"epajsrm/internal/simulator"
)

func validJob() *Job {
	return &Job{
		ID: 1, User: "u", Nodes: 4, Walltime: 7200,
		TrueRuntime: 3600, PowerPerNodeW: 300, MemFrac: 0.3,
	}
}

func TestValidateAcceptsGoodJob(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []func(*Job){
		func(j *Job) { j.Nodes = 0 },
		func(j *Job) { j.Walltime = 0 },
		func(j *Job) { j.TrueRuntime = -1 },
		func(j *Job) { j.PowerPerNodeW = -1 },
		func(j *Job) { j.MemFrac = 1.5 },
		func(j *Job) { j.Mold = []MoldConfig{{Nodes: 0, Runtime: 100}} },
	}
	for i, mutate := range cases {
		j := validJob()
		mutate(j)
		if err := j.Validate(); err == nil {
			t.Errorf("case %d: invalid job accepted", i)
		}
	}
}

func TestWaitTime(t *testing.T) {
	j := validJob()
	j.Submit, j.Start = 100, 400
	j.State = StateRunning
	if got := j.WaitTime(); got != 300 {
		t.Fatalf("wait = %d", got)
	}
	j.State = StateQueued
	if got := j.WaitTime(); got != 0 {
		t.Fatalf("queued wait = %d", got)
	}
}

func TestBoundedSlowdown(t *testing.T) {
	j := validJob()
	j.Submit, j.Start, j.End = 0, 3600, 7200
	j.State = StateCompleted
	// wait 3600 + run 3600 over run 3600 = 2.
	if got := j.BoundedSlowdown(); got != 2 {
		t.Fatalf("slowdown = %f", got)
	}
	// Short job: bound kicks in at 10 min.
	j.Start, j.End = 600, 660
	if got := j.BoundedSlowdown(); got != (600.0+60)/600 {
		t.Fatalf("bounded slowdown = %f", got)
	}
	// Never below 1.
	j.Submit, j.Start, j.End = 0, 0, 1
	if got := j.BoundedSlowdown(); got != 1 {
		t.Fatalf("slowdown floor = %f", got)
	}
}

func TestBestMoldUnder(t *testing.T) {
	j := validJob()
	j.Mold = []MoldConfig{
		{Nodes: 4, Runtime: 3600},
		{Nodes: 2, Runtime: 6480},
		{Nodes: 8, Runtime: 2000},
	}
	if cfg, ok := j.BestMoldUnder(16); !ok || cfg.Nodes != 8 {
		t.Fatalf("best under 16 = %+v ok=%v", cfg, ok)
	}
	if cfg, ok := j.BestMoldUnder(5); !ok || cfg.Nodes != 4 {
		t.Fatalf("best under 5 = %+v", cfg)
	}
	if _, ok := j.BestMoldUnder(1); ok {
		t.Fatal("nothing fits under 1")
	}
	// Rigid job exposes its single shape.
	r := validJob()
	if cfg, ok := r.BestMoldUnder(10); !ok || cfg.Nodes != 4 || cfg.Runtime != 3600 {
		t.Fatalf("rigid shape = %+v ok=%v", cfg, ok)
	}
}

func TestQueuePriorityFIFO(t *testing.T) {
	q := NewQueue("batch")
	mk := func(id int64, prio int) *Job {
		j := validJob()
		j.ID, j.Priority = id, prio
		return j
	}
	q.Push(mk(1, 0))
	q.Push(mk(2, 5))
	q.Push(mk(3, 0))
	q.Push(mk(4, 5))
	got := q.Jobs()
	wantOrder := []int64{2, 4, 1, 3} // priority desc, FIFO within level
	for i, j := range got {
		if j.ID != wantOrder[i] {
			t.Fatalf("order = %v at %d, want %v", j.ID, i, wantOrder)
		}
	}
}

func TestQueueRemove(t *testing.T) {
	q := NewQueue("batch")
	j := validJob()
	q.Push(j)
	if !q.Remove(j.ID) {
		t.Fatal("remove failed")
	}
	if q.Remove(j.ID) {
		t.Fatal("double remove succeeded")
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty")
	}
}

func TestQueuePeekAndDemand(t *testing.T) {
	q := NewQueue("batch")
	if q.Peek() != nil {
		t.Fatal("peek on empty queue")
	}
	a, b := validJob(), validJob()
	a.ID, b.ID = 1, 2
	b.Nodes = 6
	q.Push(a)
	q.Push(b)
	if q.Peek().ID != 1 {
		t.Fatal("peek should return head")
	}
	if q.TotalNodeDemand() != 10 {
		t.Fatalf("demand = %d", q.TotalNodeDemand())
	}
}

func TestQueueJobsReturnsCopy(t *testing.T) {
	q := NewQueue("batch")
	q.Push(validJob())
	js := q.Jobs()
	js[0] = nil
	if q.Peek() == nil {
		t.Fatal("mutating the returned slice must not affect the queue")
	}
}

func TestQueueOrderingProperty(t *testing.T) {
	f := func(prios []uint8) bool {
		q := NewQueue("p")
		for i, p := range prios {
			j := validJob()
			j.ID = int64(i + 1)
			j.Priority = int(p % 4)
			q.Push(j)
		}
		js := q.Jobs()
		for i := 1; i < len(js); i++ {
			if js[i].Priority > js[i-1].Priority {
				return false
			}
			if js[i].Priority == js[i-1].Priority && js[i].ID < js[i-1].ID {
				return false // FIFO violated within priority level
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeSeconds(t *testing.T) {
	j := validJob()
	if got := j.NodeSeconds(); got != 4*3600 {
		t.Fatalf("node-seconds = %f", got)
	}
}

func TestStateString(t *testing.T) {
	if StateQueued.String() != "queued" || StateKilled.String() != "killed" {
		t.Fatal("state names wrong")
	}
	if State(99).String() == "" {
		t.Fatal("unknown state should still render")
	}
	_ = simulator.Time(0) // keep import used if cases change
}
