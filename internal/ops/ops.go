// Package ops is the live operations plane: an opt-in HTTP server that
// exposes a running simulation's observability surface while it executes —
// the serving side of the monitoring loop every surveyed production site
// runs. Endpoints:
//
//	/metrics       Prometheus text exposition of the metrics registry
//	/metrics.json  the registry's JSON snapshot — the exact renderer the
//	               epasim -metrics file uses, so endpoint and file can
//	               never drift
//	/healthz       control-loop liveness: current sim time plus the age of
//	               the last telemetry sample and scheduling pass (virtual
//	               time, so a stalled loop is visible regardless of wall
//	               speed)
//	/state         a deterministic JSON snapshot of queue, running jobs,
//	               per-node power and caps, and fault status
//	/events        trace events streamed as server-sent events via a
//	               bounded non-blocking tracer subscription
//	/query         range queries over the virtual-time metric history
//	               (?metric=…&from=…&to=…&step=…, virtual seconds); with
//	               no metric parameter, the list of queryable series
//
// Determinism contract: the server never mutates simulation state, and the
// simulation never waits on a client. Handlers read under the same lock
// the simulation driver advances under (Locked), so every response is a
// consistent between-events snapshot; the /events stream drops on overflow
// (counted in the ops.events_dropped metric) instead of back-pressuring
// the tracer. A run with the server attached is byte-identical to one
// without it.
package ops

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"

	"epajsrm/internal/metrics"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
	"epajsrm/internal/tsdb"
)

// Source wires a Server to one run's observability surface. Registry is
// required; the rest degrade gracefully when absent (503/404 responses).
type Source struct {
	// Registry backs /metrics and /metrics.json.
	Registry *metrics.Registry
	// Tracer, when non-nil, backs /events.
	Tracer *trace.Tracer
	// Health produces the /healthz payload. Called under the state lock.
	Health func() Health
	// State produces the /state payload. Called under the state lock; nil
	// disables the endpoint (404).
	State func() State
	// History, when non-nil, backs /query range queries over the sampled
	// metric history.
	History *tsdb.Store
}

// Server serves the ops endpoints for one Source. Create with NewServer,
// expose via Handler (tests) or Start (a real listener). The zero value is
// not usable.
type Server struct {
	// mu is the state lock shared between the handlers and the simulation
	// driver: the driver advances the engine only inside Locked, and every
	// handler that touches simulation state holds mu while rendering, so
	// scrapes observe a quiescent manager even mid-run.
	mu  sync.Mutex
	src Source

	lis  net.Listener
	hsrv *http.Server

	// drain closes when the server begins shutting down; streaming
	// handlers (/events) watch it so a graceful Shutdown can complete
	// instead of waiting forever on open SSE connections.
	drain     chan struct{}
	drainOnce sync.Once
}

// NewServer builds a server over src. When both a registry and a tracer
// are present, the registry gains an ops.events_dropped derived gauge
// counting /events overflow drops — call NewServer at most once per
// registry, or the duplicate registration panics by design.
func NewServer(src Source) *Server {
	if src.Registry != nil && src.Tracer != nil {
		tr := src.Tracer
		src.Registry.GaugeFunc("ops.events_dropped", func() float64 {
			return float64(tr.Dropped())
		})
	}
	return &Server{src: src, drain: make(chan struct{})}
}

// Locked runs fn while holding the server's state lock. The simulation
// driver advances the engine exclusively inside Locked so that handlers
// only ever observe the state between event slices.
func (s *Server) Locked(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// Handler returns the ops route mux, for tests and embedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/query", s.handleQuery)
	return mux
}

// Start listens on addr (host:port; :0 picks a free port) and serves in a
// background goroutine until Close. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ops: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.hsrv = &http.Server{Handler: s.Handler()}
	go s.hsrv.Serve(lis) //nolint:errcheck // Serve always returns on Close
	return lis.Addr().String(), nil
}

// Close stops the listener and aborts in-flight requests (including
// /events streams). Safe to call when Start was never called. For a
// graceful stop that lets in-flight scrapes finish, use Shutdown.
func (s *Server) Close() error {
	s.drainOnce.Do(func() { close(s.drain) })
	if s.hsrv == nil {
		return nil
	}
	return s.hsrv.Close()
}

// Shutdown stops the server gracefully: streaming handlers (/events) are
// told to finish their current event and return, no new connections are
// accepted, and in-flight requests drain until ctx expires (after which
// the caller should fall back to Close). Safe to call when Start was never
// called — an embedded Handler-only server (the multi-tenant service
// multiplexes one per run) still gets its streams released. Safe to call
// more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() { close(s.drain) })
	if s.hsrv == nil {
		return nil
	}
	return s.hsrv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.src.Registry == nil {
		http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
		return
	}
	s.mu.Lock()
	pts := s.src.Registry.Snapshot()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, pts) //nolint:errcheck // client gone mid-write
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if s.src.Registry == nil {
		http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Registry.WriteJSON(w) //nolint:errcheck // client gone mid-write
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.src.Health == nil {
		http.Error(w, "no health source attached", http.StatusServiceUnavailable)
		return
	}
	s.mu.Lock()
	h := s.src.Health()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	// "ok" is a live loop, "complete" a finished one; both are healthy.
	// Everything else (telemetry-stale, ...) is a degradation → 503.
	if h.Status != "ok" && h.Status != "complete" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, h)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	if s.src.State == nil {
		http.Error(w, "no state source attached", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	st := s.src.State()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	WriteState(w, st) //nolint:errcheck // client gone mid-write
}

// handleQuery serves range queries over the metric history:
// /query?metric=NAME&from=S&to=S&step=S (all times in virtual seconds).
// Omitted bounds default to the full retained range; step is a resolution
// hint selecting a rollup tier (the response reports the tier cadence
// actually served). With no metric parameter the handler lists the
// queryable series. Responses are deterministic: same history, same
// query, same bytes.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	h := s.src.History
	if h == nil {
		http.Error(w, "no metric history attached; run with history enabled", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	name := q.Get("metric")
	w.Header().Set("Content-Type", "application/json")
	if name == "" {
		s.mu.Lock()
		names := h.Names()
		s.mu.Unlock()
		writeJSON(w, struct {
			Metrics []string `json:"metrics"`
		}{Metrics: names})
		return
	}
	parse := func(key string, def simulator.Time) (simulator.Time, bool) {
		v := q.Get(key)
		if v == "" {
			return def, true
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad %s: %q", key, v), http.StatusBadRequest)
			return 0, false
		}
		return simulator.Time(n), true
	}
	s.mu.Lock()
	last, _ := h.Now()
	s.mu.Unlock()
	from, ok := parse("from", 0)
	if !ok {
		return
	}
	to, ok := parse("to", last)
	if !ok {
		return
	}
	step, ok := parse("step", 0)
	if !ok {
		return
	}
	s.mu.Lock()
	samples, tierStep, found := h.Query(name, from, to, step)
	s.mu.Unlock()
	if !found {
		http.Error(w, fmt.Sprintf("unknown metric %q (GET /query for the list)", name), http.StatusNotFound)
		return
	}
	tsdb.WriteQueryJSON(w, name, tierStep, from, to, samples) //nolint:errcheck // client gone mid-write
}

// handleEvents streams trace events as server-sent events: each event is
// one `data:` line holding the same single-line JSON object the JSONL
// export writes. The subscription is bounded and non-blocking — a slow
// client loses events (counted in ops.events_dropped) rather than slowing
// the simulation. ?buf=N sizes the subscriber buffer, clamped to
// [1, 65536]; a missing or unparseable value selects the default (1024).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.src.Tracer == nil {
		http.Error(w, "tracing disabled; run with a tracer attached", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := s.src.Tracer.Subscribe(eventsBuf(r.URL.Query().Get("buf")))
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.drain:
			// Graceful shutdown: finish the stream so Shutdown can drain
			// instead of hanging on a never-ending SSE connection.
			return
		case ev, open := <-ch:
			if !open {
				return
			}
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				return
			}
			if err := trace.WriteEvent(w, &ev); err != nil {
				return
			}
			if _, err := fmt.Fprint(w, "\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// eventsBuf parses the ?buf=N subscriber-buffer size: clamped to
// [1, 65536] so a client can neither disable the buffer nor demand an
// unbounded one; parse failures and absence fall back to 0, which selects
// the tracer's default (1024).
func eventsBuf(q string) int {
	if q == "" {
		return 0
	}
	n, err := strconv.Atoi(q)
	if err != nil {
		return 0
	}
	if n < 1 {
		return 1
	}
	if n > 65536 {
		return 65536
	}
	return n
}
