package ops_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/metrics"
	"epajsrm/internal/ops"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
)

// newSim builds a manager with a tracer attached and a staggered workload
// submitted, plus an ops server over it. Nothing has run yet.
func newSim(t *testing.T) (*core.Manager, *ops.Server) {
	t.Helper()
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      1,
	})
	m.AttachTracer(trace.New())
	for i := 0; i < 24; i++ {
		j := &jobs.Job{
			ID:            int64(i + 1),
			User:          "ops",
			Tag:           "app",
			Nodes:         4 + i%13,
			Walltime:      2 * simulator.Hour,
			TrueRuntime:   simulator.Time(20+i) * simulator.Minute,
			PowerPerNodeW: 300,
			MemFrac:       0.3,
		}
		if err := m.Submit(j, simulator.Time(i)*7*simulator.Minute); err != nil {
			t.Fatal(err)
		}
	}
	return m, ops.NewServer(ops.ManagerSource(m))
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestEndpoints drives every endpoint against a completed run and checks
// each response against the manager's own state.
func TestEndpoints(t *testing.T) {
	m, srv := newSim(t)
	m.Run(-1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// /metrics matches the registry's own Prometheus rendering byte for
	// byte (the run is quiescent), and parses value-for-value.
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics code = %d", code)
	}
	var want bytes.Buffer
	if err := m.Reg.WritePrometheus(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("/metrics differs from registry rendering:\n%s\n-- vs --\n%s", body, want.Bytes())
	}
	samples, err := metrics.ParsePrometheusText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if got := samples["jobs_completed"]; got != float64(m.Metrics.Completed) {
		t.Fatalf("jobs_completed = %v, want %d", got, m.Metrics.Completed)
	}
	if _, ok := samples["ops_events_dropped"]; !ok {
		t.Fatal("ops_events_dropped missing from /metrics")
	}

	// /metrics.json is the exact -metrics file renderer.
	code, body = get(t, ts.URL+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json code = %d", code)
	}
	var wantJSON bytes.Buffer
	if err := m.Reg.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, wantJSON.Bytes()) {
		t.Fatal("/metrics.json differs from Registry.WriteJSON")
	}

	// /healthz reports the control loop's virtual-time liveness.
	code, body = get(t, ts.URL+"/healthz")
	var h ops.Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	if h.SimNow != int64(m.Eng.Now()) {
		t.Fatalf("sim_now_s = %d, want %d", h.SimNow, int64(m.Eng.Now()))
	}
	if h.TelemetryLast < 0 || h.SchedulerLast <= 0 {
		t.Fatalf("liveness fields unset: %+v", h)
	}
	// The run has finished (Run calls FinishRun), so the status must be
	// the terminal "complete" — healthy, not an aged-out stale 503.
	if h.Status != "complete" {
		t.Fatalf("/healthz status after FinishRun = %q, want complete", h.Status)
	}
	if code != http.StatusOK {
		t.Fatalf("/healthz code after FinishRun = %d, want 200", code)
	}

	// /state is a deterministic snapshot: correct shape, repeatable bytes.
	code, body = get(t, ts.URL+"/state")
	if code != http.StatusOK {
		t.Fatalf("/state code = %d", code)
	}
	var st ops.State
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/state: %v", err)
	}
	if st.System != m.Cl.Cfg.Name {
		t.Fatalf("system = %q, want %q", st.System, m.Cl.Cfg.Name)
	}
	if len(st.Nodes) != m.Cl.Size() {
		t.Fatalf("nodes = %d, want %d", len(st.Nodes), m.Cl.Size())
	}
	if len(st.Queue) != 0 || len(st.Running) != 0 {
		t.Fatalf("finished run still has queue=%d running=%d", len(st.Queue), len(st.Running))
	}
	_, again := get(t, ts.URL+"/state")
	if !bytes.Equal(body, again) {
		t.Fatal("/state not byte-deterministic across scrapes")
	}
}

// TestDegradedEndpoints pins the behavior of a server with nothing wired:
// clear errors, not panics.
func TestDegradedEndpoints(t *testing.T) {
	srv := ops.NewServer(ops.Source{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for path, want := range map[string]int{
		"/metrics":      http.StatusServiceUnavailable,
		"/metrics.json": http.StatusServiceUnavailable,
		"/healthz":      http.StatusServiceUnavailable,
		"/state":        http.StatusNotFound,
		"/events":       http.StatusServiceUnavailable,
	} {
		if code, _ := get(t, ts.URL+path); code != want {
			t.Errorf("%s code = %d, want %d", path, code, want)
		}
	}
}

// TestStartClose exercises the real listener path.
func TestStartClose(t *testing.T) {
	m, srv := newSim(t)
	m.Run(-1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := get(t, "http://"+addr+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz over real listener: code %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScrapeDuringRun is the concurrency contract under -race: the driver
// advances the simulation in time slices inside Locked while this test
// hammers /metrics, /healthz, and /state; every mid-run scrape must be
// internally consistent and the final scrape must match the registry's
// snapshot value for value.
func TestScrapeDuringRun(t *testing.T) {
	m, srv := newSim(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const horizon = 6 * simulator.Hour
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for now := simulator.Time(0); now < horizon; now += simulator.Minute {
			srv.Locked(func() { m.Eng.RunUntil(now + simulator.Minute) })
		}
		srv.Locked(func() { m.FinishRun(horizon) })
	}()

	scrapes := 0
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		code, body := get(t, ts.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics code = %d mid-run", code)
		}
		if _, err := metrics.ParsePrometheusText(bytes.NewReader(body)); err != nil {
			t.Fatalf("mid-run /metrics does not parse: %v", err)
		}
		if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("/healthz code = %d mid-run", code)
		}
		code, body = get(t, ts.URL+"/state")
		if code != http.StatusOK {
			t.Fatalf("/state code = %d mid-run", code)
		}
		var st ops.State
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("mid-run /state: %v", err)
		}
		if len(st.Nodes) != m.Cl.Size() {
			t.Fatalf("mid-run snapshot has %d nodes", len(st.Nodes))
		}
		scrapes++
	}
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("no scrapes happened")
	}

	// Quiescent now: the scrape equals the local rendering, and the parsed
	// samples match the snapshot value for value.
	_, body := get(t, ts.URL+"/metrics")
	var want bytes.Buffer
	if err := m.Reg.WritePrometheus(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatal("final /metrics differs from registry rendering")
	}
	got, err := metrics.ParsePrometheusText(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	local, err := metrics.ParsePrometheusText(&want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, local) {
		t.Fatal("final /metrics samples differ from snapshot")
	}
}

// TestEventsStream reads live trace events over the SSE endpoint and
// verifies each data line is the JSONL event form.
func TestEventsStream(t *testing.T) {
	tr := trace.New()
	srv := ops.NewServer(ops.Source{Registry: metrics.New(), Tracer: tr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/events?buf=8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events code = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	// The subscription races with this client's connect; emit until one
	// event arrives rather than assuming the subscriber is registered.
	stop := make(chan struct{})
	var eg sync.WaitGroup
	eg.Add(1)
	go func() {
		defer eg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr.Instant(trace.PidSched, 0, "sse-tick", simulator.Time(i), trace.Arg{Key: "i", Val: i})
			time.Sleep(time.Millisecond)
		}
	}()
	defer eg.Wait()
	defer close(stop)

	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("SSE line = %q, want data: prefix", line)
	}
	payload := strings.TrimPrefix(strings.TrimSuffix(line, "\n"), "data: ")
	evs, err := trace.ReadJSONL(strings.NewReader(payload + "\n"))
	if err != nil {
		t.Fatalf("SSE payload is not a JSONL event: %v", err)
	}
	if len(evs) != 1 || evs[0].Name != "sse-tick" {
		t.Fatalf("decoded %+v", evs)
	}
	if blank, _ := br.ReadString('\n'); blank != "\n" {
		t.Fatalf("SSE separator = %q, want blank line", blank)
	}
}

// TestEventsBufClamp pins the ?buf=N parsing contract: unparseable and
// out-of-range values must not produce an unbuffered or unbounded
// subscription — they clamp to [1, 65536] or fall back to the default.
func TestEventsBufClamp(t *testing.T) {
	tr := trace.New()
	srv := ops.NewServer(ops.Source{Registry: metrics.New(), Tracer: tr})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, q := range []string{"", "?buf=-5", "?buf=0", "?buf=abc", "?buf=1", "?buf=999999999", "?buf=2147483648000"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/events"+q, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		resp, err := http.DefaultClient.Do(req.WithContext(ctx))
		if err != nil {
			cancel()
			t.Fatalf("GET /events%s: %v", q, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /events%s code = %d", q, resp.StatusCode)
		}
		// Stream stays open until the context deadline cuts it; the
		// handler must exit cleanly for every buffer size.
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		cancel()
	}
}

// TestHealthzTerminalNotStale is the lingering-server contract: once
// FinishRun closes the run, /healthz must report the terminal "complete"
// status with 200 forever, never aging into a spurious stale 503.
func TestHealthzTerminalNotStale(t *testing.T) {
	m, srv := newSim(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Mid-run: healthy and live.
	srv.Locked(func() { m.Eng.RunUntil(2 * simulator.Hour) })
	code, body := get(t, ts.URL+"/healthz")
	var h ops.Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("mid-run healthz = %d %q, want 200 ok", code, h.Status)
	}

	// Finished: terminal status, still 200, however long ago it ended.
	end := m.Eng.RunUntil(-1)
	m.FinishRun(end)
	for i := 0; i < 2; i++ {
		code, body = get(t, ts.URL+"/healthz")
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		if code != http.StatusOK || h.Status != "complete" {
			t.Fatalf("post-run healthz = %d %q, want 200 complete", code, h.Status)
		}
	}
}

// TestShutdownDrainsEvents: a graceful Shutdown must release an open SSE
// stream (the drain channel) instead of hanging on it, and in-flight
// unary scrapes must finish.
func TestShutdownDrainsEvents(t *testing.T) {
	m, srv := newSim(t)
	m.Run(-1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events code = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("Shutdown hung on the open SSE stream")
	}
	// The released stream reads EOF, not an abort error.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatalf("SSE stream not drained cleanly: %v", err)
	}
	// Shutdown is idempotent, and Close after Shutdown is safe.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScrapeRacesShutdown hammers /metrics, /state, /healthz, and /events
// from many goroutines while Close/Shutdown race the handlers — a -race
// gate over the server teardown path. Requests may fail (the listener is
// going away); they must never panic or deadlock.
func TestScrapeRacesShutdown(t *testing.T) {
	for _, graceful := range []bool{false, true} {
		m, srv := newSim(t)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		// Driver advances the sim under the state lock.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for now := simulator.Time(0); now < 4*simulator.Hour; now += simulator.Minute {
				select {
				case <-stop:
					return
				default:
				}
				step := now + simulator.Minute
				srv.Locked(func() { m.Eng.RunUntil(step) })
			}
		}()
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				paths := []string{"/metrics", "/state", "/healthz", "/events?buf=4"}
				for k := 0; ; k++ {
					select {
					case <-stop:
						return
					default:
					}
					req, err := http.NewRequest(http.MethodGet, "http://"+addr+paths[(i+k)%len(paths)], nil)
					if err != nil {
						return
					}
					ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
					resp, err := http.DefaultClient.Do(req.WithContext(ctx))
					if err == nil {
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
					}
					cancel()
				}
			}(i)
		}
		time.Sleep(50 * time.Millisecond)
		if graceful {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown during scrapes: %v", err)
			}
			cancel()
		} else {
			if err := srv.Close(); err != nil {
				t.Errorf("Close during scrapes: %v", err)
			}
		}
		close(stop)
		wg.Wait()
	}
}
