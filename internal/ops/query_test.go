package ops_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"epajsrm/internal/alert"
	"epajsrm/internal/ops"
	"epajsrm/internal/simulator"
	"epajsrm/internal/tsdb"
)

// newHistorySim is newSim plus an attached metric history; the source is
// built after AttachHistory because Source copies the History pointer.
func newHistorySim(t *testing.T) (*ops.Server, func(simulator.Time)) {
	t.Helper()
	m, _ := newSim(t)
	m.AttachHistory(tsdb.New(m.Reg, tsdb.Config{}))
	srv := ops.NewServer(ops.Source{
		Registry: m.Reg,
		Health:   func() ops.Health { return ops.ManagerHealth(m) },
		State:    func() ops.State { return ops.ManagerState(m) },
		History:  m.Hist,
	})
	return srv, func(h simulator.Time) { m.Run(h) }
}

func TestQueryEndpoint(t *testing.T) {
	srv, run := newHistorySim(t)
	run(6 * simulator.Hour)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// No metric parameter: deterministic series listing.
	code, body := get(t, ts.URL+"/query")
	if code != 200 {
		t.Fatalf("listing: %d %s", code, body)
	}
	var listing struct {
		Metrics []string `json:"metrics"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, n := range []string{"power.total_w", "jobs.completed", "jobs.wait_seconds.p99", "telemetry.staleness_s"} {
		want[n] = false
	}
	for _, n := range listing.Metrics {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("listing missing %q: %v", n, listing.Metrics)
		}
	}

	// A range query returns samples in the window at the raw cadence.
	code, body = get(t, ts.URL+"/query?metric=power.total_w&from=0&to=7200")
	if code != 200 {
		t.Fatalf("range query: %d %s", code, body)
	}
	var qr struct {
		Metric  string `json:"metric"`
		Step    int64  `json:"step"`
		Samples []struct {
			T int64   `json:"t"`
			V float64 `json:"v"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("parse %s: %v", body, err)
	}
	if qr.Metric != "power.total_w" || qr.Step != int64(simulator.Minute) {
		t.Fatalf("metric=%q step=%d, want power.total_w at 60", qr.Metric, qr.Step)
	}
	if len(qr.Samples) == 0 {
		t.Fatal("no samples in a 2-hour window of a 6-hour run")
	}
	for _, s := range qr.Samples {
		if s.T < 0 || s.T > 7200 {
			t.Fatalf("sample at %d outside [0, 7200]", s.T)
		}
	}

	// A step hint selects a rollup tier.
	code, body = get(t, ts.URL+"/query?metric=power.total_w&step=900")
	if code != 200 {
		t.Fatalf("rollup query: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Step != 900 {
		t.Fatalf("step hint 900 served tier step %d", qr.Step)
	}

	// Unknown metric → 404; bad bounds → 400.
	if code, _ = get(t, ts.URL+"/query?metric=nope"); code != 404 {
		t.Fatalf("unknown metric: %d, want 404", code)
	}
	if code, _ = get(t, ts.URL+"/query?metric=power.total_w&from=x"); code != 400 {
		t.Fatalf("bad from: %d, want 400", code)
	}
}

func TestQueryWithoutHistoryIs404(t *testing.T) {
	_, srv := newSim(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := get(t, ts.URL+"/query"); code != 404 {
		t.Fatalf("/query without history: %d, want 404", code)
	}
}

func TestQueryResponseByteIdentical(t *testing.T) {
	srv, run := newHistorySim(t)
	run(4 * simulator.Hour)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, a := get(t, ts.URL+"/query?metric=jobs.completed&from=0&to=14400")
	_, b := get(t, ts.URL+"/query?metric=jobs.completed&from=0&to=14400")
	if string(a) != string(b) {
		t.Fatalf("query responses differ:\n%s\nvs\n%s", a, b)
	}
}

// TestHealthzReportsFiringAlert is the satellite-2 contract: a scrape of
// a degraded run names the firing rule in the health detail.
func TestHealthzReportsFiringAlert(t *testing.T) {
	m, _ := newSim(t)
	m.AttachHistory(tsdb.New(m.Reg, tsdb.Config{}))
	// A rule that must fire: total power above zero watts, immediately.
	w, err := alert.New(m.Hist, m.Reg, alert.Rules{Rules: []alert.Rule{{
		Name: "power-above-zero", Kind: "threshold", Metric: "power.total_w",
		Agg: "last", Op: ">", Value: 0,
	}}}, simulator.Day)
	if err != nil {
		t.Fatal(err)
	}
	m.AttachWatchdog(w)
	// newSim's own server already registered ops.events_dropped, so this
	// one omits the tracer to avoid the duplicate registration.
	srv := ops.NewServer(ops.Source{
		Registry: m.Reg,
		Health:   func() ops.Health { return ops.ManagerHealth(m) },
		History:  m.Hist,
	})
	m.Run(2 * simulator.Hour)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := get(t, ts.URL+"/healthz")
	var h ops.Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(h.Detail, "firing: power-above-zero") {
		t.Fatalf("healthz detail %q does not name the firing alert", h.Detail)
	}
}
