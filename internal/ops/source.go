package ops

import (
	"encoding/json"
	"io"
	"net/http"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
)

// Health is the /healthz payload: control-loop liveness in virtual time.
// Ages are measured in simulated seconds, so a wedged control loop is
// visible no matter how fast or slow the wall clock runs the simulation.
type Health struct {
	Status string `json:"status"` // "ok" or a degradation reason
	SimNow int64  `json:"sim_now_s"`
	// TelemetryLast/TelemetryAge: virtual time of the last genuine power
	// sample and its age (-1 when no sample has ever landed).
	TelemetryLast int64 `json:"telemetry_last_s"`
	TelemetryAge  int64 `json:"telemetry_age_s"`
	// SchedulerLast/SchedulerAge: virtual time of the last scheduling pass
	// and its age.
	SchedulerLast int64 `json:"scheduler_last_s"`
	SchedulerAge  int64 `json:"scheduler_age_s"`
	// Phase names the control loop's current profiler phase ("idle"
	// between slices); present only when a profiler is attached.
	Phase string `json:"phase,omitempty"`
	// Recovered marks a service-hosted run the journal re-admitted
	// after a crash; always false outside the service tier.
	Recovered bool `json:"recovered,omitempty"`
	// Detail carries a free-form liveness note (e.g. experiment progress
	// for epabench, where no single manager exists).
	Detail string `json:"detail,omitempty"`
}

// QueueEntry is one queued job in the /state snapshot.
type QueueEntry struct {
	ID       int64  `json:"id"`
	Tag      string `json:"tag"`
	Nodes    int    `json:"nodes"`
	Submit   int64  `json:"submit_s"`
	Requeues int    `json:"requeues"`
	Priority int    `json:"priority"`
}

// RunningEntry is one executing job in the /state snapshot.
type RunningEntry struct {
	ID       int64   `json:"id"`
	Tag      string  `json:"tag"`
	Nodes    int     `json:"nodes"`
	Start    int64   `json:"start_s"`
	FreqFrac float64 `json:"freq_frac"`
	WorkDone float64 `json:"work_done_s"`
}

// NodeEntry is one node's live electrical and lifecycle state.
type NodeEntry struct {
	ID     int     `json:"id"`
	Name   string  `json:"name"`
	State  string  `json:"state"`
	JobID  int64   `json:"job_id,omitempty"`
	PowerW float64 `json:"power_w"`
	CapW   float64 `json:"cap_w,omitempty"`
}

// State is the /state payload: a deterministic snapshot of the queue,
// running set, per-node power and caps, and fault posture. All slices are
// in a fixed order (queue order, job-ID order, node-ID order) and the
// struct marshals with a fixed field order, so two snapshots of identical
// simulation states are byte-identical.
type State struct {
	SimNow          int64          `json:"sim_now_s"`
	System          string         `json:"system"`
	TotalPowerW     float64        `json:"total_power_w"`
	SystemCapW      float64        `json:"system_cap_w,omitempty"`
	DownNodes       int            `json:"down_nodes"`
	TelemetryOutage bool           `json:"telemetry_outage"`
	Queue           []QueueEntry   `json:"queue"`
	Running         []RunningEntry `json:"running"`
	Nodes           []NodeEntry    `json:"nodes"`
}

// WriteState renders st as indented JSON. This is the single renderer for
// the /state endpoint and the epasim -state file, so the two forms cannot
// drift.
func WriteState(w io.Writer, st State) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// writeJSON marshals v onto an HTTP response; encode errors at this point
// mean the client went away, which the handler cannot act on.
func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Write(b) //nolint:errcheck
}

// ManagerSource builds the ops Source for one simulation manager: registry
// and tracer straight off the manager, health from telemetry/scheduler
// liveness, and state snapshots of queue, nodes, and power books. The
// closures read manager state without synchronizing — the Server calls
// them under its state lock, which the simulation driver shares.
func ManagerSource(m *core.Manager) Source {
	return Source{
		Registry: m.Reg,
		Tracer:   m.Tr,
		Health:   func() Health { return ManagerHealth(m) },
		State:    func() State { return ManagerState(m) },
		History:  m.Hist,
	}
}

// ManagerHealth derives the /healthz payload from m's control loop. A
// finished run (FinishRun has closed the accounting) reports the terminal
// "complete" status: liveness ages are meaningless once the loop has
// legitimately stopped, and without the terminal state a lingering server
// would age into a spurious telemetry-stale 503.
func ManagerHealth(m *core.Manager) Health {
	now := m.Eng.Now()
	h := Health{
		Status:        "ok",
		SimNow:        int64(now),
		TelemetryLast: -1,
		TelemetryAge:  -1,
		SchedulerLast: int64(m.LastSchedPass),
		SchedulerAge:  int64(now - m.LastSchedPass),
	}
	if last, ok := m.Tel.LastGood(); ok {
		h.TelemetryLast = int64(last.At)
		h.TelemetryAge = int64(now - last.At)
	}
	if m.Prof != nil {
		h.Phase = m.Prof.Current()
	}
	if m.Tel.Stale(now, 0) {
		h.Status = "telemetry-stale"
	}
	if m.RunEnded {
		h.Status = "complete"
	}
	// Surface the most recent firing SLO alert so a scrape shows *why*
	// the run is degraded, not just that it is.
	if m.Watch != nil {
		if name := m.Watch.MostRecentFiring(); name != "" {
			h.Detail = "firing: " + name
		}
	}
	return h
}

// ManagerState derives the /state snapshot from m.
func ManagerState(m *core.Manager) State {
	now := m.Eng.Now()
	st := State{
		SimNow:          int64(now),
		System:          m.Cl.Cfg.Name,
		TotalPowerW:     m.Pw.TotalPower(),
		SystemCapW:      m.Ctrl.SystemCapW,
		TelemetryOutage: m.Tel.OutageActive(),
		// Empty collections render as [] rather than null.
		Queue:   []QueueEntry{},
		Running: []RunningEntry{},
		Nodes:   []NodeEntry{},
	}
	for _, j := range m.Queue.All() {
		st.Queue = append(st.Queue, QueueEntry{
			ID: j.ID, Tag: j.Tag, Nodes: j.Nodes,
			Submit: int64(j.Submit), Requeues: j.Requeues, Priority: j.Priority,
		})
	}
	for _, j := range m.Running() {
		st.Running = append(st.Running, RunningEntry{
			ID: j.ID, Tag: j.Tag, Nodes: j.Nodes,
			Start: int64(j.Start), FreqFrac: j.FreqFrac, WorkDone: j.WorkDone,
		})
	}
	for i, n := range m.Cl.Nodes {
		if n.State == cluster.StateDown {
			st.DownNodes++
		}
		st.Nodes = append(st.Nodes, NodeEntry{
			ID: n.ID, Name: n.Name, State: n.State.String(),
			JobID: n.JobID, PowerW: m.Pw.NodePower(i), CapW: n.CapW,
		})
	}
	return st
}
