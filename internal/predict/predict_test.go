package predict

import (
	"math"
	"testing"

	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
	"epajsrm/internal/stats"
	"epajsrm/internal/workload"
)

func job(tag string, nodes int, wall simulator.Time) *jobs.Job {
	return &jobs.Job{Tag: tag, Nodes: nodes, Walltime: wall}
}

func TestNaiveLearnsGlobalMean(t *testing.T) {
	p := NewNaive(100)
	if p.Predict(job("a", 1, 60)) != 100 {
		t.Fatal("prior not used")
	}
	p.Observe(job("a", 1, 60), 200)
	p.Observe(job("b", 1, 60), 300)
	if got := p.Predict(job("c", 1, 60)); got != 250 {
		t.Fatalf("mean = %f", got)
	}
}

func TestTagHistoryPerTag(t *testing.T) {
	p := NewTagHistory(100, 4)
	p.Observe(job("cfd", 1, 60), 200)
	p.Observe(job("cfd", 1, 60), 220)
	p.Observe(job("md", 1, 60), 340)
	if got := p.Predict(job("cfd", 1, 60)); got != 210 {
		t.Fatalf("cfd prediction = %f", got)
	}
	if got := p.Predict(job("md", 1, 60)); got != 340 {
		t.Fatalf("md prediction = %f", got)
	}
	// Unknown tag falls back to the global mean.
	if got := p.Predict(job("new", 1, 60)); got != (200+220+340)/3.0 {
		t.Fatalf("fallback = %f", got)
	}
}

func TestTagHistoryDepthWindow(t *testing.T) {
	p := NewTagHistory(0, 2)
	p.Observe(job("x", 1, 60), 100)
	p.Observe(job("x", 1, 60), 200)
	p.Observe(job("x", 1, 60), 300)
	// Only the last 2 (200, 300) should count.
	if got := p.Predict(job("x", 1, 60)); got != 250 {
		t.Fatalf("windowed prediction = %f", got)
	}
}

func TestRegressionLearnsTagOffsets(t *testing.T) {
	p := NewRegression(250)
	// Two app classes with distinct draws, same shapes.
	for i := 0; i < 400; i++ {
		p.Observe(job("hot", 4, 3600), 330)
		p.Observe(job("cool", 4, 3600), 170)
	}
	hot := p.Predict(job("hot", 4, 3600))
	cool := p.Predict(job("cool", 4, 3600))
	if hot < 310 || hot > 350 {
		t.Fatalf("hot prediction = %f, want ~330", hot)
	}
	if cool < 150 || cool > 190 {
		t.Fatalf("cool prediction = %f, want ~170", cool)
	}
}

func TestRegressionNonNegative(t *testing.T) {
	p := NewRegression(10)
	for i := 0; i < 200; i++ {
		p.Observe(job("tiny", 1, 60), 1)
	}
	if got := p.Predict(job("tiny", 1, 60)); got < 0 {
		t.Fatalf("negative power prediction: %f", got)
	}
}

func TestTempAdjusted(t *testing.T) {
	temp := 20.0
	p := &TempAdjusted{
		Base:      NewNaive(100),
		TempNow:   func() float64 { return temp },
		RefC:      20,
		PerDegree: 0.01,
	}
	if got := p.Predict(job("a", 1, 60)); got != 100 {
		t.Fatalf("at reference temp = %f", got)
	}
	temp = 30
	if got := p.Predict(job("a", 1, 60)); math.Abs(got-110) > 1e-9 {
		t.Fatalf("at +10C = %f, want 110", got)
	}
	temp = 10
	if got := p.Predict(job("a", 1, 60)); math.Abs(got-90) > 1e-9 {
		t.Fatalf("at -10C = %f, want 90", got)
	}
	if p.Name() != "naive-mean+temp" {
		t.Fatalf("name = %q", p.Name())
	}
}

// TestPredictorsBeatNaiveOnTaggedWorkload is the core claim of E8: with a
// tag-structured workload (distinct per-app draws), tag-history and
// regression predictors must achieve lower MAPE than the naive global
// mean.
func TestPredictorsBeatNaiveOnTaggedWorkload(t *testing.T) {
	gen := workload.NewGenerator(workload.DefaultSpec(), 99)
	js := gen.Generate(1500)

	naive := NewNaive(250)
	tag := NewTagHistory(250, 8)
	reg := NewRegression(250)
	preds := []Predictor{naive, tag, reg}
	errs := map[string]*struct{ pred, act []float64 }{}
	for _, p := range preds {
		errs[p.Name()] = &struct{ pred, act []float64 }{}
	}
	for _, j := range js {
		actual := j.PowerPerNodeW
		for _, p := range preds {
			e := errs[p.Name()]
			e.pred = append(e.pred, p.Predict(j))
			e.act = append(e.act, actual)
			p.Observe(j, actual)
		}
	}
	mape := func(name string) float64 {
		e := errs[name]
		// Skip the cold start: score the second half.
		h := len(e.pred) / 2
		return stats.MAPE(e.pred[h:], e.act[h:])
	}
	naiveM, tagM, regM := mape("naive-mean"), mape("tag-history"), mape("regression")
	if tagM >= naiveM {
		t.Fatalf("tag-history MAPE %.3f not better than naive %.3f", tagM, naiveM)
	}
	if regM >= naiveM {
		t.Fatalf("regression MAPE %.3f not better than naive %.3f", regM, naiveM)
	}
	if tagM > 0.15 {
		t.Fatalf("tag-history MAPE %.3f implausibly high for tag-structured workload", tagM)
	}
}
