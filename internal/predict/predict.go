// Package predict implements pre-run job power prediction — the capability
// several surveyed sites deploy or develop: RIKEN estimates each job's
// power before it runs (temperature-adjusted), CINECA/Bologna build
// predictive models from scalable power monitoring, and the literature
// (Borghesi [9], Sîrbu & Babaoglu [41], Shoukourian [40]) keys predictions
// on application tags, submission features, and regression over history.
package predict

import (
	"math"

	"epajsrm/internal/jobs"
)

// Predictor estimates a job's per-node power draw in watts before it runs,
// and learns from completed jobs.
type Predictor interface {
	Name() string
	// Predict returns the per-node power estimate for a job about to run.
	Predict(j *jobs.Job) float64
	// Observe feeds back the measured per-node draw after the job ran.
	Observe(j *jobs.Job, measuredPerNodeW float64)
}

// Naive predicts a single global constant learned as the running mean of
// all observations — the baseline every real predictor must beat.
type Naive struct {
	n    int64
	mean float64
	// Default is returned before any observation.
	Default float64
}

// NewNaive returns a naive predictor with the given prior.
func NewNaive(prior float64) *Naive { return &Naive{Default: prior} }

// Name implements Predictor.
func (p *Naive) Name() string { return "naive-mean" }

// Predict implements Predictor.
func (p *Naive) Predict(j *jobs.Job) float64 {
	if p.n == 0 {
		return p.Default
	}
	return p.mean
}

// Observe implements Predictor.
func (p *Naive) Observe(j *jobs.Job, w float64) {
	p.n++
	p.mean += (w - p.mean) / float64(p.n)
}

// TagHistory predicts per application tag: the mean of the last Depth
// observations for the job's tag, falling back to the global mean for
// unseen tags. This is the "user's meta-information, such as a tag
// identifying similar jobs" approach (Auweter et al. [4]).
type TagHistory struct {
	Depth  int
	global Naive
	byTag  map[string][]float64
}

// NewTagHistory returns a predictor keeping the last depth runs per tag.
func NewTagHistory(prior float64, depth int) *TagHistory {
	if depth <= 0 {
		depth = 8
	}
	return &TagHistory{Depth: depth, global: Naive{Default: prior}, byTag: map[string][]float64{}}
}

// Name implements Predictor.
func (p *TagHistory) Name() string { return "tag-history" }

// Predict implements Predictor.
func (p *TagHistory) Predict(j *jobs.Job) float64 {
	hist := p.byTag[j.Tag]
	if len(hist) == 0 {
		return p.global.Predict(j)
	}
	s := 0.0
	for _, w := range hist {
		s += w
	}
	return s / float64(len(hist))
}

// Observe implements Predictor.
func (p *TagHistory) Observe(j *jobs.Job, w float64) {
	p.global.Observe(j, w)
	hist := append(p.byTag[j.Tag], w)
	if len(hist) > p.Depth {
		hist = hist[len(hist)-p.Depth:]
	}
	p.byTag[j.Tag] = hist
}

// Regression is an online least-squares model over submission-time
// features (the Borghesi/Sîrbu approach): width, log walltime, and a
// per-tag intercept learned jointly by stochastic gradient descent.
type Regression struct {
	lr      float64
	wWidth  float64
	wWall   float64
	bias    float64
	tagBias map[string]float64
	nSeen   int64
	prior   float64
}

// NewRegression returns an SGD regressor with the given prior prediction.
func NewRegression(prior float64) *Regression {
	return &Regression{lr: 0.02, bias: prior, prior: prior, tagBias: map[string]float64{}}
}

// Name implements Predictor.
func (p *Regression) Name() string { return "regression" }

func regFeatures(j *jobs.Job) (width, wall float64) {
	// Normalized features keep SGD stable across site scales.
	width = math.Log2(float64(j.Nodes) + 1)
	wall = math.Log10(float64(j.Walltime) + 1)
	return
}

// Predict implements Predictor.
func (p *Regression) Predict(j *jobs.Job) float64 {
	if p.nSeen == 0 {
		return p.prior
	}
	fw, fl := regFeatures(j)
	v := p.bias + p.wWidth*fw + p.wWall*fl + p.tagBias[j.Tag]
	if v < 0 {
		v = 0
	}
	return v
}

// Observe implements Predictor.
func (p *Regression) Observe(j *jobs.Job, w float64) {
	fw, fl := regFeatures(j)
	pred := p.bias + p.wWidth*fw + p.wWall*fl + p.tagBias[j.Tag]
	err := pred - w
	p.bias -= p.lr * err
	p.wWidth -= p.lr * err * fw
	p.wWall -= p.lr * err * fl
	p.tagBias[j.Tag] -= p.lr * err
	p.nSeen++
}

// TempAdjusted wraps another predictor and scales its output by a
// temperature coefficient — RIKEN's production row: "pre-run estimate of
// power usage of each job, based on temperature". Hotter ambient means
// higher leakage and fan power, raising draw.
type TempAdjusted struct {
	Base Predictor
	// TempNow returns the ambient temperature when Predict is called.
	TempNow func() float64
	// RefC is the temperature the base prediction is calibrated at;
	// PerDegree is the relative increase per degree above it.
	RefC      float64
	PerDegree float64
}

// Name implements Predictor.
func (p *TempAdjusted) Name() string { return p.Base.Name() + "+temp" }

// Predict implements Predictor.
func (p *TempAdjusted) Predict(j *jobs.Job) float64 {
	v := p.Base.Predict(j)
	if p.TempNow != nil {
		dt := p.TempNow() - p.RefC
		v *= 1 + p.PerDegree*dt
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Observe implements Predictor.
func (p *TempAdjusted) Observe(j *jobs.Job, w float64) { p.Base.Observe(j, w) }
