// Package fault injects the failures a production EPA JSRM stack must
// survive: node crashes (with repair), power-telemetry dropout and
// stuck-sensor windows, and out-of-band cap-actuation failures. The survey
// sites run their energy/power machinery on real hardware where every one
// of these happens routinely; a control loop evaluated only on a perfect
// substrate overstates what the policies deliver.
//
// The injector is deterministic: all draws come from RNG streams split off
// one seed, one independent stream per fault class, so the same seed gives
// byte-identical fault schedules and a zero-rate profile leaves the
// simulation untouched (no stream is ever advanced for a disabled class).
package fault

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/metrics"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
)

// Profile sets the fault rates. Zero values disable each class, so the
// zero Profile is a perfectly reliable machine.
type Profile struct {
	// NodeMTBF is the per-node mean time between crashes (exponential);
	// 0 disables node failures. NodeMTTR is the mean repair time
	// (exponential, floor 1 s); 0 with a nonzero MTBF means crashed nodes
	// never come back.
	NodeMTBF simulator.Time
	NodeMTTR simulator.Time

	// SensorMTBF is the mean time between telemetry outages; SensorMTTR the
	// mean outage duration. SensorStuckProb is the probability a given
	// outage is a stuck sensor (repeats the last good reading) rather than
	// silent dropout.
	SensorMTBF      simulator.Time
	SensorMTTR      simulator.Time
	SensorStuckProb float64

	// ActuationFailProb is the per-actuation failure probability injected
	// into the power controller (see power.Controller.FaultProb).
	ActuationFailProb float64
}

// Zero reports whether the profile disables every fault class.
func (p Profile) Zero() bool {
	return p.NodeMTBF <= 0 && p.SensorMTBF <= 0 && p.ActuationFailProb <= 0
}

// Injector drives faults into a manager's control loop from deterministic
// RNG streams. Create with New, then call Start before running the engine.
type Injector struct {
	M    *core.Manager
	Prof Profile

	// Counters for experiments and reports. Standalone metrics counters so
	// the manager's registry can adopt them (wired under fault.*).
	Crashes       *metrics.Counter
	Repairs       *metrics.Counter
	SensorOutages *metrics.Counter

	// Trace logs every injected event ("t=... crash node-7") in order, for
	// determinism checks and debugging.
	Trace []string

	nodeRNG   *simulator.RNG
	sensorRNG *simulator.RNG
	actRNG    *simulator.RNG

	started bool
}

// New builds an injector over m with its own RNG lineage from seed; the
// manager's streams are never touched, so attaching an injector does not
// perturb an otherwise identical run.
func New(m *core.Manager, prof Profile, seed uint64) *Injector {
	root := simulator.NewRNG(seed)
	in := &Injector{
		M:             m,
		Prof:          prof,
		Crashes:       metrics.NewCounter(),
		Repairs:       metrics.NewCounter(),
		SensorOutages: metrics.NewCounter(),
		nodeRNG:       root.Split(),
		sensorRNG:     root.Split(),
		actRNG:        root.Split(),
	}
	if m.Reg != nil {
		m.Reg.Register("fault.crashes", in.Crashes)
		m.Reg.Register("fault.repairs", in.Repairs)
		m.Reg.Register("fault.sensor_outages", in.SensorOutages)
	}
	return in
}

// trace records to the injector's own ordered text log, and — when the
// manager has a structured tracer attached — mirrors the injection as an
// instant on the faults track. Reading m.Tr at fire time (not New time)
// means an injector built before AttachTracer still traces.
func (in *Injector) trace(now simulator.Time, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	in.Trace = append(in.Trace, fmt.Sprintf("t=%s ", now.String())+msg)
	if tr := in.M.Tr; tr != nil {
		tr.Instant(trace.PidFault, 0, "inject", now, trace.Arg{Key: "what", Val: msg})
	}
}

// Start schedules the fault processes on the manager's engine. All events
// are daemon events: an injector never keeps an otherwise-drained run
// alive. Start is idempotent.
func (in *Injector) Start() {
	if in.started {
		return
	}
	in.started = true
	if in.Prof.NodeMTBF > 0 {
		for _, n := range in.M.Cl.Nodes {
			in.scheduleCrash(n.ID)
		}
	}
	if in.Prof.SensorMTBF > 0 {
		in.scheduleOutage()
	}
	if in.Prof.ActuationFailProb > 0 {
		in.M.Ctrl.FaultProb = in.Prof.ActuationFailProb
		in.M.Ctrl.FaultRNG = in.actRNG
	}
}

// scheduleCrash arms node id's next crash Exp(MTBF) from now.
func (in *Injector) scheduleCrash(id int) {
	d := simulator.Time(in.nodeRNG.Exp(float64(in.Prof.NodeMTBF)))
	in.M.Eng.AfterDaemon(d, "fault-crash", func(now simulator.Time) {
		in.crash(id, now)
	})
}

func (in *Injector) crash(id int, now simulator.Time) {
	if in.M.FailNode(id, now) {
		in.Crashes.Inc()
		in.trace(now, "crash %s", in.M.Cl.Nodes[id].Name)
	}
	if in.Prof.NodeMTTR <= 0 {
		return // never repaired; this node's fault process ends here
	}
	r := simulator.Time(in.nodeRNG.Exp(float64(in.Prof.NodeMTTR)))
	if r < simulator.Second {
		r = simulator.Second
	}
	in.M.Eng.AfterDaemon(r, "fault-repair", func(t simulator.Time) {
		if in.M.RepairNode(id, t) {
			in.Repairs.Inc()
			in.trace(t, "repair %s", in.M.Cl.Nodes[id].Name)
		}
		in.scheduleCrash(id)
	})
}

// scheduleOutage arms the next telemetry outage Exp(SensorMTBF) from now.
func (in *Injector) scheduleOutage() {
	d := simulator.Time(in.sensorRNG.Exp(float64(in.Prof.SensorMTBF)))
	in.M.Eng.AfterDaemon(d, "fault-sensor-down", func(now simulator.Time) {
		stuck := in.Prof.SensorStuckProb > 0 &&
			in.sensorRNG.Float64() < in.Prof.SensorStuckProb
		in.M.Tel.SetOutage(true, stuck)
		in.SensorOutages.Inc()
		kind := "dropout"
		if stuck {
			kind = "stuck"
		}
		in.trace(now, "sensor outage (%s)", kind)
		dur := simulator.Time(in.sensorRNG.Exp(float64(in.Prof.SensorMTTR)))
		if dur < simulator.Second {
			dur = simulator.Second
		}
		in.M.Eng.AfterDaemon(dur, "fault-sensor-up", func(t simulator.Time) {
			in.M.Tel.SetOutage(false, false)
			in.trace(t, "sensor restored")
			in.scheduleOutage()
		})
	})
}

// Summary renders a one-line digest of everything injected.
func (in *Injector) Summary() string {
	return fmt.Sprintf("crashes=%d repairs=%d sensor-outages=%d act-fail=%d act-retry=%d act-abandon=%d",
		in.Crashes.Value(), in.Repairs.Value(), in.SensorOutages.Value(),
		in.M.Ctrl.ActuationFailures.Value(), in.M.Ctrl.ActuationRetries.Value(), in.M.Ctrl.ActuationAbandoned.Value())
}
