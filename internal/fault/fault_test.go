package fault

import (
	"fmt"
	"strings"
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// moderate is a fault profile aggressive enough to exercise every class in
// a short run.
var moderate = Profile{
	NodeMTBF:          2 * simulator.Day,
	NodeMTTR:          30 * simulator.Minute,
	SensorMTBF:        12 * simulator.Hour,
	SensorMTTR:        10 * simulator.Minute,
	SensorStuckProb:   0.5,
	ActuationFailProb: 0.2,
}

// run executes a fixed workload under prof and returns a fingerprint of
// everything observable: the injector trace, its counters, and the
// manager's outcome metrics.
func run(t *testing.T, seed uint64, prof Profile, inject bool) (string, *core.Manager) {
	t.Helper()
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      seed,
	})
	js := workload.NewGenerator(workload.DefaultSpec(), seed+101).Generate(120)
	for _, j := range js {
		if err := m.Submit(j, j.Submit); err != nil {
			t.Fatal(err)
		}
	}
	var in *Injector
	if inject {
		in = New(m, prof, seed^0xfa0175)
		in.Start()
	}
	m.Run(20 * simulator.Day)
	fp := fmt.Sprintf("completed=%d killed=%d failures=%d requeues=%d waitsum=%.6f energy=%.3f",
		m.Metrics.Completed, m.Metrics.Killed,
		m.Metrics.NodeFailures, m.Metrics.Requeues,
		m.Metrics.Waits.Sum(), m.Pw.TotalEnergy())
	if in != nil {
		fp += "\n" + in.Summary() + "\n" + strings.Join(in.Trace, "\n")
	}
	return fp, m
}

func TestInjectorDeterminism(t *testing.T) {
	a, _ := run(t, 42, moderate, true)
	b, _ := run(t, 42, moderate, true)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
	c, _ := run(t, 43, moderate, true)
	if a == c {
		t.Fatal("different seeds produced identical traces and metrics")
	}
	if !strings.Contains(a, "crash") || !strings.Contains(a, "repair") || !strings.Contains(a, "sensor outage") {
		t.Fatalf("moderate profile exercised too little:\n%s", a)
	}
}

func TestZeroProfileLeavesRunUntouched(t *testing.T) {
	base, _ := run(t, 7, Profile{}, false)
	zero, mz := run(t, 7, Profile{}, true)
	// The injector line is empty for a zero profile; strip it.
	zeroHead := strings.SplitN(zero, "\n", 2)[0]
	if base != zeroHead {
		t.Fatalf("zero-profile injector perturbed the run:\nbase: %s\nzero: %s", base, zeroHead)
	}
	if mz.Metrics.NodeFailures != 0 || mz.Ctrl.ActuationFailures.Value() != 0 {
		t.Fatal("zero profile injected faults")
	}
}

func TestInjectorCountsAndRepairs(t *testing.T) {
	fp, m := run(t, 11, moderate, true)
	if m.Metrics.NodeFailures == 0 {
		t.Fatalf("no node failures under moderate profile:\n%s", fp)
	}
	down := 0
	for _, n := range m.Cl.Nodes {
		if n.State == cluster.StateDown {
			down++
		}
	}
	// With MTTR 30 min against MTBF 2 days, most of the machine must be up.
	if down > m.Cl.Size()/4 {
		t.Fatalf("%d/%d nodes down at end of run", down, m.Cl.Size())
	}
}

func TestInjectorStartIdempotent(t *testing.T) {
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      1,
	})
	in := New(m, moderate, 5)
	in.Start()
	pending := m.Eng.Pending()
	in.Start()
	if m.Eng.Pending() != pending {
		t.Fatal("double Start scheduled duplicate fault processes")
	}
}

func TestProfileZero(t *testing.T) {
	if !(Profile{}).Zero() {
		t.Fatal("empty profile not Zero")
	}
	if moderate.Zero() {
		t.Fatal("moderate profile reported Zero")
	}
}
