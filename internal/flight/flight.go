// Package flight is the service tier's black-box recorder: a bounded
// in-memory ring of recent service and run events (admissions, sheds,
// dispatches, terminals, HTTP request starts/ends, journal trouble)
// that costs a mutex and a ring slot per event while everything is
// healthy, and is dumped to a JSONL file when something is not —
// panic, SIGQUIT, or the journal failing closed. Post-mortems of
// kill-restart and stampede incidents read the dump instead of
// reproducing the incident.
//
// All methods are safe on a nil *Recorder (no-ops), so callers thread
// an optional recorder the same way they thread an optional tracer.
// Unlike the simulation-side observability, flight events carry wall
// timestamps and arrive from many goroutines — the recorder is fully
// synchronized and deliberately lives outside the deterministic
// report path.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Event is one ring entry. Fields are fixed and flat so a dump line
// greps cleanly: kind is a short stable verb ("http-start", "shed",
// "run-terminal", ...), Run and Req tie the event to a hosted run and
// the edge request that caused it, and Detail is free text.
type Event struct {
	Seq    int64  `json:"seq"`
	UnixMS int64  `json:"unix_ms"`
	Kind   string `json:"kind"`
	Run    string `json:"run,omitempty"`
	Req    string `json:"req,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Recorder is the bounded ring. Create with New; the zero value is
// not usable (a disabled recorder is a nil pointer).
type Recorder struct {
	mu   sync.Mutex
	buf  []Event // ring storage, len == cap once full
	next int     // ring write index
	full bool
	seq  int64
	now  func() time.Time

	// inflight tracks requests that have started but not finished, so
	// a dump names exactly the requests that were on the wire at the
	// instant of the incident.
	inflight map[string]string // req ID -> "VERB /path"
}

// DefaultCap bounds the ring when New is given a non-positive size.
const DefaultCap = 4096

// New returns a recorder holding the last cap events (DefaultCap if
// cap <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{
		buf:      make([]Event, 0, capacity),
		now:      time.Now,
		inflight: make(map[string]string),
	}
}

// SetClock overrides the wall clock, for tests.
func (r *Recorder) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

// Note appends one event to the ring, evicting the oldest when full.
func (r *Recorder) Note(kind, run, req, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.noteLocked(kind, run, req, detail)
	r.mu.Unlock()
}

func (r *Recorder) noteLocked(kind, run, req, detail string) {
	r.seq++
	ev := Event{Seq: r.seq, UnixMS: r.now().UnixMilli(), Kind: kind, Run: run, Req: req, Detail: detail}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.full = true
}

// RequestStart records an edge request entering the service and marks
// it in flight until RequestEnd.
func (r *Recorder) RequestStart(req, what string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.inflight[req] = what
	r.noteLocked("http-start", "", req, what)
	r.mu.Unlock()
}

// RequestEnd closes an in-flight request.
func (r *Recorder) RequestEnd(req, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.inflight, req)
	r.noteLocked("http-end", "", req, detail)
	r.mu.Unlock()
}

// Events returns the ring contents oldest-first, plus one synthetic
// "inflight" event per request currently on the wire (sorted by
// request ID so dumps of the same state render identically).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf)+len(r.inflight))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	reqs := make([]string, 0, len(r.inflight))
	for id := range r.inflight {
		reqs = append(reqs, id)
	}
	sort.Strings(reqs)
	nowMS := r.now().UnixMilli()
	for _, id := range reqs {
		out = append(out, Event{UnixMS: nowMS, Kind: "inflight", Req: id, Detail: r.inflight[id]})
	}
	return out
}

// WriteTo streams the dump as JSONL: a header line with the reason
// and counts, then one line per event.
func (r *Recorder) WriteTo(w io.Writer, reason string) error {
	if r == nil {
		return nil
	}
	evs := r.Events()
	inflight := 0
	for _, ev := range evs {
		if ev.Kind == "inflight" {
			inflight++
		}
	}
	hdr := struct {
		BlackBox string `json:"black_box"`
		UnixMS   int64  `json:"unix_ms"`
		Events   int    `json:"events"`
		Inflight int    `json:"inflight"`
	}{reason, time.Now().UnixMilli(), len(evs), inflight}
	enc := json.NewEncoder(w)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// Dump writes the black box to path (atomically: tmp + rename, so a
// crash mid-dump never leaves a half-readable box where a good one
// could go). Dumping is idempotent — the ring is not cleared — and
// best-effort by design: callers are usually already handling a worse
// problem, so the error is returned for logging, never escalated.
func (r *Recorder) Dump(path, reason string) error {
	if r == nil || path == "" {
		return nil
	}
	tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.WriteTo(f, reason); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
