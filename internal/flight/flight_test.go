package flight

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Note("k", "", "", "")
	r.RequestStart("q1", "GET /")
	r.RequestEnd("q1", "200")
	r.SetClock(time.Now)
	if r.Events() != nil {
		t.Fatal("nil Events() should be nil")
	}
	if err := r.WriteTo(&bytes.Buffer{}, "x"); err != nil {
		t.Fatalf("nil WriteTo: %v", err)
	}
	if err := r.Dump("/nonexistent/should-not-be-written", "x"); err != nil {
		t.Fatalf("nil Dump: %v", err)
	}
}

func TestRingBoundsAndEvictsOldestFirst(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Note("tick", "", "", "")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.Seq != want {
			t.Fatalf("evs[%d].Seq = %d, want %d (oldest-first, newest retained)", i, ev.Seq, want)
		}
	}
}

func TestInflightRequestsAppearSorted(t *testing.T) {
	r := New(16)
	r.RequestStart("q2", "GET /runs")
	r.RequestStart("q1", "POST /runs")
	r.RequestEnd("q2", "200 runs")
	evs := r.Events()
	// Ring: http-start, http-start, http-end; then one synthetic
	// inflight for the still-open q1.
	var inflight []Event
	for _, ev := range evs {
		if ev.Kind == "inflight" {
			inflight = append(inflight, ev)
		}
	}
	if len(inflight) != 1 || inflight[0].Req != "q1" || inflight[0].Detail != "POST /runs" {
		t.Fatalf("inflight = %+v, want exactly q1 POST /runs", inflight)
	}
}

func TestWriteToEmitsParseableJSONL(t *testing.T) {
	r := New(8)
	r.SetClock(func() time.Time { return time.UnixMilli(1234) })
	r.Note("accepted", "r1", "q1", "acme cineca")
	r.RequestStart("q2", "GET /runs/r1")
	var buf bytes.Buffer
	if err := r.WriteTo(&buf, "test-dump"); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	var hdr struct {
		BlackBox string `json:"black_box"`
		Events   int    `json:"events"`
		Inflight int    `json:"inflight"`
	}
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatalf("header does not parse: %v\n%s", err, lines[0])
	}
	if hdr.BlackBox != "test-dump" || hdr.Inflight != 1 {
		t.Fatalf("header = %+v, want reason test-dump, 1 inflight", hdr)
	}
	if len(lines)-1 != hdr.Events {
		t.Fatalf("header claims %d events, file has %d lines after it", hdr.Events, len(lines)-1)
	}
	for i, line := range lines[1:] {
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("event line %d does not parse: %v\n%s", i, err, line)
		}
	}
}

func TestDumpIsAtomicAndIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blackbox.jsonl")
	r := New(8)
	r.Note("accepted", "r1", "q1", "")
	if err := r.Dump(path, "first"); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	// The ring is not cleared: a second dump still carries the event.
	if err := r.Dump(path, "second"); err != nil {
		t.Fatalf("second Dump: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	if !bytes.Contains(b, []byte(`"second"`)) || !bytes.Contains(b, []byte(`"accepted"`)) {
		t.Fatalf("dump missing reason or event:\n%s", b)
	}
	// No tmp litter.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("dump dir has %d entries, want 1 (tmp file left behind?)", len(ents))
	}
	// Empty path is a disabled black box, not an error.
	if err := r.Dump("", "ignored"); err != nil {
		t.Fatalf("Dump with empty path: %v", err)
	}
}

// TestConcurrentUse exercises the recorder from many goroutines; run
// with -race this is the synchronization check.
func TestConcurrentUse(t *testing.T) {
	r := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := string(rune('a'+g)) + "-req"
				r.RequestStart(id, "GET /")
				r.Note("tick", "", id, "")
				r.RequestEnd(id, "200")
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			r.Events()
			r.WriteTo(&bytes.Buffer{}, "race") //nolint:errcheck
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if evs := r.Events(); len(evs) != 64 {
		t.Fatalf("ring holds %d events, want full 64", len(evs))
	}
}
