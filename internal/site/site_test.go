package site

import (
	"testing"

	"epajsrm/internal/simulator"
)

func TestAllProfilesRun(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m, js, err := p.Build(42, 60)
			if err != nil {
				t.Fatal(err)
			}
			m.Run(7 * simulator.Day)
			done := m.Metrics.Completed + m.Metrics.Killed + m.Metrics.Cancelled
			if done == 0 {
				t.Fatalf("%s: nothing finished (queue=%d running=%d)", p.Name, m.Queue.Len(), m.RunningCount())
			}
			if m.Metrics.Completed < len(js)/3 {
				t.Fatalf("%s: only %d/%d completed in a week", p.Name, m.Metrics.Completed, len(js))
			}
			peak, _ := m.Pw.PeakPower()
			if peak <= 0 || peak > m.Pw.MaxPossiblePower()*1.001 {
				t.Fatalf("%s: implausible peak %.0f", p.Name, peak)
			}
			if m.Tel.ITStats.N() == 0 {
				t.Fatalf("%s: telemetry never sampled", p.Name)
			}
		})
	}
}

func TestProfileDeterminism(t *testing.T) {
	run := func() (int, float64) {
		p := KAUST()
		m, _, err := p.Build(7, 40)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(3 * simulator.Day)
		return m.Metrics.Completed, m.Pw.TotalEnergy()
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Fatalf("profile runs diverged: %d/%.0f vs %d/%.0f", c1, e1, c2, e2)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("kaust"); !ok {
		t.Fatal("kaust not found")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("phantom profile found")
	}
	names := map[string]bool{}
	for _, p := range All() {
		if names[p.Name] {
			t.Fatalf("duplicate profile name %s", p.Name)
		}
		names[p.Name] = true
		if p.Desc == "" {
			t.Fatalf("%s has no description", p.Name)
		}
	}
	if len(names) != 9 {
		t.Fatalf("profiles = %d, want 9 (the surveyed centers)", len(names))
	}
}

func TestKAUSTStaticCapsPresent(t *testing.T) {
	m, _, err := KAUST().Build(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped := 0
	for _, n := range m.Cl.Nodes {
		if n.CapW == 270 {
			capped++
		}
	}
	// 70 % of 256 = 179 (one side of int truncation).
	if capped < 175 || capped > 180 {
		t.Fatalf("capped nodes = %d, want ~179", capped)
	}
}

func TestRIKENHoldsPowerLimit(t *testing.T) {
	p := RIKEN()
	m, _, err := p.Build(3, 120)
	if err != nil {
		t.Fatal(err)
	}
	maxP := 0.0
	stop := m.Eng.Every(simulator.Minute, "probe", func(simulator.Time) {
		if v := m.Pw.TotalPower(); v > maxP {
			maxP = v
		}
	})
	defer stop()
	m.Run(7 * simulator.Day)
	// The emergency limit is 55 kW; brief overshoot before a kill is
	// possible but the probe-level peak should stay near it.
	if maxP > 55e3*1.10 {
		t.Fatalf("RIKEN power reached %.0f, >10%% over the 55 kW limit", maxP)
	}
}

func TestTrinitySystemCapInstalled(t *testing.T) {
	m, _, err := Trinity().Build(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ctrl.SystemCapW != 70e3 {
		t.Fatalf("system cap = %f", m.Ctrl.SystemCapW)
	}
	for _, n := range m.Cl.Nodes {
		if n.CapW <= 0 {
			t.Fatalf("node %d uncapped under a system-wide cap", n.ID)
		}
	}
}
