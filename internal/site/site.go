// Package site encodes the nine surveyed centers as executable simulation
// profiles: a scaled-down cluster, a workload shaped like the site's Q3
// answers, a facility/climate, and the EPA JSRM policies the site's
// Table I/II rows describe. Scaling note (documented substitution): node
// counts are reduced ~50-100x from the production machines so a profile
// runs in milliseconds; power budgets scale with the node counts, so every
// control loop exercises the same regime it would at full scale.
package site

import (
	"fmt"

	"epajsrm/internal/checkpoint"
	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/esp"
	"epajsrm/internal/fault"
	"epajsrm/internal/jobs"
	"epajsrm/internal/monitor"
	"epajsrm/internal/policy"
	"epajsrm/internal/power"
	"epajsrm/internal/predict"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// Profile is one center's executable configuration.
type Profile struct {
	Name string
	Desc string

	Cluster  cluster.Config
	Model    power.NodeModel
	VarSigma float64
	Facility *power.Facility
	Workload workload.Spec
	// Attach wires the site's policies onto a freshly built manager and
	// returns any auxiliary state experiments may want to inspect.
	Attach func(m *core.Manager) []core.Policy
	// Faults, when non-nil, attaches a fault injector with this profile
	// (seeded from the build seed). The nine surveyed profiles leave it nil
	// — fault injection is opt-in per run, e.g. via epasim's flags.
	Faults *fault.Profile
	// Checkpoint configures the checkpoint/restart substrate. The nine
	// surveyed profiles leave it zero (disabled) — the survey's sites did
	// not report system-level checkpointing in production; enable it per
	// run via epasim's -ckpt-* flags.
	Checkpoint checkpoint.Config
}

// Build constructs the manager for a profile and submits n jobs from its
// workload generator, all seeded deterministically.
func (p Profile) Build(seed uint64, n int) (*core.Manager, []*jobs.Job, error) {
	m := core.NewManager(core.Options{
		Cluster:    p.Cluster,
		NodeModel:  p.Model,
		VarSigma:   p.VarSigma,
		Seed:       seed,
		Scheduler:  sched.EASY{},
		Facility:   p.Facility,
		Checkpoint: p.Checkpoint,
	})
	if p.Attach != nil {
		for _, pol := range p.Attach(m) {
			m.Use(pol)
		}
	}
	if p.Faults != nil && !p.Faults.Zero() {
		fault.New(m, *p.Faults, seed^0xfa17).Start()
	}
	gen := workload.NewGenerator(p.Workload, seed^0x5eed)
	js := gen.Generate(n)
	for _, j := range js {
		if err := m.Submit(j, j.Submit); err != nil {
			return nil, nil, fmt.Errorf("site %s: %w", p.Name, err)
		}
	}
	return m, js, nil
}

// All returns the nine profiles in the paper's order.
func All() []Profile {
	return []Profile{
		RIKEN(), TokyoTech(), CEA(), KAUST(), LRZ(),
		STFC(), Trinity(), CINECA(), JCAHPC(),
	}
}

// byName helps the CLI look profiles up.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// RIKEN models the K-computer site: hard site power limit, automated
// emergency kills, temperature-based pre-run power estimates, and grid vs
// gas-turbine sourcing.
func RIKEN() Profile {
	fac := power.DefaultFacility()
	fac.Climate = power.Climate{MeanC: 16, SeasonAmpC: 9, DailyAmpC: 4}
	return Profile{
		Name: "riken",
		Desc: "RIKEN (Japan): emergency job killing at the power limit, temperature-based pre-run power estimates, grid/gas-turbine integration",
		Cluster: cluster.Config{
			Name: "kcomp", Nodes: 256, NodesPerRack: 32, RacksPerPDU: 2, PDUsPerChiller: 2,
			Sockets: 1, CoresPerSocket: 8, MemGB: 16, Arch: "sparc64",
			BootDelay: 5 * simulator.Minute, ShutdownDelay: 2 * simulator.Minute,
		},
		Model:    power.NodeModel{OffW: 10, BootW: 80, IdleW: 60, MaxW: 240, Alpha: 3, MinFrac: 0.5},
		VarSigma: 0.04,
		Facility: fac,
		Workload: workload.Spec{
			ArrivalMeanSec: 240, MinNodes: 1, MaxNodes: 128, CapabilityFrac: 0.30,
			RuntimeMedianSec: 5400, RuntimeSigma: 1.1, WalltimeFactorMax: 3, Users: 30,
		},
		Attach: func(m *core.Manager) []core.Policy {
			// Temperature-adjusted tag-history predictor feeds the manager's
			// pre-run estimates (RIKEN's production capability).
			th := predict.NewTagHistory(200, 8)
			ta := &predict.TempAdjusted{
				Base:      th,
				TempNow:   func() float64 { return fac.Climate.TempAt(m.Eng.Now()) },
				RefC:      16,
				PerDegree: 0.004,
			}
			core.UsePredictor(m, ta)
			prov := &esp.Provider{
				Tariff:            esp.PeakTariff(0.10, 0.22),
				TurbineCapW:       30e3,
				TurbineCostPerKWh: 0.15,
			}
			return []core.Policy{
				&policy.Emergency{LimitW: 55e3, PreRunGate: true},
				&policy.GridAware{Provider: prov, PeakMaxNodes: 64},
				// "3 days for large jobs each month": the window reserves
				// capability days; wide jobs may still run outside it.
				&policy.CapabilityWindow{WideNodes: 96, WindowDays: 3, MonthDays: 30},
				&policy.EnergyReport{},
			}
		},
	}
}

// TokyoTech models TSUBAME: boot-window power capping (summer only), idle
// node shutdown, per-job energy reports and efficiency marks.
func TokyoTech() Profile {
	fac := power.DefaultFacility()
	fac.Climate = power.Climate{MeanC: 17, SeasonAmpC: 11, DailyAmpC: 4}
	return Profile{
		Name: "tokyotech",
		Desc: "Tokyo Tech (Japan): boot/shutdown to hold a summer power cap over a ~30 min window without killing jobs; idle shutdown; user energy marks",
		Cluster: cluster.Config{
			Name: "tsubame", Nodes: 128, NodesPerRack: 16, RacksPerPDU: 2, PDUsPerChiller: 2,
			Sockets: 2, CoresPerSocket: 14, MemGB: 256, Arch: "x86_64+gpu",
			BootDelay: 4 * simulator.Minute, ShutdownDelay: 1 * simulator.Minute,
		},
		Model:    power.NodeModel{OffW: 20, BootW: 150, IdleW: 130, MaxW: 900, Alpha: 3, MinFrac: 0.5},
		VarSigma: 0.05,
		Facility: fac,
		Workload: workload.Spec{
			ArrivalMeanSec: 300, MinNodes: 1, MaxNodes: 32, CapabilityFrac: 0.10,
			RuntimeMedianSec: 3600, RuntimeSigma: 1.0, WalltimeFactorMax: 3, Users: 40,
		},
		Attach: func(m *core.Manager) []core.Policy {
			// The first rack hosts VMs ("uses virtual machines to split
			// compute nodes"), which the shutdown policies must not touch.
			for _, n := range m.Cl.Nodes {
				if n.Rack == 0 {
					n.VMHost = true
				}
			}
			return []core.Policy{
				&policy.BootWindowCap{CapW: 75e3, Window: 30 * simulator.Minute, SummerOnly: true},
				&policy.IdleShutdown{IdleAfter: 20 * simulator.Minute, MinSpare: 4},
				&policy.EnergyReport{},
			}
		},
	}
}

// CEA models the French site: SLURM layout logic for PDU/chiller
// maintenance and power-adaptive scheduling development.
func CEA() Profile {
	return Profile{
		Name: "cea",
		Desc: "CEA (France): layout-aware scheduling around PDU/chiller maintenance; power-adaptive SLURM development with BULL",
		Cluster: cluster.Config{
			Name: "curie", Nodes: 192, NodesPerRack: 24, RacksPerPDU: 2, PDUsPerChiller: 2,
			Sockets: 2, CoresPerSocket: 12, MemGB: 128, Arch: "x86_64",
			BootDelay: 3 * simulator.Minute, ShutdownDelay: 1 * simulator.Minute,
		},
		Model:    power.NodeModel{OffW: 12, BootW: 110, IdleW: 95, MaxW: 380, Alpha: 3, MinFrac: 0.5},
		VarSigma: 0.04,
		Facility: power.DefaultFacility(),
		Workload: workload.Spec{
			ArrivalMeanSec: 200, MinNodes: 1, MaxNodes: 64, CapabilityFrac: 0.20,
			RuntimeMedianSec: 4500, RuntimeSigma: 1.0, WalltimeFactorMax: 3, Users: 35,
		},
		Attach: func(m *core.Manager) []core.Policy {
			return []core.Policy{
				&policy.LayoutAware{Windows: []policy.MaintenanceWindow{
					{PDU: 1, Chiller: -1, From: 6 * simulator.Hour, Until: 12 * simulator.Hour},
					{PDU: -1, Chiller: 1, From: 30 * simulator.Hour, Until: 36 * simulator.Hour},
				}},
				&policy.DVFSBudget{BudgetW: 60e3, StartUnderBudget: true},
			}
		},
	}
}

// KAUST models Shaheen: the static 270 W cap on 70 % of nodes plus SLURM
// dynamic power management.
func KAUST() Profile {
	fac := power.DefaultFacility()
	fac.Climate = power.Climate{MeanC: 28, SeasonAmpC: 6, DailyAmpC: 6}
	return Profile{
		Name: "kaust",
		Desc: "KAUST (Saudi Arabia): static CAPMC caps (70% of nodes at 270 W) plus SLURM dynamic power management",
		Cluster: cluster.Config{
			Name: "shaheen", Nodes: 256, NodesPerRack: 32, RacksPerPDU: 2, PDUsPerChiller: 2,
			Sockets: 2, CoresPerSocket: 16, MemGB: 128, Arch: "x86_64",
			BootDelay: 3 * simulator.Minute, ShutdownDelay: 1 * simulator.Minute,
		},
		Model:    power.NodeModel{OffW: 15, BootW: 120, IdleW: 100, MaxW: 350, Alpha: 3, MinFrac: 0.5},
		VarSigma: 0.06,
		Facility: fac,
		Workload: workload.Spec{
			ArrivalMeanSec: 180, MinNodes: 1, MaxNodes: 64, CapabilityFrac: 0.25,
			RuntimeMedianSec: 3600, RuntimeSigma: 1.0, WalltimeFactorMax: 3, Users: 50,
		},
		Attach: func(m *core.Manager) []core.Policy {
			return []core.Policy{
				&policy.StaticCap{CapW: 270, UncappedFrac: 0.30, RouteHungry: true},
				&policy.EnergyReport{},
			}
		},
	}
}

// LRZ models SuperMUC: per-application frequency characterization with the
// administrator choosing energy-to-solution vs best performance.
func LRZ() Profile {
	return Profile{
		Name: "lrz",
		Desc: "LRZ (Germany): LoadLeveler/LSF-style energy-aware scheduling — first-run characterization, then per-app frequency under an admin goal",
		Cluster: cluster.Config{
			Name: "supermuc", Nodes: 128, NodesPerRack: 16, RacksPerPDU: 2, PDUsPerChiller: 2,
			Sockets: 2, CoresPerSocket: 8, MemGB: 32, Arch: "x86_64",
			BootDelay: 3 * simulator.Minute, ShutdownDelay: 1 * simulator.Minute,
		},
		Model:    power.NodeModel{OffW: 12, BootW: 100, IdleW: 85, MaxW: 320, Alpha: 3, MinFrac: 0.5},
		VarSigma: 0.03,
		Facility: power.DefaultFacility(),
		Workload: workload.Spec{
			ArrivalMeanSec: 240, MinNodes: 1, MaxNodes: 32, CapabilityFrac: 0.15,
			RuntimeMedianSec: 5400, RuntimeSigma: 0.9, WalltimeFactorMax: 3, Users: 60,
		},
		Attach: func(m *core.Manager) []core.Policy {
			return []core.Policy{
				&policy.EnergyTag{Goal: policy.GoalEnergyToSolution, MaxSlowdown: 1.25},
				&policy.EnergyReport{},
			}
		},
	}
}

// STFC models the Hartree Centre: continuous multi-level monitoring plus
// job-level user power reporting.
func STFC() Profile {
	return Profile{
		Name: "stfc",
		Desc: "STFC Hartree (UK): continuous power/energy monitoring at data center, machine and job levels; user consumption reports",
		Cluster: cluster.Config{
			Name: "hartree", Nodes: 90, NodesPerRack: 18, RacksPerPDU: 1, PDUsPerChiller: 5,
			Sockets: 2, CoresPerSocket: 12, MemGB: 128, Arch: "x86_64",
			BootDelay: 3 * simulator.Minute, ShutdownDelay: 1 * simulator.Minute,
		},
		Model:    power.NodeModel{OffW: 12, BootW: 100, IdleW: 90, MaxW: 330, Alpha: 3, MinFrac: 0.5},
		VarSigma: 0.03,
		Facility: power.DefaultFacility(),
		Workload: workload.Spec{
			ArrivalMeanSec: 300, MinNodes: 1, MaxNodes: 16, CapabilityFrac: 0.10,
			RuntimeMedianSec: 2700, RuntimeSigma: 1.0, WalltimeFactorMax: 3, Users: 25,
		},
		Attach: func(m *core.Manager) []core.Policy {
			// STFC's production capability is the monitoring itself:
			// continuous collection at data center, machine and job levels.
			monitor.NewCollector(m.Cl, m.Pw, monitor.Options{}).Start(m.Eng)
			return []core.Policy{&policy.EnergyReport{}}
		},
	}
}

// Trinity models the LANL+Sandia ACES machine: CAPMC out-of-band capping
// with administrator-set system-wide caps.
func Trinity() Profile {
	return Profile{
		Name: "trinity",
		Desc: "Trinity/LANL+Sandia (US): CAPMC out-of-band system-wide and node-level power caps",
		Cluster: cluster.Config{
			Name: "trinity", Nodes: 256, NodesPerRack: 32, RacksPerPDU: 2, PDUsPerChiller: 2,
			Sockets: 2, CoresPerSocket: 16, MemGB: 128, Arch: "x86_64",
			BootDelay: 3 * simulator.Minute, ShutdownDelay: 1 * simulator.Minute,
		},
		Model:    power.NodeModel{OffW: 15, BootW: 130, IdleW: 110, MaxW: 400, Alpha: 3, MinFrac: 0.5},
		VarSigma: 0.05,
		Facility: power.DefaultFacility(),
		Workload: workload.Spec{
			ArrivalMeanSec: 200, MinNodes: 2, MaxNodes: 128, CapabilityFrac: 0.35,
			RuntimeMedianSec: 7200, RuntimeSigma: 1.0, WalltimeFactorMax: 3, Users: 20,
		},
		Attach: func(m *core.Manager) []core.Policy {
			// An administrator applies a system-wide cap at attach time via
			// the out-of-band controller; the GroupCap policy keeps the
			// manual-response interface available.
			if err := m.Ctrl.SetSystemCap(70e3); err != nil {
				panic(err)
			}
			return []core.Policy{&policy.GroupCap{PerNodeW: map[int]float64{}}}
		},
	}
}

// CINECA models the Bologna site: model-based per-job power prediction
// (with the University of Bologna) feeding power-aware SLURM development.
func CINECA() Profile {
	return Profile{
		Name: "cineca",
		Desc: "CINECA (Italy): predictive per-job power models from scalable monitoring, feeding EPA scheduling in SLURM/PBSPro",
		Cluster: cluster.Config{
			Name: "eurora", Nodes: 64, NodesPerRack: 16, RacksPerPDU: 2, PDUsPerChiller: 2,
			Sockets: 2, CoresPerSocket: 8, MemGB: 32, Arch: "x86_64+mic",
			BootDelay: 3 * simulator.Minute, ShutdownDelay: 1 * simulator.Minute,
		},
		Model:    power.NodeModel{OffW: 10, BootW: 90, IdleW: 70, MaxW: 300, Alpha: 3, MinFrac: 0.5},
		VarSigma: 0.05,
		Facility: power.DefaultFacility(),
		Workload: workload.Spec{
			ArrivalMeanSec: 240, MinNodes: 1, MaxNodes: 16, CapabilityFrac: 0.10,
			RuntimeMedianSec: 1800, RuntimeSigma: 1.1, WalltimeFactorMax: 3, Users: 30,
		},
		Attach: func(m *core.Manager) []core.Policy {
			core.UsePredictor(m, predict.NewRegression(180))
			// Scalable power monitoring feeds the predictive models
			// (CINECA + University of Bologna; the Examon lineage).
			monitor.NewCollector(m.Cl, m.Pw, monitor.Options{}).Start(m.Eng)
			return []core.Policy{
				&policy.DVFSBudget{BudgetW: 14e3, StartUnderBudget: true},
				&policy.EnergyReport{},
			}
		},
	}
}

// JCAHPC models Oakforest-PACS: group power caps via the resource manager
// and post-job energy reports.
func JCAHPC() Profile {
	return Profile{
		Name: "jcahpc",
		Desc: "JCAHPC (Japan): rack-group power caps via the resource manager (Fujitsu), manual emergency caps, post-job energy reports",
		Cluster: cluster.Config{
			Name: "ofp", Nodes: 128, NodesPerRack: 16, RacksPerPDU: 2, PDUsPerChiller: 2,
			Sockets: 1, CoresPerSocket: 68, MemGB: 96, Arch: "knl",
			BootDelay: 4 * simulator.Minute, ShutdownDelay: 1 * simulator.Minute,
		},
		Model:    power.NodeModel{OffW: 12, BootW: 100, IdleW: 90, MaxW: 270, Alpha: 3, MinFrac: 0.5},
		VarSigma: 0.05,
		Facility: power.DefaultFacility(),
		Workload: workload.Spec{
			ArrivalMeanSec: 240, MinNodes: 1, MaxNodes: 64, CapabilityFrac: 0.20,
			RuntimeMedianSec: 3600, RuntimeSigma: 1.0, WalltimeFactorMax: 3, Users: 40,
		},
		Attach: func(m *core.Manager) []core.Policy {
			caps := map[int]float64{}
			for r := 0; r < 4; r++ { // cap the first four racks
				caps[r] = 220
			}
			return []core.Policy{
				&policy.GroupCap{PerNodeW: caps},
				&policy.EnergyReport{},
			}
		},
	}
}
