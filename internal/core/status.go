package core

import (
	"fmt"
	"sort"
	"strings"

	"epajsrm/internal/cluster"
	"epajsrm/internal/simulator"
)

// Status renders the live system state the way an operator's squeue/sinfo
// pair would — Q3(a)'s "what is running right now, or what does a typical
// snapshot look like?" as a function.
func (m *Manager) Status() string {
	now := m.Eng.Now()
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s @ %s ===\n", m.Cl.Cfg.Name, now)

	// Node states.
	states := []cluster.NodeState{
		cluster.StateIdle, cluster.StateBusy, cluster.StateOff,
		cluster.StateBooting, cluster.StateShuttingDown,
		cluster.StateDraining, cluster.StateDown,
	}
	fmt.Fprintf(&b, "nodes:")
	for _, s := range states {
		if k := m.Cl.CountState(s); k > 0 {
			fmt.Fprintf(&b, " %d %s", k, s)
		}
	}
	fmt.Fprintf(&b, " (of %d)\n", m.Cl.Size())
	fmt.Fprintf(&b, "power: %.1f kW now, %.1f kW peak; %.2f MWh consumed\n",
		m.Pw.TotalPower()/1000, func() float64 { p, _ := m.Pw.PeakPower(); return p }()/1000,
		m.Pw.TotalEnergy()/3.6e9)

	// Running jobs, widest first.
	running := m.Running()
	sort.Slice(running, func(i, j int) bool {
		if running[i].Nodes != running[j].Nodes {
			return running[i].Nodes > running[j].Nodes
		}
		return running[i].ID < running[j].ID
	})
	fmt.Fprintf(&b, "running (%d):\n", len(running))
	for i, j := range running {
		if i >= 10 {
			fmt.Fprintf(&b, "  ... and %d more\n", len(running)-10)
			break
		}
		frac := m.Pw.JobFrac(j.ID)
		elapsed := now - j.Start
		fmt.Fprintf(&b, "  job %-6d %-8s %-10s %3d nodes  %s elapsed  f=%.2f  %.1f kWh\n",
			j.ID, j.User, j.Tag, j.Nodes, elapsed, frac, m.Pw.JobEnergy(j.ID)/3.6e6)
	}

	// Queue backlog — Q3(b).
	queued := m.Queue.Jobs()
	demand := m.Queue.TotalNodeDemand()
	fmt.Fprintf(&b, "queued (%d jobs, %d nodes demanded):\n", len(queued), demand)
	for i, j := range queued {
		if i >= 10 {
			fmt.Fprintf(&b, "  ... and %d more\n", len(queued)-10)
			break
		}
		fmt.Fprintf(&b, "  job %-6d %-8s %3d nodes  wall %s  prio %d  waiting %s\n",
			j.ID, j.User, j.Nodes, j.Walltime, j.Priority, now-j.Submit)
	}
	_ = simulator.Time(0)
	return b.String()
}
