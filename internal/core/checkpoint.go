package core

import (
	"sort"

	"epajsrm/internal/prof"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
)

// runPhase is where a running job is in its checkpoint lifecycle. The job
// holds its nodes in every phase; it makes compute progress only while
// phaseComputing.
type runPhase int

const (
	// phaseComputing: normal execution, finish event armed.
	phaseComputing runPhase = iota
	// phaseCkptWrite: a periodic checkpoint image is being written; the
	// image becomes durable only when the write completes.
	phaseCkptWrite
	// phaseRestore: the job is reading its image back after a restart;
	// compute resumes when the read completes.
	phaseRestore
	// phasePreemptDrain: a demand checkpoint is being written so the job
	// can vacate its nodes; the nodes release when the write commits.
	phasePreemptDrain
)

// ckptActive reports whether the checkpoint substrate governs this run.
// FreeCheckpoint bypasses it entirely (the legacy zero-cost idealization).
func (m *Manager) ckptActive() bool {
	return m.Ckpt != nil && m.Ckpt.Cfg.Enabled() && !m.FreeCheckpoint
}

// armCkptTimer schedules the next periodic checkpoint for r. The timer is
// a daemon event: pending future checkpoints never keep an unbounded run
// alive (in-flight checkpoint I/O does — see beginCheckpoint).
func (m *Manager) armCkptTimer(r *running) {
	if !m.ckptActive() || m.Ckpt.Cfg.Interval <= 0 {
		return
	}
	r.ckptTimer = m.Eng.AfterDaemon(m.Ckpt.Cfg.Interval, "ckpt-timer", func(t simulator.Time) {
		m.beginCheckpoint(r, t)
	})
}

// beginCheckpoint starts a periodic checkpoint write: progress is synced
// and frozen, the finish event is cancelled, the job draws I/O power, and
// a non-daemon completion event is scheduled — an in-flight write always
// runs to completion (or aborts on crash/kill), even in unbounded runs.
func (m *Manager) beginCheckpoint(r *running, now simulator.Time) {
	r.ckptTimer = simulator.Handle{}
	if m.runningJobs[r.job.ID] != r || r.phase != phaseComputing {
		return
	}
	if m.Prof != nil {
		m.Prof.Enter(prof.Checkpoint)
		defer m.Prof.Exit()
	}
	m.syncProgress(r, now)
	r.finish.Cancel()
	r.finish = simulator.Handle{}
	r.phase = phaseCkptWrite
	r.ioActive = true
	r.ioWork = r.job.WorkDone
	dur := m.Ckpt.BeginWrite(len(r.nodes), m.Cl.Cfg.MemGB)
	m.Pw.SetJobAux(now, r.job.ID, m.Ckpt.Cfg.IOPowerW)
	r.ioDone = m.Eng.After(dur, "ckpt-write", func(t simulator.Time) {
		m.commitCheckpoint(r, t, float64(dur))
	})
}

// commitCheckpoint makes the in-flight image durable. If a preemption
// converted the write into a drain, the job releases its nodes now;
// otherwise compute resumes and the next periodic checkpoint is armed.
func (m *Manager) commitCheckpoint(r *running, now simulator.Time, stall float64) {
	if m.Prof != nil {
		m.Prof.Enter(prof.Checkpoint)
		defer m.Prof.Exit()
	}
	r.ioDone = simulator.Handle{}
	r.ioActive = false
	m.Ckpt.EndIO()
	j := r.job
	j.CheckpointWork = r.ioWork
	j.Checkpoints++
	m.Metrics.CheckpointsWritten++
	m.Metrics.CheckpointWriteSeconds += stall
	if m.Tr != nil {
		name := "ckpt-write"
		if r.phase == phasePreemptDrain {
			name = "ckpt-drain"
		}
		m.Tr.Span(trace.PidJobs, int(j.ID), name, now-simulator.Time(stall), now,
			trace.Arg{Key: "work_captured_s", Val: r.ioWork})
	}
	for _, h := range m.hooks.checkpoints {
		h(m, j, CkptWritten, stall)
	}
	if r.phase == phasePreemptDrain {
		r.phase = phaseComputing
		m.requeuePreempted(r, now) // EndJob clears the aux draw with the loads
		return
	}
	m.Pw.SetJobAux(now, j.ID, 0)
	r.phase = phaseComputing
	m.scheduleFinish(r, now)
	m.armCkptTimer(r)
}

// beginRestore starts the restart read for a job resuming from its image.
// Called from startJob after the placement and power registration, before
// any finish event exists.
func (m *Manager) beginRestore(r *running, now simulator.Time) {
	if m.Prof != nil {
		m.Prof.Enter(prof.Checkpoint)
		defer m.Prof.Exit()
	}
	r.phase = phaseRestore
	r.ioActive = true
	dur := m.Ckpt.BeginRead(len(r.nodes), m.Cl.Cfg.MemGB)
	m.Pw.SetJobAux(now, r.job.ID, m.Ckpt.Cfg.IOPowerW)
	r.ioDone = m.Eng.After(dur, "ckpt-restore", func(t simulator.Time) {
		m.finishRestore(r, t, float64(dur))
	})
}

// finishRestore completes the restart read; compute resumes from the
// restored WorkDone. Restores interrupted by a crash or preemption never
// reach here and are not counted — only completed reads are.
func (m *Manager) finishRestore(r *running, now simulator.Time, stall float64) {
	if m.Prof != nil {
		m.Prof.Enter(prof.Checkpoint)
		defer m.Prof.Exit()
	}
	r.ioDone = simulator.Handle{}
	r.ioActive = false
	m.Ckpt.EndIO()
	m.Pw.SetJobAux(now, r.job.ID, 0)
	m.Metrics.CheckpointRestores++
	m.Metrics.RestartReadSeconds += stall
	if m.Tr != nil {
		m.Tr.Span(trace.PidJobs, int(r.job.ID), "ckpt-restore", now-simulator.Time(stall), now,
			trace.Arg{Key: "resume_work_s", Val: r.job.WorkDone})
	}
	r.phase = phaseComputing
	r.lastSync = now
	r.job.LastProgress = now
	m.scheduleFinish(r, now)
	m.armCkptTimer(r)
	for _, h := range m.hooks.checkpoints {
		h(m, r.job, CkptRestored, stall)
	}
}

// preemptWithCheckpoint implements PreemptJob under an active substrate:
// the job drains through a demand-checkpoint write before vacating.
func (m *Manager) preemptWithCheckpoint(r *running, now simulator.Time) bool {
	if m.Prof != nil {
		m.Prof.Enter(prof.Checkpoint)
		defer m.Prof.Exit()
	}
	switch r.phase {
	case phaseRestore:
		// Nothing new has been computed and the durable image is intact:
		// abort the read and release immediately.
		m.cancelIO(r)
		m.requeuePreempted(r, now)
	case phaseCkptWrite:
		// A periodic write is already in flight — let it double as the
		// demand checkpoint; the nodes release when it commits.
		r.phase = phasePreemptDrain
	default:
		m.syncProgress(r, now)
		r.finish.Cancel()
		r.finish = simulator.Handle{}
		r.ckptTimer.Cancel()
		r.ckptTimer = simulator.Handle{}
		r.phase = phasePreemptDrain
		r.ioActive = true
		r.ioWork = r.job.WorkDone
		dur := m.Ckpt.BeginWrite(len(r.nodes), m.Cl.Cfg.MemGB)
		m.Pw.SetJobAux(now, r.job.ID, m.Ckpt.Cfg.IOPowerW)
		r.ioDone = m.Eng.After(dur, "ckpt-drain", func(t simulator.Time) {
			m.commitCheckpoint(r, t, float64(dur))
		})
	}
	return true
}

// PendingShedW estimates the IT power that will drop once in-flight
// preemption drains commit: for every job in phasePreemptDrain, the draw
// of its nodes above what the same nodes cost idle. Shedding policies
// subtract this before choosing more victims — a drain takes a checkpoint
// write to land, and a control loop that only watches instantaneous power
// would preempt the whole machine while the first drain is still writing.
// Iteration is ID-ordered so the float sum is deterministic.
func (m *Manager) PendingShedW() float64 {
	ids := make([]int64, 0, len(m.runningJobs))
	for id, r := range m.runningJobs {
		if r.phase == phasePreemptDrain {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	t := 0.0
	for _, id := range ids {
		r := m.runningJobs[id]
		shed := m.Pw.PowerOfNodes(r.nodes) - float64(len(r.nodes))*m.Pw.Model.IdleW
		if shed > 0 {
			t += shed
		}
	}
	return t
}

// cancelIO tears down r's checkpoint machinery: the pending periodic
// timer, and any in-flight write or read — which thereby never becomes
// durable (write) or counted (read). Callers that end the job rely on
// Pw.EndJob to clear the aux I/O draw along with the loads.
func (m *Manager) cancelIO(r *running) {
	r.ckptTimer.Cancel()
	r.ckptTimer = simulator.Handle{}
	if r.ioActive {
		r.ioDone.Cancel()
		r.ioDone = simulator.Handle{}
		r.ioActive = false
		m.Ckpt.EndIO()
	}
	r.phase = phaseComputing
}
