// Package core implements the EPA JSRM manager — the synthesis of a job
// scheduler and a resource manager with energy/power monitoring and control
// that Figure 1 of the paper depicts. The Manager owns the batch queue,
// drives the scheduling algorithm, performs node allocation and lifecycle
// control, meters energy per job, and exposes the hook surface the EPA
// policies (internal/policy) plug into.
package core

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"epajsrm/internal/alert"
	"epajsrm/internal/checkpoint"
	"epajsrm/internal/cluster"
	"epajsrm/internal/jobs"
	"epajsrm/internal/metrics"
	"epajsrm/internal/power"
	"epajsrm/internal/prof"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
	"epajsrm/internal/tsdb"
)

// running tracks one executing job.
type running struct {
	job      *jobs.Job
	nodes    []*cluster.Node
	finish   simulator.Handle
	curFrac  float64 // effective frequency fraction the finish event assumed
	commSlow float64 // placement-dependent communication slowdown (>= 1)
	lastSync simulator.Time

	// Checkpoint/restart phase machinery (see internal/core/checkpoint.go).
	// During any non-computing phase the job holds its nodes and draws
	// power but makes zero compute progress.
	phase     runPhase
	ioDone    simulator.Handle // pending checkpoint I/O completion
	ioActive  bool             // a Begin on m.Ckpt awaits its EndIO
	ioWork    float64          // WorkDone snapshot the in-flight write captures
	ckptTimer simulator.Handle // pending periodic-checkpoint trigger
}

// Manager is the EPA JSRM control point for one system.
type Manager struct {
	Eng   *simulator.Engine
	Cl    *cluster.Cluster
	Pw    *power.System
	Ctrl  *power.Controller
	Fac   *power.Facility
	Tel   *power.Telemetry
	Sched sched.Scheduler
	Queue *jobs.Queue

	// PowerEstimator predicts a job's per-node draw before it runs; the
	// default is the oracle (the job's true draw). Sites replace it with a
	// predictor from internal/predict — RIKEN estimates pre-run power from
	// temperature, CINECA from models built on monitoring data.
	PowerEstimator func(j *jobs.Job) float64

	// EnforceWalltime kills jobs that exceed their requested walltime in
	// wallclock terms — which DVFS slowdown can cause, one of the
	// "unintended consequences" Q7 asks about.
	EnforceWalltime bool

	// TopoPenaltyPerHop is the relative runtime stretch per topology hop of
	// placement span applied to a job's communication fraction: a job with
	// CommFrac c placed with span s runs its communication phases
	// (1 + TopoPenaltyPerHop*(s-1)) slower than on one rack. Survey Q6's
	// topology-aware allocation exists to shrink this term.
	TopoPenaltyPerHop float64

	// MaxRequeues bounds how many times a job that loses a node to a
	// failure is returned to the queue before it is killed instead. Without
	// a checkpoint substrate crashed jobs restart from scratch, so an
	// unbounded requeue policy would let a flaky node burn node-hours
	// forever; with checkpointing enabled the loss per crash is bounded but
	// the budget still caps how long a flaky node can thrash one job.
	MaxRequeues int

	// Ckpt is the checkpoint/restart substrate (always non-nil; disabled
	// unless Options.Checkpoint enables it). When active, jobs checkpoint
	// periodically, crashes roll back to the last durable image instead of
	// discarding all progress, and preemption pays a demand-checkpoint
	// drain before releasing nodes.
	Ckpt *checkpoint.Model

	// FreeCheckpoint restores the legacy idealization: PreemptJob saves and
	// resumes progress instantly at zero cost, bypassing the checkpoint
	// model entirely. Defaults to off — the honest default makes
	// uncheckpointed preemption lose progress like a crash does.
	FreeCheckpoint bool

	// Tr is the structured tracer for the whole control loop. Nil (the
	// default) disables tracing: every emission site is guarded by a
	// single nil-check, which is the entire hot-path cost of the
	// subsystem. Attach with AttachTracer, never by writing the field —
	// the controller, telemetry, and queue-entry bookkeeping must be wired
	// together.
	Tr *trace.Tracer

	// Reg is the unified metric registry: the run's counters (adopted from
	// the controller, telemetry, and fault injector), derived gauges over
	// Metrics, and the wait/energy histograms, all exportable as one
	// deterministic snapshot.
	Reg *metrics.Registry

	// Prof is the control loop's phase profiler. Nil (the default)
	// disables phase attribution; every site is guarded by a single
	// nil-check — the same zero-cost-when-off contract as Tr. Attach
	// with AttachProfiler, never by writing the field: the engine's
	// dispatch loop, the power system, and the telemetry sampler must
	// be wired to the same instance.
	Prof *prof.Profiler

	policies []Policy
	hooks    hooks

	// Hist is the virtual-time metric history. Nil (the default) disables
	// it; attach with AttachHistory, which installs the periodic sampling
	// daemon on the engine. Like Tr and Prof it observes, never steers —
	// a run with a history attached is byte-identical to one without.
	Hist *tsdb.Store

	// Watch is the SLO watchdog evaluated on the history's sampling
	// cadence. Nil disables it; attach with AttachWatchdog after
	// AttachHistory (the watchdog reads series the sampler writes).
	Watch *alert.Watchdog

	runningJobs map[int64]*running
	nextID      int64

	// trQueued records when each queued job (re-)entered the queue, for
	// queue-wait spans. Maintained only while Tr != nil.
	trQueued map[int64]simulator.Time

	// LastSchedPass is the virtual time of the most recent scheduling pass
	// — the control-loop liveness signal the ops /healthz endpoint reports
	// alongside telemetry age.
	LastSchedPass simulator.Time

	// RunEnded marks the run's accounting as closed (set by FinishRun).
	// The ops /healthz endpoint uses it to report a terminal "complete"
	// status instead of letting a finished run age into a spurious
	// telemetry-stale 503 while a lingering server keeps the final state
	// on the wire.
	RunEnded bool

	// SchedDefer, when positive, coalesces scheduling passes onto a
	// periodic grid: a TrySchedule call arms one pass at the next multiple
	// of SchedDefer instead of running inline, and every further call
	// before that pass fires is absorbed into it. At hollow-site scale a
	// million arrivals each triggering an O(queue + running) pass dominates
	// the run; on a 60 s grid the same workload schedules in ~10k passes.
	// Starts shift later by up to one grid step — a documented scale-mode
	// approximation. Zero (the default) keeps the event-exact behavior and
	// byte-identical reports. Set before the run starts and do not change
	// mid-run.
	SchedDefer simulator.Time
	schedArmed bool

	// Scheduling-pass scratch, reused across ticks so the hot path does not
	// reallocate the candidate list and running-jobs view every pass.
	candScratch []*jobs.Job
	runScratch  []*running
	viewScratch []sched.RunningJob

	Metrics Metrics
}

// Options configures a Manager.
type Options struct {
	Cluster   cluster.Config
	NodeModel power.NodeModel
	PStates   power.PStateTable
	VarSigma  float64
	Seed      uint64
	Scheduler sched.Scheduler
	Facility  *power.Facility
	Telemetry simulator.Time // sampling period; 0 = 30 s
	// Checkpoint configures the checkpoint/restart substrate; the zero
	// value leaves it disabled (legacy crash-discards-everything behavior).
	Checkpoint checkpoint.Config
	// Engine lets several managers share one virtual clock — required when
	// two systems coordinate (Tokyo Tech's TSUBAME2/3 facility budget
	// sharing). Nil creates a private engine.
	Engine *simulator.Engine
}

// NewManager assembles a complete system: cluster, power substrate,
// out-of-band controller, telemetry, scheduler, queue.
func NewManager(opt Options) *Manager {
	if opt.Scheduler == nil {
		opt.Scheduler = sched.EASY{}
	}
	if opt.PStates == nil {
		opt.PStates = power.DefaultPStates()
	}
	if opt.NodeModel == (power.NodeModel{}) {
		opt.NodeModel = power.DefaultNodeModel()
	}
	eng := opt.Engine
	if eng == nil {
		eng = simulator.NewEngine()
	}
	cl := cluster.New(opt.Cluster)
	rng := simulator.NewRNG(opt.Seed)
	pw := power.NewSystem(cl, opt.NodeModel, opt.PStates, opt.VarSigma, rng)
	m := &Manager{
		Eng:         eng,
		Cl:          cl,
		Pw:          pw,
		Ctrl:        power.NewController(eng, pw),
		Fac:         opt.Facility,
		Sched:       opt.Scheduler,
		Queue:       jobs.NewQueue("batch"),
		runningJobs: make(map[int64]*running),
	}
	m.PowerEstimator = func(j *jobs.Job) float64 { return j.PowerPerNodeW }
	m.TopoPenaltyPerHop = 0.05
	m.MaxRequeues = 2
	m.Ckpt = checkpoint.NewModel(opt.Checkpoint)
	m.Tel = power.NewTelemetry(pw, opt.Facility, opt.Telemetry, 0).Start(eng)
	// Cap actuations that succeed only after asynchronous retries change
	// job frequencies outside any policy's control flow; the controller
	// calls back so running jobs are re-timed at the new rate.
	m.Ctrl.OnDeferredApply = func(now simulator.Time) { m.RetimeAll(now) }
	m.Metrics.lastT = 0
	m.Reg = metrics.New()
	m.Reg.Register("telemetry.dropped", m.Tel.Dropped)
	m.Reg.Register("actuation.failures", m.Ctrl.ActuationFailures)
	m.Reg.Register("actuation.retries", m.Ctrl.ActuationRetries)
	m.Reg.Register("actuation.abandoned", m.Ctrl.ActuationAbandoned)
	m.Reg.GaugeFunc("power.total_energy_j", pw.TotalEnergy)
	m.Reg.GaugeFunc("power.attributed_energy_j", pw.AttributedEnergy)
	m.Reg.GaugeFunc("power.peak_w", func() float64 { p, _ := pw.PeakPower(); return p })
	// Live SLI gauges for the metric history and SLO watchdog:
	// instantaneous site power, the administrative cap, how far above the
	// cap the site sits right now, and telemetry staleness. All pure
	// reads — scrape- and sample-safe.
	m.Reg.GaugeFunc("power.total_w", pw.TotalPower)
	m.Reg.GaugeFunc("power.system_cap_w", func() float64 { return m.Ctrl.SystemCapW })
	m.Reg.GaugeFunc("power.cap_violation_w", func() float64 {
		if m.Ctrl.SystemCapW <= 0 {
			return 0
		}
		if over := pw.TotalPower() - m.Ctrl.SystemCapW; over > 0 {
			return over
		}
		return 0
	})
	m.Reg.GaugeFunc("telemetry.staleness_s", func() float64 { return m.Tel.Staleness(m.Eng.Now()) })
	m.Metrics.register(m.Reg)
	return m
}

// AttachTracer enables (or, with nil, disables) structured tracing across
// the manager's whole control loop: job lifecycle spans in core, actuation
// audits in the power controller, and sample/dropout events in telemetry.
// The fault injector and policies read m.Tr at fire time, so attaching
// after they are built still traces them. Call before or between runs, not
// mid-event.
func (m *Manager) AttachTracer(tr *trace.Tracer) {
	m.Tr = tr
	m.Ctrl.Tr = tr
	m.Tel.Tr = tr
	if m.Watch != nil {
		m.Watch.Tr = tr
	}
	if tr != nil && m.trQueued == nil {
		m.trQueued = make(map[int64]simulator.Time)
	}
}

// AttachHistory enables the virtual-time metric history: a daemon engine
// event samples every registry metric into h on h.Step() cadence (and
// runs the watchdog, if one is attached, against the fresh samples).
// Daemon events never keep an unbounded run alive and the sampler only
// reads, so attaching a history cannot perturb the simulation. Call
// before the run starts.
func (m *Manager) AttachHistory(h *tsdb.Store) {
	m.Hist = h
	if h == nil {
		return
	}
	m.Eng.Every(h.Step(), "tsdb-sample", func(now simulator.Time) {
		h.Sample(now)
		if m.Watch != nil {
			m.Watch.Eval(now)
		}
	})
}

// AttachWatchdog enables SLO rule evaluation over the attached history.
// Call after AttachHistory (the watchdog reads the store the sampler
// writes) and before the run starts. The watchdog inherits the
// manager's tracer for its alerts track.
func (m *Manager) AttachWatchdog(w *alert.Watchdog) {
	m.Watch = w
	if w != nil {
		w.Tr = m.Tr
	}
}

// AttachProfiler enables (or, with nil, disables) phase-attribution
// profiling across the control loop: the engine's dispatch loop, the
// manager's scheduling/job/checkpoint phases, power integration, and
// telemetry sampling all charge the same per-run profiler. When both
// p and m.Reg are non-nil the per-phase wall-time and call-count
// gauges are exported on the registry (once — re-attaching a second
// live profiler to the same registry panics on the duplicate names).
// Call before the run starts, never mid-event: an event body between
// Enter and Exit would charge a torn segment.
func (m *Manager) AttachProfiler(p *prof.Profiler) {
	m.Prof = p
	m.Eng.Prof = p
	m.Pw.Prof = p
	m.Tel.Prof = p
	if p != nil {
		p.Register(m.Reg)
	}
}

// Use attaches a policy. Policies must be attached before the run starts.
func (m *Manager) Use(p Policy) *Manager {
	m.policies = append(m.policies, p)
	p.Attach(m)
	return m
}

// NextJobID mints a fresh job ID.
func (m *Manager) NextJobID() int64 {
	m.nextID++
	return m.nextID
}

// Submit schedules job j to arrive at time at. The job must validate.
func (m *Manager) Submit(j *jobs.Job, at simulator.Time) error {
	if j.ID == 0 {
		j.ID = m.NextJobID()
	} else if j.ID > m.nextID {
		m.nextID = j.ID
	}
	if err := j.Validate(); err != nil {
		return err
	}
	if j.Nodes > m.Cl.Size() {
		return fmt.Errorf("core: job %d wants %d nodes, system has %d", j.ID, j.Nodes, m.Cl.Size())
	}
	_, err := m.Eng.At(at, "job-arrival", func(now simulator.Time) {
		m.arrive(j, now)
	})
	return err
}

func (m *Manager) arrive(j *jobs.Job, now simulator.Time) {
	j.Submit = now
	j.State = jobs.StateQueued
	m.Metrics.Submitted++
	if m.Tr != nil {
		m.Tr.SetThreadName(int(j.ID), fmt.Sprintf("job %d (%s)", j.ID, j.Tag))
		m.Tr.Instant(trace.PidJobs, int(j.ID), "submit", now,
			trace.Arg{Key: "nodes", Val: j.Nodes},
			trace.Arg{Key: "walltime_s", Val: int64(j.Walltime)})
	}
	for _, ad := range m.hooks.admit {
		if ok, reason := ad(m, j); !ok {
			j.State = jobs.StateCancelled
			j.KillReason = reason
			m.Metrics.Cancelled++
			if m.Tr != nil {
				m.Tr.Instant(trace.PidJobs, int(j.ID), "cancelled", now,
					trace.Arg{Key: "reason", Val: reason})
			}
			return
		}
	}
	m.Queue.Push(j)
	if m.Tr != nil {
		m.trQueued[j.ID] = now
	}
	m.TrySchedule(now)
}

// TrySchedule runs one scheduling pass. Policies call this after they change
// conditions (freeing budget, booting nodes, lifting maintenance). With
// SchedDefer set, the pass is deferred to the next grid instant instead
// (see the field comment); the armed event is a regular (non-daemon) event
// because it represents real pending work — queued jobs must not strand
// because only a scheduling tick remained.
func (m *Manager) TrySchedule(now simulator.Time) {
	if m.SchedDefer > 0 {
		if m.schedArmed {
			return
		}
		at := ((now + m.SchedDefer - 1) / m.SchedDefer) * m.SchedDefer
		if _, err := m.Eng.At(at, "sched-pass", func(t simulator.Time) {
			m.schedArmed = false
			m.schedNow(t)
		}); err == nil {
			m.schedArmed = true
		}
		return
	}
	m.schedNow(now)
}

func (m *Manager) schedNow(now simulator.Time) {
	for {
		started := m.schedulePass(now)
		if started == 0 {
			return
		}
	}
}

func (m *Manager) schedulePass(now simulator.Time) int {
	m.LastSchedPass = now
	if m.Prof != nil {
		m.Prof.Enter(prof.SchedPass)
		defer m.Prof.Exit()
	}
	// Read-only scan of the live queue slice; candidates are collected into
	// scratch before anything below can mutate the queue.
	all := m.Queue.All()
	if len(all) == 0 {
		return 0
	}
	// Candidates: jobs whose start gates are open this pass. The scratch
	// slices are detached while in use so a reentrant pass (a policy hook
	// calling TrySchedule mid-start) allocates fresh ones instead of
	// clobbering ours.
	cands := m.candScratch[:0]
	runs := m.runScratch[:0]
	view := m.viewScratch[:0]
	m.candScratch, m.runScratch, m.viewScratch = nil, nil, nil
	restore := func() { m.candScratch, m.runScratch, m.viewScratch = cands, runs, view }
	for _, j := range all {
		if m.gateOpen(j) {
			cands = append(cands, j)
		}
	}
	if len(cands) == 0 {
		restore()
		return 0
	}
	v := sched.View{
		Now:        now,
		TotalNodes: m.eligibleCapacity(),
		Queue:      cands,
		Prof:       m.Prof,
	}
	// Free nodes is job-independent only if no per-job node filters exist;
	// we expose the unfiltered pool size and re-validate per job at start.
	v.Free = m.Cl.AvailableCount(nil)
	// Build the running view in ID order (see Running for why the ordering
	// matters), reusing the scratch slices instead of allocating per pass.
	for _, r := range m.runningJobs {
		runs = append(runs, r)
	}
	// Non-reflective sort: this runs once per pass over every running job,
	// which at hollow-site scale is thousands of entries per pass.
	slices.SortFunc(runs, func(a, b *running) int { return cmp.Compare(a.job.ID, b.job.ID) })
	for _, r := range runs {
		view = append(view, sched.RunningJob{
			Job:         r.job,
			Nodes:       len(r.nodes),
			ExpectedEnd: m.expectedEnd(r),
		})
	}
	v.Running = view
	picked := m.pick(v, now)
	restore() // Pick neither retains nor aliases the view slices
	started := 0
	for _, j := range picked {
		if m.startJob(j, now) {
			started++
		}
	}
	return started
}

// pick runs the scheduling algorithm over the view. With a tracer
// attached and a Scheduler that can explain itself, every per-job decision
// lands on the scheduler track with the algorithm's own reason; otherwise
// this is exactly m.Sched.Pick — PickExplain with a nil recorder is
// contractually identical, so tracing can never change what starts.
func (m *Manager) pick(v sched.View, now simulator.Time) []*jobs.Job {
	if m.Tr != nil {
		if ex, ok := m.Sched.(sched.Explainer); ok {
			return ex.PickExplain(v, func(d sched.Decision) {
				m.Tr.Instant(trace.PidSched, 0, d.Reason, now,
					trace.Arg{Key: "job", Val: d.Job.ID},
					trace.Arg{Key: "nodes", Val: d.Job.Nodes},
					trace.Arg{Key: "picked", Val: d.Picked})
			})
		}
	}
	return m.Sched.Pick(v)
}

// eligibleFilter returns the node-eligibility predicate for job j, or nil
// when no policy registered a filter — the nil lets the cluster scans skip
// a closure call per node on the default path.
func (m *Manager) eligibleFilter(j *jobs.Job) func(*cluster.Node) bool {
	if len(m.hooks.filters) == 0 {
		return nil
	}
	return func(n *cluster.Node) bool { return m.nodeEligible(j, n) }
}

// eligibleCapacity counts nodes that could ever host work (not down, not in
// maintenance). The cluster maintains this count, so it is an O(1) read.
func (m *Manager) eligibleCapacity() int {
	return m.Cl.EligibleCount()
}

// expectedEnd is the scheduler-visible completion estimate: start +
// walltime (never ground truth), scaled by the job's current frequency.
func (m *Manager) expectedEnd(r *running) simulator.Time {
	wall := float64(r.job.Walltime)
	if r.curFrac > 0 && r.curFrac < 1 {
		wall = wall / r.curFrac
	}
	e := r.job.Start + simulator.Time(wall)
	if e <= m.Eng.Now() {
		e = m.Eng.Now() + 1
	}
	return e
}

func (m *Manager) startJob(j *jobs.Job, now simulator.Time) bool {
	// Re-check the start gates: earlier starts in the same pass may have
	// consumed the power headroom the gate was measuring.
	if !m.gateOpen(j) {
		return false
	}
	if m.Prof != nil {
		m.Prof.Enter(prof.Jobs)
		defer m.Prof.Exit()
	}
	// Moldable reshaping — but never for a resumed (checkpointed) job:
	// its WorkDone is measured against the shape it started with, and a
	// checkpoint image is tied to its process layout anyway.
	// The availability probe runs even with no shapers attached: node
	// filters may observe it (the layout experiment counts exclusions).
	if j.WorkDone == 0 {
		free := m.Cl.AvailableCount(m.eligibleFilter(j))
		for _, sh := range m.hooks.shapers {
			if cfg, ok := sh(m, j, free); ok {
				j.Nodes = cfg.Nodes
				j.TrueRuntime = cfg.Runtime
			}
		}
	}
	nodes := m.Cl.AllocateWith(j.ID, j.Nodes, now,
		m.eligibleFilter(j),
		m.choosePlacement(j))
	if nodes == nil {
		return false
	}
	if !m.Queue.Remove(j.ID) {
		// Job vanished from the queue (cancelled between pick and start).
		m.Cl.Release(j.ID, now)
		return false
	}
	j.State = jobs.StateRunning
	j.Start = now
	j.FreqFrac = m.chooseFreq(j)
	// WorkDone is deliberately NOT reset: a preempted (checkpointed) job
	// resumes from its accumulated progress.
	j.LastProgress = now

	m.Pw.StartJob(now, j.ID, nodes, j.PowerPerNodeW, j.MemFrac, j.FreqFrac)
	r := &running{job: j, nodes: nodes, lastSync: now, commSlow: m.commSlowdown(j, nodes)}
	m.runningJobs[j.ID] = r
	m.Metrics.noteAlloc(now, len(nodes), m.Cl.Size())
	if m.Tr != nil {
		qAt, ok := m.trQueued[j.ID]
		if !ok {
			qAt = j.Submit
		}
		delete(m.trQueued, j.ID)
		m.Tr.Span(trace.PidJobs, int(j.ID), "queue-wait", qAt, now,
			trace.Arg{Key: "requeues", Val: j.Requeues},
			trace.Arg{Key: "system", Val: m.Cl.Cfg.Name})
		m.Tr.Instant(trace.PidJobs, int(j.ID), "dispatch", now,
			trace.Arg{Key: "nodes", Val: len(nodes)},
			trace.Arg{Key: "freq_frac", Val: j.FreqFrac},
			trace.Arg{Key: "resume_work_s", Val: j.WorkDone})
	}
	if m.ckptActive() && j.WorkDone > 0 {
		// Resuming from a durable image: the restart read is charged
		// before compute makes any progress.
		m.beginRestore(r, now)
	} else {
		m.scheduleFinish(r, now)
		m.armCkptTimer(r)
	}

	for _, h := range m.hooks.starts {
		h(m, j, nodes)
	}
	return true
}

// scheduleFinish (re)arms the completion event based on remaining work and
// the job's current effective frequency.
func (m *Manager) scheduleFinish(r *running, now simulator.Time) {
	r.finish.Cancel()
	frac := m.Pw.JobFrac(r.job.ID)
	r.curFrac = frac
	r.lastSync = now
	remainingWork := float64(r.job.TrueRuntime) - r.job.WorkDone
	if remainingWork < 0 {
		remainingWork = 0
	}
	slow := power.Slowdown(frac, r.job.MemFrac) * r.commSlow
	dur := simulator.Time(remainingWork*slow + 0.5)
	if dur < 1 && remainingWork > 0 {
		dur = 1
	}
	end := now + dur
	if m.EnforceWalltime {
		wallEnd := r.job.Start + r.job.Walltime
		if wallEnd < end {
			r.finish = m.Eng.After(wallEnd-now, "walltime-kill", func(t simulator.Time) {
				m.KillJob(r.job.ID, "walltime exceeded", t)
			})
			return
		}
	}
	r.finish = m.Eng.After(end-now, "job-finish", func(t simulator.Time) {
		m.finishJob(r.job.ID, t)
	})
}

// syncProgress brings WorkDone up to now at the rate the job has been
// running since lastSync. During checkpoint write/restore/drain phases the
// job is stalled in I/O: the clock advances but WorkDone does not.
func (m *Manager) syncProgress(r *running, now simulator.Time) {
	if r.phase != phaseComputing {
		r.lastSync = now
		return
	}
	dt := float64(now - r.lastSync)
	if dt <= 0 {
		return
	}
	slow := power.Slowdown(r.curFrac, r.job.MemFrac) * r.commSlow
	if slow <= 0 {
		slow = 1
	}
	r.job.WorkDone += dt / slow
	r.job.LastProgress = now
	r.lastSync = now
}

// RetimeJob must be called after anything changes a running job's effective
// frequency (cap changes, DVFS actuation, power sharing). It accounts
// progress at the old rate and re-arms the finish event at the new rate.
func (m *Manager) RetimeJob(id int64, now simulator.Time) {
	r := m.runningJobs[id]
	if r == nil {
		return
	}
	if r.phase != phaseComputing {
		// Stalled in checkpoint I/O: there is no finish event to re-arm.
		// The commit/restore path calls scheduleFinish with the then-current
		// frequency when compute resumes.
		return
	}
	m.syncProgress(r, now)
	m.scheduleFinish(r, now)
}

// RetimeAll retimes every running job — used after bulk cap changes. The
// order is deterministic (ID-sorted) because simultaneous finish events
// fire in scheduling order.
func (m *Manager) RetimeAll(now simulator.Time) {
	ids := make([]int64, 0, len(m.runningJobs))
	for id := range m.runningJobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		m.RetimeJob(id, now)
	}
}

// endStint closes one run stint's wallclock account; every path that takes
// a job off its nodes goes through here before overwriting or abandoning
// j.Start.
func (m *Manager) endStint(r *running, now simulator.Time) {
	r.job.RunSeconds += float64(now - r.job.Start)
}

// finalizeJobPower fills the job-level power account (energy, average and
// peak aggregate draw) from the power system's meter. Called when a job
// reaches a terminal state — the meter itself accumulates across stints.
func (m *Manager) finalizeJobPower(j *jobs.Job) {
	j.EnergyJ = m.Pw.JobEnergy(j.ID)
	j.PeakPowerW = m.Pw.JobPeakPower(j.ID)
	if j.RunSeconds > 0 {
		j.AvgPowerW = j.EnergyJ / j.RunSeconds
	}
}

// traceRunSpan emits the stint span for a job leaving its nodes.
func (m *Manager) traceRunSpan(r *running, now simulator.Time, outcome string, args ...trace.Arg) {
	if m.Tr == nil {
		return
	}
	as := make([]trace.Arg, 0, len(args)+3)
	as = append(as, trace.Arg{Key: "outcome", Val: outcome},
		trace.Arg{Key: "nodes", Val: len(r.nodes)},
		trace.Arg{Key: "system", Val: m.Cl.Cfg.Name})
	as = append(as, args...)
	m.Tr.Span(trace.PidJobs, int(r.job.ID), "run", r.job.Start, now, as...)
}

func (m *Manager) finishJob(id int64, now simulator.Time) {
	r := m.runningJobs[id]
	if r == nil {
		return
	}
	if m.Prof != nil {
		m.Prof.Enter(prof.Jobs)
		defer m.Prof.Exit()
	}
	m.syncProgress(r, now)
	m.cancelIO(r)
	delete(m.runningJobs, id)
	j := r.job
	j.State = jobs.StateCompleted
	j.End = now
	m.endStint(r, now)
	m.Pw.EndJob(now, id, r.nodes)
	m.finalizeJobPower(j)
	m.traceRunSpan(r, now, "completed",
		trace.Arg{Key: "energy_j", Val: j.EnergyJ},
		trace.Arg{Key: "avg_w", Val: j.AvgPowerW},
		trace.Arg{Key: "peak_w", Val: j.PeakPowerW})
	released := m.Cl.Release(id, now)
	m.finishDrains(released, now)
	m.Metrics.noteRelease(now, len(r.nodes), m.Cl.Size())
	m.Metrics.noteCompletion(j)
	for _, h := range m.hooks.ends {
		h(m, j)
	}
	m.TrySchedule(now)
}

// KillJob terminates a running job (emergency power response, walltime
// overrun). The job keeps its metered energy; its nodes free immediately.
func (m *Manager) KillJob(id int64, reason string, now simulator.Time) bool {
	r := m.runningJobs[id]
	if r == nil {
		return false
	}
	if m.Prof != nil {
		m.Prof.Enter(prof.Jobs)
		defer m.Prof.Exit()
	}
	m.syncProgress(r, now)
	r.finish.Cancel()
	m.cancelIO(r)
	// A kill discards everything the job had computed, checkpointed or not.
	lost := r.job.WorkDone * float64(len(r.nodes))
	m.Metrics.LostWorkSeconds += lost
	r.job.LostWorkSeconds += lost
	delete(m.runningJobs, id)
	j := r.job
	j.State = jobs.StateKilled
	j.KillReason = reason
	j.End = now
	m.endStint(r, now)
	m.Pw.EndJob(now, id, r.nodes)
	m.finalizeJobPower(j)
	m.traceRunSpan(r, now, "killed",
		trace.Arg{Key: "reason", Val: reason},
		trace.Arg{Key: "lost_node_s", Val: lost})
	released := m.Cl.Release(id, now)
	m.finishDrains(released, now)
	m.Metrics.noteRelease(now, len(r.nodes), m.Cl.Size())
	m.Metrics.noteKill(j)
	for _, h := range m.hooks.ends {
		h(m, j)
	}
	m.TrySchedule(now)
	return true
}

// PreemptJob removes a running job from its nodes and returns it to the
// queue. What it costs depends on the checkpoint substrate:
//
//   - Substrate active: the job pays a demand-checkpoint drain — it holds
//     its nodes (and draws I/O power) for the image write, then releases
//     them and later resumes from the image, paying the restart read. The
//     call returns true immediately; the release happens when the write
//     commits. Mid-restore preemption releases at once (the durable image
//     is intact); mid-write preemption lets the in-flight write double as
//     the drain.
//   - FreeCheckpoint: the legacy idealization — progress survives and the
//     nodes free instantly at zero cost.
//   - Neither: honest accounting. There is nothing to resume from, so
//     preemption discards all accumulated progress exactly like a crash
//     (LostWorkSeconds records the damage).
//
// Emergency power response can use this as a gentler actuator than RIKEN's
// automated killing where the software stack supports checkpoint/restart.
// Returns false if the job is not running or already draining.
func (m *Manager) PreemptJob(id int64, now simulator.Time) bool {
	r := m.runningJobs[id]
	if r == nil || r.phase == phasePreemptDrain {
		return false
	}
	if m.ckptActive() {
		return m.preemptWithCheckpoint(r, now)
	}
	m.syncProgress(r, now)
	r.finish.Cancel()
	j := r.job
	if !m.FreeCheckpoint {
		lost := j.WorkDone * float64(len(r.nodes))
		m.Metrics.LostWorkSeconds += lost
		j.LostWorkSeconds += lost
		j.WorkDone = 0
	}
	m.requeuePreempted(r, now)
	return true
}

// requeuePreempted is the shared tail of every preemption flavor: release
// the placement and put the job back in the queue with whatever WorkDone
// the caller decided survives.
func (m *Manager) requeuePreempted(r *running, now simulator.Time) {
	j := r.job
	delete(m.runningJobs, j.ID)
	j.State = jobs.StateQueued
	m.endStint(r, now)
	m.Pw.EndJob(now, j.ID, r.nodes)
	m.traceRunSpan(r, now, "preempted",
		trace.Arg{Key: "work_kept_s", Val: j.WorkDone})
	released := m.Cl.Release(j.ID, now)
	m.finishDrains(released, now)
	m.Metrics.noteRelease(now, len(r.nodes), m.Cl.Size())
	m.Metrics.Preemptions++
	m.Queue.Push(j)
	if m.Tr != nil {
		m.trQueued[j.ID] = now
	}
	m.TrySchedule(now)
}

// FailNode transitions a node to down — a crash, not an administrative
// drain. A job running on the node loses the node immediately: it is
// requeued from scratch while it has requeue budget left (MaxRequeues) and
// killed once the budget is exhausted, with the reason recorded. Returns
// false if the node is already down. Repair brings the node back.
func (m *Manager) FailNode(id int, now simulator.Time) bool {
	if id < 0 || id >= m.Cl.Size() {
		return false
	}
	n := m.Cl.Nodes[id]
	if n.State == cluster.StateDown {
		return false
	}
	jobID := n.JobID
	m.Cl.SetDown(n, now)
	m.Pw.RefreshNode(now, n)
	m.Metrics.NodeFailures++
	if m.Tr != nil {
		m.Tr.Instant(trace.PidFault, 0, "node-down", now,
			trace.Arg{Key: "node", Val: n.Name}, trace.Arg{Key: "job", Val: jobID})
	}
	if jobID != 0 {
		m.failJob(jobID, n, now)
	}
	m.TrySchedule(now)
	return true
}

// RepairNode returns a down node to service and immediately offers it to
// the queue. Returns false if the node was not down.
func (m *Manager) RepairNode(id int, now simulator.Time) bool {
	if id < 0 || id >= m.Cl.Size() {
		return false
	}
	n := m.Cl.Nodes[id]
	if !m.Cl.Repair(n, now) {
		return false
	}
	m.Pw.RefreshNode(now, n)
	if m.Tr != nil {
		m.Tr.Instant(trace.PidFault, 0, "node-up", now,
			trace.Arg{Key: "node", Val: n.Name})
	}
	m.TrySchedule(now)
	return true
}

// failJob handles a running job that just lost node `failed`: release its
// placement (the failed node stays down), then requeue or kill. With the
// checkpoint substrate active the job rolls back to its last durable
// image; without it a crash discards all progress. A crash mid-checkpoint
// or mid-restore aborts the I/O — a half-written image is never durable,
// so the rollback target is always the previous completed checkpoint.
func (m *Manager) failJob(id int64, failed *cluster.Node, now simulator.Time) {
	r := m.runningJobs[id]
	if r == nil {
		return
	}
	if m.Prof != nil {
		m.Prof.Enter(prof.Jobs)
		defer m.Prof.Exit()
	}
	m.syncProgress(r, now)
	r.finish.Cancel()
	m.cancelIO(r)
	delete(m.runningJobs, id)
	j := r.job
	m.endStint(r, now)
	m.Pw.EndJob(now, id, r.nodes)
	released := m.Cl.Release(id, now)
	m.finishDrains(released, now)
	m.Metrics.noteRelease(now, len(r.nodes), m.Cl.Size())
	if j.Requeues < m.MaxRequeues {
		j.Requeues++
		j.State = jobs.StateQueued
		// Roll back to the last durable checkpoint — or to zero without a
		// substrate, where the job restarts from scratch and may be
		// reshaped again at its next start.
		target := 0.0
		if m.ckptActive() {
			target = j.CheckpointWork
			if target > j.WorkDone {
				target = j.WorkDone
			}
		}
		lost := (j.WorkDone - target) * float64(len(r.nodes))
		m.Metrics.LostWorkSeconds += lost
		j.LostWorkSeconds += lost
		j.WorkDone = target
		m.Metrics.Requeues++
		m.traceRunSpan(r, now, "node-failure-requeue",
			trace.Arg{Key: "failed_node", Val: failed.Name},
			trace.Arg{Key: "rollback_to_s", Val: target},
			trace.Arg{Key: "lost_node_s", Val: lost})
		if m.ckptActive() {
			for _, h := range m.hooks.checkpoints {
				h(m, j, CkptRolledBack, lost/float64(len(r.nodes)))
			}
		}
		for _, h := range m.hooks.failures {
			h(m, j, failed, true)
		}
		m.Queue.Push(j)
		if m.Tr != nil {
			m.trQueued[j.ID] = now
		}
		return
	}
	lost := j.WorkDone * float64(len(r.nodes))
	m.Metrics.LostWorkSeconds += lost
	j.LostWorkSeconds += lost
	j.State = jobs.StateKilled
	j.KillReason = fmt.Sprintf("node failure on %s: requeue limit %d exhausted", failed.Name, m.MaxRequeues)
	j.End = now
	m.finalizeJobPower(j)
	m.traceRunSpan(r, now, "node-failure-kill",
		trace.Arg{Key: "failed_node", Val: failed.Name},
		trace.Arg{Key: "lost_node_s", Val: lost})
	m.Metrics.noteKill(j)
	for _, h := range m.hooks.failures {
		h(m, j, failed, false)
	}
	for _, h := range m.hooks.ends {
		h(m, j)
	}
}

// finishDrains completes the shutdown of nodes that were released in
// draining state.
func (m *Manager) finishDrains(nodes []*cluster.Node, now simulator.Time) {
	for _, n := range nodes {
		m.Pw.RefreshNode(now, n)
		if n.State == cluster.StateShuttingDown {
			nn := n
			m.Eng.After(m.Cl.Cfg.ShutdownDelay, "drain-off", func(t simulator.Time) {
				m.Cl.FinishShutdown(nn, t)
				m.Pw.RefreshNode(t, nn)
			})
		}
	}
}

// Running returns the currently executing jobs in ID order. The ordering
// matters: runningJobs is a map, and any consumer that breaks ties by
// encounter order (the EASY reservation sort, emergency victim selection)
// must see a deterministic sequence or runs stop being reproducible.
func (m *Manager) Running() []*jobs.Job {
	out := make([]*jobs.Job, 0, len(m.runningJobs))
	for _, r := range m.runningJobs {
		out = append(out, r.job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RunningCount returns how many jobs are executing.
func (m *Manager) RunningCount() int { return len(m.runningJobs) }

// JobNodes exposes a running job's placement.
func (m *Manager) JobNodes(id int64) []*cluster.Node {
	if r := m.runningJobs[id]; r != nil {
		return r.nodes
	}
	return nil
}

// EstimatedStartPower predicts the additional draw starting job j would
// cause, using the configured estimator and the idle draw its nodes stop
// paying. If the job needs more nodes than are currently available — so a
// node-on/off policy would have to boot powered-off nodes for it — the
// off-to-idle (and boot-transient) delta for the shortfall is included,
// otherwise power-cap gates systematically under-estimate starts on green
// (partially powered-down) machines. Boot-window and emergency policies
// gate on this.
func (m *Manager) EstimatedStartPower(j *jobs.Job) float64 {
	per := m.PowerEstimator(j)
	if per < m.Pw.Model.IdleW {
		per = m.Pw.Model.IdleW
	}
	add := float64(j.Nodes) * (per - m.Pw.Model.IdleW)
	if short := j.Nodes - m.Cl.AvailableCount(m.eligibleFilter(j)); short > 0 {
		transient := m.Pw.Model.IdleW
		if m.Pw.Model.BootW > transient {
			transient = m.Pw.Model.BootW
		}
		add += float64(short) * (transient - m.Pw.Model.OffW)
	}
	return add
}

// Run drives the simulation to the horizon (every queued event at or before
// horizon fires; horizon < 0 runs to quiescence) and closes the metrics
// integration at the final time. Periodic policy loops are daemon events:
// they do not keep an unbounded run alive, so when a policy gates queued
// jobs on conditions only its own loop re-evaluates (temperature, window
// averages), run with an explicit horizon.
func (m *Manager) Run(horizon simulator.Time) simulator.Time {
	end := m.Eng.RunUntil(horizon)
	m.FinishRun(end)
	return end
}

// FinishRun closes the run's accounting at end: the power books are
// advanced to the final instant, utilization integration closes, and
// telemetry stops. Run calls it; drivers that advance the engine in
// slices themselves (the ops-served run in cmd/epasim, which yields the
// state lock between slices so live endpoints can read a quiescent
// manager) call it once after the last slice. Splitting it off is what
// makes the sliced run byte-equivalent to a single Run call — the engine
// fires the same events in the same order either way, and the closing
// accounting happens exactly once at the same final time.
func (m *Manager) FinishRun(end simulator.Time) {
	m.Pw.Advance(end)
	m.Metrics.close(end, m.Cl.Size())
	// One final history sample/evaluation at the exact end instant (a
	// no-op when the last periodic sample already landed there), then
	// close open alert episodes so summaries account the tail.
	if m.Hist != nil {
		m.Hist.Sample(end)
		if m.Watch != nil {
			m.Watch.Eval(end)
		}
	}
	if m.Watch != nil {
		m.Watch.Finish(end)
	}
	m.Tel.Stop()
	m.RunEnded = true
}
