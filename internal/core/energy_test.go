package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/jobs"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
	"epajsrm/internal/workload"
)

// energyRun executes a mixed workload (including one walltime overrun that
// gets killed) and returns the manager plus the submitted jobs.
func energyRun(t *testing.T, seed uint64, tr *trace.Tracer) (*Manager, []*jobs.Job) {
	t.Helper()
	m := NewManager(Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      seed,
	})
	m.EnforceWalltime = true
	if tr != nil {
		m.AttachTracer(tr)
	}
	js := workload.NewGenerator(workload.DefaultSpec(), seed+7).Generate(80)
	over := mkJob(9001, 4, simulator.Hour)
	over.TrueRuntime = 3 * over.Walltime // guaranteed walltime kill
	js = append(js, over)
	for _, j := range js {
		if err := m.Submit(j, j.Submit); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(-1)
	return m, js
}

// TestPerJobEnergyConservation checks the whole-node attribution contract:
// every finished job carries a consistent energy account, and the per-job
// figures sum exactly (modulo float accumulation) to the system's
// attributed energy, which in turn never exceeds total IT energy.
func TestPerJobEnergyConservation(t *testing.T) {
	m, js := energyRun(t, 42, nil)
	if m.Metrics.Completed == 0 || m.Metrics.Killed == 0 {
		t.Fatalf("workload too tame: completed=%d killed=%d", m.Metrics.Completed, m.Metrics.Killed)
	}
	var sum float64
	for _, j := range js {
		if j.State != jobs.StateCompleted && j.State != jobs.StateKilled {
			continue
		}
		sum += j.EnergyJ
		if j.RunSeconds <= 0 {
			t.Fatalf("job %d finished with RunSeconds=%g", j.ID, j.RunSeconds)
		}
		if j.EnergyJ <= 0 {
			t.Fatalf("job %d finished with EnergyJ=%g", j.ID, j.EnergyJ)
		}
		if want := j.EnergyJ / j.RunSeconds; math.Abs(j.AvgPowerW-want) > 1e-9*want {
			t.Fatalf("job %d AvgPowerW=%g, want EnergyJ/RunSeconds=%g", j.ID, j.AvgPowerW, want)
		}
		// Peak is an instantaneous maximum; it can never sit below the mean.
		if j.PeakPowerW < j.AvgPowerW*(1-1e-9) {
			t.Fatalf("job %d peak %g < avg %g", j.ID, j.PeakPowerW, j.AvgPowerW)
		}
	}
	attr := m.Pw.AttributedEnergy()
	if diff := math.Abs(sum - attr); diff > 1e-6*attr {
		t.Fatalf("per-job energy sum %g != attributed %g (diff %g)", sum, attr, diff)
	}
	total := m.Pw.TotalEnergy()
	if attr > total*(1+1e-12) {
		t.Fatalf("attributed %g exceeds total IT energy %g", attr, total)
	}
	// The default cluster idles whenever the queue drains, so a real gap
	// must separate attributed from total energy.
	if attr >= total {
		t.Fatalf("no unattributed idle energy: attr=%g total=%g", attr, total)
	}
}

// TestTracingDoesNotPerturbRun re-runs the same seed with a tracer attached
// and requires every observable outcome to be identical: attaching
// observability must never change what the control loop does.
func TestTracingDoesNotPerturbRun(t *testing.T) {
	fp := func(m *Manager) string {
		return fmt.Sprintf("completed=%d killed=%d requeues=%d waits=%.9f energy=%.6f",
			m.Metrics.Completed, m.Metrics.Killed, m.Metrics.Requeues,
			m.Metrics.Waits.Sum(), m.Pw.TotalEnergy())
	}
	mOff, jsOff := energyRun(t, 7, nil)
	mOn, jsOn := energyRun(t, 7, trace.New())
	if fp(mOff) != fp(mOn) {
		t.Fatalf("tracer changed the run:\noff: %s\non:  %s", fp(mOff), fp(mOn))
	}
	for i := range jsOff {
		if jsOff[i].EnergyJ != jsOn[i].EnergyJ || jsOff[i].State != jsOn[i].State {
			t.Fatalf("job %d diverged under tracing", jsOff[i].ID)
		}
	}
}

// TestTraceByteDeterminism runs the same seed twice with tracing enabled
// and requires byte-identical Chrome and JSONL exports.
func TestTraceByteDeterminism(t *testing.T) {
	var a, b, al, bl bytes.Buffer
	trA, trB := trace.New(), trace.New()
	energyRun(t, 11, trA)
	energyRun(t, 11, trB)
	if err := trA.WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := trB.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed Chrome traces differ byte-for-byte")
	}
	if err := trA.WriteJSONL(&al); err != nil {
		t.Fatal(err)
	}
	if err := trB.WriteJSONL(&bl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(al.Bytes(), bl.Bytes()) {
		t.Fatal("same-seed JSONL traces differ byte-for-byte")
	}
	if trA.Len() == 0 {
		t.Fatal("trace captured no events")
	}
}

// TestTraceCoversLifecycleAndPowerLoop asserts the span vocabulary the
// observability contract promises: job lifecycle events on the jobs track,
// scheduler decisions with reasons, and the power loop's telemetry stream.
func TestTraceCoversLifecycleAndPowerLoop(t *testing.T) {
	tr := trace.New()
	energyRun(t, 3, tr)
	seen := map[string]bool{}
	byPid := map[int]int{}
	for _, e := range tr.Events() {
		seen[e.Name] = true
		byPid[e.Pid]++
	}
	for _, want := range []string{"submit", "queue-wait", "dispatch", "run", "it_power_w", "head-fits"} {
		if !seen[want] {
			t.Fatalf("trace missing %q events; saw %v", want, seen)
		}
	}
	for _, pid := range []int{trace.PidJobs, trace.PidSched, trace.PidPower} {
		if byPid[pid] == 0 {
			t.Fatalf("no events on pid %d; distribution %v", pid, byPid)
		}
	}
}

// TestRegistrySnapshotMatchesLegacyCounters pins the registry to the
// manager counters it replaces.
func TestRegistrySnapshotMatchesLegacyCounters(t *testing.T) {
	m, _ := energyRun(t, 5, nil)
	have := map[string]bool{}
	for _, p := range m.Reg.Snapshot() {
		have[p.Name] = true
	}
	for name, want := range map[string]float64{
		"jobs.submitted":            float64(m.Metrics.Submitted),
		"jobs.completed":            float64(m.Metrics.Completed),
		"jobs.killed":               float64(m.Metrics.Killed),
		"power.total_energy_j":      m.Pw.TotalEnergy(),
		"telemetry.dropped":         float64(m.Tel.Dropped.Value()),
		"power.attributed_energy_j": m.Pw.AttributedEnergy(),
	} {
		if !have[name] {
			t.Fatalf("registry missing %q", name)
		}
		if got := m.Reg.Value(name); got != want {
			t.Fatalf("registry %q = %g, want %g", name, got, want)
		}
	}
}
