package core

import (
	"fmt"

	"epajsrm/internal/jobs"
	"epajsrm/internal/metrics"
	"epajsrm/internal/simulator"
	"epajsrm/internal/stats"
)

// Metrics aggregates the outcome of a run in the terms the survey's Q3 and
// Q7 use: throughput, job sizes and wait times, utilization, and the
// energy/power figures the EPA policies exist to improve.
type Metrics struct {
	Submitted   int
	Completed   int
	Killed      int
	Cancelled   int
	Preemptions int

	// NodeFailures counts node crashes (FailNode calls that found the node
	// up); Requeues counts jobs returned to the queue after losing a node.
	NodeFailures int
	Requeues     int

	// Checkpoint/restart accounting. CheckpointsWritten counts durable
	// images (completed writes); CheckpointRestores counts completed
	// restart reads. The Seconds figures are wall time spent stalled in
	// checkpoint I/O — compute makes zero progress during them.
	CheckpointsWritten     int
	CheckpointRestores     int
	CheckpointWriteSeconds float64
	RestartReadSeconds     float64

	// LostWorkSeconds totals node-seconds of accumulated progress discarded
	// by crashes, requeues, rollbacks, and uncheckpointed preemptions — the
	// wasted-work number resilience experiments compare policies on.
	LostWorkSeconds float64

	Waits      stats.Sample // seconds
	Slowdowns  stats.Sample // bounded slowdown
	RunSizes   stats.Sample // nodes, completed jobs
	RunTimes   stats.Sample // seconds wallclock, completed jobs
	JobEnergyJ stats.Sample // joules per completed job

	// NodeSecondsDone counts completed useful work (nodes x true runtime),
	// the throughput numerator under a power budget (Sarood et al.).
	NodeSecondsDone float64

	// Utilization integration.
	busyNodes    int
	lastT        simulator.Time
	busyIntegral float64 // node-seconds occupied
	horizon      simulator.Time
	closed       bool

	// Registry-backed distributions, created by register; nil until a
	// registry adopts this Metrics (noteCompletion checks).
	hWait   *metrics.Histogram
	hEnergy *metrics.Histogram
}

// register exports this Metrics through reg: the integer counters as
// derived gauges (the int fields remain the API every experiment already
// reads — the registry adopts them rather than replacing them), the float
// accumulators likewise, and two real histograms over completed-job waits
// and energies that only exist registry-side.
func (mt *Metrics) register(reg *metrics.Registry) {
	reg.GaugeFunc("jobs.submitted", func() float64 { return float64(mt.Submitted) })
	reg.GaugeFunc("jobs.completed", func() float64 { return float64(mt.Completed) })
	reg.GaugeFunc("jobs.killed", func() float64 { return float64(mt.Killed) })
	reg.GaugeFunc("jobs.cancelled", func() float64 { return float64(mt.Cancelled) })
	reg.GaugeFunc("jobs.preemptions", func() float64 { return float64(mt.Preemptions) })
	reg.GaugeFunc("jobs.requeues", func() float64 { return float64(mt.Requeues) })
	reg.GaugeFunc("nodes.failures", func() float64 { return float64(mt.NodeFailures) })
	reg.GaugeFunc("ckpt.written", func() float64 { return float64(mt.CheckpointsWritten) })
	reg.GaugeFunc("ckpt.restores", func() float64 { return float64(mt.CheckpointRestores) })
	reg.GaugeFunc("ckpt.write_seconds", func() float64 { return mt.CheckpointWriteSeconds })
	reg.GaugeFunc("ckpt.restart_read_seconds", func() float64 { return mt.RestartReadSeconds })
	// ckpt.io_share: aggregate job-seconds stalled in checkpoint I/O per
	// virtual second of run so far — the watchdog's checkpoint-overhead
	// SLI (exceeds 1 when many jobs checkpoint concurrently).
	reg.GaugeFunc("ckpt.io_share", func() float64 {
		if mt.lastT <= 0 {
			return 0
		}
		return (mt.CheckpointWriteSeconds + mt.RestartReadSeconds) / float64(mt.lastT)
	})
	reg.GaugeFunc("work.lost_node_seconds", func() float64 { return mt.LostWorkSeconds })
	reg.GaugeFunc("work.done_node_seconds", func() float64 { return mt.NodeSecondsDone })
	// Wait buckets span seconds to a day; energy buckets span small jobs
	// (~1 kWh = 3.6e6 J) to site-scale runs.
	mt.hWait = reg.Histogram("jobs.wait_seconds", 60, 600, 3600, 4*3600, 24*3600)
	mt.hEnergy = reg.Histogram("jobs.energy_j", 1e6, 1e7, 1e8, 1e9, 1e10)
}

func (mt *Metrics) advance(now simulator.Time) {
	if now > mt.lastT {
		mt.busyIntegral += float64(mt.busyNodes) * float64(now-mt.lastT)
		mt.lastT = now
	}
}

func (mt *Metrics) noteAlloc(now simulator.Time, n, total int) {
	mt.advance(now)
	mt.busyNodes += n
	if mt.busyNodes > total {
		panic("core: busy nodes exceed cluster size")
	}
}

func (mt *Metrics) noteRelease(now simulator.Time, n, total int) {
	mt.advance(now)
	mt.busyNodes -= n
	if mt.busyNodes < 0 {
		panic("core: negative busy node count")
	}
}

func (mt *Metrics) noteCompletion(j *jobs.Job) {
	mt.Completed++
	mt.Waits.Add(float64(j.WaitTime()))
	mt.Slowdowns.Add(j.BoundedSlowdown())
	mt.RunSizes.AddInt(j.Nodes)
	mt.RunTimes.Add(float64(j.End - j.Start))
	mt.JobEnergyJ.Add(j.EnergyJ)
	mt.NodeSecondsDone += j.NodeSeconds()
	if mt.hWait != nil {
		mt.hWait.Observe(float64(j.WaitTime()))
		mt.hEnergy.Observe(j.EnergyJ)
	}
}

func (mt *Metrics) noteKill(j *jobs.Job) {
	mt.Killed++
	mt.Waits.Add(float64(j.WaitTime()))
}

func (mt *Metrics) close(end simulator.Time, totalNodes int) {
	if mt.closed {
		return
	}
	mt.advance(end)
	mt.horizon = end
	mt.closed = true
}

// Utilization returns occupied node-seconds over available node-seconds for
// the whole run.
func (mt *Metrics) Utilization(totalNodes int) float64 {
	if mt.horizon == 0 || totalNodes == 0 {
		return 0
	}
	return mt.busyIntegral / (float64(totalNodes) * float64(mt.horizon))
}

// ThroughputNodeHoursPerDay converts completed work into node-hours/day.
func (mt *Metrics) ThroughputNodeHoursPerDay() float64 {
	if mt.horizon == 0 {
		return 0
	}
	days := float64(mt.horizon) / float64(simulator.Day)
	return mt.NodeSecondsDone / 3600 / days
}

// JobsPerDay returns the completion rate — Q3(c) asks sites for jobs/month;
// per-day is the simulator-scale equivalent.
func (mt *Metrics) JobsPerDay() float64 {
	if mt.horizon == 0 {
		return 0
	}
	return float64(mt.Completed) / (float64(mt.horizon) / float64(simulator.Day))
}

// Summary renders a one-line digest.
func (mt *Metrics) Summary(totalNodes int) string {
	return fmt.Sprintf("completed=%d killed=%d cancelled=%d util=%.1f%% wait(med)=%s thr=%.0f node-h/day",
		mt.Completed, mt.Killed, mt.Cancelled,
		100*mt.Utilization(totalNodes),
		simulator.Time(mt.Waits.Median()).String(),
		mt.ThroughputNodeHoursPerDay())
}
