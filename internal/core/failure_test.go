package core

import (
	"strings"
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

func TestNodeFailureRequeuesJob(t *testing.T) {
	m := newTestManager(t)
	j := mkJob(1, 4, simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	var failedOn string
	var requeuedFlag bool
	m.OnNodeFailure(func(_ *Manager, fj *jobs.Job, n *cluster.Node, requeued bool) {
		if fj.ID != j.ID {
			return
		}
		failedOn = n.Name
		requeuedFlag = requeued
		// The hook fires before the job re-enters the queue (it may restart
		// immediately on the surviving nodes).
		if fj.State != jobs.StateQueued {
			t.Errorf("job state in failure hook = %v, want queued", fj.State)
		}
		if fj.WorkDone != 0 {
			t.Errorf("crash preserved WorkDone = %f; crashes have no checkpoint", fj.WorkDone)
		}
	})
	// Crash one of the job's nodes mid-run.
	m.Eng.After(30*simulator.Minute, "crash", func(now simulator.Time) {
		target := m.Cl.Nodes[0]
		if target.JobID != j.ID {
			t.Errorf("node 0 not running job 1 (job=%d)", target.JobID)
		}
		if !m.FailNode(0, now) {
			t.Error("FailNode refused a busy node")
		}
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v, want completed after requeue", j.State)
	}
	if j.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", j.Requeues)
	}
	if m.Metrics.NodeFailures != 1 || m.Metrics.Requeues != 1 {
		t.Fatalf("metrics failures/requeues = %d/%d", m.Metrics.NodeFailures, m.Metrics.Requeues)
	}
	if failedOn == "" || !requeuedFlag {
		t.Fatalf("failure hook: node=%q requeued=%v", failedOn, requeuedFlag)
	}
	// The restarted run must not reuse the down node.
	if m.Cl.Nodes[0].State != cluster.StateDown {
		t.Fatalf("node 0 state = %v, want down", m.Cl.Nodes[0].State)
	}
	// Completed exactly once despite the restart.
	if m.Metrics.Completed != 1 {
		t.Fatalf("completed = %d", m.Metrics.Completed)
	}
}

func TestNodeFailureKillsAfterRequeueLimit(t *testing.T) {
	m := newTestManager(t)
	m.MaxRequeues = 1
	j := mkJob(1, 2, simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	var outcomes []bool
	m.OnNodeFailure(func(_ *Manager, _ *jobs.Job, _ *cluster.Node, requeued bool) {
		outcomes = append(outcomes, requeued)
	})
	// Crash whichever node the job occupies, repeatedly, shortly after each
	// (re)start.
	crash := func(now simulator.Time) {
		for _, n := range m.Cl.Nodes {
			if n.JobID == j.ID {
				m.FailNode(n.ID, now)
				return
			}
		}
	}
	m.Eng.After(10*simulator.Minute, "crash1", crash)
	m.Eng.After(20*simulator.Minute, "crash2", crash)
	m.Run(-1)
	if j.State != jobs.StateKilled {
		t.Fatalf("state = %v, want killed after exhausting requeues", j.State)
	}
	if j.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", j.Requeues)
	}
	if !strings.Contains(j.KillReason, "requeue limit") {
		t.Fatalf("kill reason = %q", j.KillReason)
	}
	if len(outcomes) != 2 || !outcomes[0] || outcomes[1] {
		t.Fatalf("failure hook outcomes = %v, want [true false]", outcomes)
	}
	if m.Metrics.Killed != 1 || m.Metrics.Requeues != 1 || m.Metrics.NodeFailures != 2 {
		t.Fatalf("metrics killed/requeues/failures = %d/%d/%d",
			m.Metrics.Killed, m.Metrics.Requeues, m.Metrics.NodeFailures)
	}
}

func TestFailureHooksFireBeforeEndHooks(t *testing.T) {
	m := newTestManager(t)
	m.MaxRequeues = 0 // first failure kills
	j := mkJob(1, 2, simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	var order []string
	m.OnNodeFailure(func(_ *Manager, _ *jobs.Job, _ *cluster.Node, requeued bool) {
		if requeued {
			t.Error("MaxRequeues=0 job reported as requeued")
		}
		order = append(order, "failure")
	})
	m.OnJobEnd(func(_ *Manager, _ *jobs.Job) {
		order = append(order, "end")
	})
	m.Eng.After(10*simulator.Minute, "crash", func(now simulator.Time) {
		m.FailNode(0, now)
	})
	m.Run(-1)
	if len(order) != 2 || order[0] != "failure" || order[1] != "end" {
		t.Fatalf("hook order = %v, want [failure end]", order)
	}
	if j.State != jobs.StateKilled {
		t.Fatalf("state = %v", j.State)
	}
}

func TestFailNodeValidation(t *testing.T) {
	m := newTestManager(t)
	if m.FailNode(-1, 0) || m.FailNode(m.Cl.Size(), 0) {
		t.Fatal("out-of-range node failed")
	}
	if !m.FailNode(0, 0) {
		t.Fatal("first failure refused")
	}
	if m.FailNode(0, 0) {
		t.Fatal("double failure of a down node accepted")
	}
	if m.RepairNode(0, 10) != true {
		t.Fatal("repair refused")
	}
	if m.RepairNode(0, 10) {
		t.Fatal("repair of an up node accepted")
	}
	if m.Cl.Nodes[0].State != cluster.StateIdle {
		t.Fatalf("state after repair = %v", m.Cl.Nodes[0].State)
	}
}

func TestIdleNodeFailureAndRepairKeepsScheduling(t *testing.T) {
	// Failing idle nodes shrinks capacity; a job wider than the remaining
	// machine must wait for repair, then start.
	m := newTestManager(t)
	for i := 0; i < 4; i++ {
		m.FailNode(i, 0)
	}
	j := mkJob(1, m.Cl.Size(), simulator.Hour) // needs the whole machine
	if err := m.Submit(j, 10); err != nil {
		t.Fatal(err)
	}
	m.Eng.After(2*simulator.Hour, "repair", func(now simulator.Time) {
		for i := 0; i < 4; i++ {
			m.RepairNode(i, now)
		}
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.Start < 2*simulator.Hour {
		t.Fatalf("job started at %v with nodes still down", j.Start)
	}
}
