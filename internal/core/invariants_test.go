package core

import (
	"testing"
	"testing/quick"

	"epajsrm/internal/cluster"
	"epajsrm/internal/jobs"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// checkInvariants asserts the structural facts that must hold at any
// instant of any run, whatever the policies do.
func checkInvariants(t *testing.T, m *Manager) {
	t.Helper()
	// 1. Node bookkeeping: a node is busy iff it carries a job ID, and
	// every running job's nodes agree.
	busyNodes := 0
	for _, n := range m.Cl.Nodes {
		busy := n.State == cluster.StateBusy || n.State == cluster.StateDraining
		if busy && n.JobID == 0 {
			t.Fatalf("node %d busy without a job", n.ID)
		}
		if !busy && n.JobID != 0 {
			t.Fatalf("node %d state %v still holds job %d", n.ID, n.State, n.JobID)
		}
		if n.State == cluster.StateBusy {
			busyNodes++
		}
	}
	running := 0
	for _, j := range m.Running() {
		nodes := m.JobNodes(j.ID)
		if len(nodes) != j.Nodes {
			t.Fatalf("job %d holds %d nodes, wants %d", j.ID, len(nodes), j.Nodes)
		}
		running += len(nodes)
		for _, n := range nodes {
			if n.JobID != j.ID {
				t.Fatalf("node %d claims job %d, expected %d", n.ID, n.JobID, j.ID)
			}
		}
		// 2. Progress never exceeds the work.
		if j.WorkDone > float64(j.TrueRuntime)+1 {
			t.Fatalf("job %d overworked: %f > %d", j.ID, j.WorkDone, j.TrueRuntime)
		}
	}
	// Draining nodes also carry jobs; count them for the running total.
	draining := m.Cl.CountState(cluster.StateDraining)
	if running != busyNodes+draining {
		t.Fatalf("running jobs hold %d nodes, cluster says %d busy + %d draining",
			running, busyNodes, draining)
	}
	// 3. Power books: total power equals the per-node sum and never
	// exceeds the physical envelope.
	sum := 0.0
	for i := range m.Cl.Nodes {
		sum += m.Pw.NodePower(i)
	}
	if tp := m.Pw.TotalPower(); tp < sum-1e-6 || tp > sum+1e-6 {
		t.Fatalf("total power %f != node sum %f", tp, sum)
	}
	if tp := m.Pw.TotalPower(); tp > m.Pw.MaxPossiblePower()+1e-6 {
		t.Fatalf("power %f beyond physical max", tp)
	}
	if tp := m.Pw.TotalPower(); tp < m.Pw.MinPossiblePower()-1e-6 {
		t.Fatalf("power %f below physical min", tp)
	}
}

// TestFuzzRandomActuations drives a run with random mid-flight control
// actions — node caps, frequency changes, kills, preemptions, power
// off/on — and checks the invariants at every step and the accounting at
// the end.
func TestFuzzRandomActuations(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		seed := seed
		m := NewManager(Options{
			Cluster:   cluster.DefaultConfig(),
			Scheduler: sched.EASY{},
			Seed:      seed,
			VarSigma:  0.05,
		})
		rng := simulator.NewRNG(seed * 977)
		spec := workload.DefaultSpec()
		spec.ArrivalMeanSec = 300
		js := workload.NewGenerator(spec, seed).Generate(80)
		for _, j := range js {
			if err := m.Submit(j, j.Submit); err != nil {
				t.Fatal(err)
			}
		}
		// Random actuations every 10 minutes of virtual time.
		stop := m.Eng.Every(10*simulator.Minute, "fuzz", func(now simulator.Time) {
			switch rng.Intn(6) {
			case 0: // random node cap on/off
				n := m.Cl.Nodes[rng.Intn(m.Cl.Size())]
				if n.CapW == 0 {
					m.Pw.SetNodeCap(now, n, 150+float64(rng.Intn(200)))
				} else {
					m.Pw.SetNodeCap(now, n, 0)
				}
				m.RetimeAll(now)
			case 1: // random frequency for a running job
				if r := m.Running(); len(r) > 0 {
					j := r[rng.Intn(len(r))]
					f := 0.5 + rng.Float64()*0.5
					m.Pw.SetJobFreq(now, j.ID, f)
					m.RetimeJob(j.ID, now)
				}
			case 2: // kill someone
				if r := m.Running(); len(r) > 0 {
					m.KillJob(r[rng.Intn(len(r))].ID, "fuzz", now)
				}
			case 3: // preempt someone
				if r := m.Running(); len(r) > 0 {
					m.PreemptJob(r[rng.Intn(len(r))].ID, now)
				}
			case 4: // power an idle node off
				for _, n := range m.Cl.Nodes {
					if n.State == cluster.StateIdle {
						_ = m.Ctrl.PowerOff(n.ID)
						break
					}
				}
			case 5: // power an off node on
				for _, n := range m.Cl.Nodes {
					if n.State == cluster.StateOff {
						_ = m.Ctrl.PowerOn(n.ID, func(tt simulator.Time) { m.TrySchedule(tt) })
						break
					}
				}
			}
			checkInvariants(t, m)
		})
		end := m.Run(5 * simulator.Day)
		stop()
		checkInvariants(t, m)
		// End accounting: every job reached a terminal state or is still
		// tracked (queued behind dead capacity is legal if nodes were
		// powered off).
		terminal := m.Metrics.Completed + m.Metrics.Killed + m.Metrics.Cancelled
		inFlight := m.RunningCount() + m.Queue.Len()
		if terminal+inFlight != len(js) {
			t.Fatalf("seed %d: %d terminal + %d in flight != %d submitted",
				seed, terminal, inFlight, len(js))
		}
		// Energy is exactly the integral of the (sampled) power: weaker
		// cross-check, energy within [min, max] possible envelopes.
		e := m.Pw.TotalEnergy()
		if e < m.Pw.MinPossiblePower()*float64(end)*0.99 {
			t.Fatalf("seed %d: energy %f below physical floor", seed, e)
		}
		if e > m.Pw.MaxPossiblePower()*float64(end)*1.01 {
			t.Fatalf("seed %d: energy %f above physical ceiling", seed, e)
		}
	}
}

// TestPreemptAtQuickRandomTimes property-checks the progress model: a
// compute-bound job preempted and resumed at arbitrary instants always
// accumulates exactly its TrueRuntime of work.
func TestPreemptAtQuickRandomTimes(t *testing.T) {
	f := func(cutRaw uint16) bool {
		cut := simulator.Time(cutRaw%7000) + 60 // preempt between 1 and ~118 min
		m := NewManager(Options{Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: 1})
		m.FreeCheckpoint = true // this property asserts the idealized instant save/resume
		j := mkJob(1, 4, 2*simulator.Hour)
		j.MemFrac = 0
		j.Walltime = 12 * simulator.Hour
		if err := m.Submit(j, 0); err != nil {
			return false
		}
		resumeAt := cut + simulator.Hour
		hold := false
		m.OnStartGate(func(_ *Manager, _ *jobs.Job) bool { return !hold })
		m.Eng.After(cut, "cut", func(now simulator.Time) {
			hold = true
			m.PreemptJob(1, now)
		})
		m.Eng.After(resumeAt, "resume", func(now simulator.Time) {
			hold = false
			m.TrySchedule(now)
		})
		m.Run(-1)
		if j.State != jobs.StateCompleted {
			return false
		}
		// Total on-CPU time = TrueRuntime; wall end = resume + remaining.
		wantEnd := resumeAt + (2*simulator.Hour - cut)
		return j.End >= wantEnd-2 && j.End <= wantEnd+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTopologyCommPenaltyExact checks the comm slowdown formula end to end
// for a forced scatter placement.
func TestTopologyCommPenaltyExact(t *testing.T) {
	m := NewManager(Options{Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: 1})
	m.TopoPenaltyPerHop = 0.10
	m.OnPlacement(func(_ *Manager, _ *jobs.Job) (cluster.Strategy, bool) {
		return cluster.PlaceScatter, true
	})
	j := mkJob(1, 8, simulator.Hour)
	j.MemFrac = 0
	j.CommFrac = 0.5
	j.Walltime = 6 * simulator.Hour
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	var span int
	m.Eng.After(1, "span", func(simulator.Time) {
		span = cluster.PlacementSpan(m.JobNodes(1))
		if got := m.CommSlowdown(1); got <= 1 {
			t.Errorf("comm slowdown = %f, want > 1 for scatter", got)
		}
	})
	m.Run(-1)
	want := float64(simulator.Hour) * (0.5 + 0.5*(1+0.10*float64(span-1)))
	got := float64(j.End - j.Start)
	if got < want-2 || got > want+2 {
		t.Fatalf("runtime %f, want %f (span %d)", got, want, span)
	}
}

func TestResumedJobNeverReshaped(t *testing.T) {
	m := NewManager(Options{Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: 1})
	m.FreeCheckpoint = true // exact-end arithmetic assumes zero-cost preemption
	// A shaper that would halve any moldable job's width.
	m.OnShape(func(_ *Manager, j *jobs.Job, free int) (jobs.MoldConfig, bool) {
		if cfg, ok := j.BestMoldUnder(j.Nodes / 2); ok {
			return cfg, true
		}
		return jobs.MoldConfig{}, false
	})
	j := mkJob(1, 8, 2*simulator.Hour)
	j.MemFrac = 0
	j.Walltime = 12 * simulator.Hour
	j.Mold = []jobs.MoldConfig{
		{Nodes: 8, Runtime: 2 * simulator.Hour},
		{Nodes: 4, Runtime: 4 * simulator.Hour},
		{Nodes: 2, Runtime: 8 * simulator.Hour},
	}
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Eng.After(simulator.Hour, "preempt", func(now simulator.Time) {
		m.PreemptJob(1, now)
		m.TrySchedule(now)
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	// First start shaped 8 -> 4 nodes (4h of work). Preempted at 1h with
	// 1h done; the resume must keep the 4-node/4h shape, not reshape to 2.
	if j.Nodes != 4 {
		t.Fatalf("resumed job ran at %d nodes; reshaping a checkpointed job is invalid", j.Nodes)
	}
	// 1h done before preempt, 3h remaining after immediate resume: 4h total.
	if j.End != 4*simulator.Hour {
		t.Fatalf("end = %v, want 4h", j.End)
	}
}
