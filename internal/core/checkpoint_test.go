package core

import (
	"testing"

	"epajsrm/internal/checkpoint"
	"epajsrm/internal/cluster"
	"epajsrm/internal/jobs"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
)

// ckptMgr builds a manager with the checkpoint substrate enabled. With the
// default cluster (128 GB nodes) and BW 10 GB/s / StateFrac 0.3, a 4-node
// image is 153.6 GB: 16 s to write or read uncontended.
func ckptMgr(t *testing.T, interval simulator.Time) *Manager {
	t.Helper()
	return NewManager(Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      1,
		Checkpoint: checkpoint.Config{
			Interval:  interval,
			BWGBps:    10,
			StateFrac: 0.3,
			IOPowerW:  30,
		},
	})
}

// ckptJob is a compute-bound job so progress arithmetic is exact: 1 s of
// wall time = 1 s of work at nominal frequency.
func ckptJob(id int64, nodes int, run simulator.Time) *jobs.Job {
	j := mkJob(id, nodes, run)
	j.MemFrac = 0
	j.Walltime = 4 * run
	return j
}

// TestCheckpointCrashTimelineExact walks the full lifecycle on an exact
// timeline: periodic writes stall compute, a crash rolls back to the last
// durable image, the restart read is charged before compute resumes.
func TestCheckpointCrashTimelineExact(t *testing.T) {
	m := ckptMgr(t, 30*simulator.Minute)
	j := ckptJob(1, 4, 2*simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	var written, restored, rolledBack int
	m.OnCheckpoint(func(_ *Manager, _ *jobs.Job, ev CkptEvent, _ float64) {
		switch ev {
		case CkptWritten:
			written++
		case CkptRestored:
			restored++
		case CkptRolledBack:
			rolledBack++
		}
	})
	// Checkpoints start at 1800 and 3616, committing at 1816 (work 1800)
	// and 3632 (work 3600). Crash one of the job's nodes at 4200.
	m.Eng.After(4200, "crash", func(now simulator.Time) {
		nodes := m.JobNodes(1)
		if nodes == nil {
			t.Fatal("job not running at crash time")
		}
		m.FailNode(nodes[0].ID, now)
	})
	m.Eng.After(4200, "post-crash", func(simulator.Time) {
		// Work at the crash was 3600 + (4200-3632) = 4168; the half
		// interval since the durable image rolls back.
		if j.WorkDone != 3600 {
			t.Fatalf("WorkDone after rollback = %f, want 3600", j.WorkDone)
		}
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v (%s)", j.State, j.KillReason)
	}
	// Restart at 4200 + 16 s restore; third checkpoint 6016→6032 (work
	// 5400); remaining 1800 s of work ends the job at 7832.
	if j.End != 7832 {
		t.Fatalf("end = %d, want 7832", j.End)
	}
	if m.Metrics.CheckpointsWritten != 3 || j.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d/%d, want 3", m.Metrics.CheckpointsWritten, j.Checkpoints)
	}
	if m.Metrics.CheckpointRestores != 1 {
		t.Fatalf("restores = %d, want 1", m.Metrics.CheckpointRestores)
	}
	if m.Metrics.CheckpointWriteSeconds != 48 || m.Metrics.RestartReadSeconds != 16 {
		t.Fatalf("stall seconds = %f write / %f read, want 48/16",
			m.Metrics.CheckpointWriteSeconds, m.Metrics.RestartReadSeconds)
	}
	// 568 s of work × 4 nodes rolled back.
	if m.Metrics.LostWorkSeconds != 2272 {
		t.Fatalf("lost work = %f node-s, want 2272", m.Metrics.LostWorkSeconds)
	}
	if written != 3 || restored != 1 || rolledBack != 1 {
		t.Fatalf("hooks: written=%d restored=%d rolledBack=%d, want 3/1/1", written, restored, rolledBack)
	}
	if m.Ckpt.InFlight() != 0 {
		t.Fatalf("in-flight I/O leaked: %d", m.Ckpt.InFlight())
	}
}

// TestCrashDuringCheckpointWrite crashes a node while the image is being
// written: the half-written image must never become durable, so the job
// rolls back to the previous durable state (here: nothing).
func TestCrashDuringCheckpointWrite(t *testing.T) {
	m := ckptMgr(t, 30*simulator.Minute)
	j := ckptJob(1, 4, 2*simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	// First write runs 1800–1816; crash in the middle of it.
	m.Eng.After(1810, "crash", func(now simulator.Time) {
		m.FailNode(m.JobNodes(1)[0].ID, now)
	})
	m.Eng.After(1810, "post-crash", func(simulator.Time) {
		if j.WorkDone != 0 {
			t.Fatalf("rolled back to %f; a half-written image must not be durable", j.WorkDone)
		}
		if j.CheckpointWork != 0 || j.Checkpoints != 0 {
			t.Fatalf("aborted write became durable: work=%f count=%d", j.CheckpointWork, j.Checkpoints)
		}
		if m.Ckpt.InFlight() != 0 {
			t.Fatalf("aborted write leaked in-flight slot: %d", m.Ckpt.InFlight())
		}
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v (%s)", j.State, j.KillReason)
	}
	// All 1800 s × 4 nodes were lost — the write never committed.
	if m.Metrics.LostWorkSeconds != 7200 {
		t.Fatalf("lost work = %f, want 7200", m.Metrics.LostWorkSeconds)
	}
	// Restarted from scratch at 1810: no restore read happened.
	if m.Metrics.CheckpointRestores != 0 {
		t.Fatalf("restores = %d, want 0 (restart was from scratch)", m.Metrics.CheckpointRestores)
	}
}

// TestCrashDuringRestore crashes a node while the job is reading its image
// back: the durable image survives, nothing new is lost, and the aborted
// read is not counted as a completed restore.
func TestCrashDuringRestore(t *testing.T) {
	m := ckptMgr(t, 30*simulator.Minute)
	j := ckptJob(1, 4, 2*simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	// Durable image at 1816 (work 1800). First crash at 2000 rolls back
	// 184 s and triggers a restore 2000–2016; second crash at 2010 lands
	// mid-restore.
	m.Eng.After(2000, "crash-1", func(now simulator.Time) {
		m.FailNode(m.JobNodes(1)[0].ID, now)
	})
	m.Eng.After(2010, "crash-2", func(now simulator.Time) {
		m.FailNode(m.JobNodes(1)[0].ID, now)
	})
	m.Eng.After(2010, "post-crash", func(simulator.Time) {
		if j.WorkDone != 1800 {
			t.Fatalf("WorkDone = %f, want the durable 1800 (restore loses nothing)", j.WorkDone)
		}
		if j.Requeues != 2 {
			t.Fatalf("requeues = %d, want 2", j.Requeues)
		}
		// The aborted read released its bandwidth slot and the restart at
		// 2010 already began a fresh read — exactly one in flight.
		if m.Ckpt.InFlight() != 1 {
			t.Fatalf("in-flight = %d, want 1 (aborted read freed, new read started)", m.Ckpt.InFlight())
		}
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v (%s)", j.State, j.KillReason)
	}
	// Crash 1: 184 s × 4 = 736 node-s lost; crash 2: zero (mid-restore).
	if m.Metrics.LostWorkSeconds != 736 {
		t.Fatalf("lost work = %f, want 736", m.Metrics.LostWorkSeconds)
	}
	// Only the restore that ran to completion (2010–2026) counts.
	if m.Metrics.CheckpointRestores != 1 {
		t.Fatalf("restores = %d, want 1 (the aborted read must not count)", m.Metrics.CheckpointRestores)
	}
	// Resume at 2026 with 5400 s left; checkpoints at 3826→3842 (3600)
	// and 5642→5658 (5400); finish 1800 s later.
	if j.End != 7458 {
		t.Fatalf("end = %d, want 7458", j.End)
	}
}

// TestPreemptDrainsThroughDemandCheckpoint: with the substrate active,
// PreemptJob holds the nodes for a demand-checkpoint write, then releases
// them; the job later resumes from the image, paying the restart read.
func TestPreemptDrainsThroughDemandCheckpoint(t *testing.T) {
	m := ckptMgr(t, 0) // demand checkpoints only
	j := ckptJob(1, 4, 2*simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	gate := true
	m.OnStartGate(func(_ *Manager, _ *jobs.Job) bool { return gate })
	m.Eng.After(3600, "preempt", func(now simulator.Time) {
		gate = false
		if !m.PreemptJob(1, now) {
			t.Error("preempt refused")
		}
		// The drain holds the nodes until the write commits at 3616.
		if m.JobNodes(1) == nil {
			t.Error("nodes released before the demand checkpoint committed")
		}
		if m.PreemptJob(1, now) {
			t.Error("double preempt of a draining job must be refused")
		}
	})
	m.Eng.After(3620, "post-drain", func(simulator.Time) {
		if m.JobNodes(1) != nil {
			t.Error("nodes still held after the drain committed")
		}
		if j.WorkDone != 3600 || j.CheckpointWork != 3600 {
			t.Errorf("drain saved work=%f ckpt=%f, want 3600", j.WorkDone, j.CheckpointWork)
		}
	})
	m.Eng.After(5000, "resume", func(now simulator.Time) {
		gate = true
		m.TrySchedule(now)
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	// Resume at 5000, 16 s restore, 3600 s of work left.
	if j.End != 8616 {
		t.Fatalf("end = %d, want 8616", j.End)
	}
	if m.Metrics.Preemptions != 1 || m.Metrics.CheckpointsWritten != 1 || m.Metrics.CheckpointRestores != 1 {
		t.Fatalf("preempts/writes/restores = %d/%d/%d, want 1/1/1",
			m.Metrics.Preemptions, m.Metrics.CheckpointsWritten, m.Metrics.CheckpointRestores)
	}
	if m.Metrics.LostWorkSeconds != 0 {
		t.Fatalf("lost work = %f, want 0 (drain preserves everything)", m.Metrics.LostWorkSeconds)
	}
}

// TestPreemptDuringWriteConverts: preempting a job mid-periodic-write lets
// the in-flight write double as the demand checkpoint — the nodes release
// when it commits, with no second write.
func TestPreemptDuringWriteConverts(t *testing.T) {
	m := ckptMgr(t, 30*simulator.Minute)
	j := ckptJob(1, 4, 2*simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	gate := true
	m.OnStartGate(func(_ *Manager, _ *jobs.Job) bool { return gate })
	m.Eng.After(1805, "preempt", func(now simulator.Time) { // write runs 1800–1816
		gate = false
		if !m.PreemptJob(1, now) {
			t.Error("preempt refused")
		}
	})
	m.Eng.After(1817, "post-commit", func(simulator.Time) {
		if m.JobNodes(1) != nil {
			t.Error("nodes still held after the converted write committed")
		}
		if j.CheckpointWork != 1800 {
			t.Errorf("converted write saved %f, want 1800", j.CheckpointWork)
		}
	})
	m.Eng.After(3000, "resume", func(now simulator.Time) {
		gate = true
		m.TrySchedule(now)
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if m.Ckpt.Writes != 3 {
		// 1 converted drain + periodic ones after resume (3016+16 restore,
		// timers at 4832→commit, 6648→commit; finish fires before the
		// next). No extra drain write happened.
		t.Fatalf("writes = %d, want 3 (conversion, then two periodic)", m.Ckpt.Writes)
	}
	if m.Metrics.Preemptions != 1 {
		t.Fatalf("preemptions = %d, want 1", m.Metrics.Preemptions)
	}
}

// TestPreemptWithoutSubstrateLosesProgress: honest accounting — preemption
// without a checkpoint substrate discards progress like a crash.
func TestPreemptWithoutSubstrateLosesProgress(t *testing.T) {
	m := newTestManager(t)
	j := ckptJob(1, 4, 2*simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	gate := true
	m.OnStartGate(func(_ *Manager, _ *jobs.Job) bool { return gate })
	m.Eng.After(3600, "preempt", func(now simulator.Time) {
		gate = false
		m.PreemptJob(1, now)
		if j.WorkDone != 0 {
			t.Errorf("WorkDone = %f after uncheckpointed preemption, want 0", j.WorkDone)
		}
	})
	m.Eng.After(5000, "resume", func(now simulator.Time) {
		gate = true
		m.TrySchedule(now)
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	// Restarted from scratch at 5000: full 7200 s again.
	if j.End != 12200 {
		t.Fatalf("end = %d, want 12200", j.End)
	}
	if m.Metrics.LostWorkSeconds != 14400 { // 3600 s × 4 nodes
		t.Fatalf("lost work = %f, want 14400", m.Metrics.LostWorkSeconds)
	}
}

// TestCheckpointIOPowerVisible: the I/O draw of a checkpoint burst is
// additive on the job's nodes and lands in cap accounting — a site sitting
// at its cap goes over it exactly while the write is in flight.
func TestCheckpointIOPowerVisible(t *testing.T) {
	m := ckptMgr(t, 30*simulator.Minute)
	j := ckptJob(1, 4, 2*simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	var before, during, after float64
	m.Eng.After(1799, "before", func(simulator.Time) { before = m.Pw.TotalPower() })
	m.Eng.After(1805, "during", func(simulator.Time) { during = m.Pw.TotalPower() })
	m.Eng.After(1817, "after", func(simulator.Time) { after = m.Pw.TotalPower() })
	// A cap set just above steady state is violated only during the burst.
	capW := 0.0
	viol := 0.0
	m.Eng.After(1700, "set-cap", func(simulator.Time) { capW = m.Pw.TotalPower() + 1 })
	m.Eng.Every(simulator.Second, "viol-probe", func(simulator.Time) {
		if capW > 0 && m.Pw.TotalPower() > capW {
			viol++
		}
	})
	m.Run(3000)
	want := before + 4*30 // IOPowerW on each of the 4 nodes
	if during != want {
		t.Fatalf("power during write = %f, want %f (base %f + 4×30)", during, want, before)
	}
	if after != before {
		t.Fatalf("power after write = %f, want back to %f", after, before)
	}
	if viol == 0 {
		t.Fatal("checkpoint burst did not register as a cap violation")
	}
	if viol > 17 {
		t.Fatalf("violation lasted %f s, want only the 16 s write window", viol)
	}
}

// TestCheckpointZeroConfigMatchesBaseline: a manager with the substrate
// disabled behaves bit-for-bit like the seed — same finish time, no
// checkpoint metrics — and so does FreeCheckpoint with a live config.
func TestCheckpointZeroConfigMatchesBaseline(t *testing.T) {
	run := func(m *Manager) simulator.Time {
		j := ckptJob(1, 4, 2*simulator.Hour)
		if err := m.Submit(j, 0); err != nil {
			t.Fatal(err)
		}
		m.Run(-1)
		if m.Metrics.CheckpointsWritten != 0 || m.Metrics.CheckpointRestores != 0 {
			t.Fatalf("inactive substrate wrote %d/%d checkpoints", m.Metrics.CheckpointsWritten, m.Metrics.CheckpointRestores)
		}
		return j.End
	}
	base := run(newTestManager(t))
	zero := run(NewManager(Options{Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: 1}))
	free := NewManager(Options{
		Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: 1,
		Checkpoint: checkpoint.Config{Interval: simulator.Hour, BWGBps: 10, StateFrac: 0.3},
	})
	free.FreeCheckpoint = true
	freeEnd := run(free)
	if base != zero || base != freeEnd {
		t.Fatalf("ends diverge: base=%d zero=%d free=%d", base, zero, freeEnd)
	}
}

// TestContendedCheckpointsSlowEachOther: two jobs whose periodic writes
// overlap share the burst-buffer bandwidth, so the contended write takes
// longer than an uncontended one.
func TestContendedCheckpointsSlowEachOther(t *testing.T) {
	m := ckptMgr(t, 30*simulator.Minute)
	j1 := ckptJob(1, 4, 2*simulator.Hour)
	j2 := ckptJob(2, 4, 2*simulator.Hour)
	if err := m.Submit(j1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(j2, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	// Both start at 0, both checkpoint at 1800: the first Begin sees one
	// in-flight (16 s), the second two (31 s). Total write stall across
	// the run reflects the contention (uncontended total would be 16×4).
	if m.Metrics.CheckpointWriteSeconds <= 64 {
		t.Fatalf("write stall = %f s, want > 64 (contention must cost)", m.Metrics.CheckpointWriteSeconds)
	}
	if j1.State != jobs.StateCompleted || j2.State != jobs.StateCompleted {
		t.Fatalf("states = %v/%v", j1.State, j2.State)
	}
}
