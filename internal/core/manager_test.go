package core

import (
	"strings"
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/jobs"
	"epajsrm/internal/power"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	return NewManager(Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      1,
	})
}

func mkJob(id int64, nodes int, run simulator.Time) *jobs.Job {
	return &jobs.Job{
		ID:            id,
		User:          "alice",
		Tag:           "app",
		Nodes:         nodes,
		Walltime:      run * 2,
		TrueRuntime:   run,
		PowerPerNodeW: 300,
		MemFrac:       0.3,
	}
}

func TestSingleJobLifecycle(t *testing.T) {
	m := newTestManager(t)
	j := mkJob(1, 4, simulator.Hour)
	if err := m.Submit(j, 100); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.Start != 100 {
		t.Fatalf("start = %d, want 100 (empty machine)", j.Start)
	}
	if got := j.End - j.Start; got != simulator.Hour {
		t.Fatalf("duration = %d, want %d", got, simulator.Hour)
	}
	if m.Metrics.Completed != 1 {
		t.Fatalf("completed = %d", m.Metrics.Completed)
	}
	// Energy: 4 nodes x 300 W x 3600 s for the job.
	want := 4.0 * 300 * 3600
	if j.EnergyJ < want*0.99 || j.EnergyJ > want*1.01 {
		t.Fatalf("job energy = %.0f J, want ~%.0f", j.EnergyJ, want)
	}
}

func TestJobsQueueWhenMachineFull(t *testing.T) {
	m := newTestManager(t) // 64 nodes
	a := mkJob(1, 64, simulator.Hour)
	b := mkJob(2, 64, simulator.Hour)
	if err := m.Submit(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(b, 1); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if a.State != jobs.StateCompleted || b.State != jobs.StateCompleted {
		t.Fatalf("states = %v/%v", a.State, b.State)
	}
	if b.Start < a.End {
		t.Fatalf("b started at %d before a ended at %d", b.Start, a.End)
	}
}

func TestBackfillShortJobJumpsQueue(t *testing.T) {
	m := newTestManager(t) // 64 nodes
	long := mkJob(1, 48, 4*simulator.Hour)
	wide := mkJob(2, 64, simulator.Hour)      // blocked behind long
	small := mkJob(3, 8, 30*simulator.Minute) // fits beside long, ends before long
	small.Walltime = 30 * simulator.Minute
	for i, j := range []*jobs.Job{long, wide, small} {
		if err := m.Submit(j, simulator.Time(i)); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(-1)
	if small.Start >= wide.Start {
		t.Fatalf("EASY should backfill the small job (small start %d, wide start %d)", small.Start, wide.Start)
	}
}

func TestRejectOversizedJob(t *testing.T) {
	m := newTestManager(t)
	j := mkJob(1, 1000, simulator.Hour)
	if err := m.Submit(j, 0); err == nil {
		t.Fatal("submitting a job larger than the machine should fail")
	}
}

func TestKillJob(t *testing.T) {
	m := newTestManager(t)
	j := mkJob(1, 4, simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Eng.After(30*simulator.Minute, "kill", func(now simulator.Time) {
		if !m.KillJob(1, "test", now) {
			t.Error("kill failed")
		}
	})
	m.Run(-1)
	if j.State != jobs.StateKilled || j.KillReason != "test" {
		t.Fatalf("state=%v reason=%q", j.State, j.KillReason)
	}
	if j.End-j.Start != 30*simulator.Minute {
		t.Fatalf("killed at %d, want 30 min", j.End-j.Start)
	}
	if m.Metrics.Killed != 1 {
		t.Fatalf("killed metric = %d", m.Metrics.Killed)
	}
	// Nodes must be free again.
	if got := m.Cl.AvailableCount(nil); got != 64 {
		t.Fatalf("available after kill = %d", got)
	}
}

func TestNodeCapSlowsJobDown(t *testing.T) {
	m := newTestManager(t)
	j := mkJob(1, 2, simulator.Hour)
	j.MemFrac = 0 // fully frequency-sensitive
	j.Walltime = 10 * simulator.Hour
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	// Cap the whole machine at start so the job runs capped from t=0.
	m.Eng.After(0, "cap", func(now simulator.Time) {
		for _, n := range m.Cl.Nodes {
			m.Pw.SetNodeCap(now, n, 200) // below the 300 W draw
		}
		m.RetimeAll(now)
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.End-j.Start <= simulator.Hour {
		t.Fatalf("capped job finished in %v, should be slower than nominal 1h", j.End-j.Start)
	}
}

func TestRetimeAfterCapRemoval(t *testing.T) {
	m := newTestManager(t)
	j := mkJob(1, 2, simulator.Hour)
	j.MemFrac = 0
	j.Walltime = 10 * simulator.Hour
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Eng.After(0, "cap", func(now simulator.Time) {
		for _, n := range m.Cl.Nodes {
			m.Pw.SetNodeCap(now, n, 200)
		}
		m.RetimeAll(now)
	})
	// Lift the cap halfway; the job should speed back up and finish sooner
	// than it would capped the whole way.
	m.Eng.After(30*simulator.Minute, "uncap", func(now simulator.Time) {
		for _, n := range m.Cl.Nodes {
			m.Pw.SetNodeCap(now, n, 0)
		}
		m.RetimeAll(now)
	})
	m.Run(-1)
	cappedFrac, ok := m.Pw.Model.FreqForCap(200, 300, 1)
	if !ok {
		t.Fatal("cap should be feasible")
	}
	fullCapped := simulator.Time(float64(simulator.Hour) / cappedFrac)
	if j.End-j.Start >= fullCapped {
		t.Fatalf("job took %v, no faster than fully-capped %v", j.End-j.Start, fullCapped)
	}
	if j.End-j.Start <= simulator.Hour {
		t.Fatalf("job took %v, cannot beat nominal 1h", j.End-j.Start)
	}
}

func TestWalltimeEnforcement(t *testing.T) {
	m := newTestManager(t)
	m.EnforceWalltime = true
	j := mkJob(1, 2, simulator.Hour)
	j.Walltime = 30 * simulator.Minute // lies about runtime
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if j.State != jobs.StateKilled {
		t.Fatalf("state = %v, want killed at walltime", j.State)
	}
	if j.End-j.Start != 30*simulator.Minute {
		t.Fatalf("killed after %v, want 30m", j.End-j.Start)
	}
}

func TestAdmissionRejection(t *testing.T) {
	m := newTestManager(t)
	m.OnAdmit(func(m *Manager, j *jobs.Job) (bool, string) {
		return j.Nodes <= 8, "too wide"
	})
	small := mkJob(1, 4, simulator.Hour)
	big := mkJob(2, 16, simulator.Hour)
	if err := m.Submit(small, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(big, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if small.State != jobs.StateCompleted {
		t.Fatalf("small state = %v", small.State)
	}
	if big.State != jobs.StateCancelled || big.KillReason != "too wide" {
		t.Fatalf("big state = %v reason=%q", big.State, big.KillReason)
	}
	if m.Metrics.Cancelled != 1 {
		t.Fatalf("cancelled = %d", m.Metrics.Cancelled)
	}
}

func TestStartGateHoldsJobs(t *testing.T) {
	m := newTestManager(t)
	open := false
	m.OnStartGate(func(m *Manager, j *jobs.Job) bool { return open })
	j := mkJob(1, 4, simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Eng.After(simulator.Hour, "open", func(now simulator.Time) {
		open = true
		m.TrySchedule(now)
	})
	m.Run(-1)
	if j.Start != simulator.Hour {
		t.Fatalf("gated job started at %d, want %d", j.Start, simulator.Hour)
	}
}

func TestFreqHookSlowsJob(t *testing.T) {
	m := newTestManager(t)
	m.OnFreq(func(m *Manager, j *jobs.Job) float64 { return 0.5 })
	j := mkJob(1, 2, simulator.Hour)
	j.MemFrac = 0
	j.Walltime = 10 * simulator.Hour
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if got, want := j.End-j.Start, 2*simulator.Hour; got != want {
		t.Fatalf("half-frequency compute-bound job took %v, want %v", got, want)
	}
}

func TestUtilizationMetric(t *testing.T) {
	m := newTestManager(t) // 64 nodes
	j := mkJob(1, 32, simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	// Run exactly 1h: 32/64 nodes busy the whole time = 50 %.
	m.Run(simulator.Hour)
	u := m.Metrics.Utilization(64)
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %.3f, want ~0.5", u)
	}
}

func TestEnergyConservation(t *testing.T) {
	// Total system energy must equal the integral of power: with one job on
	// an otherwise idle machine, total = job nodes at busy + rest at idle.
	m := newTestManager(t)
	j := mkJob(1, 4, simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	end := m.Run(simulator.Hour)
	total := m.Pw.TotalEnergy()
	wantBusy := 4.0 * 300 * 3600
	wantIdle := 60.0 * m.Pw.Model.IdleW * float64(end)
	want := wantBusy + wantIdle
	if total < want*0.999 || total > want*1.001 {
		t.Fatalf("total energy = %.0f, want ~%.0f", total, want)
	}
}

func TestManyJobsDrainCompletely(t *testing.T) {
	m := newTestManager(t)
	gen := workload.NewGenerator(workload.DefaultSpec(), 7)
	js := gen.Generate(200)
	for _, j := range js {
		if err := m.Submit(j, j.Submit); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(-1)
	if m.Metrics.Completed != 200 {
		t.Fatalf("completed = %d, want 200", m.Metrics.Completed)
	}
	if m.RunningCount() != 0 || m.Queue.Len() != 0 {
		t.Fatal("machine did not drain")
	}
	// All nodes idle at the end.
	if got := m.Cl.CountState(cluster.StateIdle); got != 64 {
		t.Fatalf("idle nodes at end = %d", got)
	}
	// Peak power never exceeds the physical maximum.
	peak, _ := m.Pw.PeakPower()
	if peak > m.Pw.MaxPossiblePower() {
		t.Fatalf("peak %.0f exceeds physical max %.0f", peak, m.Pw.MaxPossiblePower())
	}
}

func TestSharedEngineTwoManagers(t *testing.T) {
	eng := simulator.NewEngine()
	m1 := NewManager(Options{Cluster: cluster.DefaultConfig(), Engine: eng, Seed: 1})
	m2 := NewManager(Options{Cluster: cluster.DefaultConfig(), Engine: eng, Seed: 2})
	a := mkJob(1, 8, simulator.Hour)
	b := mkJob(1, 8, simulator.Hour)
	if err := m1.Submit(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := m2.Submit(b, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if a.State != jobs.StateCompleted || b.State != jobs.StateCompleted {
		t.Fatalf("states: %v %v", a.State, b.State)
	}
}

func TestPowerPredictorFeedback(t *testing.T) {
	m := newTestManager(t)
	var observed []float64
	UsePredictor(m, fakePredictor{observe: func(w float64) { observed = append(observed, w) }})
	j := mkJob(1, 4, simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if len(observed) != 1 {
		t.Fatalf("observations = %d, want 1", len(observed))
	}
	if observed[0] < 295 || observed[0] > 305 {
		t.Fatalf("observed per-node power = %.1f, want ~300", observed[0])
	}
}

type fakePredictor struct{ observe func(float64) }

func (f fakePredictor) Predict(j *jobs.Job) float64    { return 250 }
func (f fakePredictor) Observe(j *jobs.Job, w float64) { f.observe(w) }

var _ PowerPredictor = fakePredictor{}

func TestEstimatedStartPower(t *testing.T) {
	m := newTestManager(t)
	j := mkJob(1, 4, simulator.Hour) // 300 W/node, idle 90 W
	got := m.EstimatedStartPower(j)
	want := 4 * (300 - power.DefaultNodeModel().IdleW)
	if got != want {
		t.Fatalf("estimated start power = %f, want %f", got, want)
	}
}

func TestStatusRendersSnapshot(t *testing.T) {
	m := newTestManager(t)
	j := mkJob(1, 4, simulator.Hour)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	q := mkJob(2, 64, simulator.Hour) // must queue behind j? 64 > 60 free
	if err := m.Submit(q, 1); err != nil {
		t.Fatal(err)
	}
	var snap string
	m.Eng.After(10*simulator.Minute, "snap", func(simulator.Time) {
		snap = m.Status()
	})
	m.Run(-1)
	for _, want := range []string{
		"running (1)", "queued (1", "job 1", "job 2",
		"60 idle", "4 busy", "power:",
	} {
		if !strings.Contains(snap, want) {
			t.Fatalf("status missing %q:\n%s", want, snap)
		}
	}
}
