package core

import "epajsrm/internal/jobs"

// PowerPredictor is satisfied by the predictors in internal/predict:
// anything that can estimate per-node power pre-run and learn from
// measured outcomes.
type PowerPredictor interface {
	Predict(j *jobs.Job) float64
	Observe(j *jobs.Job, measuredPerNodeW float64)
}

// UsePredictor replaces the manager's oracle power estimator with a real
// predictor and wires the post-job feedback loop: every completed job's
// measured average per-node draw is fed back as a training observation —
// the production pattern at RIKEN (temperature-adjusted pre-run estimates)
// and CINECA (models regenerated from scalable monitoring data).
func UsePredictor(m *Manager, p PowerPredictor) {
	m.PowerEstimator = p.Predict
	m.OnJobEnd(func(m *Manager, j *jobs.Job) {
		dur := float64(j.End - j.Start)
		if j.State != jobs.StateCompleted || dur <= 0 || j.Nodes == 0 {
			return
		}
		p.Observe(j, j.EnergyJ/dur/float64(j.Nodes))
	})
}
