package core

import (
	"testing"

	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// TestSchedDeferCoalescesPasses submits a burst of arrivals inside one grid
// step and asserts they all start at the next grid instant via a single
// coalesced pass, not one pass per arrival.
func TestSchedDeferCoalescesPasses(t *testing.T) {
	m := newTestManager(t)
	m.SchedDefer = 60
	js := make([]*jobs.Job, 5)
	for i := range js {
		js[i] = mkJob(int64(i+1), 2, 10*simulator.Minute)
		if err := m.Submit(js[i], simulator.Time(3+i*7)); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(-1)
	if got := m.Metrics.Completed; got != 5 {
		t.Fatalf("completed %d of 5 jobs", got)
	}
	// All five arrivals land inside (0,60); the single coalesced pass at the
	// grid instant 60 starts all of them together.
	for _, j := range js {
		if j.Start != 60 {
			t.Errorf("job %d started at %v, want the grid instant 60", j.ID, j.Start)
		}
	}
	if m.LastSchedPass%60 != 0 {
		t.Errorf("last pass at %v, not on the 60 s grid", m.LastSchedPass)
	}
}

// TestSchedDeferZeroMatchesInline pins the default: with SchedDefer unset
// every arrival triggers an immediate pass, so an empty machine starts the
// job at its submit instant.
func TestSchedDeferZeroMatchesInline(t *testing.T) {
	m := newTestManager(t)
	j := mkJob(1, 2, 10*simulator.Minute)
	if err := m.Submit(j, 5); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if j.Start != 5 {
		t.Fatalf("inline mode start=%v, want 5", j.Start)
	}
}
