package core

import (
	"epajsrm/internal/cluster"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// Policy is one EPA JSRM capability. Attach is called once, before the
// simulation starts; the policy registers the hooks it needs and may
// schedule its own periodic events on m.Eng. This mirrors Figure 1 of the
// paper: policies sit between the job scheduler / resource manager pair and
// the energy/power monitoring + control planes.
type Policy interface {
	Name() string
	Attach(m *Manager)
}

// AdmitFunc decides at submission whether a job enters the queue. Returning
// (false, reason) cancels the job — RIKEN's pre-run power-estimate gate is
// an AdmitFunc.
type AdmitFunc func(m *Manager, j *jobs.Job) (ok bool, reason string)

// StartGateFunc is consulted every scheduling pass for each candidate job;
// returning false keeps the job waiting this pass (MS3's job-count limit,
// the boot-window power headroom check).
type StartGateFunc func(m *Manager, j *jobs.Job) bool

// NodeFilterFunc restricts which nodes a job may run on (layout-aware
// maintenance avoidance, capped/uncapped pools).
type NodeFilterFunc func(m *Manager, j *jobs.Job, n *cluster.Node) bool

// ShapeFunc may replace a job's shape (nodes, runtime) just before start —
// the moldable-jobs mechanism from the over-provisioning literature.
// Returning ok=false keeps the original shape.
type ShapeFunc func(m *Manager, j *jobs.Job, freeNodes int) (cfg jobs.MoldConfig, ok bool)

// FreqFunc proposes a frequency fraction for a job at start; the manager
// takes the minimum across policies (a job never runs faster than any
// policy allows).
type FreqFunc func(m *Manager, j *jobs.Job) float64

// PlaceFunc proposes a placement strategy for a job about to start
// (topology-aware allocation, survey Q6). The first registered hook that
// returns ok wins; the default is compact placement.
type PlaceFunc func(m *Manager, j *jobs.Job) (cluster.Strategy, bool)

// StartHook observes a job start (after nodes are allocated and power
// registered).
type StartHook func(m *Manager, j *jobs.Job, nodes []*cluster.Node)

// EndHook observes a job end (completion or kill), after energy metering.
type EndHook func(m *Manager, j *jobs.Job)

// FailureHook observes a job losing node n to a failure. requeued reports
// the outcome: true means the job went back to the queue, false means the
// requeue budget was exhausted and the job was killed (end hooks fire
// after the failure hooks in that case).
type FailureHook func(m *Manager, j *jobs.Job, n *cluster.Node, requeued bool)

// CkptEvent classifies a checkpoint lifecycle observation.
type CkptEvent int

const (
	// CkptWritten: a checkpoint image became durable; seconds is the wall
	// time the write stalled the job.
	CkptWritten CkptEvent = iota
	// CkptRestored: a restart read completed and compute resumed; seconds
	// is the read stall.
	CkptRestored
	// CkptRolledBack: a crash rolled the job back to its last durable
	// image; seconds is the nominal-frequency work discarded (per node).
	CkptRolledBack
)

// CheckpointHook observes checkpoint lifecycle events on a job.
type CheckpointHook func(m *Manager, j *jobs.Job, ev CkptEvent, seconds float64)

// hooks collects everything policies registered.
type hooks struct {
	admit       []AdmitFunc
	gates       []StartGateFunc
	filters     []NodeFilterFunc
	shapers     []ShapeFunc
	freqs       []FreqFunc
	placers     []PlaceFunc
	starts      []StartHook
	ends        []EndHook
	failures    []FailureHook
	checkpoints []CheckpointHook
}

// OnAdmit registers an admission hook.
func (m *Manager) OnAdmit(f AdmitFunc) { m.hooks.admit = append(m.hooks.admit, f) }

// OnStartGate registers a start gate.
func (m *Manager) OnStartGate(f StartGateFunc) { m.hooks.gates = append(m.hooks.gates, f) }

// OnNodeFilter registers a node eligibility filter.
func (m *Manager) OnNodeFilter(f NodeFilterFunc) { m.hooks.filters = append(m.hooks.filters, f) }

// OnShape registers a moldable-job shaper.
func (m *Manager) OnShape(f ShapeFunc) { m.hooks.shapers = append(m.hooks.shapers, f) }

// OnFreq registers a frequency selector.
func (m *Manager) OnFreq(f FreqFunc) { m.hooks.freqs = append(m.hooks.freqs, f) }

// OnPlacement registers a placement-strategy selector.
func (m *Manager) OnPlacement(f PlaceFunc) { m.hooks.placers = append(m.hooks.placers, f) }

// OnJobStart registers a start observer.
func (m *Manager) OnJobStart(f StartHook) { m.hooks.starts = append(m.hooks.starts, f) }

// OnJobEnd registers an end observer.
func (m *Manager) OnJobEnd(f EndHook) { m.hooks.ends = append(m.hooks.ends, f) }

// OnNodeFailure registers an observer for jobs that lose a node to a
// failure (requeue or kill).
func (m *Manager) OnNodeFailure(f FailureHook) { m.hooks.failures = append(m.hooks.failures, f) }

// OnCheckpoint registers an observer for checkpoint lifecycle events
// (image written, restart completed, crash rollback).
func (m *Manager) OnCheckpoint(f CheckpointHook) {
	m.hooks.checkpoints = append(m.hooks.checkpoints, f)
}

func (m *Manager) nodeEligible(j *jobs.Job, n *cluster.Node) bool {
	for _, f := range m.hooks.filters {
		if !f(m, j, n) {
			return false
		}
	}
	return true
}

func (m *Manager) gateOpen(j *jobs.Job) bool {
	for _, g := range m.hooks.gates {
		if !g(m, j) {
			return false
		}
	}
	return true
}

// StartGatesOpen reports whether every registered start gate currently
// admits job j. Policies that provision capacity (booting nodes for queued
// demand) consult this so they do not act for jobs that another policy is
// holding back — e.g. booting nodes for a job the boot-window power cap
// will refuse to start anyway.
func (m *Manager) StartGatesOpen(j *jobs.Job) bool { return m.gateOpen(j) }

func (m *Manager) chooseFreq(j *jobs.Job) float64 {
	frac := 1.0
	for _, f := range m.hooks.freqs {
		if v := f(m, j); v > 0 && v < frac {
			frac = v
		}
	}
	if frac < m.Pw.Model.MinFrac {
		frac = m.Pw.Model.MinFrac
	}
	return frac
}

// choosePlacement picks the placement strategy for a job: the first
// placement hook that expresses a preference wins, else compact.
func (m *Manager) choosePlacement(j *jobs.Job) cluster.Strategy {
	for _, f := range m.hooks.placers {
		if s, ok := f(m, j); ok {
			return s
		}
	}
	return cluster.PlaceCompact
}

// commSlowdown computes the placement-dependent runtime multiplier for a
// job's communication fraction from its placement span.
func (m *Manager) commSlowdown(j *jobs.Job, nodes []*cluster.Node) float64 {
	if j.CommFrac <= 0 || len(nodes) < 2 || m.TopoPenaltyPerHop <= 0 {
		return 1
	}
	span := cluster.PlacementSpan(nodes)
	if span <= 1 {
		return 1
	}
	// Communication phases stretch per hop beyond one rack; the rest of
	// the runtime is unaffected.
	commStretch := 1 + m.TopoPenaltyPerHop*float64(span-1)
	return (1 - j.CommFrac) + j.CommFrac*commStretch
}

// CommSlowdown exposes the multiplier applied to a running job, for
// experiments and reports (1 if unknown or not running).
func (m *Manager) CommSlowdown(id int64) float64 {
	if r := m.runningJobs[id]; r != nil && r.commSlow > 0 {
		return r.commSlow
	}
	return 1
}

// PolicyNames lists the attached policies in order, for Figure-1 style
// component reports.
func (m *Manager) PolicyNames() []string {
	var out []string
	for _, p := range m.policies {
		out = append(out, p.Name())
	}
	return out
}

// ScheduleEvery forwards to the engine; convenience for policies.
func (m *Manager) ScheduleEvery(period simulator.Time, name string, fn func(now simulator.Time)) func() {
	return m.Eng.Every(period, name, fn)
}
