package simulator

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(30, "c", func(Time) { order = append(order, 3) })
	e.After(10, "a", func(Time) { order = append(order, 1) })
	e.After(20, "b", func(Time) { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("end time = %d, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestEngineFIFOWithinSameTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5, "x", func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events fired out of order: %v", order)
		}
	}
}

func TestEngineRejectsPastEvents(t *testing.T) {
	e := NewEngine()
	e.After(10, "later", func(now Time) {
		if _, err := e.At(5, "past", func(Time) {}); err == nil {
			t.Error("scheduling in the past should fail")
		}
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(10, "x", func(Time) { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineRunUntilLeavesFutureEventsQueued(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.After(at, "x", func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(10)
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("fired = %v, want [5]", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("now = %d, want 10", e.Now())
	}
	e.RunUntil(30)
	if len(fired) != 3 {
		t.Fatalf("after continuing, fired = %v, want 3 events", fired)
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine()
	count := 0
	stop := e.Every(10, "tick", func(now Time) { count++ })
	defer stop()
	e.RunUntil(47)
	if count != 4 {
		t.Fatalf("ticks = %d, want 4 (at 10,20,30,40)", count)
	}
	if e.Now() != 47 {
		t.Fatalf("now = %d, want 47", e.Now())
	}
}

func TestEngineEveryStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var stop func()
	stop = e.Every(10, "tick", func(now Time) {
		count++
		if count == 3 {
			stop()
		}
	})
	e.RunUntil(1000)
	if count != 3 {
		t.Fatalf("ticks after stop = %d, want 3", count)
	}
}

func TestEngineDaemonsDoNotKeepRunAlive(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Every(10, "daemon", func(now Time) { ticks++ })
	e.After(35, "work", func(Time) {})
	end := e.Run() // unbounded: must stop once the one real event fired
	if end != 35 {
		t.Fatalf("end = %d, want 35", end)
	}
	if ticks != 3 {
		t.Fatalf("daemon ticks = %d, want 3 (at 10,20,30)", ticks)
	}
}

func TestEngineDaemonsRunToExplicitHorizon(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Every(10, "daemon", func(now Time) { ticks++ })
	e.RunUntil(100)
	if ticks != 10 {
		t.Fatalf("daemon ticks to horizon = %d, want 10", ticks)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func(now Time)
	recurse = func(now Time) {
		depth++
		if depth < 100 {
			e.After(1, "r", recurse)
		}
	}
	e.After(0, "r", recurse)
	end := e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if end != 99 {
		t.Fatalf("end = %d, want 99", end)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "00:00:00"},
		{61, "00:01:01"},
		{3661, "01:01:01"},
		{Day + Hour + Minute + 1, "1d01:01:01"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	for n := 1; n < 50; n++ {
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGRangeInclusive(t *testing.T) {
	r := NewRNG(11)
	sawLo, sawHi := false, false
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range(3,5) = %d", v)
		}
		if v == 3 {
			sawLo = true
		}
		if v == 5 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Error("Range never produced an endpoint in 1000 draws")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(100)
	}
	mean := sum / float64(n)
	if mean < 95 || mean > 105 {
		t.Fatalf("Exp(100) sample mean = %.2f, want ~100", mean)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(17)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("Normal mean = %.3f, want ~10", mean)
	}
	if variance < 3.5 || variance > 4.5 {
		t.Fatalf("Normal variance = %.3f, want ~4", variance)
	}
}

func TestRNGParetoBounds(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 5000; i++ {
		v := r.Pareto(1.5, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("Pareto out of bounds: %f", v)
		}
	}
}

func TestRNGChoiceWeights(t *testing.T) {
	r := NewRNG(23)
	counts := [3]int{}
	for i := 0; i < 10000; i++ {
		counts[r.Choice([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	// index 2 should be chosen ~3x as often as index 0.
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weight ratio = %.2f, want ~3", ratio)
	}
}

func TestRNGChoiceAllZeroWeightsUniform(t *testing.T) {
	r := NewRNG(29)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Choice([]float64{0, 0, 0})] = true
	}
	if len(seen) < 2 {
		t.Error("all-zero weights should fall back to uniform choice")
	}
}

func TestDaemonEventsDoNotKeepRunAlive(t *testing.T) {
	eng := NewEngine()
	fired := false
	eng.AfterDaemon(100, "daemon", func(Time) { fired = true })
	if end := eng.Run(); end != 0 {
		t.Fatalf("unbounded run advanced to %v on daemons alone", end)
	}
	if fired {
		t.Fatal("daemon fired with no live work")
	}
}

func TestDaemonEventsFireToHorizon(t *testing.T) {
	eng := NewEngine()
	var fires []Time
	eng.AfterDaemon(10, "d1", func(now Time) { fires = append(fires, now) })
	if _, err := eng.AtDaemon(25, "d2", func(now Time) { fires = append(fires, now) }); err != nil {
		t.Fatal(err)
	}
	eng.AfterDaemon(99, "d3", func(now Time) { fires = append(fires, now) })
	if end := eng.RunUntil(50); end != 50 {
		t.Fatalf("RunUntil ended at %v", end)
	}
	if len(fires) != 2 || fires[0] != 10 || fires[1] != 25 {
		t.Fatalf("fires = %v, want [10 25]", fires)
	}
}

func TestDaemonEventsFireWhileLiveWorkRemains(t *testing.T) {
	eng := NewEngine()
	daemonFired := false
	eng.AfterDaemon(10, "daemon", func(Time) { daemonFired = true })
	eng.After(20, "live", func(Time) {})
	if end := eng.Run(); end != 20 {
		t.Fatalf("run ended at %v, want 20", end)
	}
	if !daemonFired {
		t.Fatal("daemon before the last live event did not fire")
	}
}

func TestAtDaemonRejectsPast(t *testing.T) {
	eng := NewEngine()
	eng.After(10, "advance", func(Time) {})
	eng.Run()
	if _, err := eng.AtDaemon(5, "late", func(Time) {}); err == nil {
		t.Fatal("AtDaemon accepted an event in the past")
	}
}
