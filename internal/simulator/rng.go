package simulator

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64-based)
// used throughout the simulator so that every experiment is reproducible
// from a seed without depending on math/rand ordering guarantees.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Seed zero is remapped so the
// stream is never degenerate.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simulator: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		lo, hi = hi, lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value via Box-Muller.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)); mu and sigma are the parameters
// of the underlying normal, not the resulting distribution's mean.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a bounded Pareto sample in [lo, hi] with shape alpha,
// useful for heavy-tailed job runtimes.
func (r *RNG) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// Choice returns a random index weighted by the non-negative weights. If all
// weights are zero it returns a uniform index.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Split derives an independent generator, handy for giving each subsystem
// its own stream from one experiment seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
