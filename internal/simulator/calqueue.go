package simulator

import "sort"

// calQueue is the engine's pending-event structure: a calendar queue whose
// ring shards the timeline into one-second buckets (shard = At mod number
// of shards). Time is integral seconds and events cluster densely in the
// near future, so a fixed one-second shard width with a ring sized to the
// pending-event count gives O(1) amortized push and pop where the binary
// heap paid O(log n) — the difference between 25 ns and ~100 ns per event
// once a million arrivals are queued.
//
// Determinism contract: pop order is the unique global (At, seq) order,
// exactly the order the heap produced. Same-timestamp events always land in
// the same shard (shard index depends only on At), each shard is kept
// sorted by (At, seq), and the global minimum At lives in exactly one
// shard — so the popped head is the global (At, seq) minimum, not a
// per-shard approximation. Cancelled events stay queued and are popped
// dead in the same total order, matching the heap engine's lazy-discard
// behavior byte for byte.
type calQueue struct {
	shards [][]*Event
	mask   Time // len(shards)-1; len is a power of two
	size   int  // queued events, including dead ones not yet popped
	// cursor is a lower bound on the minimum At over queued events; peek
	// advances it shard by shard and jumps via a head scan when a full lap
	// finds nothing (the queue is sparse relative to the ring).
	cursor Time
	// head caches the event peek found so pop is O(shard occupancy) and the
	// engine's peek-then-pop loop does one search per event. nil = unknown.
	head *Event
	// solo marks that head is the only queued event and lives outside the
	// shards. The dominant engine rhythm — fire one event, schedule the
	// next — then never touches the ring at all.
	solo bool
}

const (
	minShards = 16
	// maxShards bounds ring memory (24 B of slice header per shard). 2^21
	// seconds is ~24 simulated days — a ring this size holds a month-long
	// backlog without laps.
	maxShards = 1 << 21
)

func eventLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *calQueue) len() int { return q.size }

// push inserts an event, keeping its shard sorted by (At, seq). Events
// arrive mostly in non-decreasing (At, seq), so the common case appends to
// the shard tail; the general case binary-searches the insertion point.
func (q *calQueue) push(e *Event) {
	if q.size == 0 {
		q.head = e
		q.solo = true
		q.cursor = e.At
		q.size = 1
		return
	}
	if q.shards == nil {
		q.shards = make([][]*Event, minShards)
		q.mask = minShards - 1
	}
	if q.solo {
		// A second event arrived; the solo head joins the ring so ordering
		// is uniform again.
		q.solo = false
		q.insert(q.head)
	}
	if q.size >= len(q.shards)*2 && len(q.shards) < maxShards {
		q.grow()
	}
	q.insert(e)
	q.size++
	if e.At < q.cursor {
		q.cursor = e.At
	}
	if q.head != nil && e.At < q.head.At {
		// A new event always has a larger seq, so only a strictly earlier
		// timestamp displaces the cached minimum.
		q.head = e
	}
}

// insert places an event into its shard, keeping the shard sorted.
func (q *calQueue) insert(e *Event) {
	b := e.At & q.mask
	s := q.shards[b]
	if n := len(s); n == 0 || eventLess(s[n-1], e) {
		s = append(s, e)
	} else {
		i := sort.Search(n, func(i int) bool { return eventLess(e, s[i]) })
		s = append(s, nil)
		copy(s[i+1:], s[i:])
		s[i] = e
	}
	q.shards[b] = s
}

// peek returns the (At, seq)-minimum queued event without removing it, or
// nil when empty.
func (q *calQueue) peek() *Event {
	if q.head != nil {
		return q.head
	}
	if q.size == 0 {
		return nil
	}
	misses := 0
	for {
		s := q.shards[q.cursor&q.mask]
		if len(s) > 0 && s[0].At == q.cursor {
			q.head = s[0]
			return q.head
		}
		q.cursor++
		misses++
		if misses > int(q.mask) {
			// A full lap found nothing due: every queued event is at least a
			// whole ring span away. Jump straight to the earliest shard head;
			// since a timestamp maps to exactly one shard, the minimum head
			// is the global minimum.
			var min *Event
			for _, s := range q.shards {
				if len(s) > 0 && (min == nil || eventLess(s[0], min)) {
					min = s[0]
				}
			}
			q.cursor = min.At
			q.head = min
			return min
		}
	}
}

// pop removes and returns the (At, seq)-minimum queued event, or nil when
// empty.
func (q *calQueue) pop() *Event {
	e := q.peek()
	if e == nil {
		return nil
	}
	if q.solo {
		q.solo = false
		q.head = nil
		q.size = 0
		return e
	}
	b := e.At & q.mask
	s := q.shards[b]
	copy(s, s[1:])
	s[len(s)-1] = nil
	q.shards[b] = s[:len(s)-1]
	q.size--
	q.head = nil
	if q.size <= len(q.shards)/8 && len(q.shards) > minShards {
		q.shrink()
	}
	return e
}

// grow doubles the ring. An old shard splits into exactly two new shards
// (the new high index bit of At decides which), and a stable partition of a
// sorted shard leaves both halves sorted — no comparison work.
func (q *calQueue) grow() {
	oldN := len(q.shards)
	next := make([][]*Event, oldN*2)
	newMask := Time(oldN*2 - 1)
	hi := Time(oldN)
	for b, s := range q.shards {
		if len(s) == 0 {
			continue
		}
		var lo, up []*Event
		for _, e := range s {
			if e.At&newMask&hi == 0 {
				lo = append(lo, e)
			} else {
				up = append(up, e)
			}
		}
		next[b] = lo
		next[b+oldN] = up
	}
	q.shards = next
	q.mask = newMask
}

// shrink halves the ring by merging shard pairs; merging two sorted shards
// keeps the result sorted.
func (q *calQueue) shrink() {
	oldN := len(q.shards)
	n := oldN / 2
	next := make([][]*Event, n)
	for b := 0; b < n; b++ {
		a, c := q.shards[b], q.shards[b+n]
		switch {
		case len(c) == 0:
			next[b] = a
		case len(a) == 0:
			next[b] = c
		default:
			m := make([]*Event, 0, len(a)+len(c))
			i, j := 0, 0
			for i < len(a) && j < len(c) {
				if eventLess(a[i], c[j]) {
					m = append(m, a[i])
					i++
				} else {
					m = append(m, c[j])
					j++
				}
			}
			m = append(m, a[i:]...)
			m = append(m, c[j:]...)
			next[b] = m
		}
	}
	q.shards = next
	q.mask = Time(n - 1)
}
