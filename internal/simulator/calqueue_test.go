package simulator

import (
	"container/heap"
	"fmt"
	"testing"
)

// refHeap is the reference ordering implementation the calendar queue is
// property-tested against: the exact binary heap the engine used before the
// calendar queue replaced it, comparing (At, seq).
type refHeap []*Event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(*Event)) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h *refHeap) popMin() *Event    { return heap.Pop(h).(*Event) }
func (h *refHeap) pushEv(e *Event)   { heap.Push(h, e) }

// storm drives a calQueue and the reference heap through an identical
// randomized op sequence — inserts (with heavy same-timestamp bursts),
// pops, cancels, and reschedules (cancel + re-insert at a new time, the way
// Every's ticks move) — asserting every pop agrees on (At, seq, dead).
func storm(t *testing.T, seed uint64, ops int, farFrac float64) {
	t.Helper()
	rng := NewRNG(seed)
	var q calQueue
	var ref refHeap
	var livePtrs []*Event // events queued in both, for cancel/reschedule picks
	var seq int64
	now := Time(0)

	push := func(at Time) {
		// Two twin events with identical (At, seq): one per structure.
		e1 := &Event{At: at, seq: seq}
		e2 := &Event{At: at, seq: seq}
		seq++
		q.push(e1)
		ref.pushEv(e2)
		livePtrs = append(livePtrs, e1, e2)
	}
	pop := func() {
		a := q.pop()
		var b *Event
		if ref.Len() > 0 {
			b = ref.popMin()
		}
		if (a == nil) != (b == nil) {
			t.Fatalf("pop presence mismatch: cal=%v heap=%v", a, b)
		}
		if a == nil {
			return
		}
		if a.At != b.At || a.seq != b.seq || a.dead != b.dead {
			t.Fatalf("pop order diverged: cal=(%d,%d,dead=%v) heap=(%d,%d,dead=%v)",
				a.At, a.seq, a.dead, b.At, b.seq, b.dead)
		}
		if a.At < now {
			t.Fatalf("pop went backwards in time: %d after %d", a.At, now)
		}
		now = a.At
	}
	randAt := func() Time {
		switch {
		case rng.Float64() < 0.35:
			// Same-timestamp burst target: a handful of hot seconds.
			return now + Time(rng.Intn(3))
		case rng.Float64() < farFrac:
			// Far future: exercises laps and the head-scan jump.
			return now + Time(rng.Intn(40*int(Day)))
		default:
			return now + Time(rng.Intn(7200))
		}
	}

	for i := 0; i < ops; i++ {
		switch r := rng.Float64(); {
		case r < 0.45:
			push(randAt())
			if rng.Float64() < 0.5 { // immediate burst sibling, same second
				push(now + Time(rng.Intn(2)))
			}
		case r < 0.75:
			pop()
		case r < 0.9 && len(livePtrs) > 0:
			// Cancel a random still-queued pair; both structures keep the
			// dead events and pop them in the same slot.
			k := rng.Intn(len(livePtrs)/2) * 2
			livePtrs[k].dead = true
			livePtrs[k+1].dead = true
		case len(livePtrs) > 0:
			// Reschedule: cancel then re-insert at a fresh timestamp.
			k := rng.Intn(len(livePtrs)/2) * 2
			livePtrs[k].dead = true
			livePtrs[k+1].dead = true
			push(randAt())
		}
		// Trim the pick list occasionally so it tracks mostly-live events.
		if len(livePtrs) > 4096 {
			livePtrs = livePtrs[2048:]
		}
	}
	for q.len() > 0 {
		pop()
	}
	if ref.Len() != 0 {
		t.Fatalf("heap has %d leftover events after calendar drained", ref.Len())
	}
}

func TestCalQueueMatchesHeapStorm(t *testing.T) {
	for _, tc := range []struct {
		seed    uint64
		ops     int
		farFrac float64
	}{
		{1, 20000, 0.05},
		{2, 20000, 0.3}, // lap-heavy: many far-future inserts
		{3, 5000, 0},    // dense near-term only
		{0xdead, 50000, 0.1},
	} {
		t.Run(fmt.Sprintf("seed=%d far=%v", tc.seed, tc.farFrac), func(t *testing.T) {
			storm(t, tc.seed, tc.ops, tc.farFrac)
		})
	}
}

// TestCalQueueSameSecondFIFO pins the tie-break contract directly: a burst
// of events at one timestamp pops in exact insertion-sequence order.
func TestCalQueueSameSecondFIFO(t *testing.T) {
	var q calQueue
	const n = 1000
	for i := 0; i < n; i++ {
		q.push(&Event{At: 42, seq: int64(i)})
	}
	for i := 0; i < n; i++ {
		e := q.pop()
		if e.At != 42 || e.seq != int64(i) {
			t.Fatalf("pop %d returned (At=%d, seq=%d)", i, e.At, e.seq)
		}
	}
}

// TestCalQueueGrowShrink pushes through several resize generations and
// checks global order end to end.
func TestCalQueueGrowShrink(t *testing.T) {
	rng := NewRNG(7)
	var q calQueue
	var want []*Event
	for i := 0; i < 50000; i++ {
		e := &Event{At: Time(rng.Intn(1 << 22)), seq: int64(i)}
		q.push(e)
		want = append(want, e)
	}
	if len(q.shards) <= minShards {
		t.Fatalf("ring never grew: %d shards for %d events", len(q.shards), q.len())
	}
	var prev *Event
	for i := 0; i < len(want); i++ {
		e := q.pop()
		if prev != nil && !eventLess(prev, e) {
			t.Fatalf("pop %d out of order: (%d,%d) after (%d,%d)", i, e.At, e.seq, prev.At, prev.seq)
		}
		prev = e
	}
	if q.pop() != nil {
		t.Fatal("queue not empty after draining")
	}
	if len(q.shards) != minShards {
		t.Fatalf("ring never shrank back: %d shards while empty", len(q.shards))
	}
}

// TestEnginePendingExcludesCancelled is the live-count contract: Pending
// drops immediately on Cancel even though the event struct stays queued
// until its timestamp comes up.
func TestEnginePendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	h1 := e.After(10, "a", func(Time) {})
	e.After(20, "b", func(Time) {})
	e.AfterDaemon(30, "d", func(Time) {})
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending=%d before cancel, want 3", got)
	}
	h1.Cancel()
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending=%d after cancel, want 2", got)
	}
	h1.Cancel() // double-cancel must not decrement twice
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending=%d after double cancel, want 2", got)
	}
	e.RunUntil(40) // past the daemon too, so everything fires
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending=%d after run, want 0", got)
	}
}
