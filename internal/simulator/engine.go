// Package simulator provides the discrete-event simulation engine that
// underlies every experiment in this repository. Time is virtual, measured
// in whole seconds from the start of a run, and events fire in (time,
// sequence) order so that runs are fully deterministic.
package simulator

import (
	"errors"
	"fmt"

	"epajsrm/internal/prof"
)

// Time is a virtual timestamp in seconds since the start of the simulation.
type Time int64

// Common durations, in seconds.
const (
	Second Time = 1
	Minute Time = 60
	Hour   Time = 3600
	Day    Time = 24 * Hour
)

func (t Time) String() string {
	d := t / Day
	h := (t % Day) / Hour
	m := (t % Hour) / Minute
	s := t % Minute
	if d > 0 {
		return fmt.Sprintf("%dd%02d:%02d:%02d", d, h, m, s)
	}
	return fmt.Sprintf("%02d:%02d:%02d", h, m, s)
}

// Event is a callback scheduled to run at a point in virtual time. Event
// objects are pooled: once an event fires (or a cancelled event is
// discarded), the engine recycles the struct for a future schedule. Holders
// therefore never keep an *Event across a fire — they hold a Handle, whose
// generation check makes a stale Cancel a safe no-op.
type Event struct {
	At   Time
	Name string
	Fn   func(now Time)

	seq    int64
	gen    uint64
	dead   bool
	daemon bool
	eng    *Engine
}

// Handle refers to a scheduled event. The zero Handle is valid and refers
// to nothing; Cancel on it is a no-op. Because events are pooled, a Handle
// embeds the generation of the event it was minted for: cancelling after
// the event fired — even if the struct has since been recycled into an
// unrelated event — does nothing.
type Handle struct {
	e   *Event
	gen uint64
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired (or the zero Handle) is a no-op.
func (h Handle) Cancel() {
	e := h.e
	if e == nil || e.gen != h.gen || e.dead {
		return
	}
	e.dead = true
	if e.eng != nil {
		if !e.daemon {
			e.eng.live--
		}
		e.eng.pending--
	}
}

// Pending reports whether the event is still queued to fire.
func (h Handle) Pending() bool {
	return h.e != nil && h.e.gen == h.gen && !h.e.dead
}

// Engine is a discrete-event simulation loop. The zero value is not usable;
// call NewEngine.
type Engine struct {
	now     Time
	queue   calQueue
	seq     int64
	stopped bool
	horizon Time
	fired   int64
	// live counts pending non-daemon events. Daemon events (periodic
	// control loops, telemetry samplers) never keep an unbounded run alive:
	// Run() ends when only daemons remain.
	live int
	// pending counts queued events that have not fired and have not been
	// cancelled — daemons included. Cancelled events stay in the queue until
	// their timestamp comes up, so this is maintained as a counter rather
	// than read off the queue length.
	pending int
	// free is the recycle list for fired/discarded Event structs; see Event.
	free []*Event

	// Prof, when non-nil, charges the dispatch loop to the prof.Events
	// phase — entered once per RunUntil call, not per event, so the
	// enabled cost is two clock reads per RunUntil. Subsystem phases
	// opened by event bodies nest inside it and attribute exclusively,
	// leaving the events row as "dispatch + unclaimed event bodies".
	Prof *prof.Profiler
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{horizon: -1}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() int64 { return e.fired }

// Pending reports how many scheduled events are still due to fire. A
// cancelled event leaves the count immediately even though its struct stays
// queued until its timestamp comes up, so ops surfaces and tests see the
// true backlog.
func (e *Engine) Pending() int { return e.pending }

// ErrPastEvent is returned by At when an event is scheduled before Now.
var ErrPastEvent = errors.New("simulator: event scheduled in the past")

// At schedules fn to run at the absolute virtual time at. Scheduling at the
// current time is allowed; the event runs after the currently executing
// event returns.
func (e *Engine) At(at Time, name string, fn func(now Time)) (Handle, error) {
	return e.at(at, name, fn, false)
}

func (e *Engine) at(at Time, name string, fn func(now Time), daemon bool) (Handle, error) {
	if at < e.now {
		return Handle{}, fmt.Errorf("%w: at=%d now=%d (%s)", ErrPastEvent, at, e.now, name)
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{At: at, Name: name, Fn: fn, seq: e.seq, gen: ev.gen, daemon: daemon, eng: e}
	} else {
		ev = &Event{At: at, Name: name, Fn: fn, seq: e.seq, eng: e, daemon: daemon}
	}
	e.seq++
	if !daemon {
		e.live++
	}
	e.pending++
	e.queue.push(ev)
	return Handle{e: ev, gen: ev.gen}, nil
}

// recycle returns a popped event to the freelist. Bumping the generation
// invalidates every outstanding Handle to it; dropping Fn releases the
// closure for the collector.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.Fn = nil
	e.free = append(e.free, ev)
}

// After schedules fn to run d seconds from now. A negative delay is clamped
// to zero.
func (e *Engine) After(d Time, name string, fn func(now Time)) Handle {
	if d < 0 {
		d = 0
	}
	ev, _ := e.At(e.now+d, name, fn)
	return ev
}

// AtDaemon schedules fn at an absolute time as a daemon event: it fires
// while other work keeps the simulation alive (or up to an explicit
// horizon), but never extends an unbounded Run on its own. Background
// processes with no natural end — fault injection, watchdogs — must use
// daemon events or a drained system would simulate forever.
func (e *Engine) AtDaemon(at Time, name string, fn func(now Time)) (Handle, error) {
	return e.at(at, name, fn, true)
}

// AfterDaemon is AtDaemon relative to now; a negative delay is clamped to
// zero.
func (e *Engine) AfterDaemon(d Time, name string, fn func(now Time)) Handle {
	if d < 0 {
		d = 0
	}
	ev, _ := e.at(e.now+d, name, fn, true)
	return ev
}

// Every schedules fn to run now+period, then every period thereafter, until
// the returned stop function is called or the run ends. The recurring
// events are daemons: they fire as long as other work keeps the simulation
// alive (or up to an explicit horizon), but never extend an unbounded Run
// on their own — a periodic control loop should not keep a drained system
// simulating forever.
func (e *Engine) Every(period Time, name string, fn func(now Time)) (stop func()) {
	if period <= 0 {
		period = 1
	}
	var cur Handle
	stopped := false
	var tick func(now Time)
	tick = func(now Time) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			cur, _ = e.at(e.now+period, name, tick, true)
		}
	}
	cur, _ = e.at(e.now+period, name, tick, true)
	return func() {
		stopped = true
		cur.Cancel()
	}
}

// Stop halts the run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty, Stop is called, or the
// event budget (1e9 events) is exhausted. It returns the final virtual time.
func (e *Engine) Run() Time {
	return e.RunUntil(-1)
}

// RunUntil executes events with timestamps <= horizon (horizon < 0 means no
// limit) and returns the final virtual time. Events beyond the horizon stay
// queued so the run can be continued.
func (e *Engine) RunUntil(horizon Time) Time {
	e.stopped = false
	const budget = int64(1e9)
	start := e.fired
	if e.Prof != nil {
		e.Prof.Enter(prof.Events)
		defer e.Prof.Exit()
	}
	for e.queue.len() > 0 && !e.stopped {
		if horizon < 0 && e.live == 0 {
			break // only daemons remain; an unbounded run is done
		}
		next := e.queue.peek()
		if horizon >= 0 && next.At > horizon {
			e.now = horizon
			return e.now
		}
		e.queue.pop()
		if next.dead {
			e.recycle(next)
			continue
		}
		next.dead = true
		if !next.daemon {
			e.live--
		}
		e.pending--
		e.now = next.At
		e.fired++
		fn := next.Fn
		e.recycle(next)
		fn(e.now)
		if e.fired-start > budget {
			panic("simulator: event budget exhausted; runaway event loop")
		}
	}
	if horizon >= 0 && e.now < horizon {
		e.now = horizon
	}
	return e.now
}
