// Package tsdb is a deterministic virtual-time time-series store over a
// metrics registry. A Store samples every registered metric on a fixed
// virtual-time cadence — counters as per-step deltas, gauges as values,
// histograms as p50/p95/p99 quantile-estimate gauges — into bounded ring
// buffers with two automatic downsampling tiers (by default 1 min raw →
// 15 min → 2 h rollups).
//
// Determinism contract: the store observes, never steers. Sampling draws
// no randomness, allocates no simulation state, and is driven by a daemon
// engine event, so a run with a store attached produces byte-identical
// reports to one without, and same-seed runs produce byte-identical
// sample streams. Rollups are pure functions of the raw samples: a
// rollup point is emitted only when a full window of raw samples has
// been observed, carries the timestamp of the *last contributing raw
// sample* (never a fabricated midpoint), and conserves counter sums
// exactly (a tier-1 window's value is the arithmetic sum of its raw
// deltas; gauge windows take the mean).
//
// The only mutable entry points are Sample (engine-driven, under the sim
// lock) and the read API, which takes the store's own mutex so HTTP
// scrapers may query concurrently with sampling.
package tsdb

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"epajsrm/internal/metrics"
	"epajsrm/internal/simulator"
)

// Sample is one observation: the virtual time it was taken and the value.
// For counter series the value is the delta accumulated over the step
// ending at T (i.e. the sample covers the window (T-step, T]).
type Sample struct {
	T simulator.Time
	V float64
}

// Tier indexes the resolution levels of a series.
type Tier int

const (
	// TierRaw holds every sample at the store's base cadence.
	TierRaw Tier = iota
	// TierMid holds rollups of midFactor raw steps (15 min at the
	// default 1-minute cadence).
	TierMid
	// TierLong holds rollups of longFactor raw steps (2 h default).
	TierLong
	numTiers
)

const (
	midFactor  = 15  // raw steps per mid rollup
	longFactor = 120 // raw steps per long rollup (2 h at 1-min raw)
)

// Config bounds the store. Zero values take defaults.
type Config struct {
	Step    simulator.Time // sampling cadence (default 1 virtual minute)
	RawCap  int            // raw ring capacity (default 2880 ≈ 2 days)
	MidCap  int            // 15-min ring capacity (default 1344 ≈ 14 days)
	LongCap int            // 2-h ring capacity (default 1092 ≈ 91 days)
}

func (c *Config) fill() {
	if c.Step <= 0 {
		c.Step = simulator.Minute
	}
	if c.RawCap <= 0 {
		c.RawCap = 2880
	}
	if c.MidCap <= 0 {
		c.MidCap = 1344
	}
	if c.LongCap <= 0 {
		c.LongCap = 1092
	}
}

// ring is a fixed-capacity circular buffer of samples.
type ring struct {
	buf  []Sample
	head int // index of the next write
	n    int // live count (≤ len(buf))
}

func newRing(cap int) ring { return ring{buf: make([]Sample, cap)} }

func (r *ring) push(s Sample) {
	r.buf[r.head] = s
	r.head = (r.head + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// at returns the i-th live sample, oldest first.
func (r *ring) at(i int) Sample {
	start := (r.head - r.n + len(r.buf)) % len(r.buf)
	return r.buf[(start+i)%len(r.buf)]
}

func (r *ring) oldest() (Sample, bool) {
	if r.n == 0 {
		return Sample{}, false
	}
	return r.at(0), true
}

func (r *ring) newest() (Sample, bool) {
	if r.n == 0 {
		return Sample{}, false
	}
	return r.at(r.n - 1), true
}

// all copies the live samples, oldest first.
func (r *ring) all() []Sample {
	out := make([]Sample, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.at(i)
	}
	return out
}

// accum gathers raw samples for one pending rollup window.
type accum struct {
	sum   float64
	max   float64
	n     int64
	lastT simulator.Time // time of the last contributing raw sample
}

func (a *accum) add(s Sample) {
	if a.n == 0 || s.V > a.max {
		a.max = s.V
	}
	a.sum += s.V
	a.n++
	a.lastT = s.T
}

func (a *accum) reset() { *a = accum{} }

// series is one named stream at all tiers. counter series roll up by
// sum (conserving the total delta); everything else rolls up by mean.
type series struct {
	counter bool
	last    float64 // previous absolute counter reading, for deltas
	tiers   [numTiers]ring
	acc     [numTiers - 1]accum // pending mid, long windows
}

// Store samples a registry into per-metric multi-tier rings.
type Store struct {
	mu     sync.Mutex
	reg    *metrics.Registry
	cfg    Config
	step   simulator.Time
	series map[string]*series
	names  []string // sorted keys of series
	ticks  int64
	lastT  simulator.Time
	taken  bool // at least one sample taken (distinguishes lastT==0)
}

// New builds a store over reg. It does not sample until Sample is called
// (core.Manager.AttachHistory installs the periodic engine event).
func New(reg *metrics.Registry, cfg Config) *Store {
	cfg.fill()
	return &Store{reg: reg, cfg: cfg, step: cfg.Step, series: map[string]*series{}}
}

// Step is the sampling cadence.
func (s *Store) Step() simulator.Time { return s.step }

// quantileSuffixes maps the derived gauge series a histogram expands to.
var quantileSuffixes = []struct {
	suffix string
	q      float64
}{
	{".p50", 0.50},
	{".p95", 0.95},
	{".p99", 0.99},
}

// Sample takes one observation of every registry metric at virtual time
// now. A repeated call at the same timestamp is a no-op, so the final
// end-of-run sample can be taken unconditionally.
func (s *Store) Sample(now simulator.Time) {
	snap := s.reg.Snapshot() // registry locks itself; keep it outside ours
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.taken && now == s.lastT {
		return
	}
	for _, p := range snap {
		switch p.Kind {
		case metrics.KindCounter:
			s.push(p.Name, true, now, p.Value)
		case metrics.KindGauge, metrics.KindFunc:
			s.push(p.Name, false, now, p.Value)
		case metrics.KindHistogram:
			for _, qs := range quantileSuffixes {
				s.push(p.Name+qs.suffix, false, now, p.Quantile(qs.q))
			}
			s.push(p.Name+".count", true, now, float64(p.Count))
		}
	}
	s.ticks++
	s.lastT = now
	s.taken = true
}

// push records one observation into a series, creating it on first
// sight, translating counters to deltas, and flushing rollup windows at
// tier boundaries.
func (s *Store) push(name string, counter bool, now simulator.Time, v float64) {
	sr, ok := s.series[name]
	if !ok {
		sr = &series{counter: counter}
		sr.tiers[TierRaw] = newRing(s.cfg.RawCap)
		sr.tiers[TierMid] = newRing(s.cfg.MidCap)
		sr.tiers[TierLong] = newRing(s.cfg.LongCap)
		s.series[name] = sr
		i := sort.SearchStrings(s.names, name)
		s.names = append(s.names, "")
		copy(s.names[i+1:], s.names[i:])
		s.names[i] = name
	}
	if counter {
		v, sr.last = v-sr.last, v
	}
	smp := Sample{T: now, V: v}
	sr.tiers[TierRaw].push(smp)
	sr.acc[0].add(smp)
	sr.acc[1].add(smp)
	// Window boundaries count samples, not wall positions, so a late-
	// registered series still rolls up full windows of its own samples.
	if sr.acc[0].n == midFactor {
		sr.tiers[TierMid].push(sr.rollup(&sr.acc[0]))
		sr.acc[0].reset()
	}
	if sr.acc[1].n == longFactor {
		sr.tiers[TierLong].push(sr.rollup(&sr.acc[1]))
		sr.acc[1].reset()
	}
}

func (sr *series) rollup(a *accum) Sample {
	v := a.sum // counters: conserve the summed delta
	if !sr.counter {
		v = a.sum / float64(a.n) // gauges: window mean
	}
	return Sample{T: a.lastT, V: v}
}

// Names lists every series, sorted, including the derived histogram
// quantile/count series.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.names...)
}

// TierStep is the effective cadence of a tier.
func (s *Store) TierStep(t Tier) simulator.Time {
	switch t {
	case TierMid:
		return s.step * midFactor
	case TierLong:
		return s.step * longFactor
	}
	return s.step
}

// Samples copies a tier's live samples, oldest first; ok is false for
// unknown series.
func (s *Store) Samples(name string, t Tier) ([]Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[name]
	if !ok || t < 0 || t >= numTiers {
		return nil, false
	}
	return sr.tiers[t].all(), true
}

// Last returns the newest raw sample of a series.
func (s *Store) Last(name string) (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[name]
	if !ok {
		return Sample{}, false
	}
	return sr.tiers[TierRaw].newest()
}

// pickTier chooses the tier answering a range query: the finest tier
// whose cadence is no finer than the requested step (step ≤ 0 means
// rawest available), escalated to coarser tiers while the chosen one has
// already evicted the start of the window and a coarser one still covers
// more of it.
func (s *Store) pickTier(sr *series, from simulator.Time, step simulator.Time) Tier {
	t := TierRaw
	for t < numTiers-1 && s.TierStep(t+1) <= step {
		t++
	}
	for t < numTiers-1 {
		o, ok := sr.tiers[t].oldest()
		if ok && o.T <= from {
			break
		}
		co, cok := sr.tiers[t+1].oldest()
		if !cok || (ok && co.T >= o.T) {
			break // coarser tier covers no further back
		}
		t++
	}
	return t
}

// Query returns the samples of a series in [from, to], served from the
// tier pickTier selects, along with that tier's cadence. Samples keep
// their native timestamps; step is a resolution hint, not a resampling
// grid. ok is false only for unknown series.
func (s *Store) Query(name string, from, to, step simulator.Time) (out []Sample, tierStep simulator.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, found := s.series[name]
	if !found {
		return nil, 0, false
	}
	t := s.pickTier(sr, from, step)
	r := &sr.tiers[t]
	for i := 0; i < r.n; i++ {
		smp := r.at(i)
		if smp.T < from || smp.T > to {
			continue
		}
		out = append(out, smp)
	}
	return out, s.TierStep(t), true
}

// Op selects the aggregation Reduce applies over a window.
type Op int

const (
	// OpSum adds sample values — the total counter delta over the
	// window (conserved across tiers).
	OpSum Op = iota
	// OpMean averages sample values.
	OpMean
	// OpMax takes the largest sample value.
	OpMax
	// OpLast takes the newest sample in the window.
	OpLast
	// OpIntegral sums value·cadence — a gauge's time integral over the
	// window in unit·seconds (watts → joules).
	OpIntegral
)

// Reduce aggregates a series over the half-open window (from, to] — the
// natural window for counter deltas, where a sample at T covers
// (T-cadence, T]. It serves from the finest tier still covering `from`
// and reports that tier's cadence so callers can judge resolution. n is
// the number of samples aggregated (0 ⇒ v is 0).
func (s *Store) Reduce(name string, from, to simulator.Time, op Op) (v float64, n int, tierStep simulator.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, found := s.series[name]
	if !found {
		return 0, 0, 0
	}
	t := s.pickTier(sr, from, 0)
	tierStep = s.TierStep(t)
	r := &sr.tiers[t]
	for i := 0; i < r.n; i++ {
		smp := r.at(i)
		if smp.T <= from || smp.T > to {
			continue
		}
		n++
		switch op {
		case OpSum:
			v += smp.V
		case OpMean:
			v += smp.V
		case OpMax:
			if n == 1 || smp.V > v {
				v = smp.V
			}
		case OpLast:
			v = smp.V
		case OpIntegral:
			v += smp.V * float64(tierStep)
		}
	}
	if op == OpMean && n > 0 {
		v /= float64(n)
	}
	return v, n, tierStep
}

// Now reports the time of the most recent sample.
func (s *Store) Now() (simulator.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastT, s.taken
}

// WriteQueryJSON renders a range-query result as deterministic JSON with
// fixed field order and 'g'-formatted numbers, shared by the ops /query
// endpoint and offline tooling.
func WriteQueryJSON(w io.Writer, metric string, tierStep, from, to simulator.Time, samples []Sample) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "{\n  \"metric\": %q,\n  \"step\": %d,\n  \"from\": %d,\n  \"to\": %d,\n  \"samples\": [", metric, int64(tierStep), int64(from), int64(to))
	for i, s := range samples {
		if i > 0 {
			ew.WriteString(",")
		}
		ew.WriteString("\n    {\"t\": ")
		ew.WriteString(strconv.FormatInt(int64(s.T), 10))
		ew.WriteString(", \"v\": ")
		ew.WriteString(strconv.FormatFloat(s.V, 'g', -1, 64))
		ew.WriteString("}")
	}
	if len(samples) > 0 {
		ew.WriteString("\n  ")
	}
	ew.WriteString("]\n}\n")
	return ew.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	var n int
	n, e.err = e.w.Write(p)
	return n, nil
}

func (e *errWriter) WriteString(s string) { e.Write([]byte(s)) }
