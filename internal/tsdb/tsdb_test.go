package tsdb

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"epajsrm/internal/metrics"
	"epajsrm/internal/simulator"
)

func TestCounterDeltasAndGauges(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("jobs.done")
	g := reg.Gauge("power.w")
	st := New(reg, Config{})
	for i := 1; i <= 3; i++ {
		c.Add(int64(i * 10)) // cumulative 10, 30, 60
		g.Set(float64(i * 100))
		st.Sample(simulator.Time(i) * simulator.Minute)
	}
	raw, ok := st.Samples("jobs.done", TierRaw)
	if !ok || len(raw) != 3 {
		t.Fatalf("raw = %v ok=%v, want 3 samples", raw, ok)
	}
	for i, want := range []float64{10, 20, 30} {
		if raw[i].V != want {
			t.Fatalf("delta[%d] = %g, want %g", i, raw[i].V, want)
		}
	}
	graw, _ := st.Samples("power.w", TierRaw)
	if graw[2].V != 300 {
		t.Fatalf("gauge sample = %g, want 300", graw[2].V)
	}
}

func TestHistogramExpandsToQuantileSeries(t *testing.T) {
	reg := metrics.New()
	h := reg.Histogram("wait", 10, 100, 1000)
	st := New(reg, Config{})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i))
	}
	st.Sample(simulator.Minute)
	names := st.Names()
	for _, want := range []string{"wait.p50", "wait.p95", "wait.p99", "wait.count"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing derived series %q in %v", want, names)
		}
	}
	p50, _ := st.Last("wait.p50")
	if p50.V <= 0 || p50.V > 100 {
		t.Fatalf("p50 = %g, want within (0, 100]", p50.V)
	}
	cnt, _ := st.Last("wait.count")
	if cnt.V != 100 {
		t.Fatalf("count delta = %g, want 100", cnt.V)
	}
}

func TestSampleDedupesRepeatedTimestamp(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("x")
	st := New(reg, Config{})
	c.Inc()
	st.Sample(simulator.Minute)
	c.Inc()
	st.Sample(simulator.Minute) // same stamp: ignored
	raw, _ := st.Samples("x", TierRaw)
	if len(raw) != 1 || raw[0].V != 1 {
		t.Fatalf("raw = %v, want single sample of 1", raw)
	}
}

func TestQueryTierSelection(t *testing.T) {
	reg := metrics.New()
	g := reg.Gauge("v")
	st := New(reg, Config{})
	for i := 1; i <= longFactor; i++ {
		g.Set(float64(i))
		st.Sample(simulator.Time(i) * simulator.Minute)
	}
	// step hint at mid cadence serves the mid tier.
	mid, step, ok := st.Query("v", 0, simulator.Day, 15*simulator.Minute)
	if !ok || step != 15*simulator.Minute {
		t.Fatalf("mid query step = %v ok=%v, want 15m", step, ok)
	}
	if len(mid) != longFactor/midFactor {
		t.Fatalf("mid samples = %d, want %d", len(mid), longFactor/midFactor)
	}
	// Rollup timestamps are the last contributing raw stamp.
	if mid[0].T != 15*simulator.Minute {
		t.Fatalf("first mid stamp = %v, want 15m", mid[0].T)
	}
	long, step, _ := st.Query("v", 0, simulator.Day, 2*simulator.Hour)
	if step != 2*simulator.Hour || len(long) != 1 {
		t.Fatalf("long query = %d samples step %v, want 1 at 2h", len(long), step)
	}
	// Raw query bounded to a window.
	raw, _, _ := st.Query("v", 5*simulator.Minute, 10*simulator.Minute, 0)
	if len(raw) != 6 {
		t.Fatalf("raw window = %d samples, want 6 (inclusive bounds)", len(raw))
	}
}

func TestQueryEscalatesWhenRawEvicted(t *testing.T) {
	reg := metrics.New()
	g := reg.Gauge("v")
	// Tiny raw ring: only the last 10 raw minutes survive.
	st := New(reg, Config{RawCap: 10})
	for i := 1; i <= 60; i++ {
		g.Set(1)
		st.Sample(simulator.Time(i) * simulator.Minute)
	}
	_, step, ok := st.Query("v", 0, simulator.Hour, 0)
	if !ok || step != 15*simulator.Minute {
		t.Fatalf("query from evicted range served tier step %v, want escalation to 15m", step)
	}
}

func TestReduceOps(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("n")
	g := reg.Gauge("w")
	st := New(reg, Config{})
	for i := 1; i <= 10; i++ {
		c.Add(2)
		g.Set(float64(10 * i))
		st.Sample(simulator.Time(i) * simulator.Minute)
	}
	if v, n, _ := st.Reduce("n", 0, 10*simulator.Minute, OpSum); v != 20 || n != 10 {
		t.Fatalf("OpSum = %g over %d, want 20 over 10", v, n)
	}
	if v, _, _ := st.Reduce("w", 0, 10*simulator.Minute, OpMean); v != 55 {
		t.Fatalf("OpMean = %g, want 55", v)
	}
	if v, _, _ := st.Reduce("w", 0, 10*simulator.Minute, OpMax); v != 100 {
		t.Fatalf("OpMax = %g, want 100", v)
	}
	if v, _, _ := st.Reduce("w", 0, 10*simulator.Minute, OpLast); v != 100 {
		t.Fatalf("OpLast = %g, want 100", v)
	}
	// Integral: Σ v·60s = 60·(10+…+100) = 33000 unit·seconds.
	if v, _, _ := st.Reduce("w", 0, 10*simulator.Minute, OpIntegral); v != 33000 {
		t.Fatalf("OpIntegral = %g, want 33000", v)
	}
	// Half-open window: the sample at exactly `from` is excluded.
	if v, n, _ := st.Reduce("n", 5*simulator.Minute, 10*simulator.Minute, OpSum); v != 10 || n != 5 {
		t.Fatalf("half-open OpSum = %g over %d, want 10 over 5", v, n)
	}
}

func TestWriteQueryJSONDeterministic(t *testing.T) {
	samples := []Sample{{T: 60, V: 1.5}, {T: 120, V: 2}}
	var a, b strings.Builder
	if err := WriteQueryJSON(&a, "m", 60, 0, 120, samples); err != nil {
		t.Fatal(err)
	}
	if err := WriteQueryJSON(&b, "m", 60, 0, 120, samples); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("render not deterministic")
	}
	want := "{\n  \"metric\": \"m\",\n  \"step\": 60,\n  \"from\": 0,\n  \"to\": 120,\n  \"samples\": [\n    {\"t\": 60, \"v\": 1.5},\n    {\"t\": 120, \"v\": 2}\n  ]\n}\n"
	if a.String() != want {
		t.Fatalf("render mismatch:\n%s\nwant:\n%s", a.String(), want)
	}
}

// TestRollupProperties is the downsampling property test: across random
// counter/gauge traffic, with a concurrent scraper hammering the read API
// (meaningful under -race), every rollup tier (a) conserves counter sums
// over the windows it covers, (b) never invents a sample whose timestamp
// lies outside the source window it was rolled up from, and (c) gauge
// rollups stay within the [min, max] envelope of their source window.
func TestRollupProperties(t *testing.T) {
	reg := metrics.New()
	c := reg.Counter("jobs.done")
	g := reg.Gauge("power.w")
	st := New(reg, Config{})
	rng := rand.New(rand.NewSource(42))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent scraper: exercises every read path
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.Names()
			st.Query("jobs.done", 0, simulator.Day, 0)
			st.Reduce("jobs.done", 0, simulator.Day, OpSum)
			st.Samples("power.w", TierMid)
			st.Last("power.w")
		}
	}()

	const steps = 3 * longFactor // three full long windows
	gaugeVals := make([]float64, 0, steps)
	var totalAdded int64
	for i := 1; i <= steps; i++ {
		add := int64(rng.Intn(50))
		c.Add(add)
		totalAdded += add
		gv := rng.Float64() * 1000
		g.Set(gv)
		gaugeVals = append(gaugeVals, gv)
		st.Sample(simulator.Time(i) * simulator.Minute)
	}
	close(stop)
	wg.Wait()

	raw, _ := st.Samples("jobs.done", TierRaw)
	var rawSum float64
	for _, s := range raw {
		rawSum += s.V
	}
	if rawSum != float64(totalAdded) {
		t.Fatalf("raw deltas sum to %g, counter accumulated %d", rawSum, totalAdded)
	}

	for _, tier := range []Tier{TierMid, TierLong} {
		factor := midFactor
		if tier == TierLong {
			factor = longFactor
		}
		rolls, _ := st.Samples("jobs.done", tier)
		if len(rolls) != steps/factor {
			t.Fatalf("tier %d: %d rollups, want %d", tier, len(rolls), steps/factor)
		}
		var rollSum float64
		for k, r := range rolls {
			rollSum += r.V
			// (b) the rollup's timestamp is exactly the last raw stamp
			// of its source window — never outside it.
			wantT := simulator.Time((k+1)*factor) * simulator.Minute
			if r.T != wantT {
				t.Fatalf("tier %d rollup %d stamped %v, want %v", tier, k, r.T, wantT)
			}
			// (a) per-window conservation against the raw deltas.
			var winSum float64
			for _, rs := range raw[k*factor : (k+1)*factor] {
				winSum += rs.V
			}
			if math.Abs(r.V-winSum) > 1e-9 {
				t.Fatalf("tier %d window %d sum %g, raw window sum %g", tier, k, r.V, winSum)
			}
		}
		if math.Abs(rollSum-float64(totalAdded)) > 1e-9 {
			t.Fatalf("tier %d conserves %g, counter accumulated %d", tier, rollSum, totalAdded)
		}

		// (c) gauge rollups are means bounded by their window envelope.
		grolls, _ := st.Samples("power.w", tier)
		for k, r := range grolls {
			win := gaugeVals[k*factor : (k+1)*factor]
			lo, hi := win[0], win[0]
			for _, v := range win {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			if r.V < lo-1e-9 || r.V > hi+1e-9 {
				t.Fatalf("tier %d gauge rollup %d = %g outside window envelope [%g, %g]", tier, k, r.V, lo, hi)
			}
		}
	}
}

// TestLateSeriesNeverInventsSamples: a series first observed mid-run has
// no samples stamped before its first observation at any tier.
func TestLateSeriesNeverInventsSamples(t *testing.T) {
	reg := metrics.New()
	g := reg.Gauge("early")
	st := New(reg, Config{})
	for i := 1; i <= 20; i++ {
		g.Set(1)
		st.Sample(simulator.Time(i) * simulator.Minute)
	}
	late := reg.Gauge("late")
	for i := 21; i <= 20+midFactor; i++ {
		late.Set(2)
		st.Sample(simulator.Time(i) * simulator.Minute)
	}
	for tier := TierRaw; tier < numTiers; tier++ {
		ss, _ := st.Samples("late", tier)
		for _, s := range ss {
			if s.T < 21*simulator.Minute {
				t.Fatalf("tier %d invented sample at %v before the series existed", tier, s.T)
			}
		}
	}
	if mid, _ := st.Samples("late", TierMid); len(mid) != 1 {
		t.Fatalf("late series mid rollups = %d, want 1 full window", len(mid))
	}
}
