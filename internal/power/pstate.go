// Package power implements the energy/power substrate every EPA JSRM
// mechanism in the survey actuates: a DVFS P-state model, a node power
// model with frequency scaling and manufacturing variability, RAPL-style
// hardware-enforced power caps, a CAPMC-style out-of-band control plane,
// exact energy accounting, telemetry sampling, and a facility model
// (cooling / PUE / site budget).
package power

import "fmt"

// PState is one DVFS operating point. Index 0 is the highest-frequency
// state (P0); larger indices are slower and lower-power, matching how
// ACPI-style P-state tables are ordered.
type PState struct {
	Index   int
	FreqGHz float64
}

// PStateTable is an ordered list of operating points, fastest first.
type PStateTable []PState

// DefaultPStates returns a 2.4 GHz nominal table stepping down to 1.2 GHz
// in 0.2 GHz steps, a typical server CPU DVFS range.
func DefaultPStates() PStateTable {
	var t PStateTable
	for i, f := 0, 2.4; f >= 1.199; i, f = i+1, f-0.2 {
		t = append(t, PState{Index: i, FreqGHz: f})
	}
	return t
}

// Validate checks table invariants: non-empty, strictly decreasing
// frequency, positive frequencies, contiguous indices.
func (t PStateTable) Validate() error {
	if len(t) == 0 {
		return fmt.Errorf("power: empty P-state table")
	}
	for i, p := range t {
		if p.Index != i {
			return fmt.Errorf("power: P-state %d has index %d", i, p.Index)
		}
		if p.FreqGHz <= 0 {
			return fmt.Errorf("power: P-state %d has non-positive frequency", i)
		}
		if i > 0 && p.FreqGHz >= t[i-1].FreqGHz {
			return fmt.Errorf("power: P-state table not strictly decreasing at %d", i)
		}
	}
	return nil
}

// Nominal returns the highest (P0) frequency in GHz.
func (t PStateTable) Nominal() float64 { return t[0].FreqGHz }

// Min returns the lowest frequency in GHz.
func (t PStateTable) Min() float64 { return t[len(t)-1].FreqGHz }

// Frac returns the frequency of state idx as a fraction of nominal.
func (t PStateTable) Frac(idx int) float64 {
	idx = t.Clamp(idx)
	return t[idx].FreqGHz / t.Nominal()
}

// Clamp bounds a state index into the table.
func (t PStateTable) Clamp(idx int) int {
	if idx < 0 {
		return 0
	}
	if idx >= len(t) {
		return len(t) - 1
	}
	return idx
}

// StateForFrac returns the slowest state whose frequency fraction is still
// >= frac, i.e. the most power-saving state that does not undershoot the
// requested speed. frac >= 1 returns P0; frac below the table minimum
// returns the deepest state.
func (t PStateTable) StateForFrac(frac float64) int {
	best := 0
	for i := range t {
		if t.Frac(i) >= frac {
			best = i
		} else {
			break
		}
	}
	return best
}
