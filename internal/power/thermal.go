package power

import (
	"math"

	"epajsrm/internal/simulator"
)

// ThermalModel is a first-order RC model of node temperature: each node's
// component temperature relaxes toward (inlet + Rth * draw) with time
// constant Tau. CINECA's research row builds "predictive models for node
// power and temperature evolution"; RIKEN's pre-run estimates are
// temperature-based; MS3 reasons about heat — this model is the substrate
// they all need.
type ThermalModel struct {
	// RthCPerW is the thermal resistance: steady-state rise above inlet per
	// watt of node draw.
	RthCPerW float64
	// TauSec is the relaxation time constant.
	TauSec float64
	// InletC returns the inlet air/water temperature at a virtual time —
	// typically derived from the facility climate plus a fixed offset for
	// the room.
	InletC func(t simulator.Time) float64
}

// DefaultThermalModel returns a model shaped like an air-cooled server:
// 0.08 C/W (a 360 W node runs ~29 C above inlet), 120 s time constant,
// 22 C fixed inlet.
func DefaultThermalModel() ThermalModel {
	return ThermalModel{
		RthCPerW: 0.08,
		TauSec:   120,
		InletC:   func(simulator.Time) float64 { return 22 },
	}
}

// Thermal tracks per-node temperatures over a power System. Updates are
// exact between observations because draw is piecewise constant: the
// first-order response has a closed form.
type Thermal struct {
	Model ThermalModel
	Sys   *System

	tempC []float64
	lastT simulator.Time
	maxC  []float64
}

// NewThermal initializes node temperatures at the steady state of the
// current draw.
func NewThermal(sys *System, model ThermalModel) *Thermal {
	if model.RthCPerW <= 0 {
		model.RthCPerW = 0.08
	}
	if model.TauSec <= 0 {
		model.TauSec = 120
	}
	if model.InletC == nil {
		model.InletC = func(simulator.Time) float64 { return 22 }
	}
	th := &Thermal{
		Model: model,
		Sys:   sys,
		tempC: make([]float64, sys.Cl.Size()),
		maxC:  make([]float64, sys.Cl.Size()),
	}
	inlet := model.InletC(0)
	for i := range th.tempC {
		th.tempC[i] = inlet + model.RthCPerW*sys.NodePower(i)
		th.maxC[i] = th.tempC[i]
	}
	return th
}

// Advance brings every node's temperature up to now, assuming the current
// draw held since the last call (call it from the telemetry/monitor
// sampling loop, whose period is short against job durations).
func (th *Thermal) Advance(now simulator.Time) {
	dt := float64(now - th.lastT)
	if dt <= 0 {
		return
	}
	decay := math.Exp(-dt / th.Model.TauSec)
	inlet := th.Model.InletC(now)
	for i := range th.tempC {
		target := inlet + th.Model.RthCPerW*th.Sys.NodePower(i)
		th.tempC[i] = target + (th.tempC[i]-target)*decay
		if th.tempC[i] > th.maxC[i] {
			th.maxC[i] = th.tempC[i]
		}
	}
	th.lastT = now
}

// NodeTemp returns node id's temperature as of the last Advance.
func (th *Thermal) NodeTemp(id int) float64 { return th.tempC[id] }

// MaxTemp returns the hottest temperature node id has reached.
func (th *Thermal) MaxTemp(id int) float64 { return th.maxC[id] }

// HottestNode returns the node with the highest current temperature.
func (th *Thermal) HottestNode() (id int, tempC float64) {
	for i, t := range th.tempC {
		if t > tempC {
			id, tempC = i, t
		}
	}
	return
}

// SteadyState returns the temperature node id would reach if its current
// draw held forever — the prediction CINECA-style models make.
func (th *Thermal) SteadyState(id int, at simulator.Time) float64 {
	return th.Model.InletC(at) + th.Model.RthCPerW*th.Sys.NodePower(id)
}

// PredictTemp returns the model's closed-form prediction of node id's
// temperature after holding the current draw for dt seconds — usable as a
// pre-actuation check ("will this placement overheat the rack?").
func (th *Thermal) PredictTemp(id int, at simulator.Time, dt simulator.Time) float64 {
	target := th.SteadyState(id, at)
	decay := math.Exp(-float64(dt) / th.Model.TauSec)
	return target + (th.tempC[id]-target)*decay
}
