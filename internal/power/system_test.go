package power

import (
	"math"
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/simulator"
)

func newTestSystem() (*System, *cluster.Cluster) {
	cl := cluster.New(cluster.DefaultConfig())
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0, nil)
	return sys, cl
}

func TestIdlePowerBaseline(t *testing.T) {
	sys, cl := newTestSystem()
	want := float64(cl.Size()) * sys.Model.IdleW
	if got := sys.TotalPower(); got != want {
		t.Fatalf("idle total = %f, want %f", got, want)
	}
}

func TestEnergyIntegrationExact(t *testing.T) {
	sys, cl := newTestSystem()
	nodes := cl.Allocate(1, 4, 0, nil)
	sys.StartJob(0, 1, nodes, 300, 0.3, 1)
	sys.Advance(1000)
	// 4 busy at 300 W + 60 idle at 90 W for 1000 s.
	want := (4*300 + 60*90) * 1000.0
	if got := sys.TotalEnergy(); math.Abs(got-want) > 1 {
		t.Fatalf("energy = %f, want %f", got, want)
	}
	if got := sys.JobEnergy(1); math.Abs(got-4*300*1000) > 1 {
		t.Fatalf("job energy = %f", got)
	}
}

func TestAdvanceIdempotent(t *testing.T) {
	sys, _ := newTestSystem()
	sys.Advance(100)
	e1 := sys.TotalEnergy()
	sys.Advance(100)
	if sys.TotalEnergy() != e1 {
		t.Fatal("Advance at same time changed energy")
	}
}

func TestAdvancePanicsOnTimeReversal(t *testing.T) {
	sys, _ := newTestSystem()
	sys.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backwards time")
		}
	}()
	sys.Advance(50)
}

func TestCapReducesPowerAndFrac(t *testing.T) {
	sys, cl := newTestSystem()
	nodes := cl.Allocate(1, 1, 0, nil)
	sys.StartJob(0, 1, nodes, 360, 0, 1)
	if got := sys.NodePower(nodes[0].ID); got != 360 {
		t.Fatalf("uncapped draw = %f", got)
	}
	if got := sys.JobFrac(1); got != 1 {
		t.Fatalf("uncapped frac = %f", got)
	}
	sys.SetNodeCap(10, nodes[0], 200)
	if got := sys.NodePower(nodes[0].ID); got > 200+1e-9 {
		t.Fatalf("capped draw = %f, want <= 200", got)
	}
	if got := sys.JobFrac(1); got >= 1 {
		t.Fatalf("capped frac = %f, want < 1", got)
	}
	sys.SetNodeCap(20, nodes[0], 0)
	if got := sys.NodePower(nodes[0].ID); got != 360 {
		t.Fatalf("uncapped again = %f", got)
	}
}

func TestJobFracIsCriticalPath(t *testing.T) {
	sys, cl := newTestSystem()
	nodes := cl.Allocate(1, 3, 0, nil)
	sys.StartJob(0, 1, nodes, 360, 0, 1)
	sys.SetNodeCap(0, nodes[1], 200) // one slow node
	frac, _ := sys.Model.FreqForCap(200, 360, 1)
	if got := sys.JobFrac(1); math.Abs(got-frac) > 1e-9 {
		t.Fatalf("job frac = %f, want slowest node's %f", got, frac)
	}
	fracs := sys.NodeFracs(1)
	if len(fracs) != 3 {
		t.Fatalf("node fracs = %d entries", len(fracs))
	}
	if fracs[nodes[0].ID] != 1 || fracs[nodes[2].ID] != 1 {
		t.Fatal("uncapped nodes should run at nominal")
	}
}

func TestSetJobFreq(t *testing.T) {
	sys, cl := newTestSystem()
	nodes := cl.Allocate(1, 2, 0, nil)
	sys.StartJob(0, 1, nodes, 360, 0, 1)
	p1 := sys.TotalPower()
	sys.SetJobFreq(10, 1, 0.5)
	if got := sys.JobFrac(1); got != 0.5 {
		t.Fatalf("frac = %f", got)
	}
	if sys.TotalPower() >= p1 {
		t.Fatal("halving frequency should reduce power")
	}
}

func TestVariabilityFactorsApplied(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig())
	rng := simulator.NewRNG(5)
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0.05, rng)
	distinct := map[float64]bool{}
	for i := 0; i < cl.Size(); i++ {
		vf := sys.VarFactor(i)
		if vf < 0.7 || vf > 1.3 {
			t.Fatalf("vf out of clamp: %f", vf)
		}
		distinct[vf] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("variability factors look degenerate: %d distinct", len(distinct))
	}
	// Busy power at full load must differ across nodes.
	n1 := cl.Allocate(1, 2, 0, nil)
	sys.StartJob(0, 1, n1, 360, 0, 1)
	if sys.NodePower(n1[0].ID) == sys.NodePower(n1[1].ID) &&
		sys.VarFactor(n1[0].ID) != sys.VarFactor(n1[1].ID) {
		t.Fatal("variability not reflected in draw")
	}
}

func TestPeakPowerTracking(t *testing.T) {
	sys, cl := newTestSystem()
	nodes := cl.Allocate(1, 10, 0, nil)
	sys.StartJob(0, 1, nodes, 360, 0, 1)
	peak1, at1 := sys.PeakPower()
	cl.Release(1, 100)
	sys.EndJob(100, 1, nodes)
	peak2, _ := sys.PeakPower()
	if peak2 != peak1 || at1 != 0 {
		t.Fatalf("peak should persist: %f@%d then %f", peak1, at1, peak2)
	}
}

func TestOffNodesDrawTricklePower(t *testing.T) {
	sys, cl := newTestSystem()
	n := cl.Nodes[0]
	cl.BeginShutdown(n, 0)
	sys.RefreshNode(0, n)
	if got := sys.NodePower(0); got != sys.Model.BootW {
		t.Fatalf("shutting-down draw = %f", got)
	}
	cl.FinishShutdown(n, 60)
	sys.RefreshNode(60, n)
	if got := sys.NodePower(0); got != sys.Model.OffW {
		t.Fatalf("off draw = %f", got)
	}
}

func TestMinMaxPossiblePower(t *testing.T) {
	sys, cl := newTestSystem()
	if got := sys.MinPossiblePower(); got != float64(cl.Size())*sys.Model.OffW {
		t.Fatalf("min possible = %f", got)
	}
	if got := sys.MaxPossiblePower(); got != float64(cl.Size())*sys.Model.MaxW {
		t.Fatalf("max possible = %f", got)
	}
}

func TestPowerOfNodes(t *testing.T) {
	sys, cl := newTestSystem()
	subset := cl.Nodes[:5]
	want := 5 * sys.Model.IdleW
	if got := sys.PowerOfNodes(subset); got != want {
		t.Fatalf("subset power = %f, want %f", got, want)
	}
}
