package power

import (
	"fmt"
	"sort"

	"epajsrm/internal/cluster"
	"epajsrm/internal/metrics"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
)

// Controller is a CAPMC-style out-of-band control plane: the administrative
// interface Cray ships on all XC systems (per the Trinity/LANL+Sandia and
// KAUST survey rows) for reading power and setting system-wide and
// node-level power caps without involving the jobs' in-band software.
// Every actuation is recorded in an audit log, since production sites need
// to reconstruct who capped what and when.
type Controller struct {
	Eng *simulator.Engine
	Sys *System

	// SystemCapW is the administrative whole-system cap; 0 disables it.
	// It is advisory bookkeeping at this layer — enforcement is done by the
	// policies that divide it into node caps (see DivideSystemCap).
	SystemCapW float64

	// Out-of-band cap actuations can fail in production (BMC timeouts,
	// management-network loss). FaultProb is the injected per-actuation
	// failure probability drawn from FaultRNG (both zero-valued by default:
	// actuations never fail). A failed actuation is retried with capped
	// exponential backoff in virtual time — RetryBase, doubling per
	// attempt, capped at RetryMaxDelay, at most RetryMax retries — and
	// every failure, retry and abandonment lands in the audit log.
	FaultProb float64
	FaultRNG  *simulator.RNG
	// RetryMax <= 0 means the default (4); RetryBase/RetryMaxDelay <= 0
	// mean the defaults (2 s and 60 s).
	RetryMax      int
	RetryBase     simulator.Time
	RetryMaxDelay simulator.Time

	// OnDeferredApply, if set, runs after an actuation succeeds on a retry
	// (asynchronously, outside the original caller's control flow). The
	// manager hooks this to re-time running jobs whose frequency the late
	// cap just changed.
	OnDeferredApply func(now simulator.Time)

	// Actuation fault counters for experiments and reports. Standalone
	// metrics counters so the owning manager can adopt them into its
	// registry (core wires them under actuation.*).
	ActuationFailures  *metrics.Counter
	ActuationRetries   *metrics.Counter
	ActuationAbandoned *metrics.Counter

	// Tr, when non-nil, receives an instant event per audited actuation on
	// the power track. Nil (the default) costs one pointer check per audit.
	Tr *trace.Tracer

	Audit []AuditEntry
}

// AuditEntry records one out-of-band actuation.
type AuditEntry struct {
	At     simulator.Time
	Action string
	Target string
	Value  float64
}

// NewController returns a control plane over sys.
func NewController(eng *simulator.Engine, sys *System) *Controller {
	return &Controller{
		Eng:                eng,
		Sys:                sys,
		ActuationFailures:  metrics.NewCounter(),
		ActuationRetries:   metrics.NewCounter(),
		ActuationAbandoned: metrics.NewCounter(),
	}
}

func (c *Controller) audit(action, target string, value float64) {
	c.Audit = append(c.Audit, AuditEntry{At: c.Eng.Now(), Action: action, Target: target, Value: value})
	if c.Tr != nil {
		c.Tr.Instant(trace.PidPower, 0, "capmc."+action, c.Eng.Now(),
			trace.Arg{Key: "target", Val: target}, trace.Arg{Key: "value", Val: value})
	}
}

// GetNodeEnergy returns node id's accumulated energy counter in joules,
// like CAPMC's get_node_energy_counter.
func (c *Controller) GetNodeEnergy(id int) (float64, error) {
	if id < 0 || id >= c.Sys.Cl.Size() {
		return 0, fmt.Errorf("capmc: no node %d", id)
	}
	c.Sys.Advance(c.Eng.Now())
	return c.Sys.nodeE[id], nil
}

// GetNodePower returns node id's instantaneous draw in watts.
func (c *Controller) GetNodePower(id int) (float64, error) {
	if id < 0 || id >= c.Sys.Cl.Size() {
		return 0, fmt.Errorf("capmc: no node %d", id)
	}
	return c.Sys.NodePower(id), nil
}

// GetSystemPower returns the whole-machine instantaneous draw.
func (c *Controller) GetSystemPower() float64 { return c.Sys.TotalPower() }

// SetNodeCap applies a node-level power cap out-of-band. capW below the
// node's off draw is rejected; capW = 0 removes the cap. An injected
// actuation failure (FaultProb) is not an error: the controller retries
// with capped exponential backoff and gives up only after RetryMax
// attempts, mirroring how production control planes absorb transient BMC
// faults without surfacing each one to the policy layer.
func (c *Controller) SetNodeCap(id int, capW float64) error {
	if id < 0 || id >= c.Sys.Cl.Size() {
		return fmt.Errorf("capmc: no node %d", id)
	}
	if capW < 0 {
		return fmt.Errorf("capmc: negative cap %f", capW)
	}
	if capW > 0 && capW < c.Sys.Model.OffW {
		return fmt.Errorf("capmc: cap %.1f W below off draw %.1f W", capW, c.Sys.Model.OffW)
	}
	c.applyNodeCap(id, capW, 0)
	return nil
}

func (c *Controller) actuationFails() bool {
	return c.FaultProb > 0 && c.FaultRNG != nil && c.FaultRNG.Float64() < c.FaultProb
}

// retryDelay returns the backoff before retry #attempt (0-based): base,
// 2*base, 4*base, ... capped at RetryMaxDelay.
func (c *Controller) retryDelay(attempt int) simulator.Time {
	base := c.RetryBase
	if base <= 0 {
		base = 2 * simulator.Second
	}
	maxDelay := c.RetryMaxDelay
	if maxDelay <= 0 {
		maxDelay = 60 * simulator.Second
	}
	d := base
	for i := 0; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	return d
}

// applyNodeCap performs one actuation attempt; on injected failure it
// schedules the next attempt as a daemon event (retries never keep a
// drained run alive).
func (c *Controller) applyNodeCap(id int, capW float64, attempt int) {
	n := c.Sys.Cl.Nodes[id]
	if c.actuationFails() {
		c.ActuationFailures.Inc()
		c.audit("set_node_cap.fail", n.Name, capW)
		retryMax := c.RetryMax
		if retryMax <= 0 {
			retryMax = 4
		}
		if attempt >= retryMax {
			c.ActuationAbandoned.Inc()
			c.audit("set_node_cap.abandon", n.Name, capW)
			return
		}
		c.ActuationRetries.Inc()
		c.Eng.AfterDaemon(c.retryDelay(attempt), "capmc-retry", func(simulator.Time) {
			c.applyNodeCap(id, capW, attempt+1)
		})
		return
	}
	c.Sys.SetNodeCap(c.Eng.Now(), n, capW)
	c.audit("set_node_cap", n.Name, capW)
	if attempt > 0 && c.OnDeferredApply != nil {
		c.OnDeferredApply(c.Eng.Now())
	}
}

// SetGroupCap applies one cap to every node in the group — JCAHPC's
// production capability ("set power caps for groups of nodes via the
// resource manager").
func (c *Controller) SetGroupCap(ids []int, capW float64) error {
	for _, id := range ids {
		if err := c.SetNodeCap(id, capW); err != nil {
			return err
		}
	}
	c.audit("set_group_cap", fmt.Sprintf("group(%d nodes)", len(ids)), capW)
	return nil
}

// SetSystemCap records an administrative system-wide cap and divides it
// uniformly across non-off nodes as node caps. LANL+Sandia's production row
// is exactly this: "administrator ability to set system-wide and node-level
// power caps".
func (c *Controller) SetSystemCap(capW float64) error {
	if capW < 0 {
		return fmt.Errorf("capmc: negative system cap")
	}
	c.SystemCapW = capW
	c.audit("set_system_cap", "system", capW)
	if capW == 0 {
		for _, n := range c.Sys.Cl.Nodes {
			c.applyNodeCap(n.ID, 0, 0)
		}
		return nil
	}
	caps := c.DivideSystemCap(capW)
	ids := make([]int, 0, len(caps))
	for id := range caps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c.applyNodeCap(id, caps[id], 0)
	}
	return nil
}

// DivideSystemCap splits a system cap into per-node caps over the nodes
// that are not powered off, clamped to at least the idle draw so a cap can
// always be satisfied by an idle node. Off nodes get their trickle draw
// reserved first.
func (c *Controller) DivideSystemCap(capW float64) map[int]float64 {
	var active []*cluster.Node
	reserved := 0.0
	for _, n := range c.Sys.Cl.Nodes {
		if n.State == cluster.StateOff || n.State == cluster.StateDown {
			reserved += c.Sys.Model.OffW
		} else {
			active = append(active, n)
		}
	}
	out := map[int]float64{}
	if len(active) == 0 {
		return out
	}
	per := (capW - reserved) / float64(len(active))
	if per < c.Sys.Model.IdleW {
		per = c.Sys.Model.IdleW
	}
	sort.Slice(active, func(i, j int) bool { return active[i].ID < active[j].ID })
	for _, n := range active {
		out[n.ID] = per
	}
	return out
}

// PowerOff begins an out-of-band node power-off (idle nodes only) and
// schedules completion after the configured shutdown delay.
func (c *Controller) PowerOff(id int) error {
	if id < 0 || id >= c.Sys.Cl.Size() {
		return fmt.Errorf("capmc: no node %d", id)
	}
	n := c.Sys.Cl.Nodes[id]
	now := c.Eng.Now()
	if !c.Sys.Cl.BeginShutdown(n, now) {
		return fmt.Errorf("capmc: node %s not idle (%s)", n.Name, n.State)
	}
	c.Sys.RefreshNode(now, n)
	c.audit("power_off", n.Name, 0)
	c.Eng.After(c.Sys.Cl.Cfg.ShutdownDelay, "capmc-off", func(t simulator.Time) {
		c.Sys.Cl.FinishShutdown(n, t)
		c.Sys.RefreshNode(t, n)
	})
	return nil
}

// PowerOn begins an out-of-band node boot and schedules completion after
// the configured boot delay. onReady, if non-nil, runs when the node is up.
func (c *Controller) PowerOn(id int, onReady func(now simulator.Time)) error {
	if id < 0 || id >= c.Sys.Cl.Size() {
		return fmt.Errorf("capmc: no node %d", id)
	}
	n := c.Sys.Cl.Nodes[id]
	now := c.Eng.Now()
	if !c.Sys.Cl.BeginBoot(n, now) {
		return fmt.Errorf("capmc: node %s not off (%s)", n.Name, n.State)
	}
	c.Sys.RefreshNode(now, n)
	c.audit("power_on", n.Name, 0)
	c.Eng.After(c.Sys.Cl.Cfg.BootDelay, "capmc-on", func(t simulator.Time) {
		c.Sys.Cl.FinishBoot(n, t)
		c.Sys.RefreshNode(t, n)
		if onReady != nil {
			onReady(t)
		}
	})
	return nil
}
