package power

import (
	"math"

	"epajsrm/internal/simulator"
)

// Climate is a sinusoidal outside-temperature model: a seasonal cycle over
// a year plus a daily cycle. RIKEN's production row bases pre-run power
// estimates on temperature, and LRZ's research row delays jobs when the
// cooling infrastructure is inefficient — both need weather.
type Climate struct {
	MeanC      float64 // annual mean temperature
	SeasonAmpC float64 // seasonal half-swing
	DailyAmpC  float64 // daily half-swing
	PhaseShift simulator.Time
}

// DefaultClimate returns a temperate climate: 12 C mean, +/-10 C seasonal,
// +/-5 C daily.
func DefaultClimate() Climate {
	return Climate{MeanC: 12, SeasonAmpC: 10, DailyAmpC: 5}
}

// TempAt returns the outside temperature at virtual time t (time zero is
// the start of spring, so mid-summer falls a quarter-year in).
func (c Climate) TempAt(t simulator.Time) float64 {
	year := float64(365 * simulator.Day)
	day := float64(simulator.Day)
	tt := float64(t + c.PhaseShift)
	season := math.Sin(2 * math.Pi * tt / year)
	daily := math.Sin(2 * math.Pi * tt / day)
	return c.MeanC + c.SeasonAmpC*season + c.DailyAmpC*daily
}

// IsSummer reports whether t falls in the warm half of the year; Tokyo
// Tech's boot-window capping is enforced "summer only".
func (c Climate) IsSummer(t simulator.Time) bool {
	year := float64(365 * simulator.Day)
	return math.Sin(2*math.Pi*float64(t+c.PhaseShift)/year) > 0
}

// Facility models the datacenter around the machine: a site power budget
// (Q2a), a cooling capacity (Q2b), and a temperature-dependent cooling
// overhead. PUE rises as outside temperature rises because chillers work
// harder — the coefficient is linear in (T - FreeCoolBelowC) above the
// free-cooling threshold.
type Facility struct {
	SiteBudgetW    float64 // total site power budget (IT + cooling); 0 = unlimited
	CoolingCapW    float64 // maximum heat the cooling plant can move; 0 = unlimited
	BasePUE        float64 // PUE at or below the free-cooling threshold
	PUEPerDegree   float64 // PUE increase per degree C above threshold
	FreeCoolBelowC float64
	Climate        Climate
}

// DefaultFacility returns a facility with PUE 1.1 under free cooling rising
// 0.01/°C above 15 °C, and no hard limits.
func DefaultFacility() *Facility {
	return &Facility{BasePUE: 1.1, PUEPerDegree: 0.01, FreeCoolBelowC: 15, Climate: DefaultClimate()}
}

// PUE returns the power usage effectiveness at time t.
func (f *Facility) PUE(t simulator.Time) float64 {
	temp := f.Climate.TempAt(t)
	pue := f.BasePUE
	if temp > f.FreeCoolBelowC {
		pue += f.PUEPerDegree * (temp - f.FreeCoolBelowC)
	}
	if pue < 1 {
		pue = 1
	}
	return pue
}

// CoolingPower returns the non-IT overhead draw for itW of compute at t.
func (f *Facility) CoolingPower(t simulator.Time, itW float64) float64 {
	return itW * (f.PUE(t) - 1)
}

// SitePower returns total facility draw for itW of compute at t.
func (f *Facility) SitePower(t simulator.Time, itW float64) float64 {
	return itW * f.PUE(t)
}

// ITBudget returns the largest IT draw that keeps the site inside both the
// site budget and the cooling capacity at time t. Returns +Inf when
// unconstrained.
func (f *Facility) ITBudget(t simulator.Time) float64 {
	limit := math.Inf(1)
	pue := f.PUE(t)
	if f.SiteBudgetW > 0 {
		limit = f.SiteBudgetW / pue
	}
	if f.CoolingCapW > 0 {
		// All IT power becomes heat; the plant must move it.
		if f.CoolingCapW < limit {
			limit = f.CoolingCapW
		}
	}
	return limit
}

// OverBudget reports whether itW of IT draw violates the facility limits
// at time t.
func (f *Facility) OverBudget(t simulator.Time, itW float64) bool {
	return itW > f.ITBudget(t)
}
