package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPStateTableDefaults(t *testing.T) {
	tb := DefaultPStates()
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	if tb.Nominal() != 2.4 {
		t.Fatalf("nominal = %f", tb.Nominal())
	}
	if tb.Min() > 1.21 || tb.Min() < 1.19 {
		t.Fatalf("min = %f", tb.Min())
	}
	if tb.Frac(0) != 1 {
		t.Fatalf("P0 frac = %f", tb.Frac(0))
	}
}

func TestPStateValidateRejectsBadTables(t *testing.T) {
	bad := []PStateTable{
		{},
		{{Index: 0, FreqGHz: 2.0}, {Index: 1, FreqGHz: 2.5}}, // increasing
		{{Index: 0, FreqGHz: 0}},                             // zero freq
		{{Index: 1, FreqGHz: 2.0}},                           // wrong index
	}
	for i, tb := range bad {
		if err := tb.Validate(); err == nil {
			t.Errorf("table %d should fail validation", i)
		}
	}
}

func TestStateForFrac(t *testing.T) {
	tb := DefaultPStates() // 2.4, 2.2, 2.0, 1.8, 1.6, 1.4, 1.2
	if got := tb.StateForFrac(1.0); got != 0 {
		t.Fatalf("frac 1.0 -> %d", got)
	}
	// 0.75 of 2.4 = 1.8: state index 3 has exactly 0.75.
	if got := tb.StateForFrac(0.75); tb.Frac(got) < 0.75 {
		t.Fatalf("frac 0.75 -> state %d with frac %f (undershoot)", got, tb.Frac(got))
	}
	if got := tb.StateForFrac(0.01); got != len(tb)-1 {
		t.Fatalf("tiny frac -> %d, want deepest", got)
	}
}

func TestBusyPowerMonotonicInFrequency(t *testing.T) {
	m := DefaultNodeModel()
	prev := 0.0
	for f := m.MinFrac; f <= 1.0; f += 0.05 {
		p := m.BusyPower(m.MaxW, f, 1)
		if p < prev {
			t.Fatalf("power not monotone at f=%.2f", f)
		}
		prev = p
	}
	if got := m.BusyPower(m.MaxW, 1, 1); got != m.MaxW {
		t.Fatalf("full power = %f, want %f", got, m.MaxW)
	}
	if got := m.BusyPower(m.IdleW, 1, 1); got != m.IdleW {
		t.Fatalf("idle-load power = %f", got)
	}
}

func TestFreqForCapInvertsBusyPower(t *testing.T) {
	m := DefaultNodeModel()
	f := func(capRaw, loadRaw uint16) bool {
		load := m.IdleW + float64(loadRaw%400)
		capW := m.IdleW + float64(capRaw%500)
		frac, ok := m.FreqForCap(capW, load, 1)
		p := m.BusyPower(load, frac, 1)
		if ok {
			// Must satisfy the cap (up to fp tolerance).
			return p <= capW+1e-6
		}
		// Infeasible: frac pinned at MinFrac.
		return frac == m.MinFrac
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreqForCapUncapped(t *testing.T) {
	m := DefaultNodeModel()
	if f, ok := m.FreqForCap(0, 300, 1); f != 1 || !ok {
		t.Fatalf("uncapped: f=%f ok=%v", f, ok)
	}
	if f, ok := m.FreqForCap(1000, 300, 1); f != 1 || !ok {
		t.Fatalf("loose cap: f=%f ok=%v", f, ok)
	}
	if f, ok := m.FreqForCap(m.IdleW-10, 300, 1); ok || f != m.MinFrac {
		t.Fatalf("cap below idle: f=%f ok=%v", f, ok)
	}
}

func TestSlowdownModel(t *testing.T) {
	if got := Slowdown(1, 0.5); got != 1 {
		t.Fatalf("nominal slowdown = %f", got)
	}
	if got := Slowdown(0.5, 0); got != 2 {
		t.Fatalf("compute-bound half-freq slowdown = %f, want 2", got)
	}
	if got := Slowdown(0.5, 1); got != 1 {
		t.Fatalf("fully memory-bound slowdown = %f, want 1", got)
	}
	// 50% memory bound at half frequency: 0.5 + 0.5*2 = 1.5.
	if got := Slowdown(0.5, 0.5); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("mixed slowdown = %f, want 1.5", got)
	}
}

func TestSlowdownAlwaysAtLeastOne(t *testing.T) {
	f := func(fr, mf uint8) bool {
		frac := 0.1 + float64(fr%90)/100
		mem := float64(mf%101) / 100
		return Slowdown(frac, mem) >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyToSolutionShape(t *testing.T) {
	m := DefaultNodeModel()
	// Compute-bound job (memFrac 0): slowing down stretches runtime 1/f
	// while dynamic power drops f^3 — energy still usually falls with
	// moderate downclock because dynamic >> idle here... verify the
	// qualitative DVFS result instead: for a memory-bound job, downclocking
	// saves energy; for nominal frequency both are exactly 1.
	if got := m.EnergyToSolution(m.MaxW, 1, 0.5); got != 1 {
		t.Fatalf("E(f=1) = %f, want 1", got)
	}
	memBound := m.EnergyToSolution(m.MaxW, 0.7, 0.8)
	if memBound >= 1 {
		t.Fatalf("memory-bound downclock energy = %f, should be < 1", memBound)
	}
	// And the memory-bound job saves more than the compute-bound one.
	cpuBound := m.EnergyToSolution(m.MaxW, 0.7, 0.0)
	if memBound >= cpuBound {
		t.Fatalf("memBound %.3f should save more than cpuBound %.3f", memBound, cpuBound)
	}
}

func TestModelValidate(t *testing.T) {
	good := DefaultNodeModel()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.MaxW = bad.IdleW - 1
	if err := bad.Validate(); err == nil {
		t.Error("MaxW < IdleW should fail")
	}
	bad = good
	bad.Alpha = 9
	if err := bad.Validate(); err == nil {
		t.Error("alpha 9 should fail")
	}
	bad = good
	bad.MinFrac = 0
	if err := bad.Validate(); err == nil {
		t.Error("MinFrac 0 should fail")
	}
}
