package power

import (
	"epajsrm/internal/metrics"
	"epajsrm/internal/prof"
	"epajsrm/internal/simulator"
	"epajsrm/internal/stats"
	"epajsrm/internal/trace"
)

// Reading is one telemetry sample of whole-system power.
type Reading struct {
	At    simulator.Time
	ITW   float64 // compute (IT) draw
	CoolW float64 // cooling overhead if a facility model is attached
}

// Telemetry periodically samples system power, the way every surveyed site
// runs continuous power/energy monitoring (STFC: "continuously collecting
// power and energy system monitoring info, data center, machine and job
// levels"). Samples feed both the online statistics and a bounded series
// kept for report plotting.
//
// Real sensor paths fail: the collector loses samples (dropout) or keeps
// reporting the last value it saw (stuck sensor). Both are modelled as
// outage windows toggled by SetOutage — typically driven by
// fault.Injector — and consumers detect either failure through Stale,
// which tracks the age of the last *genuine* sample.
type Telemetry struct {
	Sys      *System
	Fac      *Facility // optional
	Period   simulator.Time
	MaxKeep  int
	Series   []Reading
	ITStats  stats.Online
	SiteStat stats.Online

	// Dropped counts sampling instants lost to an outage (including
	// stuck-value instants, which record a stale repeat instead of a fresh
	// reading). A standalone metrics counter so the manager's registry can
	// adopt it (wired under telemetry.dropped).
	Dropped *metrics.Counter

	// Tr, when non-nil, receives one power-track counter sample per
	// genuine reading plus dropped/stuck instants.
	Tr *trace.Tracer

	// Prof, when non-nil, charges sampling to the prof.Telemetry phase.
	// Wired by core.Manager.AttachProfiler.
	Prof *prof.Profiler

	outage   bool
	stuck    bool
	lastGood Reading
	haveGood bool

	stop func()
}

// NewTelemetry creates a sampler with the given period; maxKeep bounds the
// retained series (older samples are dropped pairwise to stay O(maxKeep)).
func NewTelemetry(sys *System, fac *Facility, period simulator.Time, maxKeep int) *Telemetry {
	if period <= 0 {
		period = 30 * simulator.Second
	}
	if maxKeep <= 0 {
		maxKeep = 4096
	}
	return &Telemetry{Sys: sys, Fac: fac, Period: period, MaxKeep: maxKeep, Dropped: metrics.NewCounter()}
}

// Start begins sampling on eng. It returns the Telemetry for chaining.
func (t *Telemetry) Start(eng *simulator.Engine) *Telemetry {
	t.stop = eng.Every(t.Period, "telemetry", func(now simulator.Time) {
		t.SampleNow(now)
	})
	return t
}

// Stop halts sampling. It is idempotent and safe to call before Start.
func (t *Telemetry) Stop() {
	if t.stop != nil {
		t.stop()
		t.stop = nil
	}
}

// SetOutage begins or ends a sensor outage window. While the outage holds,
// stuck=false drops samples entirely and stuck=true repeats the last good
// reading with a fresh timestamp (the classic stuck-sensor failure); either
// way the last genuine sample stops advancing, so Stale eventually fires.
func (t *Telemetry) SetOutage(on, stuck bool) {
	t.outage = on
	t.stuck = on && stuck
}

// OutageActive reports whether an outage window is in effect.
func (t *Telemetry) OutageActive() bool { return t.outage }

// LastGood returns the most recent genuine reading (not a stuck repeat)
// and whether one exists yet.
func (t *Telemetry) LastGood() (Reading, bool) { return t.lastGood, t.haveGood }

// Stale reports whether the last genuine sample is older than threshold at
// time now. threshold <= 0 means three sampling periods — late enough that
// one missed sample does not trip it. Policies acting on power readings
// must degrade to a conservative static posture while Stale holds rather
// than trust data this old.
func (t *Telemetry) Stale(now, threshold simulator.Time) bool {
	if threshold <= 0 {
		threshold = 3 * t.Period
	}
	if !t.haveGood {
		return now > threshold
	}
	return now-t.lastGood.At > threshold
}

// Staleness returns the age in virtual seconds of the most recent genuine
// reading at time now, or -1 before any reading exists. It is the SLI
// behind the watchdog's telemetry-staleness rules: Stale gives policies a
// boolean posture, Staleness gives observers the continuous series.
func (t *Telemetry) Staleness(now simulator.Time) float64 {
	if !t.haveGood {
		return -1
	}
	return float64(now - t.lastGood.At)
}

// SampleNow takes one sample immediately. During an outage the physics
// still advances but no genuine reading is produced; a stuck sensor
// appends a repeat of the last good value so downstream consumers that
// ignore staleness see exactly the wrong number a stuck sensor reports.
func (t *Telemetry) SampleNow(now simulator.Time) Reading {
	t.Sys.Advance(now)
	if t.Prof != nil {
		t.Prof.Enter(prof.Telemetry)
		defer t.Prof.Exit()
	}
	if t.outage {
		t.Dropped.Inc()
		if t.stuck && t.haveGood {
			r := Reading{At: now, ITW: t.lastGood.ITW, CoolW: t.lastGood.CoolW}
			t.record(r)
			if t.Tr != nil {
				t.Tr.Instant(trace.PidPower, 0, "telemetry-stuck", now,
					trace.Arg{Key: "repeat_w", Val: r.ITW})
			}
			return r
		}
		if t.Tr != nil {
			t.Tr.Instant(trace.PidPower, 0, "telemetry-dropped", now)
		}
		return Reading{At: now}
	}
	it := t.Sys.TotalPower()
	cool := 0.0
	if t.Fac != nil {
		cool = t.Fac.CoolingPower(now, it)
	}
	r := Reading{At: now, ITW: it, CoolW: cool}
	t.lastGood = r
	t.haveGood = true
	t.record(r)
	if t.Tr != nil {
		t.Tr.Counter(trace.PidPower, "it_power_w", now, it)
	}
	return r
}

// record appends a reading to the stats and the bounded series. The series
// slab is sized to its bound up front: the halving below then recycles one
// backing array for the life of the run instead of regrowing it.
func (t *Telemetry) record(r Reading) {
	t.ITStats.Add(r.ITW)
	t.SiteStat.Add(r.ITW + r.CoolW)
	if t.Series == nil {
		t.Series = make([]Reading, 0, t.MaxKeep+1)
	}
	t.Series = append(t.Series, r)
	if len(t.Series) > t.MaxKeep {
		// Halve resolution: keep every other sample.
		kept := t.Series[:0]
		for i := 0; i < len(t.Series); i += 2 {
			kept = append(kept, t.Series[i])
		}
		t.Series = kept
	}
}

// MeasureSegment implements a PowerAPI-style scoped measurement: it returns
// a closure that, when called, reports the energy in joules consumed by the
// whole system between the two calls. STFC's research row describes exactly
// this programmable interface for application code segments.
func (t *Telemetry) MeasureSegment(now simulator.Time) func(end simulator.Time) float64 {
	t.Sys.Advance(now)
	startE := t.Sys.TotalEnergy()
	return func(end simulator.Time) float64 {
		t.Sys.Advance(end)
		return t.Sys.TotalEnergy() - startE
	}
}
