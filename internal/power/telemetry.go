package power

import (
	"epajsrm/internal/simulator"
	"epajsrm/internal/stats"
)

// Reading is one telemetry sample of whole-system power.
type Reading struct {
	At    simulator.Time
	ITW   float64 // compute (IT) draw
	CoolW float64 // cooling overhead if a facility model is attached
}

// Telemetry periodically samples system power, the way every surveyed site
// runs continuous power/energy monitoring (STFC: "continuously collecting
// power and energy system monitoring info, data center, machine and job
// levels"). Samples feed both the online statistics and a bounded series
// kept for report plotting.
type Telemetry struct {
	Sys      *System
	Fac      *Facility // optional
	Period   simulator.Time
	MaxKeep  int
	Series   []Reading
	ITStats  stats.Online
	SiteStat stats.Online

	stop func()
}

// NewTelemetry creates a sampler with the given period; maxKeep bounds the
// retained series (older samples are dropped pairwise to stay O(maxKeep)).
func NewTelemetry(sys *System, fac *Facility, period simulator.Time, maxKeep int) *Telemetry {
	if period <= 0 {
		period = 30 * simulator.Second
	}
	if maxKeep <= 0 {
		maxKeep = 4096
	}
	return &Telemetry{Sys: sys, Fac: fac, Period: period, MaxKeep: maxKeep}
}

// Start begins sampling on eng. It returns the Telemetry for chaining.
func (t *Telemetry) Start(eng *simulator.Engine) *Telemetry {
	t.stop = eng.Every(t.Period, "telemetry", func(now simulator.Time) {
		t.SampleNow(now)
	})
	return t
}

// Stop halts sampling.
func (t *Telemetry) Stop() {
	if t.stop != nil {
		t.stop()
	}
}

// SampleNow takes one sample immediately.
func (t *Telemetry) SampleNow(now simulator.Time) Reading {
	t.Sys.Advance(now)
	it := t.Sys.TotalPower()
	cool := 0.0
	if t.Fac != nil {
		cool = t.Fac.CoolingPower(now, it)
	}
	r := Reading{At: now, ITW: it, CoolW: cool}
	t.ITStats.Add(it)
	t.SiteStat.Add(it + cool)
	t.Series = append(t.Series, r)
	if len(t.Series) > t.MaxKeep {
		// Halve resolution: keep every other sample.
		kept := t.Series[:0]
		for i := 0; i < len(t.Series); i += 2 {
			kept = append(kept, t.Series[i])
		}
		t.Series = kept
	}
	return r
}

// MeasureSegment implements a PowerAPI-style scoped measurement: it returns
// a closure that, when called, reports the energy in joules consumed by the
// whole system between the two calls. STFC's research row describes exactly
// this programmable interface for application code segments.
func (t *Telemetry) MeasureSegment(now simulator.Time) func(end simulator.Time) float64 {
	t.Sys.Advance(now)
	startE := t.Sys.TotalEnergy()
	return func(end simulator.Time) float64 {
		t.Sys.Advance(end)
		return t.Sys.TotalEnergy() - startE
	}
}
