package power

import (
	"math"
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/simulator"
)

func TestClimateSeasonalCycle(t *testing.T) {
	c := DefaultClimate()
	spring := c.TempAt(0)
	summer := c.TempAt(91 * simulator.Day)
	winter := c.TempAt(274 * simulator.Day)
	if summer <= spring || winter >= spring {
		t.Fatalf("seasonal cycle wrong: spring=%.1f summer=%.1f winter=%.1f", spring, summer, winter)
	}
	if !c.IsSummer(91 * simulator.Day) {
		t.Fatal("day 91 should be summer")
	}
	if c.IsSummer(274 * simulator.Day) {
		t.Fatal("day 274 should be winter")
	}
}

func TestClimateDailyCycle(t *testing.T) {
	c := Climate{MeanC: 10, DailyAmpC: 5}
	quarterDay := 6 * simulator.Hour
	if got := c.TempAt(quarterDay); math.Abs(got-15) > 0.01 {
		t.Fatalf("quarter-day temp = %.2f, want 15", got)
	}
	if got := c.TempAt(18 * simulator.Hour); math.Abs(got-5) > 0.01 {
		t.Fatalf("three-quarter-day temp = %.2f, want 5", got)
	}
}

func TestPUEGrowsWithTemperature(t *testing.T) {
	f := DefaultFacility()
	f.Climate = Climate{MeanC: 30} // constant 30 C, above the 15 C threshold
	pueHot := f.PUE(0)
	f.Climate = Climate{MeanC: 5}
	pueCold := f.PUE(0)
	if pueCold != f.BasePUE {
		t.Fatalf("cold PUE = %f, want base %f", pueCold, f.BasePUE)
	}
	if pueHot <= pueCold {
		t.Fatalf("hot PUE %f should exceed cold %f", pueHot, pueCold)
	}
	want := f.BasePUE + 0.01*15
	if math.Abs(pueHot-want) > 1e-9 {
		t.Fatalf("hot PUE = %f, want %f", pueHot, want)
	}
}

func TestITBudgetRespectsSiteAndCooling(t *testing.T) {
	f := DefaultFacility()
	f.Climate = Climate{MeanC: 10}
	if !math.IsInf(f.ITBudget(0), 1) {
		t.Fatal("unconstrained facility should report infinite budget")
	}
	f.SiteBudgetW = 110
	want := 110 / f.BasePUE
	if got := f.ITBudget(0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("IT budget = %f, want %f", got, want)
	}
	f.CoolingCapW = 50
	if got := f.ITBudget(0); got != 50 {
		t.Fatalf("cooling-limited budget = %f", got)
	}
	if !f.OverBudget(0, 60) || f.OverBudget(0, 40) {
		t.Fatal("OverBudget thresholds wrong")
	}
}

func TestTelemetrySampling(t *testing.T) {
	eng := simulator.NewEngine()
	cl := cluster.New(cluster.DefaultConfig())
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0, nil)
	tel := NewTelemetry(sys, nil, 10*simulator.Second, 0).Start(eng)
	eng.RunUntil(100)
	if got := tel.ITStats.N(); got != 10 {
		t.Fatalf("samples = %d, want 10", got)
	}
	wantIdle := float64(cl.Size()) * sys.Model.IdleW
	if tel.ITStats.Mean() != wantIdle {
		t.Fatalf("mean = %f, want %f", tel.ITStats.Mean(), wantIdle)
	}
	if len(tel.Series) != 10 {
		t.Fatalf("series length = %d", len(tel.Series))
	}
	tel.Stop()
	eng.RunUntil(200)
	if got := tel.ITStats.N(); got != 10 {
		t.Fatalf("sampler kept running after Stop: %d", got)
	}
}

func TestTelemetrySeriesDecimation(t *testing.T) {
	eng := simulator.NewEngine()
	cl := cluster.New(cluster.DefaultConfig())
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0, nil)
	tel := NewTelemetry(sys, nil, 1*simulator.Second, 16).Start(eng)
	eng.RunUntil(100)
	if len(tel.Series) > 16 {
		t.Fatalf("series grew beyond cap: %d", len(tel.Series))
	}
	if tel.ITStats.N() != 100 {
		t.Fatalf("stats must not be decimated: %d", tel.ITStats.N())
	}
}

func TestTelemetryCoolingReadings(t *testing.T) {
	eng := simulator.NewEngine()
	cl := cluster.New(cluster.DefaultConfig())
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0, nil)
	fac := DefaultFacility()
	fac.Climate = Climate{MeanC: 25} // constant: PUE = 1.1 + 0.01*10 = 1.2
	tel := NewTelemetry(sys, fac, 10*simulator.Second, 0).Start(eng)
	eng.RunUntil(10)
	r := tel.Series[0]
	if math.Abs(r.CoolW-r.ITW*0.2) > 1e-6 {
		t.Fatalf("cooling = %f for IT %f, want 20%%", r.CoolW, r.ITW)
	}
}

func TestMeasureSegment(t *testing.T) {
	eng := simulator.NewEngine()
	cl := cluster.New(cluster.DefaultConfig())
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0, nil)
	tel := NewTelemetry(sys, nil, simulator.Minute, 0)
	done := tel.MeasureSegment(0)
	eng.After(500, "x", func(simulator.Time) {})
	eng.Run()
	e := done(500)
	want := float64(cl.Size()) * sys.Model.IdleW * 500
	if math.Abs(e-want) > 1 {
		t.Fatalf("segment energy = %f, want %f", e, want)
	}
}
