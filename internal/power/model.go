package power

import (
	"fmt"
	"math"
)

// NodeModel captures how much one node draws in each lifecycle state and
// how dynamic power scales with frequency. Dynamic power follows
// D(f) = D0 * (f/f0)^Alpha with Alpha typically between 2 (frequency-only
// scaling) and 3 (voltage tracks frequency); the ablation bench
// BenchmarkAblationPowerExponent sweeps this.
type NodeModel struct {
	OffW    float64 // BMC/trickle draw when powered off
	BootW   float64 // draw during boot/shutdown sequences
	IdleW   float64 // draw when up and idle at any frequency
	MaxW    float64 // draw at nominal frequency under a full-power workload
	Alpha   float64 // dynamic power exponent
	MinFrac float64 // lowest reachable frequency as a fraction of nominal
}

// DefaultNodeModel returns a model shaped like a dual-socket x86 node:
// ~360 W flat out, ~90 W idle, 15 W off.
func DefaultNodeModel() NodeModel {
	return NodeModel{OffW: 15, BootW: 120, IdleW: 90, MaxW: 360, Alpha: 3, MinFrac: 0.5}
}

// Validate checks model invariants.
func (m NodeModel) Validate() error {
	if m.OffW < 0 || m.BootW < 0 || m.IdleW < 0 || m.MaxW < 0 {
		return fmt.Errorf("power: negative wattage in node model")
	}
	if m.MaxW < m.IdleW {
		return fmt.Errorf("power: MaxW %.1f < IdleW %.1f", m.MaxW, m.IdleW)
	}
	if m.Alpha < 1 || m.Alpha > 4 {
		return fmt.Errorf("power: implausible alpha %.2f", m.Alpha)
	}
	if m.MinFrac <= 0 || m.MinFrac > 1 {
		return fmt.Errorf("power: MinFrac %.2f out of (0,1]", m.MinFrac)
	}
	return nil
}

// BusyPower returns node draw when running a workload whose draw at nominal
// frequency would be loadW (IdleW <= loadW), scaled to frequency fraction
// frac and multiplied by the node's manufacturing variability factor vf
// (applied to the dynamic component only, following Inadomi et al.'s
// observation that variability shows up under load).
func (m NodeModel) BusyPower(loadW, frac, vf float64) float64 {
	if loadW < m.IdleW {
		loadW = m.IdleW
	}
	if frac < m.MinFrac {
		frac = m.MinFrac
	}
	if frac > 1 {
		frac = 1
	}
	if vf <= 0 {
		vf = 1
	}
	dyn := (loadW - m.IdleW) * vf * math.Pow(frac, m.Alpha)
	return m.IdleW + dyn
}

// FreqForCap inverts BusyPower: the largest frequency fraction at which the
// node stays at or under capW while running a loadW workload. Returns
// (frac, ok); ok is false when even the minimum frequency exceeds the cap
// (the cap is infeasible — hardware would still clamp to MinFrac, which is
// what the returned frac reflects).
func (m NodeModel) FreqForCap(capW, loadW, vf float64) (float64, bool) {
	if capW <= 0 { // uncapped
		return 1, true
	}
	if loadW < m.IdleW {
		loadW = m.IdleW
	}
	if vf <= 0 {
		vf = 1
	}
	dyn0 := (loadW - m.IdleW) * vf
	if dyn0 <= 0 {
		return 1, capW >= m.IdleW
	}
	if capW >= m.IdleW+dyn0 {
		return 1, true
	}
	if capW <= m.IdleW {
		return m.MinFrac, false
	}
	frac := math.Pow((capW-m.IdleW)/dyn0, 1/m.Alpha)
	if frac < m.MinFrac {
		return m.MinFrac, false
	}
	return frac, true
}

// Slowdown returns the runtime multiplier for a job running at frequency
// fraction frac when memFrac of its time does not scale with core frequency
// (memory/communication phases): t(f) = t0 * (memFrac + (1-memFrac)/frac).
// This is the standard linear-phase model used by Freeh et al. and the DVFS
// scheduling literature the survey cites.
func Slowdown(frac, memFrac float64) float64 {
	if frac <= 0 {
		frac = 1e-9
	}
	if frac > 1 {
		frac = 1
	}
	if memFrac < 0 {
		memFrac = 0
	}
	if memFrac > 1 {
		memFrac = 1
	}
	return memFrac + (1-memFrac)/frac
}

// EnergyToSolution returns relative energy (vs nominal frequency) for a job
// with the given memory-bound fraction run at frequency fraction frac,
// using the model's idle/max split with nominal load loadW. Used by the
// energy-tag policy to pick each application's best frequency.
func (m NodeModel) EnergyToSolution(loadW, frac, memFrac float64) float64 {
	p := m.BusyPower(loadW, frac, 1)
	p0 := m.BusyPower(loadW, 1, 1)
	if p0 == 0 {
		return 1
	}
	return (p * Slowdown(frac, memFrac)) / p0
}
