package power

import (
	"math"
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/simulator"
)

func newThermalRig() (*Thermal, *System, *cluster.Cluster) {
	cl := cluster.New(cluster.DefaultConfig())
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0, nil)
	th := NewThermal(sys, DefaultThermalModel())
	return th, sys, cl
}

func TestThermalStartsAtSteadyState(t *testing.T) {
	th, sys, _ := newThermalRig()
	want := 22 + 0.08*sys.Model.IdleW // idle node at default inlet
	if got := th.NodeTemp(0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("initial temp = %f, want %f", got, want)
	}
}

func TestThermalApproachesNewSteadyState(t *testing.T) {
	th, sys, cl := newThermalRig()
	nodes := cl.Allocate(1, 1, 0, nil)
	sys.StartJob(0, 1, nodes, 360, 0, 1)
	id := nodes[0].ID
	target := 22 + 0.08*360.0

	// After one time constant the gap closes to ~37 %.
	start := th.NodeTemp(id)
	th.Advance(simulator.Time(th.Model.TauSec))
	gapFrac := (target - th.NodeTemp(id)) / (target - start)
	if math.Abs(gapFrac-math.Exp(-1)) > 0.01 {
		t.Fatalf("after tau, gap fraction = %f, want ~1/e", gapFrac)
	}
	// After many time constants it converges.
	th.Advance(simulator.Time(th.Model.TauSec * 20))
	if got := th.NodeTemp(id); math.Abs(got-target) > 0.01 {
		t.Fatalf("converged temp = %f, want %f", got, target)
	}
	if th.MaxTemp(id) < target-0.01 {
		t.Fatalf("max temp %f below converged %f", th.MaxTemp(id), target)
	}
}

func TestThermalCoolsAfterJobEnds(t *testing.T) {
	th, sys, cl := newThermalRig()
	nodes := cl.Allocate(1, 1, 0, nil)
	sys.StartJob(0, 1, nodes, 360, 0, 1)
	th.Advance(3600)
	hot := th.NodeTemp(nodes[0].ID)
	cl.Release(1, 3600)
	sys.EndJob(3600, 1, nodes)
	th.Advance(3600 + simulator.Time(th.Model.TauSec*10))
	cool := th.NodeTemp(nodes[0].ID)
	if cool >= hot {
		t.Fatalf("node did not cool: %f -> %f", hot, cool)
	}
	wantIdle := 22 + 0.08*sys.Model.IdleW
	if math.Abs(cool-wantIdle) > 0.1 {
		t.Fatalf("cooled temp = %f, want ~%f", cool, wantIdle)
	}
	// Max temperature remembers the hot phase.
	if th.MaxTemp(nodes[0].ID) < hot-0.01 {
		t.Fatal("max temp forgot the hot phase")
	}
}

func TestThermalHottestNode(t *testing.T) {
	th, sys, cl := newThermalRig()
	nodes := cl.Allocate(1, 1, 0, nil)
	sys.StartJob(0, 1, nodes, 360, 0, 1)
	th.Advance(3600)
	id, temp := th.HottestNode()
	if id != nodes[0].ID {
		t.Fatalf("hottest = %d, want the busy node %d", id, nodes[0].ID)
	}
	if temp <= 22+0.08*90 {
		t.Fatalf("hottest temp %f not above idle", temp)
	}
}

func TestThermalPredictMatchesAdvance(t *testing.T) {
	th, sys, cl := newThermalRig()
	nodes := cl.Allocate(1, 1, 0, nil)
	sys.StartJob(0, 1, nodes, 300, 0, 1)
	id := nodes[0].ID
	pred := th.PredictTemp(id, 0, 300)
	th.Advance(300)
	if got := th.NodeTemp(id); math.Abs(got-pred) > 1e-9 {
		t.Fatalf("prediction %f != advanced %f", pred, got)
	}
}

func TestThermalInletFollowsClimate(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig())
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0, nil)
	climate := Climate{MeanC: 20, DailyAmpC: 10}
	model := DefaultThermalModel()
	model.InletC = func(t simulator.Time) float64 { return climate.TempAt(t) + 2 }
	th := NewThermal(sys, model)
	// Advance to the daily temperature peak (06:00 by the sine phase).
	th.Advance(6 * simulator.Hour)
	hot := th.NodeTemp(0)
	th.Advance(18 * simulator.Hour)
	cold := th.NodeTemp(0)
	if hot <= cold {
		t.Fatalf("inlet-coupled temps wrong: peak %f, trough %f", hot, cold)
	}
}
