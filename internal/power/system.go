package power

import (
	"fmt"
	"sort"

	"epajsrm/internal/cluster"
	"epajsrm/internal/prof"
	"epajsrm/internal/simulator"
)

// Load describes the workload currently running on a node, in the terms the
// power model needs.
type Load struct {
	JobID    int64
	NominalW float64 // node draw at nominal frequency for this workload
	MemFrac  float64 // fraction of runtime that does not scale with frequency
	FreqFrac float64 // frequency assigned by software (DVFS policy), 1 = nominal
	// AuxW is additive draw from I/O the node is doing on top of its compute
	// load — burst-buffer checkpoint traffic. DVFS and node caps throttle the
	// compute draw, not this term: the NIC and SSDs do not slow down when the
	// CPU does, which is exactly why checkpoint bursts can push a capped site
	// over its limit.
	AuxW float64

	// meter points at the job's accounting record so Advance can integrate
	// per-job energy without a map lookup per busy node per interval.
	meter *JobMeter
}

// JobMeter is the per-job electrical account: exact integrated energy,
// the job's current aggregate draw across its nodes, and the highest
// instantaneous draw observed. Attribution is whole-node — a job is
// charged the full draw of every node it occupies for as long as it
// occupies it, matching how Tokyo Tech's and JCAHPC's job-level archives
// bill (the node is unavailable to anyone else either way). The meter
// survives requeues: energy and peak accumulate across run stints.
type JobMeter struct {
	EnergyJ float64
	PeakW   float64
	curW    float64 // sum of nodeP over this job's current nodes
}

// CurrentW returns the job's aggregate instantaneous draw.
func (jm *JobMeter) CurrentW() float64 { return jm.curW }

func (jm *JobMeter) adjust(deltaW float64) {
	jm.curW += deltaW
	if jm.curW > jm.PeakW {
		jm.PeakW = jm.curW
	}
}

// System tracks the live electrical state of one cluster: per-node draw,
// exact energy integration (power is piecewise constant between events, so
// integration is exact), per-job energy meters, and peak power. All state
// transitions must be routed through System so that the books stay correct.
type System struct {
	Cl      *cluster.Cluster
	Model   NodeModel
	PStates PStateTable

	vf    []float64 // manufacturing variability factor per node
	loads []*Load   // per node; nil when the node runs nothing

	lastT simulator.Time
	nodeP []float64
	// totalW is the running sum of nodeP, maintained incrementally so that
	// TotalPower — consulted by every power gate on every candidate of every
	// scheduling pass — is O(1) instead of O(nodes). RefreshAll re-derives it
	// from scratch, bounding float drift.
	totalW float64
	nodeE  []float64 // joules per node
	jobE   map[int64]*JobMeter
	// attribJ is the running sum of all job-attributed energy, maintained
	// alongside the per-job meters in Advance (a single deterministic
	// accumulation in node order) so the conservation check — attributed
	// energy vs. TotalEnergy — never sums a map in iteration order.
	attribJ float64
	peakW   float64
	peakT   simulator.Time

	// jobNodes indexes the node IDs each active job occupies, ascending, so
	// per-job actuation (DVFS, aux draw, frac queries) touches only the
	// job's nodes instead of scanning every load slot. Ascending order
	// matters: setNodeP folds deltas into totalW, and applying them in the
	// same node order as the old full scans keeps float accumulation — and
	// therefore rendered reports — bit-identical. Entries are dropped at
	// EndJob; a requeued job is re-indexed by its next StartJob.
	jobNodes map[int64][]int32
	idScr    []int32 // scratch for building a sorted ID list

	// meterChunks slab-allocates JobMeters (see jobs.Arena for the
	// rationale: a million retired meters should be a few hundred blocks,
	// not a million GC-tracked objects). Meters live for the whole run.
	meterChunks [][]JobMeter
	meterUsed   int

	// lazy, when enabled, defers per-node energy integration from every
	// Advance (O(nodes) on every event that touches power — the single
	// biggest cost at 100k nodes) to per-node settlement at the instants a
	// node's draw actually changes, tracked in nodeT. Integration is still
	// exact — power is piecewise constant either way — but per-node float
	// additions happen in a different order, so totals can differ from the
	// eager mode in the last bits. Scale runs opt in; default runs keep the
	// eager order and stay byte-identical with historical reports.
	lazy  bool
	nodeT []simulator.Time

	// Prof, when non-nil, charges energy integration and draw refreshes
	// to the prof.Power phase. Sites enter the phase only after their
	// early-outs (an Advance with dt == 0 costs one nil-check and
	// nothing else), and Enter/Exit pairs avoid defer on the straight-
	// line paths — Advance is the hottest instrumented function in the
	// repo. Wired by core.Manager.AttachProfiler.
	Prof *prof.Profiler
}

// NewSystem wires a power system over cl. varSigma is the relative stddev
// of per-node manufacturing variability (Inadomi et al. report ~5-10 % for
// production systems; pass 0 for homogeneous nodes). rng may be nil when
// varSigma is 0.
func NewSystem(cl *cluster.Cluster, model NodeModel, pstates PStateTable, varSigma float64, rng *simulator.RNG) *System {
	if err := model.Validate(); err != nil {
		panic(err)
	}
	if err := pstates.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		Cl:       cl,
		Model:    model,
		PStates:  pstates,
		vf:       make([]float64, cl.Size()),
		loads:    make([]*Load, cl.Size()),
		nodeP:    make([]float64, cl.Size()),
		nodeE:    make([]float64, cl.Size()),
		jobE:     make(map[int64]*JobMeter),
		jobNodes: make(map[int64][]int32),
	}
	for i := range s.vf {
		f := 1.0
		if varSigma > 0 && rng != nil {
			f = rng.Normal(1, varSigma)
			if f < 0.7 {
				f = 0.7
			}
			if f > 1.3 {
				f = 1.3
			}
		}
		s.vf[i] = f
	}
	for i, n := range cl.Nodes {
		s.nodeP[i] = s.computeNodePower(n)
		s.totalW += s.nodeP[i]
	}
	return s
}

// sortInt32 sorts ascending; placements are usually narrow, so insertion
// sort wins below a comparison-sort threshold.
func sortInt32(a []int32) {
	if len(a) > 32 {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		return
	}
	for i := 1; i < len(a); i++ {
		for k := i; k > 0 && a[k] < a[k-1]; k-- {
			a[k], a[k-1] = a[k-1], a[k]
		}
	}
}

// EnableLazyEnergy switches the system to per-node lazy energy settlement
// (see the lazy field). Call once, immediately after NewSystem, before any
// simulation activity. Not for runs whose reports must be byte-comparable
// with eager-mode output.
func (s *System) EnableLazyEnergy() {
	s.lazy = true
	s.nodeT = make([]simulator.Time, len(s.nodeP))
	for i := range s.nodeT {
		s.nodeT[i] = s.lastT
	}
}

// settle integrates node id's energy up to the last Advance instant. Eager
// mode integrates in Advance itself, so this is lazy-mode only.
func (s *System) settle(id int) {
	if !s.lazy {
		return
	}
	if dt := float64(s.lastT - s.nodeT[id]); dt > 0 {
		e := s.nodeP[id] * dt
		s.nodeE[id] += e
		if ld := s.loads[id]; ld != nil {
			ld.meter.EnergyJ += e
			s.attribJ += e
		}
	}
	s.nodeT[id] = s.lastT
}

// settleAll brings every node's integration current — the lazy-mode entry
// fee for whole-system energy reads (report time, not the hot path).
func (s *System) settleAll() {
	if !s.lazy {
		return
	}
	for i := range s.nodeP {
		s.settle(i)
	}
}

// newMeter slab-allocates a JobMeter.
func (s *System) newMeter() *JobMeter {
	const chunk = 4096
	if len(s.meterChunks) == 0 || s.meterUsed == chunk {
		s.meterChunks = append(s.meterChunks, make([]JobMeter, chunk))
		s.meterUsed = 0
	}
	m := &s.meterChunks[len(s.meterChunks)-1][s.meterUsed]
	s.meterUsed++
	return m
}

// setNodeP updates one node's draw and keeps the running total — and, when
// a job occupies the node, that job's power meter — in sync.
func (s *System) setNodeP(id int, p float64) {
	s.settle(id)
	delta := p - s.nodeP[id]
	s.totalW += delta
	if ld := s.loads[id]; ld != nil {
		ld.meter.adjust(delta)
	}
	s.nodeP[id] = p
}

// VarFactor returns the manufacturing variability factor of node id.
func (s *System) VarFactor(id int) float64 { return s.vf[id] }

// effectiveFrac returns the frequency fraction node n actually runs at:
// the software-assigned frequency further clamped by any hardware cap.
func (s *System) effectiveFrac(n *cluster.Node, ld *Load) float64 {
	frac := ld.FreqFrac
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	if n.CapW > 0 {
		capFrac, _ := s.Model.FreqForCap(n.CapW, ld.NominalW, s.vf[n.ID])
		if capFrac < frac {
			frac = capFrac
		}
	}
	if frac < s.Model.MinFrac {
		frac = s.Model.MinFrac
	}
	return frac
}

func (s *System) computeNodePower(n *cluster.Node) float64 {
	switch n.State {
	case cluster.StateOff, cluster.StateDown:
		return s.Model.OffW
	case cluster.StateBooting, cluster.StateShuttingDown:
		return s.Model.BootW
	case cluster.StateIdle:
		return s.Model.IdleW
	case cluster.StateBusy, cluster.StateDraining:
		ld := s.loads[n.ID]
		if ld == nil {
			return s.Model.IdleW
		}
		return s.Model.BusyPower(ld.NominalW, s.effectiveFrac(n, ld), s.vf[n.ID]) + ld.AuxW
	default:
		return s.Model.IdleW
	}
}

// Advance integrates energy from the last bookkeeping instant to now. It is
// idempotent for equal timestamps and must be called (directly or via
// Refresh*) before any power-relevant state change.
func (s *System) Advance(now simulator.Time) {
	dt := float64(now - s.lastT)
	if dt < 0 {
		panic(fmt.Sprintf("power: time went backwards %d -> %d", s.lastT, now))
	}
	if dt == 0 {
		return
	}
	if s.lazy {
		// Per-node integration happens at settle points; Advance only moves
		// the clock.
		s.lastT = now
		return
	}
	if s.Prof != nil {
		s.Prof.Enter(prof.Power)
	}
	for i, p := range s.nodeP {
		s.nodeE[i] += p * dt
		if ld := s.loads[i]; ld != nil {
			e := p * dt
			ld.meter.EnergyJ += e
			s.attribJ += e
		}
	}
	s.lastT = now
	if s.Prof != nil {
		s.Prof.Exit()
	}
}

// RefreshNode re-derives one node's draw after its state/cap/frequency
// changed. Advance must already have been called for now.
func (s *System) RefreshNode(now simulator.Time, n *cluster.Node) {
	s.Advance(now)
	s.setNodeP(n.ID, s.computeNodePower(n))
	s.trackPeak(now)
}

// RefreshAll re-derives every node's draw (and the total from scratch).
// Job meters are adjusted by delta here — this path bypasses setNodeP.
func (s *System) RefreshAll(now simulator.Time) {
	s.Advance(now)
	s.Prof.Enter(prof.Power)
	defer s.Prof.Exit()
	s.settleAll()
	t := 0.0
	for i, n := range s.Cl.Nodes {
		p := s.computeNodePower(n)
		if ld := s.loads[i]; ld != nil {
			ld.meter.adjust(p - s.nodeP[i])
		}
		s.nodeP[i] = p
		t += p
	}
	s.totalW = t
	s.trackPeak(now)
}

func (s *System) trackPeak(now simulator.Time) {
	p := s.TotalPower()
	if p > s.peakW {
		s.peakW = p
		s.peakT = now
	}
}

// StartJob registers the workload on its nodes and recomputes their draw.
func (s *System) StartJob(now simulator.Time, jobID int64, nodes []*cluster.Node, nominalW, memFrac, freqFrac float64) {
	s.Advance(now)
	if s.Prof != nil {
		s.Prof.Enter(prof.Power)
		defer s.Prof.Exit()
	}
	meter := s.jobE[jobID]
	if meter == nil {
		meter = s.newMeter()
		s.jobE[jobID] = meter
	}
	ids := s.idScr[:0]
	slab := make([]Load, len(nodes))
	for i, n := range nodes {
		// Settle the pre-job interval against no load before the meter
		// attaches — lazy mode would otherwise bill the job for idle time
		// it never occupied.
		s.settle(n.ID)
		// Charge the node's pre-job draw to the meter before attaching the
		// load: setNodeP adjusts by delta, so without the baseline the job
		// would be billed only the increment above idle, not the whole node.
		meter.adjust(s.nodeP[n.ID])
		slab[i] = Load{JobID: jobID, NominalW: nominalW, MemFrac: memFrac, FreqFrac: freqFrac, meter: meter}
		s.loads[n.ID] = &slab[i]
		s.setNodeP(n.ID, s.computeNodePower(n))
		ids = append(ids, int32(n.ID))
	}
	s.idScr = ids[:0]
	sortInt32(ids)
	s.jobNodes[jobID] = append([]int32(nil), ids...)
	s.trackPeak(now)
}

// EndJob deregisters the workload; callers must already have released or
// transitioned the nodes in the cluster.
func (s *System) EndJob(now simulator.Time, jobID int64, nodes []*cluster.Node) {
	s.Advance(now)
	if s.Prof != nil {
		s.Prof.Enter(prof.Power)
		defer s.Prof.Exit()
	}
	for _, n := range nodes {
		if ld := s.loads[n.ID]; ld != nil && ld.JobID == jobID {
			// Settle the job's final interval while its load is still
			// attached, so lazy mode bills it to the right meter.
			s.settle(n.ID)
			// Mirror of the StartJob baseline charge: release the node's
			// current draw from the meter before detaching, after which
			// setNodeP no longer adjusts it.
			ld.meter.curW -= s.nodeP[n.ID]
			s.loads[n.ID] = nil
		}
		s.setNodeP(n.ID, s.computeNodePower(n))
	}
	delete(s.jobNodes, jobID)
	s.trackPeak(now)
}

// SetNodeCap applies a hardware-enforced node power cap (CAPMC/RAPL style);
// capW = 0 removes the cap. Running jobs on the node slow down according to
// the model; the caller (core.Manager) is responsible for recomputing
// affected job finish times via JobFrac.
func (s *System) SetNodeCap(now simulator.Time, n *cluster.Node, capW float64) {
	s.Advance(now)
	n.CapW = capW
	s.setNodeP(n.ID, s.computeNodePower(n))
	s.trackPeak(now)
}

// SetJobAux sets the auxiliary (I/O) draw on every node of a running job —
// non-zero while a checkpoint write or restart read is in flight, zero
// otherwise. The term is additive and unthrottled (see Load.AuxW).
func (s *System) SetJobAux(now simulator.Time, jobID int64, auxW float64) {
	s.Advance(now)
	for _, id := range s.jobNodes[jobID] {
		if ld := s.loads[id]; ld != nil && ld.JobID == jobID {
			ld.AuxW = auxW
			s.setNodeP(int(id), s.computeNodePower(s.Cl.Nodes[id]))
		}
	}
	s.trackPeak(now)
}

// SetJobFreq assigns a software frequency fraction to every node of a
// running job (DVFS actuation).
func (s *System) SetJobFreq(now simulator.Time, jobID int64, freqFrac float64) {
	s.Advance(now)
	for _, id := range s.jobNodes[jobID] {
		if ld := s.loads[id]; ld != nil && ld.JobID == jobID {
			ld.FreqFrac = freqFrac
			s.setNodeP(int(id), s.computeNodePower(s.Cl.Nodes[id]))
		}
	}
	s.trackPeak(now)
}

// JobFrac returns the effective frequency fraction the job progresses at:
// the minimum across its nodes (bulk-synchronous critical path). Returns
// 1 if the job has no registered nodes.
func (s *System) JobFrac(jobID int64) float64 {
	frac := 1.0
	found := false
	for _, id := range s.jobNodes[jobID] {
		ld := s.loads[id]
		if ld == nil || ld.JobID != jobID {
			continue
		}
		found = true
		f := s.effectiveFrac(s.Cl.Nodes[id], ld)
		if f < frac {
			frac = f
		}
	}
	if !found {
		return 1
	}
	return frac
}

// NodeFracs returns per-node effective frequency fractions for a job,
// keyed by node ID (used by the GEOPM-style runtime-balance policy).
func (s *System) NodeFracs(jobID int64) map[int]float64 {
	out := map[int]float64{}
	for _, id := range s.jobNodes[jobID] {
		if ld := s.loads[id]; ld != nil && ld.JobID == jobID {
			out[int(id)] = s.effectiveFrac(s.Cl.Nodes[id], ld)
		}
	}
	return out
}

// NodePower returns node id's current draw in watts.
func (s *System) NodePower(id int) float64 { return s.nodeP[id] }

// TotalPower returns the cluster's current IT draw in watts.
func (s *System) TotalPower() float64 { return s.totalW }

// PowerOfNodes sums the current draw of a node subset.
func (s *System) PowerOfNodes(nodes []*cluster.Node) float64 {
	t := 0.0
	for _, n := range nodes {
		t += s.nodeP[n.ID]
	}
	return t
}

// TotalEnergy returns cluster IT energy in joules accumulated up to the
// last Advance.
func (s *System) TotalEnergy() float64 {
	s.settleAll()
	t := 0.0
	for _, e := range s.nodeE {
		t += e
	}
	return t
}

// JobEnergy returns the joules metered against a job so far. This powers
// the post-job energy reports Tokyo Tech and JCAHPC deliver to users.
func (s *System) JobEnergy(jobID int64) float64 {
	if m := s.jobE[jobID]; m != nil {
		// An active job's meter may lag in lazy mode; finished jobs were
		// settled by EndJob.
		for _, id := range s.jobNodes[jobID] {
			s.settle(int(id))
		}
		return m.EnergyJ
	}
	return 0
}

// JobPeakPower returns the highest aggregate instantaneous draw observed
// across the job's nodes over all of its run stints (0 if never metered).
func (s *System) JobPeakPower(jobID int64) float64 {
	if m := s.jobE[jobID]; m != nil {
		return m.PeakW
	}
	return 0
}

// JobMeterFor exposes the live meter (nil if the job never ran).
func (s *System) JobMeterFor(jobID int64) *JobMeter { return s.jobE[jobID] }

// AttributedEnergy returns the total joules charged to jobs up to the last
// Advance. TotalEnergy minus this is the unattributed residue: idle, off,
// boot, and drain draw on nodes no job occupied — the conservation check
// per-job accounting is validated against.
func (s *System) AttributedEnergy() float64 {
	s.settleAll()
	return s.attribJ
}

// PeakPower returns the highest instantaneous IT draw observed and when.
func (s *System) PeakPower() (float64, simulator.Time) { return s.peakW, s.peakT }

// MinPossiblePower returns the draw with every node off — the floor the
// site can reach without unplugging hardware.
func (s *System) MinPossiblePower() float64 {
	return float64(s.Cl.Size()) * s.Model.OffW
}

// MaxPossiblePower returns the draw with every node at MaxW — the
// connected load the facility must be provisioned for (or over-provisioned
// against, per Sarood/Patki).
func (s *System) MaxPossiblePower() float64 {
	t := 0.0
	for i := range s.Cl.Nodes {
		t += s.Model.IdleW + (s.Model.MaxW-s.Model.IdleW)*s.vf[i]
	}
	return t
}
