package power

import "fmt"

// Rapl models Intel's Running Average Power Limit at the socket level: a
// software-configurable, hardware-enforced budget per package domain with a
// time window over which the *average* power must not exceed the limit
// (David et al. [13]). The simulator's node-level caps are derived from the
// socket budgets; the window semantics matter for enforcement checking in
// tests and for the dynamic power-sharing policy, which reassigns budgets
// between sockets/nodes at runtime (Ellsworth et al. [17]).
type Rapl struct {
	Sockets   int
	PkgCapW   []float64 // per-socket package cap; 0 = uncapped
	DramCapW  []float64 // per-socket DRAM cap; 0 = uncapped
	WindowSec float64   // averaging window (typically 0.001–1 s; we use seconds)
}

// NewRapl returns an uncapped RAPL block for a node with the given socket
// count and a 1-second window.
func NewRapl(sockets int) *Rapl {
	if sockets <= 0 {
		sockets = 1
	}
	return &Rapl{
		Sockets:   sockets,
		PkgCapW:   make([]float64, sockets),
		DramCapW:  make([]float64, sockets),
		WindowSec: 1,
	}
}

// SetPkgCap sets one socket's package cap.
func (r *Rapl) SetPkgCap(socket int, capW float64) error {
	if socket < 0 || socket >= r.Sockets {
		return fmt.Errorf("rapl: no socket %d", socket)
	}
	if capW < 0 {
		return fmt.Errorf("rapl: negative cap")
	}
	r.PkgCapW[socket] = capW
	return nil
}

// SetDramCap sets one socket's DRAM-domain cap.
func (r *Rapl) SetDramCap(socket int, capW float64) error {
	if socket < 0 || socket >= r.Sockets {
		return fmt.Errorf("rapl: no socket %d", socket)
	}
	if capW < 0 {
		return fmt.Errorf("rapl: negative cap")
	}
	r.DramCapW[socket] = capW
	return nil
}

// NodeCap returns the effective node-level cap implied by the socket
// domains: the sum of all finite domain caps, or 0 if every domain is
// uncapped. A node with any capped socket is treated as capped at
// (capped sockets' caps + uncapped sockets' fair share of nothing) — in
// practice sites cap all sockets together, which is the case the survey
// describes (KAUST's 270 W node caps).
func (r *Rapl) NodeCap() float64 {
	anyCapped := false
	total := 0.0
	for i := 0; i < r.Sockets; i++ {
		pkg := r.PkgCapW[i]
		dram := r.DramCapW[i]
		if pkg == 0 && dram == 0 {
			continue
		}
		anyCapped = true
		total += pkg + dram
	}
	if !anyCapped {
		return 0
	}
	return total
}

// SplitNodeCap divides a node-level cap evenly into per-socket package caps
// with 20 % carved out for the DRAM domains, the conventional split when a
// scheduler only reasons at node granularity.
func (r *Rapl) SplitNodeCap(nodeCapW float64) {
	if nodeCapW <= 0 {
		for i := range r.PkgCapW {
			r.PkgCapW[i] = 0
			r.DramCapW[i] = 0
		}
		return
	}
	perSocket := nodeCapW / float64(r.Sockets)
	for i := range r.PkgCapW {
		r.PkgCapW[i] = perSocket * 0.8
		r.DramCapW[i] = perSocket * 0.2
	}
}

// WindowMeter checks RAPL's defining property — the cap binds the *average*
// over the window, not the instant. Feed it (power, duration) segments and
// query Violated.
type WindowMeter struct {
	CapW      float64
	WindowSec float64
	segs      []meterSeg
	clock     float64
}

type meterSeg struct {
	start, end float64
	powerW     float64
}

// NewWindowMeter returns a meter for one cap and window length.
func NewWindowMeter(capW, windowSec float64) *WindowMeter {
	if windowSec <= 0 {
		windowSec = 1
	}
	return &WindowMeter{CapW: capW, WindowSec: windowSec}
}

// Observe appends a constant-power segment of the given duration.
func (w *WindowMeter) Observe(powerW, durSec float64) {
	if durSec <= 0 {
		return
	}
	w.segs = append(w.segs, meterSeg{start: w.clock, end: w.clock + durSec, powerW: powerW})
	w.clock += durSec
	// Trim segments that ended before the current window.
	cutoff := w.clock - w.WindowSec
	trim := 0
	for trim < len(w.segs) && w.segs[trim].end <= cutoff {
		trim++
	}
	w.segs = w.segs[trim:]
}

// WindowAverage returns the average power over the trailing window.
func (w *WindowMeter) WindowAverage() float64 {
	if w.clock == 0 {
		return 0
	}
	lo := w.clock - w.WindowSec
	if lo < 0 {
		lo = 0
	}
	span := w.clock - lo
	if span <= 0 {
		return 0
	}
	e := 0.0
	for _, s := range w.segs {
		a, b := s.start, s.end
		if a < lo {
			a = lo
		}
		if b > a {
			e += s.powerW * (b - a)
		}
	}
	return e / span
}

// Violated reports whether the trailing window average exceeds the cap
// (uncapped meters never violate).
func (w *WindowMeter) Violated() bool {
	return w.CapW > 0 && w.WindowAverage() > w.CapW+1e-9
}
