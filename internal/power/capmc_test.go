package power

import (
	"testing"
	"testing/quick"

	"epajsrm/internal/cluster"
	"epajsrm/internal/simulator"
)

func newTestController() (*Controller, *simulator.Engine, *cluster.Cluster) {
	eng := simulator.NewEngine()
	cl := cluster.New(cluster.DefaultConfig())
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0, nil)
	return NewController(eng, sys), eng, cl
}

func TestControllerNodeCapValidation(t *testing.T) {
	c, _, _ := newTestController()
	if err := c.SetNodeCap(-1, 200); err == nil {
		t.Error("bad node id accepted")
	}
	if err := c.SetNodeCap(0, -5); err == nil {
		t.Error("negative cap accepted")
	}
	if err := c.SetNodeCap(0, 5); err == nil {
		t.Error("cap below off draw accepted")
	}
	if err := c.SetNodeCap(0, 250); err != nil {
		t.Fatal(err)
	}
	if len(c.Audit) != 1 || c.Audit[0].Action != "set_node_cap" {
		t.Fatalf("audit = %+v", c.Audit)
	}
}

func TestControllerSystemCapDividesBudget(t *testing.T) {
	c, _, cl := newTestController()
	budget := 64.0 * 200
	if err := c.SetSystemCap(budget); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.Nodes {
		if n.CapW != 200 {
			t.Fatalf("node %d cap = %f, want 200", n.ID, n.CapW)
		}
	}
	// Remove the cap.
	if err := c.SetSystemCap(0); err != nil {
		t.Fatal(err)
	}
	for _, n := range cl.Nodes {
		if n.CapW != 0 {
			t.Fatalf("node %d still capped", n.ID)
		}
	}
}

func TestControllerSystemCapReservesOffNodes(t *testing.T) {
	c, _, cl := newTestController()
	// Power two nodes off instantly for the division logic.
	cl.BeginShutdown(cl.Nodes[0], 0)
	cl.FinishShutdown(cl.Nodes[0], 0)
	cl.BeginShutdown(cl.Nodes[1], 0)
	cl.FinishShutdown(cl.Nodes[1], 0)
	caps := c.DivideSystemCap(64 * 200)
	if len(caps) != 62 {
		t.Fatalf("caps for %d nodes, want 62", len(caps))
	}
	per := caps[2]
	wantPer := (64*200 - 2*c.Sys.Model.OffW) / 62
	if per < wantPer-1e-9 || per > wantPer+1e-9 {
		t.Fatalf("per-node cap = %f, want %f", per, wantPer)
	}
}

func TestControllerPowerOffOn(t *testing.T) {
	c, eng, cl := newTestController()
	if err := c.PowerOff(3); err != nil {
		t.Fatal(err)
	}
	if cl.Nodes[3].State != cluster.StateShuttingDown {
		t.Fatalf("state = %v", cl.Nodes[3].State)
	}
	// Cannot power off a node that is not idle.
	if err := c.PowerOff(3); err == nil {
		t.Error("double power-off accepted")
	}
	eng.Run()
	if cl.Nodes[3].State != cluster.StateOff {
		t.Fatalf("state after run = %v", cl.Nodes[3].State)
	}
	ready := false
	if err := c.PowerOn(3, func(simulator.Time) { ready = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if cl.Nodes[3].State != cluster.StateIdle || !ready {
		t.Fatalf("state = %v ready = %v", cl.Nodes[3].State, ready)
	}
	// Boot delay must have elapsed between off and idle.
	if eng.Now() < cl.Cfg.BootDelay {
		t.Fatalf("engine time %d < boot delay", eng.Now())
	}
}

func TestControllerEnergyCounter(t *testing.T) {
	c, eng, _ := newTestController()
	eng.After(100, "tick", func(simulator.Time) {})
	eng.Run()
	e, err := c.GetNodeEnergy(0)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Sys.Model.IdleW * 100
	if e != want {
		t.Fatalf("energy = %f, want %f", e, want)
	}
	if _, err := c.GetNodeEnergy(1000); err == nil {
		t.Error("bad id accepted")
	}
}

func TestRaplSplitAndNodeCap(t *testing.T) {
	r := NewRapl(2)
	if r.NodeCap() != 0 {
		t.Fatal("fresh RAPL should be uncapped")
	}
	r.SplitNodeCap(300)
	if got := r.NodeCap(); got < 299.999 || got > 300.001 {
		t.Fatalf("round-trip node cap = %f", got)
	}
	// 80/20 pkg/dram split per socket.
	if r.PkgCapW[0] != 120 || r.DramCapW[0] != 30 {
		t.Fatalf("socket split = %f/%f", r.PkgCapW[0], r.DramCapW[0])
	}
	r.SplitNodeCap(0)
	if r.NodeCap() != 0 {
		t.Fatal("clearing failed")
	}
}

func TestRaplSocketValidation(t *testing.T) {
	r := NewRapl(2)
	if err := r.SetPkgCap(5, 100); err == nil {
		t.Error("bad socket accepted")
	}
	if err := r.SetDramCap(0, -1); err == nil {
		t.Error("negative cap accepted")
	}
	if err := r.SetPkgCap(1, 100); err != nil {
		t.Fatal(err)
	}
	if got := r.NodeCap(); got != 100 {
		t.Fatalf("node cap with one capped socket = %f", got)
	}
}

func TestWindowMeterAverage(t *testing.T) {
	w := NewWindowMeter(100, 60)
	w.Observe(200, 30) // half window at 200
	w.Observe(0, 30)   // half at 0
	if got := w.WindowAverage(); got != 100 {
		t.Fatalf("window average = %f, want 100", got)
	}
	if w.Violated() {
		t.Fatal("average exactly at cap should not violate")
	}
	w.Observe(200, 30) // window is now [0 for 30s, 200 for 30s]
	if got := w.WindowAverage(); got != 100 {
		t.Fatalf("rolling average = %f, want 100", got)
	}
	w.Observe(200, 30)
	if !w.Violated() {
		t.Fatal("sustained 200 W must violate a 100 W window cap")
	}
}

func TestWindowMeterToleratesExcursions(t *testing.T) {
	// RAPL's defining property: a short spike inside the window is fine if
	// the average holds.
	w := NewWindowMeter(100, 60)
	w.Observe(90, 50)
	w.Observe(150, 10)
	if w.Violated() {
		t.Fatalf("avg = %f: short excursion should not violate", w.WindowAverage())
	}
}

func TestWindowMeterUncappedNeverViolates(t *testing.T) {
	w := NewWindowMeter(0, 60)
	w.Observe(1e6, 600)
	if w.Violated() {
		t.Fatal("uncapped meter violated")
	}
}

func TestWindowMeterAverageNeverExceedsMaxObserved(t *testing.T) {
	f := func(vals []uint16) bool {
		w := NewWindowMeter(100, 60)
		maxP := 0.0
		for _, v := range vals {
			p := float64(v % 500)
			d := float64(v%7) + 1
			w.Observe(p, d)
			if p > maxP {
				maxP = p
			}
		}
		avg := w.WindowAverage()
		return avg >= 0 && avg <= maxP+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDivideSystemCapConservesBudget(t *testing.T) {
	f := func(capRaw uint16, offRaw uint8) bool {
		c, _, cl := newTestController()
		// Power a few nodes off.
		nOff := int(offRaw % 16)
		for i := 0; i < nOff; i++ {
			cl.BeginShutdown(cl.Nodes[i], 0)
			cl.FinishShutdown(cl.Nodes[i], 0)
		}
		budget := 64*90.0 + float64(capRaw%20000)
		caps := c.DivideSystemCap(budget)
		total := float64(nOff) * c.Sys.Model.OffW
		for _, w := range caps {
			total += w
		}
		// Division never exceeds the budget unless clamped to the idle
		// floor (caps below idle are unenforceable).
		floor := float64(nOff)*c.Sys.Model.OffW + float64(64-nOff)*c.Sys.Model.IdleW
		return total <= budget+1e-6 || total <= floor+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestControllerActuationRetrySucceeds(t *testing.T) {
	c, eng, cl := newTestController()
	// Fail the first two attempts, then heal.
	c.FaultRNG = simulator.NewRNG(1)
	c.FaultProb = 1
	if err := c.SetNodeCap(0, 250); err != nil {
		t.Fatal(err)
	}
	if cl.Nodes[0].CapW != 0 {
		t.Fatal("cap applied despite injected failure")
	}
	c.FaultProb = 0 // heal before the retry fires
	eng.RunUntil(10 * simulator.Minute)
	if cl.Nodes[0].CapW != 250 {
		t.Fatalf("cap = %f after retry, want 250", cl.Nodes[0].CapW)
	}
	if c.ActuationFailures.Value() != 1 || c.ActuationRetries.Value() != 1 || c.ActuationAbandoned.Value() != 0 {
		t.Fatalf("counters = %d/%d/%d", c.ActuationFailures.Value(), c.ActuationRetries.Value(), c.ActuationAbandoned.Value())
	}
	// Audit trail: fail, then the successful set.
	var actions []string
	for _, a := range c.Audit {
		actions = append(actions, a.Action)
	}
	want := []string{"set_node_cap.fail", "set_node_cap"}
	if len(actions) != 2 || actions[0] != want[0] || actions[1] != want[1] {
		t.Fatalf("audit actions = %v, want %v", actions, want)
	}
}

func TestControllerActuationAbandonsAfterRetryMax(t *testing.T) {
	c, eng, cl := newTestController()
	c.FaultRNG = simulator.NewRNG(2)
	c.FaultProb = 1 // every attempt fails
	c.RetryMax = 3
	if err := c.SetNodeCap(0, 250); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * simulator.Minute)
	if cl.Nodes[0].CapW != 0 {
		t.Fatal("cap applied despite permanent failure")
	}
	// Initial attempt + 3 retries all fail, then abandon.
	if c.ActuationFailures.Value() != 4 || c.ActuationRetries.Value() != 3 || c.ActuationAbandoned.Value() != 1 {
		t.Fatalf("counters = %d/%d/%d", c.ActuationFailures.Value(), c.ActuationRetries.Value(), c.ActuationAbandoned.Value())
	}
	last := c.Audit[len(c.Audit)-1]
	if last.Action != "set_node_cap.abandon" {
		t.Fatalf("last audit action = %s", last.Action)
	}
}

func TestControllerRetryBackoffGrowsAndCaps(t *testing.T) {
	c, _, _ := newTestController()
	want := []simulator.Time{2, 4, 8, 16, 32, 60, 60}
	for i, w := range want {
		if got := c.retryDelay(i); got != w {
			t.Fatalf("retryDelay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestControllerRetriesAreDaemonEvents(t *testing.T) {
	c, eng, _ := newTestController()
	c.FaultRNG = simulator.NewRNG(3)
	c.FaultProb = 1
	if err := c.SetNodeCap(0, 250); err != nil {
		t.Fatal(err)
	}
	// With only retry daemons queued, an unbounded run must end immediately.
	end := eng.Run()
	if end != 0 {
		t.Fatalf("retries kept the run alive until %v", end)
	}
}

func TestControllerDeferredApplyCallback(t *testing.T) {
	c, eng, _ := newTestController()
	c.FaultRNG = simulator.NewRNG(4)
	c.FaultProb = 1
	fired := 0
	c.OnDeferredApply = func(simulator.Time) { fired++ }
	if err := c.SetNodeCap(0, 250); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatal("deferred-apply fired for the synchronous attempt")
	}
	c.FaultProb = 0
	eng.RunUntil(10 * simulator.Minute)
	if fired != 1 {
		t.Fatalf("deferred-apply fired %d times, want 1", fired)
	}
	// A clean synchronous actuation must not fire the callback.
	if err := c.SetNodeCap(1, 250); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatal("deferred-apply fired for a first-attempt success")
	}
}
