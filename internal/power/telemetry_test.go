package power

import (
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/simulator"
)

func newTestTelemetry(period simulator.Time) (*Telemetry, *simulator.Engine) {
	eng := simulator.NewEngine()
	cl := cluster.New(cluster.DefaultConfig())
	sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0, nil)
	return NewTelemetry(sys, nil, period, 0), eng
}

func TestTelemetryStopBeforeStart(t *testing.T) {
	tel, _ := newTestTelemetry(10 * simulator.Second)
	// Regression: Stop on a never-started sampler must not panic.
	tel.Stop()
	tel.Stop()
}

func TestTelemetryStopIdempotent(t *testing.T) {
	tel, eng := newTestTelemetry(10 * simulator.Second)
	tel.Start(eng)
	eng.RunUntil(35 * simulator.Second)
	got := len(tel.Series)
	tel.Stop()
	tel.Stop() // second Stop must be a no-op
	eng.RunUntil(100 * simulator.Second)
	if len(tel.Series) != got {
		t.Fatalf("samples after Stop: %d -> %d", got, len(tel.Series))
	}
	// Restart after Stop keeps working.
	tel.Start(eng)
	eng.RunUntil(150 * simulator.Second)
	if len(tel.Series) <= got {
		t.Fatal("restart did not resume sampling")
	}
}

func TestTelemetryOutageDropsSamples(t *testing.T) {
	tel, eng := newTestTelemetry(10 * simulator.Second)
	tel.Start(eng)
	eng.RunUntil(30 * simulator.Second)
	before := len(tel.Series)
	if before == 0 {
		t.Fatal("no samples before outage")
	}
	tel.SetOutage(true, false)
	eng.RunUntil(60 * simulator.Second)
	if len(tel.Series) != before {
		t.Fatalf("dropout appended samples: %d -> %d", before, len(tel.Series))
	}
	if tel.Dropped.Value() != 3 {
		t.Fatalf("Dropped = %d, want 3", tel.Dropped.Value())
	}
	tel.SetOutage(false, false)
	eng.RunUntil(80 * simulator.Second)
	if len(tel.Series) <= before {
		t.Fatal("sampling did not resume after outage")
	}
}

func TestTelemetryStuckSensorRepeatsLastGood(t *testing.T) {
	tel, eng := newTestTelemetry(10 * simulator.Second)
	tel.Start(eng)
	eng.RunUntil(20 * simulator.Second)
	last, ok := tel.LastGood()
	if !ok {
		t.Fatal("no genuine sample yet")
	}
	tel.SetOutage(true, true)
	before := len(tel.Series)
	eng.RunUntil(50 * simulator.Second)
	if len(tel.Series) <= before {
		t.Fatal("stuck sensor should keep appending (stale) readings")
	}
	for _, r := range tel.Series[before:] {
		if r.ITW != last.ITW {
			t.Fatalf("stuck reading %f differs from last good %f", r.ITW, last.ITW)
		}
		if r.At <= last.At {
			t.Fatal("stuck reading must carry a fresh timestamp")
		}
	}
	// The genuine sample never advanced.
	if got, _ := tel.LastGood(); got.At != last.At {
		t.Fatalf("LastGood advanced during outage: %v -> %v", last.At, got.At)
	}
}

func TestTelemetryStaleness(t *testing.T) {
	tel, eng := newTestTelemetry(10 * simulator.Second)
	tel.Start(eng)
	eng.RunUntil(20 * simulator.Second)
	if tel.Stale(eng.Now(), 0) {
		t.Fatal("fresh telemetry reported stale")
	}
	tel.SetOutage(true, true)
	eng.RunUntil(55 * simulator.Second)
	// Last genuine sample was at t=20; default threshold 3*10s = 30s.
	if !tel.Stale(eng.Now(), 0) {
		t.Fatal("telemetry should be stale 35 s after last genuine sample")
	}
	// A stuck sensor keeps writing readings, but staleness must still fire:
	// only genuine samples count.
	if got, _ := tel.LastGood(); got.At != 20*simulator.Second {
		t.Fatalf("LastGood.At = %v, want 20s", got.At)
	}
	tel.SetOutage(false, false)
	eng.RunUntil(65 * simulator.Second)
	if tel.Stale(eng.Now(), 0) {
		t.Fatal("telemetry still stale after recovery sample")
	}
}

func TestTelemetryStaleBeforeFirstSample(t *testing.T) {
	tel, _ := newTestTelemetry(10 * simulator.Second)
	if tel.Stale(5*simulator.Second, 0) {
		t.Fatal("stale before the threshold has even elapsed")
	}
	if !tel.Stale(31*simulator.Second, 0) {
		t.Fatal("no sample ever: must be stale after the threshold")
	}
}
