package power

import (
	"fmt"
	"math"
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/simulator"
)

// TestLazyEnergyMatchesEager drives two systems — one eager, one lazy —
// through an identical randomized script of job starts/ends, DVFS moves,
// aux draw flips and node caps, and asserts every energy account agrees to
// float tolerance. Lazy mode reorders float additions, so equality is
// relative-epsilon, not bitwise; the scale harness accepts that trade,
// default runs never enable it.
func TestLazyEnergyMatchesEager(t *testing.T) {
	mk := func() (*cluster.Cluster, *System) {
		cl := cluster.New(cluster.DefaultConfig())
		sys := NewSystem(cl, DefaultNodeModel(), DefaultPStates(), 0.05, simulator.NewRNG(11))
		return cl, sys
	}
	clA, eager := mk()
	clB, lazy := mk()
	lazy.EnableLazyEnergy()

	rng := simulator.NewRNG(77)
	now := simulator.Time(0)
	type run struct {
		id    int64
		nodes int
	}
	var active []run
	nextID := int64(1)

	for step := 0; step < 2000; step++ {
		now += simulator.Time(1 + rng.Intn(600))
		switch rng.Intn(5) {
		case 0, 1:
			w := 1 + rng.Intn(8)
			nomW := 200 + rng.Float64()*200
			memf := rng.Float64() * 0.6
			nA := clA.Allocate(nextID, w, now, nil)
			nB := clB.Allocate(nextID, w, now, nil)
			if (nA == nil) != (nB == nil) {
				t.Fatalf("allocation divergence at job %d", nextID)
			}
			if nA != nil {
				eager.StartJob(now, nextID, nA, nomW, memf, 1)
				lazy.StartJob(now, nextID, nB, nomW, memf, 1)
				active = append(active, run{nextID, w})
				nextID++
			}
		case 2:
			if len(active) > 0 {
				k := rng.Intn(len(active))
				id := active[k].id
				eager.EndJob(now, id, clA.JobNodes(id))
				lazy.EndJob(now, id, clB.JobNodes(id))
				clA.Release(id, now)
				clB.Release(id, now)
				active = append(active[:k], active[k+1:]...)
			}
		case 3:
			if len(active) > 0 {
				id := active[rng.Intn(len(active))].id
				f := 0.5 + rng.Float64()*0.5
				eager.SetJobFreq(now, id, f)
				lazy.SetJobFreq(now, id, f)
			}
		case 4:
			if len(active) > 0 {
				id := active[rng.Intn(len(active))].id
				aux := rng.Float64() * 40
				eager.SetJobAux(now, id, aux)
				lazy.SetJobAux(now, id, aux)
			}
		}
		if rng.Float64() < 0.2 {
			n := clA.Nodes[rng.Intn(clA.Size())]
			capW := 0.0
			if rng.Float64() < 0.7 {
				capW = 150 + rng.Float64()*250
			}
			eager.SetNodeCap(now, n, capW)
			lazy.SetNodeCap(now, clB.Nodes[n.ID], capW)
		}
	}
	now += simulator.Hour
	eager.Advance(now)
	lazy.Advance(now)

	close := func(name string, a, b float64) {
		t.Helper()
		if diff := math.Abs(a - b); diff > 1e-6*(1+math.Abs(a)) {
			t.Errorf("%s diverged: eager=%v lazy=%v", name, a, b)
		}
	}
	close("TotalEnergy", eager.TotalEnergy(), lazy.TotalEnergy())
	close("AttributedEnergy", eager.AttributedEnergy(), lazy.AttributedEnergy())
	close("TotalPower", eager.TotalPower(), lazy.TotalPower())
	for id := int64(1); id < nextID; id++ {
		close(fmt.Sprintf("JobEnergy(%d)", id), eager.JobEnergy(id), lazy.JobEnergy(id))
	}
	pA, _ := eager.PeakPower()
	pB, _ := lazy.PeakPower()
	close("PeakPower", pA, pB)
}
