// Package runreport renders the canonical run report for one completed
// site simulation. It is the single renderer behind both the epasim stdout
// report and the simulation service's GET /runs/{id}/report endpoint, so a
// service-hosted run's report is byte-identical to the same seed/profile
// run under standalone epasim — the golden contract the multi-tenant
// service is tested against.
package runreport

import (
	"fmt"
	"io"

	"epajsrm/internal/core"
	"epajsrm/internal/fault"
	"epajsrm/internal/jobs"
	"epajsrm/internal/report"
	"epajsrm/internal/simulator"
	"epajsrm/internal/site"
	"epajsrm/internal/workload"
)

// Extras selects the optional report rows for opt-in subsystems: fault
// injection adds its summary rows, checkpointing adds the write/restore
// accounting, and either adds the lost-work row.
type Extras struct {
	// Inj, when non-nil, contributes the injected-fault summary rows.
	Inj *fault.Injector
	// Checkpointing adds the checkpoint write/restore rows.
	Checkpointing bool
}

// Write renders the run report for a finished manager m built from profile
// p with workload js, ended at end. The bytes written are the exact report
// epasim prints for the same configuration.
func Write(w io.Writer, p site.Profile, m *core.Manager, js []*jobs.Job, end simulator.Time, x Extras) {
	fmt.Fprintf(w, "site %s — %s\n\n", p.Name, p.Desc)
	fmt.Fprintln(w, report.ComponentDiagram(report.Components{
		SystemName:  m.Cl.Cfg.Name,
		Scheduler:   m.Sched.Name(),
		Policies:    m.PolicyNames(),
		Nodes:       m.Cl.Size(),
		HasFacility: m.Fac != nil,
		Telemetry:   m.Tel.Period.String(),
	}))

	size, wall := workload.Stats(js)
	peak, peakAt := m.Pw.PeakPower()
	tbl := report.Table{
		Title:  "Run report",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"simulated time", end.String()},
			{"jobs submitted/completed/killed/cancelled", fmt.Sprintf("%d / %d / %d / %d",
				m.Metrics.Submitted, m.Metrics.Completed, m.Metrics.Killed, m.Metrics.Cancelled)},
			{"job size quantiles (Q3e)", size.String()},
			{"walltime quantiles (Q3e, s)", wall.String()},
			{"utilization", fmt.Sprintf("%.1f%%", 100*m.Metrics.Utilization(m.Cl.Size()))},
			{"median wait", simulator.Time(m.Metrics.Waits.Median()).String()},
			{"throughput", fmt.Sprintf("%.0f node-h/day, %.1f jobs/day",
				m.Metrics.ThroughputNodeHoursPerDay(), m.Metrics.JobsPerDay())},
			{"IT energy", fmt.Sprintf("%.1f MWh", m.Pw.TotalEnergy()/3.6e9)},
			{"peak IT power", fmt.Sprintf("%.1f kW at %s", peak/1000, peakAt)},
			{"mean IT power (telemetry)", fmt.Sprintf("%.1f kW over %d samples",
				m.Tel.ITStats.Mean()/1000, m.Tel.ITStats.N())},
		},
	}
	if x.Inj != nil {
		tbl.Rows = append(tbl.Rows,
			[]string{"injected faults", x.Inj.Summary()},
			[]string{"node failures / job requeues", fmt.Sprintf("%d / %d",
				m.Metrics.NodeFailures, m.Metrics.Requeues)},
			[]string{"telemetry samples dropped", fmt.Sprint(m.Tel.Dropped.Value())},
		)
	}
	if x.Inj != nil || x.Checkpointing {
		tbl.Rows = append(tbl.Rows,
			[]string{"lost work", fmt.Sprintf("%.1f node-h", m.Metrics.LostWorkSeconds/3600)})
	}
	if x.Checkpointing {
		tbl.Rows = append(tbl.Rows,
			[]string{"checkpoints written / restores", fmt.Sprintf("%d / %d",
				m.Metrics.CheckpointsWritten, m.Metrics.CheckpointRestores)},
			[]string{"checkpoint stall", fmt.Sprintf("%.1f h write, %.1f h restore read",
				m.Metrics.CheckpointWriteSeconds/3600, m.Metrics.RestartReadSeconds/3600)},
		)
	}
	fmt.Fprintln(w, tbl.Render())

	// Power profile over the run, from the telemetry series.
	if len(m.Tel.Series) > 1 {
		xs := make([]float64, len(m.Tel.Series))
		ys := make([]float64, len(m.Tel.Series))
		for i, r := range m.Tel.Series {
			xs[i] = float64(r.At) / float64(simulator.Hour)
			ys[i] = r.ITW / 1000
		}
		fmt.Fprintln(w, report.LineChart{
			Title:  "IT power over the run",
			YLabel: "kW (x in hours)",
			Xs:     xs,
			Ys:     ys,
		}.Render())
	}
}
