package checkpoint

import (
	"testing"

	"epajsrm/internal/simulator"
)

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if (Config{BWGBps: 10}).Enabled() {
		t.Fatal("no state fraction ⇒ disabled")
	}
	if (Config{StateFrac: 0.3}).Enabled() {
		t.Fatal("no bandwidth ⇒ disabled")
	}
	if !(Config{BWGBps: 10, StateFrac: 0.3}).Enabled() {
		t.Fatal("bandwidth + state fraction ⇒ enabled")
	}
	if DefaultConfig().Enabled() != true {
		t.Fatal("DefaultConfig should be able to move bytes once an interval is set")
	}
	if DefaultConfig().Interval != 0 {
		t.Fatal("DefaultConfig must ship with periodic checkpoints off")
	}
}

func TestWriteTimeArithmetic(t *testing.T) {
	c := Config{BWGBps: 10, StateFrac: 0.3}
	// 8 nodes × 128 GB × 0.3 = 307.2 GB at 10 GB/s → 30.72 s → ceil 31.
	if got := c.WriteTime(8, 128); got != 31 {
		t.Fatalf("WriteTime(8,128) = %d, want 31", got)
	}
	// 4 nodes → 153.6 GB → 15.36 s → ceil 16.
	if got := c.WriteTime(4, 128); got != 16 {
		t.Fatalf("WriteTime(4,128) = %d, want 16", got)
	}
	if got := (Config{}).WriteTime(8, 128); got != 0 {
		t.Fatalf("disabled config WriteTime = %d, want 0", got)
	}
}

func TestContentionSharesBandwidth(t *testing.T) {
	md := NewModel(Config{BWGBps: 10, StateFrac: 0.3})
	d1 := md.BeginWrite(4, 128) // alone: 16 s
	if d1 != 16 {
		t.Fatalf("first write = %d, want 16", d1)
	}
	d2 := md.BeginWrite(4, 128) // shares with d1: 2× slower = 31 (ceil of 30.72)
	if d2 != 31 {
		t.Fatalf("contended write = %d, want 31", d2)
	}
	if md.InFlight() != 2 {
		t.Fatalf("inflight = %d, want 2", md.InFlight())
	}
	md.EndIO()
	d3 := md.BeginWrite(4, 128) // back to 2 in flight
	if d3 != 31 {
		t.Fatalf("write after one EndIO = %d, want 31", d3)
	}
	md.EndIO()
	md.EndIO()
	if md.InFlight() != 0 {
		t.Fatalf("inflight = %d, want 0", md.InFlight())
	}
	if md.Writes != 3 {
		t.Fatalf("Writes = %d, want 3", md.Writes)
	}
}

func TestReadFactorScalesRestores(t *testing.T) {
	md := NewModel(Config{BWGBps: 10, StateFrac: 0.3, ReadFactor: 2})
	if got := md.BeginRead(4, 128); got != 31 { // 15.36 × 2 = 30.72 → 31
		t.Fatalf("scaled read = %d, want 31", got)
	}
	md.EndIO()
	if md.Reads != 1 {
		t.Fatalf("Reads = %d, want 1", md.Reads)
	}
	// Defaulted ReadFactor behaves like 1.
	md2 := NewModel(Config{BWGBps: 10, StateFrac: 0.3})
	if got := md2.BeginRead(4, 128); got != 16 {
		t.Fatalf("symmetric read = %d, want 16", got)
	}
	md2.EndIO()
}

func TestIOTimeFloorOneSecond(t *testing.T) {
	md := NewModel(Config{BWGBps: 1e6, StateFrac: 0.01})
	if got := md.BeginWrite(1, 1); got != 1 {
		t.Fatalf("tiny write = %d, want floor of 1 s", got)
	}
	md.EndIO()
}

func TestEndIOWithoutBeginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced EndIO must panic")
		}
	}()
	NewModel(Config{BWGBps: 10, StateFrac: 0.3}).EndIO()
}

func TestJobMTBF(t *testing.T) {
	if got := JobMTBF(2*simulator.Day, 8); got != 6*simulator.Hour {
		t.Fatalf("JobMTBF(2d, 8) = %d, want 6h", got)
	}
	if got := JobMTBF(0, 8); got != 0 {
		t.Fatalf("no node MTBF ⇒ 0, got %d", got)
	}
	if got := JobMTBF(5, 100); got != 1 {
		t.Fatalf("JobMTBF floor = %d, want 1", got)
	}
}

func TestOptimalInterval(t *testing.T) {
	// Young: sqrt(2 · 31 s · 21600 s) = sqrt(1 339 200) ≈ 1157.2 → 1158.
	if got := OptimalInterval(31, 6*simulator.Hour); got != 1158 {
		t.Fatalf("OptimalInterval(31, 6h) = %d, want 1158", got)
	}
	if got := OptimalInterval(0, simulator.Hour); got != 0 {
		t.Fatalf("zero write time ⇒ 0, got %d", got)
	}
	if got := OptimalInterval(31, 0); got != 0 {
		t.Fatalf("zero MTBF ⇒ 0, got %d", got)
	}
	// Interval should grow with MTBF: fewer faults, fewer checkpoints.
	if OptimalInterval(31, simulator.Day) <= OptimalInterval(31, simulator.Hour) {
		t.Fatal("optimal interval must grow with MTBF")
	}
}
