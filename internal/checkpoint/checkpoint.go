// Package checkpoint models a burst-buffer checkpoint/restart substrate —
// the primitive every preempt-and-shed EPA JSRM technique in the survey's
// Section VI silently presumes. The model is deliberately simple and fully
// deterministic: a checkpoint image is a fixed fraction of the job's node
// memory, written at an aggregate burst-buffer bandwidth that concurrent
// checkpoints share, drawing extra per-node I/O power while in flight. A
// restart reads the image back before compute resumes. Nothing here uses
// randomness, so the same event sequence always produces the same I/O
// durations.
//
// The package also carries the Young/Daly optimal-interval arithmetic that
// ties the checkpoint interval to the site's fault rate: checkpoint too
// rarely and crashes discard hours, too often and the write stalls eat the
// machine. OptimalInterval gives the first-order sweet spot.
package checkpoint

import (
	"math"

	"epajsrm/internal/simulator"
)

// Config sets the checkpoint/restart substrate's knobs. The zero value
// disables the subsystem entirely (Enabled returns false), which is the
// configuration every surveyed site profile ships with — checkpointing is
// opt-in per run.
type Config struct {
	// Interval is the periodic per-job checkpoint interval; 0 means no
	// periodic checkpoints (demand checkpoints at preemption still work).
	Interval simulator.Time

	// BWGBps is the aggregate burst-buffer bandwidth in GB/s, shared by all
	// checkpoint I/O in flight at once (write and read alike).
	BWGBps float64

	// StateFrac is the fraction of a node's memory captured in the image —
	// jobs rarely checkpoint their full address space.
	StateFrac float64

	// ReadFactor scales restart read time relative to the write time of the
	// same image; <= 0 means 1 (symmetric burst buffer).
	ReadFactor float64

	// IOPowerW is the extra per-node draw while checkpoint I/O is in
	// flight: burst-buffer, NIC and SSD traffic that rides on top of the
	// node's compute draw and is not throttled by DVFS or node caps. This
	// is what makes checkpoint bursts visible to cap accounting.
	IOPowerW float64
}

// Enabled reports whether the substrate can move bytes at all.
func (c Config) Enabled() bool { return c.BWGBps > 0 && c.StateFrac > 0 }

// StateGB returns the image size for a job of the given width on nodes
// with memGB of memory each.
func (c Config) StateGB(nodes, memGB int) float64 {
	return float64(nodes) * float64(memGB) * c.StateFrac
}

// WriteTime returns the uncontended wall time to write one image — the
// delta term of the Young/Daly formula. The contended time is computed by
// Model.BeginWrite at operation start.
func (c Config) WriteTime(nodes, memGB int) simulator.Time {
	if !c.Enabled() {
		return 0
	}
	return ceilTime(c.StateGB(nodes, memGB) / c.BWGBps)
}

// DefaultConfig returns a disabled substrate with production-plausible
// cost parameters, so enabling it is one field away: set Interval (or call
// epasim with -ckpt-interval).
func DefaultConfig() Config {
	return Config{
		Interval:   0,
		BWGBps:     10,
		StateFrac:  0.3,
		ReadFactor: 1,
		IOPowerW:   30,
	}
}

// JobMTBF converts a per-node MTBF into the MTBF of a job spread over
// `nodes` nodes: any one node crashing kills the job, so the rates add.
func JobMTBF(nodeMTBF simulator.Time, nodes int) simulator.Time {
	if nodeMTBF <= 0 || nodes <= 0 {
		return 0
	}
	t := nodeMTBF / simulator.Time(nodes)
	if t < 1 {
		t = 1
	}
	return t
}

// OptimalInterval returns Young's first-order optimal checkpoint interval
// sqrt(2 · writeTime · MTBF) for a given image write time and job-level
// MTBF (Young 1974; Daly 2006 refines the high-order terms, which matter
// only when writeTime approaches the MTBF). Returns 0 when either input is
// non-positive — no finite optimum exists for a machine that never fails.
func OptimalInterval(writeTime, mtbf simulator.Time) simulator.Time {
	if writeTime <= 0 || mtbf <= 0 {
		return 0
	}
	return ceilTime(math.Sqrt(2 * float64(writeTime) * float64(mtbf)))
}

// Model is the live substrate: Config plus the contention state shared by
// every checkpoint I/O in flight. One Model per manager.
type Model struct {
	Cfg Config

	// Writes and Reads count I/O operations started (durability is the
	// manager's business — an operation interrupted by a crash still
	// consumed bandwidth).
	Writes int
	Reads  int

	inflight int
}

// NewModel builds a model, normalizing defaulted fields.
func NewModel(cfg Config) *Model {
	if cfg.ReadFactor <= 0 {
		cfg.ReadFactor = 1
	}
	return &Model{Cfg: cfg}
}

// InFlight reports how many checkpoint I/O operations are active.
func (md *Model) InFlight() int { return md.inflight }

// BeginWrite starts a checkpoint write for a job of the given shape and
// returns its wall duration. Contention model: the operation's duration is
// fixed at start using the concurrency then in effect (including itself) —
// an even share of the aggregate bandwidth; later arrivals or departures
// do not re-time it. The caller must pair every Begin with exactly one
// EndIO (including on abort).
func (md *Model) BeginWrite(nodes, memGB int) simulator.Time {
	md.inflight++
	md.Writes++
	return md.ioTime(nodes, memGB, 1)
}

// BeginRead starts a restart read; same contention rules as BeginWrite.
func (md *Model) BeginRead(nodes, memGB int) simulator.Time {
	md.inflight++
	md.Reads++
	return md.ioTime(nodes, memGB, md.Cfg.ReadFactor)
}

// EndIO releases the bandwidth share of one completed or aborted
// operation.
func (md *Model) EndIO() {
	if md.inflight <= 0 {
		panic("checkpoint: EndIO without a matching Begin")
	}
	md.inflight--
}

func (md *Model) ioTime(nodes, memGB int, factor float64) simulator.Time {
	return ceilTime(md.Cfg.StateGB(nodes, memGB) / (md.Cfg.BWGBps / float64(md.inflight)) * factor)
}

// ceilTime rounds seconds up to a whole virtual second, floor 1 s — the
// engine cannot represent sub-second events, and a zero-length I/O would
// make the cost model silently free again.
func ceilTime(secs float64) simulator.Time {
	t := simulator.Time(math.Ceil(secs))
	if t < 1 {
		t = 1
	}
	return t
}
