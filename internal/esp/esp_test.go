package esp

import (
	"math"
	"testing"

	"epajsrm/internal/simulator"
)

func TestTariffValidation(t *testing.T) {
	if _, err := NewTariff(); err == nil {
		t.Error("empty tariff accepted")
	}
	if _, err := NewTariff(TariffBand{StartHour: 8, PricePerKWh: 1}); err == nil {
		t.Error("tariff without hour-0 band accepted")
	}
	if _, err := NewTariff(
		TariffBand{StartHour: 0, PricePerKWh: 1},
		TariffBand{StartHour: 0, PricePerKWh: 2},
	); err == nil {
		t.Error("duplicate band accepted")
	}
	if _, err := NewTariff(TariffBand{StartHour: 0, PricePerKWh: -1}); err == nil {
		t.Error("negative price accepted")
	}
}

func TestPeakTariffSchedule(t *testing.T) {
	tf := PeakTariff(0.10, 0.25)
	cases := []struct {
		hour  int
		price float64
	}{
		{0, 0.10}, {7, 0.10}, {8, 0.25}, {21, 0.25}, {22, 0.10}, {23, 0.10},
	}
	for _, c := range cases {
		at := simulator.Time(c.hour) * simulator.Hour
		if got := tf.PriceAt(at); got != c.price {
			t.Errorf("hour %d price = %f, want %f", c.hour, got, c.price)
		}
	}
	if !tf.IsPeak(10 * simulator.Hour) {
		t.Error("hour 10 should be peak")
	}
	if tf.IsPeak(2 * simulator.Hour) {
		t.Error("hour 2 should be off-peak")
	}
	// Second day repeats.
	if got := tf.PriceAt(simulator.Day + 10*simulator.Hour); got != 0.25 {
		t.Errorf("day 2 peak price = %f", got)
	}
}

func TestFlatTariffNeverPeak(t *testing.T) {
	tf := FlatTariff(0.2)
	if tf.IsPeak(12 * simulator.Hour) {
		t.Error("flat tariff has no peak")
	}
}

func TestActiveDR(t *testing.T) {
	p := &Provider{
		Tariff: FlatTariff(0.1),
		Events: []DemandResponse{{From: 100, Until: 200, LimitW: 5000}},
	}
	if _, ok := p.ActiveDR(50); ok {
		t.Error("DR active before window")
	}
	if lim, ok := p.ActiveDR(150); !ok || lim != 5000 {
		t.Errorf("DR at 150 = %f,%v", lim, ok)
	}
	if _, ok := p.ActiveDR(200); ok {
		t.Error("DR active at exclusive end")
	}
}

func TestCheapestSource(t *testing.T) {
	p := &Provider{
		Tariff:            PeakTariff(0.08, 0.30),
		TurbineCapW:       1000,
		TurbineCostPerKWh: 0.15,
	}
	// Off-peak: grid is cheaper.
	if price, turbine := p.CheapestSource(0, 0); turbine || price != 0.08 {
		t.Errorf("off-peak source = %f turbine=%v", price, turbine)
	}
	// Peak: turbine wins while capacity remains.
	if price, turbine := p.CheapestSource(10*simulator.Hour, 0); !turbine || price != 0.15 {
		t.Errorf("peak source = %f turbine=%v", price, turbine)
	}
	// Turbine saturated: back to grid.
	if _, turbine := p.CheapestSource(10*simulator.Hour, 1000); turbine {
		t.Error("saturated turbine still chosen")
	}
}

func TestCostMeterFlatTariff(t *testing.T) {
	p := &Provider{Tariff: FlatTariff(0.10)}
	cm := NewCostMeter(p)
	cm.Observe(0, 3.6e6) // 3.6 MW from t=0
	cm.Observe(3600, 0)  // for one hour => 3600 kWh
	if math.Abs(cm.GridKWh-3600) > 1e-6 {
		t.Fatalf("grid kWh = %f", cm.GridKWh)
	}
	if math.Abs(cm.Cost-360) > 1e-6 {
		t.Fatalf("cost = %f, want 360", cm.Cost)
	}
}

func TestCostMeterUsesTurbineWhenCheaper(t *testing.T) {
	p := &Provider{
		Tariff:            FlatTariff(0.30),
		TurbineCapW:       1000,
		TurbineCostPerKWh: 0.10,
	}
	cm := NewCostMeter(p)
	cm.Observe(0, 1500) // 1.5 kW: 1 kW turbine + 0.5 kW grid
	cm.Observe(3600, 0)
	if math.Abs(cm.TurbKWh-1.0) > 1e-9 {
		t.Fatalf("turbine kWh = %f", cm.TurbKWh)
	}
	if math.Abs(cm.GridKWh-0.5) > 1e-9 {
		t.Fatalf("grid kWh = %f", cm.GridKWh)
	}
	want := 1.0*0.10 + 0.5*0.30
	if math.Abs(cm.Cost-want) > 1e-9 {
		t.Fatalf("cost = %f, want %f", cm.Cost, want)
	}
}

func TestCostMeterPeakShiftSavesMoney(t *testing.T) {
	// The same 1-hour 100 kW load costs less off-peak — the arithmetic
	// behind grid-aware scheduling (E13).
	p := &Provider{Tariff: PeakTariff(0.10, 0.30)}
	peak := NewCostMeter(p)
	peak.Observe(9*simulator.Hour, 100e3)
	peak.Observe(10*simulator.Hour, 0)
	off := NewCostMeter(p)
	off.Observe(23*simulator.Hour, 100e3)
	off.Observe(24*simulator.Hour, 0)
	if off.Cost >= peak.Cost {
		t.Fatalf("off-peak %.2f should be cheaper than peak %.2f", off.Cost, peak.Cost)
	}
	if math.Abs(peak.Cost-30) > 1e-6 || math.Abs(off.Cost-10) > 1e-6 {
		t.Fatalf("costs = %.2f/%.2f, want 30/10", peak.Cost, off.Cost)
	}
}
