// Package esp models the electricity service provider side of the survey's
// motivating context (Bates et al. [6], Patki et al. [36]): time-of-day
// tariffs, demand-response requests, and on-site generation (RIKEN's
// research row weighs grid power against its gas turbines using job
// scheduler information). Energy cost is a first-order motivation in Q1
// answers, so cost metering lives here too.
package esp

import (
	"fmt"
	"sort"

	"epajsrm/internal/simulator"
)

// Tariff is a repeating daily price schedule in currency units per kWh.
type Tariff struct {
	// Bands are (start-hour, price) pairs covering a day; the band beginning
	// at the largest hour <= h applies at hour h. Must contain an entry for
	// hour 0.
	Bands []TariffBand
}

// TariffBand is one price band starting at StartHour (0-23).
type TariffBand struct {
	StartHour   int
	PricePerKWh float64
}

// NewTariff builds a tariff and validates it.
func NewTariff(bands ...TariffBand) (*Tariff, error) {
	if len(bands) == 0 {
		return nil, fmt.Errorf("esp: empty tariff")
	}
	sorted := append([]TariffBand(nil), bands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].StartHour < sorted[j].StartHour })
	if sorted[0].StartHour != 0 {
		return nil, fmt.Errorf("esp: tariff must start at hour 0")
	}
	for i, b := range sorted {
		if b.StartHour < 0 || b.StartHour > 23 {
			return nil, fmt.Errorf("esp: band %d start hour %d out of range", i, b.StartHour)
		}
		if b.PricePerKWh < 0 {
			return nil, fmt.Errorf("esp: negative price")
		}
		if i > 0 && b.StartHour == sorted[i-1].StartHour {
			return nil, fmt.Errorf("esp: duplicate band at hour %d", b.StartHour)
		}
	}
	return &Tariff{Bands: sorted}, nil
}

// MustTariff is NewTariff that panics on error, for literals in profiles.
func MustTariff(bands ...TariffBand) *Tariff {
	t, err := NewTariff(bands...)
	if err != nil {
		panic(err)
	}
	return t
}

// FlatTariff returns a constant-price tariff.
func FlatTariff(price float64) *Tariff {
	return MustTariff(TariffBand{StartHour: 0, PricePerKWh: price})
}

// PeakTariff returns a typical peak/off-peak split: off-peak price from
// 22:00 and 00:00, peak price from 08:00.
func PeakTariff(offPeak, peak float64) *Tariff {
	return MustTariff(
		TariffBand{StartHour: 0, PricePerKWh: offPeak},
		TariffBand{StartHour: 8, PricePerKWh: peak},
		TariffBand{StartHour: 22, PricePerKWh: offPeak},
	)
}

// PriceAt returns the price in effect at virtual time t.
func (tf *Tariff) PriceAt(t simulator.Time) float64 {
	hour := int((t % simulator.Day) / simulator.Hour)
	price := tf.Bands[0].PricePerKWh
	for _, b := range tf.Bands {
		if b.StartHour <= hour {
			price = b.PricePerKWh
		}
	}
	return price
}

// IsPeak reports whether the current price is the tariff's maximum band.
func (tf *Tariff) IsPeak(t simulator.Time) bool {
	maxP := 0.0
	for _, b := range tf.Bands {
		if b.PricePerKWh > maxP {
			maxP = b.PricePerKWh
		}
	}
	return tf.PriceAt(t) >= maxP && len(tf.Bands) > 1
}

// DemandResponse is an ESP request to hold site power at or below LimitW
// during [From, Until) — the grid-integration scenario of Bates et al.
type DemandResponse struct {
	From, Until simulator.Time
	LimitW      float64
}

// Provider bundles the ESP-facing state for one site.
type Provider struct {
	Tariff *Tariff
	Events []DemandResponse

	// Turbine models on-site generation: available capacity at a flat fuel
	// cost. Zero capacity means no turbine.
	TurbineCapW       float64
	TurbineCostPerKWh float64
}

// ActiveDR returns the demand-response limit in effect at t, or (0, false).
func (p *Provider) ActiveDR(t simulator.Time) (float64, bool) {
	for _, e := range p.Events {
		if t >= e.From && t < e.Until {
			return e.LimitW, true
		}
	}
	return 0, false
}

// CheapestSource returns the effective price per kWh at t and whether the
// turbine is the cheaper source for the next increment of load, given
// current turbine loading turbineW.
func (p *Provider) CheapestSource(t simulator.Time, turbineW float64) (price float64, useTurbine bool) {
	grid := p.Tariff.PriceAt(t)
	if p.TurbineCapW > 0 && turbineW < p.TurbineCapW && p.TurbineCostPerKWh < grid {
		return p.TurbineCostPerKWh, true
	}
	return grid, false
}

// CostMeter integrates energy cost over piecewise-constant power segments.
type CostMeter struct {
	Provider *Provider
	lastT    simulator.Time
	lastW    float64
	Cost     float64 // currency units
	GridKWh  float64
	TurbKWh  float64
}

// NewCostMeter returns a meter starting at time 0 with zero draw.
func NewCostMeter(p *Provider) *CostMeter { return &CostMeter{Provider: p} }

// Observe advances the meter to now with the draw that has held since the
// previous call, then records the new draw. Call it whenever site power
// changes and periodically (so tariff band changes are captured with
// bounded error).
func (cm *CostMeter) Observe(now simulator.Time, siteW float64) {
	dt := float64(now - cm.lastT)
	if dt > 0 {
		kwh := cm.lastW * dt / 3600 / 1000
		// Split between turbine and grid, cheapest first.
		turbW := 0.0
		if cm.Provider.TurbineCapW > 0 {
			price := cm.Provider.Tariff.PriceAt(cm.lastT)
			if cm.Provider.TurbineCostPerKWh < price {
				turbW = cm.lastW
				if turbW > cm.Provider.TurbineCapW {
					turbW = cm.Provider.TurbineCapW
				}
			}
		}
		gridW := cm.lastW - turbW
		turbKWh := turbW * dt / 3600 / 1000
		gridKWh := gridW * dt / 3600 / 1000
		cm.TurbKWh += turbKWh
		cm.GridKWh += gridKWh
		cm.Cost += turbKWh*cm.Provider.TurbineCostPerKWh + gridKWh*cm.Provider.Tariff.PriceAt(cm.lastT)
		_ = kwh
	}
	cm.lastT = now
	cm.lastW = siteW
}
