package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// RunInfo is the JSON view of a hosted run.
type RunInfo struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	Site   string `json:"site"`
	Seed   uint64 `json:"seed"`
	Jobs   int    `json:"jobs"`
	Days   int    `json:"days"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
	// Recovered marks a run the journal re-admitted after a crash (it
	// re-entered the queue and, if it had started, re-executes
	// deterministically from its journaled spec).
	Recovered bool  `json:"recovered,omitempty"`
	Created   int64 `json:"created_unix_ms"`
	Started   int64 `json:"started_unix_ms,omitempty"`
	Ended     int64 `json:"ended_unix_ms,omitempty"`
	SimEndS   int64 `json:"sim_end_s,omitempty"`
}

// infoLocked renders a run's JSON view; the service mutex must be held.
func infoLocked(r *Run) RunInfo {
	info := RunInfo{
		ID: r.ID, Tenant: r.Spec.Tenant, Site: r.Spec.Site,
		Seed: r.Spec.Seed, Jobs: r.Spec.Jobs, Days: r.Spec.Days,
		State: string(r.state), Reason: r.reason,
		Recovered: r.recovered,
		Created:   r.created.UnixMilli(),
	}
	if !r.started.IsZero() {
		info.Started = r.started.UnixMilli()
	}
	if !r.ended.IsZero() {
		info.Ended = r.ended.UnixMilli()
	}
	if r.state == StateComplete {
		info.SimEndS = int64(r.end)
	}
	return info
}

// Handler returns the service's HTTP surface:
//
//	GET    /healthz              service census (503 while draining)
//	GET    /metrics              service-level Prometheus exposition
//	GET    /metrics.json         service-level registry snapshot
//	POST   /runs                 submit a run (202, or 400/429/503)
//	GET    /runs[?tenant=t]      list runs
//	GET    /runs/{id}            one run's status
//	DELETE /runs/{id}            cancel (running), or delete (terminal)
//	GET    /runs/{id}/report     the finished run's report (epasim bytes)
//	GET    /runs/{id}/metrics    per-run ops plane, multiplexed from
//	       .../metrics.json      internal/ops — same handlers epasim -http
//	       .../healthz           serves for a single run
//	       .../state
//	       .../events            SSE trace stream (StreamTimeout deadline)
//	       .../query             range queries over the run's metric history
//
// Every unary endpoint runs under http.TimeoutHandler with RequestTimeout
// (a request that blows the deadline gets 503); /events streams instead
// carry a context deadline of StreamTimeout, so a client cannot hold a
// stream open forever.
//
// The shed protocol holds on every degraded admission response: a POST
// /runs that is refused — 429 at quota, 503 draining, or 503 because the
// request blew its deadline under load — always carries Retry-After. The
// deadline case is covered by pre-setting the header before the timeout
// wrapper (TimeoutHandler's own 503 cannot add headers); an accepted 202
// keeps that floor value as a poll hint, and a real shed overwrites it
// with the backlog-scaled one.
func (s *Service) Handler() http.Handler {
	inner := http.HandlerFunc(s.route)
	unary := http.TimeoutHandler(inner, s.cfg.RequestTimeout, "request deadline exceeded\n")
	// The telemetry middleware wraps everything — timeout handler
	// included — so a deadline 503 is logged and measured with the wall
	// time the client actually experienced.
	return s.telemetry(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.StreamTimeout)
			defer cancel()
			inner.ServeHTTP(w, r.WithContext(ctx))
			return
		}
		if r.Method == http.MethodPost && strings.TrimSuffix(r.URL.Path, "/") == "/runs" {
			w.Header().Set("Retry-After", "1")
		}
		unary.ServeHTTP(w, r)
	}))
}

// route is the manual dispatcher: the path shapes are too entangled with
// run IDs for ServeMux patterns, and keeping one switch makes the method
// checks and 404s uniform.
func (s *Service) route(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	switch {
	case path == "" && r.URL.Path == "/":
		s.handleIndex(w, r)
	case path == "/healthz":
		s.handleHealthz(w, r)
	case path == "/metrics":
		s.handleMetrics(w, r, false)
	case path == "/metrics.json":
		s.handleMetrics(w, r, true)
	case path == "/runs":
		switch r.Method {
		case http.MethodPost:
			s.handleSubmit(w, r)
		case http.MethodGet:
			s.handleList(w, r)
		default:
			httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
		}
	case strings.HasPrefix(path, "/runs/"):
		s.handleRun(w, r, strings.TrimPrefix(path, "/runs/"))
	default:
		httpError(w, http.StatusNotFound, "no such endpoint")
	}
}

func (s *Service) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `epaserved — multi-tenant EPA JSRM simulation service

POST   /runs                {"tenant","site","seed","jobs","days"}
GET    /runs[?tenant=t]     list runs
GET    /runs/{id}           status
DELETE /runs/{id}           cancel or delete
GET    /runs/{id}/report    finished run report (byte-identical to epasim)
GET    /runs/{id}/{metrics,metrics.json,healthz,state,events,query}
GET    /healthz /metrics /metrics.json
`)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, st)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request, asJSON bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if asJSON {
		w.Header().Set("Content-Type", "application/json")
		s.reg.WriteJSON(w) //nolint:errcheck // client gone mid-write
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // client gone mid-write
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: "+err.Error())
		return
	}
	ri := reqFrom(r.Context())
	ri.annotate(func(ri *reqInfo) { ri.tenant = spec.Tenant })
	run, err := s.SubmitReq(spec, reqID(r.Context()))
	if err != nil {
		var shed *AdmissionError
		if errors.As(err, &shed) {
			ri.annotate(func(ri *reqInfo) { ri.shed = shed.Reason })
			w.Header().Set("Retry-After", strconv.Itoa(shed.RetryAfter))
			httpError(w, shed.Code, shed.Reason)
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ri.annotate(func(ri *reqInfo) { ri.run = run.ID })
	s.mu.Lock()
	info := infoLocked(run)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, info)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	s.mu.Lock()
	infos := make([]RunInfo, 0, len(s.runs))
	for _, run := range s.runs {
		if tenant != "" && run.Spec.Tenant != tenant {
			continue
		}
		infos = append(infos, infoLocked(run))
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return runSeq(infos[i].ID) < runSeq(infos[j].ID) })
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"runs": infos})
}

// runSeq recovers the admission sequence from a run ID ("r17" -> 17) for
// stable listing order.
func runSeq(id string) int64 {
	n, _ := strconv.ParseInt(strings.TrimPrefix(id, "r"), 10, 64)
	return n
}

// handleRun dispatches /runs/{id} and /runs/{id}/{sub}.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request, rest string) {
	id, sub, _ := strings.Cut(rest, "/")
	run, ok := s.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	ri := reqFrom(r.Context())
	s.mu.Lock()
	tenant, recovered := run.Spec.Tenant, run.recovered
	s.mu.Unlock()
	ri.annotate(func(ri *reqInfo) {
		ri.run, ri.tenant, ri.recovered = id, tenant, recovered
	})
	if sub == "" {
		switch r.Method {
		case http.MethodGet:
			s.mu.Lock()
			info := infoLocked(run)
			s.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, info)
		case http.MethodDelete:
			state, _ := s.CancelReq(id, reqID(r.Context()))
			w.Header().Set("Content-Type", "application/json")
			writeJSON(w, map[string]string{"id": id, "state": string(state)})
		default:
			httpError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
		}
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if sub == "report" {
		s.handleReport(w, run)
		return
	}
	// The per-run ops plane: delegate to the run's own ops.Server handler,
	// which takes the run's state lock — never the service mutex — so a
	// scrape of one tenant's run cannot stall another's.
	s.mu.Lock()
	srv := run.srv
	m := run.m
	state := run.state
	s.mu.Unlock()
	if srv == nil {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, "run not started (state "+string(state)+")")
		return
	}
	if ri != nil && m != nil {
		// The profiler belongs to the executor's control loop; reading
		// its current phase takes the same per-run lock the delegated
		// handler is about to take anyway.
		srv.Locked(func() { ri.annotate(func(ri *reqInfo) { ri.phase = m.Prof.Current() }) })
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + sub
	srv.Handler().ServeHTTP(w, r2)
}

func (s *Service) handleReport(w http.ResponseWriter, run *Run) {
	s.mu.Lock()
	state := run.state
	reason := run.reason
	report := run.report
	s.mu.Unlock()
	switch state {
	case StateComplete:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(report) //nolint:errcheck // client gone mid-write
	case StateFailed, StateCancelled:
		httpError(w, http.StatusGone, "run "+string(state)+": "+reason)
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, "run not finished (state "+string(state)+")")
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, map[string]any{"error": msg, "code": code})
}

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Write(b) //nolint:errcheck // client gone mid-write
}

// Serve starts a real listener over Handler and returns the bound
// address plus a closer that gracefully drains the HTTP server (the
// Service itself is shut down separately). Used by cmd/epaserved; tests
// use Handler directly.
func (s *Service) Serve(addr string) (string, func(ctx context.Context) error, error) {
	hsrv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("service: listen %s: %w", addr, err)
	}
	go hsrv.Serve(lis) //nolint:errcheck // Serve always returns on Shutdown/Close
	return lis.Addr().String(), hsrv.Shutdown, nil
}
