package service

// Cancel races against the journal: every interleaving of DELETE /runs/{id}
// with queueing, execution, and terminal reaping must leave the write-ahead
// log coherent — exactly one terminal record per run, deletion records for
// reaped runs, and a fold that matches the live table. Run under -race.

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"epajsrm/internal/journal"
	"epajsrm/internal/ops"
)

// readFold reads a (closed) journal directory and folds it the way
// recovery would.
func readFold(t *testing.T, dir string) ([]journal.Record, map[string]*replayState) {
	t.Helper()
	recs, _, err := journal.ReadDir(dir)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	states, _ := foldRecords(recs)
	return recs, states
}

func countRecords(recs []journal.Record, id string, typ journal.Type) int {
	n := 0
	for _, rec := range recs {
		if rec.ID == id && rec.Type == typ {
			n++
		}
	}
	return n
}

// cancelStorm fires n concurrent Cancels at one run and waits for all.
func cancelStorm(s *Service, id string, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Cancel(id)
		}()
	}
	wg.Wait()
}

// TestCancelRaceWhileQueued: a storm of cancels hits a run that never got
// a slot. Whatever interleaving wins, the journal must show exactly one
// terminal record (cancelled), and the table must agree with the fold —
// either the run is terminal in both, or a follow-up cancel reaped it and
// both say deleted.
func TestCancelRaceWhileQueued(t *testing.T) {
	dir := t.TempDir()
	cfg := journalConfig(dir)
	cfg.JournalNoSync = true
	cfg.MaxActive = 1
	s := mustNew(t, cfg)
	gate := make(chan struct{})
	setBuild(s, gatedBuild(gate))

	filler, err := s.Submit(spec("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(spec("a", 2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, filler.ID, StateRunning)

	cancelStorm(s, victim.ID, 8)
	_, inTable := s.Get(victim.ID)
	close(gate)
	waitState(t, s, filler.ID, StateComplete)
	shutdownOK(t, s)

	recs, states := readFold(t, dir)
	if n := countRecords(recs, victim.ID, journal.TypeTerminal); n != 1 {
		t.Fatalf("victim has %d terminal records, want exactly 1", n)
	}
	st := states[victim.ID]
	if st == nil || !st.terminal || st.state != StateCancelled {
		t.Fatalf("journal fold for victim = %+v, want terminal cancelled", st)
	}
	// The first cancel terminates; any later one reaps. Table and journal
	// must tell the same story.
	if deleted := countRecords(recs, victim.ID, journal.TypeDeleted) > 0; deleted != st.deleted || deleted == inTable {
		t.Fatalf("incoherent: %d deletion records, fold deleted=%v, still in table=%v",
			countRecords(recs, victim.ID, journal.TypeDeleted), st.deleted, inTable)
	}
	if n := countRecords(recs, victim.ID, journal.TypeStarted); n != 0 {
		t.Fatalf("queued-cancelled run has %d started records, want 0", n)
	}
}

// TestCancelRaceMidSlice: the test takes the run's own ops lock — the one
// the executor needs for its next virtual-time slice — wedging the run
// mid-execution, then storms Cancel. The flag must be honored at the next
// slice boundary, the journal must carry exactly one terminal record, and
// a reap-then-restart must not resurrect the run.
func TestCancelRaceMidSlice(t *testing.T) {
	dir := t.TempDir()
	cfg := journalConfig(dir)
	cfg.JournalNoSync = true
	s := mustNew(t, cfg)

	// One-second slices: 86400 lock acquisitions for a one-day horizon,
	// so the run cannot outrun the wedge below.
	sp := spec("a", 3)
	sp.SliceS = 1
	r, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the executor to publish the run's ops server, then hold
	// its lock; the executor blocks at its next slice.
	deadline := time.Now().Add(10 * time.Second)
	var srv *ops.Server
	for srv == nil {
		if time.Now().After(deadline) {
			t.Fatal("run never published its ops server")
		}
		runtime.Gosched()
		s.mu.Lock()
		srv = r.srv
		s.mu.Unlock()
	}
	hold := make(chan struct{})
	wedged := make(chan struct{})
	go srv.Locked(func() {
		close(wedged)
		<-hold
	})
	<-wedged

	cancelStorm(s, r.ID, 4)
	close(hold)

	// The storm races the executor's own terminal transition: a straggler
	// cancel that lands after the run turns cancelled legally reaps it.
	// Either ending is fine; the run must finish cancelled (never
	// complete/failed) and end up reaped.
	deadline = time.Now().Add(30 * time.Second)
	for {
		s.mu.Lock()
		_, present := s.runs[r.ID]
		st := r.state
		s.mu.Unlock()
		if !present {
			break // a straggler already reaped the cancelled run
		}
		if st == StateCancelled {
			if got, ok := s.Cancel(r.ID); !ok || got != StateCancelled {
				t.Fatalf("cancel terminal = (%s, %v), want (cancelled, true)", got, ok)
			}
			break
		}
		if st == StateComplete || st == StateFailed {
			t.Fatalf("stormed running run ended %s, want cancelled", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in %s after cancel storm", st)
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := s.Get(r.ID); ok {
		t.Fatal("run survived terminal cancel")
	}
	if _, ok := s.Cancel(r.ID); ok {
		t.Fatal("cancel of deleted run reported found")
	}
	shutdownOK(t, s)

	recs, states := readFold(t, dir)
	if n := countRecords(recs, r.ID, journal.TypeTerminal); n != 1 {
		t.Fatalf("run has %d terminal records, want exactly 1", n)
	}
	if st := states[r.ID]; st == nil || !st.deleted {
		t.Fatalf("journal fold = %+v, want deleted", st)
	}

	// Recovery must honor the deletion: no resurrection.
	s2 := mustNew(t, cfg)
	defer shutdownOK(t, s2)
	if _, ok := s2.Get(r.ID); ok {
		t.Fatal("deleted run resurrected on restart")
	}
}

// TestCancelRaceOnTerminal: a storm of cancels against a completed run —
// exactly one wins the reap, exactly one deletion record lands, and the
// report was journaled in its terminal record before any of that.
func TestCancelRaceOnTerminal(t *testing.T) {
	dir := t.TempDir()
	cfg := journalConfig(dir)
	cfg.JournalNoSync = true
	s := mustNew(t, cfg)

	r, err := s.Submit(spec("a", 4))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, s, r.ID, StateComplete); st != StateComplete {
		t.Fatalf("run ended %s, want complete", st)
	}

	cancelStorm(s, r.ID, 8)
	if _, ok := s.Get(r.ID); ok {
		t.Fatal("run survived a cancel storm on its terminal state")
	}
	shutdownOK(t, s)

	recs, states := readFold(t, dir)
	if n := countRecords(recs, r.ID, journal.TypeTerminal); n != 1 {
		t.Fatalf("run has %d terminal records, want exactly 1", n)
	}
	if n := countRecords(recs, r.ID, journal.TypeDeleted); n != 1 {
		t.Fatalf("run has %d deletion records, want exactly 1 (one reap wins)", n)
	}
	st := states[r.ID]
	if st == nil || !st.deleted || st.state != StateComplete || len(st.report) == 0 {
		t.Fatalf("journal fold = %+v, want deleted complete run whose terminal record carried the report", st)
	}
}
