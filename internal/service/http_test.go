package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"epajsrm/internal/metrics"
)

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestHTTPLifecycle walks the full REST surface: submit, list, poll,
// per-run ops scrapes, report, delete.
func TestHTTPLifecycle(t *testing.T) {
	cfg := testConfig()
	cfg.StreamTimeout = 200 * time.Millisecond
	s := mustNew(t, cfg)
	defer shutdownOK(t, s)
	h := s.Handler()

	if rec := do(t, h, "GET", "/", ""); rec.Code != 200 || !strings.Contains(rec.Body.String(), "epaserved") {
		t.Fatalf("index = %d %q", rec.Code, rec.Body.String())
	}
	if rec := do(t, h, "GET", "/healthz", ""); rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("/healthz = %d %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, h, "GET", "/nope", ""); rec.Code != 404 {
		t.Fatalf("GET /nope = %d, want 404", rec.Code)
	}
	if rec := do(t, h, "PUT", "/runs", ""); rec.Code != 405 {
		t.Fatalf("PUT /runs = %d, want 405", rec.Code)
	}

	// Spec validation at the HTTP boundary.
	for _, body := range []string{
		"not json",
		`{"tenant":"a","site":"cineca","jobs":10,"days":1,"bogus":1}`, // unknown field
		`{"tenant":"a","site":"atlantis","jobs":10,"days":1}`,         // unknown site
		`{"tenant":"a","site":"cineca","jobs":0,"days":1}`,
	} {
		if rec := do(t, h, "POST", "/runs", body); rec.Code != 400 {
			t.Fatalf("POST /runs %q = %d, want 400", body, rec.Code)
		}
	}

	// Submit and run to completion.
	rec := do(t, h, "POST", "/runs", `{"tenant":"acme","site":"cineca","seed":7,"jobs":10,"days":1}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d %s", rec.Code, rec.Body.String())
	}
	var info RunInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Tenant != "acme" || info.State != string(StateQueued) {
		t.Fatalf("accepted info = %+v", info)
	}

	deadline := time.Now().Add(30 * time.Second)
	for info.State != string(StateComplete) {
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in %s", info.State)
		}
		rec = do(t, h, "GET", "/runs/"+info.ID, "")
		if rec.Code != 200 {
			t.Fatalf("poll = %d %s", rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if info.SimEndS <= 0 || info.Started == 0 || info.Ended == 0 {
		t.Fatalf("complete info missing timestamps: %+v", info)
	}

	// Listing, with and without the tenant filter.
	for path, want := range map[string]int{"/runs": 1, "/runs?tenant=acme": 1, "/runs?tenant=ghost": 0} {
		rec = do(t, h, "GET", path, "")
		var list struct {
			Runs []RunInfo `json:"runs"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if len(list.Runs) != want {
			t.Fatalf("GET %s = %d runs, want %d", path, len(list.Runs), want)
		}
	}

	// The report endpoint serves the rendered bytes verbatim.
	rec = do(t, h, "GET", "/runs/"+info.ID+"/report", "")
	if rec.Code != 200 {
		t.Fatalf("report = %d %s", rec.Code, rec.Body.String())
	}
	run, _ := s.Get(info.ID)
	s.mu.Lock()
	stored := append([]byte(nil), run.report...)
	s.mu.Unlock()
	if !bytes.Equal(rec.Body.Bytes(), stored) {
		t.Fatal("report endpoint bytes differ from the stored render")
	}
	if !strings.Contains(rec.Body.String(), "site cineca") {
		t.Fatalf("report content:\n%s", rec.Body.String())
	}

	// Per-run ops plane, multiplexed through /runs/{id}/...
	rec = do(t, h, "GET", "/runs/"+info.ID+"/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("per-run /metrics = %d", rec.Code)
	}
	samples, err := metrics.ParsePrometheusText(rec.Body)
	if err != nil {
		t.Fatalf("per-run /metrics does not parse: %v", err)
	}
	if samples["jobs_completed"] <= 0 {
		t.Fatalf("per-run jobs_completed = %g, want > 0", samples["jobs_completed"])
	}
	rec = do(t, h, "GET", "/runs/"+info.ID+"/healthz", "")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"complete"`) {
		t.Fatalf("per-run /healthz = %d %s, want 200 complete", rec.Code, rec.Body.String())
	}
	rec = do(t, h, "GET", "/runs/"+info.ID+"/state", "")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"nodes"`) {
		t.Fatalf("per-run /state = %d", rec.Code)
	}
	// SSE stream over a finished run: opens fine, closes at StreamTimeout.
	start := time.Now()
	rec = do(t, h, "GET", "/runs/"+info.ID+"/events", "")
	if rec.Code != 200 {
		t.Fatalf("per-run /events = %d", rec.Code)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("/events stream held for %s, want the %s StreamTimeout to cut it", el, cfg.StreamTimeout)
	}

	// Service-level metrics count the lifecycle.
	rec = do(t, h, "GET", "/metrics", "")
	samples, err = metrics.ParsePrometheusText(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if samples["service_accepted"] < 1 || samples["service_completed"] < 1 {
		t.Fatalf("service metrics = accepted %g completed %g", samples["service_accepted"], samples["service_completed"])
	}

	// DELETE on a terminal run removes it; the ID then 404s.
	rec = do(t, h, "DELETE", "/runs/"+info.ID, "")
	if rec.Code != 200 {
		t.Fatalf("DELETE = %d", rec.Code)
	}
	if rec = do(t, h, "GET", "/runs/"+info.ID, ""); rec.Code != 404 {
		t.Fatalf("GET after DELETE = %d, want 404", rec.Code)
	}
}

// TestHTTPPendingAndGone covers the not-ready responses: ops endpoints and
// report on a queued run answer 409 + Retry-After, and the report of a
// cancelled run is 410 Gone.
func TestHTTPPendingAndGone(t *testing.T) {
	cfg := testConfig()
	cfg.MaxActive = 1
	s := mustNew(t, cfg)
	gate := make(chan struct{})
	setBuild(s, gatedBuild(gate))
	defer func() {
		close(gate)
		shutdownOK(t, s)
	}()
	h := s.Handler()

	submit := func(seed string) string {
		rec := do(t, h, "POST", "/runs", `{"tenant":"a","site":"cineca","seed":`+seed+`,"jobs":5,"days":1}`)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit = %d %s", rec.Code, rec.Body.String())
		}
		var info RunInfo
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		return info.ID
	}
	running := submit("1")
	queued := submit("2")
	waitState(t, s, running, StateRunning)

	for _, path := range []string{"/runs/" + queued + "/state", "/runs/" + queued + "/report"} {
		rec := do(t, h, "GET", path, "")
		if rec.Code != http.StatusConflict {
			t.Fatalf("GET %s on queued run = %d, want 409", path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("GET %s: 409 without Retry-After", path)
		}
	}

	// Cancel the queued run; its report is now Gone.
	if rec := do(t, h, "DELETE", "/runs/"+queued, ""); rec.Code != 200 {
		t.Fatalf("DELETE queued = %d", rec.Code)
	}
	if rec := do(t, h, "GET", "/runs/"+queued+"/report", ""); rec.Code != http.StatusGone {
		t.Fatalf("report of cancelled run = %d, want 410", rec.Code)
	}
}

// TestHTTPShedCarriesRetryAfter pins the shed protocol at the HTTP layer:
// 429 on quota with a parseable Retry-After, 503 once draining.
func TestHTTPShedCarriesRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.MaxActive = 1
	cfg.TenantActive = 1
	s := mustNew(t, cfg)
	gate := make(chan struct{})
	setBuild(s, gatedBuild(gate))
	h := s.Handler()

	body := `{"tenant":"a","site":"cineca","seed":1,"jobs":5,"days":1}`
	if rec := do(t, h, "POST", "/runs", body); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rec.Code)
	}
	rec := do(t, h, "POST", "/runs", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After = %q, want a positive hint", ra)
	}

	close(gate)
	shutdownOK(t, s)
	rec = do(t, h, "POST", "/runs", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if rec = do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", rec.Code)
	}
}
