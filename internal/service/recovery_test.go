package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"epajsrm/internal/journal"
)

// journalConfig is testConfig plus a journal in dir. Fsyncs stay on in
// the golden test (the commit path must be exercised); bulk tests turn
// them off for speed via cfg.JournalNoSync.
func journalConfig(dir string) Config {
	cfg := testConfig()
	cfg.JournalDir = dir
	return cfg
}

// seedJournal writes records into dir as a crashed service would have
// left them.
func seedJournal(t *testing.T, dir string, recs ...journal.Record) {
	t.Helper()
	j, _, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatalf("seed journal: %v", err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatalf("seed append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("seed close: %v", err)
	}
}

func mustSpecJSON(t *testing.T, sp Spec) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRecoveryReexecutionByteIdentical is the determinism half of the
// durability contract: a run interrupted mid-execution (journal shows
// accepted + started, no terminal) is re-admitted and re-executed from
// its journaled spec, and the recovered report is byte-identical to the
// same spec run on a service that never crashed.
func TestRecoveryReexecutionByteIdentical(t *testing.T) {
	// The uninterrupted golden.
	plain := mustNew(t, testConfig())
	r, err := plain.Submit(spec("a", 7))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, plain, r.ID, StateComplete)
	plain.mu.Lock()
	golden := append([]byte(nil), r.report...)
	plain.mu.Unlock()
	shutdownOK(t, plain)
	if len(golden) == 0 {
		t.Fatal("golden report empty")
	}

	// A journal as a crash mid-execution leaves it: the spec was
	// acknowledged, the run had a slot and a watermark, no terminal.
	dir := t.TempDir()
	seedJournal(t, dir,
		journal.Record{Type: journal.TypeAccepted, ID: "r1", Seq: 1,
			Spec: mustSpecJSON(t, spec("a", 7)), UnixMS: 1000},
		journal.Record{Type: journal.TypeStarted, ID: "r1", UnixMS: 1100},
		journal.Record{Type: journal.TypeWatermark, ID: "r1", VT: 7200},
	)

	s := mustNew(t, journalConfig(dir))
	defer shutdownOK(t, s)
	if rec := s.Recovery(); rec.Interrupted != 1 || rec.Replayed != 3 {
		t.Fatalf("recovery summary = %+v, want 1 interrupted from 3 records", rec)
	}
	if st := waitState(t, s, "r1", StateComplete); st != StateComplete {
		t.Fatalf("recovered run ended %s, want complete", st)
	}
	s.mu.Lock()
	got := append([]byte(nil), s.runs["r1"].report...)
	recovered := s.runs["r1"].recovered
	panicsVal := s.reg.Value("service.recoveries")
	s.mu.Unlock()
	if !bytes.Equal(got, golden) {
		t.Fatalf("recovered report differs from uninterrupted run:\n--- recovered ---\n%s\n--- golden ---\n%s", got, golden)
	}
	if !recovered {
		t.Fatal("re-executed run not marked recovered")
	}
	if panicsVal != 1 {
		t.Fatalf("service.recoveries = %g, want 1", panicsVal)
	}
}

// TestRecoveryFoldsAllStates: terminal runs reload as metadata (reports
// intact, never re-executed), queued runs re-enter the queue, deleted
// runs stay gone, and the admission sequence continues past the
// recovered maximum.
func TestRecoveryFoldsAllStates(t *testing.T) {
	dir := t.TempDir()
	fakeReport := []byte("journaled report bytes — must survive verbatim\n")
	seedJournal(t, dir,
		// rA: completed before the crash; its report lives in the journal.
		journal.Record{Type: journal.TypeAccepted, ID: "r1", Seq: 1, Spec: mustSpecJSON(t, spec("a", 1)), UnixMS: 1000},
		journal.Record{Type: journal.TypeStarted, ID: "r1", UnixMS: 1001},
		journal.Record{Type: journal.TypeTerminal, ID: "r1", State: "complete", VT: 86400, Report: fakeReport, UnixMS: 2000},
		// rB: accepted, never started.
		journal.Record{Type: journal.TypeAccepted, ID: "r2", Seq: 2, Spec: mustSpecJSON(t, spec("b", 2)), UnixMS: 1002},
		// rC: interrupted mid-run.
		journal.Record{Type: journal.TypeAccepted, ID: "r3", Seq: 3, Spec: mustSpecJSON(t, spec("c", 3)), UnixMS: 1003},
		journal.Record{Type: journal.TypeStarted, ID: "r3", UnixMS: 1004},
		// rD: terminal then deleted — must not resurrect.
		journal.Record{Type: journal.TypeAccepted, ID: "r4", Seq: 4, Spec: mustSpecJSON(t, spec("d", 4)), UnixMS: 1005},
		journal.Record{Type: journal.TypeTerminal, ID: "r4", State: "cancelled", Reason: "client cancel", UnixMS: 1500},
		journal.Record{Type: journal.TypeDeleted, ID: "r4"},
		// rE: cancelled, kept as metadata.
		journal.Record{Type: journal.TypeAccepted, ID: "r5", Seq: 5, Spec: mustSpecJSON(t, spec("e", 5)), UnixMS: 1006},
		journal.Record{Type: journal.TypeTerminal, ID: "r5", State: "cancelled", Reason: "cancelled before start", UnixMS: 1600},
	)

	cfg := journalConfig(dir)
	cfg.JournalNoSync = true
	s := mustNew(t, cfg)
	defer shutdownOK(t, s)

	rec := s.Recovery()
	if rec.Terminal != 2 || rec.Requeued != 1 || rec.Interrupted != 1 {
		t.Fatalf("recovery summary = %+v, want 2 terminal / 1 requeued / 1 interrupted", rec)
	}
	if _, ok := s.Get("r4"); ok {
		t.Fatal("deleted run resurrected by recovery")
	}

	// The pre-crash report is served verbatim, not re-rendered: r1 keeps
	// the journal's bytes even though a real cineca run would differ.
	s.mu.Lock()
	r1, r5 := s.runs["r1"], s.runs["r5"]
	gotReport := append([]byte(nil), r1.report...)
	st1, st5, reason5 := r1.state, r5.state, r5.reason
	s.mu.Unlock()
	if st1 != StateComplete || !bytes.Equal(gotReport, fakeReport) {
		t.Fatalf("r1 = %s report %q, want complete with the journaled bytes", st1, gotReport)
	}
	if st5 != StateCancelled || !strings.Contains(reason5, "cancelled") {
		t.Fatalf("r5 = %s (%q), want cancelled metadata", st5, reason5)
	}

	// rB and rC re-enter arbitration and complete for real.
	for _, id := range []string{"r2", "r3"} {
		if st := waitState(t, s, id, StateComplete); st != StateComplete {
			t.Fatalf("recovered run %s ended %s, want complete", id, st)
		}
	}

	// Fresh admissions continue past the recovered sequence.
	nr, err := s.Submit(spec("f", 6))
	if err != nil {
		t.Fatal(err)
	}
	if nr.ID != "r6" {
		t.Fatalf("post-recovery admission got ID %s, want r6 (sequence must continue)", nr.ID)
	}
}

// TestRecoveryAcrossRestart drives the real write path: a service with a
// journal completes runs, shuts down, and a second service on the same
// directory serves the same terminal states and identical report bytes.
func TestRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := journalConfig(dir)
	s1 := mustNew(t, cfg)
	a, err := s1.Submit(spec("a", 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s1.Submit(spec("b", 12))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, a.ID, StateComplete)
	waitState(t, s1, b.ID, StateComplete)
	s1.mu.Lock()
	reportA := append([]byte(nil), s1.runs[a.ID].report...)
	s1.mu.Unlock()
	shutdownOK(t, s1)

	s2 := mustNew(t, cfg)
	defer shutdownOK(t, s2)
	rec := s2.Recovery()
	if rec.Terminal != 2 || rec.Interrupted != 0 {
		t.Fatalf("restart recovery = %+v, want 2 terminal", rec)
	}
	s2.mu.Lock()
	ra := s2.runs[a.ID]
	gotA := append([]byte(nil), ra.report...)
	stA := ra.state
	s2.mu.Unlock()
	if stA != StateComplete || !bytes.Equal(gotA, reportA) {
		t.Fatalf("restarted service serves %s with %d report bytes, want complete with the original %d bytes",
			stA, len(gotA), len(reportA))
	}
}

// TestJournalRotationUnderService: a tiny segment bound forces
// compacting rotations during live traffic, and recovery from the
// rotated journal still reconstructs the table — minus reaped runs,
// which compaction forgets.
func TestJournalRotationUnderService(t *testing.T) {
	dir := t.TempDir()
	cfg := journalConfig(dir)
	cfg.JournalNoSync = true
	cfg.JournalMaxBytes = 2048 // a report is bigger than this; every completion rotates
	s := mustNew(t, cfg)

	var keep, drop string
	for i := 0; i < 4; i++ {
		r, err := s.Submit(spec("a", uint64(20+i)))
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, s, r.ID, StateComplete)
		if i == 0 {
			drop = r.ID
		} else {
			keep = r.ID
		}
	}
	if _, ok := s.Cancel(drop); !ok { // DELETE on terminal: reap now
		t.Fatal("cancel terminal run: not found")
	}
	if st := s.j.Stats(); st.Rotations == 0 {
		t.Fatalf("journal stats %+v: no rotation despite a %d-byte bound", st, cfg.JournalMaxBytes)
	}
	shutdownOK(t, s)

	s2 := mustNew(t, cfg)
	defer shutdownOK(t, s2)
	if _, ok := s2.Get(drop); ok {
		t.Fatalf("reaped run %s survived rotation + restart", drop)
	}
	if _, ok := s2.Get(keep); !ok {
		t.Fatalf("live run %s lost across rotation + restart", keep)
	}
	if rec := s2.Recovery(); rec.Terminal != 3 {
		t.Fatalf("recovery after rotation = %+v, want the 3 kept terminal runs", rec)
	}
}

// TestSubmitFailsClosedWithoutJournal: when the journal cannot commit,
// admission sheds (503 + Retry-After) instead of acknowledging work that
// would be silently lost.
func TestSubmitFailsClosedWithoutJournal(t *testing.T) {
	dir := t.TempDir()
	cfg := journalConfig(dir)
	s := mustNew(t, cfg)
	defer shutdownOK(t, s)
	// Sever the journal out from under the service.
	if err := s.j.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(spec("a", 1))
	var shed *AdmissionError
	if !errors.As(err, &shed) || shed.Code != 503 || shed.RetryAfter < 1 {
		t.Fatalf("submit with dead journal = %v, want 503 AdmissionError with Retry-After", err)
	}
	if !strings.Contains(shed.Reason, "durability") {
		t.Fatalf("shed reason %q does not name durability", shed.Reason)
	}
	if s.jErrs.Load() == 0 {
		t.Fatal("journal error not counted")
	}
	if _, ok := s.Get("r1"); ok {
		t.Fatal("run entered the table despite the failed commit")
	}
}

// TestRecoveryHonorsJournaledSpecs: a spec journaled under wider limits than
// the restarted service's is still honored — it was acknowledged.
func TestRecoveryHonorsJournaledSpecs(t *testing.T) {
	dir := t.TempDir()
	wide := spec("a", 9)
	wide.Jobs = 40 // wider than the shrunken MaxJobs below
	seedJournal(t, dir,
		journal.Record{Type: journal.TypeAccepted, ID: "r1", Seq: 1, Spec: mustSpecJSON(t, wide), UnixMS: 1000},
	)
	cfg := journalConfig(dir)
	cfg.JournalNoSync = true
	cfg.MaxJobs = 20
	s := mustNew(t, cfg)
	defer shutdownOK(t, s)
	if st := waitState(t, s, "r1", StateComplete); st != StateComplete {
		t.Fatalf("acknowledged wide spec ended %s after restart, want complete", st)
	}
}
