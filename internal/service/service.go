// Package service is the multi-tenant simulation control plane: one
// process hosts many concurrent site simulations, each a fully private
// engine + manager + metrics registry + tracer advanced in virtual-time
// slices under its own lock, so every hosted run stays deterministic and
// its report byte-identical to the same seed/profile run under standalone
// epasim (internal/runreport is the shared renderer that pins that
// contract).
//
// The robustness layer is the point. The survey's production sites stress
// that the operational plane around the scheduler must stay up under load
// and degrade predictably; this package applies that requirement one level
// up the stack, to the simulation service itself:
//
//   - Admission control: the run table is bounded (MaxRuns) and each
//     tenant's live runs are capped (TenantActive). Requests beyond either
//     bound are shed with 429 + Retry-After rather than queued without
//     bound — the degradation ladder is accept → queue → shed.
//   - Fair-share slot arbitration: queued runs compete for execution slots
//     (MaxActive) and the next slot goes to the tenant with the least
//     decayed service consumption, via the same policy.ShareLedger that
//     arbitrates job priority inside a simulation — shared-facility
//     fairness applied to the facility simulator itself.
//   - Request deadlines on every endpoint (RequestTimeout for unary
//     requests, StreamTimeout for SSE streams).
//   - Panic isolation: a run that panics mid-execution is marked failed
//     and reaped; its neighbors never notice.
//   - Graceful shutdown: draining refuses new work with 503, cancels
//     queued runs, releases SSE streams, and waits for in-flight runs to
//     finish until the caller's deadline, after which they are hard
//     stopped at their next slice boundary.
//   - Idle-run reaping: terminal runs are kept (still scrapeable — a
//     finished run's /metrics and /report stay on the wire) until nobody
//     has touched them for IdleTTL, then deleted so the table cannot fill
//     with corpses.
//   - Durability (JournalDir): every run-table transition is written to
//     an internal/journal write-ahead log — the accepted spec is fsynced
//     before the client's 202, terminal states (with the report) before
//     the table moves on — and New replays it, so a SIGKILL is
//     observationally a long pause: terminal runs come back as metadata,
//     interrupted runs re-execute deterministically from their journaled
//     spec, queued runs re-enter fair-share arbitration. See journal.go
//     for the recovery contract.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"epajsrm/internal/core"
	"epajsrm/internal/flight"
	"epajsrm/internal/jobs"
	"epajsrm/internal/journal"
	"epajsrm/internal/metrics"
	"epajsrm/internal/ops"
	"epajsrm/internal/policy"
	ctlprof "epajsrm/internal/prof"
	"epajsrm/internal/runreport"
	"epajsrm/internal/simulator"
	"epajsrm/internal/site"
	"epajsrm/internal/trace"
	"epajsrm/internal/tsdb"
)

// RunState is a hosted run's lifecycle position.
type RunState string

const (
	StateQueued    RunState = "queued"    // admitted, waiting for a slot
	StateRunning   RunState = "running"   // executing in slices
	StateComplete  RunState = "complete"  // finished; report available
	StateFailed    RunState = "failed"    // build error, panic, or hard stop
	StateCancelled RunState = "cancelled" // client cancel or shutdown drain
)

// Terminal reports whether the state is final.
func (s RunState) Terminal() bool {
	return s == StateComplete || s == StateFailed || s == StateCancelled
}

// Spec is one tenant's run request: which surveyed site profile to
// simulate, at which seed, with how much workload.
type Spec struct {
	Tenant string `json:"tenant"`
	Site   string `json:"site"`
	Seed   uint64 `json:"seed"`
	Jobs   int    `json:"jobs"`
	Days   int    `json:"days"`
	// SliceS optionally overrides the virtual-time slice for this run,
	// in simulated seconds per lock acquisition. 0 means the service
	// default; anything else must land in [1, 86400] or admission
	// rejects the spec with 400 — a non-positive or absurd slice would
	// burn a fair-share slot spinning (or never yielding the run lock)
	// before failing.
	SliceS int64 `json:"slice_s,omitempty"`
}

// Config bounds the service. The zero value is unusable; call Default
// first and override fields.
type Config struct {
	// MaxRuns bounds the run table: queued + running + not-yet-reaped
	// terminal runs. Admission beyond it sheds with 429.
	MaxRuns int
	// MaxActive is the number of concurrent execution slots.
	MaxActive int
	// TenantActive caps one tenant's queued+running runs; admission beyond
	// it sheds that tenant with 429 while others keep being served.
	TenantActive int
	// MaxJobs and MaxDays bound a single spec (400 beyond them).
	MaxJobs int
	MaxDays int
	// IdleTTL is how long a terminal run survives with no endpoint
	// touching it before the reaper deletes it.
	IdleTTL time.Duration
	// RequestTimeout is the per-request deadline on every unary endpoint;
	// StreamTimeout bounds an SSE /events stream.
	RequestTimeout time.Duration
	StreamTimeout  time.Duration
	// Slice is the virtual-time quantum a run advances per lock
	// acquisition; between slices its ops endpoints can read a quiescent
	// manager and cancellation/shutdown can interject.
	Slice simulator.Time
	// HalfLife is the fair-share ledger's decay half-life (wall clock).
	HalfLife time.Duration
	// JournalDir, when non-empty, makes accepted runs durable: every
	// run-table transition is logged to an internal/journal WAL in this
	// directory and replayed by New after a crash.
	JournalDir string
	// JournalMaxBytes rotates the journal through a compacting snapshot
	// once the active segment outgrows it (<= 0: the journal's 4 MiB
	// default).
	JournalMaxBytes int64
	// JournalNoSync drops every fsync. Test-only: it keeps the record
	// stream (so recovery logic is exercised) but forfeits the
	// power-loss guarantee.
	JournalNoSync bool
	// WatermarkEvery journals a virtual-time progress watermark every N
	// slices of a running run (<= 0: 64). Watermarks are informational
	// — recovery re-executes from the spec, not the watermark — but
	// they bound how stale the journal's view of a long run can get.
	WatermarkEvery int
	// AccessLog, when non-nil, receives one structured JSON line per
	// HTTP request (log/slog JSONL): request ID, verb, endpoint, status,
	// latency, plus whatever the handler learned (run, tenant, shed
	// reason, the run's recovered flag and control-loop phase).
	AccessLog io.Writer
	// Flight, when non-nil, is the black-box recorder the service feeds
	// with admission, shed, dispatch, terminal, cancel, reap, journal
	// and recovery events. The caller keeps its own reference for
	// on-demand dumps (epaserved dumps it on SIGQUIT).
	Flight *flight.Recorder
	// BlackBox is the file the flight recorder is dumped to when the
	// journal fails closed or a run panics (empty: no automatic dump).
	BlackBox string
	// HistoryStep is the sampling cadence of each hosted run's
	// virtual-time metric history (/runs/{id}/query); <= 0 selects the
	// tsdb default of one virtual minute.
	HistoryStep simulator.Time
}

// Default returns the production-shaped configuration the epaserved CLI
// starts from.
func Default() Config {
	return Config{
		MaxRuns:        256,
		MaxActive:      16,
		TenantActive:   8,
		MaxJobs:        5000,
		MaxDays:        60,
		IdleTTL:        10 * time.Minute,
		RequestTimeout: 10 * time.Second,
		StreamTimeout:  time.Minute,
		Slice:          simulator.Minute,
		HalfLife:       time.Hour,
		WatermarkEvery: 64,
	}
}

// Run is one hosted simulation. All fields are guarded by the Service
// mutex except the simulation objects (m, js, tr), which the executor
// advances exclusively under srv's per-run lock, and cancel/report, which
// are documented inline.
type Run struct {
	ID   string
	Spec Spec

	seq     int64
	state   RunState
	reason  string
	created time.Time
	started time.Time
	ended   time.Time
	touched time.Time // last endpoint access; reaper input

	// cancel is set by DELETE and checked by the executor between slices.
	cancel atomic.Bool

	// reqID is the edge request ID that carried the submission; it is
	// journaled in the accepted record so a post-mortem can join the
	// client's X-Request-Id to the WAL. Set once at admission.
	reqID string

	// recovered marks a run the journal re-admitted after a crash.
	recovered bool
	// wm is the last journaled virtual-time watermark (seconds), written
	// by the executor without the service mutex.
	wm atomic.Int64

	m    *core.Manager
	js   []*jobs.Job
	prof site.Profile
	tr   *trace.Tracer
	srv  *ops.Server // per-run ops plane: handler + the run's state lock

	end    simulator.Time
	report []byte // rendered once at completion, then immutable
}

// errCancelled and errHardStop are the executor's non-failure exits.
var (
	errCancelled = errors.New("cancelled")
	errHardStop  = errors.New("shutdown deadline exceeded")
)

// panicError wraps a recovered executor panic so completion accounting
// can distinguish it (service.panics metric) from ordinary failures.
type panicError struct{ v any }

func (p panicError) Error() string { return fmt.Sprintf("panic: %v", p.v) }

// Service hosts the run table and the executor pool.
type Service struct {
	cfg Config

	// mu guards everything below plus the service metrics registry and
	// the fair-share ledger. It is never held while a run's per-run lock
	// is taken, so a slow slice cannot stall the control plane.
	mu       sync.Mutex
	runs     map[string]*Run
	seq      int64
	active   int
	draining bool

	// runningPeak / tablePeak record high-water marks: the stampede test
	// asserts the table bound held and the slot pool actually filled.
	runningPeak int
	tablePeak   int

	ledger *policy.ShareLedger
	start  time.Time
	now    func() time.Time // injectable for reaper/fairness tests

	// build constructs a run's simulation; injectable so tests can return
	// rigged managers (e.g. one that panics mid-run).
	build func(Spec) (*core.Manager, []*jobs.Job, site.Profile, error)

	// j is the write-ahead journal (nil without JournalDir). It has its
	// own mutex; the lock order is s.mu → j's, never the reverse. jErrs
	// counts failed appends/rotations (atomic: watermark appends happen
	// off the service mutex) and recov is New's replay summary.
	j     *journal.Journal
	jErrs atomic.Int64
	recov RecoverySummary

	reg        *metrics.Registry
	accepted   *metrics.Counter
	shedTable  *metrics.Counter
	shedQuota  *metrics.Counter
	shedDrain  *metrics.Counter
	completed  *metrics.Counter
	failed     *metrics.Counter
	cancelled  *metrics.Counter
	panics     *metrics.Counter
	reaped     *metrics.Counter
	recoveries *metrics.Counter

	// The request-telemetry edge (telemetry.go). httpHists is guarded by
	// httpMu (lock order s.mu → httpMu); the histograms themselves are
	// internally synchronized, so the hot path never takes s.mu.
	access    *slog.Logger
	fr        *flight.Recorder
	reqSeq    atomic.Int64
	inFlight  atomic.Int64
	httpMu    sync.Mutex
	httpHists map[string]*metrics.SyncHistogram
	fsyncHist *metrics.SyncHistogram

	wake     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	hardStop atomic.Bool
	execWG   sync.WaitGroup // in-flight run executors
	loopWG   sync.WaitGroup // dispatcher + reaper daemons
}

// New builds a service and starts its dispatcher and reaper daemons.
// Callers own its lifecycle: Shutdown must be called to stop the daemons.
// With JournalDir set, New opens (or recovers) the write-ahead journal
// before accepting work: terminal runs reload as metadata, interrupted
// and queued runs re-enter the queue. The only error paths are journal
// I/O; config misuse still panics.
func New(cfg Config) (*Service, error) {
	if cfg.MaxRuns <= 0 || cfg.MaxActive <= 0 || cfg.Slice <= 0 {
		panic("service: config must come from Default()")
	}
	s := &Service{
		cfg:    cfg,
		runs:   make(map[string]*Run),
		ledger: policy.NewShareLedger(simulator.Time(cfg.HalfLife / time.Second)),
		start:  time.Now(),
		now:    time.Now,
		build:  defaultBuild,
		reg:    metrics.New(),
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),

		fr:        cfg.Flight,
		httpHists: make(map[string]*metrics.SyncHistogram),
	}
	if cfg.AccessLog != nil {
		s.access = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	s.accepted = s.reg.Counter("service.accepted")
	s.shedTable = s.reg.Counter("service.shed_table_full")
	s.shedQuota = s.reg.Counter("service.shed_tenant_quota")
	s.shedDrain = s.reg.Counter("service.shed_draining")
	s.completed = s.reg.Counter("service.completed")
	s.failed = s.reg.Counter("service.failed")
	s.cancelled = s.reg.Counter("service.cancelled")
	s.panics = s.reg.Counter("service.run_panics")
	s.reaped = s.reg.Counter("service.reaped")
	s.recoveries = s.reg.Counter("service.recoveries")
	// Gauge closures run inside Snapshot, which every caller invokes with
	// s.mu already held — they must read fields directly, not re-lock.
	s.reg.GaugeFunc("service.runs", func() float64 { return float64(len(s.runs)) })
	s.reg.GaugeFunc("service.running", func() float64 { return float64(s.active) })
	s.reg.GaugeFunc("service.queued", func() float64 { return float64(s.countLocked(StateQueued)) })
	s.reg.GaugeFunc("http.in_flight", func() float64 { return float64(s.inFlight.Load()) })
	if cfg.JournalDir != "" {
		// The fsync histogram is fed from under the journal's own mutex
		// (Options.OnFsync), so it must be the synchronized kind; it
		// exists before Open because recovery itself fsyncs.
		s.fsyncHist = s.reg.SyncHistogram("journal.fsync_ms",
			0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100)
		j, recs, err := journal.Open(cfg.JournalDir, journal.Options{
			MaxBytes: cfg.JournalMaxBytes, NoSync: cfg.JournalNoSync,
			OnFsync: func(d time.Duration) {
				s.fsyncHist.Observe(float64(d) / float64(time.Millisecond))
			},
		})
		if err != nil {
			return nil, err
		}
		s.j = j
		s.recov = s.recoverLocked(recs)
		s.recov.TornTail = j.Stats().TornTail
		// The journal has its own mutex, so these closures are safe under
		// s.mu (lock order s.mu → journal; the journal never locks back).
		// Each closure takes one lock-consistent Stats() snapshot — never
		// a torn read of the journal's counters.
		s.reg.GaugeFunc("journal.appends", func() float64 { return float64(s.j.Stats().Appends) })
		s.reg.GaugeFunc("journal.fsyncs", func() float64 { return float64(s.j.Stats().Syncs) })
		s.reg.GaugeFunc("journal.rotations", func() float64 { return float64(s.j.Stats().Rotations) })
		s.reg.GaugeFunc("journal.segment_bytes", func() float64 { return float64(s.j.Stats().Size) })
		s.reg.GaugeFunc("journal.generation", func() float64 { return float64(s.j.Stats().Gen) })
		s.reg.GaugeFunc("journal.errors", func() float64 { return float64(s.jErrs.Load()) })
		s.reg.GaugeFunc("journal.replayed", func() float64 { return float64(s.recov.Replayed) })
		s.reg.GaugeFunc("journal.torn_tail", func() float64 {
			if s.recov.TornTail {
				return 1
			}
			return 0
		})
		s.fr.Note("recovery", "", "", fmt.Sprintf(
			"replayed=%d terminal=%d interrupted=%d requeued=%d torn_tail=%v",
			s.recov.Replayed, s.recov.Terminal, s.recov.Interrupted, s.recov.Requeued, s.recov.TornTail))
	}
	s.loopWG.Add(2)
	go s.dispatch()
	go s.reapLoop()
	s.wakeUp() // recovered queued runs dispatch immediately
	return s, nil
}

// defaultBuild resolves the spec against the surveyed site profiles.
func defaultBuild(spec Spec) (*core.Manager, []*jobs.Job, site.Profile, error) {
	p, ok := site.ByName(spec.Site)
	if !ok {
		return nil, nil, site.Profile{}, fmt.Errorf("unknown site %q", spec.Site)
	}
	m, js, err := p.Build(spec.Seed, spec.Jobs)
	return m, js, p, err
}

// AdmissionError is a shed decision: the HTTP layer maps Code/RetryAfter
// straight onto the response.
type AdmissionError struct {
	Code       int // 429 (load shed) or 503 (draining)
	RetryAfter int // seconds
	Reason     string
}

func (e *AdmissionError) Error() string { return e.Reason }

// Submit runs admission control and either enqueues a run or sheds the
// request. Invalid specs return a plain error (the HTTP layer maps those
// to 400); shed requests return *AdmissionError.
func (s *Service) Submit(spec Spec) (*Run, error) { return s.SubmitReq(spec, "") }

// SubmitReq is Submit carrying the edge request ID: the ID is journaled
// in the accepted record and threaded through the flight recorder, so
// every admission decision — accepted or shed — is attributable to the
// request that caused it.
func (s *Service) SubmitReq(spec Spec, req string) (*Run, error) {
	if err := s.validate(spec); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Lazy reap first: a full table of expired corpses must not shed live
	// traffic just because the reaper tick has not fired yet.
	s.reapLocked(s.now())
	if s.draining {
		s.shedDrain.Inc()
		s.fr.Note("shed", "", req, "draining")
		return nil, &AdmissionError{Code: 503, RetryAfter: s.retryAfterLocked(), Reason: "service is draining"}
	}
	if len(s.runs) >= s.cfg.MaxRuns {
		s.shedTable.Inc()
		s.fr.Note("shed", "", req, "table full")
		return nil, &AdmissionError{Code: 429, RetryAfter: s.retryAfterLocked(), Reason: "run table full"}
	}
	if n := s.tenantLiveLocked(spec.Tenant); n >= s.cfg.TenantActive {
		s.shedQuota.Inc()
		s.fr.Note("shed", "", req, "tenant quota: "+spec.Tenant)
		return nil, &AdmissionError{Code: 429, RetryAfter: s.retryAfterLocked(),
			Reason: fmt.Sprintf("tenant %q at quota (%d live runs)", spec.Tenant, n)}
	}
	s.seq++
	now := s.now()
	r := &Run{
		ID:      fmt.Sprintf("r%d", s.seq),
		Spec:    spec,
		seq:     s.seq,
		state:   StateQueued,
		created: now,
		touched: now,
		reqID:   req,
	}
	// The WAL commit point: the accepted spec is durable (fsynced) before
	// the run enters the table and the client sees its 202. A journal
	// that cannot commit makes this a durability outage, shed like any
	// other overload — accepting work we could silently forget is the
	// exact failure mode the journal exists to rule out. It is also a
	// black-box moment: the flight recorder is dumped so the post-mortem
	// starts from the requests that were on the wire when durability died.
	if s.j != nil {
		if err := s.j.Append(acceptedRecord(r)); err != nil {
			s.jErrs.Add(1)
			s.fr.Note("journal-fail", r.ID, req, err.Error())
			s.dumpBlackBox("journal fail-closed: " + err.Error())
			return nil, &AdmissionError{Code: 503, RetryAfter: 5,
				Reason: "durability unavailable: " + err.Error()}
		}
	}
	s.fr.Note("accepted", r.ID, req, spec.Tenant+" "+spec.Site)
	s.runs[r.ID] = r
	if len(s.runs) > s.tablePeak {
		s.tablePeak = len(s.runs)
	}
	s.maybeRotateLocked()
	s.accepted.Inc()
	s.wakeUp()
	return r, nil
}

func (s *Service) validate(spec Spec) error {
	if spec.Tenant == "" || len(spec.Tenant) > 64 {
		return fmt.Errorf("tenant must be 1-64 characters")
	}
	if _, ok := site.ByName(spec.Site); !ok {
		return fmt.Errorf("unknown site %q", spec.Site)
	}
	if spec.Jobs <= 0 || spec.Jobs > s.cfg.MaxJobs {
		return fmt.Errorf("jobs must be in [1, %d]", s.cfg.MaxJobs)
	}
	if spec.Days <= 0 || spec.Days > s.cfg.MaxDays {
		return fmt.Errorf("days must be in [1, %d]", s.cfg.MaxDays)
	}
	if spec.SliceS != 0 && (spec.SliceS < 1 || spec.SliceS > int64(simulator.Day)) {
		return fmt.Errorf("slice_s must be in [1, %d] simulated seconds when set", int64(simulator.Day))
	}
	return nil
}

// retryAfterLocked scales the shed hint with the backlog: an idle service
// says "come back in a second", a saturated one pushes clients out
// further. Clients add their own jitter (cmd/epastorm does).
func (s *Service) retryAfterLocked() int {
	ra := 1 + s.countLocked(StateQueued)/s.cfg.MaxActive
	if ra > 30 {
		ra = 30
	}
	return ra
}

func (s *Service) countLocked(st RunState) int {
	n := 0
	for _, r := range s.runs {
		if r.state == st {
			n++
		}
	}
	return n
}

// tenantLiveLocked counts a tenant's non-terminal runs.
func (s *Service) tenantLiveLocked(tenant string) int {
	n := 0
	for _, r := range s.runs {
		if r.Spec.Tenant == tenant && !r.state.Terminal() {
			n++
		}
	}
	return n
}

// Get returns a run by ID, updating its idle clock.
func (s *Service) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if ok {
		r.touched = s.now()
	}
	return r, ok
}

// Cancel cancels a run: a queued run terminates immediately, a running
// run stops at its next slice boundary, and a terminal run is deleted
// from the table (an explicit reap). Returns the state observed and
// whether the run existed.
func (s *Service) Cancel(id string) (RunState, bool) { return s.CancelReq(id, "") }

// CancelReq is Cancel carrying the edge request ID, which the deleted
// record and the flight recorder attribute the action to.
func (s *Service) CancelReq(id, req string) (RunState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return "", false
	}
	switch {
	case r.state == StateQueued:
		r.state = StateCancelled
		r.reason = "cancelled before start"
		r.ended = s.now()
		r.touched = r.ended
		s.fr.Note("cancel", id, req, "cancelled before start")
		s.journalAppend(terminalRecordLocked(r))
		s.maybeRotateLocked()
		s.cancelled.Inc()
	case r.state == StateRunning:
		r.cancel.Store(true)
		s.fr.Note("cancel", id, req, "running run flagged; stops at next slice")
	default: // terminal: delete now
		delete(s.runs, id)
		s.fr.Note("delete", id, req, "terminal run deleted")
		s.journalAppend(journal.Record{Type: journal.TypeDeleted, ID: id, Req: req})
		s.reaped.Inc()
	}
	return r.state, true
}

// dumpBlackBox best-effort writes the flight recorder to the configured
// black-box path; no-op without a recorder or a path.
func (s *Service) dumpBlackBox(reason string) {
	if err := s.fr.Dump(s.cfg.BlackBox, reason); err != nil && s.access != nil {
		s.access.LogAttrs(context.Background(), slog.LevelError, "blackbox",
			slog.String("error", err.Error()))
	}
}

// simNow maps the wall clock onto the ledger's time axis (seconds since
// the service started).
func (s *Service) simNow() simulator.Time {
	return simulator.Time(s.now().Sub(s.start) / time.Second)
}

// pickNextLocked chooses the queued run whose tenant has consumed the
// least decayed service time — the ShareLedger arbitration — breaking
// ties by admission order.
func (s *Service) pickNextLocked() *Run {
	s.ledger.Decay(s.simNow())
	var best *Run
	var bestU float64
	for _, r := range s.runs {
		if r.state != StateQueued {
			continue
		}
		u := s.ledger.Usage(r.Spec.Tenant)
		if best == nil || u < bestU || (u == bestU && r.seq < best.seq) {
			best, bestU = r, u
		}
	}
	return best
}

func (s *Service) wakeUp() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatch is the slot scheduler: whenever a slot frees or work arrives,
// it fills every free slot with the fairest queued run.
func (s *Service) dispatch() {
	defer s.loopWG.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
		}
		for {
			s.mu.Lock()
			if s.draining || s.active >= s.cfg.MaxActive {
				s.mu.Unlock()
				break
			}
			r := s.pickNextLocked()
			if r == nil {
				s.mu.Unlock()
				break
			}
			r.state = StateRunning
			r.started = s.now()
			s.journalAppend(journal.Record{
				Type: journal.TypeStarted, ID: r.ID, UnixMS: r.started.UnixMilli(),
			})
			s.fr.Note("dispatch", r.ID, r.reqID, r.Spec.Tenant)
			s.active++
			if s.active > s.runningPeak {
				s.runningPeak = s.active
			}
			s.execWG.Add(1)
			s.mu.Unlock()
			go s.execute(r)
		}
	}
}

// execute owns one run from slot grant to terminal state. Panics anywhere
// in the simulation are converted to a failed state here — one tenant's
// crash never takes down a neighbor.
func (s *Service) execute(r *Run) {
	defer s.execWG.Done()
	err := s.runSim(r)
	s.mu.Lock()
	r.ended = s.now()
	r.touched = r.ended
	switch {
	case err == nil:
		r.state = StateComplete
		s.completed.Inc()
	case errors.Is(err, errCancelled):
		r.state = StateCancelled
		r.reason = "cancelled"
		s.cancelled.Inc()
	case errors.Is(err, errHardStop):
		r.state = StateFailed
		r.reason = errHardStop.Error()
		s.failed.Inc()
	default:
		r.state = StateFailed
		r.reason = err.Error()
		s.failed.Inc()
		var pe panicError
		if errors.As(err, &pe) {
			s.panics.Inc()
			// A panicking run is exactly what the black box exists for:
			// dump before the terminal record overwrites the scene.
			s.fr.Note("run-panic", r.ID, r.reqID, r.reason)
			s.dumpBlackBox("run panic: " + r.ID)
		}
	}
	s.fr.Note("run-terminal", r.ID, r.reqID, string(r.state)+" "+r.reason)
	// The terminal commit point: the outcome (and, for a complete run,
	// its report) is fsynced so a restart serves it as metadata instead
	// of re-executing — or worse, forgetting — a finished run.
	s.journalAppend(terminalRecordLocked(r))
	s.maybeRotateLocked()
	// Charge the tenant for the wall time its run held a slot; the floor
	// keeps even sub-millisecond runs ordering tenants in the ledger.
	dur := r.ended.Sub(r.started).Seconds()
	if dur < 1e-3 {
		dur = 1e-3
	}
	s.ledger.Decay(s.simNow())
	s.ledger.Charge(r.Spec.Tenant, dur)
	s.active--
	s.mu.Unlock()
	s.wakeUp()
}

// runSim builds and advances one simulation to its horizon in Slice-sized
// virtual-time steps, each under the run's own ops lock — exactly the
// runServed loop in cmd/epasim, which is what keeps the hosted report
// byte-identical to the CLI's.
func (s *Service) runSim(r *Run) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = panicError{p}
		}
	}()
	if r.cancel.Load() {
		return errCancelled
	}
	m, js, prof, err := s.build(r.Spec)
	if err != nil {
		return err
	}
	tr := trace.New()
	m.AttachTracer(tr)
	// Every hosted run carries a phase profiler: its gauges ride the
	// run's /metrics plane and its current phase the run's /healthz.
	// The profiler only observes — runreport never reads the registry —
	// so the report stays byte-identical to standalone epasim.
	m.AttachProfiler(ctlprof.New())
	// Every hosted run also carries a metric history, so tenants can
	// range-query their run's series (/runs/{id}/query). The sampler is
	// a read-only daemon event: the report stays byte-identical to
	// standalone epasim. Attach before ManagerSource — Source copies the
	// History pointer by value.
	m.AttachHistory(tsdb.New(m.Reg, tsdb.Config{Step: s.cfg.HistoryStep}))
	src := ops.ManagerSource(m)
	// recovered is set during New's replay, before any executor starts,
	// and never mutated after — safe to read without s.mu here.
	if r.recovered {
		base := src.Health
		src.Health = func() ops.Health {
			h := base()
			h.Recovered = true
			return h
		}
	}
	srv := ops.NewServer(src)
	s.mu.Lock()
	r.m, r.js, r.prof, r.tr, r.srv = m, js, prof, tr, srv
	s.mu.Unlock()

	// The slice is the run's lock quantum; a spec may override the
	// service default (validated into [1s, 1 day] at admission). The
	// report is slice-invariant — the engine is event-driven — so this
	// only tunes lock granularity, never results.
	slice := s.cfg.Slice
	if r.Spec.SliceS > 0 {
		slice = simulator.Time(r.Spec.SliceS)
	}
	wmEvery := s.cfg.WatermarkEvery
	if wmEvery <= 0 {
		wmEvery = 64
	}
	horizon := simulator.Time(r.Spec.Days) * simulator.Day
	var end simulator.Time
	slices := 0
	for now := slice; ; now += slice {
		if r.cancel.Load() {
			srv.Shutdown(context.Background()) //nolint:errcheck // handler-only server: releases SSE, never blocks
			return errCancelled
		}
		if s.hardStop.Load() {
			srv.Shutdown(context.Background()) //nolint:errcheck // handler-only server: releases SSE, never blocks
			return errHardStop
		}
		step := now
		if step > horizon {
			step = horizon
		}
		srv.Locked(func() { end = m.Eng.RunUntil(step) })
		if slices++; s.j != nil && slices%wmEvery == 0 {
			// Progress watermark: best-effort (no fsync, no service
			// mutex — the journal has its own); recovery re-executes
			// from the spec either way.
			r.wm.Store(int64(end))
			s.journalAppend(journal.Record{Type: journal.TypeWatermark, ID: r.ID, VT: int64(end)})
		}
		if step >= horizon {
			break
		}
	}
	srv.Locked(func() { m.FinishRun(end) })

	var buf bytes.Buffer
	runreport.Write(&buf, prof, m, js, end, runreport.Extras{})
	s.mu.Lock()
	r.end = end
	r.report = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// reapLoop deletes idle terminal runs on a timer; Submit also reaps
// inline so admission never sheds against a table of expired runs.
func (s *Service) reapLoop() {
	defer s.loopWG.Done()
	period := s.cfg.IdleTTL / 4
	if period < 100*time.Millisecond {
		period = 100 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			s.reapLocked(s.now())
			s.mu.Unlock()
		}
	}
}

func (s *Service) reapLocked(now time.Time) {
	for id, r := range s.runs {
		if r.state.Terminal() && now.Sub(r.touched) > s.cfg.IdleTTL {
			delete(s.runs, id)
			s.fr.Note("reap", id, "", "idle terminal run deleted")
			// A reaped run must stay gone after a restart: the deleted
			// record stops recovery from resurrecting it, and the next
			// compaction forgets it entirely.
			s.journalAppend(journal.Record{Type: journal.TypeDeleted, ID: id})
			s.reaped.Inc()
		}
	}
}

// Shutdown drains the service: admission flips to 503, queued runs are
// cancelled, every run's SSE streams are released, and in-flight runs
// finish normally until ctx expires — after which they are hard-stopped
// at their next slice boundary and marked failed. Idempotent; returns
// ctx's error when the deadline cut the drain short.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	var srvs []*ops.Server
	for _, r := range s.runs {
		if r.state == StateQueued {
			r.state = StateCancelled
			r.reason = "service shutting down"
			r.ended = s.now()
			r.touched = r.ended
			s.journalAppend(terminalRecordLocked(r))
			s.cancelled.Inc()
		}
		if r.srv != nil {
			srvs = append(srvs, r.srv)
		}
	}
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	for _, srv := range srvs {
		srv.Shutdown(context.Background()) //nolint:errcheck // handler-only server: releases SSE, never blocks
	}

	done := make(chan struct{})
	go func() {
		s.execWG.Wait()
		close(done)
	}()
	var err error
	if ctx == nil {
		<-done
	} else {
		select {
		case <-done:
		case <-ctx.Done():
			s.hardStop.Store(true)
			<-done // executors abandon at the next slice boundary
			err = ctx.Err()
		}
	}
	s.loopWG.Wait()
	// Every writer (executors, dispatcher, reaper) is stopped; seal the
	// journal. Close is idempotent, matching Shutdown.
	if s.j != nil {
		if cerr := s.j.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Stats is a point-in-time service census (also the /healthz payload).
type Stats struct {
	Status  string `json:"status"` // "ok" or "draining"
	Runs    int    `json:"runs"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	Tenants int    `json:"tenants"`
}

// Snapshot returns the service census.
func (s *Service) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Status: "ok", Runs: len(s.runs), Running: s.active}
	if s.draining {
		st.Status = "draining"
	}
	st.Queued = s.countLocked(StateQueued)
	tenants := map[string]bool{}
	for _, r := range s.runs {
		tenants[r.Spec.Tenant] = true
	}
	st.Tenants = len(tenants)
	return st
}

// Peaks reports the high-water marks: table occupancy and concurrently
// executing runs. The stampede test asserts the table bound held and the
// slot pool saturated.
func (s *Service) Peaks() (table, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tablePeak, s.runningPeak
}
