package service

// The request-telemetry edge: every HTTP request gets an ID at the door
// (or keeps the one it arrived with), and that ID follows the request
// through the access log, the flight recorder, and — for admissions and
// deletions — into the write-ahead journal, so a post-mortem can walk
// from a client's X-Request-Id header to the exact journal record it
// committed. The middleware also owns the per-endpoint latency
// histograms and the in-flight gauge; handlers annotate the in-context
// reqInfo with what they learned (run ID, tenant, shed reason, the
// run's recovered flag and current control-loop phase) and the
// middleware folds those annotations into the structured access-log
// line after the response is written.

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"epajsrm/internal/metrics"
)

// reqInfo rides the request context from the middleware into the
// handlers. Annotations are mutex-guarded because http.TimeoutHandler
// runs the inner handler on its own goroutine: when a request blows its
// deadline the middleware logs the 503 while the handler may still be
// annotating.
type reqInfo struct {
	id string // assigned at the edge, immutable

	mu        sync.Mutex
	run       string // run ID the request touched or created
	tenant    string
	shed      string // admission shed reason, when the request was refused
	phase     string // the run's current control-loop phase (per-run endpoints)
	recovered bool   // the touched run was journal-recovered
}

// annotate applies fn under the info lock; safe on nil (requests that
// bypass the middleware, e.g. direct route tests).
func (ri *reqInfo) annotate(fn func(*reqInfo)) {
	if ri == nil {
		return
	}
	ri.mu.Lock()
	fn(ri)
	ri.mu.Unlock()
}

type reqKey struct{}

// reqFrom recovers the request's telemetry record from its context;
// nil when the middleware did not run.
func reqFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqKey{}).(*reqInfo)
	return ri
}

// reqID returns the request's edge ID, or "" without middleware.
func reqID(ctx context.Context) string {
	if ri := reqFrom(ctx); ri != nil {
		return ri.id
	}
	return ""
}

// requestID honors a well-formed client-supplied X-Request-Id (so a
// caller can correlate across its own systems) and otherwise mints a
// process-unique one. Client IDs are sanitized, not trusted: anything
// long or outside [A-Za-z0-9._-] is replaced, never echoed.
func (s *Service) requestID(r *http.Request) string {
	if id := sanitizeReqID(r.Header.Get("X-Request-Id")); id != "" {
		return id
	}
	return fmt.Sprintf("q%d", s.reqSeq.Add(1))
}

func sanitizeReqID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// endpointOf collapses a request path onto the fixed endpoint taxonomy
// so the latency metrics stay bounded: run IDs never become metric
// names, and unknown paths share one "other" bucket.
func endpointOf(path string) string {
	p := strings.TrimSuffix(path, "/")
	switch p {
	case "":
		return "index"
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	case "/metrics.json":
		return "metrics_json"
	case "/runs":
		return "runs"
	}
	if rest, ok := strings.CutPrefix(p, "/runs/"); ok {
		_, sub, has := strings.Cut(rest, "/")
		if !has {
			return "run"
		}
		switch sub {
		case "report", "metrics", "metrics.json", "healthz", "state", "events":
			return "run_" + strings.ReplaceAll(sub, ".", "_")
		}
	}
	return "other"
}

// verbOf bounds the method the same way: the known verbs keep their
// names, anything exotic shares "other".
func verbOf(method string) string {
	switch method {
	case http.MethodGet:
		return "get"
	case http.MethodPost:
		return "post"
	case http.MethodDelete:
		return "delete"
	case http.MethodHead:
		return "head"
	case http.MethodPut:
		return "put"
	case http.MethodPatch:
		return "patch"
	case http.MethodOptions:
		return "options"
	}
	return "other"
}

// latencyBoundsMS spans sub-millisecond metadata reads through the
// 10-second unary deadline.
var latencyBoundsMS = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// latencyHist returns (registering on first use) the histogram for one
// verb × endpoint cell. Registration takes the service mutex — the
// registry is guarded by it — but the steady state is one lock-free map
// read plus the histogram's own mutex.
func (s *Service) latencyHist(name string) *metrics.SyncHistogram {
	s.httpMu.Lock()
	h, ok := s.httpHists[name]
	s.httpMu.Unlock()
	if ok {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if h, ok = s.httpHists[name]; !ok {
		h = s.reg.SyncHistogram(name, latencyBoundsMS...)
		s.httpHists[name] = h
	}
	return h
}

// statusWriter captures the response status for the access log and
// latency metrics. It forwards Flush so the SSE /events stream keeps
// working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// telemetry is the outermost middleware: it wraps even the timeout
// handler, so a deadline 503 is logged and measured like any other
// response, with the true wall time the client experienced.
func (s *Service) telemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri := &reqInfo{id: s.requestID(r)}
		w.Header().Set("X-Request-Id", ri.id)
		sw := &statusWriter{ResponseWriter: w}
		ep := endpointOf(r.URL.Path)
		s.inFlight.Add(1)
		s.fr.RequestStart(ri.id, r.Method+" "+r.URL.Path)
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqKey{}, ri)))
		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.inFlight.Add(-1)
		s.latencyHist("http.latency_ms." + verbOf(r.Method) + "." + ep).
			Observe(float64(dur) / float64(time.Millisecond))
		s.fr.RequestEnd(ri.id, fmt.Sprintf("%d %s", status, ep))
		if s.access == nil {
			return
		}
		attrs := []slog.Attr{
			slog.String("req", ri.id),
			slog.String("verb", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", ep),
			slog.Int("status", status),
			slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)),
		}
		ri.mu.Lock()
		run, tenant, shed, phase, recovered := ri.run, ri.tenant, ri.shed, ri.phase, ri.recovered
		ri.mu.Unlock()
		if run != "" {
			attrs = append(attrs, slog.String("run", run))
		}
		if tenant != "" {
			attrs = append(attrs, slog.String("tenant", tenant))
		}
		if shed != "" {
			attrs = append(attrs, slog.String("shed", shed))
		}
		if phase != "" {
			attrs = append(attrs, slog.String("phase", phase))
		}
		if recovered {
			attrs = append(attrs, slog.Bool("recovered", true))
		}
		s.access.LogAttrs(context.Background(), slog.LevelInfo, "http", attrs...)
	})
}
