package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"epajsrm/internal/simulator"
)

// TestStampede is the survival criterion: ≥1000 concurrent clients (250 in
// -short) against 16 execution slots and a 64-entry run table, in-process
// so it runs under -race. The service must never lose accepted work, every
// shed must be a 429/503 carrying Retry-After, the table bound must hold,
// the slot pool must actually saturate, and a graceful shutdown afterwards
// must drain cleanly.
func TestStampede(t *testing.T) {
	clients := 1000
	if testing.Short() {
		clients = 250
	}
	cfg := Default()
	cfg.Slice = simulator.Hour
	cfg.MaxRuns = 64
	cfg.MaxActive = 16
	cfg.TenantActive = 4
	// Clients free their runs with DELETE, so the TTL reaper is not needed
	// for table turnover here — and it must not fire early: a poller
	// goroutine descheduled past the TTL under full load would find its
	// run legitimately reaped and misreport it as lost.
	cfg.IdleTTL = time.Minute
	s := mustNew(t, cfg)
	h := s.Handler()

	var (
		accepted, completed, failed, cancelled int64
		lost, sheds, shedNoRetry, badShedCode  int64
		reportMissing, gaveUp                  int64
	)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%02d", c%24)
			body := fmt.Sprintf(`{"tenant":%q,"site":"cineca","seed":%d,"jobs":5,"days":1}`, tenant, c)

			// Submit with shed-aware retries. Real clients sleep out the
			// server's Retry-After seconds; in-process we only verify the
			// hint is present and back off in milliseconds.
			var id string
			for try := 0; try < 200; try++ {
				req := httptest.NewRequest("POST", "/runs", strings.NewReader(body))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code == http.StatusAccepted {
					var info RunInfo
					if json.Unmarshal(rec.Body.Bytes(), &info) == nil && info.ID != "" {
						id = info.ID
					}
					break
				}
				atomic.AddInt64(&sheds, 1)
				if rec.Code != http.StatusTooManyRequests && rec.Code != http.StatusServiceUnavailable {
					atomic.AddInt64(&badShedCode, 1)
					return
				}
				if rec.Header().Get("Retry-After") == "" {
					atomic.AddInt64(&shedNoRetry, 1)
				}
				time.Sleep(time.Duration(5+c%20) * time.Millisecond)
			}
			if id == "" {
				atomic.AddInt64(&gaveUp, 1)
				return
			}
			atomic.AddInt64(&accepted, 1)

			// Poll to a terminal state. A 404 here is accepted-then-lost:
			// the reaper only deletes idle terminal runs, and we are
			// actively polling this one.
			deadline := time.Now().Add(2 * time.Minute)
			for {
				if time.Now().After(deadline) {
					atomic.AddInt64(&lost, 1)
					return
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/"+id, nil))
				if rec.Code == http.StatusNotFound {
					atomic.AddInt64(&lost, 1)
					return
				}
				var info RunInfo
				if rec.Code == 200 && json.Unmarshal(rec.Body.Bytes(), &info) == nil {
					if st := RunState(info.State); st.Terminal() {
						switch st {
						case StateComplete:
							atomic.AddInt64(&completed, 1)
							// A report fetch can itself be shed with a 503
							// under full load (request deadline); that is
							// retryable, not a missing report.
							got := false
							for try := 0; try < 40 && !got; try++ {
								rep := httptest.NewRecorder()
								h.ServeHTTP(rep, httptest.NewRequest("GET", "/runs/"+id+"/report", nil))
								got = rep.Code == 200 && rep.Body.Len() > 0
								if !got {
									time.Sleep(50 * time.Millisecond)
								}
							}
							if !got {
								atomic.AddInt64(&reportMissing, 1)
							}
						case StateFailed:
							atomic.AddInt64(&failed, 1)
						case StateCancelled:
							atomic.AddInt64(&cancelled, 1)
						}
						// Free the table slot so later clients get in.
						del := httptest.NewRecorder()
						h.ServeHTTP(del, httptest.NewRequest("DELETE", "/runs/"+id, nil))
						return
					}
				}
				time.Sleep(25 * time.Millisecond)
			}
		}(c)
	}
	wg.Wait()

	table, running := s.Peaks()
	t.Logf("stampede: clients=%d accepted=%d completed=%d sheds=%d gaveUp=%d tablePeak=%d runningPeak=%d leftover=%+v",
		clients, accepted, completed, sheds, gaveUp, table, running, s.Snapshot())

	if lost != 0 {
		t.Errorf("accepted-then-lost runs = %d, want 0", lost)
	}
	if shedNoRetry != 0 {
		t.Errorf("sheds without Retry-After = %d, want 0", shedNoRetry)
	}
	if badShedCode != 0 {
		t.Errorf("sheds with a non-429/503 code = %d, want 0", badShedCode)
	}
	if failed != 0 || cancelled != 0 {
		t.Errorf("failed=%d cancelled=%d, want 0/0 (nothing in this stampede cancels)", failed, cancelled)
	}
	if completed != accepted {
		t.Errorf("completed %d != accepted %d with zero failures — terminal accounting leak", completed, accepted)
	}
	if reportMissing != 0 {
		t.Errorf("completed runs without a report = %d, want 0", reportMissing)
	}
	if accepted == 0 {
		t.Error("no run was ever accepted")
	}
	if sheds == 0 {
		t.Errorf("%d clients against a %d-entry table produced zero sheds — admission control never engaged", clients, cfg.MaxRuns)
	}
	if table > cfg.MaxRuns {
		t.Errorf("table peak %d exceeded MaxRuns %d", table, cfg.MaxRuns)
	}
	if running < cfg.MaxActive {
		t.Errorf("running peak %d never saturated the %d slots", running, cfg.MaxActive)
	}
	if running > cfg.MaxActive {
		t.Errorf("running peak %d exceeded MaxActive %d", running, cfg.MaxActive)
	}

	// The survivors' epilogue: a graceful shutdown drains inside its
	// deadline even right after the storm.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("post-stampede Shutdown: %v", err)
	}
}
