package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"epajsrm/internal/flight"
	"epajsrm/internal/metrics"
)

// syncBuffer is a goroutine-safe log sink: slog lines arrive from
// middleware goroutines while the test reads them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() [][]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out [][]byte
	for _, l := range bytes.Split(b.buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(l)) > 0 {
			out = append(out, append([]byte(nil), l...))
		}
	}
	return out
}

func TestRequestIDMintedAndEchoed(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(nil) //nolint:errcheck
	h := s.Handler()

	// Minted when absent.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	minted := rec.Header().Get("X-Request-Id")
	if minted == "" || !strings.HasPrefix(minted, "q") {
		t.Fatalf("minted request ID = %q, want q<N>", minted)
	}

	// A well-formed client ID is echoed...
	rec = httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-42.a_b")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); got != "trace-42.a_b" {
		t.Fatalf("client request ID = %q, want echoed trace-42.a_b", got)
	}

	// ...but a malformed one is replaced, never reflected back.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-Id", "evil\nheader{}")
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-Id"); strings.Contains(got, "evil") || got == "" {
		t.Fatalf("malformed client ID handled as %q, want a minted replacement", got)
	}
}

func TestAccessLogLinesAreStructured(t *testing.T) {
	sink := &syncBuffer{}
	cfg := testConfig()
	cfg.AccessLog = sink
	s := mustNew(t, cfg)
	defer s.Shutdown(nil) //nolint:errcheck
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/runs",
		strings.NewReader(`{"tenant":"acme","site":"cineca","seed":7,"jobs":5,"days":1}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatalf("submit body: %v", err)
	}
	waitState(t, s, acc.ID, StateComplete)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/"+acc.ID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("get run: %d", rec.Code)
	}

	lines := sink.lines()
	if len(lines) < 2 {
		t.Fatalf("access log has %d lines, want >= 2", len(lines))
	}
	type logLine struct {
		Msg      string  `json:"msg"`
		Req      string  `json:"req"`
		Verb     string  `json:"verb"`
		Endpoint string  `json:"endpoint"`
		Status   int     `json:"status"`
		DurMS    float64 `json:"dur_ms"`
		Run      string  `json:"run"`
		Tenant   string  `json:"tenant"`
	}
	var submit, get *logLine
	for _, raw := range lines {
		var ll logLine
		if err := json.Unmarshal(raw, &ll); err != nil {
			t.Fatalf("access log line does not parse: %v\n%s", err, raw)
		}
		switch ll.Endpoint {
		case "runs":
			submit = &ll
		case "run":
			get = &ll
		}
	}
	if submit == nil || submit.Status != 202 || submit.Run != acc.ID || submit.Tenant != "acme" ||
		submit.Verb != "POST" || submit.Req == "" {
		t.Fatalf("submit log line = %+v, want 202 run=%s tenant=acme", submit, acc.ID)
	}
	if get == nil || get.Status != 200 || get.Run != acc.ID {
		t.Fatalf("get log line = %+v, want 200 run=%s", get, acc.ID)
	}
}

func TestShedReasonReachesAccessLog(t *testing.T) {
	sink := &syncBuffer{}
	cfg := testConfig()
	cfg.AccessLog = sink
	cfg.MaxRuns = 1
	gate := make(chan struct{})
	s := mustNew(t, cfg)
	defer func() { close(gate); s.Shutdown(nil) }() //nolint:errcheck
	setBuild(s, gatedBuild(gate))
	h := s.Handler()

	body := `{"tenant":"acme","site":"cineca","seed":1,"jobs":5,"days":1}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/runs", strings.NewReader(body)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/runs", strings.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", rec.Code)
	}

	found := false
	for _, raw := range sink.lines() {
		var ll struct {
			Status int    `json:"status"`
			Shed   string `json:"shed"`
		}
		if json.Unmarshal(raw, &ll) == nil && ll.Status == 429 && ll.Shed == "run table full" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no 429 line with shed reason in access log:\n%s", bytes.Join(sink.lines(), []byte("\n")))
	}
}

func TestLatencyHistogramsAndInFlightOnMetrics(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(nil) //nolint:errcheck
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	samples, err := metrics.ParsePrometheusText(rec.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	if got := samples["http_latency_ms_get_healthz_count"]; got < 1 {
		t.Fatalf("http_latency_ms_get_healthz_count = %v, want >= 1", got)
	}
	// The /metrics scrape itself is in flight while the gauge is read.
	if got, ok := samples["http_in_flight"]; !ok || got < 1 {
		t.Fatalf("http_in_flight = %v (present %v), want >= 1", got, ok)
	}
}

func TestPerRunHealthzCarriesPhase(t *testing.T) {
	s := mustNew(t, testConfig())
	defer s.Shutdown(nil) //nolint:errcheck
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/runs",
		strings.NewReader(`{"tenant":"acme","site":"cineca","seed":3,"jobs":5,"days":1}`)))
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitState(t, s, acc.ID, StateComplete)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/runs/"+acc.ID+"/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz: %d %s", rec.Code, rec.Body.String())
	}
	var health struct {
		Status string `json:"status"`
		Phase  string `json:"phase"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	// The executor is between slices (finished, in fact): the profiler
	// is attached and idle.
	if health.Phase != "idle" {
		t.Fatalf("phase = %q, want idle on a finished run", health.Phase)
	}
}

func TestJournalFsyncHistogramAndReqThreading(t *testing.T) {
	dir := t.TempDir()
	fr := flight.New(64)
	cfg := testConfig()
	cfg.JournalDir = dir
	cfg.Flight = fr
	cfg.BlackBox = filepath.Join(dir, "blackbox.jsonl")
	s := mustNew(t, cfg)
	h := s.Handler()

	req := httptest.NewRequest("POST", "/runs",
		strings.NewReader(`{"tenant":"acme","site":"cineca","seed":11,"jobs":5,"days":1}`))
	req.Header.Set("X-Request-Id", "storm-77")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d", rec.Code)
	}
	var acc struct {
		ID string `json:"id"`
	}
	json.Unmarshal(rec.Body.Bytes(), &acc) //nolint:errcheck
	waitState(t, s, acc.ID, StateComplete)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	samples, err := metrics.ParsePrometheusText(rec.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	if got := samples["journal_fsync_ms_count"]; got < 1 {
		t.Fatalf("journal_fsync_ms_count = %v, want >= 1", got)
	}
	if err := s.Shutdown(nil); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The edge request ID landed in the journal's accepted record...
	recovered := mustNew(t, cfg)
	defer recovered.Shutdown(nil) //nolint:errcheck
	recovered.mu.Lock()
	r := recovered.runs[acc.ID]
	var gotReq string
	if r != nil {
		gotReq = r.reqID
	}
	recovered.mu.Unlock()
	if gotReq != "storm-77" {
		t.Fatalf("recovered run's reqID = %q, want storm-77 (journal Req threading)", gotReq)
	}

	// ...and the flight recorder saw the whole admission lifecycle.
	kinds := map[string]string{}
	for _, ev := range fr.Events() {
		if _, ok := kinds[ev.Kind]; !ok {
			kinds[ev.Kind] = ev.Req
		}
	}
	for _, kind := range []string{"http-start", "http-end", "accepted", "dispatch", "run-terminal"} {
		if _, ok := kinds[kind]; !ok {
			t.Fatalf("flight recorder missing %q; saw %v", kind, kinds)
		}
	}
	if kinds["accepted"] != "storm-77" {
		t.Fatalf("accepted event carries req %q, want storm-77", kinds["accepted"])
	}
}
