package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
	"epajsrm/internal/site"
)

// testConfig is a fast-running Default: coarse slices so a one-day run
// takes dozens of lock acquisitions instead of over a thousand.
func testConfig() Config {
	cfg := Default()
	cfg.Slice = simulator.Hour
	return cfg
}

// mustNew builds a service or fails the test (New only errors on
// journal I/O).
func mustNew(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// fakeClock is an injectable wall clock for reaper and fairness tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// gatedBuild blocks every build until gate closes, pinning runs in the
// running state so admission tests see a stable live population.
func gatedBuild(gate chan struct{}) func(Spec) (*core.Manager, []*jobs.Job, site.Profile, error) {
	return func(spec Spec) (*core.Manager, []*jobs.Job, site.Profile, error) {
		<-gate
		return defaultBuild(spec)
	}
}

// setBuild swaps the service's build function under the lock (the
// dispatcher may already be running).
func setBuild(s *Service, b func(Spec) (*core.Manager, []*jobs.Job, site.Profile, error)) {
	s.mu.Lock()
	s.build = b
	s.mu.Unlock()
}

func setClock(s *Service, c *fakeClock) {
	s.mu.Lock()
	s.now = c.now
	s.mu.Unlock()
}

func spec(tenant string, seed uint64) Spec {
	return Spec{Tenant: tenant, Site: "cineca", Seed: seed, Jobs: 10, Days: 1}
}

// waitState polls until the run reaches want (or any terminal state when
// terminalOK) and returns the state observed.
func waitState(t *testing.T, s *Service, id string, want RunState) RunState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		r, ok := s.runs[id]
		var st RunState
		if ok {
			st = r.state
		}
		s.mu.Unlock()
		if !ok {
			t.Fatalf("run %s vanished while waiting for %s", id, want)
		}
		if st == want || (st.Terminal() && want.Terminal()) {
			return st
		}
		if st.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return ""
}

func shutdownOK(t *testing.T, s *Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	s := mustNew(t, testConfig())
	defer shutdownOK(t, s)
	bad := []Spec{
		{},
		{Tenant: "t", Site: "no-such-site", Jobs: 1, Days: 1},
		{Tenant: "t", Site: "cineca", Jobs: 0, Days: 1},
		{Tenant: "t", Site: "cineca", Jobs: 1_000_000, Days: 1},
		{Tenant: "t", Site: "cineca", Jobs: 1, Days: 0},
		{Tenant: "t", Site: "cineca", Jobs: 1, Days: 10_000},
		{Tenant: strings.Repeat("x", 65), Site: "cineca", Jobs: 1, Days: 1},
		{Tenant: "t", Site: "cineca", Jobs: 1, Days: 1, SliceS: -1},
		{Tenant: "t", Site: "cineca", Jobs: 1, Days: 1, SliceS: int64(simulator.Day) + 1},
	}
	for _, sp := range bad {
		_, err := s.Submit(sp)
		if err == nil {
			t.Errorf("Submit(%+v) accepted, want validation error", sp)
		}
		var shed *AdmissionError
		if errors.As(err, &shed) {
			t.Errorf("Submit(%+v) shed (%v), want plain validation error", sp, err)
		}
	}
}

// TestAdmissionTenantQuota: one tenant at its live-run cap sheds with 429 +
// Retry-After while other tenants keep being admitted.
func TestAdmissionTenantQuota(t *testing.T) {
	cfg := testConfig()
	cfg.MaxActive = 1
	cfg.TenantActive = 2
	s := mustNew(t, cfg)
	gate := make(chan struct{})
	setBuild(s, gatedBuild(gate))
	defer func() {
		close(gate)
		shutdownOK(t, s)
	}()

	for i := 0; i < cfg.TenantActive; i++ {
		if _, err := s.Submit(spec("a", uint64(i))); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	_, err := s.Submit(spec("a", 99))
	var shed *AdmissionError
	if !errors.As(err, &shed) {
		t.Fatalf("over-quota submit: err = %v, want *AdmissionError", err)
	}
	if shed.Code != 429 || shed.RetryAfter < 1 {
		t.Fatalf("over-quota shed = code %d retry %d, want 429 with Retry-After >= 1", shed.Code, shed.RetryAfter)
	}
	if !strings.Contains(shed.Reason, "quota") {
		t.Fatalf("shed reason %q does not name the quota", shed.Reason)
	}
	// A different tenant is unaffected by a's quota.
	if _, err := s.Submit(spec("b", 1)); err != nil {
		t.Fatalf("tenant b shed by tenant a's quota: %v", err)
	}
}

// TestAdmissionTableFull: the run table bound sheds with 429 even when the
// excess runs belong to distinct tenants.
func TestAdmissionTableFull(t *testing.T) {
	cfg := testConfig()
	cfg.MaxRuns = 3
	cfg.MaxActive = 1
	s := mustNew(t, cfg)
	gate := make(chan struct{})
	setBuild(s, gatedBuild(gate))
	defer func() {
		close(gate)
		shutdownOK(t, s)
	}()

	tenants := []string{"a", "b", "c"}
	for i, tn := range tenants {
		if _, err := s.Submit(spec(tn, uint64(i))); err != nil {
			t.Fatalf("submit %s: %v", tn, err)
		}
	}
	_, err := s.Submit(spec("d", 9))
	var shed *AdmissionError
	if !errors.As(err, &shed) {
		t.Fatalf("table-full submit: err = %v, want *AdmissionError", err)
	}
	if shed.Code != 429 || shed.RetryAfter < 1 {
		t.Fatalf("table-full shed = code %d retry %d", shed.Code, shed.RetryAfter)
	}
	if table, _ := s.Peaks(); table > cfg.MaxRuns {
		t.Fatalf("table peak %d exceeded MaxRuns %d", table, cfg.MaxRuns)
	}
}

// TestDrainingSheds503: after Shutdown begins, admission refuses with 503.
func TestDrainingSheds503(t *testing.T) {
	s := mustNew(t, testConfig())
	shutdownOK(t, s)
	_, err := s.Submit(spec("a", 1))
	var shed *AdmissionError
	if !errors.As(err, &shed) {
		t.Fatalf("draining submit: err = %v, want *AdmissionError", err)
	}
	if shed.Code != 503 || shed.RetryAfter < 1 {
		t.Fatalf("draining shed = code %d retry %d, want 503 with Retry-After", shed.Code, shed.RetryAfter)
	}
}

// TestRunToCompletion: the ordinary lifecycle — queued, running, complete,
// report rendered, tenant charged in the ledger.
func TestRunToCompletion(t *testing.T) {
	s := mustNew(t, testConfig())
	defer shutdownOK(t, s)
	r, err := s.Submit(spec("a", 7))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, s, r.ID, StateComplete); st != StateComplete {
		t.Fatalf("run ended %s, want complete", st)
	}
	s.mu.Lock()
	report := string(r.report)
	usage := s.ledger.Usage("a")
	s.mu.Unlock()
	if !strings.Contains(report, "site cineca") || !strings.Contains(report, "Run report") {
		t.Fatalf("report missing expected sections:\n%s", report)
	}
	if usage <= 0 {
		t.Fatalf("ledger usage for tenant a = %g after a completed run, want > 0", usage)
	}
	// Cancel on a terminal run deletes it from the table.
	if _, ok := s.Cancel(r.ID); !ok {
		t.Fatal("Cancel on terminal run: not found")
	}
	if _, ok := s.Get(r.ID); ok {
		t.Fatal("terminal run still present after DELETE")
	}
}

// TestCancelQueuedAndRunning covers both live cancellation paths.
func TestCancelQueuedAndRunning(t *testing.T) {
	cfg := testConfig()
	cfg.MaxActive = 1
	s := mustNew(t, cfg)
	gate := make(chan struct{})
	setBuild(s, gatedBuild(gate))
	defer shutdownOK(t, s)

	running, err := s.Submit(spec("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(spec("a", 2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning)

	// Queued: cancels immediately without ever holding a slot.
	if _, ok := s.Cancel(queued.ID); !ok {
		t.Fatal("cancel queued: not found")
	}
	s.mu.Lock()
	st := queued.state
	s.mu.Unlock()
	if st != StateCancelled {
		t.Fatalf("queued run after cancel = %s, want cancelled", st)
	}

	// Running: the flag is honored at the next slice boundary.
	if _, ok := s.Cancel(running.ID); !ok {
		t.Fatal("cancel running: not found")
	}
	close(gate)
	if st := waitState(t, s, running.ID, StateCancelled); st != StateCancelled {
		t.Fatalf("running run after cancel = %s, want cancelled", st)
	}
}

// TestPanicIsolation: a run whose simulation panics is marked failed with
// the panic recorded, the panic counter increments, and a neighbor run in
// the same process completes untouched.
func TestPanicIsolation(t *testing.T) {
	s := mustNew(t, testConfig())
	defer shutdownOK(t, s)
	setBuild(s, func(sp Spec) (*core.Manager, []*jobs.Job, site.Profile, error) {
		m, js, p, err := defaultBuild(sp)
		if err != nil {
			return nil, nil, p, err
		}
		if sp.Tenant == "boom" {
			if _, err := m.Eng.At(30, "rigged-panic", func(simulator.Time) { panic("rigged panic") }); err != nil {
				return nil, nil, p, err
			}
		}
		return m, js, p, nil
	})

	bad, err := s.Submit(spec("boom", 1))
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Submit(spec("calm", 2))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, s, bad.ID, StateFailed); st != StateFailed {
		t.Fatalf("panicking run ended %s, want failed", st)
	}
	if st := waitState(t, s, good.ID, StateComplete); st != StateComplete {
		t.Fatalf("neighbor of panicking run ended %s, want complete", st)
	}
	s.mu.Lock()
	reason := bad.reason
	panics := s.reg.Value("service.run_panics")
	s.mu.Unlock()
	if !strings.Contains(reason, "panic") || !strings.Contains(reason, "rigged panic") {
		t.Fatalf("failed reason %q does not carry the panic", reason)
	}
	if panics != 1 {
		t.Fatalf("service.run_panics = %g, want 1", panics)
	}
}

// TestIdleReaper: terminal runs older than IdleTTL are reaped (lazily on
// Submit, so the test controls time), while live runs are never reaped.
func TestIdleReaper(t *testing.T) {
	cfg := testConfig()
	cfg.IdleTTL = time.Minute
	cfg.MaxActive = 1
	s := mustNew(t, cfg)
	clk := newFakeClock()
	setClock(s, clk)
	defer shutdownOK(t, s)

	done, err := s.Submit(spec("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, done.ID, StateComplete)

	// A live (gate-blocked) run that will out-age the TTL but must survive.
	gate := make(chan struct{})
	setBuild(s, gatedBuild(gate))
	defer close(gate)
	live, err := s.Submit(spec("b", 2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, live.ID, StateRunning)

	clk.advance(2 * time.Minute)
	if _, err := s.Submit(spec("c", 3)); err != nil {
		t.Fatalf("submit after TTL: %v", err)
	}
	if _, ok := s.Get(done.ID); ok {
		t.Fatal("terminal run survived past IdleTTL")
	}
	if _, ok := s.Get(live.ID); !ok {
		t.Fatal("live run was reaped")
	}
	s.mu.Lock()
	reaped := s.reg.Value("service.reaped")
	s.mu.Unlock()
	if reaped < 1 {
		t.Fatalf("service.reaped = %g, want >= 1", reaped)
	}
}

// TestFairShareDispatch: the next free slot goes to the tenant with the
// least decayed usage, not to the longest-waiting run.
func TestFairShareDispatch(t *testing.T) {
	s := mustNew(t, testConfig())
	defer shutdownOK(t, s)

	s.mu.Lock()
	// Tenant "hog" has burned service time; "newcomer" has not. Two queued
	// runs, hog's admitted first (lower seq).
	s.ledger.Charge("hog", 500)
	hog := &Run{ID: "rA", Spec: Spec{Tenant: "hog"}, seq: 1, state: StateQueued}
	newb := &Run{ID: "rB", Spec: Spec{Tenant: "newcomer"}, seq: 2, state: StateQueued}
	s.runs["rA"], s.runs["rB"] = hog, newb
	got := s.pickNextLocked()
	// Equal usage ties break by admission order.
	s.ledger.Charge("newcomer", 500)
	tie := s.pickNextLocked()
	delete(s.runs, "rA")
	delete(s.runs, "rB")
	s.mu.Unlock()

	if got != newb {
		t.Fatalf("pickNext chose %s, want the under-served tenant's run", got.ID)
	}
	if tie != hog {
		t.Fatalf("pickNext tie-break chose %s, want the earliest-admitted run", tie.ID)
	}
}

// TestGracefulShutdownDrains: an in-flight run finishes normally inside
// the drain deadline and queued runs are cancelled, not lost.
func TestGracefulShutdownDrains(t *testing.T) {
	cfg := testConfig()
	cfg.MaxActive = 1
	s := mustNew(t, cfg)
	r1, err := s.Submit(spec("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Submit(spec("a", 2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, r1.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown: %v", err)
	}
	s.mu.Lock()
	st1, st2 := r1.state, r2.state
	s.mu.Unlock()
	if st1 != StateComplete {
		t.Fatalf("in-flight run drained to %s, want complete", st1)
	}
	if st2 != StateCancelled {
		t.Fatalf("queued run drained to %s, want cancelled", st2)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestShutdownDeadlineHardStops: a run that cannot finish inside the drain
// deadline is hard-stopped at its next slice boundary and marked failed —
// the service never hangs on a wedged run.
func TestShutdownDeadlineHardStops(t *testing.T) {
	s := mustNew(t, testConfig())
	gate := make(chan struct{})
	setBuild(s, func(sp Spec) (*core.Manager, []*jobs.Job, site.Profile, error) {
		m, js, p, err := defaultBuild(sp)
		if err != nil {
			return nil, nil, p, err
		}
		// The first slice wedges mid-simulation until the gate opens.
		if _, err := m.Eng.At(30, "wedge", func(simulator.Time) { <-gate }); err != nil {
			return nil, nil, p, err
		}
		return m, js, p, nil
	})
	r, err := s.Submit(spec("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, r.ID, StateRunning)

	go func() {
		time.Sleep(300 * time.Millisecond)
		close(gate)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown past deadline = %v, want DeadlineExceeded", err)
	}
	s.mu.Lock()
	st, reason := r.state, r.reason
	s.mu.Unlock()
	if st != StateFailed || !strings.Contains(reason, "shutdown deadline") {
		t.Fatalf("hard-stopped run = %s (%q), want failed with the deadline reason", st, reason)
	}
}

// TestSnapshotCensus sanity-checks the /healthz payload source.
func TestSnapshotCensus(t *testing.T) {
	cfg := testConfig()
	cfg.MaxActive = 1
	s := mustNew(t, cfg)
	gate := make(chan struct{})
	setBuild(s, gatedBuild(gate))
	defer func() {
		close(gate)
		shutdownOK(t, s)
	}()
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(spec("a", uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Snapshot()
		if st.Running == 1 && st.Queued == 2 {
			if st.Status != "ok" || st.Runs != 3 || st.Tenants != 1 {
				t.Fatalf("census = %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("census never settled: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
