package service

// The durability layer: every run-table state transition is recorded in
// an internal/journal write-ahead log before (for commit points) or
// alongside (for progress markers) the in-memory transition, and New
// replays the journal so a crashed service restarts with every
// acknowledged run intact. The recovery contract, per run:
//
//   - terminal before the crash  → reloaded as metadata; a complete
//     run's report (journaled in its terminal record) stays fetchable.
//   - started but not terminal   → interrupted: re-admitted to the
//     queue and deterministically re-executed from its journaled spec.
//     Same seed, same spec → byte-identical report, so the crash is
//     observationally a long pause.
//   - accepted but never started → re-enters fair-share arbitration at
//     its original admission sequence.
//   - deleted (reaped or client DELETE) → stays deleted.

import (
	"encoding/json"
	"sort"
	"time"

	"epajsrm/internal/journal"
	"epajsrm/internal/simulator"
)

// RecoverySummary is what New found in the journal, for startup
// logging and tests.
type RecoverySummary struct {
	Replayed    int  // records replayed from the newest segment
	Terminal    int  // runs reloaded as terminal metadata
	Requeued    int  // accepted-but-unstarted runs re-entering the queue
	Interrupted int  // mid-execution runs re-admitted for re-execution
	TornTail    bool // the crash tore the journal's final record (tolerated)
}

// Recovery returns the startup replay summary (zero-valued when the
// service runs without a journal).
func (s *Service) Recovery() RecoverySummary { return s.recov }

// journalAppend writes one record, counting rather than propagating
// failures: past the commit points handled inline in Submit, a journal
// error must degrade durability, not availability.
func (s *Service) journalAppend(rec journal.Record) {
	if s.j == nil {
		return
	}
	if err := s.j.Append(rec); err != nil {
		s.jErrs.Add(1)
		s.fr.Note("journal-error", rec.ID, "", err.Error())
	}
}

// acceptedRecord serializes the admission commit point. The spec is
// journaled verbatim so recovery re-executes exactly what the client
// was acknowledged for.
func acceptedRecord(r *Run) journal.Record {
	spec, _ := json.Marshal(r.Spec) //nolint:errcheck // plain struct, cannot fail
	return journal.Record{
		Type: journal.TypeAccepted, ID: r.ID, Seq: r.seq,
		Spec: spec, UnixMS: r.created.UnixMilli(), Req: r.reqID,
	}
}

// terminalRecordLocked serializes a terminal transition; the service
// mutex must be held. Only a complete run carries its report — that is
// what keeps reports fetchable across a restart.
func terminalRecordLocked(r *Run) journal.Record {
	rec := journal.Record{
		Type: journal.TypeTerminal, ID: r.ID,
		State: string(r.state), Reason: r.reason,
		VT: int64(r.end), UnixMS: r.ended.UnixMilli(),
	}
	if r.state == StateComplete {
		rec.Report = r.report
	}
	return rec
}

// snapshotLocked re-encodes the live run table as journal records, in
// admission order — the compaction payload for rotation. Runs no
// longer in the table simply do not appear, which is how the journal
// forgets reaped corpses.
func (s *Service) snapshotLocked() []journal.Record {
	runs := make([]*Run, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	sort.Slice(runs, func(i, k int) bool { return runs[i].seq < runs[k].seq })
	var recs []journal.Record
	for _, r := range runs {
		recs = append(recs, acceptedRecord(r))
		if !r.started.IsZero() {
			recs = append(recs, journal.Record{
				Type: journal.TypeStarted, ID: r.ID, UnixMS: r.started.UnixMilli(),
			})
		}
		if wm := r.wm.Load(); wm > 0 {
			recs = append(recs, journal.Record{Type: journal.TypeWatermark, ID: r.ID, VT: wm})
		}
		if r.state.Terminal() {
			recs = append(recs, terminalRecordLocked(r))
		}
	}
	return recs
}

// maybeRotateLocked compacts the journal once the active segment
// outgrows its bound; the service mutex must be held (the snapshot
// reads the run table).
func (s *Service) maybeRotateLocked() {
	if s.j == nil || !s.j.NeedsRotate() {
		return
	}
	if err := s.j.Rotate(s.snapshotLocked()); err != nil {
		s.jErrs.Add(1)
	}
}

// replayState is one run's folded journal history.
type replayState struct {
	seq        int64
	spec       json.RawMessage
	req        string
	acceptedMS int64
	started    bool
	startedMS  int64
	wm         int64
	terminal   bool
	state      RunState
	reason     string
	report     []byte
	end        int64
	endMS      int64
	deleted    bool
}

// foldRecords reduces a replayed record stream to per-run final
// states, plus the highest admission sequence seen (so new IDs never
// collide with recovered ones).
func foldRecords(recs []journal.Record) (map[string]*replayState, int64) {
	states := make(map[string]*replayState)
	var maxSeq int64
	get := func(id string) *replayState {
		st, ok := states[id]
		if !ok {
			st = &replayState{}
			states[id] = st
		}
		return st
	}
	for _, rec := range recs {
		st := get(rec.ID)
		switch rec.Type {
		case journal.TypeAccepted:
			st.seq, st.spec, st.acceptedMS = rec.Seq, rec.Spec, rec.UnixMS
			st.req = rec.Req
			if rec.Seq > maxSeq {
				maxSeq = rec.Seq
			}
		case journal.TypeStarted:
			st.started, st.startedMS = true, rec.UnixMS
		case journal.TypeWatermark:
			if rec.VT > st.wm {
				st.wm = rec.VT
			}
		case journal.TypeTerminal:
			st.terminal = true
			st.state, st.reason = RunState(rec.State), rec.Reason
			st.report, st.end, st.endMS = rec.Report, rec.VT, rec.UnixMS
		case journal.TypeDeleted:
			st.deleted = true
		}
	}
	return states, maxSeq
}

// recoverLocked rebuilds the run table from the folded journal and
// returns the replay summary. Called from New before the daemons
// start; recovered queued/interrupted runs are dispatched as soon as
// the dispatcher wakes.
func (s *Service) recoverLocked(recs []journal.Record) RecoverySummary {
	sum := RecoverySummary{Replayed: len(recs)}
	states, maxSeq := foldRecords(recs)
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
	ids := make([]string, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return states[ids[i]].seq < states[ids[k]].seq })
	now := s.now()
	for _, id := range ids {
		st := states[id]
		if st.deleted || st.spec == nil {
			continue // gone, or its accepted record was lost to the torn tail
		}
		var spec Spec
		if err := json.Unmarshal(st.spec, &spec); err != nil {
			continue // unreadable spec cannot be re-executed
		}
		r := &Run{
			ID: id, Spec: spec, seq: st.seq,
			reqID:   st.req, // the original edge request survives compaction
			created: time.UnixMilli(st.acceptedMS),
			touched: now, // a fresh IdleTTL lease: recovered state stays scrapeable
		}
		switch {
		case st.terminal:
			r.state = st.state
			r.reason = st.reason
			r.report = st.report
			r.end = simulator.Time(st.end)
			r.ended = time.UnixMilli(st.endMS)
			if st.started {
				r.started = time.UnixMilli(st.startedMS)
			}
			sum.Terminal++
		case st.started:
			// Interrupted mid-execution: back to the queue for a
			// deterministic re-run from the journaled spec.
			r.state = StateQueued
			r.recovered = true
			r.wm.Store(st.wm)
			s.recoveries.Inc()
			sum.Interrupted++
		default:
			r.state = StateQueued
			r.recovered = true
			sum.Requeued++
		}
		s.runs[id] = r
	}
	if len(s.runs) > s.tablePeak {
		s.tablePeak = len(s.runs)
	}
	return sum
}
