package cluster

import (
	"fmt"
	"math/bits"

	"epajsrm/internal/simulator"
)

// Config describes a homogeneous system partition. Heterogeneous sites
// (KAUST's BG/P + Cray XC40 + clusters) are modelled as multiple Cluster
// values sharing one facility budget (see policy/intersystem).
type Config struct {
	Name           string
	Nodes          int
	NodesPerRack   int
	RacksPerPDU    int
	PDUsPerChiller int
	Sockets        int
	CoresPerSocket int
	MemGB          int
	Arch           string

	// BootDelay and ShutdownDelay are how long a node takes to power on/off.
	// Tokyo Tech's production solution must fold these into its ~30-minute
	// enforcement window.
	BootDelay     simulator.Time
	ShutdownDelay simulator.Time
}

// DefaultConfig returns a small but structurally complete system used by
// tests and examples: 64 nodes, 16 per rack, 2 racks per PDU, 2 PDUs per
// chiller.
func DefaultConfig() Config {
	return Config{
		Name:           "testsys",
		Nodes:          64,
		NodesPerRack:   16,
		RacksPerPDU:    2,
		PDUsPerChiller: 2,
		Sockets:        2,
		CoresPerSocket: 16,
		MemGB:          128,
		Arch:           "x86_64",
		BootDelay:      3 * simulator.Minute,
		ShutdownDelay:  1 * simulator.Minute,
	}
}

// Cluster is a set of nodes plus the infrastructure graph above them.
//
// Node records live in one contiguous slab (the nodes field) indexed by the
// dense node ID; Nodes[i] points at slab entry i. At 100k nodes the slab is
// a few flat megabytes the scheduler walks with perfect locality, where
// individually boxed nodes scattered a pointer chase across the heap.
type Cluster struct {
	Cfg      Config
	Nodes    []*Node
	Racks    int
	PDUs     int
	Chillers int

	// nodes is the backing slab; Nodes[i] == &nodes[i] always.
	nodes []Node

	// pduMaint / chillerMaint mark infrastructure under maintenance; the
	// layout-aware policy (CEA's SLURM "layout logic") refuses to place
	// jobs on dependent nodes. infraMaint flattens both maps into one bit
	// per node: maintenance flips are rare, availability scans are the
	// scheduler's hottest loop.
	pduMaint     map[int]bool
	chillerMaint map[int]bool
	infraMaint   []bool

	// availBits mirrors per-node schedulability (idle, no node or infra
	// maintenance) as one bit per node in ID order, and availCnt/eligibleCnt
	// maintain the two counts every scheduling pass needs. All node state
	// flips funnel through setNodeState / the maintenance setters, which
	// keep these exactly consistent — turning the scheduler's hottest scans
	// (how many nodes are free? which ones?) from O(nodes) loops over
	// boxed structs into O(1) reads and word-at-a-time bit walks.
	availBits   []uint64
	availCnt    int
	eligibleCnt int // nodes not down and not under any maintenance

	// Placement scratch, reused across AllocateWith calls so ordering a
	// candidate set allocates nothing: per-rack counts, per-PDU counts and
	// a per-node ordinal, all dense-indexed.
	rackScratch []int32
	pduScratch  []int32
	nodeScratch []int32

	// Bucket-pass scratch for orderForStrategy: the non-empty rack list,
	// the per-ordinal counting array, and the permutation output buffer.
	rackOrder    []int32
	ordScratch   []int32
	placeScratch []*Node

	byJob map[int64][]*Node
}

// New builds a cluster from cfg. Rack/PDU/chiller assignment is positional:
// node i sits in rack i/NodesPerRack, and so on up the tree.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("cluster: config with no nodes")
	}
	if cfg.NodesPerRack <= 0 {
		cfg.NodesPerRack = cfg.Nodes
	}
	if cfg.RacksPerPDU <= 0 {
		cfg.RacksPerPDU = 1
	}
	if cfg.PDUsPerChiller <= 0 {
		cfg.PDUsPerChiller = 1
	}
	c := &Cluster{
		Cfg:          cfg,
		pduMaint:     make(map[int]bool),
		chillerMaint: make(map[int]bool),
		byJob:        make(map[int64][]*Node),
	}
	c.nodes = make([]Node, cfg.Nodes)
	c.Nodes = make([]*Node, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		rack := i / cfg.NodesPerRack
		pdu := rack / cfg.RacksPerPDU
		chiller := pdu / cfg.PDUsPerChiller
		c.nodes[i] = Node{
			ID:             i,
			Name:           fmt.Sprintf("%s-n%04d", cfg.Name, i),
			Rack:           rack,
			PDU:            pdu,
			Chiller:        chiller,
			Sockets:        cfg.Sockets,
			CoresPerSocket: cfg.CoresPerSocket,
			MemGB:          cfg.MemGB,
			Arch:           cfg.Arch,
			State:          StateIdle,
		}
		c.Nodes[i] = &c.nodes[i]
		if rack+1 > c.Racks {
			c.Racks = rack + 1
		}
		if pdu+1 > c.PDUs {
			c.PDUs = pdu + 1
		}
		if chiller+1 > c.Chillers {
			c.Chillers = chiller + 1
		}
	}
	c.infraMaint = make([]bool, len(c.Nodes))
	c.availBits = make([]uint64, (len(c.Nodes)+63)/64)
	for i := range c.Nodes {
		c.availBits[i>>6] |= 1 << (uint(i) & 63)
	}
	c.availCnt = len(c.Nodes)
	c.eligibleCnt = len(c.Nodes)
	c.rackScratch = make([]int32, c.Racks)
	c.pduScratch = make([]int32, c.PDUs)
	c.nodeScratch = make([]int32, len(c.Nodes))
	c.rackOrder = make([]int32, 0, c.Racks)
	return c
}

// avail/eligible are the two schedulability predicates the mirrors encode:
// avail gates placement (idle, no maintenance anywhere above or on it),
// eligible counts capacity (anything not down and not under maintenance).
func (c *Cluster) avail(n *Node) bool {
	return n.State == StateIdle && !n.Maintenance && !c.infraMaint[n.ID]
}

func (c *Cluster) eligible(n *Node) bool {
	return n.State != StateDown && !n.Maintenance && !c.infraMaint[n.ID]
}

// setNodeState is the single chokepoint for node lifecycle transitions; it
// keeps the availability bitset and the avail/eligible counters exactly in
// step with the state change.
func (c *Cluster) setNodeState(n *Node, s NodeState, now simulator.Time) {
	wasAvail, wasElig := c.avail(n), c.eligible(n)
	n.setState(s, now)
	c.resync(n, wasAvail, wasElig)
}

// resync folds one node's predicate changes into the mirrors, given the
// predicate values before the mutation.
func (c *Cluster) resync(n *Node, wasAvail, wasElig bool) {
	if a := c.avail(n); a != wasAvail {
		if a {
			c.availBits[n.ID>>6] |= 1 << (uint(n.ID) & 63)
			c.availCnt++
		} else {
			c.availBits[n.ID>>6] &^= 1 << (uint(n.ID) & 63)
			c.availCnt--
		}
	}
	if el := c.eligible(n); el != wasElig {
		if el {
			c.eligibleCnt++
		} else {
			c.eligibleCnt--
		}
	}
}

// SetMaintenance flags or clears node-level maintenance. The Maintenance
// field must only change through here so the availability mirrors stay
// consistent.
func (c *Cluster) SetMaintenance(n *Node, on bool) {
	if n.Maintenance == on {
		return
	}
	wasAvail, wasElig := c.avail(n), c.eligible(n)
	n.Maintenance = on
	c.resync(n, wasAvail, wasElig)
}

// EligibleCount returns how many nodes are usable capacity right now: not
// down, not under node or infrastructure maintenance. O(1).
func (c *Cluster) EligibleCount() int { return c.eligibleCnt }

// Size returns the total node count.
func (c *Cluster) Size() int { return len(c.Nodes) }

// TotalCores returns the total core count across all nodes.
func (c *Cluster) TotalCores() int {
	t := 0
	for _, n := range c.Nodes {
		t += n.Cores()
	}
	return t
}

// CountState returns how many nodes are in state s.
func (c *Cluster) CountState(s NodeState) int {
	k := 0
	for _, n := range c.Nodes {
		if n.State == s {
			k++
		}
	}
	return k
}

// AvailableNodes returns the nodes that can accept a job now, in ID order,
// subject to the optional eligibility filter (used by policies:
// layout-aware maintenance avoidance, static-cap pools, ...). The walk
// skips whole 64-node words with nothing available, so a mostly-busy
// 100k-node system costs ~1.6k word loads, not 100k predicate checks.
func (c *Cluster) AvailableNodes(eligible func(*Node) bool) []*Node {
	var out []*Node
	if c.availCnt == 0 {
		return nil
	}
	if eligible == nil {
		out = make([]*Node, 0, c.availCnt)
	}
	for wi, w := range c.availBits {
		base := wi << 6
		for w != 0 {
			n := c.Nodes[base+bits.TrailingZeros64(w)]
			w &= w - 1
			if eligible != nil && !eligible(n) {
				continue
			}
			out = append(out, n)
		}
	}
	return out
}

// AvailableCount is AvailableNodes with only the count materialized; with
// no filter it is an O(1) counter read.
func (c *Cluster) AvailableCount(eligible func(*Node) bool) int {
	if eligible == nil {
		return c.availCnt
	}
	k := 0
	for wi, w := range c.availBits {
		base := wi << 6
		for w != 0 {
			n := c.Nodes[base+bits.TrailingZeros64(w)]
			w &= w - 1
			if eligible(n) {
				k++
			}
		}
	}
	return k
}

// InfraMaintenance reports whether the node's PDU or chiller is under
// maintenance.
func (c *Cluster) InfraMaintenance(n *Node) bool {
	return c.infraMaint[n.ID]
}

// refreshInfraMaint re-derives the per-node maintenance bit from the PDU
// and chiller maps, resyncing the availability mirrors for every node whose
// bit flips. Maintenance windows are rare; this full pass is off the hot
// path.
func (c *Cluster) refreshInfraMaint() {
	for i := range c.nodes {
		n := &c.nodes[i]
		m := c.pduMaint[n.PDU] || c.chillerMaint[n.Chiller]
		if m == c.infraMaint[i] {
			continue
		}
		wasAvail, wasElig := c.avail(n), c.eligible(n)
		c.infraMaint[i] = m
		c.resync(n, wasAvail, wasElig)
	}
}

// SetPDUMaintenance marks a PDU (and hence all dependent nodes) in or out
// of maintenance.
func (c *Cluster) SetPDUMaintenance(pdu int, on bool) {
	if on {
		c.pduMaint[pdu] = true
	} else {
		delete(c.pduMaint, pdu)
	}
	c.refreshInfraMaint()
}

// SetChillerMaintenance marks a chiller in or out of maintenance.
func (c *Cluster) SetChillerMaintenance(ch int, on bool) {
	if on {
		c.chillerMaint[ch] = true
	} else {
		delete(c.chillerMaint, ch)
	}
	c.refreshInfraMaint()
}

// NodesOnPDU returns all nodes that depend on the given PDU.
func (c *Cluster) NodesOnPDU(pdu int) []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if n.PDU == pdu {
			out = append(out, n)
		}
	}
	return out
}

// Allocate places job jobID on count available nodes with the default
// compact strategy (fill racks densely, minimizing placement span) and
// returns the chosen nodes. It returns nil if not enough eligible nodes
// are available. Use AllocateWith to choose another placement strategy.
func (c *Cluster) Allocate(jobID int64, count int, now simulator.Time, eligible func(*Node) bool) []*Node {
	return c.AllocateWith(jobID, count, now, eligible, PlaceCompact)
}

// JobNodes returns the nodes currently allocated to jobID, or nil.
func (c *Cluster) JobNodes(jobID int64) []*Node { return c.byJob[jobID] }

// Release frees the nodes held by jobID and returns them. Draining nodes
// move to shutting-down instead of idle; down nodes stay down — releasing
// the job of a failed node must not resurrect the hardware.
func (c *Cluster) Release(jobID int64, now simulator.Time) []*Node {
	nodes := c.byJob[jobID]
	delete(c.byJob, jobID)
	for _, n := range nodes {
		n.JobID = 0
		switch n.State {
		case StateDraining:
			c.setNodeState(n, StateShuttingDown, now)
		case StateDown:
			// Stays down until Repair.
		default:
			c.setNodeState(n, StateIdle, now)
		}
	}
	return nodes
}

// BeginBoot moves an off node to booting; the caller schedules FinishBoot
// after Cfg.BootDelay.
func (c *Cluster) BeginBoot(n *Node, now simulator.Time) bool {
	if n.State != StateOff {
		return false
	}
	c.setNodeState(n, StateBooting, now)
	return true
}

// FinishBoot completes a boot, making the node idle.
func (c *Cluster) FinishBoot(n *Node, now simulator.Time) {
	if n.State == StateBooting {
		c.setNodeState(n, StateIdle, now)
	}
}

// BeginShutdown moves an idle node into its shutdown sequence; busy nodes
// are set draining so they shut down when the job completes.
func (c *Cluster) BeginShutdown(n *Node, now simulator.Time) bool {
	switch n.State {
	case StateIdle:
		c.setNodeState(n, StateShuttingDown, now)
		return true
	case StateBusy:
		c.setNodeState(n, StateDraining, now)
		return false
	default:
		return false
	}
}

// FinishShutdown completes a shutdown, powering the node off.
func (c *Cluster) FinishShutdown(n *Node, now simulator.Time) {
	if n.State == StateShuttingDown {
		c.setNodeState(n, StateOff, now)
	}
}

// SetDown marks a node failed; any job mapping is left to the caller, which
// must kill or requeue the affected job (see core.Manager.FailNode).
func (c *Cluster) SetDown(n *Node, now simulator.Time) {
	c.setNodeState(n, StateDown, now)
}

// Repair returns a down node to service (idle). It reports false if the
// node was not down.
func (c *Cluster) Repair(n *Node, now simulator.Time) bool {
	if n.State != StateDown {
		return false
	}
	n.JobID = 0
	c.setNodeState(n, StateIdle, now)
	return true
}

// Distance returns a simple hierarchical hop distance between two nodes:
// 0 same node, 1 same rack, 2 same PDU group, 3 same chiller group,
// 4 otherwise. Topology-aware allocation (survey Q6) minimizes the maximum
// pairwise distance of a placement.
func Distance(a, b *Node) int {
	switch {
	case a.ID == b.ID:
		return 0
	case a.Rack == b.Rack:
		return 1
	case a.PDU == b.PDU:
		return 2
	case a.Chiller == b.Chiller:
		return 3
	default:
		return 4
	}
}

// PlacementSpan returns the maximum pairwise Distance within a placement;
// lower is more compact.
func PlacementSpan(nodes []*Node) int {
	worst := 0
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if d := Distance(nodes[i], nodes[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
