package cluster

import (
	"fmt"

	"epajsrm/internal/simulator"
)

// Config describes a homogeneous system partition. Heterogeneous sites
// (KAUST's BG/P + Cray XC40 + clusters) are modelled as multiple Cluster
// values sharing one facility budget (see policy/intersystem).
type Config struct {
	Name           string
	Nodes          int
	NodesPerRack   int
	RacksPerPDU    int
	PDUsPerChiller int
	Sockets        int
	CoresPerSocket int
	MemGB          int
	Arch           string

	// BootDelay and ShutdownDelay are how long a node takes to power on/off.
	// Tokyo Tech's production solution must fold these into its ~30-minute
	// enforcement window.
	BootDelay     simulator.Time
	ShutdownDelay simulator.Time
}

// DefaultConfig returns a small but structurally complete system used by
// tests and examples: 64 nodes, 16 per rack, 2 racks per PDU, 2 PDUs per
// chiller.
func DefaultConfig() Config {
	return Config{
		Name:           "testsys",
		Nodes:          64,
		NodesPerRack:   16,
		RacksPerPDU:    2,
		PDUsPerChiller: 2,
		Sockets:        2,
		CoresPerSocket: 16,
		MemGB:          128,
		Arch:           "x86_64",
		BootDelay:      3 * simulator.Minute,
		ShutdownDelay:  1 * simulator.Minute,
	}
}

// Cluster is a set of nodes plus the infrastructure graph above them.
type Cluster struct {
	Cfg      Config
	Nodes    []*Node
	Racks    int
	PDUs     int
	Chillers int

	// pduMaint / chillerMaint mark infrastructure under maintenance; the
	// layout-aware policy (CEA's SLURM "layout logic") refuses to place
	// jobs on dependent nodes. infraMaint flattens both maps into one bit
	// per node: maintenance flips are rare, availability scans are the
	// scheduler's hottest loop.
	pduMaint     map[int]bool
	chillerMaint map[int]bool
	infraMaint   []bool

	byJob map[int64][]*Node
}

// New builds a cluster from cfg. Rack/PDU/chiller assignment is positional:
// node i sits in rack i/NodesPerRack, and so on up the tree.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("cluster: config with no nodes")
	}
	if cfg.NodesPerRack <= 0 {
		cfg.NodesPerRack = cfg.Nodes
	}
	if cfg.RacksPerPDU <= 0 {
		cfg.RacksPerPDU = 1
	}
	if cfg.PDUsPerChiller <= 0 {
		cfg.PDUsPerChiller = 1
	}
	c := &Cluster{
		Cfg:          cfg,
		pduMaint:     make(map[int]bool),
		chillerMaint: make(map[int]bool),
		byJob:        make(map[int64][]*Node),
	}
	for i := 0; i < cfg.Nodes; i++ {
		rack := i / cfg.NodesPerRack
		pdu := rack / cfg.RacksPerPDU
		chiller := pdu / cfg.PDUsPerChiller
		n := &Node{
			ID:             i,
			Name:           fmt.Sprintf("%s-n%04d", cfg.Name, i),
			Rack:           rack,
			PDU:            pdu,
			Chiller:        chiller,
			Sockets:        cfg.Sockets,
			CoresPerSocket: cfg.CoresPerSocket,
			MemGB:          cfg.MemGB,
			Arch:           cfg.Arch,
			State:          StateIdle,
		}
		c.Nodes = append(c.Nodes, n)
		if rack+1 > c.Racks {
			c.Racks = rack + 1
		}
		if pdu+1 > c.PDUs {
			c.PDUs = pdu + 1
		}
		if chiller+1 > c.Chillers {
			c.Chillers = chiller + 1
		}
	}
	c.infraMaint = make([]bool, len(c.Nodes))
	return c
}

// Size returns the total node count.
func (c *Cluster) Size() int { return len(c.Nodes) }

// TotalCores returns the total core count across all nodes.
func (c *Cluster) TotalCores() int {
	t := 0
	for _, n := range c.Nodes {
		t += n.Cores()
	}
	return t
}

// CountState returns how many nodes are in state s.
func (c *Cluster) CountState(s NodeState) int {
	k := 0
	for _, n := range c.Nodes {
		if n.State == s {
			k++
		}
	}
	return k
}

// AvailableNodes returns the nodes that can accept a job now, subject to
// the optional eligibility filter (used by policies: layout-aware
// maintenance avoidance, static-cap pools, ...).
func (c *Cluster) AvailableNodes(eligible func(*Node) bool) []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if !n.Available() {
			continue
		}
		if c.InfraMaintenance(n) {
			continue
		}
		if eligible != nil && !eligible(n) {
			continue
		}
		out = append(out, n)
	}
	return out
}

// AvailableCount is AvailableNodes with only the count materialized.
func (c *Cluster) AvailableCount(eligible func(*Node) bool) int {
	k := 0
	for _, n := range c.Nodes {
		if !n.Available() || c.InfraMaintenance(n) {
			continue
		}
		if eligible != nil && !eligible(n) {
			continue
		}
		k++
	}
	return k
}

// InfraMaintenance reports whether the node's PDU or chiller is under
// maintenance.
func (c *Cluster) InfraMaintenance(n *Node) bool {
	return c.infraMaint[n.ID]
}

// refreshInfraMaint re-derives the per-node maintenance bit from the PDU
// and chiller maps.
func (c *Cluster) refreshInfraMaint() {
	for i, n := range c.Nodes {
		c.infraMaint[i] = c.pduMaint[n.PDU] || c.chillerMaint[n.Chiller]
	}
}

// SetPDUMaintenance marks a PDU (and hence all dependent nodes) in or out
// of maintenance.
func (c *Cluster) SetPDUMaintenance(pdu int, on bool) {
	if on {
		c.pduMaint[pdu] = true
	} else {
		delete(c.pduMaint, pdu)
	}
	c.refreshInfraMaint()
}

// SetChillerMaintenance marks a chiller in or out of maintenance.
func (c *Cluster) SetChillerMaintenance(ch int, on bool) {
	if on {
		c.chillerMaint[ch] = true
	} else {
		delete(c.chillerMaint, ch)
	}
	c.refreshInfraMaint()
}

// NodesOnPDU returns all nodes that depend on the given PDU.
func (c *Cluster) NodesOnPDU(pdu int) []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if n.PDU == pdu {
			out = append(out, n)
		}
	}
	return out
}

// Allocate places job jobID on count available nodes with the default
// compact strategy (fill racks densely, minimizing placement span) and
// returns the chosen nodes. It returns nil if not enough eligible nodes
// are available. Use AllocateWith to choose another placement strategy.
func (c *Cluster) Allocate(jobID int64, count int, now simulator.Time, eligible func(*Node) bool) []*Node {
	return c.AllocateWith(jobID, count, now, eligible, PlaceCompact)
}

// JobNodes returns the nodes currently allocated to jobID, or nil.
func (c *Cluster) JobNodes(jobID int64) []*Node { return c.byJob[jobID] }

// Release frees the nodes held by jobID and returns them. Draining nodes
// move to shutting-down instead of idle; down nodes stay down — releasing
// the job of a failed node must not resurrect the hardware.
func (c *Cluster) Release(jobID int64, now simulator.Time) []*Node {
	nodes := c.byJob[jobID]
	delete(c.byJob, jobID)
	for _, n := range nodes {
		n.JobID = 0
		switch n.State {
		case StateDraining:
			n.setState(StateShuttingDown, now)
		case StateDown:
			// Stays down until Repair.
		default:
			n.setState(StateIdle, now)
		}
	}
	return nodes
}

// BeginBoot moves an off node to booting; the caller schedules FinishBoot
// after Cfg.BootDelay.
func (c *Cluster) BeginBoot(n *Node, now simulator.Time) bool {
	if n.State != StateOff {
		return false
	}
	n.setState(StateBooting, now)
	return true
}

// FinishBoot completes a boot, making the node idle.
func (c *Cluster) FinishBoot(n *Node, now simulator.Time) {
	if n.State == StateBooting {
		n.setState(StateIdle, now)
	}
}

// BeginShutdown moves an idle node into its shutdown sequence; busy nodes
// are set draining so they shut down when the job completes.
func (c *Cluster) BeginShutdown(n *Node, now simulator.Time) bool {
	switch n.State {
	case StateIdle:
		n.setState(StateShuttingDown, now)
		return true
	case StateBusy:
		n.setState(StateDraining, now)
		return false
	default:
		return false
	}
}

// FinishShutdown completes a shutdown, powering the node off.
func (c *Cluster) FinishShutdown(n *Node, now simulator.Time) {
	if n.State == StateShuttingDown {
		n.setState(StateOff, now)
	}
}

// SetDown marks a node failed; any job mapping is left to the caller, which
// must kill or requeue the affected job (see core.Manager.FailNode).
func (c *Cluster) SetDown(n *Node, now simulator.Time) {
	n.setState(StateDown, now)
}

// Repair returns a down node to service (idle). It reports false if the
// node was not down.
func (c *Cluster) Repair(n *Node, now simulator.Time) bool {
	if n.State != StateDown {
		return false
	}
	n.JobID = 0
	n.setState(StateIdle, now)
	return true
}

// Distance returns a simple hierarchical hop distance between two nodes:
// 0 same node, 1 same rack, 2 same PDU group, 3 same chiller group,
// 4 otherwise. Topology-aware allocation (survey Q6) minimizes the maximum
// pairwise distance of a placement.
func Distance(a, b *Node) int {
	switch {
	case a.ID == b.ID:
		return 0
	case a.Rack == b.Rack:
		return 1
	case a.PDU == b.PDU:
		return 2
	case a.Chiller == b.Chiller:
		return 3
	default:
		return 4
	}
}

// PlacementSpan returns the maximum pairwise Distance within a placement;
// lower is more compact.
func PlacementSpan(nodes []*Node) int {
	worst := 0
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if d := Distance(nodes[i], nodes[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
