package cluster

import (
	"testing"

	"epajsrm/internal/simulator"
)

// checkMirrors asserts the maintained bitset and counters agree with a
// brute-force scan of the node slab — the oracle the O(1) paths replace.
func checkMirrors(t *testing.T, c *Cluster) {
	t.Helper()
	wantAvail, wantElig := 0, 0
	for _, n := range c.Nodes {
		a := n.State == StateIdle && !n.Maintenance && !c.InfraMaintenance(n)
		if a {
			wantAvail++
		}
		if n.State != StateDown && !n.Maintenance && !c.InfraMaintenance(n) {
			wantElig++
		}
		bit := c.availBits[n.ID>>6]>>(uint(n.ID)&63)&1 == 1
		if bit != a {
			t.Fatalf("node %d: avail bit=%v, scan says %v (state=%v maint=%v)", n.ID, bit, a, n.State, n.Maintenance)
		}
	}
	if c.availCnt != wantAvail {
		t.Fatalf("availCnt=%d, scan says %d", c.availCnt, wantAvail)
	}
	if c.eligibleCnt != wantElig {
		t.Fatalf("eligibleCnt=%d, scan says %d", c.eligibleCnt, wantElig)
	}
	if got := c.AvailableCount(nil); got != wantAvail {
		t.Fatalf("AvailableCount(nil)=%d, scan says %d", got, wantAvail)
	}
	if got := len(c.AvailableNodes(nil)); got != wantAvail {
		t.Fatalf("len(AvailableNodes(nil))=%d, scan says %d", got, wantAvail)
	}
}

// TestMirrorsTrackRandomTransitions storms the cluster with every mutation
// the package exposes — allocation, release, boots, shutdowns, failures,
// repairs, node and infrastructure maintenance — and re-validates the
// mirrors against the oracle after each step.
func TestMirrorsTrackRandomTransitions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 130 // deliberately not a multiple of 64
	cfg.NodesPerRack = 8
	c := New(cfg)
	rng := simulator.NewRNG(99)
	now := simulator.Time(0)
	var jobIDs []int64
	nextJob := int64(1)

	checkMirrors(t, c)
	for step := 0; step < 3000; step++ {
		now++
		n := c.Nodes[rng.Intn(len(c.Nodes))]
		switch rng.Intn(10) {
		case 0:
			if got := c.AllocateWith(nextJob, 1+rng.Intn(8), now, nil, Strategy(rng.Intn(3))); got != nil {
				jobIDs = append(jobIDs, nextJob)
				nextJob++
			}
		case 1:
			if len(jobIDs) > 0 {
				k := rng.Intn(len(jobIDs))
				c.Release(jobIDs[k], now)
				jobIDs = append(jobIDs[:k], jobIDs[k+1:]...)
			}
		case 2:
			c.BeginShutdown(n, now)
		case 3:
			c.FinishShutdown(n, now)
		case 4:
			c.BeginBoot(n, now)
		case 5:
			c.FinishBoot(n, now)
		case 6:
			if n.State == StateDown {
				c.Repair(n, now)
			} else {
				c.SetDown(n, now)
			}
		case 7:
			c.SetMaintenance(n, !n.Maintenance)
		case 8:
			c.SetPDUMaintenance(rng.Intn(c.PDUs), rng.Float64() < 0.5)
		case 9:
			c.SetChillerMaintenance(rng.Intn(c.Chillers), rng.Float64() < 0.5)
		}
		checkMirrors(t, c)
	}
}

// TestAvailableNodesIDOrder pins the bit-walk iteration order contract the
// placement strategies rely on.
func TestAvailableNodesIDOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 100
	c := New(cfg)
	c.AllocateWith(1, 37, 0, nil, PlaceScatter)
	prev := -1
	for _, n := range c.AvailableNodes(nil) {
		if n.ID <= prev {
			t.Fatalf("AvailableNodes out of ID order: %d after %d", n.ID, prev)
		}
		prev = n.ID
	}
}

// TestSlabBacking asserts the boxed views point into the contiguous slab.
func TestSlabBacking(t *testing.T) {
	c := New(DefaultConfig())
	for i, n := range c.Nodes {
		if n != &c.nodes[i] {
			t.Fatalf("Nodes[%d] does not point into the slab", i)
		}
	}
}
