package cluster

import (
	"math/bits"
	"sort"

	"epajsrm/internal/simulator"
)

// Strategy orders the available nodes before a placement takes the prefix.
// It lets topology-aware policies (survey Q6) choose between minimizing
// communication span (compact) and spreading electrical load across PDUs
// (scatter) — the two objectives pull in opposite directions.
type Strategy int

const (
	// PlaceCompact packs racks densely, minimizing the placement span and
	// hence communication slowdown. This is the default.
	PlaceCompact Strategy = iota
	// PlaceScatter round-robins across PDUs, minimizing the per-PDU power
	// concentration at the cost of a wider communication span.
	PlaceScatter
	// PlaceFirstFit takes nodes in ID order with no topology preference —
	// the power- and topology-oblivious baseline.
	PlaceFirstFit
)

var strategyNames = [...]string{"compact", "scatter", "first-fit"}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "Strategy(?)"
}

// orderForStrategy permutes avail into the strategy's preference order.
// Both topology strategies are bucket passes, not comparison sorts: avail
// arrives in ID order from AvailableNodes, and rack and PDU assignment is
// positional (rack = ID/NodesPerRack, PDU above that), so rack and PDU are
// monotone in ID — bucketing nodes in input order lands each bucket's
// members already in (PDU, ID) order. The result is exactly the
// permutation the old comparator sorts produced (compact: per-rack count
// desc, rack asc, ID asc; scatter: per-PDU ordinal asc, PDU asc, ID asc),
// in O(A + racks log racks) instead of O(A log A) comparator calls — the
// placement sort was the top profile entry of a hollow-site run.
func (c *Cluster) orderForStrategy(avail []*Node, s Strategy) {
	switch s {
	case PlaceCompact:
		// Count per rack, collecting the non-empty racks; avail's ID order
		// means the collected rack list is already ascending.
		perRack := c.rackScratch
		for i := range perRack {
			perRack[i] = 0
		}
		racks := c.rackOrder[:0]
		for _, n := range avail {
			if perRack[n.Rack] == 0 {
				racks = append(racks, int32(n.Rack))
			}
			perRack[n.Rack]++
		}
		// Emit racks fullest-first (ties by rack number, i.e. stable over
		// the already-ascending list).
		sort.SliceStable(racks, func(i, j int) bool {
			return perRack[racks[i]] > perRack[racks[j]]
		})
		c.rackOrder = racks
		// Turn counts into emit offsets, then scatter nodes into place.
		pos := int32(0)
		for _, r := range racks {
			n := perRack[r]
			perRack[r] = pos
			pos += n
		}
		out := c.placeBuf(len(avail))
		for _, n := range avail {
			out[perRack[n.Rack]] = n
			perRack[n.Rack]++
		}
		copy(avail, out)
	case PlaceScatter:
		// Round-robin over PDUs: order by (index within PDU, PDU, ID) so the
		// prefix takes one node from each PDU before doubling up. A counting
		// sort on the ordinal suffices: within an ordinal, input order is
		// already (PDU, ID) order.
		idxInPDU := c.pduScratch
		for i := range idxInPDU {
			idxInPDU[i] = 0
		}
		order := c.nodeScratch
		maxOrd := int32(-1)
		for _, n := range avail {
			o := idxInPDU[n.PDU]
			order[n.ID] = o
			idxInPDU[n.PDU]++
			if o > maxOrd {
				maxOrd = o
			}
		}
		cnt := c.ordBuf(int(maxOrd) + 1)
		for i := range cnt {
			cnt[i] = 0
		}
		for _, n := range avail {
			cnt[order[n.ID]]++
		}
		pos := int32(0)
		for i, v := range cnt {
			cnt[i] = pos
			pos += v
		}
		out := c.placeBuf(len(avail))
		for _, n := range avail {
			out[cnt[order[n.ID]]] = n
			cnt[order[n.ID]]++
		}
		copy(avail, out)
	case PlaceFirstFit:
		// AvailableNodes already yields ID order — nothing to do.
	}
}

// placeBuf / ordBuf return reusable scratch of at least the given length.
func (c *Cluster) placeBuf(n int) []*Node {
	if cap(c.placeScratch) < n {
		c.placeScratch = make([]*Node, n)
	}
	return c.placeScratch[:n]
}

func (c *Cluster) ordBuf(n int) []int32 {
	if cap(c.ordScratch) < n {
		c.ordScratch = make([]int32, n)
	}
	return c.ordScratch[:n]
}

// AllocateWith is Allocate with an explicit placement strategy. With no
// eligibility filter the shortage check is an O(1) counter read, so a
// too-wide job is rejected before any scan; a first-fit placement then
// takes the first count set bits directly instead of materializing the
// whole availability list — at 100k hollow nodes every job start would
// otherwise build and discard a list of every free node in the machine.
func (c *Cluster) AllocateWith(jobID int64, count int, now simulator.Time, eligible func(*Node) bool, s Strategy) []*Node {
	if eligible == nil && c.availCnt < count {
		return nil
	}
	if eligible == nil && s == PlaceFirstFit {
		chosen := make([]*Node, 0, count)
	scan:
		for wi, w := range c.availBits {
			for w != 0 {
				chosen = append(chosen, c.Nodes[wi<<6+bits.TrailingZeros64(w)])
				if len(chosen) == count {
					break scan
				}
				w &= w - 1
			}
		}
		for _, n := range chosen {
			c.setNodeState(n, StateBusy, now)
			n.JobID = jobID
		}
		c.byJob[jobID] = chosen
		return chosen
	}
	avail := c.AvailableNodes(eligible)
	if len(avail) < count {
		return nil
	}
	c.orderForStrategy(avail, s)
	chosen := avail[:count]
	for _, n := range chosen {
		c.setNodeState(n, StateBusy, now)
		n.JobID = jobID
	}
	cp := make([]*Node, count)
	copy(cp, chosen)
	c.byJob[jobID] = cp
	return cp
}

// PDUPower sums a per-node value (typically instantaneous draw) across
// each PDU and returns the maximum PDU total — the number a PDU breaker or
// branch-circuit limit cares about.
func (c *Cluster) PDUPower(nodeValue func(id int) float64) (perPDU []float64, maxPDU float64) {
	perPDU = make([]float64, c.PDUs)
	for _, n := range c.Nodes {
		perPDU[n.PDU] += nodeValue(n.ID)
	}
	for _, v := range perPDU {
		if v > maxPDU {
			maxPDU = v
		}
	}
	return perPDU, maxPDU
}
