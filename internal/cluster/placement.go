package cluster

import (
	"sort"

	"epajsrm/internal/simulator"
)

// Strategy orders the available nodes before a placement takes the prefix.
// It lets topology-aware policies (survey Q6) choose between minimizing
// communication span (compact) and spreading electrical load across PDUs
// (scatter) — the two objectives pull in opposite directions.
type Strategy int

const (
	// PlaceCompact packs racks densely, minimizing the placement span and
	// hence communication slowdown. This is the default.
	PlaceCompact Strategy = iota
	// PlaceScatter round-robins across PDUs, minimizing the per-PDU power
	// concentration at the cost of a wider communication span.
	PlaceScatter
	// PlaceFirstFit takes nodes in ID order with no topology preference —
	// the power- and topology-oblivious baseline.
	PlaceFirstFit
)

var strategyNames = [...]string{"compact", "scatter", "first-fit"}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "Strategy(?)"
}

// orderForStrategy sorts avail in the strategy's preference order.
func orderForStrategy(avail []*Node, s Strategy) {
	switch s {
	case PlaceCompact:
		perRack := map[int]int{}
		for _, n := range avail {
			perRack[n.Rack]++
		}
		sort.Slice(avail, func(i, j int) bool {
			a, b := avail[i], avail[j]
			if perRack[a.Rack] != perRack[b.Rack] {
				return perRack[a.Rack] > perRack[b.Rack]
			}
			if a.Rack != b.Rack {
				return a.Rack < b.Rack
			}
			return a.ID < b.ID
		})
	case PlaceScatter:
		// Round-robin over PDUs: sort by (index within PDU, PDU, ID) so the
		// prefix takes one node from each PDU before doubling up.
		idxInPDU := map[int]int{}
		order := make(map[*Node]int, len(avail))
		sort.Slice(avail, func(i, j int) bool { return avail[i].ID < avail[j].ID })
		for _, n := range avail {
			order[n] = idxInPDU[n.PDU]
			idxInPDU[n.PDU]++
		}
		sort.Slice(avail, func(i, j int) bool {
			a, b := avail[i], avail[j]
			if order[a] != order[b] {
				return order[a] < order[b]
			}
			if a.PDU != b.PDU {
				return a.PDU < b.PDU
			}
			return a.ID < b.ID
		})
	case PlaceFirstFit:
		sort.Slice(avail, func(i, j int) bool { return avail[i].ID < avail[j].ID })
	}
}

// AllocateWith is Allocate with an explicit placement strategy.
func (c *Cluster) AllocateWith(jobID int64, count int, now simulator.Time, eligible func(*Node) bool, s Strategy) []*Node {
	avail := c.AvailableNodes(eligible)
	if len(avail) < count {
		return nil
	}
	orderForStrategy(avail, s)
	chosen := avail[:count]
	for _, n := range chosen {
		n.setState(StateBusy, now)
		n.JobID = jobID
	}
	cp := make([]*Node, count)
	copy(cp, chosen)
	c.byJob[jobID] = cp
	return cp
}

// PDUPower sums a per-node value (typically instantaneous draw) across
// each PDU and returns the maximum PDU total — the number a PDU breaker or
// branch-circuit limit cares about.
func (c *Cluster) PDUPower(nodeValue func(id int) float64) (perPDU []float64, maxPDU float64) {
	perPDU = make([]float64, c.PDUs)
	for _, n := range c.Nodes {
		perPDU[n.PDU] += nodeValue(n.ID)
	}
	for _, v := range perPDU {
		if v > maxPDU {
			maxPDU = v
		}
	}
	return perPDU, maxPDU
}
