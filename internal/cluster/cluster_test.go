package cluster

import (
	"testing"
	"testing/quick"

	"epajsrm/internal/simulator"
)

func TestNewAssignsTopology(t *testing.T) {
	c := New(DefaultConfig()) // 64 nodes, 16/rack, 2 racks/PDU, 2 PDUs/chiller
	if c.Size() != 64 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.Racks != 4 || c.PDUs != 2 || c.Chillers != 1 {
		t.Fatalf("racks=%d pdus=%d chillers=%d, want 4/2/1", c.Racks, c.PDUs, c.Chillers)
	}
	// Node 0 and node 15 share a rack; node 16 is in the next rack.
	if c.Nodes[0].Rack != c.Nodes[15].Rack {
		t.Error("0 and 15 should share rack")
	}
	if c.Nodes[15].Rack == c.Nodes[16].Rack {
		t.Error("15 and 16 should not share rack")
	}
	if c.TotalCores() != 64*2*16 {
		t.Fatalf("cores = %d", c.TotalCores())
	}
}

func TestAllocateReleaseRoundTrip(t *testing.T) {
	c := New(DefaultConfig())
	nodes := c.Allocate(1, 10, 0, nil)
	if len(nodes) != 10 {
		t.Fatalf("allocated %d", len(nodes))
	}
	for _, n := range nodes {
		if n.State != StateBusy || n.JobID != 1 {
			t.Fatalf("node %d state=%v job=%d", n.ID, n.State, n.JobID)
		}
	}
	if c.AvailableCount(nil) != 54 {
		t.Fatalf("available = %d", c.AvailableCount(nil))
	}
	got := c.JobNodes(1)
	if len(got) != 10 {
		t.Fatalf("JobNodes = %d", len(got))
	}
	rel := c.Release(1, 5)
	if len(rel) != 10 {
		t.Fatalf("released %d", len(rel))
	}
	if c.AvailableCount(nil) != 64 {
		t.Fatalf("available after release = %d", c.AvailableCount(nil))
	}
	if c.JobNodes(1) != nil {
		t.Fatal("job mapping should be gone")
	}
}

func TestAllocateInsufficientNodes(t *testing.T) {
	c := New(DefaultConfig())
	if got := c.Allocate(1, 65, 0, nil); got != nil {
		t.Fatal("allocation beyond capacity should fail")
	}
	c.Allocate(2, 60, 0, nil)
	if got := c.Allocate(3, 5, 0, nil); got != nil {
		t.Fatal("allocation beyond remaining capacity should fail")
	}
}

func TestAllocatePrefersCompactPlacement(t *testing.T) {
	c := New(DefaultConfig())
	nodes := c.Allocate(1, 16, 0, nil)
	if span := PlacementSpan(nodes); span > 1 {
		t.Fatalf("16 nodes on an empty machine should fit one rack, span=%d", span)
	}
}

func TestAllocateWithFilter(t *testing.T) {
	c := New(DefaultConfig())
	onlyRack0 := func(n *Node) bool { return n.Rack == 0 }
	nodes := c.Allocate(1, 16, 0, onlyRack0)
	if len(nodes) != 16 {
		t.Fatalf("got %d", len(nodes))
	}
	for _, n := range nodes {
		if n.Rack != 0 {
			t.Fatalf("node %d in rack %d", n.ID, n.Rack)
		}
	}
	if got := c.Allocate(2, 1, 0, onlyRack0); got != nil {
		t.Fatal("rack 0 exhausted; filtered allocation should fail")
	}
}

func TestLifecycleTransitions(t *testing.T) {
	c := New(DefaultConfig())
	n := c.Nodes[0]

	if c.BeginBoot(n, 0) {
		t.Fatal("booting an idle node should fail")
	}
	if !c.BeginShutdown(n, 0) {
		t.Fatal("shutting down idle node should begin")
	}
	if n.State != StateShuttingDown {
		t.Fatalf("state = %v", n.State)
	}
	c.FinishShutdown(n, 10)
	if n.State != StateOff {
		t.Fatalf("state = %v", n.State)
	}
	if !c.BeginBoot(n, 20) {
		t.Fatal("boot from off should begin")
	}
	c.FinishBoot(n, 30)
	if n.State != StateIdle || n.StateSince != 30 {
		t.Fatalf("state=%v since=%d", n.State, n.StateSince)
	}
}

func TestDrainingNodeShutsDownOnRelease(t *testing.T) {
	c := New(DefaultConfig())
	nodes := c.Allocate(7, 2, 0, nil)
	// Request shutdown of a busy node: it drains.
	if c.BeginShutdown(nodes[0], 1) {
		t.Fatal("busy node should not shut down immediately")
	}
	if nodes[0].State != StateDraining {
		t.Fatalf("state = %v", nodes[0].State)
	}
	c.Release(7, 2)
	if nodes[0].State != StateShuttingDown {
		t.Fatalf("drained node state after release = %v", nodes[0].State)
	}
	if nodes[1].State != StateIdle {
		t.Fatalf("normal node state after release = %v", nodes[1].State)
	}
}

func TestMaintenanceExcludesDependentNodes(t *testing.T) {
	c := New(DefaultConfig())
	c.SetPDUMaintenance(0, true)
	onPDU0 := len(c.NodesOnPDU(0))
	if onPDU0 != 32 {
		t.Fatalf("nodes on PDU 0 = %d", onPDU0)
	}
	if got := c.AvailableCount(nil); got != 32 {
		t.Fatalf("available during PDU maintenance = %d, want 32", got)
	}
	c.SetPDUMaintenance(0, false)
	if got := c.AvailableCount(nil); got != 64 {
		t.Fatalf("available after maintenance = %d", got)
	}
	c.SetChillerMaintenance(0, true)
	if got := c.AvailableCount(nil); got != 0 {
		t.Fatalf("available during chiller maintenance = %d (single chiller)", got)
	}
}

func TestDistanceHierarchy(t *testing.T) {
	c := New(DefaultConfig())
	if Distance(c.Nodes[0], c.Nodes[0]) != 0 {
		t.Error("self distance")
	}
	if Distance(c.Nodes[0], c.Nodes[1]) != 1 {
		t.Error("same rack")
	}
	if Distance(c.Nodes[0], c.Nodes[16]) != 2 {
		t.Error("same PDU, different rack")
	}
	if Distance(c.Nodes[0], c.Nodes[33]) != 3 {
		t.Error("same chiller, different PDU")
	}
}

func TestCountState(t *testing.T) {
	c := New(DefaultConfig())
	c.Allocate(1, 5, 0, nil)
	if c.CountState(StateBusy) != 5 || c.CountState(StateIdle) != 59 {
		t.Fatalf("busy=%d idle=%d", c.CountState(StateBusy), c.CountState(StateIdle))
	}
}

func TestAllocationNeverDoubleBooks(t *testing.T) {
	f := func(sizes []uint8) bool {
		c := New(DefaultConfig())
		owner := map[int]int64{}
		var jid int64
		for _, s := range sizes {
			want := int(s%16) + 1
			jid++
			nodes := c.Allocate(jid, want, simulator.Time(jid), nil)
			for _, n := range nodes {
				if _, taken := owner[n.ID]; taken {
					return false
				}
				owner[n.ID] = jid
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPlaceScatterSpreadsAcrossPDUs(t *testing.T) {
	c := New(DefaultConfig()) // 2 PDUs
	nodes := c.AllocateWith(1, 8, 0, nil, PlaceScatter)
	perPDU := map[int]int{}
	for _, n := range nodes {
		perPDU[n.PDU]++
	}
	if perPDU[0] != 4 || perPDU[1] != 4 {
		t.Fatalf("scatter split = %v, want 4/4", perPDU)
	}
}

func TestPlaceFirstFitTakesLowestIDs(t *testing.T) {
	c := New(DefaultConfig())
	// Occupy node 0 so first-fit starts at 1.
	c.AllocateWith(9, 1, 0, nil, PlaceFirstFit)
	nodes := c.AllocateWith(1, 3, 0, nil, PlaceFirstFit)
	for i, n := range nodes {
		if n.ID != i+1 {
			t.Fatalf("first-fit order = %v", nodes)
		}
	}
}

func TestPlacementStrategiesNeverOverlap(t *testing.T) {
	f := func(strategyRaw, countRaw uint8) bool {
		c := New(DefaultConfig())
		s := Strategy(strategyRaw % 3)
		seen := map[int]bool{}
		var jid int64
		for {
			jid++
			count := int(countRaw%8) + 1
			nodes := c.AllocateWith(jid, count, 0, nil, s)
			if nodes == nil {
				return true
			}
			for _, n := range nodes {
				if seen[n.ID] {
					return false
				}
				seen[n.ID] = true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPDUPower(t *testing.T) {
	c := New(DefaultConfig())
	per, max := c.PDUPower(func(id int) float64 { return 1 })
	if len(per) != 2 || per[0] != 32 || per[1] != 32 || max != 32 {
		t.Fatalf("pdu sums = %v max %f", per, max)
	}
}

func TestStrategyString(t *testing.T) {
	if PlaceCompact.String() != "compact" || PlaceScatter.String() != "scatter" || PlaceFirstFit.String() != "first-fit" {
		t.Fatal("strategy names wrong")
	}
}

func TestDownNodeNotAvailable(t *testing.T) {
	c := New(DefaultConfig())
	n := c.Nodes[0]
	c.SetDown(n, 0)
	if n.Available() {
		t.Fatal("down node reported available")
	}
	// No placement path may hand out a down node.
	for _, s := range []Strategy{PlaceCompact, PlaceScatter, PlaceFirstFit} {
		nodes := c.AllocateWith(1, c.Size(), 0, nil, s)
		if nodes != nil {
			t.Fatalf("%v allocated the whole machine with a down node", s)
		}
		nodes = c.AllocateWith(1, c.Size()-1, 0, nil, s)
		for _, got := range nodes {
			if got.ID == n.ID {
				t.Fatalf("%v placed work on a down node", s)
			}
		}
		c.Release(1, 0)
	}
}

func TestReleaseDoesNotResurrectDownNode(t *testing.T) {
	c := New(DefaultConfig())
	nodes := c.Allocate(7, 2, 0, nil)
	if len(nodes) != 2 {
		t.Fatal("allocation failed")
	}
	down := nodes[0]
	c.SetDown(down, 5)
	// Releasing the job (its other nodes go idle) must leave the crashed
	// node down.
	c.Release(7, 10)
	if down.State != StateDown {
		t.Fatalf("release resurrected down node to %v", down.State)
	}
	if nodes[1].State != StateIdle {
		t.Fatalf("healthy node state = %v, want idle", nodes[1].State)
	}
}

func TestRepairRoundTrip(t *testing.T) {
	c := New(DefaultConfig())
	n := c.Nodes[3]
	if c.Repair(n, 0) {
		t.Fatal("repaired a node that was not down")
	}
	c.SetDown(n, 0)
	if !c.Repair(n, 10) {
		t.Fatal("repair of a down node failed")
	}
	if n.State != StateIdle || n.JobID != 0 {
		t.Fatalf("after repair: state=%v job=%d", n.State, n.JobID)
	}
	if !n.Available() {
		t.Fatal("repaired node should be available")
	}
}
