// Package cluster models the hardware a supercomputing center schedules:
// nodes with sockets, cores and memory, grouped into racks that hang off
// PDUs and chillers. The model is deliberately architecture-neutral — the
// surveyed sites run Cray XC, Fujitsu, NEC and Lenovo systems, but every
// EPA JSRM mechanism in the paper reduces to the same node-level state
// machine and infrastructure dependency graph implemented here.
package cluster

import (
	"fmt"

	"epajsrm/internal/simulator"
)

// NodeState is the lifecycle state of a compute node. Power-aware resource
// managers (Tokyo Tech's NEC solution, CEA's manual shifts, Mämmelä's
// energy-aware scheduler) move nodes between these states to shape power.
type NodeState int

const (
	// StateOff means the node is powered down and draws only trickle power.
	StateOff NodeState = iota
	// StateBooting means the node is powering up and cannot run jobs yet.
	StateBooting
	// StateIdle means the node is up and available for work.
	StateIdle
	// StateBusy means the node is running a job.
	StateBusy
	// StateDraining means the node finishes its job and then goes to Off.
	StateDraining
	// StateShuttingDown means the node is in its shutdown sequence.
	StateShuttingDown
	// StateDown means the node failed or was administratively removed.
	StateDown
)

var nodeStateNames = [...]string{"off", "booting", "idle", "busy", "draining", "shutting-down", "down"}

func (s NodeState) String() string {
	if int(s) < len(nodeStateNames) {
		return nodeStateNames[s]
	}
	return fmt.Sprintf("NodeState(%d)", int(s))
}

// Node is one compute node. Power draw is computed by internal/power from
// the node's utilization, frequency and cap; the cluster package only holds
// placement and lifecycle state.
type Node struct {
	ID   int
	Name string

	// Physical position and infrastructure dependencies.
	Rack    int
	PDU     int
	Chiller int

	// Hardware shape.
	Sockets        int
	CoresPerSocket int
	MemGB          int
	Arch           string

	// Lifecycle.
	State      NodeState
	JobID      int64 // 0 when no job is placed here
	StateSince simulator.Time

	// Power-management knobs owned by internal/power but stored on the node
	// so out-of-band controllers (CAPMC-style) can see them per node.
	PStateIdx int     // current P-state index into the site's DVFS table
	CapW      float64 // node-level power cap in watts; 0 means uncapped

	// Maintenance flag used by layout-aware scheduling (CEA): set when the
	// node itself is under maintenance, independent of PDU/chiller state.
	// Change it only via Cluster.SetMaintenance — the cluster mirrors
	// availability into a bitset and counters that must stay consistent.
	Maintenance bool

	// VMHost marks a node that carries virtual machines. Tokyo Tech's
	// production row notes that using VMs to split compute nodes
	// "complicates physical node shutdown" — power-off policies must skip
	// VM hosts even when they look idle to the batch system.
	VMHost bool
}

// Cores returns the total core count of the node.
func (n *Node) Cores() int { return n.Sockets * n.CoresPerSocket }

// Available reports whether the node can accept a job right now. Only an
// idle, non-maintenance node qualifies — in particular a down (failed) node
// is never available, which every placement path relies on.
func (n *Node) Available() bool {
	return n.State == StateIdle && !n.Maintenance
}

// setState transitions the node and records when.
func (n *Node) setState(s NodeState, now simulator.Time) {
	n.State = s
	n.StateSince = now
}
