// Package prof is the control loop's phase-attribution profiler: a
// deterministic, allocation-free accounting of where a run's *wall
// clock* goes, split across a fixed taxonomy of named phases (event
// dispatch, scheduling passes with the reservation/backfill split,
// job lifecycle bookkeeping, power integration, telemetry sampling,
// checkpoint bookkeeping, the scale-harness arrival pump).
//
// The design mirrors the tracer's zero-cost-when-off contract: every
// instrumentation site holds a possibly-nil *Profiler and calls
// Enter/Exit unconditionally — a nil receiver makes both methods a
// single predictable branch, so a run without profiling pays one
// nil-check per site and nothing else (benchmarked and gated in CI).
// When enabled, each phase transition costs exactly one monotonic
// clock read: Enter charges the elapsed segment to the phase being
// left behind (the parent, if any) and Exit charges it to the phase
// being closed, so nested phases attribute *exclusively* — a
// scheduling pass that spends most of its time inside the reservation
// computation reports that time under sched_reservation, not twice.
//
// Determinism contract: the profiler observes the run, never steers
// it. It takes no locks, schedules no events, and its measurements
// are not consulted by any control-loop decision, so same-seed
// reports are byte-identical with profiling on or off. The profile
// itself is wall-clock data and therefore machine-dependent; only its
// *shape* (phase names, field order, which phases appear) is
// deterministic.
//
// Like the metrics registry, a Profiler is single-goroutine: it
// belongs to one engine's control loop. Cross-thread readers (the ops
// plane) must hold whatever lock serializes that loop.
package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"epajsrm/internal/metrics"
)

// Phase identifies one slice of the control-loop taxonomy.
type Phase uint8

// The phase taxonomy. Events is the engine's dispatch loop and acts
// as the root: every other phase runs nested inside it, so the
// events row reads as "dispatch + event bodies no subsystem claimed".
const (
	Events           Phase = iota // engine dispatch loop, exclusive of claimed sub-phases
	SchedPass                     // scheduling pass: candidate scan, view build, start loop
	SchedReservation              // EASY/Conservative reservation computation
	SchedBackfill                 // EASY backfill walk over the blocked queue
	Jobs                          // job lifecycle bookkeeping: start/finish/kill/fail
	Power                         // power.System integration: energy advance, draw refresh
	Telemetry                     // telemetry sampling
	Checkpoint                    // checkpoint/restore bookkeeping
	Pump                          // scale-harness arrival pump
	numPhases
)

var phaseNames = [numPhases]string{
	Events:           "events",
	SchedPass:        "sched_pass",
	SchedReservation: "sched_reservation",
	SchedBackfill:    "sched_backfill",
	Jobs:             "jobs",
	Power:            "power",
	Telemetry:        "telemetry",
	Checkpoint:       "checkpoint",
	Pump:             "pump",
}

// Name returns the phase's stable report name.
func (ph Phase) Name() string {
	if ph < numPhases {
		return phaseNames[ph]
	}
	return fmt.Sprintf("phase-%d", uint8(ph))
}

// NumPhases is the size of the taxonomy, exported for tests.
const NumPhases = int(numPhases)

// Profiler accumulates exclusive wall time and invocation counts per
// phase. The zero value is NOT usable — a disabled profiler is a nil
// pointer, which every method tolerates; construct live ones with New.
type Profiler struct {
	t0     time.Time
	stack  []Phase
	totals [numPhases]time.Duration
	calls  [numPhases]int64
}

// New returns an enabled profiler with an empty phase stack.
func New() *Profiler {
	return &Profiler{stack: make([]Phase, 0, 16)}
}

// Enter opens a phase, pausing the enclosing phase (if any) so time
// attributes exclusively. Safe on a nil receiver (no-op).
func (p *Profiler) Enter(ph Phase) {
	if p == nil {
		return
	}
	now := time.Now()
	if n := len(p.stack); n > 0 {
		p.totals[p.stack[n-1]] += now.Sub(p.t0)
	}
	p.stack = append(p.stack, ph)
	p.calls[ph]++
	p.t0 = now
}

// Exit closes the innermost open phase, charging it the elapsed
// segment and resuming its parent. Safe on a nil receiver, and on an
// empty stack (an unmatched Exit is ignored rather than corrupting
// the books).
func (p *Profiler) Exit() {
	if p == nil {
		return
	}
	n := len(p.stack)
	if n == 0 {
		return
	}
	now := time.Now()
	p.totals[p.stack[n-1]] += now.Sub(p.t0)
	p.stack = p.stack[:n-1]
	p.t0 = now
}

// Current names the innermost open phase, "idle" when the stack is
// empty, and "off" on a nil profiler — the string the per-run
// /healthz detail reports.
func (p *Profiler) Current() string {
	if p == nil {
		return "off"
	}
	if n := len(p.stack); n > 0 {
		return p.stack[n-1].Name()
	}
	return "idle"
}

// TotalSeconds is the sum of all phase wall time.
func (p *Profiler) TotalSeconds() float64 {
	if p == nil {
		return 0
	}
	var t time.Duration
	for _, d := range p.totals {
		t += d
	}
	return t.Seconds()
}

// PhaseStat is one row of a profile report. Share is the phase's
// fraction of the profiled total (0..1), not of the process's wall
// clock — coverage against wall clock is the caller's division.
type PhaseStat struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Calls   int64   `json:"calls"`
	Share   float64 `json:"share"`
}

// Snapshot reports every phase in taxonomy order, including phases
// with zero observations (a report that silently omits an empty phase
// is indistinguishable from one that never instrumented it). Returns
// nil on a nil profiler.
func (p *Profiler) Snapshot() []PhaseStat {
	if p == nil {
		return nil
	}
	total := p.TotalSeconds()
	out := make([]PhaseStat, numPhases)
	for ph := Phase(0); ph < numPhases; ph++ {
		s := PhaseStat{Name: ph.Name(), Seconds: p.totals[ph].Seconds(), Calls: p.calls[ph]}
		if total > 0 {
			s.Share = s.Seconds / total
		}
		out[ph] = s
	}
	return out
}

// report is the JSON shape shared by WriteJSON and epascale -json.
type report struct {
	TotalSeconds float64     `json:"total_seconds"`
	Phases       []PhaseStat `json:"phases"`
}

// WriteJSON renders the profile as indented JSON with a stable field
// and phase order.
func (p *Profiler) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(report{TotalSeconds: p.TotalSeconds(), Phases: p.Snapshot()}, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Table renders a human-readable breakdown, widest phase first.
func (p *Profiler) Table() string {
	if p == nil {
		return ""
	}
	stats := p.Snapshot()
	// Insertion sort by seconds descending; ties keep taxonomy order.
	for i := 1; i < len(stats); i++ {
		for k := i; k > 0 && stats[k].Seconds > stats[k-1].Seconds; k-- {
			stats[k], stats[k-1] = stats[k-1], stats[k]
		}
	}
	var b strings.Builder
	for _, s := range stats {
		if s.Calls == 0 && s.Seconds == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-18s %9.3fs  %5.1f%%  %d calls\n", s.Name, s.Seconds, s.Share*100, s.Calls)
	}
	return b.String()
}

// Register exports every phase (zero-observation phases included) as
// prof.<phase>.seconds / prof.<phase>.calls gauge pairs, live-read on
// each registry snapshot. Call at most once per registry — duplicate
// metric names panic by the registry's own contract.
func (p *Profiler) Register(reg *metrics.Registry) {
	if p == nil || reg == nil {
		return
	}
	for ph := Phase(0); ph < numPhases; ph++ {
		reg.GaugeFunc("prof."+ph.Name()+".seconds", func() float64 { return p.totals[ph].Seconds() })
		reg.GaugeFunc("prof."+ph.Name()+".calls", func() float64 { return float64(p.calls[ph]) })
	}
}
