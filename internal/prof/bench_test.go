package prof

import "testing"

// BenchmarkEnterExit prices one full phase transition pair on a live
// profiler: two monotonic clock reads plus the stack bookkeeping. This
// is the marginal cost each instrumented region pays with phases on.
func BenchmarkEnterExit(b *testing.B) {
	p := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Enter(SchedPass)
		p.Exit()
	}
}

// BenchmarkEnterExitNested prices the nested case the scheduler hits
// per pass: a pass phase with a reservation phase inside it.
func BenchmarkEnterExitNested(b *testing.B) {
	p := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Enter(SchedPass)
		p.Enter(SchedReservation)
		p.Exit()
		p.Exit()
	}
}

// BenchmarkEnterExitNil is the phases-off fast path: every call site
// in the control loop pays this (a nil-receiver branch) when no
// profiler is attached. It must stay indistinguishable from free.
func BenchmarkEnterExitNil(b *testing.B) {
	var p *Profiler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Enter(SchedPass)
		p.Exit()
	}
}
