package prof

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"epajsrm/internal/metrics"
)

// spin burns real wall time without sleeping (sleep granularity is too
// coarse and too platform-dependent for attribution assertions).
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func TestNilProfilerIsSafe(t *testing.T) {
	var p *Profiler
	p.Enter(SchedPass)
	p.Exit()
	if got := p.Current(); got != "off" {
		t.Fatalf("nil Current() = %q, want off", got)
	}
	if p.TotalSeconds() != 0 {
		t.Fatalf("nil TotalSeconds() = %v, want 0", p.TotalSeconds())
	}
	if p.Snapshot() != nil {
		t.Fatal("nil Snapshot() should be nil")
	}
	if p.Table() != "" {
		t.Fatal("nil Table() should be empty")
	}
	p.Register(metrics.New()) // must not panic
}

func TestUnmatchedExitIgnored(t *testing.T) {
	p := New()
	p.Exit() // no open phase: must not corrupt anything
	p.Enter(Jobs)
	p.Exit()
	p.Exit()
	if got := p.calls[Jobs]; got != 1 {
		t.Fatalf("jobs calls = %d, want 1", got)
	}
}

func TestCurrentNamesInnermostPhase(t *testing.T) {
	p := New()
	if got := p.Current(); got != "idle" {
		t.Fatalf("empty Current() = %q, want idle", got)
	}
	p.Enter(Events)
	p.Enter(SchedPass)
	if got := p.Current(); got != "sched_pass" {
		t.Fatalf("Current() = %q, want sched_pass", got)
	}
	p.Exit()
	if got := p.Current(); got != "events" {
		t.Fatalf("Current() = %q, want events", got)
	}
	p.Exit()
	if got := p.Current(); got != "idle" {
		t.Fatalf("Current() = %q, want idle", got)
	}
}

// TestNestedAttributionIsExclusive is the core accounting contract: a
// nested phase's time is charged to the child alone, never double-counted
// into the parent.
func TestNestedAttributionIsExclusive(t *testing.T) {
	const quantum = 20 * time.Millisecond
	p := New()
	start := time.Now()
	p.Enter(Events)
	spin(quantum)
	p.Enter(SchedPass)
	spin(quantum)
	p.Exit()
	spin(quantum)
	p.Exit()
	wall := time.Since(start).Seconds()

	ev := p.totals[Events].Seconds()
	sp := p.totals[SchedPass].Seconds()
	min := (quantum - 5*time.Millisecond).Seconds()
	if sp < min {
		t.Fatalf("sched_pass charged %.4fs, want >= %.4fs", sp, min)
	}
	if ev < 2*min {
		t.Fatalf("events charged %.4fs (two exclusive quanta), want >= %.4fs", ev, 2*min)
	}
	// Exclusivity: the two phases partition the wall time, so the sum
	// cannot exceed it (double-charging would push it toward 4 quanta).
	if total := p.TotalSeconds(); total > wall+0.001 {
		t.Fatalf("total %.4fs exceeds wall %.4fs: time was double-charged", total, wall)
	}
	if diff := ev + sp - p.TotalSeconds(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("events+sched_pass = %.9f, total = %.9f", ev+sp, p.TotalSeconds())
	}
}

func TestSnapshotCoversTaxonomyInOrder(t *testing.T) {
	p := New()
	p.Enter(Power)
	p.Exit()
	stats := p.Snapshot()
	if len(stats) != NumPhases {
		t.Fatalf("snapshot has %d phases, want %d (zero-observation phases must appear)", len(stats), NumPhases)
	}
	for i, s := range stats {
		if want := Phase(i).Name(); s.Name != want {
			t.Fatalf("stats[%d].Name = %q, want %q (taxonomy order)", i, s.Name, want)
		}
	}
	if stats[Power].Calls != 1 {
		t.Fatalf("power calls = %d, want 1", stats[Power].Calls)
	}
	if stats[Pump].Calls != 0 || stats[Pump].Seconds != 0 {
		t.Fatalf("pump should be zero-observation, got %+v", stats[Pump])
	}
}

func TestWriteJSONShape(t *testing.T) {
	p := New()
	p.Enter(Checkpoint)
	p.Exit()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var rep struct {
		TotalSeconds float64     `json:"total_seconds"`
		Phases       []PhaseStat `json:"phases"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, buf.String())
	}
	if len(rep.Phases) != NumPhases {
		t.Fatalf("JSON has %d phases, want %d", len(rep.Phases), NumPhases)
	}
}

func TestRegisterExportsGaugePairs(t *testing.T) {
	p := New()
	p.Enter(Telemetry)
	spin(time.Millisecond)
	p.Exit()
	reg := metrics.New()
	p.Register(reg)
	if got := reg.Value("prof.telemetry.calls"); got != 1 {
		t.Fatalf("prof.telemetry.calls = %v, want 1", got)
	}
	if got := reg.Value("prof.telemetry.seconds"); got <= 0 {
		t.Fatalf("prof.telemetry.seconds = %v, want > 0", got)
	}
	// Zero-observation phases are exported too.
	if got := reg.Value("prof.pump.calls"); got != 0 {
		t.Fatalf("prof.pump.calls = %v, want 0", got)
	}
}
