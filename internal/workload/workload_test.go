package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(DefaultSpec(), 42).Generate(50)
	b := NewGenerator(DefaultSpec(), 42).Generate(50)
	for i := range a {
		if a[i].Nodes != b[i].Nodes || a[i].TrueRuntime != b[i].TrueRuntime ||
			a[i].Submit != b[i].Submit || a[i].PowerPerNodeW != b[i].PowerPerNodeW {
			t.Fatalf("job %d differs across identically-seeded generators", i)
		}
	}
	c := NewGenerator(DefaultSpec(), 43).Generate(50)
	same := 0
	for i := range a {
		if a[i].TrueRuntime == c[i].TrueRuntime {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestGeneratedJobsValidate(t *testing.T) {
	spec := DefaultSpec()
	for _, j := range NewGenerator(spec, 7).Generate(500) {
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
		if j.Nodes < spec.MinNodes || j.Nodes > spec.MaxNodes {
			t.Fatalf("width %d out of [%d,%d]", j.Nodes, spec.MinNodes, spec.MaxNodes)
		}
		if j.Walltime < j.TrueRuntime {
			t.Fatalf("walltime %d below runtime %d", j.Walltime, j.TrueRuntime)
		}
		if float64(j.Walltime) > float64(j.TrueRuntime)*spec.WalltimeFactorMax+1 {
			t.Fatalf("walltime factor exceeded")
		}
	}
}

func TestArrivalsAreMonotone(t *testing.T) {
	js := NewGenerator(DefaultSpec(), 3).Generate(200)
	for i := 1; i < len(js); i++ {
		if js[i].Submit < js[i-1].Submit {
			t.Fatal("submissions out of order")
		}
	}
}

func TestArrivalRateRoughlyMatchesSpec(t *testing.T) {
	spec := DefaultSpec()
	spec.ArrivalMeanSec = 100
	js := NewGenerator(spec, 11).Generate(2000)
	span := float64(js[len(js)-1].Submit - js[0].Submit)
	mean := span / float64(len(js)-1)
	if mean < 90 || mean > 110 {
		t.Fatalf("inter-arrival mean = %.1f, want ~100", mean)
	}
}

func TestCapabilityFractionShiftsWidths(t *testing.T) {
	capSpec := DefaultSpec()
	capSpec.CapabilityFrac = 0.9
	capacity := DefaultSpec()
	capacity.CapabilityFrac = 0.0
	wide := meanWidth(NewGenerator(capSpec, 5).Generate(500))
	narrow := meanWidth(NewGenerator(capacity, 5).Generate(500))
	if wide <= narrow*2 {
		t.Fatalf("capability mean width %.1f not clearly above capacity %.1f", wide, narrow)
	}
}

func meanWidth(js []*jobs.Job) float64 {
	s := 0.0
	for _, j := range js {
		s += float64(j.Nodes)
	}
	return s / float64(len(js))
}

func TestMoldableJobsHaveConsistentConfigs(t *testing.T) {
	js := NewGenerator(DefaultSpec(), 9).Generate(500)
	sawMold := false
	for _, j := range js {
		for _, m := range j.Mold {
			sawMold = true
			if m.Nodes <= 0 || m.Runtime <= 0 {
				t.Fatal("bad mold config")
			}
			// Narrower configs must run longer.
			if m.Nodes < j.Nodes && m.Runtime <= j.TrueRuntime {
				t.Fatalf("mold %d nodes runs %v, not longer than %v at %d nodes",
					m.Nodes, m.Runtime, j.TrueRuntime, j.Nodes)
			}
		}
	}
	if !sawMold {
		t.Fatal("default app catalog should yield some moldable jobs")
	}
}

func TestStatsQuantiles(t *testing.T) {
	js := NewGenerator(DefaultSpec(), 13).Generate(1000)
	size, wall := Stats(js)
	if size.Min < 1 || size.Max > 32 {
		t.Fatalf("size quantiles out of spec: %+v", size)
	}
	if !(size.P10 <= size.Median && size.Median <= size.P90) {
		t.Fatalf("size quantiles unordered: %+v", size)
	}
	if wall.Min < 60 {
		t.Fatalf("walltime min %f below floor", wall.Min)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.ArrivalMeanSec = 0 },
		func(s *Spec) { s.MinNodes = 0 },
		func(s *Spec) { s.MaxNodes = 0 },
		func(s *Spec) { s.RuntimeMedianSec = -1 },
		func(s *Spec) { s.WalltimeFactorMax = 0.5 },
		func(s *Spec) { s.CapabilityFrac = 2 },
	}
	for i, mutate := range bad {
		s := DefaultSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	js := NewGenerator(DefaultSpec(), 21).Generate(100)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, js); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(js) {
		t.Fatalf("round trip count %d != %d", len(back), len(js))
	}
	for i := range js {
		a, b := js[i], back[i]
		if a.ID != b.ID || a.Submit != b.Submit || a.Nodes != b.Nodes ||
			a.TrueRuntime != b.TrueRuntime || a.Walltime != b.Walltime ||
			a.User != b.User || a.Tag != b.Tag || a.Priority != b.Priority {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, a, b)
		}
		if a.MemFrac-b.MemFrac > 0.001 || b.MemFrac-a.MemFrac > 0.001 {
			t.Fatalf("mem frac drift: %f vs %f", a.MemFrac, b.MemFrac)
		}
	}
}

func TestTraceRejectsMalformedLines(t *testing.T) {
	cases := []string{
		"1 2 3",                               // too few fields
		"x 0 4 100 200 300 0.3 0 u tag",       // bad id
		"1 0 0 100 200 300 0.3 0 u tag",       // zero nodes -> validate fails
		"1 0 4 100 200 300 nope 0 u tag",      // bad float
		"1 0 4 100 200 300 0.3 0 u tag extra", // too many fields
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "; comment\n\n1 0 4 100 200 300.0 0.300 0 u tag\n"
	js, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(js) != 1 || js[0].Nodes != 4 {
		t.Fatalf("got %d jobs", len(js))
	}
}

func TestTraceDashMeansEmpty(t *testing.T) {
	in := "1 0 4 100 200 300.0 0.300 0 - -\n"
	js, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if js[0].User != "" || js[0].Tag != "" {
		t.Fatalf("dash fields should decode empty, got %q/%q", js[0].User, js[0].Tag)
	}
}

func TestGeneratorRuntimeFloor(t *testing.T) {
	spec := DefaultSpec()
	spec.RuntimeMedianSec = 61 // drive many samples near the floor
	spec.RuntimeSigma = 3
	f := func(seed uint64) bool {
		js := NewGenerator(spec, seed).Generate(20)
		for _, j := range js {
			if j.TrueRuntime < 60 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
	_ = simulator.Time(0)
}

func TestDiurnalArrivalsPeakInAfternoon(t *testing.T) {
	spec := DefaultSpec()
	spec.ArrivalMeanSec = 120
	spec.DiurnalAmp = 1.0
	js := NewGenerator(spec, 31).Generate(5000)
	day := map[int]int{} // submissions per hour of day
	for _, j := range js {
		hour := int((j.Submit % simulator.Day) / simulator.Hour)
		day[hour]++
	}
	afternoon := day[14] + day[15] + day[16]
	night := day[2] + day[3] + day[4]
	if afternoon < night*3 {
		t.Fatalf("diurnal pattern weak: afternoon=%d night=%d", afternoon, night)
	}
	// Mean rate stays roughly the spec mean.
	span := float64(js[len(js)-1].Submit-js[0].Submit) / float64(len(js)-1)
	if span < 90 || span > 150 {
		t.Fatalf("mean inter-arrival %.1f drifted from 120", span)
	}
}

func TestDiurnalValidation(t *testing.T) {
	s := DefaultSpec()
	s.DiurnalAmp = 1.5
	if err := s.Validate(); err == nil {
		t.Fatal("amplitude > 1 accepted")
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		js := NewGenerator(DefaultSpec(), seed).Generate(n)
		var buf bytes.Buffer
		if err := WriteTrace(&buf, js); err != nil {
			return false
		}
		back, err := ReadTrace(&buf)
		if err != nil || len(back) != n {
			return false
		}
		for i := range js {
			if js[i].Nodes != back[i].Nodes || js[i].TrueRuntime != back[i].TrueRuntime ||
				js[i].Tag != back[i].Tag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
