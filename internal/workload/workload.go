// Package workload synthesizes batch workloads with the distributional
// knobs the survey's Q3 asks sites to describe: job counts and sizes, how
// long jobs run, queue backlog, throughput, and the capability/capacity
// mix. Since production traces from the nine centers are not public, the
// generator is the documented substitution — it is parameterized exactly in
// Q3's terms so each site profile can state its workload the way the survey
// answers do.
package workload

import (
	"fmt"
	"math"

	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
	"epajsrm/internal/stats"
)

// App is one application class. The energy-aware scheduling techniques in
// the survey hinge on per-application knowledge (LRZ characterizes each new
// app; tags drive history-based prediction), so jobs carry their app's tag.
type App struct {
	Tag      string
	PowerW   float64 // mean per-node draw at nominal frequency
	PowerSD  float64 // stddev of per-node draw across runs
	MemFrac  float64 // non-frequency-scaling fraction of runtime
	CommFrac float64 // communication-sensitive fraction (topology, Q6)
	Moldable bool
}

// DefaultApps returns a small catalog spanning the power/memory spectrum:
// compute-bound chemistry, memory-bound CFD, communication-heavy climate,
// bursty data analytics.
func DefaultApps() []App {
	return []App{
		{Tag: "md", PowerW: 340, PowerSD: 15, MemFrac: 0.10, CommFrac: 0.15, Moldable: true},
		{Tag: "qcd", PowerW: 320, PowerSD: 10, MemFrac: 0.20, CommFrac: 0.45, Moldable: false},
		{Tag: "cfd", PowerW: 260, PowerSD: 20, MemFrac: 0.55, CommFrac: 0.35, Moldable: true},
		{Tag: "climate", PowerW: 240, PowerSD: 18, MemFrac: 0.45, CommFrac: 0.50, Moldable: false},
		{Tag: "genomics", PowerW: 200, PowerSD: 25, MemFrac: 0.65, CommFrac: 0.05, Moldable: true},
		{Tag: "vis", PowerW: 150, PowerSD: 12, MemFrac: 0.40, CommFrac: 0.10, Moldable: false},
	}
}

// Spec describes a workload in Q3 terms.
type Spec struct {
	// ArrivalMeanSec is the mean inter-arrival time (Poisson process).
	ArrivalMeanSec float64
	// MinNodes/MaxNodes bound job widths; widths are drawn as powers of two
	// within the bounds (the standard shape of HPC size distributions).
	MinNodes, MaxNodes int
	// CapabilityFrac is the fraction of jobs drawn from the wide end (top
	// quarter of the log2 range) — Q3(d)'s capability vs capacity mix.
	CapabilityFrac float64
	// RuntimeMedianSec and RuntimeSigma parameterize the lognormal runtime.
	RuntimeMedianSec float64
	RuntimeSigma     float64
	// WalltimeFactorMax bounds the user's overestimate: walltime is drawn
	// uniformly in [1, WalltimeFactorMax] x true runtime (Mu'alem &
	// Feitelson document pervasive overestimation).
	WalltimeFactorMax float64
	// Apps is the application mix; nil uses DefaultApps, uniform weights.
	Apps []App
	// Users is how many distinct users submit; user i is "u<i>".
	Users int
	// PriorityLevels > 1 assigns random priorities in [0, PriorityLevels).
	PriorityLevels int
	// DiurnalAmp modulates the arrival rate over the day: 0 disables, 1
	// makes the 15:00 peak rate ~2x the mean and the 03:00 trough near
	// zero. Real submission streams are strongly diurnal, which matters to
	// every policy that shifts load in time (grid-aware, cooling-aware).
	DiurnalAmp float64
}

// DefaultSpec returns a medium-pressure workload for a 64-node system:
// ~45 min median runtime, widths 1-32, 15 % capability jobs.
func DefaultSpec() Spec {
	return Spec{
		ArrivalMeanSec:    600,
		MinNodes:          1,
		MaxNodes:          32,
		CapabilityFrac:    0.15,
		RuntimeMedianSec:  2700,
		RuntimeSigma:      1.0,
		WalltimeFactorMax: 3,
		Users:             20,
		PriorityLevels:    1,
	}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.ArrivalMeanSec <= 0 {
		return fmt.Errorf("workload: non-positive arrival mean")
	}
	if s.MinNodes <= 0 || s.MaxNodes < s.MinNodes {
		return fmt.Errorf("workload: bad node bounds [%d,%d]", s.MinNodes, s.MaxNodes)
	}
	if s.RuntimeMedianSec <= 0 {
		return fmt.Errorf("workload: non-positive runtime median")
	}
	if s.WalltimeFactorMax < 1 {
		return fmt.Errorf("workload: walltime factor < 1")
	}
	if s.CapabilityFrac < 0 || s.CapabilityFrac > 1 {
		return fmt.Errorf("workload: capability fraction out of [0,1]")
	}
	if s.DiurnalAmp < 0 || s.DiurnalAmp > 1 {
		return fmt.Errorf("workload: diurnal amplitude out of [0,1]")
	}
	return nil
}

// Generator produces jobs from a Spec deterministically from a seed.
type Generator struct {
	Spec Spec
	rng  *simulator.RNG
	next int64
	now  float64
	apps []App

	// arena, when set, backs Job records with slab chunks instead of
	// individual heap objects — see jobs.Arena. Field values are identical
	// either way.
	arena *jobs.Arena

	// userNames / projNames intern the formatted identity strings: a
	// million-job run would otherwise Sprintf two million tiny strings that
	// all repeat from a pool of a few dozen.
	userNames []string
	projNames []string
}

// UseArena backs subsequent Next calls with the given arena (nil reverts to
// per-job heap allocation).
func (g *Generator) UseArena(a *jobs.Arena) { g.arena = a }

func (g *Generator) userName(i int) string {
	for len(g.userNames) <= i {
		g.userNames = append(g.userNames, fmt.Sprintf("u%02d", len(g.userNames)))
	}
	return g.userNames[i]
}

func (g *Generator) projName(i int) string {
	for len(g.projNames) <= i {
		g.projNames = append(g.projNames, fmt.Sprintf("proj%d", len(g.projNames)))
	}
	return g.projNames[i]
}

// NewGenerator returns a generator; it panics on an invalid spec so that
// misconfigured experiments fail loudly.
func NewGenerator(spec Spec, seed uint64) *Generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	apps := spec.Apps
	if len(apps) == 0 {
		apps = DefaultApps()
	}
	return &Generator{Spec: spec, rng: simulator.NewRNG(seed), apps: apps}
}

// log2Sizes enumerates the power-of-two widths within the bounds, always
// including the exact bounds.
func (g *Generator) log2Sizes() []int {
	var sizes []int
	seen := map[int]bool{}
	add := func(n int) {
		if n >= g.Spec.MinNodes && n <= g.Spec.MaxNodes && !seen[n] {
			sizes = append(sizes, n)
			seen[n] = true
		}
	}
	add(g.Spec.MinNodes)
	for n := 1; n <= g.Spec.MaxNodes; n *= 2 {
		add(n)
	}
	add(g.Spec.MaxNodes)
	return sizes
}

// Next produces the next job in arrival order.
func (g *Generator) Next() *jobs.Job {
	s := g.Spec
	if s.DiurnalAmp > 0 {
		// Thinned Poisson process: draw candidate arrivals at the peak rate
		// and accept each with the instantaneous rate fraction. The rate
		// peaks mid-afternoon (15:00) and troughs at 03:00.
		peakMean := s.ArrivalMeanSec / (1 + s.DiurnalAmp)
		for {
			g.now += g.rng.Exp(peakMean)
			hour := math.Mod(g.now/3600, 24)
			rate := 1 + s.DiurnalAmp*math.Sin(2*math.Pi*(hour-9)/24)
			accept := rate / (1 + s.DiurnalAmp)
			if g.rng.Float64() < accept {
				break
			}
		}
	} else {
		g.now += g.rng.Exp(s.ArrivalMeanSec)
	}
	g.next++

	sizes := g.log2Sizes()
	var width int
	if g.rng.Float64() < s.CapabilityFrac {
		// Capability: top quarter of the size list (at least the largest).
		lo := len(sizes) * 3 / 4
		if lo >= len(sizes) {
			lo = len(sizes) - 1
		}
		width = sizes[g.rng.Range(lo, len(sizes)-1)]
	} else {
		// Capacity: weight small sizes more heavily (inverse width).
		w := make([]float64, len(sizes))
		for i, n := range sizes {
			w[i] = 1 / float64(n)
		}
		width = sizes[g.rng.Choice(w)]
	}

	mu := math.Log(s.RuntimeMedianSec)
	runSec := g.rng.LogNormal(mu, s.RuntimeSigma)
	if runSec < 60 {
		runSec = 60
	}
	run := simulator.Time(runSec)
	wallFactor := 1 + g.rng.Float64()*(s.WalltimeFactorMax-1)
	wall := simulator.Time(float64(run) * wallFactor)

	app := g.apps[g.rng.Intn(len(g.apps))]
	pw := g.rng.Normal(app.PowerW, app.PowerSD)
	if pw < 100 {
		pw = 100
	}

	users := s.Users
	if users <= 0 {
		users = 1
	}
	prio := 0
	if s.PriorityLevels > 1 {
		prio = g.rng.Intn(s.PriorityLevels)
	}

	j := &jobs.Job{}
	if g.arena != nil {
		j = g.arena.New()
	}
	*j = jobs.Job{
		ID:            g.next,
		User:          g.userName(g.rng.Intn(users)),
		Project:       g.projName(g.rng.Intn(8)),
		Tag:           app.Tag,
		Nodes:         width,
		Walltime:      wall,
		Priority:      prio,
		Submit:        simulator.Time(g.now),
		TrueRuntime:   run,
		PowerPerNodeW: pw,
		MemFrac:       app.MemFrac,
		CommFrac:      app.CommFrac,
	}
	if app.Moldable && width >= 2 {
		// Alternative shapes: half and double width with ideal-but-capped
		// scaling (90 % parallel efficiency per doubling).
		j.Mold = []jobs.MoldConfig{
			{Nodes: width, Runtime: run},
			{Nodes: width / 2, Runtime: simulator.Time(float64(run) * 2 * 0.9)},
		}
		if width*2 <= s.MaxNodes {
			j.Mold = append(j.Mold, jobs.MoldConfig{Nodes: width * 2, Runtime: simulator.Time(float64(run) / 2 / 0.9)})
		}
	}
	return j
}

// Generate produces n jobs in arrival order.
func (g *Generator) Generate(n int) []*jobs.Job {
	out := make([]*jobs.Job, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// Stats computes the survey-Q3(e) quantiles of a job set.
func Stats(js []*jobs.Job) (size, walltime stats.SurveyQuantiles) {
	var ss, ws stats.Sample
	for _, j := range js {
		ss.AddInt(j.Nodes)
		ws.Add(float64(j.TrueRuntime))
	}
	return ss.Q3e(), ws.Q3e()
}
