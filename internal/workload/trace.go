package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// Trace encoding: a line-oriented format modelled on the Standard Workload
// Format (SWF) used by the parallel workloads archive, extended with the
// power fields EPA JSRM needs. Columns, whitespace separated:
//
//	id submit_sec nodes true_runtime_sec walltime_sec power_per_node_w
//	mem_frac(0..1) priority user tag [comm_frac(0..1)]
//
// The trailing comm_frac column was added in v2; v1 traces (10 columns)
// decode with CommFrac = 0. Lines starting with ';' are comments (SWF
// convention).

// WriteTrace encodes jobs to w.
func WriteTrace(w io.Writer, js []*jobs.Job) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "; epajsrm trace v2")
	fmt.Fprintln(bw, "; id submit nodes runtime walltime power_w mem_frac prio user tag comm_frac")
	for _, j := range js {
		_, err := fmt.Fprintf(bw, "%d %d %d %d %d %.1f %.3f %d %s %s %.3f\n",
			j.ID, int64(j.Submit), j.Nodes, int64(j.TrueRuntime), int64(j.Walltime),
			j.PowerPerNodeW, j.MemFrac, j.Priority, orDash(j.User), orDash(j.Tag), j.CommFrac)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func dashEmpty(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// ReadTrace decodes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]*jobs.Job, error) {
	var out []*jobs.Job
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 10 && len(f) != 11 {
			return nil, fmt.Errorf("workload: trace line %d: want 10 or 11 fields, got %d", lineNo, len(f))
		}
		var (
			j   jobs.Job
			err error
		)
		if j.ID, err = strconv.ParseInt(f[0], 10, 64); err != nil {
			return nil, fmt.Errorf("workload: trace line %d id: %v", lineNo, err)
		}
		submit, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d submit: %v", lineNo, err)
		}
		j.Submit = simulator.Time(submit)
		if j.Nodes, err = strconv.Atoi(f[2]); err != nil {
			return nil, fmt.Errorf("workload: trace line %d nodes: %v", lineNo, err)
		}
		run, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d runtime: %v", lineNo, err)
		}
		j.TrueRuntime = simulator.Time(run)
		wall, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d walltime: %v", lineNo, err)
		}
		j.Walltime = simulator.Time(wall)
		if j.PowerPerNodeW, err = strconv.ParseFloat(f[5], 64); err != nil {
			return nil, fmt.Errorf("workload: trace line %d power: %v", lineNo, err)
		}
		if j.MemFrac, err = strconv.ParseFloat(f[6], 64); err != nil {
			return nil, fmt.Errorf("workload: trace line %d mem_frac: %v", lineNo, err)
		}
		if j.Priority, err = strconv.Atoi(f[7]); err != nil {
			return nil, fmt.Errorf("workload: trace line %d priority: %v", lineNo, err)
		}
		j.User = dashEmpty(f[8])
		j.Tag = dashEmpty(f[9])
		if len(f) == 11 {
			if j.CommFrac, err = strconv.ParseFloat(f[10], 64); err != nil {
				return nil, fmt.Errorf("workload: trace line %d comm_frac: %v", lineNo, err)
			}
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %v", lineNo, err)
		}
		out = append(out, &j)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
