package policy

import (
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/esp"
	"epajsrm/internal/jobs"
	"epajsrm/internal/power"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

func TestOverprovisionHoldsBudget(t *testing.T) {
	budget := 64*90 + 25*270.0
	p := &Overprovision{BudgetW: budget, PreferWide: true}
	m := newMgr(t, 1, p)
	submitN(t, m, 200, 31)
	peak := maxPowerDuring(m, 4*simulator.Day, 30*simulator.Second)
	if peak > budget*1.05 {
		t.Fatalf("peak %.0f exceeds budget %.0f", peak, budget)
	}
	if m.Metrics.Completed < 150 {
		t.Fatalf("completed = %d", m.Metrics.Completed)
	}
}

func TestOverprovisionReshapesMoldableJobs(t *testing.T) {
	idle := 64 * 90.0
	p := &Overprovision{BudgetW: idle + 1200, PreferWide: false}
	m := newMgr(t, 2, p)
	// Moldable job wants 8 nodes (+8*210 = 1680 W > headroom 1200) but has
	// a 4-node shape (+840 W) that fits.
	j := testJob(1, 8, simulator.Hour, 300, 0.2)
	j.Mold = []jobs.MoldConfig{
		{Nodes: 8, Runtime: simulator.Hour},
		{Nodes: 4, Runtime: 2 * simulator.Hour},
	}
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.Nodes != 4 {
		t.Fatalf("job ran at %d nodes, want reshaped to 4", j.Nodes)
	}
	if p.Reshapes != 1 {
		t.Fatalf("reshapes = %d", p.Reshapes)
	}
}

func TestOverprovisionBeatsFullyPoweredSmallCluster(t *testing.T) {
	// E5's shape (Sarood et al.): at a fixed power budget, more capped
	// nodes beat fewer uncapped nodes. Budget runs ~32 nodes flat out.
	budget := 32*330.0 + 32*15 // 32 busy + 32 off-ish worth of budget
	horizon := 3 * simulator.Day

	// Baseline: a 32-node machine, no caps, same budget implicitly.
	small := core.NewManager(core.Options{
		Cluster: cluster.Config{
			Name: "small", Nodes: 32, NodesPerRack: 16, RacksPerPDU: 2, PDUsPerChiller: 2,
			Sockets: 2, CoresPerSocket: 16, MemGB: 128,
			BootDelay: 3 * simulator.Minute, ShutdownDelay: simulator.Minute,
		},
		Scheduler: sched.EASY{},
		Seed:      3,
	})
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 200 // saturating pressure
	js := workload.NewGenerator(spec, 37).Generate(400)
	for _, j := range js {
		if err := small.Submit(j, j.Submit); err != nil {
			t.Fatal(err)
		}
	}
	small.Run(horizon)

	// Over-provisioned: 64 nodes under the same budget with caps + shaping.
	over := newMgr(t, 3, &Overprovision{BudgetW: budget, PreferWide: true})
	js2 := workload.NewGenerator(spec, 37).Generate(400)
	for _, j := range js2 {
		if err := over.Submit(j, j.Submit); err != nil {
			t.Fatal(err)
		}
	}
	over.Run(horizon)

	if over.Metrics.NodeSecondsDone <= small.Metrics.NodeSecondsDone {
		t.Fatalf("over-provisioned throughput %.0f <= small fully-powered %.0f",
			over.Metrics.NodeSecondsDone, small.Metrics.NodeSecondsDone)
	}
}

func TestEnergyTagCharacterizesThenDownclocks(t *testing.T) {
	p := &EnergyTag{Goal: GoalEnergyToSolution, MaxSlowdown: 1.4}
	m := newMgr(t, 4, p)
	// Memory-bound app: downclocking is profitable.
	first := testJob(1, 4, simulator.Hour, 330, 0.7)
	first.Tag = "cfd"
	second := testJob(2, 4, simulator.Hour, 330, 0.7)
	second.Tag = "cfd"
	if err := m.Submit(first, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(second, 5*simulator.Hour); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if first.FreqFrac != 1 {
		t.Fatalf("characterization run frequency = %f, want nominal", first.FreqFrac)
	}
	if second.FreqFrac >= 1 {
		t.Fatalf("second run frequency = %f, want downclocked", second.FreqFrac)
	}
	if p.Characterized != 1 {
		t.Fatalf("characterized tags = %d", p.Characterized)
	}
	// Energy-to-solution must improve.
	e1 := first.EnergyJ
	e2 := second.EnergyJ
	if e2 >= e1 {
		t.Fatalf("downclocked energy %.0f >= nominal %.0f", e2, e1)
	}
	// And the slowdown bound must hold.
	stretch := float64(second.End-second.Start) / float64(first.End-first.Start)
	if stretch > 1.4+0.01 {
		t.Fatalf("stretch %.2f exceeds MaxSlowdown", stretch)
	}
}

func TestEnergyTagPerformanceGoalKeepsNominal(t *testing.T) {
	p := &EnergyTag{Goal: GoalPerformance}
	m := newMgr(t, 5, p)
	for i := int64(1); i <= 3; i++ {
		j := testJob(i, 2, simulator.Hour, 330, 0.7)
		j.Tag = "cfd"
		if err := m.Submit(j, simulator.Time(i-1)*2*simulator.Hour); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(-1)
	if m.Metrics.Completed != 3 {
		t.Fatalf("completed = %d", m.Metrics.Completed)
	}
	// With GoalPerformance every job runs at nominal frequency and
	// therefore at its true runtime.
	if got := m.Metrics.RunTimes.Max(); got != float64(simulator.Hour) {
		t.Fatalf("max runtime = %f, want nominal %d", got, simulator.Hour)
	}
}

func TestEnergyTagComputeBoundStaysFast(t *testing.T) {
	p := &EnergyTag{Goal: GoalEnergyToSolution, MaxSlowdown: 1.2}
	m := newMgr(t, 6, p)
	// Compute-bound app: downclocking costs runtime ~1/f, so within a tight
	// slowdown bound the best frequency stays at or near nominal.
	for i := int64(1); i <= 2; i++ {
		j := testJob(i, 2, simulator.Hour, 360, 0.0)
		j.Tag = "md"
		if err := m.Submit(j, simulator.Time(i-1)*3*simulator.Hour); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(-1)
	if got := p.BestFrac("md"); got < 0.83 {
		t.Fatalf("compute-bound best frequency %f violates the 1.2x slowdown bound", got)
	}
}

func TestRuntimeBalanceCriticalBeatsUniform(t *testing.T) {
	// Under manufacturing variability, equalizing effective frequency beats
	// a uniform per-node split at equal job budget (the GEOPM claim, E14).
	mkMgr := func(mode BalanceMode) (*core.Manager, *jobs.Job) {
		m := core.NewManager(core.Options{
			Cluster:   cluster.DefaultConfig(),
			Scheduler: sched.EASY{},
			Seed:      7,
			VarSigma:  0.08,
		})
		m.Use(&RuntimeBalance{JobBudgetPerNodeW: 280, Mode: mode})
		j := testJob(1, 16, 2*simulator.Hour, 360, 0.1)
		j.Walltime = 12 * simulator.Hour
		if err := m.Submit(j, 0); err != nil {
			t.Fatal(err)
		}
		return m, j
	}
	mu, ju := mkMgr(BalanceUniform)
	mu.Run(-1)
	mc, jc := mkMgr(BalanceCritical)
	mc.Run(-1)
	if ju.State != jobs.StateCompleted || jc.State != jobs.StateCompleted {
		t.Fatalf("states %v/%v", ju.State, jc.State)
	}
	tu := ju.End - ju.Start
	tc := jc.End - jc.Start
	if tc >= tu {
		t.Fatalf("critical-path balance %v not faster than uniform %v", tc, tu)
	}
	// Both must respect the job budget while running.
	// (Uniform trivially: per-node caps; critical: sum of caps = budget.)
}

func TestRuntimeBalanceCriticalRespectsBudget(t *testing.T) {
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      8,
		VarSigma:  0.08,
	})
	m.Use(&RuntimeBalance{JobBudgetPerNodeW: 250, Mode: BalanceCritical})
	j := testJob(1, 8, simulator.Hour, 360, 0.1)
	j.Walltime = 12 * simulator.Hour
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	var jobPower float64
	m.Eng.After(1, "probe", func(simulator.Time) {
		jobPower = m.Pw.PowerOfNodes(m.JobNodes(1))
	})
	m.Run(-1)
	budget := 8 * 250.0
	if jobPower > budget*1.01 {
		t.Fatalf("job draw %.0f exceeds budget %.0f", jobPower, budget)
	}
	if jobPower < budget*0.90 {
		t.Fatalf("job draw %.0f leaves >10%% of budget unused — balance too loose", jobPower)
	}
}

func TestGridAwareHoldsWideJobsAtPeak(t *testing.T) {
	prov := &esp.Provider{Tariff: esp.PeakTariff(0.10, 0.30)}
	p := &GridAware{Provider: prov, PeakMaxNodes: 8}
	m := newMgr(t, 9, p)
	// Submit a wide job during peak hours (hour 9).
	wide := testJob(1, 32, simulator.Hour, 250, 0.3)
	if err := m.Submit(wide, 9*simulator.Hour); err != nil {
		t.Fatal(err)
	}
	narrow := testJob(2, 4, simulator.Hour, 250, 0.3)
	if err := m.Submit(narrow, 9*simulator.Hour); err != nil {
		t.Fatal(err)
	}
	m.Run(2 * simulator.Day)
	if narrow.Start != 9*simulator.Hour {
		t.Fatalf("narrow job should start immediately, started %v", narrow.Start)
	}
	// Wide job waits for off-peak (22:00).
	if wide.Start < 22*simulator.Hour {
		t.Fatalf("wide job started at %v, inside peak window", wide.Start)
	}
	if p.HeldAtPeak == 0 {
		t.Fatal("no peak holds recorded")
	}
	if p.Meter.Cost <= 0 {
		t.Fatal("cost meter never accumulated")
	}
}

func TestGridAwareDemandResponseGate(t *testing.T) {
	idle := 64 * 90.0
	prov := &esp.Provider{
		Tariff: esp.FlatTariff(0.1),
		Events: []esp.DemandResponse{{From: 0, Until: 4 * simulator.Hour, LimitW: idle + 500}},
	}
	p := &GridAware{Provider: prov}
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      10,
	})
	m.Use(p)
	j := testJob(1, 8, simulator.Hour, 300, 0.2) // +1680 W, over the DR limit
	if err := m.Submit(j, simulator.Hour); err != nil {
		t.Fatal(err)
	}
	m.Run(simulator.Day)
	if j.Start < 4*simulator.Hour {
		t.Fatalf("job started at %v during the DR event", j.Start)
	}
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
}

func TestGridAwareDRKillShedsLoadOnSurpriseEvent(t *testing.T) {
	// Announced events are pre-drained by the look-ahead gate; the kill
	// switch exists for *surprise* requests that arrive while jobs run.
	prov := &esp.Provider{Tariff: esp.FlatTariff(0.1)}
	p := &GridAware{Provider: prov, DRKill: true, Period: simulator.Minute}
	m := core.NewManager(core.Options{Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: 11})
	m.Use(p)
	j := testJob(1, 8, 6*simulator.Hour, 300, 0.2)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Eng.After(2*simulator.Hour, "surprise-dr", func(now simulator.Time) {
		prov.Events = append(prov.Events, esp.DemandResponse{
			From: now, Until: now + simulator.Hour, LimitW: 64*90 + 500,
		})
	})
	m.Run(simulator.Day)
	if j.State != jobs.StateKilled {
		t.Fatalf("state = %v, want killed by demand response", j.State)
	}
	if p.DRKills != 1 {
		t.Fatalf("DR kills = %d", p.DRKills)
	}
}

func TestGridAwareLookaheadPreDrainsAnnouncedEvents(t *testing.T) {
	// An announced event is honored without any kill or preemption: jobs
	// that would straddle it over-limit are simply held until it passes.
	prov := &esp.Provider{
		Tariff: esp.FlatTariff(0.1),
		Events: []esp.DemandResponse{{From: 2 * simulator.Hour, Until: 3 * simulator.Hour, LimitW: 64*90 + 500}},
	}
	p := &GridAware{Provider: prov, DRPreempt: true, Period: simulator.Minute}
	m := core.NewManager(core.Options{Cluster: cluster.DefaultConfig(), Scheduler: sched.EASY{}, Seed: 12})
	m.Use(p)
	j := testJob(1, 8, 6*simulator.Hour, 300, 0.2)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(simulator.Day)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.Start < 3*simulator.Hour {
		t.Fatalf("job started at %v, inside the pre-drain horizon", j.Start)
	}
	if p.DRKills != 0 || p.DRPreempts != 0 {
		t.Fatalf("announced event should need no shedding: kills=%d preempts=%d", p.DRKills, p.DRPreempts)
	}
}

func TestInterSystemBudgetSharesByDemand(t *testing.T) {
	eng := simulator.NewEngine()
	mk := func(seed uint64) *core.Manager {
		return core.NewManager(core.Options{
			Cluster:   cluster.DefaultConfig(),
			Scheduler: sched.EASY{},
			Seed:      seed,
			Engine:    eng,
		})
	}
	m1, m2 := mk(1), mk(2)
	budget := 2*64*90 + 20*270.0
	coord := NewInterSystemBudget(budget, simulator.Minute, m1, m2)

	// System 1 is heavily loaded; system 2 idle.
	for i := int64(1); i <= 10; i++ {
		j := testJob(i, 8, 2*simulator.Hour, 330, 0.2)
		if err := m1.Submit(j, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Probe shares while system 1 is actually loaded (shares equalize again
	// once the work drains).
	var loadedShare, idleShare float64
	eng.After(30*simulator.Minute, "probe", func(simulator.Time) {
		loadedShare, idleShare = coord.Share(0), coord.Share(1)
	})
	eng.RunUntil(simulator.Day)
	if coord.Rebalances == 0 {
		t.Fatal("coordinator never ran")
	}
	if loadedShare <= idleShare {
		t.Fatalf("loaded system share %.0f should exceed idle %.0f", loadedShare, idleShare)
	}
	// Floor guarantee.
	if idleShare < budget*0.2/2 {
		t.Fatalf("idle system share %.0f below the floor", idleShare)
	}
	if m1.Metrics.Completed == 0 {
		t.Fatal("loaded system made no progress")
	}
	// Combined instantaneous power within budget (gates enforce at starts).
	if got := coord.TotalPower(); got > budget*1.05 {
		t.Fatalf("combined power %.0f over joint budget %.0f", got, budget)
	}
}

func TestInterSystemBudgetValidation(t *testing.T) {
	eng := simulator.NewEngine()
	m1 := core.NewManager(core.Options{Cluster: cluster.DefaultConfig(), Engine: eng, Seed: 1})
	for _, f := range []func(){
		func() { NewInterSystemBudget(0, 0, m1, m1) },
		func() { NewInterSystemBudget(100, 0, m1) },
		func() {
			m2 := core.NewManager(core.Options{Cluster: cluster.DefaultConfig(), Seed: 2})
			NewInterSystemBudget(100, 0, m1, m2) // different engines
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

var _ = power.DefaultNodeModel
