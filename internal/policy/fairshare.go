package policy

import (
	"fmt"
	"math"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// FairShare implements the "fairness" scheduling goal Q3(d) lists:
// each user's historical consumption — here measured in *energy*, the EPA
// twist production fairshare implementations are growing — decays with a
// half-life, and jobs from heavy consumers are deprioritized at admission.
// Because the batch queue orders by (priority, FIFO), adjusting priority at
// admission is exactly how SLURM-style multifactor fairshare lands in
// practice.
type FairShare struct {
	// HalfLife is the usage decay half-life (default 1 day).
	HalfLife simulator.Time
	// Levels is how many priority levels fairshare spreads users across
	// (default 5). Jobs keep their base priority plus a fairshare offset in
	// [0, Levels).
	Levels int
	// ChargeEnergy charges users by consumed joules; when false, node-
	// seconds are charged (the classic CPU-fairshare).
	ChargeEnergy bool

	usage   map[string]float64
	lastDec simulator.Time
	m       *core.Manager
}

// Name implements core.Policy.
func (p *FairShare) Name() string {
	unit := "node-seconds"
	if p.ChargeEnergy {
		unit = "energy"
	}
	return fmt.Sprintf("fairshare(%s,t1/2=%s)", unit, p.HalfLife)
}

// Attach implements core.Policy.
func (p *FairShare) Attach(m *core.Manager) {
	if p.HalfLife <= 0 {
		p.HalfLife = simulator.Day
	}
	if p.Levels <= 1 {
		p.Levels = 5
	}
	p.usage = map[string]float64{}
	p.m = m

	m.OnAdmit(func(m *core.Manager, j *jobs.Job) (bool, string) {
		p.decay(m.Eng.Now())
		j.Priority += p.offset(j.User)
		return true, ""
	})
	m.OnJobEnd(func(m *core.Manager, j *jobs.Job) {
		if j.State != jobs.StateCompleted && j.State != jobs.StateKilled {
			return
		}
		p.decay(m.Eng.Now())
		if p.ChargeEnergy {
			p.usage[j.User] += j.EnergyJ
		} else {
			p.usage[j.User] += float64(j.Nodes) * float64(j.End-j.Start)
		}
	})
}

// decay applies exponential decay to all usage counters since the last
// decay instant.
func (p *FairShare) decay(now simulator.Time) {
	dt := float64(now - p.lastDec)
	if dt <= 0 {
		return
	}
	f := math.Pow(0.5, dt/float64(p.HalfLife))
	for u := range p.usage {
		p.usage[u] *= f
		if p.usage[u] < 1e-9 {
			delete(p.usage, u)
		}
	}
	p.lastDec = now
}

// offset maps a user's decayed usage to a priority offset: the heaviest
// user gets 0, unknown/light users get Levels-1.
func (p *FairShare) offset(user string) int {
	mine := p.usage[user]
	if mine == 0 {
		return p.Levels - 1
	}
	maxU := 0.0
	for _, u := range p.usage {
		if u > maxU {
			maxU = u
		}
	}
	if maxU == 0 {
		return p.Levels - 1
	}
	frac := mine / maxU // 1 = heaviest
	off := int(float64(p.Levels) * (1 - frac))
	if off >= p.Levels {
		off = p.Levels - 1
	}
	if off < 0 {
		off = 0
	}
	return off
}

// Usage exposes a user's decayed consumption (for reports/tests).
func (p *FairShare) Usage(user string) float64 { return p.usage[user] }
