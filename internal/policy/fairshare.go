package policy

import (
	"fmt"
	"math"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// ShareLedger is the decayed-usage core of fair-share arbitration: each
// principal's historical consumption decays exponentially with a half-life,
// and rankings derive from the decayed totals. FairShare uses it to bias
// job priorities inside one simulation; the multi-tenant service layer
// (internal/service) reuses the same ledger to arbitrate which tenant's
// queued run gets the next execution slot — the survey's shared-facility
// fairness goal applied one level up the stack.
//
// Time is whatever monotonic clock the owner supplies (virtual simulator
// time for the in-sim policy, wall-clock seconds for the service); the
// ledger only ever subtracts instants, so the origin is irrelevant.
type ShareLedger struct {
	// HalfLife is the usage decay half-life. NewShareLedger defaults it to
	// one day of seconds when non-positive.
	HalfLife simulator.Time

	usage   map[string]float64
	lastDec simulator.Time
}

// NewShareLedger builds a ledger with the given half-life (<= 0 selects one
// day).
func NewShareLedger(halfLife simulator.Time) *ShareLedger {
	if halfLife <= 0 {
		halfLife = simulator.Day
	}
	return &ShareLedger{HalfLife: halfLife, usage: map[string]float64{}}
}

// Decay applies exponential decay to all usage counters since the last
// decay instant. Callers pass their current time before charging or
// ranking; a non-advancing clock is a no-op.
func (l *ShareLedger) Decay(now simulator.Time) {
	dt := float64(now - l.lastDec)
	if dt <= 0 {
		return
	}
	f := math.Pow(0.5, dt/float64(l.HalfLife))
	for u := range l.usage {
		l.usage[u] *= f
		if l.usage[u] < 1e-9 {
			delete(l.usage, u)
		}
	}
	l.lastDec = now
}

// Charge adds consumption to a principal's decayed total.
func (l *ShareLedger) Charge(user string, amount float64) {
	l.usage[user] += amount
}

// Usage returns a principal's decayed consumption.
func (l *ShareLedger) Usage(user string) float64 { return l.usage[user] }

// Rank maps a principal's decayed usage onto [0, levels): the heaviest
// consumer gets 0, unknown or light consumers get levels-1. Higher rank
// means more deserving of the next unit of service — exactly the priority
// offset SLURM-style multifactor fairshare applies at admission.
func (l *ShareLedger) Rank(user string, levels int) int {
	mine := l.usage[user]
	if mine == 0 {
		return levels - 1
	}
	maxU := 0.0
	for _, u := range l.usage {
		if u > maxU {
			maxU = u
		}
	}
	if maxU == 0 {
		return levels - 1
	}
	frac := mine / maxU // 1 = heaviest
	off := int(float64(levels) * (1 - frac))
	if off >= levels {
		off = levels - 1
	}
	if off < 0 {
		off = 0
	}
	return off
}

// FairShare implements the "fairness" scheduling goal Q3(d) lists:
// each user's historical consumption — here measured in *energy*, the EPA
// twist production fairshare implementations are growing — decays with a
// half-life, and jobs from heavy consumers are deprioritized at admission.
// Because the batch queue orders by (priority, FIFO), adjusting priority at
// admission is exactly how SLURM-style multifactor fairshare lands in
// practice.
type FairShare struct {
	// HalfLife is the usage decay half-life (default 1 day).
	HalfLife simulator.Time
	// Levels is how many priority levels fairshare spreads users across
	// (default 5). Jobs keep their base priority plus a fairshare offset in
	// [0, Levels).
	Levels int
	// ChargeEnergy charges users by consumed joules; when false, node-
	// seconds are charged (the classic CPU-fairshare).
	ChargeEnergy bool

	ledger *ShareLedger
	m      *core.Manager
}

// Name implements core.Policy.
func (p *FairShare) Name() string {
	unit := "node-seconds"
	if p.ChargeEnergy {
		unit = "energy"
	}
	return fmt.Sprintf("fairshare(%s,t1/2=%s)", unit, p.HalfLife)
}

// Attach implements core.Policy.
func (p *FairShare) Attach(m *core.Manager) {
	if p.HalfLife <= 0 {
		p.HalfLife = simulator.Day
	}
	if p.Levels <= 1 {
		p.Levels = 5
	}
	p.ledger = NewShareLedger(p.HalfLife)
	p.m = m

	m.OnAdmit(func(m *core.Manager, j *jobs.Job) (bool, string) {
		p.ledger.Decay(m.Eng.Now())
		j.Priority += p.ledger.Rank(j.User, p.Levels)
		return true, ""
	})
	m.OnJobEnd(func(m *core.Manager, j *jobs.Job) {
		if j.State != jobs.StateCompleted && j.State != jobs.StateKilled {
			return
		}
		p.ledger.Decay(m.Eng.Now())
		if p.ChargeEnergy {
			p.ledger.Charge(j.User, j.EnergyJ)
		} else {
			p.ledger.Charge(j.User, float64(j.Nodes)*float64(j.End-j.Start))
		}
	})
}

// Usage exposes a user's decayed consumption (for reports/tests).
func (p *FairShare) Usage(user string) float64 { return p.ledger.Usage(user) }
