package policy

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// MaintenanceWindow announces that an infrastructure element will be
// serviced during [From, Until).
type MaintenanceWindow struct {
	PDU     int // -1 if this window targets a chiller
	Chiller int // -1 if this window targets a PDU
	From    simulator.Time
	Until   simulator.Time
}

// LayoutAware is CEA's SLURM "layout logic": the scheduler knows which
// PDUs and chillers each node depends on and avoids placing jobs on nodes
// whose infrastructure will be under maintenance before the job could
// finish (judged by walltime). At window start the infrastructure is marked
// down — any stragglers are the operators' problem in production; here the
// filter guarantees there are none, which the tests assert.
type LayoutAware struct {
	Windows []MaintenanceWindow

	// Avoided counts placement decisions where the filter excluded a node.
	Avoided int

	m *core.Manager
}

// Name implements core.Policy.
func (p *LayoutAware) Name() string { return fmt.Sprintf("layout-aware(%d windows)", len(p.Windows)) }

// Attach implements core.Policy.
func (p *LayoutAware) Attach(m *core.Manager) {
	p.m = m
	for _, w := range p.Windows {
		w := w
		if _, err := m.Eng.At(w.From, "maintenance-start", func(now simulator.Time) {
			p.setMaint(w, true)
		}); err != nil {
			panic(err)
		}
		if _, err := m.Eng.At(w.Until, "maintenance-end", func(now simulator.Time) {
			p.setMaint(w, false)
			m.TrySchedule(now)
		}); err != nil {
			panic(err)
		}
	}
	m.OnNodeFilter(func(m *core.Manager, j *jobs.Job, n *cluster.Node) bool {
		now := m.Eng.Now()
		jobEnd := now + j.Walltime
		for _, w := range p.Windows {
			if w.Until <= now || w.From >= jobEnd {
				continue // window does not overlap the job's possible run
			}
			if (w.PDU >= 0 && n.PDU == w.PDU) || (w.Chiller >= 0 && n.Chiller == w.Chiller) {
				p.Avoided++
				return false
			}
		}
		return true
	})
}

func (p *LayoutAware) setMaint(w MaintenanceWindow, on bool) {
	if w.PDU >= 0 {
		p.m.Cl.SetPDUMaintenance(w.PDU, on)
	}
	if w.Chiller >= 0 {
		p.m.Cl.SetChillerMaintenance(w.Chiller, on)
	}
}
