package policy

import (
	"sort"

	"epajsrm/internal/core"
	"epajsrm/internal/esp"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// GridAware connects the job scheduler to the electricity service provider
// — the integration RIKEN researches ("integrating job scheduler info with
// decision to use grid vs. gas turbine energy") and the ESP-SC
// relationship studies (Bates et al. [6], Patki et al. [36]) motivate.
// Behaviour:
//
//   - During peak-tariff hours, jobs wider than PeakMaxNodes are held, so
//     big power ramps land in cheap hours.
//   - During an active demand-response event the event's limit gates job
//     starts (and an optional kill switch sheds load).
//   - A cost meter attributes energy to grid vs on-site generation,
//     choosing the cheaper source as RIKEN's turbine decision does.
type GridAware struct {
	Provider *esp.Provider
	// PeakMaxNodes is the widest job started during peak price; 0 disables
	// peak shifting.
	PeakMaxNodes int
	// DRKill allows killing jobs to honor a demand-response limit that
	// gating alone cannot reach.
	DRKill bool
	// DRPreempt checkpoints-and-requeues jobs instead of killing them when
	// an active demand-response limit is exceeded (takes precedence over
	// DRKill). With the checkpoint substrate active each victim drains
	// through a demand-checkpoint write before its power drops, so the
	// shedding loop counts in-flight drains (core.Manager.PendingShedW)
	// as good as shed.
	DRPreempt bool
	// Period is the control interval.
	Period simulator.Time

	// Meter accumulates cost; HeldAtPeak counts deferrals.
	Meter      *esp.CostMeter
	HeldAtPeak int
	DRKills    int
	DRPreempts int

	m *core.Manager
}

// Name implements core.Policy.
func (p *GridAware) Name() string { return "grid-aware" }

// Attach implements core.Policy.
func (p *GridAware) Attach(m *core.Manager) {
	if p.Provider == nil {
		panic("policy: GridAware needs a provider")
	}
	if p.Period <= 0 {
		p.Period = simulator.Minute
	}
	p.m = m
	p.Meter = esp.NewCostMeter(p.Provider)

	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		now := m.Eng.Now()
		if limit, ok := p.Provider.ActiveDR(now); ok {
			if p.sitePower(now)+m.EstimatedStartPower(j) > limit {
				return false
			}
		}
		// Look ahead: a job whose walltime straddles an upcoming
		// demand-response window must also fit that window's limit —
		// otherwise the site enters the event already over it (the same
		// pre-draining CEA's layout logic does for maintenance).
		for _, e := range p.Provider.Events {
			if e.From > now && e.From < now+j.Walltime {
				if p.sitePower(now)+m.EstimatedStartPower(j) > e.LimitW {
					return false
				}
			}
		}
		if p.PeakMaxNodes > 0 && p.Provider.Tariff.IsPeak(now) && j.Nodes > p.PeakMaxNodes {
			p.HeldAtPeak++
			return false
		}
		return true
	})

	m.ScheduleEvery(p.Period, "grid-aware", func(now simulator.Time) {
		p.Meter.Observe(now, p.sitePower(now))
		if limit, ok := p.Provider.ActiveDR(now); ok && (p.DRKill || p.DRPreempt) {
			if p.DRPreempt {
				p.shedByPreemption(now, limit)
			} else {
				for p.sitePower(now) > limit {
					victim := p.youngest()
					if victim == nil {
						break
					}
					if m.KillJob(victim.ID, "demand response", now) {
						p.DRKills++
					} else {
						break
					}
				}
			}
		}
		m.TrySchedule(now)
	})
}

// shedByPreemption preempts running jobs, youngest first, until the site
// power projected after in-flight checkpoint drains commit fits the
// demand-response limit.
func (p *GridAware) shedByPreemption(now simulator.Time, limit float64) {
	m := p.m
	victims := m.Running()
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].Start != victims[j].Start {
			return victims[i].Start > victims[j].Start // youngest first
		}
		return victims[i].ID < victims[j].ID
	})
	for _, v := range victims {
		if p.sitePowerLessShed(now) <= limit {
			return
		}
		if m.PreemptJob(v.ID, now) {
			p.DRPreempts++
		}
	}
}

// sitePowerLessShed projects site power as if all in-flight preemption
// drains had already committed (the facility transform applies to the
// projected IT draw).
func (p *GridAware) sitePowerLessShed(now simulator.Time) float64 {
	it := p.m.Pw.TotalPower() - p.m.PendingShedW()
	if p.m.Fac != nil {
		return p.m.Fac.SitePower(now, it)
	}
	return it
}

func (p *GridAware) sitePower(now simulator.Time) float64 {
	it := p.m.Pw.TotalPower()
	if p.m.Fac != nil {
		return p.m.Fac.SitePower(now, it)
	}
	return it
}

func (p *GridAware) youngest() *jobs.Job {
	var pick *jobs.Job
	for _, j := range p.m.Running() {
		if pick == nil || j.Start > pick.Start {
			pick = j
		}
	}
	return pick
}
