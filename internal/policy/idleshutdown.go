package policy

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/simulator"
)

// IdleShutdown powers off nodes that have been idle longer than a
// threshold and boots them back on demand — Tokyo Tech's production row
// ("resource manager shuts down nodes that have been idle for a long
// time") and Mämmelä et al. [33]. A spare pool of idle nodes is kept up so
// short jobs do not always pay the boot delay.
type IdleShutdown struct {
	// IdleAfter is how long a node must sit idle before shutdown.
	IdleAfter simulator.Time
	// MinSpare idle nodes are always kept powered.
	MinSpare int
	// Period is the scan interval.
	Period simulator.Time

	// Shutdowns and Boots count actuations.
	Shutdowns, Boots int

	m *core.Manager
}

// Name implements core.Policy.
func (p *IdleShutdown) Name() string { return fmt.Sprintf("idle-shutdown(%s)", p.IdleAfter) }

// Attach implements core.Policy.
func (p *IdleShutdown) Attach(m *core.Manager) {
	if p.IdleAfter <= 0 {
		p.IdleAfter = 15 * simulator.Minute
	}
	if p.Period <= 0 {
		p.Period = simulator.Minute
	}
	p.m = m
	m.ScheduleEvery(p.Period, "idle-shutdown", p.scan)
}

// scan shuts down long-idle nodes beyond the spare pool and boots nodes
// when queued demand exceeds what is up.
func (p *IdleShutdown) scan(now simulator.Time) {
	m := p.m

	// Demand: nodes wanted by the queue beyond currently available+booting.
	// Jobs held back by another policy's start gate (power caps, demand
	// response, MS3) do not count — booting nodes for them would only burn
	// power against the very condition holding them.
	demand := 0
	for _, j := range m.Queue.Jobs() {
		if m.StartGatesOpen(j) {
			demand += j.Nodes
		}
	}
	avail := 0
	booting := 0
	var idle []*cluster.Node
	var off []*cluster.Node
	for _, n := range m.Cl.Nodes {
		switch n.State {
		case cluster.StateIdle:
			if !n.Maintenance && !m.Cl.InfraMaintenance(n) {
				avail++
				idle = append(idle, n)
			}
		case cluster.StateBooting:
			booting++
		case cluster.StateOff:
			if !n.Maintenance && !m.Cl.InfraMaintenance(n) {
				off = append(off, n)
			}
		}
	}

	need := demand - avail - booting
	if need > 0 {
		// Boot what the queue needs (bounded by what exists).
		for i := 0; i < need && i < len(off); i++ {
			if err := m.Ctrl.PowerOn(off[i].ID, func(t simulator.Time) {
				m.TrySchedule(t)
			}); err == nil {
				p.Boots++
			}
		}
		return
	}

	// Shut down surplus long-idle nodes, keeping MinSpare. VM hosts are
	// never powered off: their guests are invisible to the batch system
	// (Tokyo Tech: VMs "complicate physical node shutdown").
	surplus := avail - demand - p.MinSpare
	for _, n := range idle {
		if surplus <= 0 {
			break
		}
		if n.VMHost || now-n.StateSince < p.IdleAfter {
			continue
		}
		if err := m.Ctrl.PowerOff(n.ID); err == nil {
			p.Shutdowns++
			surplus--
		}
	}
}
