package policy

import (
	"testing"

	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

func TestStaticCapAppliesCapsToPool(t *testing.T) {
	p := &StaticCap{CapW: 270, UncappedFrac: 0.30}
	m := newMgr(t, 1, p)
	capped, uncapped := 0, 0
	for _, n := range m.Cl.Nodes {
		switch n.CapW {
		case 270:
			capped++
		case 0:
			uncapped++
		default:
			t.Fatalf("node %d unexpected cap %f", n.ID, n.CapW)
		}
	}
	// 64 nodes, 30% uncapped = 19 (int truncation), 45 capped.
	if uncapped != 19 || capped != 45 {
		t.Fatalf("capped/uncapped = %d/%d, want 45/19", capped, uncapped)
	}
	for i := 0; i < 64; i++ {
		if p.Uncapped(i) != (m.Cl.Nodes[i].CapW == 0) {
			t.Fatalf("Uncapped(%d) inconsistent", i)
		}
	}
}

func TestStaticCapReducesPeakPower(t *testing.T) {
	base := newMgr(t, 2)
	submitN(t, base, 150, 7)
	basePeak := maxPowerDuring(base, 3*simulator.Day, simulator.Minute)

	capped := newMgr(t, 2, &StaticCap{CapW: 200, UncappedFrac: 0})
	submitN(t, capped, 150, 7)
	capPeak := maxPowerDuring(capped, 3*simulator.Day, simulator.Minute)

	if capPeak >= basePeak {
		t.Fatalf("capped peak %.0f >= uncapped %.0f", capPeak, basePeak)
	}
	// Hard bound: every node at 200 W.
	if capPeak > 64*200+1 {
		t.Fatalf("capped peak %.0f exceeds 64x200", capPeak)
	}
}

func TestStaticCapRouteHungrySteersJobs(t *testing.T) {
	p := &StaticCap{CapW: 270, UncappedFrac: 0.30, RouteHungry: true}
	m := newMgr(t, 3, p)
	hungry := testJob(1, 4, simulator.Hour, 340, 0.1) // above the cap
	cool := testJob(2, 4, simulator.Hour, 180, 0.5)   // below the cap
	if err := m.Submit(hungry, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(cool, 0); err != nil {
		t.Fatal(err)
	}
	var hungryNodes []int
	m.Eng.After(1, "check", func(now simulator.Time) {
		for _, n := range m.JobNodes(1) {
			hungryNodes = append(hungryNodes, n.ID)
		}
	})
	m.Run(-1)
	if len(hungryNodes) != 4 {
		t.Fatalf("hungry job placement missing: %v", hungryNodes)
	}
	for _, id := range hungryNodes {
		if !p.Uncapped(id) {
			t.Fatalf("hungry job landed on capped node %d", id)
		}
	}
}

func TestStaticCapPanicsOnBadConfig(t *testing.T) {
	for _, p := range []*StaticCap{
		{CapW: 0, UncappedFrac: 0.3},
		{CapW: 270, UncappedFrac: 1.0},
		{CapW: 270, UncappedFrac: -0.1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", p)
				}
			}()
			newMgr(t, 1, p)
		}()
	}
}

func TestDynamicSharingHoldsBudget(t *testing.T) {
	budget := 64*90 + 20*270.0 // idle floor + room for ~20 busy nodes
	p := &DynamicPowerSharing{BudgetW: budget, Period: 30 * simulator.Second}
	m := newMgr(t, 4, p)
	submitN(t, m, 200, 9)
	peak := maxPowerDuring(m, 4*simulator.Day, 30*simulator.Second)
	// The gate blocks overcommitment at starts and caps bind between
	// rebalances; allow a small margin for boot transients.
	if peak > budget*1.05 {
		t.Fatalf("peak %.0f exceeded budget %.0f by >5%%", peak, budget)
	}
	if p.Rebalances == 0 {
		t.Fatal("rebalance loop never ran")
	}
	if m.Metrics.Completed == 0 {
		t.Fatal("nothing completed under the budget")
	}
}

func TestDynamicSharingBeatsUniformStatic(t *testing.T) {
	// Same total budget; dynamic sharing should complete at least as much
	// work because unneeded budget moves to demanding nodes (Ellsworth's
	// result, KAUST's SDPM motivation). Workload mixes hungry and cool jobs.
	budget := 64 * 180.0
	horizon := 4 * simulator.Day

	uniform := newMgr(t, 5)
	for _, n := range uniform.Cl.Nodes {
		if err := uniform.Ctrl.SetNodeCap(n.ID, budget/64); err != nil {
			t.Fatal(err)
		}
	}
	submitN(t, uniform, 250, 11)
	uniform.Run(horizon)

	dynamic := newMgr(t, 5, &DynamicPowerSharing{BudgetW: budget})
	submitN(t, dynamic, 250, 11)
	dynamic.Run(horizon)

	if dynamic.Metrics.NodeSecondsDone < uniform.Metrics.NodeSecondsDone {
		t.Fatalf("dynamic sharing throughput %.0f < uniform static %.0f",
			dynamic.Metrics.NodeSecondsDone, uniform.Metrics.NodeSecondsDone)
	}
}

func TestDVFSBudgetHoldsBudgetViaFrequency(t *testing.T) {
	budget := 64*90 + 30*200.0
	p := &DVFSBudget{BudgetW: budget, Period: 30 * simulator.Second, StartUnderBudget: true}
	m := newMgr(t, 6, p)
	submitN(t, m, 200, 13)
	peak := maxPowerDuring(m, 4*simulator.Day, 30*simulator.Second)
	if peak > budget*1.10 {
		t.Fatalf("peak %.0f exceeded budget %.0f by >10%%", peak, budget)
	}
	if p.Downshifts == 0 && p.Upshifts == 0 {
		t.Log("note: DVFS loop never actuated (budget loose for this workload)")
	}
	if m.Metrics.Completed < 100 {
		t.Fatalf("only %d completions", m.Metrics.Completed)
	}
}

func TestDVFSBudgetStartsJobsSlowWhenTight(t *testing.T) {
	// Budget admits the job only below nominal frequency.
	idleFloor := 64 * 90.0
	job := testJob(1, 8, simulator.Hour, 360, 0)
	// At nominal the job adds 8*(360-90) = 2160 W. Budget allows ~half.
	p := &DVFSBudget{BudgetW: idleFloor + 1100, StartUnderBudget: true}
	m := newMgr(t, 7, p)
	if err := m.Submit(job, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if job.State != jobs.StateCompleted {
		t.Fatalf("state = %v", job.State)
	}
	if job.FreqFrac >= 1 {
		t.Fatalf("job should have started below nominal, frac=%f", job.FreqFrac)
	}
	if job.End-job.Start <= simulator.Hour {
		t.Fatal("slowed job cannot match nominal runtime")
	}
}

func TestGroupCapAppliesPerRack(t *testing.T) {
	p := &GroupCap{PerNodeW: map[int]float64{0: 200, 2: 250}}
	m := newMgr(t, 8, p)
	for _, n := range m.Cl.Nodes {
		want := 0.0
		switch n.Rack {
		case 0:
			want = 200
		case 2:
			want = 250
		}
		if n.CapW != want {
			t.Fatalf("node %d (rack %d) cap = %f, want %f", n.ID, n.Rack, n.CapW, want)
		}
	}
	if p.Applied != 2 {
		t.Fatalf("applied = %d", p.Applied)
	}
}

func TestGroupCapEmergencyAndLift(t *testing.T) {
	p := &GroupCap{}
	m := newMgr(t, 9, p)
	j := testJob(1, 4, simulator.Hour, 300, 0)
	j.Walltime = 10 * simulator.Hour
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Eng.After(10*simulator.Minute, "emergency", func(now simulator.Time) {
		p.EmergencyCap(150, now)
		if m.Pw.TotalPower() > 64*150+1 {
			t.Errorf("power after emergency cap = %f", m.Pw.TotalPower())
		}
	})
	m.Eng.After(20*simulator.Minute, "lift", func(now simulator.Time) {
		p.Lift(now)
		for _, n := range m.Cl.Nodes {
			if n.CapW != 0 {
				t.Errorf("cap not lifted on node %d", n.ID)
			}
		}
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("job state = %v", j.State)
	}
	// The 10 capped minutes must have stretched the runtime.
	if j.End-j.Start <= simulator.Hour {
		t.Fatal("emergency cap had no effect on runtime")
	}
}

func TestGroupCapSetRackCapAtRuntime(t *testing.T) {
	p := &GroupCap{}
	m := newMgr(t, 10, p)
	m.Eng.After(1, "cap", func(now simulator.Time) {
		p.SetRackCap(1, 180, now)
	})
	m.Run(-1)
	for _, n := range m.Cl.Nodes {
		if n.Rack == 1 && n.CapW != 180 {
			t.Fatalf("rack 1 node %d cap = %f", n.ID, n.CapW)
		}
		if n.Rack != 1 && n.CapW != 0 {
			t.Fatalf("rack %d node %d unexpectedly capped", n.Rack, n.ID)
		}
	}
}
