package policy

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// InterSystemBudget coordinates two systems that share one facility power
// budget — Tokyo Tech's technology-development row: "Inter-system power
// capping. TSUBAME2 and TSUBAME3 will need to share the facility power
// budget." The coordinator periodically splits the budget between the
// systems in proportion to their demand (running draw plus queued
// pressure), and each side enforces its share with a start gate.
//
// The two managers must share one simulator engine (core.Options.Engine).
type InterSystemBudget struct {
	// BudgetW is the joint facility IT budget.
	BudgetW float64
	// Period is the rebalance interval.
	Period simulator.Time
	// MinShareFrac guarantees each system a floor so neither starves.
	MinShareFrac float64

	shares []float64
	mgrs   []*core.Manager

	// Rebalances counts coordinator passes.
	Rebalances int
}

// NewInterSystemBudget creates a coordinator over the given managers (at
// least two), all on one engine.
func NewInterSystemBudget(budgetW float64, period simulator.Time, mgrs ...*core.Manager) *InterSystemBudget {
	if budgetW <= 0 {
		panic("policy: InterSystemBudget needs a positive budget")
	}
	if len(mgrs) < 2 {
		panic("policy: InterSystemBudget needs at least two systems")
	}
	eng := mgrs[0].Eng
	for _, m := range mgrs[1:] {
		if m.Eng != eng {
			panic("policy: InterSystemBudget managers must share one engine")
		}
	}
	if period <= 0 {
		period = 5 * simulator.Minute
	}
	p := &InterSystemBudget{
		BudgetW:      budgetW,
		Period:       period,
		MinShareFrac: 0.2,
		mgrs:         mgrs,
		shares:       make([]float64, len(mgrs)),
	}
	// Initial even split.
	for i := range p.shares {
		p.shares[i] = budgetW / float64(len(mgrs))
	}
	for i, m := range mgrs {
		i := i
		m.Use(&interSystemSide{parent: p, idx: i})
	}
	eng.Every(period, "inter-system-budget", p.rebalance)
	return p
}

// Share returns system i's current budget share.
func (p *InterSystemBudget) Share(i int) float64 { return p.shares[i] }

// TotalPower sums the systems' current IT draw.
func (p *InterSystemBudget) TotalPower() float64 {
	t := 0.0
	for _, m := range p.mgrs {
		t += m.Pw.TotalPower()
	}
	return t
}

// wantMore scores how much additional power a system could use if granted
// more budget: the estimated draw of its queue backlog.
func (p *InterSystemBudget) wantMore(m *core.Manager) float64 {
	d := 0.0
	for _, j := range m.Queue.Jobs() {
		d += m.EstimatedStartPower(j)
	}
	return d
}

// rebalance grants each system its *current draw* (running jobs are never
// stranded above their share — the no-kill constraint Tokyo Tech's row
// emphasizes) plus a demand-proportional slice of the remaining headroom,
// with a small guaranteed floor so an idle system can always start
// something.
func (p *InterSystemBudget) rebalance(now simulator.Time) {
	p.Rebalances++
	n := float64(len(p.mgrs))
	cur := make([]float64, len(p.mgrs))
	want := make([]float64, len(p.mgrs))
	curSum, wantSum := 0.0, 0.0
	for i, m := range p.mgrs {
		cur[i] = m.Pw.TotalPower()
		want[i] = p.wantMore(m)
		curSum += cur[i]
		wantSum += want[i]
	}
	headroom := p.BudgetW - curSum
	if headroom < 0 {
		headroom = 0
	}
	floor := p.BudgetW * p.MinShareFrac / n
	for i := range p.mgrs {
		share := cur[i]
		if wantSum > 0 {
			share += headroom * want[i] / wantSum
		} else {
			share += headroom / n
		}
		if share < floor {
			share = floor
		}
		p.shares[i] = share
	}
	for _, m := range p.mgrs {
		m.TrySchedule(now)
	}
}

// interSystemSide is the per-system enforcement half: a start gate against
// the system's current share.
type interSystemSide struct {
	parent *InterSystemBudget
	idx    int
}

// Name implements core.Policy.
func (s *interSystemSide) Name() string {
	return fmt.Sprintf("inter-system-share[%d]", s.idx)
}

// Attach implements core.Policy.
func (s *interSystemSide) Attach(m *core.Manager) {
	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		return m.Pw.TotalPower()+m.EstimatedStartPower(j) <= s.parent.shares[s.idx]
	})
}
