package policy

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// RampLimit bounds how fast the site's power draw may rise — the paper's
// introduction names "the rate of change and magnitude of system power
// fluctuations" as a core motivation, and electricity providers charge for
// (or forbid) steep ramps (Bates et al.). The policy tracks the power
// added by job starts inside a sliding window and holds further starts
// once the window's ramp budget is spent; large jobs therefore start in
// staggered cohorts rather than as one step function.
type RampLimit struct {
	// MaxRampW is the largest allowed power increase per window.
	MaxRampW float64
	// Window is the ramp accounting window (default 5 minutes).
	Window simulator.Time

	// Held counts gate decisions that deferred a start.
	Held int

	recent []rampEntry
	m      *core.Manager
}

type rampEntry struct {
	at   simulator.Time
	addW float64
}

// Name implements core.Policy.
func (p *RampLimit) Name() string {
	return fmt.Sprintf("ramp-limit(%.0fkW/%s)", p.MaxRampW/1000, p.Window)
}

// Attach implements core.Policy.
func (p *RampLimit) Attach(m *core.Manager) {
	if p.MaxRampW <= 0 {
		panic("policy: RampLimit needs a positive ramp budget")
	}
	if p.Window <= 0 {
		p.Window = 5 * simulator.Minute
	}
	p.m = m
	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		add := m.EstimatedStartPower(j)
		if p.windowAdd(m.Eng.Now())+add > p.MaxRampW {
			p.Held++
			return false
		}
		return true
	})
	m.OnJobStart(func(m *core.Manager, j *jobs.Job, _ []*cluster.Node) {
		p.recent = append(p.recent, rampEntry{at: m.Eng.Now(), addW: m.EstimatedStartPower(j)})
	})
	// Re-try held jobs as budget rolls out of the window.
	m.ScheduleEvery(p.Window/5+1, "ramp-limit", func(now simulator.Time) {
		m.TrySchedule(now)
	})
}

// windowAdd sums the start power added inside the trailing window, also
// trimming expired entries.
func (p *RampLimit) windowAdd(now simulator.Time) float64 {
	cutoff := now - p.Window
	trim := 0
	for trim < len(p.recent) && p.recent[trim].at < cutoff {
		trim++
	}
	p.recent = p.recent[trim:]
	t := 0.0
	for _, e := range p.recent {
		t += e.addW
	}
	return t
}
