package policy

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/simulator"
)

// GroupCap reproduces JCAHPC's production capability: "ability to set power
// caps for groups of nodes via the resource manager (Fujitsu proprietary
// product)" plus "manual emergency response, admin sets power cap". Groups
// are rack-aligned; an administrator (or an experiment) calls SetRackCap /
// EmergencyCap at any time and the caps are pushed through the out-of-band
// control plane.
type GroupCap struct {
	// PerNodeW maps rack index to the per-node cap applied to that rack;
	// entries are installed at attach time.
	PerNodeW map[int]float64

	// Applied counts cap actuations.
	Applied int

	m *core.Manager
}

// Name implements core.Policy.
func (p *GroupCap) Name() string { return fmt.Sprintf("group-cap(%d racks)", len(p.PerNodeW)) }

// Attach implements core.Policy.
func (p *GroupCap) Attach(m *core.Manager) {
	p.m = m
	for rack, capW := range p.PerNodeW {
		p.applyRack(rack, capW)
	}
}

func (p *GroupCap) applyRack(rack int, capW float64) {
	var ids []int
	for _, n := range p.m.Cl.Nodes {
		if n.Rack == rack {
			ids = append(ids, n.ID)
		}
	}
	if err := p.m.Ctrl.SetGroupCap(ids, capW); err != nil {
		panic(err)
	}
	p.Applied++
}

// SetRackCap changes one rack's per-node cap at runtime and retimes
// affected jobs.
func (p *GroupCap) SetRackCap(rack int, capW float64, now simulator.Time) {
	p.applyRack(rack, capW)
	p.m.RetimeAll(now)
}

// EmergencyCap is the manual response: cap every node at capW immediately.
func (p *GroupCap) EmergencyCap(capW float64, now simulator.Time) {
	var ids []int
	for _, n := range p.m.Cl.Nodes {
		ids = append(ids, n.ID)
	}
	if err := p.m.Ctrl.SetGroupCap(ids, capW); err != nil {
		panic(err)
	}
	p.Applied++
	p.m.RetimeAll(now)
}

// Lift removes all caps.
func (p *GroupCap) Lift(now simulator.Time) {
	for _, n := range p.m.Cl.Nodes {
		if err := p.m.Ctrl.SetNodeCap(n.ID, 0); err != nil {
			panic(err)
		}
	}
	p.m.RetimeAll(now)
}
