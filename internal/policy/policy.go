// Package policy implements the EPA JSRM techniques catalogued by the
// survey — one type per capability row in Tables I/II and per technique
// family in the related-work section. Every policy plugs into
// core.Manager through the hook surface in internal/core and actuates the
// power substrate in internal/power, mirroring Figure 1's architecture:
// monitoring and control of both resources and energy/power.
package policy

import "epajsrm/internal/core"

// compile-time conformance checks for every policy in the package.
var (
	_ core.Policy = (*StaticCap)(nil)
	_ core.Policy = (*DynamicPowerSharing)(nil)
	_ core.Policy = (*DVFSBudget)(nil)
	_ core.Policy = (*IdleShutdown)(nil)
	_ core.Policy = (*BootWindowCap)(nil)
	_ core.Policy = (*MS3)(nil)
	_ core.Policy = (*EnergyTag)(nil)
	_ core.Policy = (*Emergency)(nil)
	_ core.Policy = (*Overprovision)(nil)
	_ core.Policy = (*LayoutAware)(nil)
	_ core.Policy = (*EnergyReport)(nil)
	_ core.Policy = (*RuntimeBalance)(nil)
	_ core.Policy = (*GridAware)(nil)
	_ core.Policy = (*GroupCap)(nil)
	_ core.Policy = (*TopologyAware)(nil)
	_ core.Policy = (*CapabilityWindow)(nil)
	_ core.Policy = (*RampLimit)(nil)
	_ core.Policy = (*CoolingAware)(nil)
	_ core.Policy = (*FairShare)(nil)
	_ core.Policy = (*QueueRules)(nil)
)
