package policy

import (
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/power"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
)

func TestTopologyAwareCompactForCommHeavy(t *testing.T) {
	p := &TopologyAware{CommThreshold: 0.2}
	m := newMgr(t, 1, p)
	j := testJob(1, 8, simulator.Hour, 250, 0.3)
	j.CommFrac = 0.5
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	var span int
	m.Eng.After(1, "check", func(simulator.Time) {
		span = cluster.PlacementSpan(m.JobNodes(1))
	})
	m.Run(-1)
	if span > 1 {
		t.Fatalf("comm-heavy 8-node job on an empty machine got span %d, want <= 1 (one rack)", span)
	}
	if p.CompactPlacements != 1 {
		t.Fatalf("compact placements = %d", p.CompactPlacements)
	}
	// The comm slowdown must have been 1 (single rack): exactly nominal
	// runtime.
	if got := j.End - j.Start; got != simulator.Hour {
		t.Fatalf("runtime %v, want nominal (no comm penalty at span<=1)", got)
	}
}

func TestTopologyAwareScatterForHungryJobs(t *testing.T) {
	p := &TopologyAware{CommThreshold: 0.9, HungryW: 300}
	m := newMgr(t, 2, p)
	j := testJob(1, 8, simulator.Hour, 350, 0.3) // hungry, not comm-heavy
	j.CommFrac = 0.0
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	var perPDU []float64
	m.Eng.After(1, "check", func(simulator.Time) {
		perPDU, _ = m.Cl.PDUPower(func(id int) float64 {
			if m.Cl.Nodes[id].JobID == 1 {
				return 1 // count job nodes per PDU
			}
			return 0
		})
	})
	m.Run(-1)
	if p.ScatterPlacements != 1 {
		t.Fatalf("scatter placements = %d", p.ScatterPlacements)
	}
	// 8 nodes over 2 PDUs: a scatter should split 4/4, compact would do 8/0.
	if perPDU[0] != 4 || perPDU[1] != 4 {
		t.Fatalf("hungry job PDU split = %v, want [4 4]", perPDU)
	}
}

func TestCommSlowdownAppliedForSpreadPlacement(t *testing.T) {
	// Force a spread placement by occupying most of rack 0, then compare
	// runtime against the compact case.
	m := newMgr(t, 3)
	blocker := testJob(99, 60, 10*simulator.Hour, 150, 0.3) // leaves 4 idle spread nodes
	if err := m.Submit(blocker, 0); err != nil {
		t.Fatal(err)
	}
	j := testJob(1, 4, simulator.Hour, 250, 0.3)
	j.CommFrac = 0.5
	if err := m.Submit(j, 1); err != nil {
		t.Fatal(err)
	}
	m.Run(2 * simulator.Hour)
	if j.State != jobs.StateRunning && j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	// With compact-first allocation the blocker packs racks 0-3 leaving the
	// tail nodes; j's 4 nodes land on the last rack => span 1 => nominal.
	// Occupancy patterns can vary; assert the invariant instead: runtime
	// equals nominal * commSlowdown for the observed span.
	span := cluster.PlacementSpan(m.Cl.JobNodes(1))
	wantSlow := 1.0
	if span > 1 {
		wantSlow = (1 - 0.5) + 0.5*(1+0.05*float64(span-1))
	}
	m.Run(-1)
	got := float64(j.End - j.Start)
	want := float64(simulator.Hour) * wantSlow
	if got < want-2 || got > want+2 {
		t.Fatalf("runtime %v, want %.0f (span %d, slow %.3f)", got, want, span, wantSlow)
	}
}

func TestCapabilityWindowGates(t *testing.T) {
	p := &CapabilityWindow{WideNodes: 32, WindowDays: 3, MonthDays: 30, HoldWideOutside: true}
	m := newMgr(t, 4, p)
	// A wide job submitted on day 5 (outside the window) must wait for day
	// 30 (next window). A small job submitted inside the window (day 1)
	// must wait until the window ends (day 3).
	wide := testJob(1, 48, 2*simulator.Hour, 250, 0.3)
	if err := m.Submit(wide, 5*simulator.Day); err != nil {
		t.Fatal(err)
	}
	small := testJob(2, 2, simulator.Hour, 250, 0.3)
	if err := m.Submit(small, simulator.Day); err != nil {
		t.Fatal(err)
	}
	m.Run(32 * simulator.Day)
	if wide.State != jobs.StateCompleted || small.State != jobs.StateCompleted {
		t.Fatalf("states %v/%v", wide.State, small.State)
	}
	if wide.Start < 30*simulator.Day {
		t.Fatalf("wide job started day %.1f, want >= 30", float64(wide.Start)/float64(simulator.Day))
	}
	if small.Start < 3*simulator.Day {
		t.Fatalf("small job started day %.2f, inside the capability window", float64(small.Start)/float64(simulator.Day))
	}
	if p.HeldWide == 0 || p.HeldSmall == 0 {
		t.Fatalf("holds: wide=%d small=%d", p.HeldWide, p.HeldSmall)
	}
}

func TestCapabilityWindowInWindow(t *testing.T) {
	p := &CapabilityWindow{WideNodes: 32, WindowDays: 3, MonthDays: 30}
	cases := []struct {
		day  int
		want bool
	}{{0, true}, {2, true}, {3, false}, {29, false}, {30, true}, {33, false}}
	for _, c := range cases {
		if got := p.InWindow(simulator.Time(c.day) * simulator.Day); got != c.want {
			t.Errorf("day %d in window = %v, want %v", c.day, got, c.want)
		}
	}
}

func TestRampLimitStaggersStarts(t *testing.T) {
	p := &RampLimit{MaxRampW: 1000, Window: 10 * simulator.Minute}
	m := newMgr(t, 5, p)
	// Each job adds 4*(300-90) = 840 W at start: only one fits per window.
	var js []*jobs.Job
	for i := int64(1); i <= 3; i++ {
		j := testJob(i, 4, 2*simulator.Hour, 300, 0.3)
		js = append(js, j)
		if err := m.Submit(j, 0); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(simulator.Day)
	for _, j := range js {
		if j.State != jobs.StateCompleted {
			t.Fatalf("job %d state %v", j.ID, j.State)
		}
	}
	// Starts must be separated by at least one window.
	starts := []simulator.Time{js[0].Start, js[1].Start, js[2].Start}
	for i := 1; i < 3; i++ {
		if starts[i]-starts[i-1] < 10*simulator.Minute {
			t.Fatalf("starts %v not staggered by the window", starts)
		}
	}
	if p.Held == 0 {
		t.Fatal("ramp limit never held")
	}
}

func TestRampLimitBoundsObservedRamp(t *testing.T) {
	p := &RampLimit{MaxRampW: 2000, Window: 5 * simulator.Minute}
	m := newMgr(t, 6, p)
	submitN(t, m, 100, 51)
	// Probe power every 30 s; max rise over any 5-minute window must stay
	// near the budget (job ends can only lower power).
	var series []float64
	m.Eng.Every(30*simulator.Second, "probe", func(simulator.Time) {
		series = append(series, m.Pw.TotalPower())
	})
	m.Run(3 * simulator.Day)
	windowSamples := 10 // 5 min / 30 s
	worst := 0.0
	for i := windowSamples; i < len(series); i++ {
		rise := series[i] - series[i-windowSamples]
		if rise > worst {
			worst = rise
		}
	}
	if worst > 2000*1.2 {
		t.Fatalf("worst 5-min ramp %.0f W exceeds the 2000 W budget by >20%%", worst)
	}
}

func TestCoolingAwareDefersUntilCool(t *testing.T) {
	m := newMgr(t, 7) // default facility: PUE rises above 15 C
	p := &CoolingAware{MaxPUE: 1.12, DeferBelowPriority: 5}
	m.Use(p)
	// Mid-summer afternoon (day 91 ~ hottest): a deferrable job waits, an
	// urgent one runs.
	hotAfternoon := 91*simulator.Day + 6*simulator.Hour // daily sine peaks at t%day = 6h
	deferrable := testJob(1, 2, simulator.Hour, 250, 0.3)
	deferrable.Priority = 0
	urgent := testJob(2, 2, simulator.Hour, 250, 0.3)
	urgent.Priority = 9
	if err := m.Submit(deferrable, hotAfternoon); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(urgent, hotAfternoon); err != nil {
		t.Fatal(err)
	}
	m.Run(hotAfternoon + 2*simulator.Day)
	if urgent.Start != hotAfternoon {
		t.Fatalf("urgent job deferred to %v", urgent.Start)
	}
	if deferrable.Start == hotAfternoon {
		t.Fatal("deferrable job ran at peak PUE")
	}
	if m.Fac.PUE(deferrable.Start) > 1.12+1e-9 {
		t.Fatalf("deferrable job started at PUE %.3f > threshold", m.Fac.PUE(deferrable.Start))
	}
	if p.Held == 0 {
		t.Fatal("never held")
	}
}

func TestCoolingAwareAntiStarvation(t *testing.T) {
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      8,
		Facility:  alwaysHotFacility(),
	})
	p := &CoolingAware{MaxPUE: 1.05, DeferBelowPriority: 5, MaxDefer: 6 * simulator.Hour}
	m.Use(p)
	j := testJob(1, 2, simulator.Hour, 250, 0.3)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(2 * simulator.Day)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state %v", j.State)
	}
	if j.Start < 6*simulator.Hour || j.Start > 7*simulator.Hour {
		t.Fatalf("anti-starvation release at %v, want ~6h", j.Start)
	}
}

func TestCoolingAwareRequiresFacility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without facility")
		}
	}()
	m := core.NewManager(core.Options{Cluster: cluster.DefaultConfig(), Seed: 1})
	m.Use(&CoolingAware{})
}

func alwaysHotFacility() *power.Facility {
	f := power.DefaultFacility()
	f.Climate = power.Climate{MeanC: 40}
	return f
}
