package policy

import (
	"fmt"
	"sort"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
)

// JobReport is the post-job energy statement several sites deliver in
// production ("energy use provided to users at end of every job" — Tokyo
// Tech; "delivering post-job energy use reports to users" — JCAHPC).
type JobReport struct {
	JobID     int64
	User      string
	Tag       string
	Nodes     int
	EnergyKWh float64
	AvgNodeW  float64
	// Mark grades power efficiency A–E against the fleet (Tokyo Tech
	// "gives users mark on how well they used power and energy"): A means
	// the job's average node draw was among the lowest quintile relative to
	// the machine's dynamic range.
	Mark byte
}

// EnergyReport collects per-job energy accounting and per-user summaries.
type EnergyReport struct {
	Reports []JobReport

	perUserKWh map[string]float64
	m          *core.Manager
}

// Name implements core.Policy.
func (p *EnergyReport) Name() string { return "energy-report" }

// Attach implements core.Policy.
func (p *EnergyReport) Attach(m *core.Manager) {
	p.perUserKWh = map[string]float64{}
	p.m = m
	m.OnJobEnd(func(m *core.Manager, j *jobs.Job) {
		if j.State != jobs.StateCompleted && j.State != jobs.StateKilled {
			return
		}
		dur := float64(j.End - j.Start)
		if dur <= 0 || j.Nodes == 0 {
			return
		}
		avgW := j.EnergyJ / dur / float64(j.Nodes)
		r := JobReport{
			JobID:     j.ID,
			User:      j.User,
			Tag:       j.Tag,
			Nodes:     j.Nodes,
			EnergyKWh: j.EnergyJ / 3.6e6,
			AvgNodeW:  avgW,
			Mark:      p.mark(avgW),
		}
		p.Reports = append(p.Reports, r)
		p.perUserKWh[j.User] += r.EnergyKWh
	})
}

// mark grades a job's average node draw within the machine's idle..max
// dynamic range: lower draw for finished work earns a better letter.
func (p *EnergyReport) mark(avgW float64) byte {
	lo := p.m.Pw.Model.IdleW
	hi := p.m.Pw.Model.MaxW
	if hi <= lo {
		return 'C'
	}
	x := (avgW - lo) / (hi - lo)
	switch {
	case x < 0.2:
		return 'A'
	case x < 0.4:
		return 'B'
	case x < 0.6:
		return 'C'
	case x < 0.8:
		return 'D'
	default:
		return 'E'
	}
}

// UserSummary returns (user, kWh) pairs sorted by consumption descending —
// the fine- and coarse-granularity user reporting STFC deploys.
func (p *EnergyReport) UserSummary() []struct {
	User string
	KWh  float64
} {
	type row struct {
		User string
		KWh  float64
	}
	var rows []row
	for u, k := range p.perUserKWh {
		rows = append(rows, row{u, k})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].KWh != rows[j].KWh {
			return rows[i].KWh > rows[j].KWh
		}
		return rows[i].User < rows[j].User
	})
	out := make([]struct {
		User string
		KWh  float64
	}, len(rows))
	for i, r := range rows {
		out[i] = struct {
			User string
			KWh  float64
		}{r.User, r.KWh}
	}
	return out
}

// String renders the most recent report, for the examples.
func (r JobReport) String() string {
	return fmt.Sprintf("job %d (%s/%s, %d nodes): %.2f kWh, %.0f W/node, mark %c",
		r.JobID, r.User, r.Tag, r.Nodes, r.EnergyKWh, r.AvgNodeW, r.Mark)
}
