package policy

import (
	"testing"

	"epajsrm/internal/checkpoint"
	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

func TestFairShareDeprioritizesHeavyUser(t *testing.T) {
	p := &FairShare{HalfLife: simulator.Day, Levels: 5}
	m := newMgr(t, 1, p)
	// Heavy user burns the machine first.
	for i := int64(1); i <= 4; i++ {
		j := testJob(i, 16, simulator.Hour, 300, 0.2)
		j.User = "heavy"
		if err := m.Submit(j, simulator.Time(i-1)*simulator.Hour); err != nil {
			t.Fatal(err)
		}
	}
	// Later, both users submit simultaneously into a full machine: the
	// light user's job must start first despite submitting second.
	blocker := testJob(50, 64, simulator.Hour, 200, 0.2)
	blocker.User = "other"
	if err := m.Submit(blocker, 6*simulator.Hour); err != nil {
		t.Fatal(err)
	}
	heavyJob := testJob(51, 32, simulator.Hour, 300, 0.2)
	heavyJob.User = "heavy"
	lightJob := testJob(52, 32, simulator.Hour, 300, 0.2)
	lightJob.User = "light"
	if err := m.Submit(heavyJob, 6*simulator.Hour+1); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(lightJob, 6*simulator.Hour+2); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if lightJob.Start > heavyJob.Start {
		t.Fatalf("light user's job started at %v, after heavy user's %v", lightJob.Start, heavyJob.Start)
	}
	if p.Usage("heavy") <= p.Usage("light") {
		t.Fatalf("usage accounting wrong: heavy=%f light=%f", p.Usage("heavy"), p.Usage("light"))
	}
}

func TestFairShareUsageDecays(t *testing.T) {
	p := &FairShare{HalfLife: simulator.Hour}
	m := newMgr(t, 2, p)
	j := testJob(1, 8, simulator.Hour, 300, 0.2)
	j.User = "u"
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	u0 := p.Usage("u")
	if u0 <= 0 {
		t.Fatal("no usage charged")
	}
	p.ledger.Decay(j.End + simulator.Hour)
	u1 := p.Usage("u")
	if u1 < u0*0.49 || u1 > u0*0.51 {
		t.Fatalf("after one half-life usage = %f, want ~%f", u1, u0/2)
	}
}

// TestShareLedgerStandalone exercises the extracted ledger the way the
// multi-tenant service layer uses it: charge tenants directly, decay on a
// caller-supplied clock, and rank the lightest consumer highest.
func TestShareLedgerStandalone(t *testing.T) {
	l := NewShareLedger(simulator.Hour)
	l.Decay(0)
	l.Charge("heavy", 1000)
	l.Charge("light", 10)
	if l.Rank("heavy", 5) != 0 {
		t.Fatalf("heaviest consumer rank = %d, want 0", l.Rank("heavy", 5))
	}
	if got := l.Rank("light", 5); got != 4 {
		t.Fatalf("light consumer rank = %d, want 4", got)
	}
	if got := l.Rank("new", 5); got != 4 {
		t.Fatalf("unknown consumer rank = %d, want 4", got)
	}
	l.Decay(simulator.Hour)
	if u := l.Usage("heavy"); u < 499 || u > 501 {
		t.Fatalf("after one half-life heavy usage = %f, want ~500", u)
	}
	// Tiny residues are dropped entirely so the map cannot grow without
	// bound across tenants that stopped submitting.
	l.Decay(100 * simulator.Day)
	if u := l.Usage("light"); u != 0 {
		t.Fatalf("fully decayed usage = %f, want 0 (entry dropped)", u)
	}
}

func TestFairShareEnergyCharging(t *testing.T) {
	p := &FairShare{HalfLife: 100 * simulator.Day, ChargeEnergy: true}
	m := newMgr(t, 3, p)
	hungry := testJob(1, 4, simulator.Hour, 360, 0.1)
	hungry.User = "hungry"
	frugal := testJob(2, 4, simulator.Hour, 120, 0.5)
	frugal.User = "frugal"
	if err := m.Submit(hungry, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(frugal, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	// Same node-seconds, different energy: the energy-charging fairshare
	// must distinguish them.
	if p.Usage("hungry") <= p.Usage("frugal")*2 {
		t.Fatalf("energy charge hungry=%f frugal=%f: want 3x gap", p.Usage("hungry"), p.Usage("frugal"))
	}
}

func TestPreemptJobPreservesProgress(t *testing.T) {
	m := newMgr(t, 4)
	m.FreeCheckpoint = true                      // asserts the idealized instant save/resume path
	j := testJob(1, 4, 2*simulator.Hour, 300, 0) // compute-bound, 2h of work
	j.Walltime = 10 * simulator.Hour
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	// Preempt at t=1h, hold the gate until t=2h, then let it resume.
	gateOpen := true
	m.OnStartGate(func(_ *core.Manager, jj *jobs.Job) bool { return gateOpen })
	m.Eng.After(simulator.Hour, "preempt", func(now simulator.Time) {
		gateOpen = false
		if !m.PreemptJob(1, now) {
			t.Error("preempt failed")
		}
		if j.State != jobs.StateQueued {
			t.Errorf("state after preempt = %v", j.State)
		}
	})
	m.Eng.After(2*simulator.Hour, "resume", func(now simulator.Time) {
		gateOpen = true
		m.TrySchedule(now)
	})
	m.Run(-1)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	// 1h done before preempt + 1h remaining after resume at t=2h: done at 3h.
	if j.End != 3*simulator.Hour {
		t.Fatalf("end = %v, want 3h (progress preserved)", j.End)
	}
	if m.Metrics.Preemptions != 1 {
		t.Fatalf("preemptions = %d", m.Metrics.Preemptions)
	}
}

func TestEmergencyCheckpointModeLosesNoJobs(t *testing.T) {
	limit := 64*90 + 10*270.0
	p := &Emergency{LimitW: limit, Checkpoint: true, Period: 30 * simulator.Second}
	m := newMgr(t, 5, p)
	// A real (costed) checkpoint substrate: preempted jobs drain through a
	// demand-checkpoint write and later resume from the image.
	m.Ckpt = checkpoint.NewModel(checkpoint.Config{BWGBps: 10, StateFrac: 0.3, IOPowerW: 20})
	for i := int64(1); i <= 8; i++ {
		j := testJob(i, 8, 2*simulator.Hour, 360, 0.2)
		if err := m.Submit(j, 0); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(3 * simulator.Day)
	if m.Metrics.Killed != 0 {
		t.Fatalf("checkpoint mode killed %d jobs", m.Metrics.Killed)
	}
	if m.Metrics.Completed != 8 {
		t.Fatalf("completed = %d, want all 8", m.Metrics.Completed)
	}
	// The gate serializes; kills stay zero whether or not preemptions
	// happened, and power ends under the limit.
	if m.Pw.TotalPower() > limit {
		t.Fatalf("still over limit: %f", m.Pw.TotalPower())
	}
	// Preemption under a real substrate is not free: any preempted job paid
	// a demand-checkpoint write, and no progress was silently discarded.
	if m.Metrics.Preemptions > 0 && m.Metrics.CheckpointsWritten == 0 {
		t.Fatalf("%d preemptions but no checkpoint writes", m.Metrics.Preemptions)
	}
}

func TestVMHostsSurviveIdleShutdown(t *testing.T) {
	p := &IdleShutdown{IdleAfter: 5 * simulator.Minute, MinSpare: 0}
	m := newMgr(t, 6, p)
	for _, n := range m.Cl.Nodes {
		if n.Rack == 0 {
			n.VMHost = true
		}
	}
	m.Run(simulator.Hour)
	for _, n := range m.Cl.Nodes {
		if n.VMHost && n.State != cluster.StateIdle {
			t.Fatalf("VM host %d powered off (state %v)", n.ID, n.State)
		}
		if !n.VMHost && n.State != cluster.StateOff {
			t.Fatalf("non-VM node %d not powered off (state %v)", n.ID, n.State)
		}
	}
}

func TestQueueRulesAdmission(t *testing.T) {
	p := &QueueRules{
		Rules: map[string]QueueRule{
			"batch": {MaxNodes: 32, MaxWalltime: 24 * simulator.Hour},
			"debug": {MaxNodes: 4, MaxWalltime: simulator.Hour, PriorityBoost: 10, MaxRunning: 1},
			"large": {MinNodes: 32},
		},
	}
	m := newMgr(t, 20, p)

	ok := testJob(1, 8, simulator.Hour, 200, 0.3) // defaults to batch
	tooWide := testJob(2, 48, simulator.Hour, 200, 0.3)
	tooSmallForLarge := testJob(3, 4, simulator.Hour, 200, 0.3)
	tooSmallForLarge.Queue = "large"
	unknown := testJob(4, 4, simulator.Hour, 200, 0.3)
	unknown.Queue = "phantom"
	debugJob := testJob(5, 2, 30*simulator.Minute, 200, 0.3)
	debugJob.Queue = "debug"
	debugJob.Walltime = 30 * simulator.Minute

	for i, j := range []*jobs.Job{ok, tooWide, tooSmallForLarge, unknown, debugJob} {
		if err := m.Submit(j, simulator.Time(i)); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(-1)
	if ok.State != jobs.StateCompleted || debugJob.State != jobs.StateCompleted {
		t.Fatalf("valid jobs: %v/%v", ok.State, debugJob.State)
	}
	for _, j := range []*jobs.Job{tooWide, tooSmallForLarge, unknown} {
		if j.State != jobs.StateCancelled {
			t.Fatalf("job %d state %v, want cancelled (%s)", j.ID, j.State, j.KillReason)
		}
	}
	if debugJob.Priority != 10 {
		t.Fatalf("debug priority boost missing: %d", debugJob.Priority)
	}
	if p.Rejected != 3 {
		t.Fatalf("rejected = %d", p.Rejected)
	}
}

func TestQueueRulesMaxRunning(t *testing.T) {
	p := &QueueRules{
		Rules: map[string]QueueRule{
			"batch": {},
			"debug": {MaxRunning: 1},
		},
	}
	m := newMgr(t, 21, p)
	a := testJob(1, 2, simulator.Hour, 200, 0.3)
	a.Queue = "debug"
	b := testJob(2, 2, simulator.Hour, 200, 0.3)
	b.Queue = "debug"
	if err := m.Submit(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(b, 1); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	if b.Start < a.End {
		t.Fatalf("debug queue ran 2 concurrent jobs: b.start %v < a.end %v", b.Start, a.End)
	}
}

func TestQueueRulesPanicsOnBadConfig(t *testing.T) {
	for _, p := range []*QueueRules{
		{},
		{Rules: map[string]QueueRule{"x": {}}, DefaultQueue: "y"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", p)
				}
			}()
			newMgr(t, 22, p)
		}()
	}
}
