package policy

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// CoolingAware reproduces LRZ's research row: "linking job scheduler with
// IT infrastructure + cooling; scheduler may delay jobs when IT
// infrastructure is particularly inefficient". Deferrable (low-priority)
// jobs are held while the facility's PUE exceeds a threshold — typically
// hot afternoons — and run when cooling is cheap; urgent work is never
// delayed. The payoff is facility (IT + cooling) energy per unit of work,
// not IT energy, which is exactly why a facility model is required to see
// it.
type CoolingAware struct {
	// MaxPUE is the efficiency threshold above which deferrable jobs wait.
	MaxPUE float64
	// DeferBelowPriority marks jobs with Priority < this value deferrable.
	DeferBelowPriority int
	// MaxDefer bounds how long a job may be held past submission (default
	// 24 h) so deferral cannot become starvation.
	MaxDefer simulator.Time

	// Held counts gate decisions that deferred a start.
	Held int
}

// Name implements core.Policy.
func (p *CoolingAware) Name() string { return fmt.Sprintf("cooling-aware(PUE<=%.2f)", p.MaxPUE) }

// Attach implements core.Policy.
func (p *CoolingAware) Attach(m *core.Manager) {
	if m.Fac == nil {
		panic("policy: CoolingAware needs a facility model")
	}
	if p.MaxPUE <= 1 {
		p.MaxPUE = 1.15
	}
	if p.MaxDefer <= 0 {
		p.MaxDefer = 24 * simulator.Hour
	}
	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		now := m.Eng.Now()
		if j.Priority >= p.DeferBelowPriority {
			return true // urgent work never waits for the weather
		}
		if now-j.Submit >= p.MaxDefer {
			return true // anti-starvation bound
		}
		if m.Fac.PUE(now) > p.MaxPUE {
			p.Held++
			return false
		}
		return true
	})
	// The PUE changes with the daily temperature cycle; re-evaluate often
	// enough to catch the evening dip.
	m.ScheduleEvery(10*simulator.Minute, "cooling-aware", func(now simulator.Time) {
		m.TrySchedule(now)
	})
}
