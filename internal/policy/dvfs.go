package policy

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// DVFSBudget extends the job scheduler with power budgeting through
// frequency scaling, after Etinski et al. [18][19] (the approach CEA
// investigates with BULL and that the power-adaptive SLURM work targets):
// when predicted cluster draw exceeds the budget, running jobs are scaled
// down the P-state ladder; when headroom returns they are scaled back up.
// New jobs may also be started below nominal frequency when the budget is
// tight, trading runtime for admission.
type DVFSBudget struct {
	// BudgetW is the cluster IT power budget.
	BudgetW float64
	// Period is the control-loop interval.
	Period simulator.Time
	// StartUnderBudget starts new jobs at a reduced frequency when that is
	// the only way to admit them within the budget.
	StartUnderBudget bool

	// Downshifts / Upshifts count actuations for experiment reporting.
	Downshifts, Upshifts int

	m *core.Manager
}

// Name implements core.Policy.
func (p *DVFSBudget) Name() string { return fmt.Sprintf("dvfs-budget(%.0fkW)", p.BudgetW/1000) }

// Attach implements core.Policy.
func (p *DVFSBudget) Attach(m *core.Manager) {
	if p.BudgetW <= 0 {
		panic("policy: DVFSBudget needs a positive budget")
	}
	if p.Period <= 0 {
		p.Period = 60 * simulator.Second
	}
	p.m = m
	m.ScheduleEvery(p.Period, "dvfs-budget", p.control)
	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		add := m.EstimatedStartPower(j)
		if m.Pw.TotalPower()+add <= p.BudgetW {
			return true
		}
		if !p.StartUnderBudget {
			return false
		}
		// Admit if the job fits at the lowest frequency.
		minAdd := add * powFrac(m, m.Pw.Model.MinFrac)
		return m.Pw.TotalPower()+minAdd <= p.BudgetW
	})
	if p.StartUnderBudget {
		m.OnFreq(func(m *core.Manager, j *jobs.Job) float64 {
			add := m.EstimatedStartPower(j)
			have := p.BudgetW - m.Pw.TotalPower()
			if add <= have {
				return 1
			}
			// Walk the P-state table down until the job fits.
			for i := 0; i < len(m.Pw.PStates); i++ {
				f := m.Pw.PStates.Frac(i)
				if add*powFrac(m, f) <= have {
					return f
				}
			}
			return m.Pw.Model.MinFrac
		})
	}
}

// powFrac returns the dynamic-power scaling factor at frequency fraction f.
func powFrac(m *core.Manager, f float64) float64 {
	scaled := m.Pw.Model.BusyPower(m.Pw.Model.MaxW, f, 1) - m.Pw.Model.IdleW
	full := m.Pw.Model.MaxW - m.Pw.Model.IdleW
	if full <= 0 {
		return 1
	}
	return scaled / full
}

// control runs the budget feedback loop over running jobs: shift everyone
// one P-state down while over budget, one up while comfortably under.
func (p *DVFSBudget) control(now simulator.Time) {
	m := p.m
	cur := m.Pw.TotalPower()
	table := m.Pw.PStates
	switch {
	case cur > p.BudgetW:
		for _, j := range m.Running() {
			idx := table.StateForFrac(j.FreqFrac)
			if idx < len(table)-1 {
				j.FreqFrac = table.Frac(idx + 1)
				m.Pw.SetJobFreq(now, j.ID, j.FreqFrac)
				p.Downshifts++
			}
		}
		m.RetimeAll(now)
	case cur < p.BudgetW*0.9:
		// Raise one job at a time to avoid oscillation: pick the slowest.
		var pick *jobs.Job
		for _, j := range m.Running() {
			if j.FreqFrac < 0.999 && (pick == nil || j.FreqFrac < pick.FreqFrac) {
				pick = j
			}
		}
		if pick != nil {
			idx := table.StateForFrac(pick.FreqFrac)
			if idx > 0 {
				next := table.Frac(idx - 1)
				// Only raise if the projected draw stays under budget.
				delta := float64(pick.Nodes) * (m.Pw.Model.BusyPower(pick.PowerPerNodeW, next, 1) -
					m.Pw.Model.BusyPower(pick.PowerPerNodeW, pick.FreqFrac, 1))
				if cur+delta <= p.BudgetW {
					pick.FreqFrac = next
					m.Pw.SetJobFreq(now, pick.ID, next)
					m.RetimeJob(pick.ID, now)
					p.Upshifts++
				}
			}
		}
	}
	m.TrySchedule(now)
}
