package policy

import (
	"fmt"
	"sort"
	"strings"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// QueueRule configures one named batch queue — the paper's §II-A: "users
// submit batch jobs into one or more batch queues ... queues may be
// designated as having higher or lower priorities and may be restricted".
type QueueRule struct {
	// MaxNodes bounds job width (0 = unlimited).
	MaxNodes int
	// MinNodes sets a floor — e.g. a "large" queue that only takes
	// capability jobs (0 = none).
	MinNodes int
	// MaxWalltime bounds the request (0 = unlimited).
	MaxWalltime simulator.Time
	// PriorityBoost is added to every admitted job's priority.
	PriorityBoost int
	// MaxRunning bounds how many of the queue's jobs run concurrently
	// (0 = unlimited) — how debug queues stay responsive.
	MaxRunning int
}

// QueueRules validates and classifies jobs by their Queue name at
// admission, and enforces per-queue concurrency at start.
type QueueRules struct {
	// Rules maps queue name to its rule. Jobs naming an unknown queue are
	// rejected; an empty queue name maps to DefaultQueue.
	Rules map[string]QueueRule
	// DefaultQueue is used when a job does not name one (default "batch").
	DefaultQueue string

	// Rejected counts admission failures.
	Rejected int

	m *core.Manager
}

// Name implements core.Policy.
func (p *QueueRules) Name() string {
	names := make([]string, 0, len(p.Rules))
	for q := range p.Rules {
		names = append(names, q)
	}
	sort.Strings(names)
	return fmt.Sprintf("queue-rules(%s)", strings.Join(names, ","))
}

// Attach implements core.Policy.
func (p *QueueRules) Attach(m *core.Manager) {
	if len(p.Rules) == 0 {
		panic("policy: QueueRules needs at least one rule")
	}
	if p.DefaultQueue == "" {
		p.DefaultQueue = "batch"
	}
	if _, ok := p.Rules[p.DefaultQueue]; !ok {
		panic("policy: QueueRules default queue has no rule")
	}
	p.m = m

	m.OnAdmit(func(m *core.Manager, j *jobs.Job) (bool, string) {
		if j.Queue == "" {
			j.Queue = p.DefaultQueue
		}
		rule, ok := p.Rules[j.Queue]
		if !ok {
			p.Rejected++
			return false, fmt.Sprintf("unknown queue %q", j.Queue)
		}
		if rule.MaxNodes > 0 && j.Nodes > rule.MaxNodes {
			p.Rejected++
			return false, fmt.Sprintf("queue %q allows at most %d nodes", j.Queue, rule.MaxNodes)
		}
		if rule.MinNodes > 0 && j.Nodes < rule.MinNodes {
			p.Rejected++
			return false, fmt.Sprintf("queue %q requires at least %d nodes", j.Queue, rule.MinNodes)
		}
		if rule.MaxWalltime > 0 && j.Walltime > rule.MaxWalltime {
			p.Rejected++
			return false, fmt.Sprintf("queue %q allows at most %s walltime", j.Queue, rule.MaxWalltime)
		}
		j.Priority += rule.PriorityBoost
		return true, ""
	})

	// Concurrency is counted on demand from the live job set so that
	// preemption/requeue cycles can never desynchronize a counter.
	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		rule := p.Rules[j.Queue]
		return rule.MaxRunning == 0 || p.RunningIn(j.Queue) < rule.MaxRunning
	})
}

// RunningIn reports how many jobs of queue q are running.
func (p *QueueRules) RunningIn(q string) int {
	k := 0
	for _, j := range p.m.Running() {
		if j.Queue == q {
			k++
		}
	}
	return k
}
