package policy

import (
	"testing"

	"epajsrm/internal/simulator"
)

func TestTelemetryGuardDegradesAndRestores(t *testing.T) {
	g := &TelemetryGuard{FallbackCapW: 250, Period: 30 * simulator.Second}
	m := newMgr(t, 1, g)
	j := testJob(1, 4, 6*simulator.Hour, 300, 0.3)
	if err := m.Submit(j, 0); err != nil {
		t.Fatal(err)
	}
	// Give node 3 a tighter cap than the fallback: the guard must not loosen
	// it on degrade, and must leave it in place on restore.
	if err := m.Ctrl.SetNodeCap(3, 200); err != nil {
		t.Fatal(err)
	}
	// Sensor outage from t=1h to t=2h.
	m.Eng.After(simulator.Hour, "sensor-down", func(simulator.Time) {
		m.Tel.SetOutage(true, false)
	})
	m.Eng.After(2*simulator.Hour, "sensor-up", func(simulator.Time) {
		m.Tel.SetOutage(false, false)
	})
	var sawDegraded, cappedWhileDegraded bool
	stop := m.Eng.Every(time10s, "probe", func(now simulator.Time) {
		if g.Degraded() {
			sawDegraded = true
			if m.Cl.Nodes[0].CapW == 250 && m.Cl.Nodes[3].CapW == 200 {
				cappedWhileDegraded = true
			}
		}
	})
	defer stop()
	m.Run(-1)
	if !sawDegraded {
		t.Fatal("guard never degraded during the outage")
	}
	if !cappedWhileDegraded {
		t.Fatal("fallback caps not applied as expected while degraded")
	}
	if g.Degraded() {
		t.Fatal("guard still degraded after telemetry recovered")
	}
	if g.Degradations != 1 || g.Restorations != 1 {
		t.Fatalf("degradations/restorations = %d/%d, want 1/1", g.Degradations, g.Restorations)
	}
	if g.DegradedSeconds <= 0 {
		t.Fatal("no degraded time integrated")
	}
	// Restore: node 0 back to uncapped, node 3 keeps its tighter cap.
	if m.Cl.Nodes[0].CapW != 0 {
		t.Fatalf("node 0 cap after restore = %f, want 0", m.Cl.Nodes[0].CapW)
	}
	if m.Cl.Nodes[3].CapW != 200 {
		t.Fatalf("node 3 cap after restore = %f, want 200", m.Cl.Nodes[3].CapW)
	}
}

const time10s = 10 * simulator.Second

func TestTelemetryGuardQuietOnHealthyTelemetry(t *testing.T) {
	g := &TelemetryGuard{FallbackCapW: 250}
	m := newMgr(t, 2, g)
	submitN(t, m, 20, 7)
	m.Run(-1)
	if g.Degradations != 0 || g.DegradedSeconds != 0 {
		t.Fatalf("guard degraded %d times on healthy telemetry", g.Degradations)
	}
}
