package policy

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// MS3 is the "Mediterranean-style job scheduler — do less when it's too
// hot!" of Borghesi et al. [11]: instead of slowing processors down, the
// system limits how much work runs concurrently when the thermal/power
// situation is tight. The concurrency envelope scales between a floor and
// the full machine as a function of outside temperature (or, when no
// facility model is attached, of the instantaneous power budget headroom).
type MS3 struct {
	// BudgetW caps IT draw; admission of new jobs stops above it.
	BudgetW float64
	// HotC and CoolC bound the temperature band: at or below CoolC the full
	// machine may be busy, at or above HotC only FloorFrac of it.
	HotC, CoolC float64
	// FloorFrac is the minimum busy-node fraction allowed on the hottest
	// days.
	FloorFrac float64

	// Deferrals counts scheduling passes in which a job was held back.
	Deferrals int

	m *core.Manager
}

// Name implements core.Policy.
func (p *MS3) Name() string { return fmt.Sprintf("ms3(%.0f-%.0fC)", p.CoolC, p.HotC) }

// Attach implements core.Policy.
func (p *MS3) Attach(m *core.Manager) {
	if p.HotC <= p.CoolC {
		p.CoolC, p.HotC = 18, 32
	}
	if p.FloorFrac <= 0 || p.FloorFrac > 1 {
		p.FloorFrac = 0.4
	}
	p.m = m
	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		if p.BudgetW > 0 && m.Pw.TotalPower()+m.EstimatedStartPower(j) > p.BudgetW {
			p.Deferrals++
			return false
		}
		allowed := p.AllowedBusyNodes(m.Eng.Now())
		busy := 0
		for _, r := range m.Running() {
			busy += r.Nodes
		}
		if busy+j.Nodes > allowed {
			p.Deferrals++
			return false
		}
		return true
	})
	// Re-evaluate periodically so admission resumes when the day cools.
	m.ScheduleEvery(5*simulator.Minute, "ms3-tick", func(now simulator.Time) {
		m.TrySchedule(now)
	})
}

// AllowedBusyNodes returns the busy-node ceiling at time now: the full
// machine below CoolC, the floor above HotC, linear in between.
func (p *MS3) AllowedBusyNodes(now simulator.Time) int {
	total := p.m.Cl.Size()
	if p.m.Fac == nil {
		return total
	}
	t := p.m.Fac.Climate.TempAt(now)
	frac := 1.0
	switch {
	case t >= p.HotC:
		frac = p.FloorFrac
	case t > p.CoolC:
		frac = 1 - (1-p.FloorFrac)*(t-p.CoolC)/(p.HotC-p.CoolC)
	}
	n := int(frac * float64(total))
	if n < 1 {
		n = 1
	}
	return n
}
