package policy

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/power"
	"epajsrm/internal/simulator"
)

// BootWindowCap is Tokyo Tech's production capability: "resource manager
// dynamically boots or shuts down nodes to stay under power cap (summer
// only, enforced over ~30 min window). Interacts with job scheduler to
// avoid killing jobs." The cap binds the *average* power over the
// enforcement window, so short excursions are legal as long as node
// shutdowns bring the window average back down; jobs are never killed —
// only idle nodes are powered off, and job starts are gated on projected
// window compliance.
type BootWindowCap struct {
	// CapW is the power cap on window-average IT draw.
	CapW float64
	// Window is the enforcement window (Tokyo Tech: ~30 min).
	Window simulator.Time
	// SummerOnly enforces only during the warm half of the year, using the
	// facility climate model.
	SummerOnly bool
	// Period is the control-loop interval.
	Period simulator.Time

	// Violations counts control periods whose window average exceeded the
	// cap while enforcement was active.
	Violations int
	// Shutdowns/Boots count node actuations.
	Shutdowns, Boots int

	meter *power.WindowMeter
	m     *core.Manager
	lastP float64
	lastT simulator.Time
}

// Name implements core.Policy.
func (p *BootWindowCap) Name() string {
	return fmt.Sprintf("boot-window-cap(%.0fkW/%s)", p.CapW/1000, p.Window)
}

// Attach implements core.Policy.
func (p *BootWindowCap) Attach(m *core.Manager) {
	if p.CapW <= 0 {
		panic("policy: BootWindowCap needs a positive cap")
	}
	if p.Window <= 0 {
		p.Window = 30 * simulator.Minute
	}
	if p.Period <= 0 {
		p.Period = simulator.Minute
	}
	p.m = m
	p.meter = power.NewWindowMeter(p.CapW, float64(p.Window))
	m.ScheduleEvery(p.Period, "boot-window-cap", p.control)
	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		if !p.active(m.Eng.Now()) {
			return true
		}
		// The window semantics tolerate transients (boot spikes), but a job
		// start is sustained load: gate on projected instantaneous draw so
		// the window average can never be driven over the cap by
		// scheduling decisions.
		return m.Pw.TotalPower()+m.EstimatedStartPower(j) <= p.CapW
	})
}

func (p *BootWindowCap) active(now simulator.Time) bool {
	if !p.SummerOnly {
		return true
	}
	if p.m.Fac == nil {
		return true
	}
	return p.m.Fac.Climate.IsSummer(now)
}

// control feeds the window meter and actuates node boots/shutdowns.
func (p *BootWindowCap) control(now simulator.Time) {
	m := p.m
	dt := float64(now - p.lastT)
	if dt > 0 {
		p.meter.Observe(m.Pw.TotalPower(), dt)
	}
	p.lastT = now
	if !p.active(now) {
		return
	}
	avg := p.meter.WindowAverage()
	if avg > p.CapW {
		p.Violations++
	}
	switch {
	case avg > p.CapW*0.97 || m.Pw.TotalPower() > p.CapW:
		// Too close: power off idle nodes (never kill jobs; never touch VM
		// hosts — their guests are invisible to the batch system).
		for _, n := range m.Cl.Nodes {
			if n.State != cluster.StateIdle || n.VMHost {
				continue
			}
			if m.Pw.TotalPower() <= p.CapW*0.95 {
				break
			}
			if err := m.Ctrl.PowerOff(n.ID); err == nil {
				p.Shutdowns++
			}
		}
	case avg < p.CapW*0.85 && m.Queue.Len() > 0:
		// Comfortable headroom and waiting work: boot capacity back,
		// respecting what the headroom can absorb (a booting node will draw
		// idle power, then job power once scheduled — budget one node's
		// MaxW per boot decision to stay conservative).
		headroom := p.CapW*0.95 - m.Pw.TotalPower()
		for _, n := range m.Cl.Nodes {
			if headroom < m.Pw.Model.MaxW {
				break
			}
			if n.State != cluster.StateOff || n.Maintenance || m.Cl.InfraMaintenance(n) {
				continue
			}
			if err := m.Ctrl.PowerOn(n.ID, func(t simulator.Time) { m.TrySchedule(t) }); err == nil {
				p.Boots++
				headroom -= m.Pw.Model.MaxW
			}
		}
	}
	m.TrySchedule(now)
}

// WindowAverage exposes the current window-average draw for tests and
// reports.
func (p *BootWindowCap) WindowAverage() float64 { return p.meter.WindowAverage() }
