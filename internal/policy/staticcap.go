package policy

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
)

// StaticCap reproduces KAUST's production configuration on Shaheen: a fixed
// fraction of nodes runs uncapped while the rest carry a static node-level
// power cap applied through the out-of-band control plane ("static power
// capping via Cray CAPMC. 30% of nodes run uncapped, 70% run with 270 W
// power cap"). Optionally, jobs whose estimated draw exceeds the cap are
// steered to the uncapped pool so capability work keeps full speed.
type StaticCap struct {
	// CapW is the node cap applied to the capped pool.
	CapW float64
	// UncappedFrac is the fraction of nodes left uncapped (KAUST: 0.30).
	UncappedFrac float64
	// RouteHungry steers jobs with estimated per-node draw above CapW to
	// uncapped nodes only.
	RouteHungry bool

	uncapped map[int]bool
}

// Name implements core.Policy.
func (p *StaticCap) Name() string {
	return fmt.Sprintf("static-cap(%.0fW,%.0f%%uncapped)", p.CapW, p.UncappedFrac*100)
}

// Attach implements core.Policy.
func (p *StaticCap) Attach(m *core.Manager) {
	if p.CapW <= 0 {
		panic("policy: StaticCap needs a positive cap")
	}
	if p.UncappedFrac < 0 || p.UncappedFrac >= 1 {
		panic("policy: StaticCap UncappedFrac out of [0,1)")
	}
	p.uncapped = map[int]bool{}
	total := m.Cl.Size()
	nUncapped := int(float64(total) * p.UncappedFrac)
	// The uncapped pool is the tail of the machine so that compact
	// placements fill the capped pool first.
	for i := total - nUncapped; i < total; i++ {
		p.uncapped[i] = true
	}
	for i := 0; i < total; i++ {
		if !p.uncapped[i] {
			if err := m.Ctrl.SetNodeCap(i, p.CapW); err != nil {
				panic(err)
			}
		}
	}
	if p.RouteHungry {
		m.OnNodeFilter(func(m *core.Manager, j *jobs.Job, n *cluster.Node) bool {
			// Steering is a preference, not a mandate: a hungry job wider
			// than the uncapped pool must still be allowed to run capped
			// (KAUST's wide capability jobs do exactly that).
			if m.PowerEstimator(j) > p.CapW && j.Nodes <= nUncapped {
				return p.uncapped[n.ID]
			}
			return true
		})
	}
}

// Uncapped reports whether node id is in the uncapped pool.
func (p *StaticCap) Uncapped(id int) bool { return p.uncapped[id] }
