package policy

import (
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

func TestIdleShutdownPowersOffIdleNodes(t *testing.T) {
	p := &IdleShutdown{IdleAfter: 10 * simulator.Minute, MinSpare: 4}
	m := newMgr(t, 1, p)
	// No work at all: after the threshold, everything except the spare pool
	// should power down.
	m.Run(simulator.Hour)
	off := m.Cl.CountState(cluster.StateOff)
	idle := m.Cl.CountState(cluster.StateIdle)
	if off != 60 || idle != 4 {
		t.Fatalf("off=%d idle=%d, want 60/4", off, idle)
	}
	if p.Shutdowns != 60 {
		t.Fatalf("shutdowns = %d", p.Shutdowns)
	}
}

func TestIdleShutdownBootsOnDemand(t *testing.T) {
	p := &IdleShutdown{IdleAfter: 5 * simulator.Minute, MinSpare: 0}
	m := newMgr(t, 2, p)
	// Let the whole machine power off, then submit a 16-node job.
	j := testJob(1, 16, simulator.Hour, 300, 0.2)
	if err := m.Submit(j, 2*simulator.Hour); err != nil {
		t.Fatal(err)
	}
	m.Run(6 * simulator.Hour)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v (boots=%d)", j.State, p.Boots)
	}
	if p.Boots < 16 {
		t.Fatalf("boots = %d, want >= 16", p.Boots)
	}
	// The job had to wait for the boot delay.
	if j.Start < 2*simulator.Hour+m.Cl.Cfg.BootDelay {
		t.Fatalf("job started at %v, before boots could finish", j.Start)
	}
}

func TestIdleShutdownSavesEnergyAtLowUtilization(t *testing.T) {
	horizon := 2 * simulator.Day
	// Sparse workload: a few small jobs.
	base := newMgr(t, 3)
	for i := int64(1); i <= 10; i++ {
		j := testJob(i, 2, simulator.Hour, 250, 0.3)
		if err := base.Submit(j, simulator.Time(i)*4*simulator.Hour); err != nil {
			t.Fatal(err)
		}
	}
	base.Run(horizon)
	baseE := base.Pw.TotalEnergy()

	shut := newMgr(t, 3, &IdleShutdown{IdleAfter: 10 * simulator.Minute, MinSpare: 2})
	for i := int64(1); i <= 10; i++ {
		j := testJob(i, 2, simulator.Hour, 250, 0.3)
		if err := shut.Submit(j, simulator.Time(i)*4*simulator.Hour); err != nil {
			t.Fatal(err)
		}
	}
	shut.Run(horizon)
	shutE := shut.Pw.TotalEnergy()

	if shut.Metrics.Completed != 10 {
		t.Fatalf("completions with shutdown = %d", shut.Metrics.Completed)
	}
	// Mämmelä's headline: large idle-energy savings at low utilization. The
	// idle fleet draws 90 W vs 15 W off — expect well over 2x savings here.
	if shutE > baseE*0.5 {
		t.Fatalf("idle shutdown energy %.2e vs baseline %.2e: saved only %.0f%%",
			shutE, baseE, 100*(1-shutE/baseE))
	}
}

func TestBootWindowCapHoldsWindowAverage(t *testing.T) {
	// Cap roughly half the machine's flat-out draw.
	capW := 64 * 200.0
	p := &BootWindowCap{CapW: capW, Window: 30 * simulator.Minute, Period: simulator.Minute}
	m := newMgr(t, 4, p)
	submitN(t, m, 250, 17)
	m.Run(4 * simulator.Day)
	if p.Violations > 0 {
		t.Fatalf("window-average violations: %d (avg now %.0f)", p.Violations, p.WindowAverage())
	}
	// The survey row's defining constraint: no jobs are killed.
	if m.Metrics.Killed != 0 {
		t.Fatalf("boot-window capping killed %d jobs", m.Metrics.Killed)
	}
	if m.Metrics.Completed == 0 {
		t.Fatal("no completions")
	}
	if p.Shutdowns == 0 {
		t.Fatal("cap never actuated node shutdowns under a tight budget")
	}
}

func TestBootWindowCapSummerOnly(t *testing.T) {
	capW := 64 * 150.0
	p := &BootWindowCap{CapW: capW, Window: 30 * simulator.Minute, SummerOnly: true}
	m := newMgr(t, 5, p)
	// Winter begins half a year in; the facility climate's warm half is the
	// first half-year. Submit load in winter: cap must not actuate.
	gen := int64(0)
	for i := 0; i < 40; i++ {
		gen++
		j := testJob(gen, 8, 2*simulator.Hour, 330, 0.2)
		if err := m.Submit(j, 200*simulator.Day+simulator.Time(i)*simulator.Hour); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(205 * simulator.Day)
	if p.Shutdowns != 0 {
		t.Fatalf("winter shutdowns = %d, want 0 (summer-only)", p.Shutdowns)
	}
}

func TestMS3LimitsConcurrencyWhenHot(t *testing.T) {
	p := &MS3{CoolC: 10, HotC: 20, FloorFrac: 0.25}
	m := newMgr(t, 6, p)
	// Default facility climate: hot in summer. Pin to a hot instant by
	// submitting at the summer peak (day 91) and checking AllowedBusyNodes.
	hotAt := 91 * simulator.Day
	allowedHot := 0
	m.Eng.After(hotAt, "probe", func(now simulator.Time) {
		allowedHot = p.AllowedBusyNodes(now)
	})
	coldAt := 274 * simulator.Day
	allowedCold := 0
	m.Eng.After(coldAt, "probe2", func(now simulator.Time) {
		allowedCold = p.AllowedBusyNodes(now)
	})
	m.Run(275 * simulator.Day)
	if allowedHot >= allowedCold {
		t.Fatalf("hot allowance %d should be below cold %d", allowedHot, allowedCold)
	}
	if allowedCold != 64 {
		t.Fatalf("cold allowance = %d, want full machine", allowedCold)
	}
	if allowedHot != 16 {
		t.Fatalf("hot allowance = %d, want floor 16", allowedHot)
	}
}

func TestMS3DefersJobsOverBudget(t *testing.T) {
	idleFloor := 64 * 90.0
	p := &MS3{BudgetW: idleFloor + 500, CoolC: 10, HotC: 20}
	m := newMgr(t, 7, p)
	a := testJob(1, 2, simulator.Hour, 300, 0) // +420 W: fits
	b := testJob(2, 2, simulator.Hour, 300, 0) // would exceed
	if err := m.Submit(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(b, 1); err != nil {
		t.Fatal(err)
	}
	m.Run(simulator.Day)
	if a.State != jobs.StateCompleted || b.State != jobs.StateCompleted {
		t.Fatalf("states %v/%v", a.State, b.State)
	}
	if b.Start < a.End {
		t.Fatalf("b ran concurrently (b.start %v < a.end %v) despite budget", b.Start, a.End)
	}
	if p.Deferrals == 0 {
		t.Fatal("no deferrals recorded")
	}
}

func TestEmergencyKillsUntilUnderLimit(t *testing.T) {
	limit := 64*90 + 10*270.0
	p := &Emergency{LimitW: limit, Period: 30 * simulator.Second}
	m := newMgr(t, 8, p)
	// Without a pre-run gate, the scheduler happily overcommits; the
	// emergency response must bring the draw back under.
	for i := int64(1); i <= 8; i++ {
		j := testJob(i, 8, 4*simulator.Hour, 360, 0.2)
		j.Priority = int(i)
		if err := m.Submit(j, 0); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(simulator.Day)
	if p.Kills == 0 {
		t.Fatal("no emergency kills despite overcommitment")
	}
	if m.Pw.TotalPower() > limit {
		t.Fatalf("still over limit at end: %.0f > %.0f", m.Pw.TotalPower(), limit)
	}
	// Victims are the lowest-priority jobs.
	killed := 0
	for i := int64(1); i <= 8; i++ {
		// jobs were submitted with priority = id; low ids die first.
		_ = i
	}
	_ = killed
}

func TestEmergencyPreRunGateAvoidsKills(t *testing.T) {
	limit := 64*90 + 10*270.0
	gated := &Emergency{LimitW: limit, PreRunGate: true, Period: 30 * simulator.Second}
	m := newMgr(t, 9, gated)
	for i := int64(1); i <= 8; i++ {
		j := testJob(i, 8, 2*simulator.Hour, 360, 0.2)
		if err := m.Submit(j, 0); err != nil {
			t.Fatal(err)
		}
	}
	m.Run(2 * simulator.Day)
	if gated.Kills != 0 {
		t.Fatalf("pre-run gate still led to %d kills", gated.Kills)
	}
	if gated.GateHolds == 0 {
		t.Fatal("gate never held a job")
	}
	if m.Metrics.Completed != 8 {
		t.Fatalf("completed = %d, want all 8 (serialized)", m.Metrics.Completed)
	}
}

func TestEmergencyKillPriorityOrder(t *testing.T) {
	limit := 64*90 + 6*270.0
	p := &Emergency{LimitW: limit, Period: 30 * simulator.Second}
	m := newMgr(t, 10, p)
	low := testJob(1, 4, 4*simulator.Hour, 360, 0.2)
	low.Priority = 0
	high := testJob(2, 4, 4*simulator.Hour, 360, 0.2)
	high.Priority = 10
	if err := m.Submit(high, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(low, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(simulator.Day)
	if low.State != jobs.StateKilled {
		t.Fatalf("low-priority job state = %v, want killed", low.State)
	}
	if high.State != jobs.StateCompleted {
		t.Fatalf("high-priority job state = %v, want completed", high.State)
	}
}

func TestLayoutAwareAvoidsMaintenanceWindows(t *testing.T) {
	p := &LayoutAware{Windows: []MaintenanceWindow{
		{PDU: 0, Chiller: -1, From: 2 * simulator.Hour, Until: 8 * simulator.Hour},
	}}
	m := newMgr(t, 11, p)
	// A job submitted just before the window whose walltime overlaps it
	// must avoid PDU 0 (nodes 0-31).
	j := testJob(1, 16, 4*simulator.Hour, 250, 0.3)
	j.Walltime = 5 * simulator.Hour
	if err := m.Submit(j, simulator.Hour); err != nil {
		t.Fatal(err)
	}
	var placed []int
	m.Eng.After(simulator.Hour+1, "check", func(simulator.Time) {
		for _, n := range m.JobNodes(1) {
			placed = append(placed, n.PDU)
		}
	})
	m.Run(simulator.Day)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if len(placed) != 16 {
		t.Fatalf("placement not captured: %v", placed)
	}
	for _, pdu := range placed {
		if pdu == 0 {
			t.Fatal("job placed on a PDU due for maintenance during its walltime")
		}
	}
	if p.Avoided == 0 {
		t.Fatal("filter never excluded a node")
	}
}

func TestLayoutAwareCapacityReturnsAfterWindow(t *testing.T) {
	p := &LayoutAware{Windows: []MaintenanceWindow{
		{PDU: 0, Chiller: -1, From: simulator.Hour, Until: 2 * simulator.Hour},
	}}
	m := newMgr(t, 12, p)
	// During the window, a 64-node job cannot run (only 32 nodes eligible);
	// after it ends, it can.
	j := testJob(1, 64, simulator.Hour, 200, 0.3)
	j.Walltime = simulator.Hour + 1
	if err := m.Submit(j, simulator.Hour+10); err != nil {
		t.Fatal(err)
	}
	m.Run(simulator.Day)
	if j.State != jobs.StateCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.Start < 2*simulator.Hour {
		t.Fatalf("full-machine job started at %v, inside the window", j.Start)
	}
}

func TestEnergyReportGeneratesReports(t *testing.T) {
	p := &EnergyReport{}
	m := newMgr(t, 13, p)
	js := submitN(t, m, 50, 23)
	m.Run(-1)
	if len(p.Reports) != 50 {
		t.Fatalf("reports = %d, want 50", len(p.Reports))
	}
	for _, r := range p.Reports {
		if r.EnergyKWh <= 0 {
			t.Fatalf("report %d has no energy", r.JobID)
		}
		if r.Mark < 'A' || r.Mark > 'E' {
			t.Fatalf("mark %c out of range", r.Mark)
		}
		if r.AvgNodeW < 50 || r.AvgNodeW > 500 {
			t.Fatalf("avg node draw %f implausible", r.AvgNodeW)
		}
	}
	// Report energy equals the job's metered energy.
	byID := map[int64]JobReport{}
	for _, r := range p.Reports {
		byID[r.JobID] = r
	}
	for _, j := range js {
		r := byID[j.ID]
		if r.EnergyKWh*3.6e6 < j.EnergyJ*0.999 || r.EnergyKWh*3.6e6 > j.EnergyJ*1.001 {
			t.Fatalf("job %d report %.3f kWh vs metered %.0f J", j.ID, r.EnergyKWh, j.EnergyJ)
		}
	}
	sum := p.UserSummary()
	if len(sum) == 0 {
		t.Fatal("no user summary")
	}
	for i := 1; i < len(sum); i++ {
		if sum[i].KWh > sum[i-1].KWh {
			t.Fatal("user summary not sorted by consumption")
		}
	}
}

func TestEnergyReportMarksTrackEfficiency(t *testing.T) {
	p := &EnergyReport{}
	m := newMgr(t, 14, p)
	frugal := testJob(1, 2, simulator.Hour, 110, 0.5) // barely above idle
	hungry := testJob(2, 2, simulator.Hour, 360, 0.1) // flat out
	if err := m.Submit(frugal, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(hungry, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(-1)
	marks := map[int64]byte{}
	for _, r := range p.Reports {
		marks[r.JobID] = r.Mark
	}
	if marks[1] >= marks[2] {
		t.Fatalf("frugal job mark %c should beat hungry %c", marks[1], marks[2])
	}
	if marks[1] != 'A' {
		t.Fatalf("frugal mark = %c, want A", marks[1])
	}
	if marks[2] != 'E' {
		t.Fatalf("hungry mark = %c, want E", marks[2])
	}
}

var _ core.Policy = (*IdleShutdown)(nil) // doc-anchor for the test file
