package policy

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/power"
	"epajsrm/internal/simulator"
)

// Goal is the administrator-selected objective for energy-tag scheduling.
// LRZ's production row: "Administrator selects job scheduling goal, energy
// to solution or best performance."
type Goal int

const (
	// GoalPerformance runs every job at nominal frequency.
	GoalPerformance Goal = iota
	// GoalEnergyToSolution picks each application's energy-minimal
	// frequency from its characterization record.
	GoalEnergyToSolution
)

func (g Goal) String() string {
	if g == GoalEnergyToSolution {
		return "energy-to-solution"
	}
	return "best-performance"
}

// tagRecord is the characterization data kept per application tag.
type tagRecord struct {
	runs     int
	powerW   float64 // mean per-node draw at nominal frequency
	memFrac  float64 // observed frequency-insensitivity
	bestFrac float64 // cached energy-minimal frequency fraction
}

// EnergyTag reproduces LRZ's LoadLeveler/LSF energy-aware scheduling
// (Auweter et al. [4]): the first run of each new application executes at
// nominal frequency and is characterized for frequency sensitivity,
// runtime and energy; subsequent runs of the same tag execute at the
// frequency the administrator's goal selects. Walltime limits are scaled
// by the expected slowdown so a down-clocked job is not killed for
// overrunning its request.
type EnergyTag struct {
	Goal Goal
	// MaxSlowdown bounds the accepted runtime stretch when minimizing
	// energy (LRZ bounded this in production); 0 means 1.3x.
	MaxSlowdown float64

	// Characterized counts tags with completed characterization.
	Characterized int

	records map[string]*tagRecord
	m       *core.Manager
}

// Name implements core.Policy.
func (p *EnergyTag) Name() string { return fmt.Sprintf("energy-tag(%s)", p.Goal) }

// Attach implements core.Policy.
func (p *EnergyTag) Attach(m *core.Manager) {
	if p.MaxSlowdown <= 1 {
		p.MaxSlowdown = 1.3
	}
	p.records = map[string]*tagRecord{}
	p.m = m

	m.OnFreq(func(m *core.Manager, j *jobs.Job) float64 {
		if p.Goal != GoalEnergyToSolution || j.Tag == "" {
			return 1
		}
		rec := p.records[j.Tag]
		if rec == nil || rec.runs == 0 {
			return 1 // first run: characterize at nominal
		}
		// Stretch the walltime so the slower run is not killed.
		if rec.bestFrac < 1 {
			slow := power.Slowdown(rec.bestFrac, rec.memFrac)
			j.Walltime = simulator.Time(float64(j.Walltime)*slow) + 1
		}
		return rec.bestFrac
	})

	m.OnJobEnd(func(m *core.Manager, j *jobs.Job) {
		if j.Tag == "" || j.State != jobs.StateCompleted {
			return
		}
		rec := p.records[j.Tag]
		if rec == nil {
			rec = &tagRecord{}
			p.records[j.Tag] = rec
		}
		// Only nominal-frequency runs update the characterization, like
		// LRZ's dedicated first-run characterization pass.
		if j.FreqFrac >= 0.999 {
			if rec.runs == 0 {
				p.Characterized++
			}
			rec.runs++
			measured := j.EnergyJ / float64(j.Nodes) / float64(j.End-j.Start)
			rec.powerW += (measured - rec.powerW) / float64(rec.runs)
			rec.memFrac += (j.MemFrac - rec.memFrac) / float64(rec.runs)
			rec.bestFrac = p.bestFrequency(rec)
		}
	})
}

// bestFrequency scans the P-state table for the frequency minimizing
// modeled energy-to-solution, subject to the slowdown bound.
func (p *EnergyTag) bestFrequency(rec *tagRecord) float64 {
	m := p.m
	best, bestE := 1.0, m.Pw.Model.EnergyToSolution(rec.powerW, 1, rec.memFrac)
	for i := range m.Pw.PStates {
		f := m.Pw.PStates.Frac(i)
		if power.Slowdown(f, rec.memFrac) > p.MaxSlowdown {
			continue
		}
		e := m.Pw.Model.EnergyToSolution(rec.powerW, f, rec.memFrac)
		if e < bestE {
			best, bestE = f, e
		}
	}
	return best
}

// BestFrac exposes the chosen frequency for a tag (1 if unknown).
func (p *EnergyTag) BestFrac(tag string) float64 {
	if rec := p.records[tag]; rec != nil && rec.runs > 0 {
		return rec.bestFrac
	}
	return 1
}
