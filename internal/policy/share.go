package policy

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// DynamicPowerSharing implements the SLURM Dynamic Power Management idea
// KAUST co-developed with SchedMD, following Ellsworth et al. [17]:
// a cluster-wide power budget is divided into node caps periodically, and
// budget that capped-but-cool nodes are not using is shifted to nodes whose
// workloads actually want the power. Compared with a uniform static split
// of the same budget, throughput rises because caps bind only where demand
// exists.
type DynamicPowerSharing struct {
	// BudgetW is the cluster IT power budget to divide.
	BudgetW float64
	// Period is how often budgets are rebalanced (Ellsworth uses seconds;
	// production SDPM uses tens of seconds).
	Period simulator.Time

	// Rebalances counts how many redistribution passes ran.
	Rebalances int

	m           *core.Manager
	rebalancing bool
}

// Name implements core.Policy.
func (p *DynamicPowerSharing) Name() string {
	return fmt.Sprintf("dynamic-power-sharing(%.0fkW)", p.BudgetW/1000)
}

// Attach implements core.Policy.
func (p *DynamicPowerSharing) Attach(m *core.Manager) {
	if p.BudgetW <= 0 {
		panic("policy: DynamicPowerSharing needs a positive budget")
	}
	if p.Period <= 0 {
		p.Period = 30 * simulator.Second
	}
	p.m = m
	m.ScheduleEvery(p.Period, "power-sharing", p.rebalance)
	// Unlike a power-headroom start gate, admission here is by node
	// availability alone: the caps assigned at rebalance are what hold the
	// envelope (Ellsworth's design). Rebalancing on every start/end keeps
	// the books tight between periodic passes.
	m.OnJobStart(func(m *core.Manager, j *jobs.Job, _ []*cluster.Node) {
		p.rebalance(m.Eng.Now())
	})
	m.OnJobEnd(func(m *core.Manager, j *jobs.Job) {
		p.rebalance(m.Eng.Now())
	})
}

// rebalance divides the budget across nodes by demand: every powered node
// is guaranteed its idle draw; the remainder goes to busy nodes in
// proportion to their uncapped demand. Nodes with no demand get exactly
// their guarantee, so no budget idles while jobs are throttled elsewhere.
func (p *DynamicPowerSharing) rebalance(now simulator.Time) {
	if p.rebalancing {
		return // a rebalance-triggered start must not recurse
	}
	p.rebalancing = true
	defer func() { p.rebalancing = false }()
	m := p.m
	p.Rebalances++
	model := m.Pw.Model

	type busyNode struct {
		n      *cluster.Node
		demand float64 // uncapped draw the node's workload wants
	}
	var busy []busyNode
	guaranteed := 0.0
	for _, n := range m.Cl.Nodes {
		switch n.State {
		case cluster.StateOff, cluster.StateDown:
			guaranteed += model.OffW
		case cluster.StateBooting, cluster.StateShuttingDown:
			guaranteed += model.BootW
		case cluster.StateBusy, cluster.StateDraining:
			guaranteed += model.IdleW
			d := p.nodeDemand(n)
			busy = append(busy, busyNode{n: n, demand: d})
		default:
			guaranteed += model.IdleW
		}
	}
	spare := p.BudgetW - guaranteed
	if spare < 0 {
		spare = 0
	}
	totalWant := 0.0
	for _, b := range busy {
		totalWant += b.demand - model.IdleW
	}
	for _, b := range busy {
		want := b.demand - model.IdleW
		var grant float64
		if totalWant <= spare {
			grant = want // everyone runs uncapped
		} else if totalWant > 0 {
			grant = spare * want / totalWant
		}
		cap := model.IdleW + grant
		m.Pw.SetNodeCap(now, b.n, cap)
	}
	m.RetimeAll(now)
	m.TrySchedule(now)
}

// nodeDemand returns what the node would draw uncapped at its assigned
// frequency.
func (p *DynamicPowerSharing) nodeDemand(n *cluster.Node) float64 {
	m := p.m
	jid := n.JobID
	if jid == 0 {
		return m.Pw.Model.IdleW
	}
	for _, j := range m.Running() {
		if j.ID == jid {
			return m.Pw.Model.BusyPower(j.PowerPerNodeW, j.FreqFrac, m.Pw.VarFactor(n.ID))
		}
	}
	return m.Pw.Model.IdleW
}
