package policy

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// CapabilityWindow reproduces RIKEN's production practice of reserving
// "3 days for large jobs each month": during the window only jobs at or
// above the width threshold may start (the machine drains small work and
// runs capability jobs); outside it, everything runs. Wide jobs may also
// be held for the window (HoldWideOutside), concentrating their power
// ramps into planned days — which is why the practice matters to an EPA
// survey at all.
type CapabilityWindow struct {
	// WideNodes is the width at or above which a job counts as capability
	// work.
	WideNodes int
	// WindowDays is how many days each month belong to capability work.
	WindowDays int
	// MonthDays is the repeat period (default 30).
	MonthDays int
	// HoldWideOutside also prevents wide jobs from starting outside the
	// window (strict mode; RIKEN's scheduling practice).
	HoldWideOutside bool

	// HeldSmall / HeldWide count gate decisions.
	HeldSmall, HeldWide int
}

// Name implements core.Policy.
func (p *CapabilityWindow) Name() string {
	return fmt.Sprintf("capability-window(%dd/%dd,>=%d nodes)", p.WindowDays, p.MonthDays, p.WideNodes)
}

// Attach implements core.Policy.
func (p *CapabilityWindow) Attach(m *core.Manager) {
	if p.WideNodes <= 0 {
		panic("policy: CapabilityWindow needs a width threshold")
	}
	if p.MonthDays <= 0 {
		p.MonthDays = 30
	}
	if p.WindowDays <= 0 || p.WindowDays >= p.MonthDays {
		p.WindowDays = 3
	}
	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		inWindow := p.InWindow(m.Eng.Now())
		wide := j.Nodes >= p.WideNodes
		switch {
		case inWindow && !wide:
			p.HeldSmall++
			return false
		case !inWindow && wide && p.HoldWideOutside:
			p.HeldWide++
			return false
		default:
			return true
		}
	})
	// Re-open the gate at window boundaries.
	m.ScheduleEvery(simulator.Hour, "capability-window", func(now simulator.Time) {
		m.TrySchedule(now)
	})
}

// InWindow reports whether t falls inside the capability window: the first
// WindowDays of each MonthDays period.
func (p *CapabilityWindow) InWindow(t simulator.Time) bool {
	dayInMonth := (t / simulator.Day) % simulator.Time(p.MonthDays)
	return dayInMonth < simulator.Time(p.WindowDays)
}
