package policy

import (
	"fmt"
	"sort"

	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// Emergency reproduces RIKEN's production capabilities: "automated
// emergency job killing if power limit exceeded" and "pre-run estimate of
// power usage of each job, based on temperature". The pre-run gate holds
// jobs whose estimated draw would push the site over the limit; the
// automated response kills running jobs — lowest priority, then youngest
// first, so the least sunk work is lost — until the site is back under.
type Emergency struct {
	// LimitW is the hard site power limit (IT draw).
	LimitW float64
	// Period is how often the limit is checked (emergency response is fast;
	// default 30 s).
	Period simulator.Time
	// PreRunGate enables the admission-time estimate check.
	PreRunGate bool
	// Checkpoint preempts (checkpoint + requeue) instead of killing — the
	// gentler actuator for stacks with checkpoint/restart support. What a
	// preemption costs is the manager's business: with the checkpoint
	// substrate active the victim drains through a demand-checkpoint write
	// (power drops only when the write commits — the loop accounts for
	// these in-flight sheds via PendingShedW); without it the victim loses
	// its progress. Enabling it implies the pre-run gate, since requeued
	// jobs must not restart straight into the same emergency.
	Checkpoint bool
	// KillHeadroomFrac is how far below the limit the kill loop drives the
	// system (hysteresis); default 0.95.
	KillHeadroomFrac float64

	// Kills counts emergency terminations; Preempts counts checkpoint
	// preemptions; GateHolds counts scheduling passes where the pre-run
	// gate held a job back.
	Kills     int
	Preempts  int
	GateHolds int

	m *core.Manager
}

// Name implements core.Policy.
func (p *Emergency) Name() string { return fmt.Sprintf("emergency(%.0fkW)", p.LimitW/1000) }

// Attach implements core.Policy.
func (p *Emergency) Attach(m *core.Manager) {
	if p.LimitW <= 0 {
		panic("policy: Emergency needs a positive limit")
	}
	if p.Period <= 0 {
		p.Period = 30 * simulator.Second
	}
	if p.KillHeadroomFrac <= 0 || p.KillHeadroomFrac > 1 {
		p.KillHeadroomFrac = 0.95
	}
	p.m = m
	if p.Checkpoint {
		p.PreRunGate = true
	}
	if p.PreRunGate {
		m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
			if m.Pw.TotalPower()+m.EstimatedStartPower(j) > p.LimitW*p.KillHeadroomFrac {
				p.GateHolds++
				return false
			}
			return true
		})
	}
	m.ScheduleEvery(p.Period, "emergency-check", p.check)
}

func (p *Emergency) check(now simulator.Time) {
	m := p.m
	// Drains already in flight will shed power when their checkpoint
	// writes commit; count them as good as done, or every control tick
	// during a long write would preempt fresh victims for the same watts.
	pending := m.PendingShedW()
	if m.Pw.TotalPower()-pending <= p.LimitW {
		m.TrySchedule(now)
		return
	}
	// Over the limit: shed until under limit * headroom.
	target := p.LimitW * p.KillHeadroomFrac
	victims := m.Running()
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].Priority != victims[j].Priority {
			return victims[i].Priority < victims[j].Priority
		}
		if victims[i].Start != victims[j].Start {
			return victims[i].Start > victims[j].Start // youngest first
		}
		return victims[i].ID > victims[j].ID // deterministic tiebreak
	})
	for _, v := range victims {
		if m.Pw.TotalPower()-pending <= target {
			break
		}
		if p.Checkpoint {
			if m.PreemptJob(v.ID, now) {
				p.Preempts++
				// Instant preemption already dropped TotalPower; a drain
				// shows up in PendingShedW until its write commits.
				pending = m.PendingShedW()
			}
		} else if m.KillJob(v.ID, "emergency power limit", now) {
			p.Kills++
		}
	}
}
