package policy

import (
	"testing"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/power"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// newMgr builds a 64-node manager with the default model and EASY
// scheduling.
func newMgr(t *testing.T, seed uint64, pols ...core.Policy) *core.Manager {
	t.Helper()
	m := core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      seed,
		Facility:  power.DefaultFacility(),
	})
	for _, p := range pols {
		m.Use(p)
	}
	return m
}

// submitN generates and submits n default-spec jobs.
func submitN(t *testing.T, m *core.Manager, n int, seed uint64) []*jobs.Job {
	t.Helper()
	js := workload.NewGenerator(workload.DefaultSpec(), seed).Generate(n)
	for _, j := range js {
		if err := m.Submit(j, j.Submit); err != nil {
			t.Fatal(err)
		}
	}
	return js
}

// testJob builds a rigid job with explicit characteristics.
func testJob(id int64, nodes int, run simulator.Time, powerW, memFrac float64) *jobs.Job {
	return &jobs.Job{
		ID: id, User: "u", Tag: "t", Nodes: nodes,
		Walltime: 4 * run, TrueRuntime: run,
		PowerPerNodeW: powerW, MemFrac: memFrac,
	}
}

// maxPowerDuring runs the manager to the horizon sampling total power every
// step seconds and returns the maximum observed.
func maxPowerDuring(m *core.Manager, horizon, step simulator.Time) float64 {
	maxP := 0.0
	stop := m.Eng.Every(step, "probe", func(now simulator.Time) {
		if p := m.Pw.TotalPower(); p > maxP {
			maxP = p
		}
	})
	defer stop()
	m.Run(horizon)
	return maxP
}
