package policy

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// Overprovision implements the over-provisioned operating point of Sarood
// et al. [38] and Patki et al. [37]: the machine has more nodes than the
// power budget can drive at full speed, and the policy (a) reshapes
// moldable jobs so more of them fit the joint node+power envelope,
// (b) gates starts on power headroom, and (c) divides the budget into
// uniform node caps over the nodes that are actually busy, so the hardware
// enforces the envelope between scheduling decisions.
type Overprovision struct {
	// BudgetW is the cluster IT power budget (well below MaxPossiblePower
	// in over-provisioned operation).
	BudgetW float64
	// Period is the cap-refresh interval.
	Period simulator.Time
	// PreferWide reshapes moldable jobs to their widest admissible
	// configuration (throughput-oriented); otherwise the requested shape is
	// kept whenever it fits.
	PreferWide bool

	// Reshapes counts jobs whose shape was changed at start.
	Reshapes int

	m *core.Manager
}

// Name implements core.Policy.
func (p *Overprovision) Name() string { return fmt.Sprintf("overprovision(%.0fkW)", p.BudgetW/1000) }

// Attach implements core.Policy.
func (p *Overprovision) Attach(m *core.Manager) {
	if p.BudgetW <= 0 {
		panic("policy: Overprovision needs a positive budget")
	}
	if p.Period <= 0 {
		p.Period = simulator.Minute
	}
	p.m = m

	m.OnStartGate(func(m *core.Manager, j *jobs.Job) bool {
		// Admit if any admissible shape fits the headroom.
		head := p.BudgetW - m.Pw.TotalPower()
		cfg, ok := p.fitShape(m, j, m.Cl.AvailableCount(nil), head)
		_ = cfg
		return ok
	})

	m.OnShape(func(m *core.Manager, j *jobs.Job, free int) (jobs.MoldConfig, bool) {
		head := p.BudgetW - m.Pw.TotalPower()
		cfg, ok := p.fitShape(m, j, free, head)
		if !ok {
			return jobs.MoldConfig{}, false
		}
		if cfg.Nodes != j.Nodes {
			p.Reshapes++
		}
		return cfg, true
	})

	m.ScheduleEvery(p.Period, "overprovision-caps", p.refreshCaps)
}

// fitShape returns the best admissible shape under free nodes and power
// headroom. Power per node is estimated with the manager's estimator minus
// the idle draw the node already pays.
func (p *Overprovision) fitShape(m *core.Manager, j *jobs.Job, free int, headW float64) (jobs.MoldConfig, bool) {
	perNode := m.PowerEstimator(j)
	if perNode < m.Pw.Model.IdleW {
		perNode = m.Pw.Model.IdleW
	}
	addPer := perNode - m.Pw.Model.IdleW
	maxByPower := free
	if addPer > 0 {
		byPower := int(headW / addPer)
		if byPower < maxByPower {
			maxByPower = byPower
		}
	}
	if maxByPower <= 0 {
		return jobs.MoldConfig{}, false
	}
	shapes := j.Mold
	if len(shapes) == 0 {
		shapes = []jobs.MoldConfig{{Nodes: j.Nodes, Runtime: j.TrueRuntime}}
	}
	var best jobs.MoldConfig
	found := false
	for _, s := range shapes {
		if s.Nodes > maxByPower {
			continue
		}
		if !found {
			best, found = s, true
			continue
		}
		if p.PreferWide {
			if s.Nodes > best.Nodes {
				best = s
			}
		} else {
			// Prefer the requested shape, else the closest below it.
			if s.Nodes == j.Nodes {
				best = s
			} else if best.Nodes != j.Nodes && s.Nodes > best.Nodes {
				best = s
			}
		}
	}
	return best, found
}

// refreshCaps divides the budget uniformly across busy nodes (idle/off
// nodes keep their baseline draw reserved) so the envelope holds between
// scheduler decisions even if a job draws more than estimated.
func (p *Overprovision) refreshCaps(now simulator.Time) {
	m := p.m
	model := m.Pw.Model
	reserved := 0.0
	var busy []*cluster.Node
	for _, n := range m.Cl.Nodes {
		switch n.State {
		case cluster.StateOff, cluster.StateDown:
			reserved += model.OffW
		case cluster.StateBooting, cluster.StateShuttingDown:
			reserved += model.BootW
		case cluster.StateBusy, cluster.StateDraining:
			busy = append(busy, n)
		default:
			reserved += model.IdleW
		}
	}
	if len(busy) == 0 {
		return
	}
	per := (p.BudgetW - reserved) / float64(len(busy))
	if per < model.IdleW {
		per = model.IdleW
	}
	for _, n := range busy {
		m.Pw.SetNodeCap(now, n, per)
	}
	m.RetimeAll(now)
	m.TrySchedule(now)
}
