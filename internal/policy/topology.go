package policy

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
)

// TopologyAware implements survey Q6's "application/task level joint
// optimization, such as topology-aware task allocation, as a way of ...
// indirectly improving energy consumption (by improving application
// performance, resulting in reduced wallclock time)". Jobs whose
// communication fraction exceeds CommThreshold are packed compactly to
// shrink their placement span; power-hungry but communication-light jobs
// may instead be scattered across PDUs to keep any single PDU's draw under
// its branch limit.
type TopologyAware struct {
	// CommThreshold is the communication fraction above which a job is
	// placed compactly. Default 0.15.
	CommThreshold float64
	// ScatterHungry scatters jobs whose estimated per-node draw exceeds
	// HungryW across PDUs (electrical balance); 0 disables.
	HungryW float64

	// CompactPlacements / ScatterPlacements count decisions.
	CompactPlacements, ScatterPlacements int
}

// Name implements core.Policy.
func (p *TopologyAware) Name() string {
	return fmt.Sprintf("topology-aware(comm>%.0f%%)", p.CommThreshold*100)
}

// Attach implements core.Policy.
func (p *TopologyAware) Attach(m *core.Manager) {
	if p.CommThreshold <= 0 {
		p.CommThreshold = 0.15
	}
	m.OnPlacement(func(m *core.Manager, j *jobs.Job) (cluster.Strategy, bool) {
		if j.CommFrac >= p.CommThreshold {
			p.CompactPlacements++
			return cluster.PlaceCompact, true
		}
		if p.HungryW > 0 && m.PowerEstimator(j) >= p.HungryW {
			p.ScatterPlacements++
			return cluster.PlaceScatter, true
		}
		return 0, false
	})
}
