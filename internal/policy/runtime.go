package policy

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
)

// BalanceMode selects how a job-level power budget is split across the
// job's nodes.
type BalanceMode int

const (
	// BalanceUniform splits the job budget equally — what a naive runtime
	// does, leaving slow (low-variability-factor) nodes as the critical
	// path.
	BalanceUniform BalanceMode = iota
	// BalanceCritical equalizes effective frequency across nodes by giving
	// power-hungry (inefficient) nodes a larger share — the GEOPM idea
	// (Eastep et al. [14]) LRZ and STFC investigate with SLURM/job
	// schedulers.
	BalanceCritical
)

func (b BalanceMode) String() string {
	if b == BalanceCritical {
		return "critical-path"
	}
	return "uniform"
}

// RuntimeBalance applies a per-job power budget and divides it across the
// job's nodes per the selected mode. Under manufacturing variability
// (power.System varSigma > 0) the critical-path split strictly dominates
// the uniform split on time-to-solution at equal job power.
type RuntimeBalance struct {
	// JobBudgetPerNodeW is the job power budget expressed per node (so jobs
	// of different widths get proportional budgets).
	JobBudgetPerNodeW float64
	Mode              BalanceMode

	m *core.Manager
}

// Name implements core.Policy.
func (p *RuntimeBalance) Name() string {
	return fmt.Sprintf("runtime-balance(%s,%.0fW/node)", p.Mode, p.JobBudgetPerNodeW)
}

// Attach implements core.Policy.
func (p *RuntimeBalance) Attach(m *core.Manager) {
	if p.JobBudgetPerNodeW <= 0 {
		panic("policy: RuntimeBalance needs a positive per-node budget")
	}
	p.m = m
	m.OnJobStart(func(m *core.Manager, j *jobs.Job, nodes []*cluster.Node) {
		budget := p.JobBudgetPerNodeW * float64(len(nodes))
		p.split(m, j, nodes, budget)
		m.RetimeJob(j.ID, m.Eng.Now())
	})
}

func (p *RuntimeBalance) split(m *core.Manager, j *jobs.Job, nodes []*cluster.Node, budgetW float64) {
	now := m.Eng.Now()
	switch p.Mode {
	case BalanceUniform:
		per := budgetW / float64(len(nodes))
		for _, n := range nodes {
			m.Pw.SetNodeCap(now, n, per)
		}
	case BalanceCritical:
		// Find the frequency fraction f such that the summed node draws at
		// f exactly meet the budget, then cap each node at its own draw at
		// f. Monotone in f, so bisect.
		lo, hi := m.Pw.Model.MinFrac, 1.0
		demand := func(f float64) float64 {
			t := 0.0
			for _, n := range nodes {
				t += m.Pw.Model.BusyPower(j.PowerPerNodeW, f, m.Pw.VarFactor(n.ID))
			}
			return t
		}
		if demand(1) <= budgetW {
			hi = 1
			lo = 1
		}
		for i := 0; i < 40 && hi-lo > 1e-6; i++ {
			mid := (lo + hi) / 2
			if demand(mid) > budgetW {
				hi = mid
			} else {
				lo = mid
			}
		}
		f := lo
		for _, n := range nodes {
			capW := m.Pw.Model.BusyPower(j.PowerPerNodeW, f, m.Pw.VarFactor(n.ID))
			m.Pw.SetNodeCap(now, n, capW)
		}
	}
}
