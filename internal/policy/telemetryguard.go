package policy

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
)

// TelemetryGuard is the graceful-degradation rule every power-aware policy
// needs under sensor failure: when the power telemetry goes stale (dropout
// or a stuck sensor — detected by the age of the last genuine sample, see
// power.Telemetry.Stale), the site cannot trust its readings, so the guard
// falls back to a conservative static node cap that is safe open-loop.
// When genuine samples resume, the previous per-node caps are restored and
// the dynamic policies take over again.
//
// This mirrors how production sites run capping: closed-loop optimisation
// rides on the monitoring plane, and losing the monitoring plane must fail
// safe (toward less power), never open (toward the breaker limit).
type TelemetryGuard struct {
	// StaleAfter is the sample age that triggers degradation; 0 means the
	// telemetry default (three sampling periods).
	StaleAfter simulator.Time
	// FallbackCapW is the conservative static node cap applied while
	// degraded. Nodes already capped at or below it keep their cap.
	FallbackCapW float64
	// Period is how often staleness is checked (default 30 s).
	Period simulator.Time

	// Degradations / Restorations count fallback entries and exits;
	// DegradedSeconds integrates time spent in the degraded posture.
	Degradations    int
	Restorations    int
	DegradedSeconds float64

	degraded bool
	lastAcc  simulator.Time
	saved    []float64 // per-node caps at degradation time
	m        *core.Manager
}

// Name implements core.Policy.
func (p *TelemetryGuard) Name() string {
	return fmt.Sprintf("telemetry-guard(%.0fW)", p.FallbackCapW)
}

// Attach implements core.Policy.
func (p *TelemetryGuard) Attach(m *core.Manager) {
	if p.FallbackCapW <= 0 {
		panic("policy: TelemetryGuard needs a positive fallback cap")
	}
	if p.Period <= 0 {
		p.Period = 30 * simulator.Second
	}
	p.m = m
	m.ScheduleEvery(p.Period, "telemetry-guard", p.check)
}

// Degraded reports whether the guard is currently in the fallback posture.
func (p *TelemetryGuard) Degraded() bool { return p.degraded }

func (p *TelemetryGuard) check(now simulator.Time) {
	m := p.m
	stale := m.Tel.Stale(now, p.StaleAfter)
	if p.degraded {
		p.DegradedSeconds += float64(now - p.lastAcc)
		p.lastAcc = now
	}
	switch {
	case stale && !p.degraded:
		p.degrade(now)
	case !stale && p.degraded:
		p.restore(now)
	}
}

// degrade saves the current per-node caps and clamps every node to the
// fallback cap (nodes already capped tighter are left alone).
func (p *TelemetryGuard) degrade(now simulator.Time) {
	m := p.m
	p.saved = make([]float64, m.Cl.Size())
	for i, n := range m.Cl.Nodes {
		p.saved[i] = n.CapW
		if n.CapW == 0 || n.CapW > p.FallbackCapW {
			if err := m.Ctrl.SetNodeCap(i, p.FallbackCapW); err != nil {
				panic(err)
			}
		}
	}
	p.degraded = true
	p.lastAcc = now
	p.Degradations++
	if m.Tr != nil {
		m.Tr.Instant(trace.PidPower, 0, "staleness-guard-degrade", now,
			trace.Arg{Key: "fallback_cap_w", Val: p.FallbackCapW})
	}
	m.RetimeAll(now)
}

// restore reapplies the caps saved at degradation time.
func (p *TelemetryGuard) restore(now simulator.Time) {
	m := p.m
	for i, capW := range p.saved {
		if i >= m.Cl.Size() {
			break
		}
		if m.Cl.Nodes[i].CapW != capW {
			if err := m.Ctrl.SetNodeCap(i, capW); err != nil {
				panic(err)
			}
		}
	}
	p.saved = nil
	p.degraded = false
	p.Restorations++
	if m.Tr != nil {
		m.Tr.Instant(trace.PidPower, 0, "staleness-guard-restore", now)
	}
	m.RetimeAll(now)
}
