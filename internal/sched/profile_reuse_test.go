package sched

import (
	"math/rand"
	"testing"

	"epajsrm/internal/simulator"
)

// TestProfileResetEquivalentToFresh is the property test backing the
// profile-slab reuse in Conservative.Pick: a Reset profile must be
// indistinguishable from a fresh one under any reservation sequence.
// Random sequences of Reserve/EarliestFit/UsedAt/MaxUsedIn run against a
// fresh profile and a dirtied-then-Reset one; every observable must match.
func TestProfileResetEquivalentToFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		capacity := 1 + rng.Intn(64)
		start := simulator.Time(rng.Intn(1000))

		fresh := NewProfile(start, capacity)

		// Dirty the reused profile with unrelated history, then Reset.
		reused := NewProfile(simulator.Time(rng.Intn(500)), 1+rng.Intn(128))
		for i := 0; i < rng.Intn(20); i++ {
			n := 1 + rng.Intn(reused.Capacity)
			d := simulator.Time(1 + rng.Intn(5000))
			at := reused.EarliestFit(n, d)
			reused.Reserve(at, at+d, n)
		}
		reused.Reset(start, capacity)

		// Replay one random reservation sequence against both, checking
		// every observable after every step.
		for step := 0; step < 30; step++ {
			switch rng.Intn(4) {
			case 0:
				n := 1 + rng.Intn(capacity)
				d := simulator.Time(1 + rng.Intn(10000))
				// Reserve at the earliest feasible slot, the way the
				// backfilling planners do, so capacity is never exceeded.
				at := fresh.EarliestFit(n, d)
				if got := reused.EarliestFit(n, d); got != at {
					t.Fatalf("trial %d step %d: EarliestFit(%d,%d) = %d, fresh %d", trial, step, n, d, got, at)
				}
				fresh.Reserve(at, at+d, n)
				reused.Reserve(at, at+d, n)
			case 1:
				n := 1 + rng.Intn(capacity)
				d := simulator.Time(1 + rng.Intn(10000))
				a, b := fresh.EarliestFit(n, d), reused.EarliestFit(n, d)
				if a != b {
					t.Fatalf("trial %d step %d: EarliestFit(%d,%d) = %d, fresh %d", trial, step, n, d, b, a)
				}
			case 2:
				at := start + simulator.Time(rng.Intn(20000)) - 100
				if a, b := fresh.UsedAt(at), reused.UsedAt(at); a != b {
					t.Fatalf("trial %d step %d: UsedAt(%d) = %d, fresh %d", trial, step, at, b, a)
				}
			case 3:
				from := start + simulator.Time(rng.Intn(20000))
				to := from + simulator.Time(1+rng.Intn(10000))
				if a, b := fresh.MaxUsedIn(from, to), reused.MaxUsedIn(from, to); a != b {
					t.Fatalf("trial %d step %d: MaxUsedIn(%d,%d) = %d, fresh %d", trial, step, from, to, b, a)
				}
			}
		}
	}
}

// TestProfileResetRepeatedly reuses one profile across many independent
// planning rounds — the exact lifecycle the pooled Conservative scratch
// sees — checking each round against a fresh profile.
func TestProfileResetRepeatedly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	reused := NewProfile(0, 1)
	for round := 0; round < 100; round++ {
		capacity := 1 + rng.Intn(32)
		start := simulator.Time(rng.Intn(1000))
		reused.Reset(start, capacity)
		fresh := NewProfile(start, capacity)
		for i := 0; i < 15; i++ {
			n := 1 + rng.Intn(capacity)
			d := simulator.Time(1 + rng.Intn(3000))
			at := fresh.EarliestFit(n, d)
			if got := reused.EarliestFit(n, d); got != at {
				t.Fatalf("round %d step %d: EarliestFit = %d, fresh %d", round, i, got, at)
			}
			fresh.Reserve(at, at+d, n)
			reused.Reserve(at, at+d, n)
		}
	}
}
