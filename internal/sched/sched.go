// Package sched implements the baseline job scheduling algorithms every
// surveyed production stack builds on: FCFS, EASY backfilling (Mu'alem &
// Feitelson, the survey's reference [35]) and conservative backfilling.
// The EPA policies in internal/policy wrap these, filtering candidates and
// shaping starts; the algorithms themselves remain power-oblivious.
package sched

import (
	"sort"
	"sync"

	"epajsrm/internal/jobs"
	"epajsrm/internal/prof"
	"epajsrm/internal/simulator"
)

// Pick-scratch pools. Schedulers are stateless values shared across
// goroutines, so per-Pick scratch lives in pools rather than on the
// scheduler — the parallel experiment runner calls Pick from many
// managers concurrently.
var (
	runningScratch = sync.Pool{New: func() any { s := make([]RunningJob, 0, 64); return &s }}
	profileScratch = sync.Pool{New: func() any { return NewProfile(0, 0) }}
)

// RunningJob pairs a running job with its current placement width and the
// scheduler-visible completion estimate (based on the walltime request,
// not ground truth — schedulers never see true runtimes).
type RunningJob struct {
	Job         *jobs.Job
	Nodes       int
	ExpectedEnd simulator.Time
}

// View is the scheduler's snapshot of the system at a decision point.
type View struct {
	Now        simulator.Time
	Free       int // eligible idle nodes right now
	TotalNodes int // eligible node capacity (excludes down/maintenance)
	Queue      []*jobs.Job
	Running    []RunningJob

	// Prof, when non-nil, attributes the pass's reservation computation
	// and backfill walk to their own phases (the split the parallelization
	// work needs — at hollow-site scale the reservation sort dominates).
	// Schedulers are stateless shared values, so the profiler rides on the
	// per-pass view rather than on the scheduler. Nil costs one branch.
	Prof *prof.Profiler
}

// Scheduler decides which waiting jobs to start now. Implementations must
// not start more nodes than v.Free in total; the returned jobs are started
// in order.
type Scheduler interface {
	Name() string
	Pick(v View) []*jobs.Job
}

// Decision explains one per-job choice a scheduling pass made: whether the
// job was picked to start now, and why (or why not). The reasons are the
// algorithm's own vocabulary — "backfill-before-shadow" names the EASY
// condition that admitted the job — so a decision trace reads as the
// algorithm's reasoning, not a post-hoc guess.
type Decision struct {
	Job    *jobs.Job
	Picked bool
	Reason string
}

// Explainer is the optional tracing face of a Scheduler: PickExplain
// behaves exactly like Pick but reports a Decision for every queued job it
// considered. rec may be nil, in which case PickExplain must be
// byte-for-byte equivalent to Pick — all three built-in schedulers
// implement Pick as PickExplain(v, nil), so the traced and untraced paths
// cannot drift apart.
type Explainer interface {
	PickExplain(v View, rec func(Decision)) []*jobs.Job
}

// FCFS starts jobs strictly in queue order, stopping at the first job that
// does not fit.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Scheduler.
func (f FCFS) Pick(v View) []*jobs.Job { return f.PickExplain(v, nil) }

// PickExplain implements Explainer.
func (FCFS) PickExplain(v View, rec func(Decision)) []*jobs.Job {
	var out []*jobs.Job
	free := v.Free
	for i, j := range v.Queue {
		if j.Nodes > free {
			if rec != nil {
				rec(Decision{Job: j, Reason: "blocks-queue-insufficient-nodes"})
				for _, b := range v.Queue[i+1:] {
					rec(Decision{Job: b, Reason: "behind-blocked-head"})
				}
			}
			break
		}
		out = append(out, j)
		free -= j.Nodes
		if rec != nil {
			rec(Decision{Job: j, Picked: true, Reason: "fits-in-order"})
		}
	}
	return out
}

// EASY is aggressive (EASY) backfilling: the head job gets a reservation at
// the earliest time enough nodes will be free; later jobs may start now if
// they fit and do not delay that reservation.
type EASY struct{}

// Name implements Scheduler.
func (EASY) Name() string { return "easy" }

// Pick implements Scheduler.
func (e EASY) Pick(v View) []*jobs.Job { return e.PickExplain(v, nil) }

// PickExplain implements Explainer. EASY's reason vocabulary: the head run
// starts with "head-fits"; a blocked head gets a reservation
// ("head-blocked-awaits-reservation"); later jobs backfill when they end
// before the shadow time ("backfill-before-shadow") or fit in the nodes
// left beside the reservation ("backfill-beside-reservation"), and are
// skipped as "wider-than-free" or "would-delay-head-reservation".
func (EASY) PickExplain(v View, rec func(Decision)) []*jobs.Job {
	var out []*jobs.Job
	free := v.Free
	sp := runningScratch.Get().(*[]RunningJob)
	running := append((*sp)[:0], v.Running...)
	defer func() {
		*sp = running[:0]
		runningScratch.Put(sp)
	}()

	queue := v.Queue
	// Start head jobs while they fit.
	for len(queue) > 0 && queue[0].Nodes <= free {
		j := queue[0]
		out = append(out, j)
		free -= j.Nodes
		running = append(running, RunningJob{Job: j, Nodes: j.Nodes, ExpectedEnd: v.Now + j.Walltime})
		queue = queue[1:]
		if rec != nil {
			rec(Decision{Job: j, Picked: true, Reason: "head-fits"})
		}
	}
	if len(queue) == 0 {
		return out
	}

	// Head job blocked: compute its shadow time and the extra nodes.
	head := queue[0]
	v.Prof.Enter(prof.SchedReservation)
	shadow, extra := reservation(v.Now, free, head.Nodes, running)
	v.Prof.Exit()
	if rec != nil {
		rec(Decision{Job: head, Reason: "head-blocked-awaits-reservation"})
	}

	// Backfill the remainder.
	v.Prof.Enter(prof.SchedBackfill)
	defer v.Prof.Exit()
	for _, j := range queue[1:] {
		if j.Nodes > free {
			if rec != nil {
				rec(Decision{Job: j, Reason: "wider-than-free"})
			}
			continue
		}
		fitsBefore := v.Now+j.Walltime <= shadow
		fitsBeside := j.Nodes <= extra
		if fitsBefore || fitsBeside {
			out = append(out, j)
			free -= j.Nodes
			if fitsBeside {
				extra -= j.Nodes
			}
			running = append(running, RunningJob{Job: j, Nodes: j.Nodes, ExpectedEnd: v.Now + j.Walltime})
			if rec != nil {
				reason := "backfill-before-shadow"
				if !fitsBefore {
					reason = "backfill-beside-reservation"
				}
				rec(Decision{Job: j, Picked: true, Reason: reason})
			}
		} else if rec != nil {
			rec(Decision{Job: j, Reason: "would-delay-head-reservation"})
		}
	}
	return out
}

// reservation returns the earliest time `need` nodes will be free given the
// currently running jobs (by their walltime-based expected ends), plus how
// many nodes will be left over at that time beyond the reservation
// ("extra" nodes a backfilled job may hold past the shadow time).
func reservation(now simulator.Time, free, need int, running []RunningJob) (shadow simulator.Time, extra int) {
	if free >= need {
		return now, free - need
	}
	// Sort a pooled copy by expected end. Small running sets use insertion
	// sort; past a threshold (hollow-site scale runs carry thousands of
	// running jobs into every blocked-head pass) switch to an O(R log R)
	// stable sort. Both are stable on ExpectedEnd, so the shadow-time walk
	// sees the identical sequence either way.
	ep := runningScratch.Get().(*[]RunningJob)
	ends := append((*ep)[:0], running...)
	defer func() {
		*ep = ends[:0]
		runningScratch.Put(ep)
	}()
	if len(ends) <= 64 {
		for i := 1; i < len(ends); i++ {
			for k := i; k > 0 && ends[k].ExpectedEnd < ends[k-1].ExpectedEnd; k-- {
				ends[k], ends[k-1] = ends[k-1], ends[k]
			}
		}
	} else {
		sort.SliceStable(ends, func(i, j int) bool { return ends[i].ExpectedEnd < ends[j].ExpectedEnd })
	}
	avail := free
	for _, r := range ends {
		avail += r.Nodes
		if avail >= need {
			return r.ExpectedEnd, avail - need
		}
	}
	// Should not happen if need <= total nodes; treat as never.
	return now + 365*simulator.Day, 0
}

// Conservative is conservative backfilling: every queued job receives a
// reservation in queue order on a node-availability profile, and only jobs
// whose reservation begins now are started. No job can be delayed by a
// later arrival, which gives predictable start times at some utilization
// cost relative to EASY.
type Conservative struct{}

// Name implements Scheduler.
func (Conservative) Name() string { return "conservative" }

// Pick implements Scheduler.
func (c Conservative) Pick(v View) []*jobs.Job { return c.PickExplain(v, nil) }

// PickExplain implements Explainer. Every queued job gets a reservation in
// order; "reservation-begins-now" starts, "reserved-for-later" waits.
func (Conservative) PickExplain(v View, rec func(Decision)) []*jobs.Job {
	// The whole pass is reservation work — every queued job is placed on
	// the availability profile — so it attributes to one phase.
	v.Prof.Enter(prof.SchedReservation)
	defer v.Prof.Exit()
	p := profileScratch.Get().(*Profile)
	p.Reset(v.Now, v.TotalNodes)
	defer profileScratch.Put(p)
	for _, r := range v.Running {
		p.Reserve(v.Now, r.ExpectedEnd, r.Nodes)
	}
	var out []*jobs.Job
	for _, j := range v.Queue {
		start := p.EarliestFit(j.Nodes, j.Walltime)
		p.Reserve(start, start+j.Walltime, j.Nodes)
		if start == v.Now {
			out = append(out, j)
			if rec != nil {
				rec(Decision{Job: j, Picked: true, Reason: "reservation-begins-now"})
			}
		} else if rec != nil {
			rec(Decision{Job: j, Reason: "reserved-for-later"})
		}
	}
	return out
}
