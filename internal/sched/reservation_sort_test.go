package sched

import (
	"testing"

	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

// refReservation is the pre-threshold implementation: always insertion
// sort. The production path switches to a stable comparison sort above 64
// running jobs; both are stable on ExpectedEnd, so shadow and extra must
// match on any input.
func refReservation(now simulator.Time, free, need int, running []RunningJob) (simulator.Time, int) {
	if free >= need {
		return now, free - need
	}
	ends := append([]RunningJob(nil), running...)
	for i := 1; i < len(ends); i++ {
		for k := i; k > 0 && ends[k].ExpectedEnd < ends[k-1].ExpectedEnd; k-- {
			ends[k], ends[k-1] = ends[k-1], ends[k]
		}
	}
	avail := free
	for _, r := range ends {
		avail += r.Nodes
		if avail >= need {
			return r.ExpectedEnd, avail - need
		}
	}
	return now + 365*simulator.Day, 0
}

// TestReservationSortEquivalence exercises running sets straddling the
// sort-path threshold, with heavy ExpectedEnd ties (the case where an
// unstable sort would reorder node counts and change `extra`).
func TestReservationSortEquivalence(t *testing.T) {
	rng := simulator.NewRNG(31)
	for trial := 0; trial < 300; trial++ {
		nRun := rng.Intn(300) // well past the 64-element threshold
		running := make([]RunningJob, nRun)
		total := 0
		for i := range running {
			w := 1 + rng.Intn(16)
			total += w
			running[i] = RunningJob{
				Job:   &jobs.Job{ID: int64(i + 1)},
				Nodes: w,
				// Few distinct end times: lots of ties.
				ExpectedEnd: simulator.Time(100 * (1 + rng.Intn(8))),
			}
		}
		free := rng.Intn(20)
		need := 1 + rng.Intn(total+free+4)
		gotShadow, gotExtra := reservation(0, free, need, running)
		wantShadow, wantExtra := refReservation(0, free, need, running)
		if gotShadow != wantShadow || gotExtra != wantExtra {
			t.Fatalf("trial %d (R=%d free=%d need=%d): got (%v,%d), want (%v,%d)",
				trial, nRun, free, need, gotShadow, gotExtra, wantShadow, wantExtra)
		}
	}
}
