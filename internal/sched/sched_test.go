package sched

import (
	"testing"
	"testing/quick"

	"epajsrm/internal/jobs"
	"epajsrm/internal/simulator"
)

func qj(id int64, nodes int, wall simulator.Time) *jobs.Job {
	return &jobs.Job{ID: id, Nodes: nodes, Walltime: wall, TrueRuntime: wall, PowerPerNodeW: 200}
}

func TestFCFSStopsAtFirstBlocker(t *testing.T) {
	v := View{
		Now: 0, Free: 10, TotalNodes: 10,
		Queue: []*jobs.Job{qj(1, 4, 100), qj(2, 8, 100), qj(3, 1, 100)},
	}
	got := FCFS{}.Pick(v)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("FCFS picked %v, want only job 1", ids(got))
	}
}

func TestEASYBackfillsAroundBlocker(t *testing.T) {
	// 10 nodes. Job 1 (4 nodes) runs until t=1000. Head queue job wants 8 —
	// blocked until 1000. A 1-node 500s job can backfill (ends before the
	// shadow time); a 1-node 2000s job also fits: 10-4-8 is negative, so
	// extra = free-at-shadow minus head... verify the invariant instead:
	// the short job is picked, and the reservation is not delayed.
	v := View{
		Now: 0, Free: 6, TotalNodes: 10,
		Running: []RunningJob{{Job: qj(99, 4, 1000), Nodes: 4, ExpectedEnd: 1000}},
		Queue:   []*jobs.Job{qj(1, 8, 1000), qj(2, 1, 500), qj(3, 6, 5000)},
	}
	got := EASY{}.Pick(v)
	if !contains(got, 2) {
		t.Fatalf("EASY should backfill job 2; got %v", ids(got))
	}
	if contains(got, 1) {
		t.Fatalf("blocked head started: %v", ids(got))
	}
	// Job 3 (6 nodes, 5000s) would occupy nodes past the shadow time and
	// exceed the extra pool (at shadow 1000 there are 10 free, head takes 8,
	// extra=2 < 6), so it must not start.
	if contains(got, 3) {
		t.Fatalf("job 3 would delay the reservation: %v", ids(got))
	}
}

func TestEASYStartsEverythingThatFits(t *testing.T) {
	v := View{
		Now: 0, Free: 10, TotalNodes: 10,
		Queue: []*jobs.Job{qj(1, 3, 100), qj(2, 3, 100), qj(3, 4, 100)},
	}
	got := EASY{}.Pick(v)
	if len(got) != 3 {
		t.Fatalf("picked %v", ids(got))
	}
}

func TestEASYBackfillBesideReservation(t *testing.T) {
	// Head needs 8 at shadow time 1000 when 10 free: extra = 2. A long
	// 2-node job fits beside the reservation even though it outlives it.
	v := View{
		Now: 0, Free: 6, TotalNodes: 10,
		Running: []RunningJob{{Job: qj(99, 4, 1000), Nodes: 4, ExpectedEnd: 1000}},
		Queue:   []*jobs.Job{qj(1, 8, 1000), qj(2, 2, 100000)},
	}
	got := EASY{}.Pick(v)
	if !contains(got, 2) {
		t.Fatalf("2-node job fits beside the 8-node reservation; got %v", ids(got))
	}
}

func TestConservativeNoLaterJobDelaysEarlier(t *testing.T) {
	// With conservative backfilling, job 3 may only start now if it delays
	// neither job 1's nor job 2's reservation.
	v := View{
		Now: 0, Free: 6, TotalNodes: 10,
		Running: []RunningJob{{Job: qj(99, 4, 1000), Nodes: 4, ExpectedEnd: 1000}},
		Queue: []*jobs.Job{
			qj(1, 8, 1000),  // reserved at t=1000
			qj(2, 10, 1000), // reserved at t=2000
			qj(3, 2, 500),   // fits now and ends at 500 < 1000
		},
	}
	got := Conservative{}.Pick(v)
	if !contains(got, 3) {
		t.Fatalf("conservative should start job 3; got %v", ids(got))
	}
	if contains(got, 1) || contains(got, 2) {
		t.Fatalf("blocked jobs started: %v", ids(got))
	}
}

func TestConservativeRespectsAllReservations(t *testing.T) {
	// Job 3 runs 1500s on 2 nodes: it would overlap job 1's reservation
	// window (1000..2000) during which 8+2 = 10 <= 10 — so it *can* start.
	// But job 4 (6 nodes, 1500s) would collide with job 1's 8 nodes. Check
	// both decisions.
	v := View{
		Now: 0, Free: 6, TotalNodes: 10,
		Running: []RunningJob{{Job: qj(99, 4, 1000), Nodes: 4, ExpectedEnd: 1000}},
		Queue: []*jobs.Job{
			qj(1, 8, 1000),
			qj(3, 2, 1500),
			qj(4, 6, 1500),
		},
	}
	got := Conservative{}.Pick(v)
	if !contains(got, 3) {
		t.Fatalf("job 3 coexists with the reservation; got %v", ids(got))
	}
	if contains(got, 4) {
		t.Fatalf("job 4 would collide with job 1's reservation; got %v", ids(got))
	}
}

func TestSchedulersNeverOvercommit(t *testing.T) {
	scheds := []Scheduler{FCFS{}, EASY{}, Conservative{}}
	v := View{
		Now: 0, Free: 7, TotalNodes: 10,
		Running: []RunningJob{{Job: qj(99, 3, 400), Nodes: 3, ExpectedEnd: 400}},
		Queue: []*jobs.Job{
			qj(1, 5, 300), qj(2, 4, 200), qj(3, 2, 100), qj(4, 1, 50), qj(5, 3, 700),
		},
	}
	for _, s := range scheds {
		total := 0
		for _, j := range s.Pick(v) {
			total += j.Nodes
		}
		if total > v.Free {
			t.Errorf("%s overcommitted: %d > %d free", s.Name(), total, v.Free)
		}
	}
}

func TestProfileReserveAndFit(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(0, 100, 6)
	if got := p.UsedAt(50); got != 6 {
		t.Fatalf("used at 50 = %d", got)
	}
	if got := p.UsedAt(100); got != 0 {
		t.Fatalf("used at 100 = %d", got)
	}
	// 4 free now; 5-node job must wait until 100.
	if got := p.EarliestFit(5, 50); got != 100 {
		t.Fatalf("earliest fit = %d, want 100", got)
	}
	if got := p.EarliestFit(4, 50); got != 0 {
		t.Fatalf("earliest fit for 4 = %d, want 0", got)
	}
}

func TestProfileFitSpansBreakpoints(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(100, 200, 8)
	// A 5-node 300s job starting at 0 would hit the 100..200 bump: must
	// wait until 200.
	if got := p.EarliestFit(5, 300); got != 200 {
		t.Fatalf("fit = %d, want 200", got)
	}
	// A 2-node job fits through the bump.
	if got := p.EarliestFit(2, 300); got != 0 {
		t.Fatalf("small fit = %d, want 0", got)
	}
}

func TestProfilePanicsOnOvercommit(t *testing.T) {
	p := NewProfile(0, 4)
	p.Reserve(0, 10, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("overcommit should panic")
		}
	}()
	p.Reserve(5, 15, 2)
}

func TestProfileMaxUsedIn(t *testing.T) {
	p := NewProfile(0, 10)
	p.Reserve(10, 20, 3)
	p.Reserve(15, 30, 4)
	if got := p.MaxUsedIn(0, 40); got != 7 {
		t.Fatalf("max used = %d", got)
	}
	if got := p.MaxUsedIn(25, 40); got != 4 {
		t.Fatalf("max used tail = %d", got)
	}
}

func ids(js []*jobs.Job) []int64 {
	var out []int64
	for _, j := range js {
		out = append(out, j.ID)
	}
	return out
}

func contains(js []*jobs.Job, id int64) bool {
	for _, j := range js {
		if j.ID == id {
			return true
		}
	}
	return false
}

func TestProfileEarliestFitProperty(t *testing.T) {
	// Property: the time EarliestFit returns really has n nodes free for
	// the whole duration, and reserving there never panics.
	f := func(resRaw []uint16, nRaw, dRaw uint8) bool {
		p := NewProfile(0, 32)
		for i := 0; i+2 < len(resRaw) && i < 30; i += 3 {
			dur := simulator.Time(resRaw[i+1]%1000) + 1
			n := int(resRaw[i+2]%8) + 1
			start := p.EarliestFit(n, dur)
			p.Reserve(start, start+dur, n)
		}
		need := int(nRaw%16) + 1
		dur := simulator.Time(dRaw)*3 + 1
		at := p.EarliestFit(need, dur)
		// Verify directly against the profile.
		if p.MaxUsedIn(at, at+dur) > 32-need {
			return false
		}
		p.Reserve(at, at+dur, need) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEASYNeverDelaysHeadReservation(t *testing.T) {
	// Property: whatever EASY backfills, the head job could still start at
	// its shadow time computed before backfilling.
	f := func(widths []uint8) bool {
		if len(widths) < 2 {
			return true
		}
		var queue []*jobs.Job
		for i, w := range widths {
			if i > 12 {
				break
			}
			queue = append(queue, qj(int64(i+1), int(w%10)+1, simulator.Time(int(w)*100+600)))
		}
		queue[0].Nodes = 9 // force head blockage against 8 free
		v := View{
			Now: 0, Free: 8, TotalNodes: 16,
			Running: []RunningJob{{Job: qj(99, 8, 2000), Nodes: 8, ExpectedEnd: 2000}},
			Queue:   queue,
		}
		head := queue[0]
		shadow, _ := reservation(v.Now, v.Free, head.Nodes, v.Running)
		picked := EASY{}.Pick(v)
		// Simulate: at the shadow time, running jobs with ExpectedEnd <=
		// shadow have freed their nodes; backfilled jobs that end after the
		// shadow must fit in the leftover.
		freeAtShadow := v.Free
		for _, r := range v.Running {
			if r.ExpectedEnd <= shadow {
				freeAtShadow += r.Nodes
			}
		}
		for _, j := range picked {
			if j.ID == head.ID {
				continue
			}
			if v.Now+j.Walltime > shadow {
				freeAtShadow -= j.Nodes
			}
		}
		return freeAtShadow >= head.Nodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
