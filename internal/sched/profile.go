package sched

import (
	"sort"

	"epajsrm/internal/simulator"
)

// Profile is a node-availability timeline: a step function from time to the
// number of nodes in use, over a fixed capacity. Conservative backfilling
// plans every queued job against it; the power-aware planners reuse it to
// fit jobs under joint node+power envelopes.
type Profile struct {
	Capacity int
	start    simulator.Time
	// steps are breakpoints with the usage that begins at each; sorted by
	// time, first step at `start`.
	times []simulator.Time
	used  []int
}

// NewProfile returns an empty profile beginning at start with the given
// node capacity.
func NewProfile(start simulator.Time, capacity int) *Profile {
	return &Profile{
		Capacity: capacity,
		start:    start,
		times:    []simulator.Time{start},
		used:     []int{0},
	}
}

// Reset returns the profile to the empty state NewProfile would produce,
// reusing the breakpoint slabs already grown. A reset profile behaves
// identically to a fresh one; schedulers that plan every pass keep one
// profile alive instead of reallocating the timeline each Pick.
func (p *Profile) Reset(start simulator.Time, capacity int) {
	p.Capacity = capacity
	p.start = start
	p.times = append(p.times[:0], start)
	p.used = append(p.used[:0], 0)
}

// UsedAt returns the usage in effect at time t (t before the profile start
// reports the initial usage).
func (p *Profile) UsedAt(t simulator.Time) int {
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t }) - 1
	if i < 0 {
		i = 0
	}
	return p.used[i]
}

// ensureBreak inserts a breakpoint at t (if missing) and returns its index.
func (p *Profile) ensureBreak(t simulator.Time) int {
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] >= t })
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	// Inherit the usage in effect just before t.
	prev := 0
	if i > 0 {
		prev = p.used[i-1]
	}
	p.times = append(p.times, 0)
	p.used = append(p.used, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.used[i+1:], p.used[i:])
	p.times[i] = t
	p.used[i] = prev
	return i
}

// Reserve adds n nodes of usage over [from, to). Reservations may exceed
// capacity only through programmer error; Reserve panics in that case so
// scheduler bugs surface immediately.
func (p *Profile) Reserve(from, to simulator.Time, n int) {
	if to <= from || n <= 0 {
		return
	}
	if from < p.start {
		from = p.start
	}
	i := p.ensureBreak(from)
	j := p.ensureBreak(to)
	for k := i; k < j; k++ {
		p.used[k] += n
		if p.used[k] > p.Capacity {
			panic("sched: profile reservation exceeds capacity")
		}
	}
}

// EarliestFit returns the earliest time >= the profile start at which n
// nodes are continuously free for duration d.
func (p *Profile) EarliestFit(n int, d simulator.Time) simulator.Time {
	if n > p.Capacity {
		// Can never fit; park it far in the future so callers still get a
		// consistent reservation (the manager rejects such jobs upstream).
		return p.times[len(p.times)-1] + 365*simulator.Day
	}
	for i := 0; i < len(p.times); i++ {
		t := p.times[i]
		if p.Capacity-p.used[i] < n {
			continue
		}
		// Check the window [t, t+d) across subsequent steps.
		ok := true
		for k := i + 1; k < len(p.times) && p.times[k] < t+d; k++ {
			if p.Capacity-p.used[k] < n {
				ok = false
				break
			}
		}
		if ok {
			return t
		}
	}
	// After the last breakpoint everything is free.
	return p.times[len(p.times)-1]
}

// MaxUsedIn returns the maximum usage over [from, to).
func (p *Profile) MaxUsedIn(from, to simulator.Time) int {
	maxU := p.UsedAt(from)
	for i, t := range p.times {
		if t >= from && t < to && p.used[i] > maxU {
			maxU = p.used[i]
		}
	}
	return maxU
}
