// Package runner executes independent simulation runs across a bounded
// worker pool. Sweep-style experiments (parameter grids, fault-rate
// ladders, seed replications) are embarrassingly parallel: every run owns
// its cluster, power substrate, RNG, and event engine, so runs share no
// mutable state. Map exploits that by fanning the runs across goroutines
// and merging results strictly by index — the output of a parallel sweep
// is byte-identical to running the same closures sequentially.
//
// The determinism contract Map relies on (and `go test -race ./...`
// enforces): the closure for index i must touch only state it creates
// itself, plus immutable inputs. A core.Manager built inside the closure
// satisfies this; two managers sharing one simulator.Engine (the
// inter-system coordination experiments) do not, and must stay on a single
// index.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// procs is the configured worker bound; 0 means GOMAXPROCS at call time.
var procs atomic.Int64

// SetProcs bounds the number of concurrent runs Map uses. n <= 0 restores
// the default (GOMAXPROCS). It returns the previous setting so callers can
// scope an override.
func SetProcs(n int) int {
	if n < 0 {
		n = 0
	}
	return int(procs.Swap(int64(n)))
}

// Procs reports the effective worker bound.
func Procs() int {
	if n := int(procs.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

type trappedPanic struct {
	val   any
	stack []byte
}

// Map computes fn(0..n-1) and returns the results in index order. With one
// worker (or one run) it executes inline on the calling goroutine; with
// more it fans out and joins. Every run executes exactly once whatever the
// worker count, and results depend only on fn — never on scheduling — so a
// deterministic fn yields identical output at any parallelism.
//
// If any run panics, Map waits for the remaining runs to finish and then
// re-panics on the calling goroutine with the lowest-index panic, so
// failure surfaces deterministically too.
func Map[T any](n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := Procs()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	panics := make([]*trappedPanic, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runOne(i, fn, out, panics)
			}
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("runner: run %d panicked: %v\n%s", i, p.val, p.stack))
		}
	}
	return out
}

func runOne[T any](i int, fn func(i int) T, out []T, panics []*trappedPanic) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = &trappedPanic{val: r, stack: debug.Stack()}
		}
	}()
	out[i] = fn(i)
}
