package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		prev := SetProcs(p)
		got := Map(37, func(i int) int { return i * i })
		SetProcs(prev)
		if len(got) != 37 {
			t.Fatalf("procs=%d: got %d results", p, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("procs=%d: result[%d] = %d, want %d", p, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0) = %v, want nil", got)
	}
}

func TestMapRunsEachExactlyOnce(t *testing.T) {
	prev := SetProcs(4)
	defer SetProcs(prev)
	var counts [100]atomic.Int64
	Map(len(counts), func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("run %d executed %d times", i, c)
		}
	}
}

func TestMapPanicPropagatesLowestIndex(t *testing.T) {
	prev := SetProcs(4)
	defer SetProcs(prev)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "run 3 panicked") {
			t.Fatalf("panic = %v, want lowest-index run 3", r)
		}
	}()
	Map(8, func(i int) int {
		if i == 3 || i == 6 {
			panic("boom")
		}
		return i
	})
}

func TestSetProcs(t *testing.T) {
	prev := SetProcs(3)
	defer SetProcs(prev)
	if Procs() != 3 {
		t.Fatalf("Procs() = %d, want 3", Procs())
	}
	SetProcs(0)
	if Procs() < 1 {
		t.Fatalf("default Procs() = %d, want >= 1", Procs())
	}
}
