package experiments

import "testing"

func TestE21ZeroFaultReproducesBaseline(t *testing.T) {
	r := E21Resilience(3)
	if r.Values["goodput_zero"] != r.Values["goodput_base"] {
		t.Fatalf("zero-fault goodput %f != baseline %f",
			r.Values["goodput_zero"], r.Values["goodput_base"])
	}
	if r.Values["viol_zero"] != r.Values["viol_base"] {
		t.Fatalf("zero-fault cap violation %f != baseline %f",
			r.Values["viol_zero"], r.Values["viol_base"])
	}
	if r.Values["crashes_zero"] != 0 || r.Values["requeues_zero"] != 0 {
		t.Fatal("zero-fault level injected faults")
	}
}

func TestE21FaultShapes(t *testing.T) {
	r := E21Resilience(3)
	if r.Values["crashes_moderate"] <= 0 {
		t.Fatal("moderate profile produced no crashes")
	}
	if r.Values["crashes_high"] <= r.Values["crashes_moderate"] {
		t.Fatalf("crashes did not grow with fault rate: moderate=%f high=%f",
			r.Values["crashes_moderate"], r.Values["crashes_high"])
	}
	if r.Values["requeues_high"] <= 0 {
		t.Fatal("high fault rate produced no requeues")
	}
	if r.Values["goodput_high"] >= r.Values["goodput_base"] {
		t.Fatalf("goodput did not degrade under heavy faults: base=%f high=%f",
			r.Values["goodput_base"], r.Values["goodput_high"])
	}
}

func TestE21Deterministic(t *testing.T) {
	a := E21Resilience(9)
	b := E21Resilience(9)
	if a.Render() != b.Render() {
		t.Fatalf("same seed rendered differently:\n%s\n---\n%s", a.Render(), b.Render())
	}
	for k, v := range a.Values {
		if b.Values[k] != v {
			t.Fatalf("value %q differs: %f vs %f", k, v, b.Values[k])
		}
	}
	c := E21Resilience(10)
	if a.Render() == c.Render() {
		t.Fatal("different seeds produced identical exhibits")
	}
}
